// Hybrid intrinsic-EHW topology (Fig. 5): one fitness function synthesized
// with the core (internal slot 0) and another housed "on a second FPGA
// device" behind the fit_value_ext / fit_valid_ext ports — selected at run
// time by fitfunc_select, with no resynthesis. The external module pays an
// inter-chip latency on every evaluation; this example quantifies that cost.
//
// Build & run:   ./build/examples/external_fitness
#include <cstdio>

#include "fitness/functions.hpp"
#include "system/ga_system.hpp"
#include "util/table.hpp"

int main() {
    using namespace gaip;
    std::printf("Hybrid system: internal F2 (slot 0) + external mShubert2D (slot 4)\n\n");

    util::TextTable table({"Run target", "Slot", "Best fitness", "Optimum", "GA cycles",
                           "cycles/eval"});

    auto run_slot = [&](std::uint8_t slot, unsigned ext_latency) {
        system::GaSystemConfig cfg;
        cfg.params = {.pop_size = 32, .n_gens = 32, .xover_threshold = 10, .mut_threshold = 1,
                      .seed = 0xAAAA};
        cfg.internal_fems = {fitness::FitnessId::kF2};
        cfg.external_fem = fitness::FitnessId::kMShubert2D;
        cfg.external_latency_cycles = ext_latency;
        cfg.fitfunc_select = slot;
        cfg.keep_populations = false;
        system::GaSystem sys(cfg);
        const core::RunResult r = sys.run();
        const auto fn = slot == 0 ? fitness::FitnessId::kF2 : fitness::FitnessId::kMShubert2D;
        table.add(slot == 0 ? "internal F2" : "external mShubert2D (lat " +
                                                  std::to_string(ext_latency) + ")",
                  static_cast<unsigned>(slot), r.best_fitness,
                  fitness::grid_optimum(fn).best_value,
                  static_cast<unsigned long long>(sys.ga_cycles()),
                  static_cast<double>(sys.ga_cycles()) / static_cast<double>(r.evaluations));
    };

    run_slot(0, 0);     // internal
    run_slot(4, 8);     // external, same-board FPGA
    run_slot(4, 40);    // external, different board (slower link)
    run_slot(4, 160);   // external, remote instrument-grade link

    table.print();
    std::printf(
        "\nThe GA outcome is identical for every external-latency setting (same seed,\n"
        "same function, same decisions) — only the hardware time grows with the link.\n"
        "This is the paper's multichip/multiboard trade-off (Sec. II-D): external FEMs\n"
        "remain attractive whenever fitness evaluation dominates communication.\n");
    return 0;
}
