// 0/1 knapsack on the GA core: a classic combinatorial workload that maps
// perfectly onto the 16-bit chromosome (one bit per item). Demonstrates the
// custom-ROM integration path — the application computes its own fitness
// table ("measures" each packing), loads it as the FEM, and lets the core
// search.
//
// Build & run:   ./build/examples/knapsack
#include <cstdio>
#include <memory>
#include <vector>

#include "core/behavioral.hpp"
#include "mem/rom.hpp"
#include "system/ga_system.hpp"
#include "util/bits.hpp"
#include "util/table.hpp"

namespace {

struct Item {
    const char* name;
    unsigned weight;
    unsigned value;
};

// 16 items, capacity tuned so the optimum is a non-obvious subset.
const Item kItems[16] = {
    {"sextant", 7, 36},   {"chronometer", 9, 85}, {"rations", 12, 30}, {"rope", 5, 14},
    {"medkit", 8, 63},    {"beacon", 11, 95},     {"tent", 14, 40},    {"stove", 6, 22},
    {"samples", 10, 74},  {"drill", 13, 58},      {"radio", 4, 41},    {"solar", 9, 67},
    {"battery", 15, 52},  {"lens", 3, 29},        {"spares", 8, 33},   {"notebook", 2, 11},
};
constexpr unsigned kCapacity = 60;

unsigned packing_weight(std::uint16_t sel) {
    unsigned w = 0;
    for (unsigned i = 0; i < 16; ++i)
        if ((sel >> i) & 1u) w += kItems[i].weight;
    return w;
}

unsigned packing_value(std::uint16_t sel) {
    unsigned v = 0;
    for (unsigned i = 0; i < 16; ++i)
        if ((sel >> i) & 1u) v += kItems[i].value;
    return v;
}

/// Fitness: scaled value for feasible packings; infeasible ones are graded
/// by how far over capacity they are (a dead-zero penalty would starve the
/// proportionate selection of gradient).
std::uint16_t knapsack_fitness(std::uint16_t sel) {
    const unsigned w = packing_weight(sel);
    const unsigned v = packing_value(sel);
    if (w <= kCapacity) return gaip::util::sat_u16(static_cast<std::int64_t>(v) * 80);
    const unsigned over = w - kCapacity;
    const std::int64_t penalized = static_cast<std::int64_t>(v) * 80 - 900LL * over * over;
    return gaip::util::sat_u16(penalized / 8);
}

}  // namespace

int main() {
    using namespace gaip;
    std::printf("0/1 knapsack, 16 items, capacity %u\n\n", kCapacity);

    // Exhaustive reference (the domain is only 65536 packings).
    std::uint16_t best_sel = 0;
    unsigned best_val = 0;
    for (std::uint32_t s = 0; s <= 0xFFFF; ++s) {
        if (packing_weight(static_cast<std::uint16_t>(s)) <= kCapacity &&
            packing_value(static_cast<std::uint16_t>(s)) > best_val) {
            best_val = packing_value(static_cast<std::uint16_t>(s));
            best_sel = static_cast<std::uint16_t>(s);
        }
    }

    // Build the fitness table and run the core.
    std::vector<std::uint16_t> table(65536);
    for (std::uint32_t s = 0; s <= 0xFFFF; ++s)
        table[s] = knapsack_fitness(static_cast<std::uint16_t>(s));
    system::GaSystemConfig cfg;
    cfg.params = {.pop_size = 64, .n_gens = 48, .xover_threshold = 11, .mut_threshold = 2,
                  .seed = 0x061F};
    cfg.custom_roms = {std::make_shared<const mem::BlockRom>(std::move(table))};
    cfg.keep_populations = false;
    system::GaSystem sys(cfg);
    const core::RunResult r = sys.run();

    const std::uint16_t ga_sel = r.best_candidate;
    std::printf("GA packing   : value %u, weight %u/%u  (0x%04X)\n", packing_value(ga_sel),
                packing_weight(ga_sel), kCapacity, ga_sel);
    std::printf("exhaustive   : value %u, weight %u/%u  (0x%04X)\n", best_val,
                packing_weight(best_sel), kCapacity, best_sel);
    std::printf("gap          : %.2f%%  after %llu evaluations (%.1f%% of the space),"
                " %.3f ms of 50 MHz hardware\n\n",
                100.0 * (best_val - packing_value(ga_sel)) / best_val,
                static_cast<unsigned long long>(r.evaluations), 100.0 * r.evaluations / 65536.0,
                sys.ga_seconds() * 1e3);

    util::TextTable t({"Item", "Weight", "Value", "GA packs", "Optimal packs"});
    for (unsigned i = 0; i < 16; ++i) {
        t.add(kItems[i].name, kItems[i].weight, kItems[i].value,
              ((ga_sel >> i) & 1u) ? "x" : "", ((best_sel >> i) & 1u) ? "x" : "");
    }
    t.print();
    return 0;
}
