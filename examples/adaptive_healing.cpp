// Adaptive healing: the paper's motivating EHW application. The GA core was
// "used as a search engine for real-time adaptive healing" inside the JPL
// self-reconfigurable analog array (SRAA), evolving compensation settings
// that counter extreme-temperature drift in analog electronics.
//
// We cannot attach a cryogenic analog array, so this example substitutes a
// synthetic one (see DESIGN.md): a bank of tunable amplifier stages whose
// effective gains drift with temperature. The 16-bit chromosome packs four
// 4-bit bias codes; the measured figure of merit (a slew-rate error against
// the mission target) is precomputed into a lookup table per temperature —
// exactly the lookup-based FEM arrangement of Sec. IV-B — and the GA re-runs
// whenever the environment drifts, restoring performance.
//
// Build & run:   ./build/examples/adaptive_healing
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "mem/rom.hpp"
#include "system/ga_system.hpp"
#include "util/bits.hpp"
#include "util/table.hpp"

namespace {

/// Synthetic analog array: four cascaded stages. Stage i's gain depends on
/// its 4-bit bias code and on temperature; the mission needs total gain
/// near a target, and the error landscape is rugged in the code space
/// (stage interactions), so healing is a real search problem.
struct AnalogArrayModel {
    double temperature_c;

    /// Per-stage gain for bias code b in 0..15 at this temperature. Drift:
    /// gain curves shift and compress as the device leaves room temp. The
    /// coefficient keeps gains positive and the target reachable across the
    /// mission range (-180..+125 degC) — healing is possible, not trivial.
    double stage_gain(int stage, unsigned code) const {
        const double drift = 1.0 + 8e-4 * (temperature_c - 25.0) * (1.0 + 0.1 * stage);
        const double bias = (static_cast<double>(code) - 7.5) / 7.5;  // -1..1
        // Nonmonotone bias response (device enters a different operating
        // region at the extremes) makes the landscape multimodal.
        return (2.0 + bias - 0.35 * bias * bias * bias) * drift +
               0.05 * std::sin(3.0 * bias + stage);
    }

    double total_gain(std::uint16_t chromosome) const {
        double g = 1.0;
        for (int s = 0; s < 4; ++s)
            g *= stage_gain(s, (chromosome >> (4 * s)) & 0xF);
        return g;
    }

    /// Slew-rate-style figure of merit: u16 fitness, 65535 = perfect.
    std::uint16_t fitness(std::uint16_t chromosome, double target_gain) const {
        const double err = std::abs(total_gain(chromosome) - target_gain) / target_gain;
        return gaip::util::sat_u16(static_cast<std::int64_t>(65535.0 * std::exp(-6.0 * err)));
    }
};

/// "Measure" the whole code space into the fitness lookup ROM for the
/// current temperature (the SRAA measured candidates live; the lookup table
/// is the paper's own FPGA-experiment substitution).
std::shared_ptr<const gaip::mem::BlockRom> measure_table(const AnalogArrayModel& array,
                                                         double target_gain) {
    std::vector<std::uint16_t> words(65536);
    for (std::uint32_t c = 0; c <= 0xFFFF; ++c)
        words[c] = array.fitness(static_cast<std::uint16_t>(c), target_gain);
    return std::make_shared<const gaip::mem::BlockRom>(std::move(words));
}

}  // namespace

int main() {
    using namespace gaip;
    const double target_gain = 16.0;  // mission requirement on total gain
    const std::uint16_t room_temp_code = 0x8888;  // nominal mid-bias setting

    std::printf("Adaptive healing of a synthetic analog array (target gain %.1f)\n\n",
                target_gain);
    util::TextTable table({"Temp (degC)", "Health before (fit)", "Healed code", "Health after",
                           "Gain after", "HW time (ms)"});

    std::uint16_t current_code = room_temp_code;
    for (const double temp : {25.0, -60.0, -120.0, -180.0, 85.0, 125.0}) {
        const AnalogArrayModel array{temp};
        const auto rom = measure_table(array, target_gain);
        const std::uint16_t before = rom->read(current_code);

        // Re-run the GA core against the freshly measured table. Real-time
        // budget: small population, few generations (Sec. III-C.3c — the
        // programmable generation count bounds the response time).
        system::GaSystemConfig cfg;
        cfg.params = {.pop_size = 32, .n_gens = 24, .xover_threshold = 11, .mut_threshold = 2,
                      .seed = static_cast<std::uint16_t>(0x2961 ^ static_cast<int>(temp))};
        cfg.custom_roms = {rom};
        cfg.keep_populations = false;
        system::GaSystem sys(cfg);
        const core::RunResult r = sys.run();

        current_code = r.best_candidate;  // reconfigure the array
        char code_hex[8];
        std::snprintf(code_hex, sizeof(code_hex), "%04X", current_code);
        table.add(temp, before, code_hex, r.best_fitness, array.total_gain(current_code),
                  sys.ga_seconds() * 1e3);
    }

    table.print();
    std::printf("\nAt each environment change the previous configuration degrades (column 2);\n"
                "one bounded GA run recovers a near-target configuration (columns 4-5) in\n"
                "about a millisecond of modeled 50 MHz hardware time — the paper's real-time\n"
                "healing loop.\n");
    return 0;
}
