// Scaling beyond 16-bit chromosomes without resynthesis: two GA cores run
// in lockstep on the MSB and LSB halves of a 32-bit chromosome (Fig. 6),
// with the scalingLogic_parSel glue keeping parent selection coherent.
//
// Build & run:   ./build/examples/dual_core_32bit
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "core/dual_core.hpp"
#include "fitness/functions.hpp"

int main() {
    using namespace gaip;

    // Pick per-half crossover thresholds from a target 32-bit rate using
    // the paper's composition equation xov32 = x1 + x2 - x1*x2. The paper
    // advises lower rates because the composed operator is a (more
    // disruptive) 3-point crossover.
    const double target_rate32 = 0.75;
    const std::uint8_t per_half = core::split_threshold_for_rate32(target_rate32);
    std::printf("target 32-bit crossover rate %.2f -> per-half threshold %u/16"
                " (composed rate %.3f)\n\n",
                target_rate32, per_half,
                core::compose_probability(per_half / 16.0, per_half / 16.0));

    // Find a hidden 32-bit register setting by distance feedback — a search
    // over 4.3e9 configurations that a single 16-bit core cannot encode.
    // Binary GAs face Hamming cliffs on distance objectives, so we do what
    // a practitioner does with this core: try a few programmable seeds and
    // keep the best (Sec. II-C — the reason the seed is a port).
    const std::uint32_t hidden = 0xC0FFEE42;
    const std::pair<std::uint16_t, std::uint16_t> seed_pairs[] = {
        {0x2961, 0xB342}, {0x061F, 0xAAAA}, {0xA0A0, 0xFFFF}};

    core::DualRunResult best{};
    std::uint64_t total_cycles = 0;
    core::DualGaSystem* last_sys = nullptr;
    std::vector<std::unique_ptr<core::DualGaSystem>> systems;
    for (const auto& [s1, s2] : seed_pairs) {
        core::DualGaConfig cfg;
        cfg.pop_size = 64;
        cfg.n_gens = 128;
        cfg.xover_threshold_msb = per_half;
        cfg.xover_threshold_lsb = per_half;
        cfg.mut_threshold_msb = 2;
        cfg.mut_threshold_lsb = 2;
        cfg.seed_msb = s1;
        cfg.seed_lsb = s2;
        cfg.fitness = [=](std::uint32_t x) { return fitness::sphere32(x, hidden); };
        systems.push_back(std::make_unique<core::DualGaSystem>(cfg));
        const core::DualRunResult r = systems.back()->run();
        total_cycles += r.ga_cycles;
        std::printf("seeds (%04X, %04X): best %08X fitness %5u\n", s1, s2, r.best_candidate,
                    r.best_fitness);
        if (r.best_fitness >= best.best_fitness) {
            best = r;
            last_sys = systems.back().get();
        }
    }

    std::printf("\nhidden target : %08X\n", hidden);
    std::printf("best found    : %08X  (fitness %u / 65535)\n", best.best_candidate,
                best.best_fitness);
    std::printf("|error|       : %ld\n",
                std::labs(static_cast<long>(best.best_candidate) - static_cast<long>(hidden)));
    std::printf("total hardware cycles across 3 seeded runs: %llu (%.3f ms at 50 MHz)\n",
                static_cast<unsigned long long>(total_cycles), total_cycles / 50e6 * 1e3);

    // The lockstep invariant, visible from outside: both cores finished in
    // the same state with the same generation counter.
    if (last_sys != nullptr) {
        std::printf("\nlockstep check: MSB core gen=%u bank=%d, LSB core gen=%u bank=%d\n",
                    last_sys->core_msb().generation(), last_sys->core_msb().current_bank(),
                    last_sys->core_lsb().generation(), last_sys->core_lsb().current_bank());
    }
    return 0;
}
