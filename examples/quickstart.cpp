// Quickstart: instantiate the GA IP core system, program its parameters
// through the initialization handshake, run one optimization, and read the
// best candidate back — the minimal integration a user performs.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "fitness/functions.hpp"
#include "system/ga_system.hpp"

int main() {
    using namespace gaip;

    // 1. Describe the system: which fitness module(s) to attach and the GA
    //    parameters the initialization module will program (Table III).
    system::GaSystemConfig cfg;
    cfg.params.pop_size = 64;         // individuals per generation (2..128)
    cfg.params.n_gens = 64;           // generations to evolve
    cfg.params.xover_threshold = 10;  // crossover rate 10/16 = 0.625
    cfg.params.mut_threshold = 1;     // mutation rate 1/16 = 0.0625
    cfg.params.seed = 0x061F;         // RNG seed (programmable, Sec. II-C)
    cfg.internal_fems = {fitness::FitnessId::kMBf6_2};  // lookup FEM, slot 0

    // 2. Build and run. This assembles the Fig. 4 system — GA core, CA-PRNG
    //    RNG module, GA memory (50 MHz domain), initialization/application
    //    modules and the fitness FEM (200 MHz domain) — and simulates it at
    //    cycle level until GA_done.
    system::GaSystem sys(cfg);
    const core::RunResult result = sys.run();

    // 3. Read the results.
    std::printf("best candidate : x = %u (0x%04X)\n", result.best_candidate,
                result.best_candidate);
    std::printf("best fitness   : %u (global optimum of mBF6_2: %u)\n", result.best_fitness,
                fitness::grid_optimum(fitness::FitnessId::kMBf6_2).best_value);
    std::printf("evaluations    : %llu\n",
                static_cast<unsigned long long>(result.evaluations));
    std::printf("hardware time  : %llu cycles @ 50 MHz = %.3f ms\n",
                static_cast<unsigned long long>(sys.ga_cycles()), sys.ga_seconds() * 1e3);

    std::printf("\nconvergence (best fitness per generation):\n  ");
    for (std::size_t g = 0; g < result.history.size(); g += 8)
        std::printf("g%zu:%u  ", g, result.history[g].best_fit);
    std::printf("\n");
    return 0;
}
