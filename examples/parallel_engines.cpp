// Parallel seed-diverse engines: the cheapest way to exploit the core's
// small footprint (13% of an xc2vp30 → several engines fit one device).
// K complete GA systems run concurrently on different seeds; a best-of
// combiner exports the winner — K times the seed coverage in the wall-clock
// time of one run.
//
// Build & run:   ./build/examples/parallel_engines
#include <cstdio>

#include "fitness/functions.hpp"
#include "system/parallel.hpp"
#include "util/table.hpp"

int main() {
    using namespace gaip;
    const auto fn = fitness::FitnessId::kBf6;  // hard, many local maxima
    std::printf("Four GA engines on one simulated FPGA, one seed each (BF6, pop 32, 24 gens)\n\n");

    system::ParallelGaConfig cfg;
    cfg.params = {.pop_size = 32, .n_gens = 24, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = 0};
    cfg.seeds = {0x2961, 0x061F, 0xB342, 0xAAAA};
    cfg.fitness = fn;

    system::ParallelGaSystem par(cfg);
    const system::ParallelRunResult r = par.run();

    util::TextTable table({"Engine", "Seed", "Best fitness", "Best candidate"});
    for (std::size_t i = 0; i < r.per_engine.size(); ++i) {
        table.add(i, util::hex16(cfg.seeds[i]), r.per_engine[i].best_fitness,
                  util::hex16(r.per_engine[i].best_candidate));
    }
    table.print();

    std::printf("\nwinner: engine %zu with fitness %u (optimum %u) after %llu concurrent"
                " 50 MHz cycles\n",
                r.best_engine, r.best_fitness, fitness::grid_optimum(fn).best_value,
                static_cast<unsigned long long>(r.ga_cycles));
    std::printf("sequentially, the same seed coverage would cost ~%zux the hardware time.\n",
                r.per_engine.size());

    // Resource sanity: four engines of a 13%% core still fit the device.
    std::printf("\nfootprint: 4 engines x ~13%% slices ~ 52%% of the xc2vp30 — the parallel\n"
                "configuration the paper's compact core makes possible (Sec. II-B [11-13]).\n");
    return 0;
}
