// The debugging workflow around the core: the three instruments an
// integrator uses when something misbehaves on real hardware —
//   1. VCD waveforms   (the NC-Verilog/ModelSim view of the design),
//   2. an ILA capture  (the ChipScope view: trigger + window on live wires),
//   3. a scan dump     (full register state through the test port,
//                       restored transparently afterwards).
//
// Build & run:   ./build/examples/debug_instruments
#include <cstdio>

#include "fitness/functions.hpp"
#include "system/ga_system.hpp"
#include "system/ila.hpp"

int main() {
    using namespace gaip;
    std::printf("Debug instruments demo (mBF6_2, pop 16, 8 generations)\n\n");

    system::GaSystemConfig cfg;
    cfg.params = {.pop_size = 16, .n_gens = 8, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = 0x061F};
    cfg.internal_fems = {fitness::FitnessId::kMBf6_2};
    cfg.vcd_path = "ga_module.vcd";  // instrument 1: full waveform dump
    system::GaSystem sys(cfg);

    // Instrument 2: ILA on the memory write port, triggered by the first
    // write into bank 1 (the first elite copy).
    system::IntegratedLogicAnalyzer ila(
        {{"mem_wr", [&] { return sys.wires().mem_wr.read() ? 1ull : 0ull; }},
         {"mem_address", [&] { return static_cast<std::uint64_t>(sys.wires().mem_address.read()); }},
         {"mem_data", [&] { return static_cast<std::uint64_t>(sys.wires().mem_data_out.read()); }}},
        [&] { return sys.wires().mem_wr.read() && (sys.wires().mem_address.read() & 0x80); },
        {.pre_trigger = 4, .post_trigger = 8, .one_shot = true});
    sys.kernel().bind(ila, sys.ga_clock());

    // Run halfway, take a scan dump (instrument 3), resume to completion.
    auto& k = sys.kernel();
    k.reset();
    k.run_until(
        sys.app_clock(),
        [&] {
            return sys.core().generation() >= 4 &&
                   sys.core().state() == core::GaCore::State::kSelRn;
        },
        10'000'000);

    const unsigned len = sys.core().scan_chain().length();
    std::vector<bool> dump;
    sys.wires().test.drive(true);
    for (unsigned i = 0; i < len; ++i) {
        dump.push_back(sys.wires().scanout.read());
        sys.wires().scanin.drive(sys.wires().scanout.read());  // rotate = restore
        k.run_cycles(sys.ga_clock(), 1);
    }
    sys.wires().test.drive(false);
    unsigned ones = 0;
    for (const bool b : dump) ones += b;
    std::printf("scan dump    : %u-bit chain captured mid-run at generation %u"
                " (%u bits set), state restored by rotation\n",
                len, sys.core().generation(), ones);

    k.run_until(sys.app_clock(), [&] { return sys.app_module().done(); }, 100'000'000);
    std::printf("run result   : best=%u candidate=0x%04X\n", sys.core().best_fitness(),
                sys.core().best_candidate());

    if (ila.triggered()) {
        std::printf("\nILA capture around the first bank-1 write (the elite copy):\n");
        std::printf("  %-6s %-6s %-10s %-10s\n", "sample", "wr", "address", "data");
        const auto& cap = ila.capture();
        for (std::size_t i = 0; i < cap.size(); ++i) {
            std::printf("  %-6zu %-6llu 0x%02llX%s      0x%08llX%s\n", i,
                        static_cast<unsigned long long>(cap[i].values[0]),
                        static_cast<unsigned long long>(cap[i].values[1]),
                        cap[i].at_trigger ? "*" : " ",
                        static_cast<unsigned long long>(cap[i].values[2]),
                        cap[i].at_trigger ? "  <- trigger" : "");
        }
    }

    std::printf("\nVCD waveform : ga_module.vcd (open with GTKWave; scopes"
                " ga_system.ga_core, .rng_module, .ga_memory, .ports)\n");
    return 0;
}
