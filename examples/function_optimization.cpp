// Parameter-exploration workflow on a hard multimodal function
// (mShubert2D): exactly what the paper's PRESET modes are for. The user
// starts from the three built-in presets (Table IV) to bracket the
// behaviour, then refines with programmed parameters — no resynthesis at
// any point.
//
// Build & run:   ./build/examples/function_optimization
#include <cstdio>

#include "fitness/functions.hpp"
#include "system/ga_system.hpp"
#include "util/table.hpp"

namespace {

gaip::core::RunResult run_with(const gaip::system::GaSystemConfig& cfg, std::uint64_t* cycles) {
    gaip::system::GaSystem sys(cfg);
    const gaip::core::RunResult r = sys.run();
    if (cycles != nullptr) *cycles = sys.ga_cycles();
    return r;
}

}  // namespace

int main() {
    using namespace gaip;
    const auto fn = fitness::FitnessId::kMShubert2D;
    std::printf("Optimizing mShubert2D (49 global optima at fitness 65535, rugged landscape)\n\n");

    util::TextTable table({"Configuration", "Pop", "Gens", "Best fitness", "Argbest (x1,x2)",
                           "HW cycles"});

    // Phase 1: the three preset modes. Note preset mode selection happens
    // on the 2-bit preset pins — parameter initialization is skipped
    // entirely (also the ASIC fault-tolerance path, Sec. III-C.1a).
    for (std::uint8_t mode = 1; mode <= 3; ++mode) {
        system::GaSystemConfig cfg;
        cfg.preset = mode;
        cfg.skip_initialization = true;
        cfg.internal_fems = {fn};
        cfg.keep_populations = false;
        std::uint64_t cycles = 0;
        const core::RunResult r = run_with(cfg, &cycles);
        const core::GaParameters p = core::preset_parameters(mode);
        char arg[32];
        std::snprintf(arg, sizeof(arg), "(%u,%u)", r.best_candidate >> 8,
                      r.best_candidate & 0xFF);
        table.add("preset mode " + std::to_string(mode), p.pop_size, p.n_gens, r.best_fitness,
                  arg, static_cast<unsigned long long>(cycles));
    }

    // Phase 2: user-programmed refinement around the best preset — smaller
    // budget, tuned thresholds, a couple of seeds.
    for (const std::uint16_t seed : {0xAAAA, 0x061F}) {
        system::GaSystemConfig cfg;
        cfg.params = {.pop_size = 64, .n_gens = 48, .xover_threshold = 11, .mut_threshold = 2,
                      .seed = seed};
        cfg.internal_fems = {fn};
        cfg.keep_populations = false;
        std::uint64_t cycles = 0;
        const core::RunResult r = run_with(cfg, &cycles);
        char arg[32];
        std::snprintf(arg, sizeof(arg), "(%u,%u)", r.best_candidate >> 8,
                      r.best_candidate & 0xFF);
        table.add("user, seed " + util::hex16(seed), 64, 48, r.best_fitness, arg,
                  static_cast<unsigned long long>(cycles));
    }

    table.print();
    std::printf("\nEvery row above ran on the SAME modeled netlist — presets via the preset\n"
                "pins, user settings via the two-way initialization handshake.\n");
    return 0;
}
