// Intrinsic evolvable hardware in miniature (the EHW class of Sec. II-D,
// after Thompson [37] and Sekanina's virtual evolvable devices [38]): the
// GA core evolves the configuration bitstream of a small virtual
// reconfigurable circuit (VRC) until the circuit implements a target
// function.
//
// The VRC: two rows of two cells over four primary inputs.
//   * Row 1, cell j: inputs selected from {in0..in3}, function from
//     {AND, OR, XOR, NAND}.
//   * Row 2, cell j: inputs selected from {row-1 outputs, in0, in1}.
//   * Output: row-2 cell 0.
// Each cell costs 4 configuration bits (2 per input mux would need more, so
// the encoding packs: 2 bits function + 2 bits input pair selector), giving
// a 16-bit chromosome = the GA core's native width.
//
// Fitness: agreement of the configured circuit with the target truth table
// over all 16 input vectors (scaled to u16) — evaluated "intrinsically" by
// exercising the device model, exactly how an intrinsic-EHW FEM works.
//
// Build & run:   ./build/examples/evolvable_circuit
#include <bit>
#include <cstdio>
#include <memory>
#include <vector>

#include "mem/rom.hpp"
#include "system/ga_system.hpp"
#include "util/table.hpp"

namespace {

/// One configurable cell: 2 function bits + 2 input-pair bits.
unsigned cell_eval(unsigned cfg, unsigned a, unsigned b) {
    switch (cfg & 0x3) {
        case 0: return a & b;
        case 1: return a | b;
        case 2: return a ^ b;
        default: return (a & b) ^ 1u;  // NAND
    }
}

/// Evaluate the VRC on a 4-bit input vector under a 16-bit configuration.
unsigned vrc_eval(std::uint16_t cfg, unsigned in) {
    const unsigned i0 = (in >> 0) & 1, i1 = (in >> 1) & 1;
    const unsigned i2 = (in >> 2) & 1, i3 = (in >> 3) & 1;

    auto pick_pair_row1 = [&](unsigned sel, unsigned& a, unsigned& b) {
        switch (sel & 0x3) {
            case 0: a = i0; b = i1; break;
            case 1: a = i2; b = i3; break;
            case 2: a = i0; b = i2; break;
            default: a = i1; b = i3; break;
        }
    };
    unsigned a, b;
    pick_pair_row1((cfg >> 2) & 0x3, a, b);
    const unsigned r1c0 = cell_eval(cfg >> 0, a, b);
    pick_pair_row1((cfg >> 6) & 0x3, a, b);
    const unsigned r1c1 = cell_eval(cfg >> 4, a, b);

    auto pick_pair_row2 = [&](unsigned sel, unsigned& x, unsigned& y) {
        switch (sel & 0x3) {
            case 0: x = r1c0; y = r1c1; break;
            case 1: x = r1c0; y = i0; break;
            case 2: x = r1c1; y = i1; break;
            default: x = r1c0; y = i3; break;
        }
    };
    unsigned x, y;
    pick_pair_row2((cfg >> 10) & 0x3, x, y);
    const unsigned r2c0 = cell_eval(cfg >> 8, x, y);
    pick_pair_row2((cfg >> 14) & 0x3, x, y);
    const unsigned r2c1 = cell_eval(cfg >> 12, x, y);
    return r2c0 ^ (r2c1 & 0);  // output = row-2 cell 0 (cell 1 is spare)
}

struct Target {
    const char* name;
    unsigned (*fn)(unsigned);
};

unsigned parity4(unsigned in) { return (std::popcount(in) & 1u); }
unsigned majority4(unsigned in) { return std::popcount(in) >= 3 ? 1u : 0u; }
unsigned mux2(unsigned in) {  // out = in1 if in0 else in2
    return (in & 1) ? ((in >> 1) & 1) : ((in >> 2) & 1);
}

std::uint16_t agreement_fitness(std::uint16_t cfg, unsigned (*target)(unsigned)) {
    unsigned matches = 0;
    for (unsigned in = 0; in < 16; ++in)
        if (vrc_eval(cfg, in) == target(in)) ++matches;
    return static_cast<std::uint16_t>(matches * 4095u);
}

}  // namespace

int main() {
    using namespace gaip;
    std::printf("Evolving a 2x2 virtual reconfigurable circuit (16-bit configuration)\n\n");

    const Target targets[] = {{"XOR2 (in0^in1)", [](unsigned in) {
                                   return ((in ^ (in >> 1)) & 1u);
                               }},
                              {"2:1 mux", mux2},
                              {"majority-of-4 (>=3)", majority4},
                              {"parity-4", parity4}};

    util::TextTable table({"Target function", "Best agreement", "Perfect?", "Config",
                           "Evaluations", "HW time (ms)"});
    for (const Target& t : targets) {
        std::vector<std::uint16_t> rom(65536);
        for (std::uint32_t c = 0; c <= 0xFFFF; ++c)
            rom[c] = agreement_fitness(static_cast<std::uint16_t>(c), t.fn);

        system::GaSystemConfig cfg;
        cfg.params = {.pop_size = 48, .n_gens = 40, .xover_threshold = 11, .mut_threshold = 3,
                      .seed = 0xB342};
        cfg.custom_roms = {std::make_shared<const mem::BlockRom>(std::move(rom))};
        cfg.keep_populations = false;
        system::GaSystem sys(cfg);
        const core::RunResult r = sys.run();

        const unsigned matches = r.best_fitness / 4095u;
        char hex[8];
        std::snprintf(hex, sizeof(hex), "%04X", r.best_candidate);
        table.add(t.name, std::to_string(matches) + "/16", matches == 16 ? "yes" : "no", hex,
                  static_cast<unsigned long long>(r.evaluations), sys.ga_seconds() * 1e3);
    }
    table.print();

    std::printf("\nThe GA explores VRC configurations exactly as an intrinsic-EHW system\n"
                "does: each candidate bitstream is loaded into the (simulated) device and\n"
                "judged by observed behavior. The XOR-tree functions (XOR2 and even\n"
                "parity-4, via two row-1 XORs into a row-2 XOR) evolve to perfection; the\n"
                "2:1 mux and majority need input routings this tiny fabric lacks, so the GA\n"
                "converges to the best achievable 14/16 agreement instead — the honest\n"
                "behavior an EHW designer sizes the reconfigurable fabric against.\n");
    return 0;
}
