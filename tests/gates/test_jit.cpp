// Native-codegen ("JIT") backend verification.
//
// Differential: a CompiledNetlist built with Backend::kJitForce must be
// bit- and cycle-identical to the interpreted engine on the same source
// netlist — every net, every lane, every word, across eval(), clock(),
// full-width scan shifts and cone re-evaluation — at W = 1/2/4/8 on the
// CA PRNG block and at W = 1/8 on the complete GA core.
//
// Cache: the content-hashed artifact cache must (a) skip the compiler on
// warm in-process and on-disk hits (asserted via jit::Stats — the "warm
// rerun performs zero compiler invocations" acceptance bar), (b) reject
// corrupted/truncated artifacts and rebuild cleanly, and (c) miss when the
// instruction stream changes (stale-hash), even when a poisoned artifact
// squats on the new key.
//
// Environment contract: GAIP_JIT parses strictly (like GAIP_KERNEL), and
// a missing host compiler degrades kJit to the interpreter gracefully
// while kJitForce throws. The no-compiler half runs when the suite is
// launched with GAIP_JIT_CXX=/nonexistent/cxx (CI does this; with a real
// compiler those assertions are skipped).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "gates/blocks.hpp"
#include "gates/builder.hpp"
#include "gates/compiled.hpp"
#include "gates/compiled_kernels.hpp"
#include "gates/ga_core_gates.hpp"
#include "gates/jit.hpp"

namespace gaip::gates {
namespace {

namespace fs = std::filesystem;

/// Deterministic stimulus source (splitmix64).
struct Rand {
    std::uint64_t s;
    explicit Rand(std::uint64_t seed) : s(seed) {}
    std::uint64_t next() {
        s += 0x9E3779B97F4A7C15ull;
        std::uint64_t z = s;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }
};

std::vector<Net> input_nets(const GateNetlist& nl) {
    std::vector<Net> in;
    for (Net n = 0; n < nl.net_count(); ++n)
        if (nl.op_of(n) == GateOp::kInput) in.push_back(n);
    return in;
}

/// Scoped environment override restoring the previous value on exit.
class EnvGuard {
public:
    EnvGuard(const char* name, const char* value) : name_(name) {
        if (const char* old = std::getenv(name)) {
            had_ = true;
            old_ = old;
        }
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~EnvGuard() {
        if (had_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }
    EnvGuard(const EnvGuard&) = delete;
    EnvGuard& operator=(const EnvGuard&) = delete;

private:
    const char* name_;
    bool had_ = false;
    std::string old_;
};

/// Fresh private artifact cache + empty module registry + zeroed counters,
/// torn down on scope exit — cache-behavior tests must not see (or leave)
/// artifacts in the user's real cache.
class ScopedCache {
public:
    ScopedCache()
        : dir_(fs::temp_directory_path() /
               ("gaip-jit-test-" + std::to_string(::getpid()) + "-" +
                std::to_string(counter_++))),
          env_("GAIP_JIT_CACHE", dir_.c_str()) {
        fs::create_directories(dir_);
        jit::clear_module_registry();
        jit::reset_stats();
    }
    ~ScopedCache() {
        jit::clear_module_registry();
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    const std::string& dir() const { return dir_; }

private:
    static inline int counter_ = 0;
    std::string dir_;
    EnvGuard env_;
};

/// Every live net of both engines must agree in every word.
void expect_all_nets_equal(const CompiledNetlist& a, const CompiledNetlist& b,
                           unsigned cycle) {
    ASSERT_EQ(a.net_count(), b.net_count());
    ASSERT_EQ(a.words(), b.words());
    for (Net n = 0; n < a.net_count(); ++n)
        for (unsigned w = 0; w < a.words(); ++w)
            ASSERT_EQ(a.lanes_word(n, w), b.lanes_word(n, w))
                << "net " << n << " word " << w << " @cycle " << cycle;
}

// ---------------------------------------------------------------------------
// Environment contract.

TEST(JitBackend, GaipJitParsesStrictly) {
    EnvGuard env("GAIP_JIT", "fast");  // plausible typo for "force"
    EXPECT_THROW(resolve_backend(Backend::kAuto), std::invalid_argument);
    EXPECT_THROW(resolve_backend(Backend::kInterp), std::invalid_argument);
    // A typo'd engine request must fail the netlist build loudly, not
    // silently benchmark the wrong engine.
    GateNetlist nl;
    nl.output("y", nl.g_and(nl.input("a"), nl.input("b")));
    EXPECT_THROW(CompiledNetlist(nl, {.words = 1}), std::invalid_argument);
}

TEST(JitBackend, GaipJitAcceptedSpellings) {
    for (const char* v : {"0", "off", "interp"}) {
        EnvGuard env("GAIP_JIT", v);
        EXPECT_EQ(resolve_backend(Backend::kJit), Backend::kInterp) << v;
    }
    for (const char* v : {"1", "on", "jit"}) {
        EnvGuard env("GAIP_JIT", v);
        EXPECT_EQ(resolve_backend(Backend::kInterp), Backend::kJit) << v;
    }
    {
        EnvGuard env("GAIP_JIT", "force");
        EXPECT_EQ(resolve_backend(Backend::kAuto), Backend::kJitForce);
    }
    {
        EnvGuard env("GAIP_JIT", nullptr);
        EXPECT_EQ(resolve_backend(Backend::kAuto), Backend::kInterp);
        EXPECT_EQ(resolve_backend(Backend::kJit), Backend::kJit);
        EXPECT_EQ(resolve_backend(Backend::kJitForce), Backend::kJitForce);
    }
}

TEST(JitBackend, GaipKernelParsesStrictly) {
    EnvGuard env("GAIP_KERNEL", "avx9000");
    EXPECT_THROW(kernels::select(1), std::invalid_argument);
    EXPECT_THROW(kernels::selected_name(1), std::invalid_argument);
}

TEST(JitBackend, KnownKernelNamesAlwaysResolve) {
    // Known variants the CPU lacks degrade to generic; the name is never
    // null and select() never returns a null kernel.
    for (const char* v : {"generic", "avx2", "avx512"}) {
        EnvGuard env("GAIP_KERNEL", v);
        for (const unsigned w : {1u, 2u, 4u, 8u}) {
            EXPECT_NE(kernels::select(w), nullptr) << v;
            EXPECT_NE(kernels::selected_name(w), nullptr) << v;
        }
    }
    EnvGuard env("GAIP_KERNEL", "generic");
    EXPECT_STREQ(kernels::selected_name(1), "generic");
}

TEST(JitBackend, GracefulFallbackWithoutCompiler) {
    // Exercised for real when the suite runs with
    // GAIP_JIT_CXX=/nonexistent/cxx (compiler resolution is pinned at
    // first use, so the switch must happen at process launch — CI's
    // no-compiler job does exactly that).
    if (jit::available())
        GTEST_SKIP() << "host compiler present; run with GAIP_JIT_CXX=/nonexistent/cxx";
    jit::reset_stats();
    GateNetlist nl;
    const auto blk = build_ca_prng(nl);
    for (std::size_t i = 0; i < blk.state.size(); ++i)
        nl.output("rn" + std::to_string(i), blk.state[i]);

    CompiledNetlist soft(nl, {.words = 1, .backend = Backend::kJit});
    EXPECT_FALSE(soft.jit_active()) << "kJit must degrade to the interpreter";
    EXPECT_GE(jit::stats().fallbacks, 1u);
    // The degraded engine still simulates: clock the PRNG a few steps and
    // require state movement (exact values are pinned elsewhere).
    soft.set_input_all(blk.load, false);
    soft.eval();
    soft.clock();
    EXPECT_THROW(CompiledNetlist(nl, {.words = 1, .backend = Backend::kJitForce}),
                 std::runtime_error);
}

// ---------------------------------------------------------------------------
// Differential: JIT vs interpreter.

TEST(JitDifferential, CaPrngAllWidths) {
    if (!jit::available()) GTEST_SKIP() << "no host compiler for the JIT backend";
    GateNetlist nl;
    const auto blk = build_ca_prng(nl);
    for (std::size_t i = 0; i < blk.state.size(); ++i)
        nl.output("rn" + std::to_string(i), blk.state[i]);
    const std::vector<Net> ins = input_nets(nl);

    for (const unsigned words : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE("words=" + std::to_string(words));
        CompiledNetlist interp(nl, {.words = words, .backend = Backend::kInterp});
        CompiledNetlist jitted(nl, {.words = words, .backend = Backend::kJitForce});
        ASSERT_FALSE(interp.jit_active());
        ASSERT_TRUE(jitted.jit_active());

        Rand rnd(0x2961 + words);
        for (unsigned cycle = 0; cycle < 500; ++cycle) {
            for (const Net in : ins)
                for (unsigned w = 0; w < words; ++w) {
                    const std::uint64_t bits = rnd.next();
                    interp.set_input_word(in, w, bits);
                    jitted.set_input_word(in, w, bits);
                }
            interp.eval();
            jitted.eval();
            expect_all_nets_equal(interp, jitted, cycle);
            interp.clock();
            jitted.clock();
            expect_all_nets_equal(interp, jitted, cycle);
        }
    }
}

TEST(JitDifferential, GaCoreEvalClockScanW1AndW8) {
    if (!jit::available()) GTEST_SKIP() << "no host compiler for the JIT backend";
    const auto g = build_ga_core_netlist();
    const std::vector<Net> ins = input_nets(g->nl);

    for (const unsigned words : {1u, 8u}) {
        SCOPED_TRACE("words=" + std::to_string(words));
        CompiledNetlist interp(g->nl, {.words = words, .backend = Backend::kInterp});
        CompiledNetlist jitted(g->nl, {.words = words, .backend = Backend::kJitForce});
        ASSERT_TRUE(jitted.jit_active());

        Rand rnd(0xB342 + words);
        std::vector<std::uint64_t> scan_in(words), out_a(words), out_b(words);
        for (unsigned cycle = 0; cycle < 300; ++cycle) {
            for (const Net in : ins)
                for (unsigned w = 0; w < words; ++w) {
                    const std::uint64_t bits = rnd.next();
                    interp.set_input_word(in, w, bits);
                    jitted.set_input_word(in, w, bits);
                }
            interp.eval();
            jitted.eval();
            if (cycle % 50 == 0) expect_all_nets_equal(interp, jitted, cycle);

            if (cycle % 3 == 2) {
                // Full-width scan shift (register clocking + scan-chain
                // muxing is fused into the emitted clock/scan functions —
                // both legs must agree with the interpreter).
                for (unsigned w = 0; w < words; ++w) scan_in[w] = rnd.next();
                interp.clock_scan(scan_in.data(), out_a.data());
                jitted.clock_scan(scan_in.data(), out_b.data());
                ASSERT_EQ(out_a, out_b) << "scan out @cycle " << cycle;
            } else {
                interp.clock();
                jitted.clock();
            }
            for (unsigned w = 0; w < words; ++w)
                ASSERT_EQ(interp.scan_tail_word(w), jitted.scan_tail_word(w))
                    << "scan tail @cycle " << cycle;
        }
        expect_all_nets_equal(interp, jitted, 300);

        // Scan round trip: shift the whole captured state out of both
        // engines (zero fill behind) and require identical chains.
        const std::size_t chain = interp.register_count();
        for (std::size_t k = 0; k < chain; ++k) {
            interp.clock_scan(nullptr, out_a.data());
            jitted.clock_scan(nullptr, out_b.data());
            ASSERT_EQ(out_a, out_b) << "round-trip shift " << k;
        }
    }
}

TEST(JitDifferential, ConeEvalRunsOnJitUpdatedState) {
    if (!jit::available()) GTEST_SKIP() << "no host compiler for the JIT backend";
    // Cones always execute on the interpreter kernel, over whatever the
    // last full pass (native or interpreted) left in storage: after a JIT
    // eval, an input-cone re-eval must land both engines on identical
    // state.
    const auto g = build_ga_core_netlist();
    const std::vector<Net> ins = input_nets(g->nl);
    CompiledNetlist interp(g->nl, {.words = 1, .backend = Backend::kInterp});
    CompiledNetlist jitted(g->nl, {.words = 1, .backend = Backend::kJitForce});
    ASSERT_TRUE(jitted.jit_active());

    const std::vector<Net> cone_src = {g->fit_valid};
    const std::uint32_t ca = interp.make_cone(cone_src);
    const std::uint32_t cb = jitted.make_cone(cone_src);
    ASSERT_EQ(interp.cone_size(ca), jitted.cone_size(cb));
    ASSERT_GT(interp.cone_size(ca), 0u);

    Rand rnd(0xAAAA);
    for (unsigned cycle = 0; cycle < 100; ++cycle) {
        for (const Net in : ins) {
            const std::uint64_t bits = rnd.next();
            interp.set_input_lanes(in, bits);
            jitted.set_input_lanes(in, bits);
        }
        interp.eval();
        jitted.eval();
        const std::uint64_t v = rnd.next();
        interp.set_input_lanes(g->fit_valid, v);
        jitted.set_input_lanes(g->fit_valid, v);
        interp.eval_cone(ca);
        jitted.eval_cone(cb);
        expect_all_nets_equal(interp, jitted, cycle);
        interp.clock();
        jitted.clock();
    }
}

// ---------------------------------------------------------------------------
// Artifact cache.

/// Tiny hand-built request: a few real instructions over a private slot
/// file, so cache tests compile in milliseconds and can compute keys and
/// artifact paths without a CompiledNetlist.
struct TinyProgram {
    std::vector<LaneInstr> code;
    jit::Request req;
    explicit TinyProgram(unsigned words = 1, std::uint64_t inv = 0) {
        constexpr std::uint64_t kAll = ~std::uint64_t{0};
        code = {
            {4, 2, 3, kAll, 0, inv},    // slot4 = and(2,3) ^ inv
            {5, 4, 2, 0, kAll, 0},      // slot5 = xor(4,2)
            {7, 5, 6, kAll, kAll, 0},   // slot7 = or(5, reg q)
        };
        req.code = code.data();
        req.n = code.size();
        req.words = words;
        req.slots = 8;
        req.regs_q = {6};
        req.regs_d = {7};
    }
};

TEST(JitCache, KeyCoversStreamWordsAndFlags) {
    if (!jit::available()) GTEST_SKIP() << "no host compiler for the JIT backend";
    TinyProgram a, b;
    EXPECT_EQ(jit::cache_key(a.req), jit::cache_key(b.req)) << "key must be deterministic";
    TinyProgram wide(/*words=*/4);
    EXPECT_NE(jit::cache_key(a.req), jit::cache_key(wide.req));
    TinyProgram inverted(/*words=*/1, /*inv=*/~std::uint64_t{0});
    EXPECT_NE(jit::cache_key(a.req), jit::cache_key(inverted.req));
}

TEST(JitCache, WarmHitsSkipTheCompiler) {
    if (!jit::available()) GTEST_SKIP() << "no host compiler for the JIT backend";
    ScopedCache cache;
    TinyProgram prog;

    // Cold: one miss, one compiler invocation.
    auto m1 = jit::compile(prog.req, /*force=*/true);
    ASSERT_NE(m1, nullptr);
    EXPECT_FALSE(m1->cache_hit());
    jit::Stats s = jit::stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.compiles, 1u);
    EXPECT_GT(s.compile_ms_total, 0.0);

    // In-process warm: the registry returns the live module, zero compiles.
    auto m2 = jit::compile(prog.req, true);
    ASSERT_NE(m2, nullptr);
    s = jit::stats();
    EXPECT_EQ(s.memory_hits, 1u);
    EXPECT_EQ(s.compiles, 1u);
    EXPECT_EQ(m2.get(), m1.get());

    // On-disk warm (a later process): dlopen only — ZERO compiler
    // invocations, the acceptance bar for warm campaign reruns.
    jit::clear_module_registry();
    auto m3 = jit::compile(prog.req, true);
    ASSERT_NE(m3, nullptr);
    EXPECT_TRUE(m3->cache_hit());
    s = jit::stats();
    EXPECT_EQ(s.disk_hits, 1u);
    EXPECT_EQ(s.compiles, 1u) << "warm rerun must not invoke the compiler";
    EXPECT_EQ(m3->key(), jit::cache_key(prog.req));
}

TEST(JitCache, CorruptedArtifactForcesCleanRebuild) {
    if (!jit::available()) GTEST_SKIP() << "no host compiler for the JIT backend";
    // Corruption is seeded into FRESH cache dirs before any load: a loaded
    // artifact path stays deduplicated by name inside glibc for the
    // process lifetime, so only a never-loaded path models what a new
    // process sees after another writer corrupted the cache.
    TinyProgram prog;
    std::vector<char> elf_head(64);
    {
        // Learn what a valid artifact's leading bytes look like.
        ScopedCache cache;
        ASSERT_NE(jit::compile(prog.req, true), nullptr);
        std::ifstream in(cache.dir() + "/" + jit::cache_key(prog.req) + ".so",
                         std::ios::binary);
        in.read(elf_head.data(), static_cast<std::streamsize>(elf_head.size()));
        ASSERT_EQ(in.gcount(), static_cast<std::streamsize>(elf_head.size()));
    }
    {
        // Garbage squatting on the key's path: dlopen must reject it and
        // the build must recover with a fresh compile.
        ScopedCache cache;
        std::ofstream(cache.dir() + "/" + jit::cache_key(prog.req) + ".so")
            << "this is not an ELF shared object";
        auto m = jit::compile(prog.req, true);
        ASSERT_NE(m, nullptr);
        EXPECT_FALSE(m->cache_hit());
        const jit::Stats s = jit::stats();
        EXPECT_EQ(s.disk_hits, 0u);
        EXPECT_EQ(s.misses, 1u);
        EXPECT_EQ(s.compiles, 1u);
    }
    {
        // Truncated (half-written) artifact: a genuine ELF header with the
        // body missing. Same clean rebuild.
        ScopedCache cache;
        std::ofstream(cache.dir() + "/" + jit::cache_key(prog.req) + ".so",
                      std::ios::binary)
            .write(elf_head.data(), static_cast<std::streamsize>(elf_head.size()));
        auto m = jit::compile(prog.req, true);
        ASSERT_NE(m, nullptr);
        EXPECT_FALSE(m->cache_hit());
        const jit::Stats s = jit::stats();
        EXPECT_EQ(s.disk_hits, 0u);
        EXPECT_EQ(s.compiles, 1u);
    }
}

TEST(JitCache, StaleHashMissesAndRejectsSquattingArtifact) {
    if (!jit::available()) GTEST_SKIP() << "no host compiler for the JIT backend";
    ScopedCache cache;
    TinyProgram before;
    ASSERT_NE(jit::compile(before.req, true), nullptr);

    // Change the instruction stream: the key must change (no stale hit)...
    TinyProgram after(/*words=*/1, /*inv=*/~std::uint64_t{0});
    const std::string new_key = jit::cache_key(after.req);
    ASSERT_NE(new_key, jit::cache_key(before.req));

    // ...and even a poisoned cache — the OLD artifact copied onto the NEW
    // key's path — must be rejected via the embedded key check and
    // recompiled, not executed.
    fs::copy_file(cache.dir() + "/" + jit::cache_key(before.req) + ".so",
                  cache.dir() + "/" + new_key + ".so");
    jit::clear_module_registry();
    jit::reset_stats();
    auto m = jit::compile(after.req, true);
    ASSERT_NE(m, nullptr);
    EXPECT_FALSE(m->cache_hit());
    EXPECT_EQ(m->key(), new_key);
    jit::Stats s = jit::stats();
    EXPECT_EQ(s.disk_hits, 0u);
    EXPECT_EQ(s.compiles, 1u);
}

TEST(JitCache, CompiledNetlistCountsOneCompilePerStream) {
    if (!jit::available()) GTEST_SKIP() << "no host compiler for the JIT backend";
    // End-to-end through CompiledNetlist: N engines over the same netlist
    // and width share one artifact (campaign workers, batch runners).
    ScopedCache cache;
    GateNetlist nl;
    const auto blk = build_ca_prng(nl);
    for (std::size_t i = 0; i < blk.state.size(); ++i)
        nl.output("rn" + std::to_string(i), blk.state[i]);

    CompiledNetlist first(nl, {.words = 2, .backend = Backend::kJitForce});
    CompiledNetlist second(nl, {.words = 2, .backend = Backend::kJitForce});
    ASSERT_TRUE(first.jit_active());
    ASSERT_TRUE(second.jit_active());
    EXPECT_EQ(first.jit_module()->key(), second.jit_module()->key());
    const jit::Stats s = jit::stats();
    EXPECT_EQ(s.compiles, 1u);
    EXPECT_EQ(s.memory_hits, 1u);
}

}  // namespace
}  // namespace gaip::gates
