// Technology mapping + static timing analysis over gate netlists.
#include <gtest/gtest.h>

#include "gates/asic_flow.hpp"
#include "gates/blocks.hpp"
#include "gates/ga_core_gates.hpp"
#include "gates/rng_gates.hpp"

namespace gaip::gates {
namespace {

TEST(AsicFlow, CountsCellsAndAreaExactly) {
    GateNetlist nl;
    const Net a = nl.input("a");
    const Net b = nl.input("b");
    const Net x = nl.g_and(a, b);
    const Net y = nl.g_xor(x, a);
    const Net q = nl.reg("r");
    nl.connect_reg(q, y);

    const StdCellLibrary lib;
    const AsicReport r = analyze_asic(nl, lib);
    EXPECT_EQ(r.total_cells, 3u);  // AND + XOR + SDFF
    EXPECT_EQ(r.scan_dffs, 1u);
    EXPECT_DOUBLE_EQ(r.cell_area_um2,
                     lib.and2.area_um2 + lib.xor2.area_um2 + lib.scan_dff.area_um2);
}

TEST(AsicFlow, CriticalPathIsLongestRegisterToRegister) {
    // Two paths into the register: a 1-gate path and a 3-gate path; STA
    // must pick the deep one and account for clk->Q and setup.
    GateNetlist nl;
    const Net q = nl.reg("r");
    const Net a = nl.input("a");
    const Net g1 = nl.g_and(q, a);
    const Net g2 = nl.g_and(g1, a);
    const Net g3 = nl.g_xor(g2, q);
    nl.connect_reg(q, g3);

    const StdCellLibrary lib;
    const AsicReport r = analyze_asic(nl, lib);
    const double expect = lib.scan_dff.delay_ns + 2 * lib.and2.delay_ns + lib.xor2.delay_ns +
                          lib.dff_setup_ns;
    EXPECT_DOUBLE_EQ(r.critical_path_ns, expect);
    EXPECT_DOUBLE_EQ(r.max_clock_mhz, 1000.0 / expect);
    // The reconstructed path runs from a start point to the endpoint g3.
    ASSERT_FALSE(r.critical_path_nets.empty());
    EXPECT_EQ(r.critical_path_nets.back(), g3);
    EXPECT_GE(r.critical_path_nets.size(), 4u);
}

TEST(AsicFlow, PurelyCombinationalOutputsAreEndpoints) {
    GateNetlist nl;
    const Net a = nl.input("a");
    const Net x = nl.g_not(a);
    nl.output("y", x);
    const StdCellLibrary lib;
    const AsicReport r = analyze_asic(nl, lib);
    EXPECT_DOUBLE_EQ(r.critical_path_ns, lib.inv.delay_ns);
}

TEST(AsicFlow, FullGaCoreCriticalPathIsTheFlatMultiplier) {
    // A real finding of the model: flat-mapped to two-input cells, the
    // 24x16 ripple-array selection multiplier dominates the clock —
    // ~32 ns (~32 MHz), short of the paper's 50 MHz. That is exactly why
    // the FPGA implementation used a MULT18X18 hard block (one is budgeted
    // in the Table VI resource model) and why an ASIC version would use a
    // carry-save/Wallace multiplier or pipeline the threshold computation.
    // Pinned so the bottleneck stays visible if the datapath changes.
    const auto g = build_ga_core_netlist();
    const AsicReport r = analyze_asic(g->nl);
    EXPECT_GT(r.total_cells, 10'000u);
    EXPECT_GT(r.die_area_mm2, 0.1);
    EXPECT_LT(r.die_area_mm2, 10.0);
    EXPECT_NEAR(r.critical_path_ns, 31.6, 6.0);
    EXPECT_NEAR(r.max_clock_mhz, 31.7, 6.0);
    EXPECT_GT(r.critical_path_nets.size(), 80u)
        << "the worst path must run through the deep multiplier array";
}

TEST(AsicFlow, ReportMentionsEverySection) {
    const auto g = build_rng_netlist();
    const AsicReport r = analyze_asic(g->nl);
    const std::string s = format_asic_report(r);
    EXPECT_NE(s.find("cells:"), std::string::npos);
    EXPECT_NE(s.find("cell area:"), std::string::npos);
    EXPECT_NE(s.find("critical path:"), std::string::npos);
    EXPECT_NE(s.find("MHz"), std::string::npos);
}

}  // namespace
}  // namespace gaip::gates
