// Equivalence tests: the gate-level leaf blocks against the RT-level /
// behavioral implementations (the paper's RT-vs-gate verification step).
#include <gtest/gtest.h>

#include "core/behavioral.hpp"
#include "gates/blocks.hpp"
#include "prng/ca_prng.hpp"
#include "util/bits.hpp"

namespace gaip::gates {
namespace {

void set_word(GateNetlist& nl, const Word& w, std::uint64_t v) {
    for (std::size_t i = 0; i < w.size(); ++i) nl.set_input(w[i], (v >> i) & 1u);
}

TEST(GateCaPrng, BitExactWithSoftwareModelOverLongRun) {
    GateNetlist nl;
    const CaPrngBlock blk = build_ca_prng(nl);

    // Load the seed through the synchronous load port.
    set_word(nl, blk.seed, 0x2961);
    nl.set_input(blk.load, true);
    nl.eval();
    nl.clock();
    nl.set_input(blk.load, false);

    prng::CaPrng ref(0x2961);
    for (int i = 0; i < 2000; ++i) {
        nl.eval();
        nl.clock();
        nl.eval();
        EXPECT_EQ(nl.word_value(blk.state), ref.next16()) << "step " << i;
    }
}

TEST(GateCaPrng, MaximalPeriodAtGateLevel) {
    GateNetlist nl;
    const CaPrngBlock blk = build_ca_prng(nl);
    set_word(nl, blk.seed, 1);
    nl.set_input(blk.load, true);
    nl.eval();
    nl.clock();
    nl.set_input(blk.load, false);

    std::uint32_t period = 0;
    do {
        nl.eval();
        nl.clock();
        ++period;
        nl.eval();
    } while (nl.word_value(blk.state) != 1u && period < (1u << 17));
    EXPECT_EQ(period, 65535u);
}

TEST(GateCrossover, MatchesBehavioralOperatorForAllCuts) {
    GateNetlist nl;
    const CrossoverBlock blk = build_crossover_unit(nl);
    const std::pair<std::uint16_t, std::uint16_t> parents[] = {
        {0xAAAA, 0x5555}, {0xBEEF, 0x1234}, {0xFFFF, 0x0000}, {0x0F0F, 0x3C3C}};
    for (const auto& [p1, p2] : parents) {
        for (unsigned cut = 0; cut < 16; ++cut) {
            set_word(nl, blk.p1, p1);
            set_word(nl, blk.p2, p2);
            set_word(nl, blk.cut, cut);
            nl.set_input(blk.do_xover, true);
            nl.eval();
            const auto [e1, e2] = core::crossover_pair(p1, p2, cut);
            EXPECT_EQ(nl.word_value(blk.off1), e1) << "cut " << cut;
            EXPECT_EQ(nl.word_value(blk.off2), e2) << "cut " << cut;
        }
        // Bypass path.
        nl.set_input(blk.do_xover, false);
        nl.eval();
        EXPECT_EQ(nl.word_value(blk.off1), p1);
        EXPECT_EQ(nl.word_value(blk.off2), p2);
    }
}

TEST(GateMutation, FlipsExactlyTheSelectedBit) {
    GateNetlist nl;
    const MutationBlock blk = build_mutation_unit(nl);
    for (unsigned pos = 0; pos < 16; ++pos) {
        set_word(nl, blk.in, 0x5A5A);
        set_word(nl, blk.pos, pos);
        nl.set_input(blk.do_mutate, true);
        nl.eval();
        EXPECT_EQ(nl.word_value(blk.out), 0x5A5Au ^ (1u << pos)) << "pos " << pos;
        nl.set_input(blk.do_mutate, false);
        nl.eval();
        EXPECT_EQ(nl.word_value(blk.out), 0x5A5Au);
    }
}

TEST(GateThreshold, ExhaustiveRateComparator) {
    GateNetlist nl;
    const ThresholdBlock blk = build_threshold_compare(nl);
    for (unsigned r = 0; r < 16; ++r) {
        for (unsigned t = 0; t < 16; ++t) {
            set_word(nl, blk.rand4, r);
            set_word(nl, blk.threshold, t);
            nl.eval();
            EXPECT_EQ(nl.value(blk.fire), r < t) << r << " vs " << t;
        }
    }
}

TEST(GateOperatorDatapath, MatchesBehavioralOperatorsOnRandomVectors) {
    GateNetlist nl;
    const OperatorDatapath dp = build_operator_datapath(nl);

    core::RngState rng(0xA0A0);
    for (int trial = 0; trial < 500; ++trial) {
        const std::uint16_t p1 = rng.next16();
        const std::uint16_t p2 = rng.next16();
        const std::uint16_t rxo = rng.next16();
        const std::uint16_t rm1 = rng.next16();
        const std::uint16_t rm2 = rng.next16();
        const std::uint8_t xt = rng.next16() & 0xF;
        const std::uint8_t mt = rng.next16() & 0xF;

        set_word(nl, dp.p1, p1);
        set_word(nl, dp.p2, p2);
        set_word(nl, dp.rand_xo, rxo);
        set_word(nl, dp.rand_mu1, rm1);
        set_word(nl, dp.rand_mu2, rm2);
        set_word(nl, dp.xover_threshold, xt);
        set_word(nl, dp.mut_threshold, mt);
        nl.eval();

        // Reference: the behavioral operator sequence of the core.
        std::uint16_t o1 = p1;
        std::uint16_t o2 = p2;
        if ((rxo & 0xF) < xt) std::tie(o1, o2) = core::crossover_pair(o1, o2, (rxo >> 4) & 0xF);
        if ((rm1 & 0xF) < mt) o1 ^= static_cast<std::uint16_t>(1u << ((rm1 >> 4) & 0xF));
        if ((rm2 & 0xF) < mt) o2 ^= static_cast<std::uint16_t>(1u << ((rm2 >> 4) & 0xF));

        EXPECT_EQ(nl.word_value(dp.off1), o1) << "trial " << trial;
        EXPECT_EQ(nl.word_value(dp.off2), o2) << "trial " << trial;
    }
}


TEST(GateMultiplier, ExhaustiveSmallAndRandomLarge) {
    // Exhaustive 6x6.
    {
        GateNetlist nl;
        const Word a = word_input(nl, "a", 6);
        const Word b = word_input(nl, "b", 6);
        const Word p = build_multiplier(nl, a, b);
        ASSERT_EQ(p.size(), 12u);
        for (unsigned va = 0; va < 64; ++va) {
            for (unsigned vb = 0; vb < 64; ++vb) {
                set_word(nl, a, va);
                set_word(nl, b, vb);
                nl.eval();
                EXPECT_EQ(nl.word_value(p), va * vb) << va << "*" << vb;
            }
        }
    }
    // Random 24x16 (the selection-threshold operand sizes).
    {
        GateNetlist nl;
        const Word a = word_input(nl, "a", 24);
        const Word b = word_input(nl, "b", 16);
        const Word p = build_multiplier(nl, a, b);
        core::RngState rng(0xB342);
        for (int t = 0; t < 200; ++t) {
            const std::uint32_t va =
                (static_cast<std::uint32_t>(rng.next16()) << 8 | (rng.next16() & 0xFF)) &
                0xFFFFFF;
            const std::uint16_t vb = rng.next16();
            set_word(nl, a, va);
            set_word(nl, b, vb);
            nl.eval();
            EXPECT_EQ(nl.word_value(p), static_cast<std::uint64_t>(va) * vb);
        }
    }
}

TEST(GateSelectionThreshold, MatchesCoreFormula) {
    GateNetlist nl;
    const SelectionThresholdBlock blk = build_selection_threshold(nl);
    core::RngState rng(0x061F);
    for (int t = 0; t < 300; ++t) {
        const std::uint32_t fsum =
            (static_cast<std::uint32_t>(rng.next16()) << 8 | (rng.next16() & 0xFF)) & 0xFFFFFF;
        const std::uint16_t rn = rng.next16();
        set_word(nl, blk.fit_sum, fsum);
        set_word(nl, blk.rn, rn);
        nl.eval();
        const std::uint32_t expect =
            static_cast<std::uint32_t>((static_cast<std::uint64_t>(fsum) * rn) >> 16);
        EXPECT_EQ(nl.word_value(blk.threshold), expect) << fsum << " * " << rn;
    }
}

TEST(GateBlocks, StatsAreNonTrivialAndExportable) {
    GateNetlist nl;
    build_ca_prng(nl);
    build_operator_datapath(nl);
    const GateStats s = nl.stats();
    EXPECT_EQ(s.registers, 16u);
    EXPECT_GT(s.logic_gates, 400u) << "the datapath must synthesize to hundreds of gates";
    const std::string v = nl.to_verilog("ga_operator_datapath");
    EXPECT_NE(v.find("SCAN_REGISTER r15"), std::string::npos);
}

}  // namespace
}  // namespace gaip::gates
