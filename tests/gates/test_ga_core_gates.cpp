// Full-design RT-vs-gate equivalence (the paper's Sec. III-A verification
// flow, applied to the WHOLE core): the gate-level GA core dropped into the
// complete system must reproduce the RT-level core bit- and cycle-exactly.
#include <gtest/gtest.h>

#include "core/behavioral.hpp"
#include "fitness/functions.hpp"
#include "gates/ga_core_gates.hpp"
#include "system/ga_system.hpp"

namespace gaip::gates {
namespace {

using core::GaParameters;
using core::RunResult;
using fitness::FitnessId;

system::GaSystemConfig config_for(const GaParameters& p, FitnessId fn, bool gate_level) {
    system::GaSystemConfig cfg;
    cfg.params = p;
    cfg.internal_fems = {fn};
    cfg.use_gate_level_core = gate_level;
    return cfg;
}

struct GateEquivCase {
    FitnessId fn;
    GaParameters params;
};

class GateCoreEquivalence : public ::testing::TestWithParam<GateEquivCase> {};

TEST_P(GateCoreEquivalence, FullRunBitAndCycleExactWithRtlCore) {
    const GateEquivCase& c = GetParam();

    system::GaSystem rtl_sys(config_for(c.params, c.fn, false));
    const RunResult rtl = rtl_sys.run();

    system::GaSystem gate_sys(config_for(c.params, c.fn, true));
    const RunResult gate = gate_sys.run();

    EXPECT_EQ(gate.best_candidate, rtl.best_candidate);
    EXPECT_EQ(gate.best_fitness, rtl.best_fitness);
    EXPECT_EQ(gate.evaluations, rtl.evaluations);
    EXPECT_EQ(gate_sys.ga_cycles(), rtl_sys.ga_cycles())
        << "the two controllers must agree on every cycle, not just results";

    ASSERT_EQ(gate.history.size(), rtl.history.size());
    for (std::size_t g = 0; g < gate.history.size(); ++g) {
        SCOPED_TRACE("generation " + std::to_string(g));
        EXPECT_EQ(gate.history[g].best_fit, rtl.history[g].best_fit);
        EXPECT_EQ(gate.history[g].best_ind, rtl.history[g].best_ind);
        EXPECT_EQ(gate.history[g].fit_sum, rtl.history[g].fit_sum);
        EXPECT_EQ(gate.history[g].population, rtl.history[g].population);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SmallRuns, GateCoreEquivalence,
    ::testing::Values(
        GateEquivCase{FitnessId::kOneMax,
                      {.pop_size = 8, .n_gens = 3, .xover_threshold = 10, .mut_threshold = 2,
                       .seed = 0x2961}},
        GateEquivCase{FitnessId::kMBf6_2,
                      {.pop_size = 16, .n_gens = 4, .xover_threshold = 12, .mut_threshold = 1,
                       .seed = 0x061F}},
        GateEquivCase{FitnessId::kMShubert2D,
                      {.pop_size = 9, .n_gens = 3, .xover_threshold = 14, .mut_threshold = 4,
                       .seed = 0xB342}}));  // odd population exercises the Mu2 skip

TEST(GateCore, PresetModeRunsWithoutInitialization) {
    // The fault-tolerance path at gate level: preset pins only, no init.
    system::GaSystemConfig cfg;
    cfg.skip_initialization = true;
    cfg.preset = 1;  // pop 32, 512 gens — too long for a gate sim; override:
    // use user mode with tiny params instead, and separately check preset
    // resolution registers after start.
    cfg.preset = 0;
    cfg.params = {.pop_size = 8, .n_gens = 2, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = 0};  // unprogrammed: reset defaults carry the run
    cfg.internal_fems = {FitnessId::kF2};
    cfg.use_gate_level_core = true;
    cfg.skip_initialization = true;
    system::GaSystem sys(cfg);
    const RunResult r = sys.run();
    // Reset defaults: pop 32, 32 gens (Table III register reset values).
    EXPECT_EQ(r.history.size(), 33u);
    EXPECT_EQ(r.history.back().population.size(), 32u);
    EXPECT_GT(r.best_fitness, 0u);
}

TEST(GateCore, ScanChainRotationRestoresState) {
    GateLevelGaCore* gate_core = nullptr;
    system::GaSystemConfig cfg;
    cfg.params = {.pop_size = 8, .n_gens = 4, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = 0xAAAA};
    cfg.internal_fems = {FitnessId::kOneMax};
    cfg.use_gate_level_core = true;
    system::GaSystem sys(cfg);
    gate_core = const_cast<GateLevelGaCore*>(&sys.gate_core());

    auto& k = sys.kernel();
    k.reset();
    ASSERT_TRUE(k.run_until(
        sys.app_clock(),
        [&] {
            return gate_core->generation() >= 1 &&
                   gate_core->state() == core::GaCore::State::kSelRn;
        },
        10'000'000));

    const GateStats stats = gate_core->gate_stats();
    const unsigned len = stats.registers;
    ASSERT_GT(len, 300u);

    // Loop scanout into scanin for a full rotation, then resume.
    const std::uint16_t best_before = gate_core->best_fitness();
    sys.wires().test.drive(true);
    for (unsigned i = 0; i < len; ++i) {
        sys.wires().scanin.drive(sys.wires().scanout.read());
        k.run_cycles(sys.ga_clock(), 1);
    }
    sys.wires().test.drive(false);
    EXPECT_EQ(gate_core->best_fitness(), best_before) << "rotation must restore the state";

    ASSERT_TRUE(k.run_until(
        sys.app_clock(), [&] { return sys.app_module().done(); }, 100'000'000));
    EXPECT_EQ(gate_core->state(), core::GaCore::State::kDone);
}

TEST(GateCore, NetlistSizeAndExport) {
    const auto g = build_ga_core_netlist();
    const GateStats s = g->nl.stats();
    EXPECT_EQ(s.registers, 405u) << "same flip-flop inventory as the RT-level core";
    EXPECT_GT(s.logic_gates, 5000u) << "a full core flattens to thousands of gates";
    const std::string v = g->nl.to_verilog("ga_core");
    EXPECT_NE(v.find("module ga_core"), std::string::npos);
    EXPECT_NE(v.find("SCAN_REGISTER r404"), std::string::npos)
        << "every register must be stitched into the scan chain";
}

}  // namespace
}  // namespace gaip::gates
