// Gate-netlist substrate tests: primitive evaluation, scan behavior,
// word-level builders (exhaustive where the operand space allows), and the
// Verilog export.
#include <gtest/gtest.h>

#include "gates/builder.hpp"
#include "util/bits.hpp"

namespace gaip::gates {
namespace {

TEST(GateNetlist, PrimitiveTruthTables) {
    GateNetlist nl;
    const Net a = nl.input("a");
    const Net b = nl.input("b");
    const Net n_and = nl.g_and(a, b);
    const Net n_or = nl.g_or(a, b);
    const Net n_xor = nl.g_xor(a, b);
    const Net n_nand = nl.g_nand(a, b);
    const Net n_nor = nl.g_nor(a, b);
    const Net n_not = nl.g_not(a);

    for (int va = 0; va <= 1; ++va) {
        for (int vb = 0; vb <= 1; ++vb) {
            nl.set_input(a, va);
            nl.set_input(b, vb);
            nl.eval();
            EXPECT_EQ(nl.value(n_and), va && vb);
            EXPECT_EQ(nl.value(n_or), va || vb);
            EXPECT_EQ(nl.value(n_xor), (va ^ vb) != 0);
            EXPECT_EQ(nl.value(n_nand), !(va && vb));
            EXPECT_EQ(nl.value(n_nor), !(va || vb));
            EXPECT_EQ(nl.value(n_not), !va);
        }
    }
}

TEST(GateNetlist, ConstantsAndMux) {
    GateNetlist nl;
    const Net c0 = nl.constant(false);
    const Net c1 = nl.constant(true);
    const Net s = nl.input("s");
    const Net m = nl.g_mux(s, c1, c0);
    nl.set_input(s, true);
    nl.eval();
    EXPECT_TRUE(nl.value(m));
    nl.set_input(s, false);
    nl.eval();
    EXPECT_FALSE(nl.value(m));
}

TEST(GateNetlist, ForwardReferenceRejected) {
    GateNetlist nl;
    const Net a = nl.input("a");
    EXPECT_THROW(nl.gate(GateOp::kAnd, a, a + 5), std::invalid_argument);
    EXPECT_THROW(nl.gate(GateOp::kInput, a, a), std::invalid_argument);
}

TEST(GateNetlist, RegisterLatchesOnClock) {
    GateNetlist nl;
    const Net d = nl.input("d");
    const Net q = nl.reg("r");
    nl.connect_reg(q, d);
    nl.set_input(d, true);
    nl.eval();
    EXPECT_FALSE(nl.value(q)) << "Q must not change before the edge";
    nl.clock();
    nl.eval();
    EXPECT_TRUE(nl.value(q));
}

TEST(GateNetlist, UnconnectedRegisterThrowsOnClock) {
    GateNetlist nl;
    nl.reg("dangling");
    EXPECT_THROW(nl.clock(), std::logic_error);
}

TEST(GateNetlist, ScanModeShiftsRegisters) {
    GateNetlist nl;
    const Net q0 = nl.reg("r0");
    const Net q1 = nl.reg("r1");
    const Net q2 = nl.reg("r2");
    const Net zero = nl.constant(false);
    nl.connect_reg(q0, zero);
    nl.connect_reg(q1, zero);
    nl.connect_reg(q2, zero);

    // Shift the pattern 1,0,1 in, head first.
    nl.clock(true, true);
    nl.clock(true, false);
    nl.clock(true, true);
    nl.eval();
    EXPECT_TRUE(nl.value(q0));   // last bit shifted in
    EXPECT_FALSE(nl.value(q1));
    EXPECT_TRUE(nl.value(q2));   // first bit, now at the tail

    // Drain: scan-out returns tail-first.
    EXPECT_TRUE(nl.clock(true, false));
    EXPECT_FALSE(nl.clock(true, false));
    EXPECT_TRUE(nl.clock(true, false));
}

TEST(WordBuilder, ConstAndValueRoundTrip) {
    GateNetlist nl;
    const Word w = word_const(nl, 0xBEEF, 16);
    nl.eval();
    EXPECT_EQ(nl.word_value(w), 0xBEEFu);
}

TEST(WordBuilder, BitwiseOpsExhaustiveOn4Bits) {
    GateNetlist nl;
    const Word a = word_input(nl, "a", 4);
    const Word b = word_input(nl, "b", 4);
    const Word w_and = word_and(nl, a, b);
    const Word w_or = word_or(nl, a, b);
    const Word w_xor = word_xor(nl, a, b);
    const Word w_not = word_not(nl, a);

    auto set_word = [&](const Word& w, unsigned v) {
        for (std::size_t i = 0; i < w.size(); ++i) nl.set_input(w[i], (v >> i) & 1u);
    };
    for (unsigned va = 0; va < 16; ++va) {
        for (unsigned vb = 0; vb < 16; ++vb) {
            set_word(a, va);
            set_word(b, vb);
            nl.eval();
            EXPECT_EQ(nl.word_value(w_and), va & vb);
            EXPECT_EQ(nl.word_value(w_or), va | vb);
            EXPECT_EQ(nl.word_value(w_xor), va ^ vb);
            EXPECT_EQ(nl.word_value(w_not), (~va) & 0xFu);
        }
    }
}

TEST(WordBuilder, RippleAdderExhaustiveOn5Bits) {
    GateNetlist nl;
    const Word a = word_input(nl, "a", 5);
    const Word b = word_input(nl, "b", 5);
    const AddResult r = word_add(nl, a, b);
    auto set_word = [&](const Word& w, unsigned v) {
        for (std::size_t i = 0; i < w.size(); ++i) nl.set_input(w[i], (v >> i) & 1u);
    };
    for (unsigned va = 0; va < 32; ++va) {
        for (unsigned vb = 0; vb < 32; ++vb) {
            set_word(a, va);
            set_word(b, vb);
            nl.eval();
            EXPECT_EQ(nl.word_value(r.sum), (va + vb) & 0x1Fu);
            EXPECT_EQ(nl.value(r.carry_out), (va + vb) >= 32u);
        }
    }
}

TEST(WordBuilder, ComparatorsExhaustiveOn4Bits) {
    GateNetlist nl;
    const Word a = word_input(nl, "a", 4);
    const Word b = word_input(nl, "b", 4);
    const Net lt = word_less_than(nl, a, b);
    const Net eq = word_equal(nl, a, b);
    auto set_word = [&](const Word& w, unsigned v) {
        for (std::size_t i = 0; i < w.size(); ++i) nl.set_input(w[i], (v >> i) & 1u);
    };
    for (unsigned va = 0; va < 16; ++va) {
        for (unsigned vb = 0; vb < 16; ++vb) {
            set_word(a, va);
            set_word(b, vb);
            nl.eval();
            EXPECT_EQ(nl.value(lt), va < vb) << va << " " << vb;
            EXPECT_EQ(nl.value(eq), va == vb) << va << " " << vb;
        }
    }
}

TEST(WordBuilder, DecoderIsOneHot) {
    GateNetlist nl;
    const Word sel = word_input(nl, "s", 4);
    const Word onehot = decoder(nl, sel);
    ASSERT_EQ(onehot.size(), 16u);
    for (unsigned v = 0; v < 16; ++v) {
        for (std::size_t i = 0; i < sel.size(); ++i) nl.set_input(sel[i], (v >> i) & 1u);
        nl.eval();
        EXPECT_EQ(nl.word_value(onehot), 1u << v);
    }
}

TEST(WordBuilder, ThermometerMaskMatchesCrossoverMask) {
    GateNetlist nl;
    const Word sel = word_input(nl, "s", 4);
    const Word mask = thermometer_mask(nl, sel, 16);
    for (unsigned cut = 0; cut < 16; ++cut) {
        for (std::size_t i = 0; i < sel.size(); ++i) nl.set_input(sel[i], (cut >> i) & 1u);
        nl.eval();
        EXPECT_EQ(nl.word_value(mask), util::crossover_mask(cut)) << "cut " << cut;
    }
}

TEST(WordBuilder, Reductions) {
    GateNetlist nl;
    const Word a = word_input(nl, "a", 3);
    const Net any = reduce_or(nl, a);
    const Net all = reduce_and(nl, a);
    for (unsigned v = 0; v < 8; ++v) {
        for (std::size_t i = 0; i < a.size(); ++i) nl.set_input(a[i], (v >> i) & 1u);
        nl.eval();
        EXPECT_EQ(nl.value(any), v != 0);
        EXPECT_EQ(nl.value(all), v == 7);
    }
}

TEST(GateNetlist, WordValueRejectsOver64Nets) {
    GateNetlist nl;
    std::vector<Net> wide;
    for (int i = 0; i < 65; ++i) wide.push_back(nl.input("i" + std::to_string(i)));
    nl.eval();
    EXPECT_THROW(nl.word_value(wide), std::invalid_argument)
        << "65 nets cannot pack into a u64; bit 64 must not shift out silently";
    wide.pop_back();
    EXPECT_NO_THROW(nl.word_value(wide));
}

TEST(GateNetlist, VerilogExportContainsStructure) {
    GateNetlist nl;
    const Net a = nl.input("a");
    const Net q = nl.reg("r0");
    nl.connect_reg(q, nl.g_xor(a, q));
    nl.output("toggle", q);
    const std::string v = nl.to_verilog("toggler");
    EXPECT_NE(v.find("module toggler"), std::string::npos);
    EXPECT_NE(v.find("xor"), std::string::npos);
    EXPECT_NE(v.find("SCAN_REGISTER"), std::string::npos);
    EXPECT_NE(v.find("scanout"), std::string::npos);
    EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(GateNetlist, StatsCountGatesAndRegisters) {
    GateNetlist nl;
    const Net a = nl.input("a");
    const Net b = nl.input("b");
    nl.g_and(a, b);
    nl.g_xor(a, b);
    nl.g_not(a);
    nl.reg("r");
    const GateStats s = nl.stats();
    EXPECT_EQ(s.inputs, 2u);
    EXPECT_EQ(s.registers, 1u);
    EXPECT_EQ(s.logic_gates, 3u);
    EXPECT_EQ(s.per_op[static_cast<std::size_t>(GateOp::kAnd)], 1u);
}

}  // namespace
}  // namespace gaip::gates
