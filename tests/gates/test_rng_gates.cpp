// Gate-level RNG module vs the RT-level prng::RngModule: identical
// behavior on the same stimulus (seed capture, preset seeds, start reload,
// rn_next stepping).
#include <gtest/gtest.h>

#include "gates/rng_gates.hpp"
#include "rtl/kernel.hpp"

namespace gaip::gates {
namespace {

/// Twin bench: both RNG implementations on the same wires, outputs split.
struct TwinBench {
    rtl::Kernel kernel;
    rtl::Clock& clk = kernel.add_clock("clk", 50'000'000);
    rtl::Wire<bool> ga_load;
    rtl::Wire<std::uint8_t> index;
    rtl::Wire<std::uint16_t> value;
    rtl::Wire<bool> data_valid;
    rtl::Wire<std::uint8_t> preset;
    rtl::Wire<bool> start;
    rtl::Wire<bool> rn_next;
    rtl::Wire<std::uint16_t> rn_rtl;
    rtl::Wire<std::uint16_t> rn_gate;

    prng::RngModule rtl_rng{
        prng::RngModulePorts{ga_load, index, value, data_valid, preset, start, rn_next, rn_rtl}};
    GateLevelRngModule gate_rng{
        prng::RngModulePorts{ga_load, index, value, data_valid, preset, start, rn_next, rn_gate}};

    TwinBench() {
        kernel.bind(rtl_rng, clk);
        kernel.bind(gate_rng, clk);
        kernel.reset();
    }
    void cycle(unsigned n = 1) { kernel.run_cycles(clk, n); }
    void expect_match(const char* what) {
        EXPECT_EQ(rn_gate.read(), rn_rtl.read()) << what;
        EXPECT_EQ(gate_rng.current_state(), rtl_rng.current_state()) << what;
    }
};

TEST(GateRng, LockstepThroughFullProtocolSequence) {
    TwinBench b;
    b.expect_match("after reset");

    // Program a seed over the init bus.
    b.ga_load.drive(true);
    b.index.drive(5);
    b.value.drive(0xBEEF);
    b.data_valid.drive(true);
    b.cycle(2);
    b.ga_load.drive(false);
    b.data_valid.drive(false);
    b.cycle(1);
    EXPECT_EQ(b.gate_rng.seed_register(), 0xBEEF);
    EXPECT_EQ(b.gate_rng.seed_register(), b.rtl_rng.seed_register());

    // Start (seed reload) then step a few hundred times.
    b.start.drive(true);
    b.cycle(1);
    b.start.drive(false);
    b.cycle(1);
    b.expect_match("after start");
    for (int i = 0; i < 300; ++i) {
        b.rn_next.drive(true);
        b.cycle(1);
        b.rn_next.drive(false);
        b.expect_match("stepping");
        if (i % 7 == 0) b.cycle(1);  // idle gaps must not desync
    }
}

TEST(GateRng, PresetSeedsMatchRtl) {
    for (std::uint8_t mode = 0; mode <= 3; ++mode) {
        TwinBench b;
        b.preset.drive(mode);
        b.start.drive(true);
        b.cycle(1);
        b.start.drive(false);
        b.cycle(1);
        b.expect_match("preset mode");
        if (mode > 0) {
            EXPECT_EQ(b.gate_rng.current_state(), prng::kPresetSeeds[mode - 1]);
        }
    }
}

TEST(GateRng, SeedZeroRemapsLikeRtl) {
    TwinBench b;
    b.ga_load.drive(true);
    b.index.drive(5);
    b.value.drive(0);
    b.data_valid.drive(true);
    b.cycle(2);
    b.ga_load.drive(false);
    b.data_valid.drive(false);
    b.cycle(1);
    EXPECT_EQ(b.gate_rng.seed_register(), 1u);
    EXPECT_EQ(b.rtl_rng.seed_register(), 1u);
}

TEST(GateRng, HeldStartDoesNotReseedMidRunLikeRtl) {
    TwinBench b;
    b.start.drive(true);
    b.cycle(3);  // held high
    b.rn_next.drive(true);
    b.cycle(2);
    b.rn_next.drive(false);
    b.start.drive(false);
    b.expect_match("held start with stepping");
}

}  // namespace
}  // namespace gaip::gates
