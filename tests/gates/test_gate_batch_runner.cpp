// BatchGateRunner verification: batched lane-block gate-level GA runs must
// reproduce the RT-level GaSystem results (best fitness/candidate,
// evaluation counts, generation counts) for the same seeds and settings,
// and lanes must be fully independent of batch composition — including
// lanes that live beyond word 0 of a multi-word block.
#include <gtest/gtest.h>

#include "bench/common.hpp"
#include "bench/gate_batch_runner.hpp"
#include "gates/jit.hpp"
#include "system/ga_system.hpp"

namespace gaip::bench {
namespace {

using core::GaParameters;
using fitness::FitnessId;

core::RunResult run_rtl(FitnessId fn, const GaParameters& p) {
    system::GaSystemConfig cfg;
    cfg.params = p;
    cfg.internal_fems = {fn};
    cfg.keep_populations = false;
    return system::run_ga_system(cfg);
}

TEST(BatchGateRunner, LanesMatchRtlSystemResults) {
    const FitnessId fn = FitnessId::kMBf6_2;
    const std::vector<GaParameters> lanes = {
        {.pop_size = 8, .n_gens = 3, .xover_threshold = 10, .mut_threshold = 2,
         .seed = 0x2961},
        {.pop_size = 16, .n_gens = 4, .xover_threshold = 12, .mut_threshold = 1,
         .seed = 0x061F},
        {.pop_size = 9, .n_gens = 3, .xover_threshold = 14, .mut_threshold = 4,
         .seed = 0xB342},  // odd population exercises the Mu2 skip
        {.pop_size = 8, .n_gens = 3, .xover_threshold = 10, .mut_threshold = 2,
         .seed = 0xAAAA},
    };

    BatchGateRunner runner(fn, lanes);
    const std::vector<BatchLaneResult> batch = runner.run();
    ASSERT_EQ(batch.size(), lanes.size());

    for (std::size_t k = 0; k < lanes.size(); ++k) {
        SCOPED_TRACE("lane " + std::to_string(k));
        const core::RunResult rtl = run_rtl(fn, lanes[k]);
        EXPECT_TRUE(batch[k].finished);
        EXPECT_EQ(batch[k].best_fitness, rtl.best_fitness);
        EXPECT_EQ(batch[k].best_candidate, rtl.best_candidate);
        EXPECT_EQ(batch[k].evaluations, rtl.evaluations);
        EXPECT_EQ(batch[k].generations + 1, rtl.history.size())
            << "one monitor record per generation plus the initial population";
    }
}

TEST(BatchGateRunner, MultiSeedSweepMatchesRtl) {
    // The paper's six FPGA seeds in one batched simulation (the Table VII
    // sweep pattern at toy size so the RT reference stays fast).
    const FitnessId fn = FitnessId::kOneMax;
    std::vector<GaParameters> lanes;
    for (const std::uint16_t seed : kPaperSeeds)
        lanes.push_back({.pop_size = 8, .n_gens = 2, .xover_threshold = 12,
                         .mut_threshold = 1, .seed = seed});

    BatchGateRunner runner(fn, lanes);
    const auto batch = runner.run();
    for (std::size_t k = 0; k < lanes.size(); ++k) {
        SCOPED_TRACE("seed " + std::to_string(lanes[k].seed));
        const core::RunResult rtl = run_rtl(fn, lanes[k]);
        EXPECT_EQ(batch[k].best_fitness, rtl.best_fitness);
        EXPECT_EQ(batch[k].best_candidate, rtl.best_candidate);
    }
}

TEST(BatchGateRunner, LaneResultsIndependentOfBatchComposition) {
    const FitnessId fn = FitnessId::kMShubert2D;
    const GaParameters probe{.pop_size = 8, .n_gens = 3, .xover_threshold = 12,
                             .mut_threshold = 1, .seed = 0xA0A0};

    BatchGateRunner solo(fn, {probe});
    const auto alone = solo.run();

    std::vector<GaParameters> mixed = {
        {.pop_size = 16, .n_gens = 5, .xover_threshold = 10, .mut_threshold = 3,
         .seed = 0xFFFF},
        probe,
        {.pop_size = 12, .n_gens = 2, .xover_threshold = 14, .mut_threshold = 1,
         .seed = 0x0001},
    };
    BatchGateRunner batch(fn, mixed);
    const auto together = batch.run();

    EXPECT_EQ(together[1].best_fitness, alone[0].best_fitness);
    EXPECT_EQ(together[1].best_candidate, alone[0].best_candidate);
    EXPECT_EQ(together[1].evaluations, alone[0].evaluations);
    EXPECT_EQ(together[1].ga_cycles, alone[0].ga_cycles)
        << "a lane must not even see the other lanes' timing";
}

TEST(BatchGateRunner, RejectsEmptyAndOversizedBatches) {
    EXPECT_THROW(BatchGateRunner(FitnessId::kOneMax, {}), std::invalid_argument);
    // 65 lanes used to be the hard ceiling; with lane blocks it just means
    // a 2-word block. The ceiling is now the widest block (512 lanes).
    std::vector<GaParameters> too_many(BatchGateRunner::kMaxLanes + 1);
    EXPECT_THROW(BatchGateRunner(FitnessId::kOneMax, too_many), std::invalid_argument);
    // An explicit width that cannot hold the requested lanes is refused
    // instead of silently dropping lanes.
    std::vector<GaParameters> sixty_five(65);
    EXPECT_THROW(BatchGateRunner(FitnessId::kOneMax, sixty_five, 1), std::invalid_argument);
}

TEST(BatchGateRunner, AutoWidthPicksSmallestFittingBlock) {
    const GaParameters p{.pop_size = 8, .n_gens = 2, .xover_threshold = 12,
                         .mut_threshold = 1, .seed = 0x2961};
    EXPECT_EQ(BatchGateRunner(FitnessId::kOneMax, {p}).words(), 1u);
    EXPECT_EQ(BatchGateRunner(FitnessId::kOneMax, std::vector<GaParameters>(64, p)).words(), 1u);
    EXPECT_EQ(BatchGateRunner(FitnessId::kOneMax, std::vector<GaParameters>(65, p)).words(), 2u);
    EXPECT_EQ(BatchGateRunner(FitnessId::kOneMax, std::vector<GaParameters>(129, p)).words(),
              4u);
    EXPECT_EQ(BatchGateRunner(FitnessId::kOneMax, std::vector<GaParameters>(257, p)).words(),
              8u);
}

TEST(BatchGateRunner, LaneBeyondWordZeroMatchesSoloRun) {
    // A lane placed past bit 63 (word 1 of a 2-word block) must behave
    // exactly like a solo single-word run of the same config.
    const FitnessId fn = FitnessId::kOneMax;
    const GaParameters probe{.pop_size = 8, .n_gens = 2, .xover_threshold = 12,
                             .mut_threshold = 1, .seed = 0xA0A0};
    BatchGateRunner solo(fn, {probe});
    const auto alone = solo.run();

    std::vector<GaParameters> lanes(70, GaParameters{.pop_size = 8, .n_gens = 2,
                                                     .xover_threshold = 12,
                                                     .mut_threshold = 1, .seed = 0x1111});
    for (std::size_t k = 0; k < lanes.size(); ++k)
        lanes[k].seed = static_cast<std::uint16_t>(0x1111 + 13 * k);
    lanes[68] = probe;
    BatchGateRunner batch(fn, lanes);
    ASSERT_EQ(batch.words(), 2u);
    const auto together = batch.run();
    EXPECT_EQ(together[68].best_fitness, alone[0].best_fitness);
    EXPECT_EQ(together[68].best_candidate, alone[0].best_candidate);
    EXPECT_EQ(together[68].evaluations, alone[0].evaluations);
    EXPECT_EQ(together[68].ga_cycles, alone[0].ga_cycles)
        << "lane timing must not depend on block width or position";
}

TEST(BatchGateRunner, DefaultCycleBoundIsExactAndOverflowSafe) {
    // The bound formula now runs on saturating u64 arithmetic (sat_add_u64
    // / sat_mul_u64 — wrap-to-tiny-bound is impossible by construction;
    // the clamping itself is unit-tested in tests/util/test_bits.cpp).
    // With the max-representable parameters the formula must come out
    // exact and monotone, not wrapped.
    const GaParameters adversarial{.pop_size = 128, .n_gens = 0xFFFFFFFF,
                                   .xover_threshold = 12, .mut_threshold = 1, .seed = 1};
    BatchGateRunner runner(FitnessId::kOneMax, {adversarial});
    const std::uint64_t evals = 128ull * 0x1'0000'0000ull;
    const std::uint64_t per_eval = 64ull + 8ull * 128ull;
    EXPECT_EQ(runner.default_cycle_bound(), evals * per_eval + 100'000ull);
    EXPECT_GT(runner.default_cycle_bound(), evals) << "no wraparound";

    // Sane configs still get the exact formula value.
    const GaParameters sane{.pop_size = 16, .n_gens = 12, .xover_threshold = 12,
                            .mut_threshold = 1, .seed = 0x2961};
    BatchGateRunner ok(FitnessId::kOneMax, {sane});
    EXPECT_EQ(ok.default_cycle_bound(), (16ull * 13ull) * (64ull + 8ull * 16ull) + 100'000ull);
}

TEST(BatchGateRunner, JitBackendReproducesInterpLanes) {
    // The runner's 4th constructor parameter swaps the evaluation engine
    // under both compiled netlists (core + RNG); every per-lane result —
    // fitness, candidate, evaluation/generation counts, cycle timings —
    // must be bit-identical to the interpreter.
    if (!gates::jit::available())
        GTEST_SKIP() << "no host compiler for the JIT backend";
    const FitnessId fn = FitnessId::kMBf6_2;
    const std::vector<GaParameters> lanes = {
        {.pop_size = 8, .n_gens = 3, .xover_threshold = 10, .mut_threshold = 2,
         .seed = 0x2961},
        {.pop_size = 16, .n_gens = 4, .xover_threshold = 12, .mut_threshold = 1,
         .seed = 0x061F},
        {.pop_size = 9, .n_gens = 3, .xover_threshold = 14, .mut_threshold = 4,
         .seed = 0xB342},
    };
    BatchGateRunner interp(fn, lanes, 1, gates::Backend::kInterp);
    BatchGateRunner jitted(fn, lanes, 1, gates::Backend::kJitForce);
    ASSERT_TRUE(jitted.core_sim().jit_active());
    const std::vector<BatchLaneResult> a = interp.run();
    const std::vector<BatchLaneResult> b = jitted.run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
        SCOPED_TRACE("lane " + std::to_string(k));
        EXPECT_EQ(a[k].finished, b[k].finished);
        EXPECT_EQ(a[k].best_fitness, b[k].best_fitness);
        EXPECT_EQ(a[k].best_candidate, b[k].best_candidate);
        EXPECT_EQ(a[k].generations, b[k].generations);
        EXPECT_EQ(a[k].evaluations, b[k].evaluations);
        EXPECT_EQ(a[k].ga_cycles, b[k].ga_cycles);
    }
}

}  // namespace
}  // namespace gaip::bench
