// Per-lane clock gating (CompiledNetlist::clock_gated) — the primitive the
// island interconnect's generation-synchronous barrier is built on: a
// normal-mode clock edge that latches D into Q only in the enabled lanes,
// while parked lanes hold their register state bit-for-bit. Verified with
// an 8-bit counter netlist against a software model across word counts
// W in {1,2,4,8} and both evaluation engines (interpreter, native-codegen
// JIT when a host compiler exists) — the contract is that gating is
// backend-independent by construction (save / clock / merge).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gates/builder.hpp"
#include "gates/compiled.hpp"
#include "gates/jit.hpp"
#include "gates/netlist.hpp"

namespace gaip::gates {
namespace {

/// splitmix64 — deterministic enable-mask stimulus.
struct Rand {
    std::uint64_t s;
    std::uint64_t next() {
        s += 0x9E3779B97F4A7C15ull;
        std::uint64_t z = s;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }
};

/// counter <= counter + 1 every (enabled) clock — the simplest netlist
/// whose register state diverges immediately when a lane misses an edge.
GateNetlist counter_netlist(Word& q_out) {
    GateNetlist nl;
    q_out = word_reg(nl, "cnt", 8);
    const Word one = word_const(nl, 1, 8);
    connect_word_reg(nl, q_out, word_add(nl, q_out, one).sum);
    return nl;
}

void run_gating_trial(unsigned words, Backend backend) {
    Word q;
    GateNetlist nl = counter_netlist(q);
    CompiledNetlist::Options opts;
    opts.words = words;
    opts.backend = backend;
    CompiledNetlist sim(nl, opts);
    const unsigned lanes = sim.lane_count();

    std::vector<std::uint8_t> model(lanes, 0);
    Rand rnd{0xC10C6A7Eu + words};
    sim.eval();
    for (int step = 0; step < 40; ++step) {
        std::vector<std::uint64_t> enable(words);
        for (unsigned w = 0; w < words; ++w) {
            // Mix of dense, sparse, all-on and all-off enable words.
            switch (step % 4) {
                case 0: enable[w] = rnd.next(); break;
                case 1: enable[w] = rnd.next() & rnd.next() & rnd.next(); break;
                case 2: enable[w] = ~0ull; break;
                case 3: enable[w] = 0; break;
            }
        }
        sim.clock_gated(enable.data());
        sim.eval();
        for (unsigned lane = 0; lane < lanes; ++lane) {
            if ((enable[lane / 64] >> (lane % 64)) & 1) ++model[lane];
            ASSERT_EQ(sim.word_value(q, lane), model[lane])
                << "W=" << words << " step=" << step << " lane=" << lane;
        }
    }
}

TEST(ClockGating, GatedLanesHoldWhileEnabledLanesAdvance) {
    for (unsigned words : {1u, 2u, 4u, 8u}) run_gating_trial(words, Backend::kInterp);
}

TEST(ClockGating, JitGatesIdentically) {
    if (!jit::available()) GTEST_SKIP() << "no host compiler for the JIT backend";
    for (unsigned words : {1u, 2u, 4u, 8u}) run_gating_trial(words, Backend::kJitForce);
}

// An all-ones enable mask must be indistinguishable from a plain clock().
TEST(ClockGating, FullEnableEqualsPlainClock) {
    Word qa;
    GateNetlist nla = counter_netlist(qa);
    Word qb;
    GateNetlist nlb = counter_netlist(qb);
    CompiledNetlist::Options opts;
    opts.words = 2;
    CompiledNetlist a(nla, opts);
    CompiledNetlist b(nlb, opts);
    const std::vector<std::uint64_t> all_on(2, ~0ull);
    a.eval();
    b.eval();
    for (int step = 0; step < 10; ++step) {
        a.clock();
        b.clock_gated(all_on.data());
        a.eval();
        b.eval();
        for (unsigned lane = 0; lane < a.lane_count(); ++lane)
            ASSERT_EQ(a.word_value(qa, lane), b.word_value(qb, lane)) << "lane " << lane;
    }
}

// Gating freezes REGISTER state only; combinational inputs still propagate
// through eval() in gated lanes (a parked island's pins stay visible).
TEST(ClockGating, GatingDoesNotFreezeCombinationalLogic) {
    GateNetlist nl;
    const Net in = nl.input("in");
    const Net q = nl.reg("q");
    nl.connect_reg(q, in);
    const Net pass = nl.gate(GateOp::kBuf, in);
    CompiledNetlist sim(nl, {.words = 1, .backend = Backend::kInterp});
    sim.eval();
    sim.set_input_lanes(in, 0xF0F0ull);
    const std::uint64_t gate_off = 0;
    sim.clock_gated(&gate_off);
    sim.eval();
    EXPECT_EQ(sim.lanes(q), 0u) << "gated register must hold reset state";
    EXPECT_EQ(sim.lanes(pass), 0xF0F0ull) << "combinational path must still propagate";
}

}  // namespace
}  // namespace gaip::gates
