// CompiledNetlist differential verification: every lane of the 64-lane
// compiled evaluator must be bit- and cycle-identical to the scalar
// GateNetlist reference — checked exhaustively on primitive netlists and
// with long random-stimulus runs on the FULL GA core + RNG netlists
// (the ISSUE 2 acceptance bar: >= 10k cycles of random stimulus).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "gates/builder.hpp"
#include "gates/compiled.hpp"
#include "gates/ga_core_gates.hpp"
#include "gates/rng_gates.hpp"

namespace gaip::gates {
namespace {

/// Deterministic stimulus source (splitmix64).
struct Rand {
    std::uint64_t s;
    explicit Rand(std::uint64_t seed) : s(seed) {}
    std::uint64_t next() {
        s += 0x9E3779B97F4A7C15ull;
        std::uint64_t z = s;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }
};

std::vector<Net> input_nets(const GateNetlist& nl) {
    std::vector<Net> in;
    for (Net n = 0; n < nl.net_count(); ++n)
        if (nl.op_of(n) == GateOp::kInput) in.push_back(n);
    return in;
}

TEST(CompiledNetlist, PrimitiveGatesMatchScalarExhaustively) {
    GateNetlist nl;
    const Net a = nl.input("a");
    const Net b = nl.input("b");
    const Net c1 = nl.constant(true);
    const Net c0 = nl.constant(false);
    std::vector<Net> probes = {
        nl.g_and(a, b),  nl.g_or(a, b),   nl.g_xor(a, b),  nl.g_nand(a, b),
        nl.g_nor(a, b),  nl.g_not(a),     nl.gate(GateOp::kBuf, a),
        // constant-operand folding and alias-chasing paths:
        nl.g_and(a, c1), nl.g_and(a, c0), nl.g_or(a, c1),  nl.g_or(a, c0),
        nl.g_xor(a, c1), nl.g_xor(a, c0), nl.g_nand(a, c1), nl.g_nand(a, c0),
        nl.g_nor(a, c1), nl.g_nor(a, c0), nl.g_not(c1),     nl.g_not(c0),
        nl.gate(GateOp::kBuf, c1),        nl.g_and(a, a),   nl.g_xor(a, a),
        nl.g_nand(a, a), nl.g_mux(a, b, c0),
    };
    probes.push_back(nl.gate(GateOp::kBuf, probes[6]));  // buf-of-buf chain

    CompiledNetlist cs(nl);
    for (int va = 0; va <= 1; ++va) {
        for (int vb = 0; vb <= 1; ++vb) {
            nl.set_input(a, va);
            nl.set_input(b, vb);
            nl.eval();
            // Lanes get the same (va, vb) in even lanes and the complement
            // pattern in odd lanes; check both populations.
            for (unsigned lane : {0u, 1u, 63u}) {
                const bool la = (lane % 2 == 0) ? va : !va;
                const bool lb = (lane % 2 == 0) ? vb : !vb;
                cs.set_input(a, lane, la);
                cs.set_input(b, lane, lb);
            }
            cs.eval();
            for (const Net p : probes) {
                EXPECT_EQ(cs.value(p, 0), nl.value(p)) << "net " << p;
            }
        }
    }
}

TEST(CompiledNetlist, FoldsConstantsAndChasesBuffers) {
    GateNetlist nl;
    const Net a = nl.input("a");
    const Net c1 = nl.constant(true);
    const Net buf = nl.gate(GateOp::kBuf, a);
    const Net anded = nl.g_and(buf, c1);      // alias of a
    const Net folded = nl.g_or(c1, a);        // constant 1
    (void)anded;
    (void)folded;
    const Net real = nl.g_xor(a, nl.input("b"));
    (void)real;
    CompiledNetlist cs(nl);
    EXPECT_GE(cs.folded_constants(), 2u);   // c1 itself + the folded OR
    EXPECT_GE(cs.chased_aliases(), 2u);     // buf + the AND-with-1
    EXPECT_LT(cs.instruction_count(), nl.net_count());
    nl.set_input(a, true);
    nl.eval();
    cs.set_input_all(a, true);
    cs.eval();
    EXPECT_EQ(cs.value(anded, 5), nl.value(anded));
    EXPECT_EQ(cs.value(folded, 5), nl.value(folded));
}

TEST(CompiledNetlist, RegistersClockLaneWise) {
    GateNetlist nl;
    const Net d = nl.input("d");
    const Net q = nl.reg("r");
    nl.connect_reg(q, nl.g_xor(d, q));  // toggle-on-d register
    CompiledNetlist cs(nl);
    cs.set_input_lanes(d, 0xAAAAAAAAAAAAAAAAull);
    cs.eval();
    cs.clock();
    EXPECT_EQ(cs.lanes(q), 0xAAAAAAAAAAAAAAAAull);
    cs.eval();
    cs.clock();
    EXPECT_EQ(cs.lanes(q), 0u) << "odd lanes toggle back, even lanes stay 0";
}

TEST(CompiledNetlist, WordValueRejectsOver64Nets) {
    GateNetlist nl;
    std::vector<Net> wide;
    for (int i = 0; i < 65; ++i) wide.push_back(nl.input("i" + std::to_string(i)));
    CompiledNetlist cs(nl);
    EXPECT_THROW(cs.word_value(wide, 0), std::invalid_argument);
    wide.pop_back();
    EXPECT_NO_THROW(cs.word_value(wide, 0));
}

/// Drive the scalar netlist and a compiled netlist (any lane-block width,
/// any Options) with identical stimulus for `cycles` cycles (mixing normal
/// clocks and scan-shift bursts), comparing the scalar reference against
/// compiled lane `ref_lane` — registers and probe nets every cycle, every
/// net periodically and on the final cycle.
void run_differential(GateNetlist& nl, std::uint64_t seed, unsigned ref_lane,
                      unsigned cycles, unsigned full_compare_stride,
                      CompiledNetlist::Options opts = {}) {
    CompiledNetlist cs(nl, opts);
    ASSERT_LT(ref_lane, cs.lane_count());
    const unsigned words = cs.words();
    const unsigned ref_word = ref_lane / CompiledNetlist::kWordBits;
    const unsigned ref_bit = ref_lane % CompiledNetlist::kWordBits;
    Rand rnd(seed);
    const std::vector<Net> inputs = input_nets(nl);
    const std::vector<Net> regs = nl.register_q_nets();

    auto compare_all = [&](unsigned cycle) {
        for (Net n = 0; n < nl.net_count(); ++n) {
            if (cs.value(n, ref_lane) != nl.value(n)) {
                FAIL() << "lane " << ref_lane << " diverges from scalar at cycle "
                       << cycle << ", net " << n << " (" << gate_op_name(nl.op_of(n))
                       << " '" << nl.name_of(n) << "')";
            }
        }
    };

    for (unsigned c = 0; c < cycles; ++c) {
        // Random stimulus: lane_count() independent lanes; the scalar
        // reference replays lane `ref_lane`.
        for (const Net in : inputs) {
            for (unsigned w = 0; w < words; ++w) {
                const std::uint64_t word = rnd.next();
                cs.set_input_word(in, w, word);
                if (w == ref_word) nl.set_input(in, (word >> ref_bit) & 1u);
            }
        }
        nl.eval();
        cs.eval();

        if (c % full_compare_stride == 0 || c + 1 == cycles) {
            compare_all(c);
            if (::testing::Test::HasFatalFailure()) return;
        } else {
            for (const Net q : regs)
                ASSERT_EQ(cs.value(q, ref_lane), nl.value(q))
                    << "register net " << q << " at cycle " << c;
        }

        // Mostly normal clocks; every 257th cycle a burst of scan shifts
        // exercises test mode under load.
        if (c % 257 == 200) {
            for (int s = 0; s < 8; ++s) {
                std::uint64_t scan_in[CompiledNetlist::kMaxWords] = {};
                std::uint64_t scan_out[CompiledNetlist::kMaxWords] = {};
                for (unsigned w = 0; w < words; ++w) scan_in[w] = rnd.next();
                const bool scalar_out =
                    nl.clock(true, (scan_in[ref_word] >> ref_bit) & 1u);
                cs.clock_scan(scan_in, scan_out);
                ASSERT_EQ((scan_out[ref_word] >> ref_bit) & 1u, scalar_out ? 1u : 0u)
                    << "scan-out mismatch at cycle " << c << " shift " << s;
            }
            nl.eval();
            cs.eval();
        }
        nl.clock();
        cs.clock();
    }
}

TEST(CompiledNetlist, FullGaCoreDifferential10kCycles) {
    // The headline differential: the complete GA core netlist (~10.7k
    // two-input gates, 405 scan registers) under random stimulus.
    const auto g = build_ga_core_netlist();
    run_differential(g->nl, /*seed=*/0x2961, /*ref_lane=*/0, /*cycles=*/10'000,
                     /*full_compare_stride=*/211);
}

TEST(CompiledNetlist, FullGaCoreDifferentialHighLane) {
    const auto g = build_ga_core_netlist();
    run_differential(g->nl, /*seed=*/0xB342, /*ref_lane=*/63, /*cycles=*/2'500,
                     /*full_compare_stride=*/97);
}

TEST(CompiledNetlist, RngModuleDifferentialEveryNetEveryCycle) {
    const auto g = build_rng_netlist();
    run_differential(g->nl, /*seed=*/0x061F, /*ref_lane=*/17, /*cycles=*/10'000,
                     /*full_compare_stride=*/1);
}

TEST(CompiledNetlist, ScanChainLanesDoNotInterfere) {
    // Shift a distinct known pattern into every lane of the full GA core's
    // scan chain; each lane's register file must hold exactly its own
    // pattern afterwards, and a full rotation must restore it.
    const auto g = build_ga_core_netlist();
    CompiledNetlist cs(g->nl);
    const std::vector<Net> regs = g->nl.register_q_nets();
    const unsigned len = static_cast<unsigned>(regs.size());
    ASSERT_GT(len, 300u);

    // Pattern bit i of lane k (head-first shift order): hash(k, i).
    auto pattern_bit = [](unsigned lane, unsigned i) {
        std::uint64_t h = (std::uint64_t{lane} << 32) | i;
        h *= 0x9E3779B97F4A7C15ull;
        h ^= h >> 29;
        return (h >> 7) & 1u;
    };

    // Shift in: bit shifted at step s ends up at register (len-1-s) after
    // all len shifts (the chain shifts head -> tail).
    for (unsigned s = 0; s < len; ++s) {
        std::uint64_t scan_in = 0;
        for (unsigned lane = 0; lane < CompiledNetlist::kWordBits; ++lane)
            if (pattern_bit(lane, s)) scan_in |= std::uint64_t{1} << lane;
        cs.clock(true, scan_in);
    }
    for (unsigned lane : {0u, 1u, 31u, 62u, 63u}) {
        for (unsigned i = 0; i < len; ++i) {
            ASSERT_EQ(cs.value(regs[i], lane), pattern_bit(lane, len - 1 - i) != 0)
                << "lane " << lane << " register " << i;
        }
    }

    // Rotate: feeding every lane's scan-out back into scan-in len times
    // must restore every lane exactly (the mid-run state-rotation scenario).
    std::uint64_t carry = cs.scan_tail();
    for (unsigned s = 0; s < len; ++s) {
        const std::uint64_t out = cs.clock(true, carry);
        carry = cs.scan_tail();
        (void)out;
    }
    for (unsigned lane : {0u, 63u}) {
        for (unsigned i = 0; i < len; ++i) {
            ASSERT_EQ(cs.value(regs[i], lane), pattern_bit(lane, len - 1 - i) != 0)
                << "post-rotation lane " << lane << " register " << i;
        }
    }
}

TEST(CompiledNetlist, CompileStatsOnFullCore) {
    const auto g = build_ga_core_netlist();
    CompiledNetlist cs(g->nl);
    EXPECT_EQ(cs.register_count(), 405u);
    EXPECT_LT(cs.instruction_count(), g->nl.net_count())
        << "folding + alias chasing must shrink the instruction stream";
    EXPECT_GT(cs.folded_constants(), 0u);
    EXPECT_GT(cs.chased_aliases(), 0u);
    // The optimizer report must balance: executed + CSE'd + pruned = base.
    EXPECT_EQ(cs.instruction_count() + cs.cse_shared() + cs.pruned_dead(),
              cs.base_instruction_count());
    EXPECT_GT(cs.cse_shared(), 0u) << "the real core has sharable subexpressions";
    EXPECT_EQ(cs.pruned_dead(), 0u) << "prune is opt-in";
}

// ---- N-word lane blocks: the same differential bar at 128/256/512 lanes.

TEST(CompiledNetlist, RejectsUnsupportedWordCounts) {
    GateNetlist nl;
    (void)nl.input("a");
    for (unsigned w : {0u, 3u, 5u, 16u})
        EXPECT_THROW(CompiledNetlist(nl, {.words = w}), std::invalid_argument) << w;
    for (unsigned w : {1u, 2u, 4u, 8u}) {
        CompiledNetlist cs(nl, {.words = w});
        EXPECT_EQ(cs.words(), w);
        EXPECT_EQ(cs.lane_count(), w * 64u);
    }
}

TEST(CompiledNetlist, FullGaCoreDifferentialW2) {
    const auto g = build_ga_core_netlist();
    run_differential(g->nl, /*seed=*/0x1207, /*ref_lane=*/100, /*cycles=*/2'500,
                     /*full_compare_stride=*/97, {.words = 2});
}

TEST(CompiledNetlist, FullGaCoreDifferentialW4) {
    const auto g = build_ga_core_netlist();
    run_differential(g->nl, /*seed=*/0x55AA, /*ref_lane=*/255, /*cycles=*/2'500,
                     /*full_compare_stride=*/97, {.words = 4});
}

TEST(CompiledNetlist, FullGaCoreDifferentialW8) {
    const auto g = build_ga_core_netlist();
    run_differential(g->nl, /*seed=*/0x9D2C, /*ref_lane=*/511, /*cycles=*/2'500,
                     /*full_compare_stride=*/97, {.words = 8});
}

TEST(CompiledNetlist, RngModuleDifferentialW8EveryNetEveryCycle) {
    const auto g = build_rng_netlist();
    run_differential(g->nl, /*seed=*/0x71F3, /*ref_lane=*/300, /*cycles=*/4'000,
                     /*full_compare_stride=*/1, {.words = 8});
}

TEST(CompiledNetlist, FullGaCoreDifferentialCseDisabled) {
    // The unoptimized instruction stream must stay a valid baseline.
    const auto g = build_ga_core_netlist();
    run_differential(g->nl, /*seed=*/0x2961, /*ref_lane=*/0, /*cycles=*/1'200,
                     /*full_compare_stride=*/211, {.words = 1, .cse = false});
}

TEST(CompiledNetlist, PruneKeepsPortsAndRejectsDeadReads) {
    GateNetlist nl;
    const Net a = nl.input("a");
    const Net b = nl.input("b");
    const Net live = nl.g_and(a, b);
    const Net dead = nl.g_xor(a, b);
    CompiledNetlist cs(nl, {.cse = true, .prune = true, .keep = {live}});
    EXPECT_EQ(cs.pruned_dead(), 1u);
    cs.set_input_all(a, true);
    cs.set_input_all(b, true);
    cs.eval();
    EXPECT_EQ(cs.lanes(live), ~std::uint64_t{0});
    EXPECT_THROW(cs.lanes(dead), std::logic_error);
    EXPECT_THROW(cs.value(dead, 0), std::logic_error);
}

TEST(CompiledNetlist, PrunedFullCoreMatchesScalarOnPorts) {
    // Compile the full core with dead-gate pruning + DFS reorder, keeping
    // only the observable port surface; ports and registers must still
    // track the scalar oracle cycle-exactly.
    const auto g = build_ga_core_netlist();
    GateNetlist& nl = g->nl;
    const std::vector<Net> keep = g->observable_port_nets();
    CompiledNetlist cs(nl, {.words = 2, .cse = true, .prune = true, .keep = keep});
    EXPECT_EQ(cs.instruction_count() + cs.cse_shared() + cs.pruned_dead(),
              cs.base_instruction_count());

    Rand rnd(0x77E1);
    const std::vector<Net> inputs = input_nets(nl);
    const std::vector<Net> regs = nl.register_q_nets();
    const unsigned ref_lane = 77;  // word 1, bit 13
    for (unsigned c = 0; c < 1'500; ++c) {
        for (const Net in : inputs) {
            for (unsigned w = 0; w < 2; ++w) {
                const std::uint64_t word = rnd.next();
                cs.set_input_word(in, w, word);
                if (w == ref_lane / 64) nl.set_input(in, (word >> (ref_lane % 64)) & 1u);
            }
        }
        nl.eval();
        cs.eval();
        for (const Net k : keep)
            ASSERT_EQ(cs.value(k, ref_lane), nl.value(k)) << "port net " << k;
        for (const Net q : regs)
            ASSERT_EQ(cs.value(q, ref_lane), nl.value(q)) << "register net " << q;
        nl.clock();
        cs.clock();
    }
}

TEST(CompiledNetlist, KernelVariantsAgree) {
    // Force the portable kernel via GAIP_KERNEL and replay identical
    // stimulus: the runtime-dispatched (AVX2/AVX-512 where available) and
    // generic kernels must produce identical lane blocks.
    const auto g = build_rng_netlist();
    GateNetlist& nl = g->nl;
    const std::vector<Net> inputs = input_nets(nl);
    for (unsigned words : {4u, 8u}) {
        CompiledNetlist fast(nl, {.words = words});
        ::setenv("GAIP_KERNEL", "generic", 1);
        CompiledNetlist slow(nl, {.words = words});
        ::unsetenv("GAIP_KERNEL");
        Rand r1(0xC0DE), r2(0xC0DE);
        for (unsigned c = 0; c < 500; ++c) {
            for (const Net in : inputs)
                for (unsigned w = 0; w < words; ++w) {
                    fast.set_input_word(in, w, r1.next());
                    slow.set_input_word(in, w, r2.next());
                }
            fast.eval();
            slow.eval();
            for (Net n = 0; n < nl.net_count(); ++n)
                for (unsigned w = 0; w < words; ++w)
                    ASSERT_EQ(fast.lanes_word(n, w), slow.lanes_word(n, w))
                        << "net " << n << " word " << w << " cycle " << c;
            fast.clock();
            slow.clock();
        }
    }
}

TEST(CompiledNetlist, SingleWordApiThrowsOnWideBlocks) {
    GateNetlist nl;
    const Net a = nl.input("a");
    const Net q = nl.reg("r");
    nl.connect_reg(q, a);
    CompiledNetlist cs(nl, {.words = 4});
    EXPECT_THROW(cs.set_input_lanes(a, 1), std::logic_error);
    EXPECT_THROW(cs.set_register_lanes(q, 1), std::logic_error);
    EXPECT_THROW(cs.xor_register_lanes(q, 1), std::logic_error);
    EXPECT_THROW(cs.lanes(a), std::logic_error);
    EXPECT_THROW(cs.scan_tail(), std::logic_error);
    EXPECT_THROW(cs.clock(true, 0), std::logic_error);
    EXPECT_NO_THROW(cs.clock());  // normal-mode clock works at any width
    EXPECT_THROW(cs.set_input_word(a, 4, 0), std::invalid_argument);
    EXPECT_NO_THROW(cs.set_input_word(a, 3, ~std::uint64_t{0}));
    EXPECT_EQ(cs.lanes_word(a, 3), ~std::uint64_t{0});
}

TEST(CompiledNetlist, WideScanChainLanesDoNotInterfere) {
    // The W=8 version of the scan-isolation bar: distinct patterns per
    // lane across all 512 lanes, shifted in via clock_scan.
    const auto g = build_rng_netlist();
    CompiledNetlist cs(g->nl, {.words = 8});
    const std::vector<Net> regs = g->nl.register_q_nets();
    const unsigned len = static_cast<unsigned>(regs.size());
    ASSERT_GT(len, 16u);

    auto pattern_bit = [](unsigned lane, unsigned i) {
        std::uint64_t h = (std::uint64_t{lane} << 32) | i;
        h *= 0x9E3779B97F4A7C15ull;
        h ^= h >> 29;
        return (h >> 7) & 1u;
    };

    for (unsigned s = 0; s < len; ++s) {
        std::uint64_t scan_in[8] = {};
        for (unsigned lane = 0; lane < cs.lane_count(); ++lane)
            if (pattern_bit(lane, s)) scan_in[lane / 64] |= std::uint64_t{1} << (lane % 64);
        cs.clock_scan(scan_in, nullptr);
    }
    for (unsigned lane : {0u, 63u, 64u, 130u, 301u, 511u}) {
        for (unsigned i = 0; i < len; ++i) {
            ASSERT_EQ(cs.value(regs[i], lane), pattern_bit(lane, len - 1 - i) != 0)
                << "lane " << lane << " register " << i;
        }
    }
}

// ---- set_word_input: strict value-width contract on BOTH paths.

TEST(CompiledNetlist, SetWordInputRejectsOversizedValuesOnBothPaths) {
    GateNetlist nl;
    std::vector<Net> w;
    for (int i = 0; i < 5; ++i) w.push_back(nl.input("w" + std::to_string(i)));
    const Net probe = nl.g_xor(nl.g_xor(w[0], w[1]), w[4]);
    CompiledNetlist cs(nl, {.words = 2});

    // In range: value fits 5 bits; scalar and compiled agree bit-for-bit.
    nl.set_word_input(w, 0x15);
    cs.set_word_input(w, 100, 0x15);
    nl.eval();
    cs.eval();
    EXPECT_EQ(cs.value(probe, 100), nl.value(probe));
    EXPECT_EQ(cs.word_value(w, 100), nl.word_value(w));
    EXPECT_EQ(nl.word_value(w), 0x15u);

    // Out of range: bit 5 set on a 5-bit word — both paths throw, and the
    // previously loaded stimulus must remain intact (strong guarantee).
    EXPECT_THROW(nl.set_word_input(w, 0x20), std::invalid_argument);
    EXPECT_THROW(cs.set_word_input(w, 100, 0x20), std::invalid_argument);
    EXPECT_THROW(cs.set_word_input(w, 100, ~std::uint64_t{0}), std::invalid_argument);
    EXPECT_EQ(nl.word_value(w), 0x15u);
    EXPECT_EQ(cs.word_value(w, 100), 0x15u);

    // Full-width (64-net) vectors accept any u64.
    std::vector<Net> full;
    GateNetlist nl64;
    for (int i = 0; i < 64; ++i) full.push_back(nl64.input("f" + std::to_string(i)));
    CompiledNetlist cs64(nl64);
    EXPECT_NO_THROW(nl64.set_word_input(full, ~std::uint64_t{0}));
    EXPECT_NO_THROW(cs64.set_word_input(full, 7, ~std::uint64_t{0}));
    EXPECT_EQ(nl64.word_value(full), ~std::uint64_t{0});
}

// ---- make_cone / eval_cone: partial re-propagation vs the full-eval oracle.

TEST(CompiledNetlist, ConeEvalMatchesFullEvalAfterSourceOnlyChanges) {
    const auto g = build_rng_netlist();
    CompiledNetlist full(g->nl, {.words = 2});
    CompiledNetlist cs(g->nl, {.words = 2});
    const std::vector<Net> inputs = input_nets(g->nl);
    ASSERT_GE(inputs.size(), 6u);
    const std::vector<Net> sources(inputs.begin(), inputs.begin() + 3);
    const std::uint32_t cone = cs.make_cone(sources);
    ASSERT_GT(cs.cone_size(cone), 0u);
    ASSERT_LT(cs.cone_size(cone), cs.instruction_count());

    Rand rnd(0xC0DE);
    for (unsigned c = 0; c < 200; ++c) {
        // Identical full-stimulus cycle on both instances.
        for (const Net in : inputs) {
            for (unsigned w = 0; w < 2; ++w) {
                const std::uint64_t word = rnd.next();
                full.set_input_word(in, w, word);
                cs.set_input_word(in, w, word);
            }
        }
        full.eval();
        cs.eval();
        // Then change ONLY the cone sources: the oracle re-evaluates the
        // whole stream, the subject re-propagates just the precompiled
        // fanout cone. Every net must agree — nets outside the cone are
        // untouched by a source-only change by definition.
        for (const Net in : sources) {
            for (unsigned w = 0; w < 2; ++w) {
                const std::uint64_t word = rnd.next();
                full.set_input_word(in, w, word);
                cs.set_input_word(in, w, word);
            }
        }
        full.eval();
        cs.eval_cone(cone);
        for (Net n = 0; n < g->nl.net_count(); ++n)
            for (unsigned w = 0; w < 2; ++w)
                ASSERT_EQ(cs.lanes_word(n, w), full.lanes_word(n, w))
                    << "cycle " << c << " net " << n << " word " << w;
        // Latch state off the (identical) post-cone D values so later
        // cycles exercise the cone against varying register state too.
        full.clock();
        cs.clock();
    }
}

TEST(CompiledNetlist, MakeConeRejectsBadSources) {
    const auto g = build_rng_netlist();
    CompiledNetlist cs(g->nl);
    EXPECT_THROW(cs.make_cone({g->nl.net_count()}), std::invalid_argument);
    EXPECT_THROW(cs.eval_cone(99), std::out_of_range);
}

}  // namespace
}  // namespace gaip::gates
