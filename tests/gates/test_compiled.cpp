// CompiledNetlist differential verification: every lane of the 64-lane
// compiled evaluator must be bit- and cycle-identical to the scalar
// GateNetlist reference — checked exhaustively on primitive netlists and
// with long random-stimulus runs on the FULL GA core + RNG netlists
// (the ISSUE 2 acceptance bar: >= 10k cycles of random stimulus).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gates/builder.hpp"
#include "gates/compiled.hpp"
#include "gates/ga_core_gates.hpp"
#include "gates/rng_gates.hpp"

namespace gaip::gates {
namespace {

/// Deterministic stimulus source (splitmix64).
struct Rand {
    std::uint64_t s;
    explicit Rand(std::uint64_t seed) : s(seed) {}
    std::uint64_t next() {
        s += 0x9E3779B97F4A7C15ull;
        std::uint64_t z = s;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }
};

std::vector<Net> input_nets(const GateNetlist& nl) {
    std::vector<Net> in;
    for (Net n = 0; n < nl.net_count(); ++n)
        if (nl.op_of(n) == GateOp::kInput) in.push_back(n);
    return in;
}

TEST(CompiledNetlist, PrimitiveGatesMatchScalarExhaustively) {
    GateNetlist nl;
    const Net a = nl.input("a");
    const Net b = nl.input("b");
    const Net c1 = nl.constant(true);
    const Net c0 = nl.constant(false);
    std::vector<Net> probes = {
        nl.g_and(a, b),  nl.g_or(a, b),   nl.g_xor(a, b),  nl.g_nand(a, b),
        nl.g_nor(a, b),  nl.g_not(a),     nl.gate(GateOp::kBuf, a),
        // constant-operand folding and alias-chasing paths:
        nl.g_and(a, c1), nl.g_and(a, c0), nl.g_or(a, c1),  nl.g_or(a, c0),
        nl.g_xor(a, c1), nl.g_xor(a, c0), nl.g_nand(a, c1), nl.g_nand(a, c0),
        nl.g_nor(a, c1), nl.g_nor(a, c0), nl.g_not(c1),     nl.g_not(c0),
        nl.gate(GateOp::kBuf, c1),        nl.g_and(a, a),   nl.g_xor(a, a),
        nl.g_nand(a, a), nl.g_mux(a, b, c0),
    };
    probes.push_back(nl.gate(GateOp::kBuf, probes[6]));  // buf-of-buf chain

    CompiledNetlist cs(nl);
    for (int va = 0; va <= 1; ++va) {
        for (int vb = 0; vb <= 1; ++vb) {
            nl.set_input(a, va);
            nl.set_input(b, vb);
            nl.eval();
            // Lanes get the same (va, vb) in even lanes and the complement
            // pattern in odd lanes; check both populations.
            for (unsigned lane : {0u, 1u, 63u}) {
                const bool la = (lane % 2 == 0) ? va : !va;
                const bool lb = (lane % 2 == 0) ? vb : !vb;
                cs.set_input(a, lane, la);
                cs.set_input(b, lane, lb);
            }
            cs.eval();
            for (const Net p : probes) {
                EXPECT_EQ(cs.value(p, 0), nl.value(p)) << "net " << p;
            }
        }
    }
}

TEST(CompiledNetlist, FoldsConstantsAndChasesBuffers) {
    GateNetlist nl;
    const Net a = nl.input("a");
    const Net c1 = nl.constant(true);
    const Net buf = nl.gate(GateOp::kBuf, a);
    const Net anded = nl.g_and(buf, c1);      // alias of a
    const Net folded = nl.g_or(c1, a);        // constant 1
    (void)anded;
    (void)folded;
    const Net real = nl.g_xor(a, nl.input("b"));
    (void)real;
    CompiledNetlist cs(nl);
    EXPECT_GE(cs.folded_constants(), 2u);   // c1 itself + the folded OR
    EXPECT_GE(cs.chased_aliases(), 2u);     // buf + the AND-with-1
    EXPECT_LT(cs.instruction_count(), nl.net_count());
    nl.set_input(a, true);
    nl.eval();
    cs.set_input_all(a, true);
    cs.eval();
    EXPECT_EQ(cs.value(anded, 5), nl.value(anded));
    EXPECT_EQ(cs.value(folded, 5), nl.value(folded));
}

TEST(CompiledNetlist, RegistersClockLaneWise) {
    GateNetlist nl;
    const Net d = nl.input("d");
    const Net q = nl.reg("r");
    nl.connect_reg(q, nl.g_xor(d, q));  // toggle-on-d register
    CompiledNetlist cs(nl);
    cs.set_input_lanes(d, 0xAAAAAAAAAAAAAAAAull);
    cs.eval();
    cs.clock();
    EXPECT_EQ(cs.lanes(q), 0xAAAAAAAAAAAAAAAAull);
    cs.eval();
    cs.clock();
    EXPECT_EQ(cs.lanes(q), 0u) << "odd lanes toggle back, even lanes stay 0";
}

TEST(CompiledNetlist, WordValueRejectsOver64Nets) {
    GateNetlist nl;
    std::vector<Net> wide;
    for (int i = 0; i < 65; ++i) wide.push_back(nl.input("i" + std::to_string(i)));
    CompiledNetlist cs(nl);
    EXPECT_THROW(cs.word_value(wide, 0), std::invalid_argument);
    wide.pop_back();
    EXPECT_NO_THROW(cs.word_value(wide, 0));
}

/// Drive the scalar netlist and the compiled netlist with identical
/// stimulus for `cycles` cycles (mixing normal clocks and scan-shift
/// bursts), comparing the scalar reference against compiled lane
/// `ref_lane` — registers and probe nets every cycle, every net
/// periodically and on the final cycle.
void run_differential(GateNetlist& nl, std::uint64_t seed, unsigned ref_lane,
                      unsigned cycles, unsigned full_compare_stride) {
    CompiledNetlist cs(nl);
    Rand rnd(seed);
    const std::vector<Net> inputs = input_nets(nl);
    const std::vector<Net> regs = nl.register_q_nets();

    auto compare_all = [&](unsigned cycle) {
        for (Net n = 0; n < nl.net_count(); ++n) {
            if (cs.value(n, ref_lane) != nl.value(n)) {
                FAIL() << "lane " << ref_lane << " diverges from scalar at cycle "
                       << cycle << ", net " << n << " (" << gate_op_name(nl.op_of(n))
                       << " '" << nl.name_of(n) << "')";
            }
        }
    };

    for (unsigned c = 0; c < cycles; ++c) {
        // Random stimulus: 64 independent lanes; the scalar reference
        // replays lane `ref_lane`.
        for (const Net in : inputs) {
            const std::uint64_t w = rnd.next();
            cs.set_input_lanes(in, w);
            nl.set_input(in, (w >> ref_lane) & 1u);
        }
        nl.eval();
        cs.eval();

        if (c % full_compare_stride == 0 || c + 1 == cycles) {
            compare_all(c);
            if (::testing::Test::HasFatalFailure()) return;
        } else {
            for (const Net q : regs)
                ASSERT_EQ(cs.value(q, ref_lane), nl.value(q))
                    << "register net " << q << " at cycle " << c;
        }

        // Mostly normal clocks; every 257th cycle a burst of scan shifts
        // exercises test mode under load.
        if (c % 257 == 200) {
            for (int s = 0; s < 8; ++s) {
                const std::uint64_t scan_w = rnd.next();
                const bool scalar_out = nl.clock(true, (scan_w >> ref_lane) & 1u);
                const std::uint64_t batch_out = cs.clock(true, scan_w);
                ASSERT_EQ((batch_out >> ref_lane) & 1u, scalar_out ? 1u : 0u)
                    << "scan-out mismatch at cycle " << c << " shift " << s;
            }
            nl.eval();
            cs.eval();
        }
        nl.clock();
        cs.clock();
    }
}

TEST(CompiledNetlist, FullGaCoreDifferential10kCycles) {
    // The headline differential: the complete GA core netlist (~10.7k
    // two-input gates, 405 scan registers) under random stimulus.
    const auto g = build_ga_core_netlist();
    run_differential(g->nl, /*seed=*/0x2961, /*ref_lane=*/0, /*cycles=*/10'000,
                     /*full_compare_stride=*/211);
}

TEST(CompiledNetlist, FullGaCoreDifferentialHighLane) {
    const auto g = build_ga_core_netlist();
    run_differential(g->nl, /*seed=*/0xB342, /*ref_lane=*/63, /*cycles=*/2'500,
                     /*full_compare_stride=*/97);
}

TEST(CompiledNetlist, RngModuleDifferentialEveryNetEveryCycle) {
    const auto g = build_rng_netlist();
    run_differential(g->nl, /*seed=*/0x061F, /*ref_lane=*/17, /*cycles=*/10'000,
                     /*full_compare_stride=*/1);
}

TEST(CompiledNetlist, ScanChainLanesDoNotInterfere) {
    // Shift a distinct known pattern into every lane of the full GA core's
    // scan chain; each lane's register file must hold exactly its own
    // pattern afterwards, and a full rotation must restore it.
    const auto g = build_ga_core_netlist();
    CompiledNetlist cs(g->nl);
    const std::vector<Net> regs = g->nl.register_q_nets();
    const unsigned len = static_cast<unsigned>(regs.size());
    ASSERT_GT(len, 300u);

    // Pattern bit i of lane k (head-first shift order): hash(k, i).
    auto pattern_bit = [](unsigned lane, unsigned i) {
        std::uint64_t h = (std::uint64_t{lane} << 32) | i;
        h *= 0x9E3779B97F4A7C15ull;
        h ^= h >> 29;
        return (h >> 7) & 1u;
    };

    // Shift in: bit shifted at step s ends up at register (len-1-s) after
    // all len shifts (the chain shifts head -> tail).
    for (unsigned s = 0; s < len; ++s) {
        std::uint64_t scan_in = 0;
        for (unsigned lane = 0; lane < CompiledNetlist::kLanes; ++lane)
            if (pattern_bit(lane, s)) scan_in |= std::uint64_t{1} << lane;
        cs.clock(true, scan_in);
    }
    for (unsigned lane : {0u, 1u, 31u, 62u, 63u}) {
        for (unsigned i = 0; i < len; ++i) {
            ASSERT_EQ(cs.value(regs[i], lane), pattern_bit(lane, len - 1 - i) != 0)
                << "lane " << lane << " register " << i;
        }
    }

    // Rotate: feeding every lane's scan-out back into scan-in len times
    // must restore every lane exactly (the mid-run state-rotation scenario).
    std::uint64_t carry = cs.scan_tail();
    for (unsigned s = 0; s < len; ++s) {
        const std::uint64_t out = cs.clock(true, carry);
        carry = cs.scan_tail();
        (void)out;
    }
    for (unsigned lane : {0u, 63u}) {
        for (unsigned i = 0; i < len; ++i) {
            ASSERT_EQ(cs.value(regs[i], lane), pattern_bit(lane, len - 1 - i) != 0)
                << "post-rotation lane " << lane << " register " << i;
        }
    }
}

TEST(CompiledNetlist, CompileStatsOnFullCore) {
    const auto g = build_ga_core_netlist();
    CompiledNetlist cs(g->nl);
    EXPECT_EQ(cs.register_count(), 405u);
    EXPECT_LT(cs.instruction_count(), g->nl.net_count())
        << "folding + alias chasing must shrink the instruction stream";
    EXPECT_GT(cs.folded_constants(), 0u);
    EXPECT_GT(cs.chased_aliases(), 0u);
}

}  // namespace
}  // namespace gaip::gates
