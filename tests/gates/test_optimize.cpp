// Logic-optimization pass: folding/CSE/sweep correctness and functional
// equivalence on the real netlists.
#include <gtest/gtest.h>

#include "gates/asic_flow.hpp"
#include "gates/ga_core_gates.hpp"
#include "gates/optimize.hpp"
#include "gates/rng_gates.hpp"

namespace gaip::gates {
namespace {

TEST(Optimize, FoldsConstants) {
    GateNetlist nl;
    const Net a = nl.input("a");
    const Net c1 = nl.constant(true);
    const Net c0 = nl.constant(false);
    const Net x = nl.g_and(a, c1);   // = a
    const Net y = nl.g_or(x, c0);    // = a
    const Net z = nl.g_xor(y, c0);   // = a
    nl.output("z", z);

    const OptimizeResult r = optimize(nl);
    EXPECT_EQ(r.gates_after, 0u) << "the whole cone folds to the input";
    EXPECT_GE(r.folded_constants, 3u);
    // The output maps straight to the (new) input net.
    const Net new_z = r.net_map[z];
    EXPECT_EQ(r.netlist.op_of(new_z), GateOp::kInput);
}

TEST(Optimize, SharesCommonSubexpressions) {
    GateNetlist nl;
    const Net a = nl.input("a");
    const Net b = nl.input("b");
    const Net x = nl.g_and(a, b);
    const Net y = nl.g_and(b, a);  // commutative duplicate
    const Net z = nl.g_xor(x, y);  // = 0 after sharing
    nl.output("z", z);
    const OptimizeResult r = optimize(nl);
    EXPECT_GE(r.shared_subexpressions, 1u);
    // x == y after CSE, so the XOR folds to constant 0.
    EXPECT_EQ(r.netlist.op_of(r.net_map[z]), GateOp::kConst0);
}

TEST(Optimize, SweepsDeadGates) {
    GateNetlist nl;
    const Net a = nl.input("a");
    const Net b = nl.input("b");
    nl.g_and(a, b);              // dead: feeds nothing
    const Net y = nl.g_or(a, b);
    nl.output("y", y);
    const OptimizeResult r = optimize(nl);
    EXPECT_EQ(r.swept_dead, 1u);
    EXPECT_EQ(r.gates_after, 1u);
}

TEST(Optimize, KeepsRegistersAndTheirConesAlive) {
    GateNetlist nl;
    const Net q = nl.reg("r");
    const Net a = nl.input("a");
    nl.connect_reg(q, nl.g_xor(q, a));
    // No named output at all: the register cone must survive regardless.
    const OptimizeResult r = optimize(nl);
    EXPECT_EQ(r.netlist.register_q_nets().size(), 1u);
    EXPECT_EQ(r.gates_after, 1u);
}

TEST(Optimize, RngModuleEquivalentAfterOptimization) {
    auto original = build_rng_netlist();
    OptimizeResult r = optimize(original->nl);
    EXPECT_LT(r.gates_after, r.gates_before);
    EXPECT_TRUE(random_equivalence_check(original->nl, r.netlist, 300, 0x2961));
}

TEST(Optimize, FullCoreEquivalentAndSmallerAfterOptimization) {
    auto original = build_ga_core_netlist();
    OptimizeResult r = optimize(original->nl);
    EXPECT_LT(r.gates_after, r.gates_before);
    // The reset muxes, decoder constants, and preset constants fold hard.
    EXPECT_GT(r.folded_constants + r.shared_subexpressions, 2000u);
    EXPECT_TRUE(random_equivalence_check(original->nl, r.netlist, 60, 0x061F));

    // The optimized netlist also times no worse.
    const AsicReport before = analyze_asic(original->nl);
    const AsicReport after = analyze_asic(r.netlist);
    EXPECT_LE(after.critical_path_ns, before.critical_path_ns + 1e-9);
    EXPECT_LT(after.cell_area_um2, before.cell_area_um2);
}

}  // namespace
}  // namespace gaip::gates
