#include <gtest/gtest.h>

#include "mem/bram.hpp"
#include "mem/ga_memory.hpp"
#include "mem/rom.hpp"
#include "rtl/kernel.hpp"

namespace gaip::mem {
namespace {

struct RamBench {
    rtl::Kernel kernel;
    rtl::Clock& clk = kernel.add_clock("clk", 50'000'000);
    rtl::Wire<std::uint8_t> addr;
    rtl::Wire<std::uint32_t> din;
    rtl::Wire<bool> wr;
    rtl::Wire<std::uint32_t> dout;
    GaMemory ram{GaMemoryPorts{addr, din, wr, dout}};

    RamBench() {
        kernel.bind(ram, clk);
        kernel.reset();
    }
    void cycle(unsigned n = 1) { kernel.run_cycles(clk, n); }
};

TEST(SpBlockRam, SynchronousReadHasOneCycleLatency) {
    RamBench b;
    b.ram.poke(7, 0xCAFEBABE);
    b.addr.drive(7);
    b.wr.drive(false);
    // Before any clock edge, dout still shows the reset value.
    EXPECT_EQ(b.dout.read(), 0u);
    b.cycle();
    EXPECT_EQ(b.dout.read(), 0xCAFEBABEu);
}

TEST(SpBlockRam, WriteThenReadBack) {
    RamBench b;
    b.addr.drive(33);
    b.din.drive(0x12345678);
    b.wr.drive(true);
    b.cycle();
    b.wr.drive(false);
    b.cycle();
    EXPECT_EQ(b.dout.read(), 0x12345678u);
    EXPECT_EQ(b.ram.peek(33), 0x12345678u);
}

TEST(SpBlockRam, WriteFirstBehaviour) {
    RamBench b;
    b.ram.poke(5, 0xAAAAAAAA);
    b.addr.drive(5);
    b.din.drive(0x55555555);
    b.wr.drive(true);
    b.cycle();
    // Write-first: the write cycle's read port already shows the new data.
    EXPECT_EQ(b.dout.read(), 0x55555555u);
}

TEST(SpBlockRam, ResetClearsContents) {
    RamBench b;
    b.ram.poke(9, 123);
    b.kernel.reset();
    EXPECT_EQ(b.ram.peek(9), 0u);
}

TEST(SpBlockRam, DepthAndBitsReported) {
    RamBench b;
    EXPECT_EQ(b.ram.depth(), kGaMemoryDepth);
    EXPECT_EQ(b.ram.storage_bits(), kGaMemoryDepth * 32u);
}

TEST(GaMemoryLayout, PackUnpackRoundTrip) {
    const std::uint32_t w = pack_member(0xBEEF, 0x1234);
    EXPECT_EQ(member_candidate(w), 0xBEEFu);
    EXPECT_EQ(member_fitness(w), 0x1234u);
}

TEST(GaMemoryLayout, BankAddressUsesMsb) {
    EXPECT_EQ(bank_address(false, 0), 0x00u);
    EXPECT_EQ(bank_address(false, 127), 0x7Fu);
    EXPECT_EQ(bank_address(true, 0), 0x80u);
    EXPECT_EQ(bank_address(true, 127), 0xFFu);
    // Index is clamped into the bank (7 bits).
    EXPECT_EQ(bank_address(false, 0xFF), 0x7Fu);
}

TEST(GaMemory, BackdoorAccessors) {
    RamBench b;
    b.ram.poke(bank_address(true, 3), pack_member(0xABCD, 42));
    EXPECT_EQ(b.ram.candidate_at(true, 3), 0xABCDu);
    EXPECT_EQ(b.ram.fitness_at(true, 3), 42u);
}

TEST(BlockRom, ReadAndBits) {
    BlockRom rom({10, 20, 30});
    EXPECT_EQ(rom.depth(), 3u);
    EXPECT_EQ(rom.read(1), 20u);
    EXPECT_EQ(rom.storage_bits(), 48u);
    EXPECT_THROW(rom.read(3), std::out_of_range);
}

TEST(RomModule, OneCycleLatencyAndModuloAddressing) {
    rtl::Kernel kernel;
    rtl::Clock& clk = kernel.add_clock("clk", 50'000'000);
    rtl::Wire<std::uint16_t> addr;
    rtl::Wire<std::uint16_t> dout;
    auto rom = std::make_shared<const BlockRom>(std::vector<std::uint16_t>{5, 6, 7, 8});
    RomModule mod("rom", RomPorts{addr, dout}, rom);
    kernel.bind(mod, clk);
    kernel.reset();

    addr.drive(2);
    kernel.run_cycles(clk, 1);
    EXPECT_EQ(dout.read(), 7u);
    addr.drive(6);  // wraps to 2 in a 4-deep ROM
    kernel.run_cycles(clk, 1);
    EXPECT_EQ(dout.read(), 7u);
}

}  // namespace
}  // namespace gaip::mem
