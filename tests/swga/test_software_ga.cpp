#include <gtest/gtest.h>

#include "core/behavioral.hpp"
#include "fitness/rom_builder.hpp"
#include "swga/ppc_cost_model.hpp"
#include "swga/software_ga.hpp"

namespace gaip::swga {
namespace {

using core::GaParameters;
using fitness::FitnessId;

TEST(SoftwareGa, BitIdenticalToBehavioralModel) {
    const GaParameters p{.pop_size = 32, .n_gens = 12, .xover_threshold = 10,
                         .mut_threshold = 2, .seed = 0x2961};
    const auto rom = fitness::fitness_rom(FitnessId::kMBf6_2);
    const SwRunStats sw = run_software_ga(p, rom);
    const core::RunResult ref = core::run_behavioral_ga(
        p, [&](std::uint16_t x) { return rom->read(x); }, prng::RngKind::kCellularAutomaton,
        false);
    EXPECT_EQ(sw.result.best_candidate, ref.best_candidate);
    EXPECT_EQ(sw.result.best_fitness, ref.best_fitness);
    EXPECT_EQ(sw.result.evaluations, ref.evaluations);
}

TEST(SoftwareGa, OperationCountsAreConsistent) {
    const GaParameters p{.pop_size = 32, .n_gens = 32, .xover_threshold = 10,
                         .mut_threshold = 1, .seed = 0x2961};
    const SwRunStats sw = run_software_ga(p, fitness::fitness_rom(FitnessId::kMBf6_2));

    EXPECT_EQ(sw.ops.generation_loops, 32u);
    // 31 new members per generation arrive in pairs: 16 offspring loops.
    EXPECT_EQ(sw.ops.offspring_loops, 32u * 16u);
    EXPECT_EQ(sw.ops.selections, 2u * sw.ops.offspring_loops);
    EXPECT_EQ(sw.ops.crossovers, sw.ops.offspring_loops);
    EXPECT_EQ(sw.ops.fitness_lookups, sw.result.evaluations);
    // RNG: pop draws + per pair (2 selection + 1 crossover) + per offspring
    // mutation draw.
    EXPECT_EQ(sw.ops.rng_calls, 32u + sw.ops.offspring_loops * 3u + sw.ops.mutations);
    EXPECT_GE(sw.ops.member_reads, sw.ops.selections);  // scan reads dominate
    EXPECT_GT(sw.host_seconds, 0.0);
}

TEST(SoftwareGa, RepeatsStabilizeTimingOnly) {
    const GaParameters p{.pop_size = 16, .n_gens = 4, .xover_threshold = 10,
                         .mut_threshold = 1, .seed = 7};
    const auto rom = fitness::fitness_rom(FitnessId::kF2);
    const SwRunStats once = run_software_ga(p, rom, prng::RngKind::kCellularAutomaton, 1);
    const SwRunStats many = run_software_ga(p, rom, prng::RngKind::kCellularAutomaton, 5);
    EXPECT_EQ(once.result.best_candidate, many.result.best_candidate);
    EXPECT_EQ(once.ops.rng_calls, many.ops.rng_calls);
}

TEST(PpcCostModel, ChargesEveryOperationClass) {
    OpCounts ops;
    ops.rng_calls = 10;
    const PpcCostModelConfig cfg;
    const double base = estimate_ppc_runtime(ops, cfg).cycles;
    EXPECT_DOUBLE_EQ(base, 10 * cfg.cycles_rng_call);

    ops.fitness_lookups = 3;
    EXPECT_DOUBLE_EQ(estimate_ppc_runtime(ops, cfg).cycles,
                     base + 3 * cfg.cycles_fitness_lookup);
}

TEST(PpcCostModel, SecondsScaleWithClock) {
    OpCounts ops;
    ops.offspring_loops = 1000;
    PpcCostModelConfig cfg;
    const double s300 = estimate_ppc_runtime(ops, cfg).seconds;
    cfg.clock_hz = 150e6;
    EXPECT_DOUBLE_EQ(estimate_ppc_runtime(ops, cfg).seconds, 2 * s300);
}

TEST(PpcCostModel, PaperConfigurationLandsInMillisecondRange) {
    // Sanity anchor for the Sec. IV-C comparison: the modeled embedded
    // runtime for the paper's configuration must be milliseconds (the paper
    // measured 37.6 ms; first-principles constants land within an order of
    // magnitude — EXPERIMENTS.md discusses the residual).
    const GaParameters p{.pop_size = 32, .n_gens = 32, .xover_threshold = 10,
                         .mut_threshold = 1, .seed = 0x2961};
    const SwRunStats sw = run_software_ga(p, fitness::fitness_rom(FitnessId::kMBf6_2));
    const PpcEstimate est = estimate_ppc_runtime(sw.ops);
    EXPECT_GT(est.seconds, 1e-3);
    EXPECT_LT(est.seconds, 60e-3);
}


class OperatorRateSweep : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(OperatorRateSweep, AppliedCrossoverRateMatchesThreshold) {
    // Property: over many draws, the fraction of crossover invocations that
    // fire equals threshold/16 (the 4-bit compare against a uniform nibble).
    const std::uint8_t t = GetParam();
    const GaParameters p{.pop_size = 64, .n_gens = 64, .xover_threshold = t,
                         .mut_threshold = 1, .seed = 0xB342};
    const SwRunStats sw = run_software_ga(p, fitness::fitness_rom(FitnessId::kOneMax));
    ASSERT_GT(sw.ops.crossovers, 1000u);
    const double rate =
        static_cast<double>(sw.ops.applied_crossovers) / static_cast<double>(sw.ops.crossovers);
    EXPECT_NEAR(rate, t / 16.0, 0.04) << "threshold " << int(t);
}

TEST_P(OperatorRateSweep, AppliedMutationRateMatchesThreshold) {
    const std::uint8_t t = GetParam();
    const GaParameters p{.pop_size = 64, .n_gens = 64, .xover_threshold = 10,
                         .mut_threshold = t, .seed = 0x061F};
    const SwRunStats sw = run_software_ga(p, fitness::fitness_rom(FitnessId::kOneMax));
    ASSERT_GT(sw.ops.mutations, 2000u);
    const double rate =
        static_cast<double>(sw.ops.applied_mutations) / static_cast<double>(sw.ops.mutations);
    EXPECT_NEAR(rate, t / 16.0, 0.04) << "threshold " << int(t);
}

// 16 is deliberately absent: the 4-bit threshold register masks it to 0
// (rate 15/16 is the maximum the hardware can express).
INSTANTIATE_TEST_SUITE_P(Thresholds, OperatorRateSweep,
                         ::testing::Values(0, 1, 2, 4, 8, 10, 12, 15));

TEST(OperatorRates, ThresholdZeroNeverFiresSixteenAlwaysFires) {
    const GaParameters off{.pop_size = 32, .n_gens = 16, .xover_threshold = 0,
                           .mut_threshold = 0, .seed = 1};
    const SwRunStats a = run_software_ga(off, fitness::fitness_rom(FitnessId::kOneMax));
    EXPECT_EQ(a.ops.applied_crossovers, 0u);
    EXPECT_EQ(a.ops.applied_mutations, 0u);

    // Threshold 16 cannot be expressed in the 4-bit register (masks to 0);
    // 15 is the maximum rate: 15/16 of draws fire.
    const GaParameters hi{.pop_size = 32, .n_gens = 16, .xover_threshold = 15,
                          .mut_threshold = 15, .seed = 1};
    const SwRunStats b = run_software_ga(hi, fitness::fitness_rom(FitnessId::kOneMax));
    EXPECT_GT(b.ops.applied_crossovers, b.ops.crossovers * 8 / 10);
    EXPECT_GT(b.ops.applied_mutations, b.ops.mutations * 8 / 10);
}

}  // namespace
}  // namespace gaip::swga
