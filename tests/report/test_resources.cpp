#include <gtest/gtest.h>

#include <vector>

#include "fitness/rom_builder.hpp"
#include "report/resources.hpp"
#include "report/virtex2pro.hpp"
#include "system/ga_system.hpp"

namespace gaip::report {
namespace {

ResourceReport reference_report(system::GaSystem& sys) {
    // The "GA module" of Table VI: core + RNG + the memory's output logic.
    std::vector<rtl::Module*> logic = {&sys.core()};
    for (rtl::Module* m : sys.kernel().modules()) {
        if (m->name() == "rng_module" || m->name() == "ga_memory") logic.push_back(m);
    }
    return estimate_resources(ResourceInputs{
        std::span<rtl::Module* const>(logic.data(), logic.size()),
        sys.memory().storage_bits(),
        fitness::fitness_rom(fitness::FitnessId::kMBf6_2)->storage_bits()});
}

TEST(Resources, FlipFlopCountIsExactAndStable) {
    system::GaSystemConfig cfg;
    cfg.internal_fems = {fitness::FitnessId::kMBf6_2};
    system::GaSystem sys(cfg);
    const ResourceReport r = reference_report(sys);
    // Exact register enumeration: core + RNG + BRAM output register. This
    // count only changes when the architecture changes; the assertion pins
    // it so silent register growth is caught.
    EXPECT_GT(r.ff_bits, 400u);
    EXPECT_LT(r.ff_bits, 560u);
}

TEST(Resources, SliceUtilizationNearPaperThirteenPercent) {
    system::GaSystemConfig cfg;
    cfg.internal_fems = {fitness::FitnessId::kMBf6_2};
    system::GaSystem sys(cfg);
    const ResourceReport r = reference_report(sys);
    EXPECT_NEAR(r.slice_pct, 13.0, 2.0);
    EXPECT_EQ(r.mult18_blocks, 1u);
}

TEST(Resources, GaMemoryIsOneBramAsInPaper) {
    system::GaSystemConfig cfg;
    cfg.internal_fems = {fitness::FitnessId::kMBf6_2};
    system::GaSystem sys(cfg);
    const ResourceReport r = reference_report(sys);
    // 256 x 32 = 8 Kb -> one 18 Kb block; the paper reports 1%.
    EXPECT_EQ(r.ga_mem_brams, 1u);
    EXPECT_NEAR(r.ga_mem_pct, 1.0, 0.5);
}

TEST(Resources, FitnessRomNearPaperFortyEightPercent) {
    system::GaSystemConfig cfg;
    cfg.internal_fems = {fitness::FitnessId::kMBf6_2};
    system::GaSystem sys(cfg);
    const ResourceReport r = reference_report(sys);
    // 65536 x 16 = 1 Mb / 16 Kb data per block = 64 blocks = 47.1%.
    EXPECT_EQ(r.fitness_rom_brams, 64u);
    EXPECT_NEAR(r.fitness_rom_pct, 48.0, 1.5);
}

TEST(Resources, FormatTable6MentionsEveryRow) {
    ResourceReport r;
    r.ff_bits = 470;
    r.lut_estimate = 3000;
    r.slices = 1700;
    r.slice_pct = 12.4;
    r.ga_mem_brams = 1;
    r.ga_mem_pct = 0.7;
    r.fitness_rom_brams = 64;
    r.fitness_rom_pct = 47.1;
    r.mult18_blocks = 1;
    const std::string t = format_table6(r);
    EXPECT_NE(t.find("Logic utilization"), std::string::npos);
    EXPECT_NE(t.find("50.0 MHz"), std::string::npos);
    EXPECT_NE(t.find("GA memory"), std::string::npos);
    EXPECT_NE(t.find("fitness lookup"), std::string::npos);
    EXPECT_NE(t.find("MULT18X18"), std::string::npos);
}

TEST(Resources, GateCensusEstimateIndependentlyNearPaper) {
    // The full gate-level core's census: 10.7k two-input gates + 405
    // registers. With the documented 3-gates-per-LUT mapping assumption it
    // lands within ~15% of the paper's 13% slice figure — an estimate with
    // no per-FF calibration at all.
    const GateCensusEstimate e = estimate_from_gate_census(10716, 405);
    EXPECT_EQ(e.lut_estimate, 3572u);
    EXPECT_NEAR(e.slice_pct, 13.0, 2.0);
}

TEST(Resources, GateCensusScalesLinearly) {
    const GateCensusEstimate a = estimate_from_gate_census(3000, 100);
    const GateCensusEstimate b = estimate_from_gate_census(6000, 200);
    EXPECT_NEAR(2.0 * a.slice_pct, b.slice_pct, 0.02);
}

TEST(Resources, DeviceConstantsMatchDatasheet) {
    EXPECT_EQ(Virtex2ProXc2vp30::kSlices, 13696u);
    EXPECT_EQ(Virtex2ProXc2vp30::kBramBlocks, 136u);
    EXPECT_EQ(Virtex2ProXc2vp30::kBramDataBits, 16384u);
}

}  // namespace
}  // namespace gaip::report
