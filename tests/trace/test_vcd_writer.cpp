// VcdWriter unit tests: golden-file output, hierarchical scopes, and the
// changed-values-only dump discipline.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "rtl/kernel.hpp"
#include "rtl/module.hpp"
#include "trace/vcd.hpp"

namespace gaip::trace {
namespace {

std::string slurp(const std::string& path) {
    std::ifstream f(path);
    EXPECT_TRUE(f.good()) << path;
    return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

std::string temp_path(const char* name) { return ::testing::TempDir() + "/" + name; }

TEST(VcdWriter, GoldenFile) {
    const std::string path = temp_path("vcd_golden.vcd");
    std::uint64_t a = 0, b = 0;
    {
        VcdWriter vcd(path);
        vcd.add_probe("top", "a", 4, [&a] { return a; });
        vcd.add_probe("top", "b", 1, [&b] { return b; });
        vcd.sample(0);
        a = 5;
        vcd.sample(10);
        b = 1;
        vcd.sample(20);
    }
    EXPECT_EQ(slurp(path),
              "$timescale 1ps $end\n"
              "$scope module top $end\n"
              "$var reg 4 ! a $end\n"
              "$var reg 1 \" b $end\n"
              "$upscope $end\n"
              "$enddefinitions $end\n"
              "#0\n"
              "b0000 !\n"
              "0\"\n"
              "#10\n"
              "b0101 !\n"
              "#20\n"
              "1\"\n");
    std::filesystem::remove(path);
}

TEST(VcdWriter, NestedScopesOpenAndCloseByPathDiff) {
    const std::string path = temp_path("vcd_scopes.vcd");
    {
        VcdWriter vcd(path);
        vcd.add_probe("sys.core", "x", 1, [] { return 0u; });
        vcd.add_probe("sys.core.alu", "y", 1, [] { return 0u; });
        vcd.add_probe("sys.rng", "z", 1, [] { return 0u; });
        vcd.write_header();
    }
    EXPECT_EQ(slurp(path),
              "$timescale 1ps $end\n"
              "$scope module sys $end\n"
              "$scope module core $end\n"
              "$var reg 1 ! x $end\n"
              "$scope module alu $end\n"
              "$var reg 1 \" y $end\n"
              "$upscope $end\n"
              "$upscope $end\n"
              "$scope module rng $end\n"
              "$var reg 1 # z $end\n"
              "$upscope $end\n"
              "$upscope $end\n"
              "$enddefinitions $end\n");
    std::filesystem::remove(path);
}

TEST(VcdWriter, UnchangedValuesEmitNoTimeMark) {
    const std::string path = temp_path("vcd_static.vcd");
    {
        VcdWriter vcd(path);
        vcd.add_probe("s", "v", 8, [] { return 42u; });
        vcd.sample(0);
        vcd.sample(100);  // nothing changed: no #100 mark
        vcd.sample(200);
    }
    const std::string text = slurp(path);
    EXPECT_NE(text.find("#0\n"), std::string::npos);
    EXPECT_EQ(text.find("#100"), std::string::npos);
    EXPECT_EQ(text.find("#200"), std::string::npos);
    std::filesystem::remove(path);
}

TEST(VcdWriter, MasksValuesToDeclaredWidth) {
    const std::string path = temp_path("vcd_mask.vcd");
    {
        VcdWriter vcd(path);
        vcd.add_probe("s", "v", 4, [] { return 0xF5u; });  // only low 4 bits dump
        vcd.sample(0);
    }
    EXPECT_NE(slurp(path).find("b0101 !"), std::string::npos);
    std::filesystem::remove(path);
}

TEST(VcdWriter, RejectsBadWidthAndLateProbes) {
    const std::string path = temp_path("vcd_reject.vcd");
    VcdWriter vcd(path);
    EXPECT_THROW(vcd.add_probe("s", "v", 0, [] { return 0u; }), std::invalid_argument);
    EXPECT_THROW(vcd.add_probe("s", "v", 65, [] { return 0u; }), std::invalid_argument);
    vcd.add_probe("s", "v", 1, [] { return 0u; });
    vcd.write_header();
    EXPECT_THROW(vcd.add_probe("s", "w", 1, [] { return 0u; }), std::logic_error);
    std::filesystem::remove(path);
}

TEST(VcdWriter, IdentifiersStayInPrintableAlphabet) {
    const std::string path = temp_path("vcd_ids.vcd");
    {
        VcdWriter vcd(path);
        for (int i = 0; i < 200; ++i)  // force two-char ids past entry 93
            vcd.add_probe("s", "v" + std::to_string(i), 1, [] { return 0u; });
        vcd.write_header();
    }
    const std::string text = slurp(path);
    EXPECT_NE(text.find("$var reg 1 ! v0 $end"), std::string::npos);
    // Entry 94 wraps to a two-character id: 94 = 0 + 1*94 -> "!\"".
    EXPECT_NE(text.find("$var reg 1 !\" v94 $end"), std::string::npos);
    std::filesystem::remove(path);
}

/// Register-backed module dump via the KernelObserver hook.
class Pulser final : public rtl::Module {
public:
    Pulser() : rtl::Module("pulser") { attach(count_); }
    void eval() override {}
    void tick() override { count_.load(count_.read() + 3); }

private:
    rtl::Reg<std::uint8_t> count_{"count", 0};
};

TEST(VcdWriter, ObservesKernelTimePoints) {
    const std::string path = temp_path("vcd_kernel.vcd");
    {
        rtl::Kernel k;
        rtl::Clock& clk = k.add_clock("clk", 50'000'000);  // 20 ns period
        Pulser p;
        k.bind(p, clk);
        VcdWriter vcd(path);
        vcd.add_module(p, "top.pulser");
        k.add_observer(&vcd);
        k.reset();
        k.run_cycles(clk, 3);
        k.remove_observer(&vcd);
    }
    const std::string text = slurp(path);
    EXPECT_NE(text.find("$scope module top $end"), std::string::npos);
    EXPECT_NE(text.find("$scope module pulser $end"), std::string::npos);
    EXPECT_NE(text.find("$var reg 8"), std::string::npos);
    EXPECT_NE(text.find("#0\n"), std::string::npos);
    EXPECT_NE(text.find("#40000\n"), std::string::npos);  // third edge, 20 ns apart
    EXPECT_NE(text.find("b00001001"), std::string::npos);  // count = 9 after 3 ticks
    std::filesystem::remove(path);
}

}  // namespace
}  // namespace gaip::trace
