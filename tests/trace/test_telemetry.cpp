// Run-telemetry tests: event model, JSONL round-trip, stream ordering on a
// real system run, diff semantics, and cross-substrate equivalence of the
// RT-level tap and the gate-lane emitter.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/gate_batch_runner.hpp"
#include "fault/seu_injector.hpp"
#include "system/ga_system.hpp"
#include "trace/diff.hpp"
#include "trace/event.hpp"
#include "trace/jsonl.hpp"

namespace gaip::trace {
namespace {

core::GaParameters small_params() {
    return {.pop_size = 8, .n_gens = 3, .xover_threshold = 10, .mut_threshold = 1,
            .seed = 0x2961};
}

std::vector<TraceEvent> record_rtl(bool gate_level = false) {
    MemorySink sink;
    system::GaSystemConfig cfg;
    cfg.params = small_params();
    cfg.internal_fems = {fitness::FitnessId::kOneMax};
    cfg.keep_populations = false;
    cfg.trace_sink = &sink;
    cfg.use_gate_level_core = gate_level;
    system::GaSystem sys(cfg);
    sys.run();
    return sink.take();
}

TEST(TraceEvent, FieldAccessors) {
    TraceEvent e(kind::kGeneration, 100, 5);
    e.add("gen", std::uint64_t{7}).add("label", std::string("x")).add("ratio", 0.5);
    EXPECT_EQ(e.u64("gen"), 7u);
    EXPECT_EQ(e.u64("missing", 42), 42u);
    EXPECT_EQ(e.u64("label", 9), 9u);  // non-integer -> default
    ASSERT_NE(e.find("ratio"), nullptr);
    EXPECT_EQ(std::get<double>(*e.find("ratio")), 0.5);
}

TEST(Jsonl, RoundTripsAllValueTypes) {
    TraceEvent e(kind::kFaultInject, 123456789, 42);
    e.add("reg", std::string("best_fit"))
        .add("bit", std::uint64_t{3})
        .add("score", 1.25)
        .add("note", std::string("a\"b\\c\n\t"));
    const std::string line = to_json_line(e);
    const TraceEvent back = from_json_line(line);
    EXPECT_EQ(back, e);
}

TEST(Jsonl, RejectsMalformedLines) {
    EXPECT_THROW(from_json_line("not json"), std::runtime_error);
    EXPECT_THROW(from_json_line("{\"kind\":"), std::runtime_error);
    EXPECT_THROW(from_json_line(""), std::runtime_error);
}

TEST(Jsonl, FileRoundTrip) {
    const std::string path = ::testing::TempDir() + "/trace_roundtrip.jsonl";
    std::vector<TraceEvent> events;
    {
        JsonlSink sink(path);
        for (int i = 0; i < 5; ++i) {
            TraceEvent e(kind::kGeneration, static_cast<std::uint64_t>(i) * 20'000,
                         static_cast<std::uint64_t>(i));
            e.add("gen", static_cast<std::uint64_t>(i));
            sink.on_event(e);
            events.push_back(e);
        }
        sink.flush();
        EXPECT_EQ(sink.events_written(), 5u);
    }
    EXPECT_EQ(load_jsonl(path), events);
    std::filesystem::remove(path);
}

TEST(SystemTap, StreamFollowsProtocolOrder) {
    const std::vector<TraceEvent> events = record_rtl();
    ASSERT_FALSE(events.empty());

    // Six init writes first (one per handshake parameter, in index order),
    // then init_done, then the start pulse.
    ASSERT_GE(events.size(), 8u);
    for (std::uint64_t i = 0; i < 6; ++i) {
        EXPECT_EQ(events[i].kind, kind::kInitWrite) << i;
        EXPECT_EQ(events[i].u64("index"), i);
    }
    EXPECT_EQ(events[6].kind, kind::kInitDone);
    EXPECT_EQ(events[7].kind, kind::kStart);

    // One fem_value per fem_request, value after its request.
    std::uint64_t requests = 0, values = 0;
    for (const TraceEvent& e : events) {
        if (e.kind == kind::kFemRequest) ++requests;
        if (e.kind == kind::kFemValue) {
            ++values;
            EXPECT_EQ(values, requests);  // never a value without its request
        }
    }
    EXPECT_EQ(requests, values);
    EXPECT_GT(requests, 0u);

    // Generation events: gen ids count 0..n_gens-? monotonically; the RT
    // tap adds the op-counter deltas.
    std::uint64_t expected_gen = 0;
    for (const TraceEvent& e : events) {
        if (e.kind != kind::kGeneration) continue;
        EXPECT_EQ(e.u64("gen"), expected_gen++);
        EXPECT_EQ(e.u64("pop"), 8u);
        EXPECT_NE(e.find("rng_draws"), nullptr);
        EXPECT_NE(e.find("crossovers"), nullptr);
        EXPECT_NE(e.find("mutations"), nullptr);
    }
    EXPECT_GE(expected_gen, 3u);

    // The stream ends with done, and events never go back in time.
    EXPECT_EQ(events.back().kind, kind::kDone);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].t, events[i].t) << i;
}

TEST(SystemTap, GenerationCountersSumToRunTotals) {
    MemorySink sink;
    system::GaSystemConfig cfg;
    cfg.params = small_params();
    cfg.internal_fems = {fitness::FitnessId::kOneMax};
    cfg.keep_populations = false;
    cfg.trace_sink = &sink;
    system::GaSystem sys(cfg);
    sys.run();

    std::uint64_t draws = 0, xos = 0, muts = 0, fem_values = 0;
    for (const TraceEvent& e : sink.events()) {
        if (e.kind == kind::kFemValue) ++fem_values;
        if (e.kind != kind::kGeneration) continue;
        draws += e.u64("rng_draws");
        xos += e.u64("crossovers");
        muts += e.u64("mutations");
    }
    EXPECT_EQ(fem_values, sys.fitness_evaluations());
    // The deltas cover everything up to the last monitor pulse; the run
    // totals can only add post-pulse draws (final-generation wrap-up).
    EXPECT_LE(draws, sys.core().rng_draws());
    EXPECT_LE(xos, sys.core().crossovers());
    EXPECT_LE(muts, sys.core().mutations());
    EXPECT_GT(draws, 0u);
    EXPECT_GT(sys.core().rng_draws(), 0u);
}

TEST(SystemTap, GateLevelCoreEmitsSameStreamMinusCounters) {
    const std::vector<TraceEvent> rt = record_rtl(false);
    const std::vector<TraceEvent> gate = record_rtl(true);
    DiffOptions opt;
    opt.ignore_keys = {"rng_draws", "crossovers", "mutations"};
    const auto d = first_divergence(rt, gate, opt);
    EXPECT_FALSE(d.has_value())
        << "diverged at " << d->index << ": " << to_json_line(d->a) << " vs "
        << to_json_line(d->b);
}

TEST(GateLanes, LaneStreamMatchesRtlTap) {
    const std::vector<TraceEvent> rt = record_rtl();

    bench::BatchGateRunner runner(fitness::FitnessId::kOneMax,
                                  {small_params(), small_params()});
    MemorySink lane0, lane1;
    runner.set_lane_sink(0, &lane0);
    runner.set_lane_sink(1, &lane1);
    runner.run();

    DiffOptions opt;
    opt.ignore_keys = {"rng_draws", "crossovers", "mutations"};
    const auto d = first_divergence(rt, lane0.events(), opt);
    EXPECT_FALSE(d.has_value())
        << "diverged at " << d->index << ": " << to_json_line(d->a) << " vs "
        << to_json_line(d->b);
    // Identically configured lanes emit identical streams (same cycles too).
    DiffOptions strict;
    strict.compare_time = true;
    strict.compare_cycle = true;
    EXPECT_FALSE(first_divergence(lane0.events(), lane1.events(), strict).has_value());
}

TEST(Diff, FindsFirstMismatchAndLengthGaps) {
    TraceEvent a1(kind::kGeneration, 0, 0), a2(kind::kGeneration, 20, 1);
    a1.add("best_fit", std::uint64_t{10});
    a2.add("best_fit", std::uint64_t{20});
    TraceEvent b2 = a2;
    b2.fields[0].value = Value{std::uint64_t{21}};

    const std::vector<TraceEvent> a = {a1, a2}, b = {a1, b2};
    const auto d = first_divergence(a, b, {});
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->index, 1u);
    EXPECT_EQ(d->a.u64("best_fit"), 20u);
    EXPECT_EQ(d->b.u64("best_fit"), 21u);

    const std::vector<TraceEvent> shorter = {a1};
    const auto d2 = first_divergence(a, shorter, {});
    ASSERT_TRUE(d2.has_value());
    EXPECT_EQ(d2->index, 1u);
    EXPECT_TRUE(d2->missing_b);

    // Time differences only matter under compare_time.
    TraceEvent shifted = a2;
    shifted.t += 5;
    const std::vector<TraceEvent> c = {a1, shifted};
    EXPECT_FALSE(first_divergence(a, c, {}).has_value());
    DiffOptions strict;
    strict.compare_time = true;
    EXPECT_TRUE(first_divergence(a, c, strict).has_value());
}

TEST(Diff, KindFilterRestrictsComparison) {
    TraceEvent gen(kind::kGeneration, 0, 0);
    gen.add("gen", std::uint64_t{0});
    TraceEvent noise(kind::kInitWrite, 0, 0);
    const std::vector<TraceEvent> a = {noise, gen}, b = {gen};
    DiffOptions opt;
    opt.kinds = {kind::kGeneration};
    EXPECT_FALSE(first_divergence(a, b, opt).has_value());
    EXPECT_TRUE(first_divergence(a, b, {}).has_value());
}

TEST(FaultTrace, InjectionAndDivergenceEventsAppear) {
    fault::InjectorConfig icfg;
    icfg.fn = fitness::FitnessId::kOneMax;
    icfg.params = small_params();
    fault::SeuInjector injector(icfg);

    MemorySink sink;
    injector.set_sink(&sink);
    const fault::FaultSite site{"best_fit", 3, 40};
    const fault::FaultRecord rec = injector.run_rtl(site, fault::InjectBackend::kPoke);

    const TraceEvent* inject = nullptr;
    const TraceEvent* diverge = nullptr;
    for (const TraceEvent& e : sink.events()) {
        if (e.kind == kind::kFaultInject && inject == nullptr) inject = &e;
        if (e.kind == kind::kDivergence && diverge == nullptr) diverge = &e;
    }
    ASSERT_NE(inject, nullptr);
    EXPECT_EQ(std::get<std::string>(*inject->find("reg")), "best_fit");
    EXPECT_EQ(inject->u64("bit"), 3u);
    EXPECT_EQ(inject->u64("inject_cycle"), rec.inject_cycle);
    EXPECT_EQ(std::get<std::string>(*inject->find("backend")), "poke");

    // A best_fit flip departs from the golden trajectory immediately after
    // injection, and the divergence event captures both sides.
    ASSERT_NE(diverge, nullptr);
    EXPECT_GT(diverge->cycle, inject->cycle);
    EXPECT_NE(diverge->u64("best_fit"), diverge->u64("golden_best_fit"));

    // The golden trajectory itself is exposed for tooling.
    EXPECT_EQ(injector.golden_trajectory().size(), injector.golden().ga_cycles);
}

TEST(FaultTrace, FaultFreeReplayMatchesGoldenTrajectory) {
    fault::InjectorConfig icfg;
    icfg.fn = fitness::FitnessId::kOneMax;
    icfg.params = small_params();
    fault::SeuInjector injector(icfg);

    MemorySink sink;
    injector.set_sink(&sink);
    // Flip a bit that the next kStart-path write immediately overwrites?
    // No: flip bit 0 of scan_idx late in a scan-safe state; outcome varies,
    // but the *stream* must contain the injection marker either way.
    const fault::FaultRecord rec =
        injector.run_rtl({"best_fit", 0, 10}, fault::InjectBackend::kScan);
    bool saw_inject = false;
    for (const TraceEvent& e : sink.events()) saw_inject |= e.kind == kind::kFaultInject;
    EXPECT_TRUE(saw_inject);
    EXPECT_EQ(rec.site.bit, 0u);
}

}  // namespace
}  // namespace gaip::trace
