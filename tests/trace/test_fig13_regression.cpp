// Fig. 13 regression: the telemetry stream must reproduce the monitor-tap
// convergence series bit-exactly — same values, same formatting — so the
// bench CSVs pin the same numbers whichever layer produces them.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "fitness/functions.hpp"
#include "system/ga_system.hpp"
#include "trace/event.hpp"

namespace gaip::trace {
namespace {

/// The exact CSV-row formatter bench/bench_figs13_16_convergence.cpp uses.
std::string csv_text(const std::vector<double>& best, const std::vector<double>& avg) {
    std::ostringstream f;
    f << "generation,best_fitness,avg_fitness\n";
    for (std::size_t g = 0; g < best.size(); ++g)
        f << g << ',' << best[g] << ',' << avg[g] << '\n';
    return f.str();
}

TEST(Fig13Regression, TelemetryReproducesMonitorSeriesBitExactly) {
    // Fig. 13 configuration: mBF6_2, seed 061F, XR 10, pop 64, 64 gens.
    MemorySink telemetry;
    system::GaSystemConfig cfg;
    cfg.params = {.pop_size = 64, .n_gens = 64, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = 0x061F};
    cfg.internal_fems = {fitness::FitnessId::kMBf6_2};
    cfg.trace_sink = &telemetry;
    system::GaSystem sys(cfg);
    const core::RunResult r = sys.run();

    // Monitor-tap series (the pre-telemetry data path).
    std::vector<double> mon_best, mon_avg;
    for (const auto& s : r.history) {
        mon_best.push_back(s.best_fit);
        mon_avg.push_back(s.population.empty()
                              ? static_cast<double>(s.fit_sum)
                              : static_cast<double>(s.fit_sum) / s.population.size());
    }

    // Telemetry series: integer best_fit / fit_sum / pop from the
    // generation events, averaged with the identical expression.
    std::vector<double> tel_best, tel_avg;
    for (const TraceEvent& e : telemetry.events()) {
        if (e.kind != kind::kGeneration) continue;
        tel_best.push_back(static_cast<double>(e.u64("best_fit")));
        const std::uint64_t pop = e.u64("pop");
        tel_avg.push_back(pop == 0 ? static_cast<double>(e.u64("fit_sum"))
                                   : static_cast<double>(e.u64("fit_sum")) /
                                         static_cast<double>(pop));
    }

    ASSERT_EQ(tel_best.size(), mon_best.size());
    for (std::size_t g = 0; g < mon_best.size(); ++g) {
        EXPECT_EQ(tel_best[g], mon_best[g]) << "gen " << g;
        EXPECT_EQ(tel_avg[g], mon_avg[g]) << "gen " << g;
    }

    // Formatted output (what lands in fig13_mbf6_061f.csv) is byte-equal.
    EXPECT_EQ(csv_text(tel_best, tel_avg), csv_text(mon_best, mon_avg));

    // Paper headline for Fig. 13: the run is essentially converged within
    // the first ~10 generations (later steps only refine the last <1%).
    ASSERT_GT(tel_best.size(), 12u);
    EXPECT_GE(tel_best[12], 0.99 * static_cast<double>(r.best_fitness));
}

}  // namespace
}  // namespace gaip::trace
