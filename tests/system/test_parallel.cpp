// Tests of the parallel GA array (RTL) and the behavioral island model.
#include <gtest/gtest.h>

#include "fitness/functions.hpp"
#include "system/ga_system.hpp"
#include "system/parallel.hpp"

namespace gaip::system {
namespace {

using core::GaParameters;
using fitness::FitnessId;

const GaParameters kSmall{.pop_size = 16, .n_gens = 8, .xover_threshold = 10,
                          .mut_threshold = 1, .seed = 0};

TEST(ParallelGaSystem, EnginesMatchStandaloneRunsExactly) {
    // Each engine in the array must behave exactly like a standalone system
    // with the same seed — full isolation between engines.
    ParallelGaConfig cfg;
    cfg.params = kSmall;
    cfg.seeds = {0x2961, 0x061F, 0xB342};
    cfg.fitness = FitnessId::kMBf6_2;
    ParallelGaSystem par(cfg);
    const ParallelRunResult r = par.run();
    ASSERT_EQ(r.per_engine.size(), 3u);

    for (std::size_t i = 0; i < cfg.seeds.size(); ++i) {
        GaSystemConfig solo;
        solo.params = kSmall;
        solo.params.seed = cfg.seeds[i];
        solo.internal_fems = {FitnessId::kMBf6_2};
        solo.keep_populations = false;
        const core::RunResult ref = run_ga_system(solo);
        EXPECT_EQ(r.per_engine[i].best_candidate, ref.best_candidate) << "engine " << i;
        EXPECT_EQ(r.per_engine[i].best_fitness, ref.best_fitness) << "engine " << i;
        EXPECT_EQ(r.per_engine[i].evaluations, ref.evaluations) << "engine " << i;
    }
}

TEST(ParallelGaSystem, CombinerPicksTheFittestEngine) {
    ParallelGaConfig cfg;
    cfg.params = kSmall;
    cfg.seeds = {0x2961, 0x061F, 0xB342, 0xAAAA};
    cfg.fitness = FitnessId::kMShubert2D;
    ParallelGaSystem par(cfg);
    const ParallelRunResult r = par.run();

    std::uint16_t expect_best = 0;
    for (const auto& e : r.per_engine) expect_best = std::max(expect_best, e.best_fitness);
    EXPECT_EQ(r.best_fitness, expect_best);
    EXPECT_EQ(r.per_engine[r.best_engine].best_fitness, expect_best);
    EXPECT_EQ(r.best_candidate, r.per_engine[r.best_engine].best_candidate);
    EXPECT_EQ(r.best_fitness,
              fitness::fitness_u16(FitnessId::kMShubert2D, r.best_candidate));
}

TEST(ParallelGaSystem, SeedDiversityBeatsOrEqualsAnySingleEngine) {
    ParallelGaConfig cfg;
    cfg.params = {.pop_size = 32, .n_gens = 16, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = 0};
    cfg.seeds = {0x2961, 0x061F, 0xB342, 0xAAAA};
    cfg.fitness = FitnessId::kBf6;
    ParallelGaSystem par(cfg);
    const ParallelRunResult r = par.run();
    for (const auto& e : r.per_engine) EXPECT_GE(r.best_fitness, e.best_fitness);
    EXPECT_GT(r.ga_cycles, 0u);
}

TEST(ParallelGaSystem, ThreadCountDoesNotChangeResults) {
    // Engines own disjoint kernels, so the worker-pool schedule must be
    // invisible: sequential (threads=1) and pooled (threads=4) runs are
    // bit-identical down to the per-generation statistics.
    auto run_with = [](unsigned threads) {
        ParallelGaConfig cfg;
        cfg.params = kSmall;
        cfg.seeds = {0x2961, 0x061F, 0xB342, 0xAAAA};
        cfg.fitness = FitnessId::kMBf6_2;
        cfg.threads = threads;
        ParallelGaSystem par(cfg);
        EXPECT_EQ(par.engine_count(), 4u);
        EXPECT_GE(par.resolved_threads(), 1u);
        EXPECT_LE(par.resolved_threads(), 4u);
        return par.run();
    };
    const ParallelRunResult seq = run_with(1);
    const ParallelRunResult par = run_with(4);

    EXPECT_EQ(par.best_candidate, seq.best_candidate);
    EXPECT_EQ(par.best_fitness, seq.best_fitness);
    EXPECT_EQ(par.best_engine, seq.best_engine);
    EXPECT_EQ(par.ga_cycles, seq.ga_cycles);
    ASSERT_EQ(par.per_engine.size(), seq.per_engine.size());
    for (std::size_t i = 0; i < par.per_engine.size(); ++i) {
        SCOPED_TRACE("engine " + std::to_string(i));
        EXPECT_EQ(par.per_engine[i].best_candidate, seq.per_engine[i].best_candidate);
        EXPECT_EQ(par.per_engine[i].best_fitness, seq.per_engine[i].best_fitness);
        EXPECT_EQ(par.per_engine[i].evaluations, seq.per_engine[i].evaluations);
        ASSERT_EQ(par.per_engine[i].history.size(), seq.per_engine[i].history.size());
        for (std::size_t g = 0; g < par.per_engine[i].history.size(); ++g) {
            EXPECT_EQ(par.per_engine[i].history[g].best_fit,
                      seq.per_engine[i].history[g].best_fit);
            EXPECT_EQ(par.per_engine[i].history[g].fit_sum,
                      seq.per_engine[i].history[g].fit_sum);
        }
    }
}

TEST(ParallelGaSystem, RepeatedRunsAreDeterministic) {
    ParallelGaConfig cfg;
    cfg.params = kSmall;
    cfg.seeds = {0x2961, 0x061F};
    cfg.fitness = FitnessId::kOneMax;
    ParallelGaSystem par(cfg);
    const ParallelRunResult a = par.run();
    const ParallelRunResult b = par.run();
    EXPECT_EQ(a.best_candidate, b.best_candidate);
    EXPECT_EQ(a.best_fitness, b.best_fitness);
    EXPECT_EQ(a.ga_cycles, b.ga_cycles);
}

TEST(ParallelGaSystem, PerEngineKernelsExposeSchedulerStats) {
    ParallelGaConfig cfg;
    cfg.params = kSmall;
    cfg.seeds = {0x2961, 0x061F};
    cfg.fitness = FitnessId::kOneMax;
    ParallelGaSystem par(cfg);
    par.run();
    for (std::size_t i = 0; i < par.engine_count(); ++i) {
        const rtl::KernelStats s = par.engine_kernel(i).stats();
        EXPECT_GT(s.time_points, 0u) << "engine " << i;
        EXPECT_GT(s.module_evals, 0u) << "engine " << i;
    }
}

TEST(ParallelGaSystem, NoSeedsRejected) {
    ParallelGaConfig cfg;
    cfg.seeds = {};
    EXPECT_THROW(ParallelGaSystem{cfg}, std::invalid_argument);
}

TEST(IslandGa, MatchesBudgetAndReportsPerIslandBest) {
    IslandGaConfig cfg;
    cfg.params = {.pop_size = 16, .n_gens = 16, .xover_threshold = 10, .mut_threshold = 2,
                  .seed = 0};
    cfg.islands = 4;
    const IslandRunResult r = run_island_ga(
        cfg, [](std::uint16_t x) { return fitness::fitness_u16(FitnessId::kMBf6_2, x); });
    EXPECT_EQ(r.evaluations, 4u * (16u + 16u * 15u));
    ASSERT_EQ(r.island_best.size(), 4u);
    std::uint16_t mx = 0;
    for (const std::uint16_t b : r.island_best) mx = std::max(mx, b);
    EXPECT_EQ(r.best_fitness, mx);
}

TEST(IslandGa, MigrationSpreadsTheBestMember) {
    // With frequent migration, every island's best converges toward the
    // global best; with migration off they stay independent.
    auto fn = [](std::uint16_t x) { return fitness::fitness_u16(FitnessId::kOneMax, x); };
    IslandGaConfig with;
    with.params = {.pop_size = 16, .n_gens = 32, .xover_threshold = 10, .mut_threshold = 2,
                   .seed = 0};
    with.islands = 4;
    with.migration_interval = 4;
    const IslandRunResult a = run_island_ga(with, fn);

    IslandGaConfig without = with;
    without.migration_interval = 0;
    const IslandRunResult b = run_island_ga(without, fn);

    auto spread = [](const std::vector<std::uint16_t>& v) {
        const auto [mn, mx] = std::minmax_element(v.begin(), v.end());
        return static_cast<int>(*mx) - static_cast<int>(*mn);
    };
    EXPECT_LE(spread(a.island_best), spread(b.island_best))
        << "migration must not increase the inter-island spread";
    EXPECT_GE(a.best_fitness, b.best_fitness - 200)
        << "migration must not substantially hurt the global best";
}

TEST(IslandGa, SingleIslandEqualsBehavioralGa) {
    IslandGaConfig cfg;
    cfg.params = {.pop_size = 16, .n_gens = 8, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = 0};
    cfg.islands = 1;
    cfg.seed_base = 0xB342;
    auto fn = [](std::uint16_t x) { return fitness::fitness_u16(FitnessId::kF2, x); };
    const IslandRunResult r = run_island_ga(cfg, fn);
    core::GaParameters p = cfg.params;
    p.seed = 0xB342;
    const core::RunResult ref =
        core::run_behavioral_ga(p, fn, prng::RngKind::kCellularAutomaton, false);
    EXPECT_EQ(r.best_candidate, ref.best_candidate);
    EXPECT_EQ(r.best_fitness, ref.best_fitness);
}

TEST(IslandGa, ZeroIslandsRejected) {
    IslandGaConfig cfg;
    cfg.islands = 0;
    EXPECT_THROW(run_island_ga(cfg, [](std::uint16_t) { return std::uint16_t{0}; }),
                 std::invalid_argument);
}

}  // namespace
}  // namespace gaip::system
