// ILA capture tests: trigger semantics on a synthetic counter and a real
// protocol capture — the cycles around a fitness handshake in a live run.
#include <gtest/gtest.h>

#include "core/ga_core.hpp"
#include "fitness/functions.hpp"
#include "rtl/kernel.hpp"
#include "system/ga_system.hpp"
#include "system/ila.hpp"

namespace gaip::system {
namespace {

/// Synthetic counter module for deterministic trigger tests.
struct Counter final : rtl::Module {
    rtl::Reg<std::uint32_t> c{"c", 0};
    Counter() : Module("counter") { attach(c); }
    void tick() override { c.load(c.read() + 1); }
};

TEST(Ila, CapturesPreAndPostTriggerWindow) {
    rtl::Kernel k;
    rtl::Clock& clk = k.add_clock("clk", 1'000'000);
    Counter cnt;
    IntegratedLogicAnalyzer ila(
        {{"count", [&] { return cnt.c.read(); }}}, [&] { return cnt.c.read() == 20; },
        {.pre_trigger = 4, .post_trigger = 6, .one_shot = true});
    k.bind(cnt, clk);
    k.bind(ila, clk);
    k.reset();
    k.run_cycles(clk, 50);

    ASSERT_TRUE(ila.triggered());
    const auto& cap = ila.capture();
    ASSERT_EQ(cap.size(), 4u + 1u + 6u);
    const auto col = ila.column("count");
    for (std::size_t i = 0; i < col.size(); ++i) EXPECT_EQ(col[i], 16u + i);
    // The trigger sample is flagged.
    EXPECT_TRUE(cap[4].at_trigger);
    EXPECT_EQ(cap[4].values[0], 20u);
}

TEST(Ila, OneShotIgnoresLaterTriggers) {
    rtl::Kernel k;
    rtl::Clock& clk = k.add_clock("clk", 1'000'000);
    Counter cnt;
    IntegratedLogicAnalyzer ila(
        {{"count", [&] { return cnt.c.read(); }}},
        [&] { return cnt.c.read() % 10 == 0 && cnt.c.read() > 0; },
        {.pre_trigger = 0, .post_trigger = 2, .one_shot = true});
    k.bind(cnt, clk);
    k.bind(ila, clk);
    k.reset();
    k.run_cycles(clk, 100);
    EXPECT_EQ(ila.windows(), 1u);
    EXPECT_EQ(ila.capture().size(), 3u);
}

TEST(Ila, RepeatingModeCollectsMultipleWindows) {
    rtl::Kernel k;
    rtl::Clock& clk = k.add_clock("clk", 1'000'000);
    Counter cnt;
    IntegratedLogicAnalyzer ila(
        {{"count", [&] { return cnt.c.read(); }}},
        [&] { return cnt.c.read() % 10 == 0 && cnt.c.read() > 0; },
        {.pre_trigger = 0, .post_trigger = 1, .one_shot = false});
    k.bind(cnt, clk);
    k.bind(ila, clk);
    k.reset();
    k.run_cycles(clk, 55);
    EXPECT_EQ(ila.windows(), 5u);  // triggers at 10, 20, 30, 40, 50
}

TEST(Ila, UnknownProbeRejected) {
    IntegratedLogicAnalyzer ila({{"a", [] { return 0ull; }}}, [] { return false; });
    EXPECT_THROW(ila.probe_index("b"), std::invalid_argument);
}

TEST(Ila, CapturesFitnessHandshakeInLiveSystem) {
    // Probe the fitness handshake of a real run and trigger on the first
    // fit_valid — the classic ChipScope debugging session.
    GaSystemConfig cfg;
    cfg.params = {.pop_size = 8, .n_gens = 2, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = 0x2961};
    cfg.internal_fems = {fitness::FitnessId::kF3};
    cfg.keep_populations = false;
    GaSystem sys(cfg);

    IntegratedLogicAnalyzer ila(
        {{"fit_request", [&] { return sys.wires().fit_request.read() ? 1ull : 0ull; }},
         {"fit_valid", [&] { return sys.wires().fit_valid.read() ? 1ull : 0ull; }},
         {"candidate", [&] { return static_cast<std::uint64_t>(sys.wires().candidate.read()); }},
         {"fit_value", [&] { return static_cast<std::uint64_t>(sys.wires().fit_value.read()); }}},
        [&] { return sys.wires().fit_valid.read(); },
        {.pre_trigger = 12, .post_trigger = 12, .one_shot = true});
    // Sample in the fast (200 MHz) domain: the FEM answers within one GA
    // clock period, so the request->valid ordering is only visible there.
    sys.kernel().bind(ila, sys.app_clock());
    sys.run();

    ASSERT_TRUE(ila.triggered());
    const auto req = ila.column("fit_request");
    const auto valid = ila.column("fit_valid");
    const auto cand = ila.column("candidate");
    const auto fitv = ila.column("fit_value");

    // Somewhere in the window, request precedes valid (four-phase order).
    std::size_t first_req = req.size(), first_valid = valid.size();
    for (std::size_t i = 0; i < req.size(); ++i) {
        if (req[i] && first_req == req.size()) first_req = i;
        if (valid[i] && first_valid == valid.size()) first_valid = i;
    }
    ASSERT_LT(first_req, req.size());
    ASSERT_LT(first_valid, valid.size());
    EXPECT_LT(first_req, first_valid) << "request must precede valid";
    // The value delivered while valid is the ROM fitness of the candidate
    // presented with the request.
    EXPECT_EQ(fitv[first_valid],
              fitness::fitness_u16(fitness::FitnessId::kF3,
                                   static_cast<std::uint16_t>(cand[first_req])));
}

}  // namespace
}  // namespace gaip::system
