// System-level tests: multi-FEM switching, external FEMs, monitor
// consistency, and end-to-end optimization quality on the paper's functions.
#include <gtest/gtest.h>

#include "core/behavioral.hpp"
#include "fitness/functions.hpp"
#include "fitness/rom_builder.hpp"
#include "system/ga_system.hpp"

namespace gaip::system {
namespace {

using core::GaParameters;
using core::RunResult;
using fitness::FitnessId;

GaParameters small_params(std::uint16_t seed) {
    return {.pop_size = 16, .n_gens = 8, .xover_threshold = 10, .mut_threshold = 1, .seed = seed};
}

TEST(GaSystem, SwitchingFitnessSlotsWithoutRebuild) {
    // Two internal FEMs; the same netlist optimizes either function purely
    // by the fitfunc_select pin — the paper's no-resynthesis feature.
    for (std::uint8_t slot : {0, 1}) {
        GaSystemConfig cfg;
        cfg.params = small_params(0x2961);
        cfg.internal_fems = {FitnessId::kF3, FitnessId::kOneMax};
        cfg.fitfunc_select = slot;
        GaSystem sys(cfg);
        const RunResult r = sys.run();
        const FitnessId expect = slot == 0 ? FitnessId::kF3 : FitnessId::kOneMax;
        EXPECT_EQ(r.best_fitness, fitness::fitness_u16(expect, r.best_candidate)) << int(slot);
        // Only the selected FEM may have served requests.
        EXPECT_EQ(sys.fems()[slot]->evaluations(), r.evaluations);
        EXPECT_EQ(sys.fems()[1 - slot]->evaluations(), 0u);
    }
}

TEST(GaSystem, ExternalFemProducesIdenticalResultsAtHigherLatency) {
    // The same function served internally (slot 0) vs. externally (slot 4,
    // through fit_value_ext with inter-chip latency): identical GA outcome,
    // more cycles.
    GaSystemConfig internal_cfg;
    internal_cfg.params = small_params(0x061F);
    internal_cfg.internal_fems = {FitnessId::kMBf6_2};
    internal_cfg.fitfunc_select = 0;
    GaSystem internal_sys(internal_cfg);
    const RunResult internal = internal_sys.run();

    GaSystemConfig external_cfg;
    external_cfg.params = small_params(0x061F);
    external_cfg.internal_fems = {};
    external_cfg.external_fem = FitnessId::kMBf6_2;
    external_cfg.external_latency_cycles = 40;
    external_cfg.fitfunc_select = 4;  // slots 4-7 are external by default
    GaSystem external_sys(external_cfg);
    const RunResult external = external_sys.run();

    EXPECT_EQ(external.best_candidate, internal.best_candidate);
    EXPECT_EQ(external.best_fitness, internal.best_fitness);
    EXPECT_GT(external_sys.ga_cycles(), internal_sys.ga_cycles())
        << "inter-chip latency must cost hardware time";
}

TEST(GaSystem, HybridSystemSelectsBetweenInternalAndExternal) {
    // Fig. 5: internal FEM on slot 0 AND an external FEM reachable via the
    // ext ports, selected at run time.
    for (std::uint8_t slot : {std::uint8_t{0}, std::uint8_t{4}}) {
        GaSystemConfig cfg;
        cfg.params = small_params(0xB342);
        cfg.internal_fems = {FitnessId::kF2};
        cfg.external_fem = FitnessId::kMShubert2D;
        cfg.fitfunc_select = slot;
        GaSystem sys(cfg);
        const RunResult r = sys.run();
        const FitnessId expect = slot == 0 ? FitnessId::kF2 : FitnessId::kMShubert2D;
        EXPECT_EQ(r.best_fitness, fitness::fitness_u16(expect, r.best_candidate))
            << "slot " << int(slot);
    }
}

TEST(GaSystem, MonitorHistoryMatchesMemoryContents) {
    GaSystemConfig cfg;
    cfg.params = small_params(45890);
    cfg.internal_fems = {FitnessId::kBf6};
    GaSystem sys(cfg);
    const RunResult r = sys.run();

    ASSERT_EQ(r.history.size(), cfg.params.n_gens + 1u);
    for (const auto& s : r.history) {
        ASSERT_EQ(s.population.size(), cfg.params.pop_size);
        std::uint32_t sum = 0;
        std::uint16_t best = 0;
        for (const auto& m : s.population) {
            EXPECT_EQ(m.fitness, fitness::fitness_u16(FitnessId::kBf6, m.candidate));
            sum += m.fitness;
            best = std::max(best, m.fitness);
        }
        EXPECT_EQ(sum, s.fit_sum) << "gen " << s.gen;
        EXPECT_LE(best, s.best_fit) << "best-ever must dominate the bank's best";
    }
    // The last bank's elite slot carries the best-ever fitness as of the
    // start of the last generation — never more than the final best.
    const auto& hist = r.history;
    EXPECT_EQ(hist.back().population[0].fitness, hist[hist.size() - 2].best_fit);
    EXPECT_LE(hist.back().population[0].fitness, r.best_fitness);
}

TEST(GaSystem, BestFitnessMonotoneAcrossGenerations) {
    GaSystemConfig cfg;
    cfg.params = {.pop_size = 32, .n_gens = 16, .xover_threshold = 12, .mut_threshold = 2,
                  .seed = 0xAAAA};
    cfg.internal_fems = {FitnessId::kMShubert2D};
    const RunResult r = run_ga_system(cfg);
    for (std::size_t g = 1; g < r.history.size(); ++g)
        EXPECT_GE(r.history[g].best_fit, r.history[g - 1].best_fit) << "gen " << g;
}

TEST(GaSystem, RngKindIsPluggable) {
    // The ablation hook: the GA must run (and generally differ) under the
    // comparator generators.
    std::vector<std::uint16_t> bests;
    for (const auto kind : {prng::RngKind::kCellularAutomaton, prng::RngKind::kLfsr,
                            prng::RngKind::kXorShift, prng::RngKind::kWeakLcg}) {
        GaSystemConfig cfg;
        cfg.params = small_params(0x2961);
        cfg.internal_fems = {FitnessId::kMBf6_2};
        cfg.rng_kind = kind;
        cfg.keep_populations = false;
        const RunResult r = run_ga_system(cfg);
        EXPECT_GT(r.best_fitness, 4096u) << "any generator should beat the additive offset";
        bests.push_back(r.best_fitness);
    }
    // The CA and LFSR runs must genuinely differ (different sequences).
    EXPECT_NE(bests[0], bests[1]);
}

TEST(GaSystem, EvaluationCountMatchesBehavioralModel) {
    GaSystemConfig cfg;
    cfg.params = {.pop_size = 24, .n_gens = 6, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = 1567};
    cfg.internal_fems = {FitnessId::kF2};
    GaSystem sys(cfg);
    const RunResult r = sys.run();
    EXPECT_EQ(r.evaluations, 24u + 6u * 23u);
}

TEST(GaSystem, GaCyclesAccountingIsSane) {
    GaSystemConfig cfg;
    cfg.params = small_params(3);
    cfg.internal_fems = {FitnessId::kOneMax};
    GaSystem sys(cfg);
    sys.run();
    // The run must take at least a handful of cycles per evaluation and
    // produce a consistent seconds figure at 50 MHz.
    EXPECT_GT(sys.ga_cycles(), sys.fitness_evaluations() * 10);
    EXPECT_DOUBLE_EQ(sys.ga_seconds(), sys.ga_cycles() / 50e6);
}

TEST(GaSystem, PopSize256ClampsTo128AndIsNotTruncatedToZero) {
    // Regression for the pop-size truncation bug fixed in PR 1: Table IV
    // says the user field is "< 256", and a raw 256 programmed over the
    // 16-bit init bus used to truncate to 0 in the core's uint8_t
    // pop_size register (and in the monitor's uint8_t tap), silently
    // collapsing the population. The clamp must act on the full bus value
    // BEFORE narrowing: 256 -> 128 (the double-banked memory's capacity).
    GaSystemConfig cfg;
    cfg.params = {.pop_size = 16, .n_gens = 2, .xover_threshold = 12, .mut_threshold = 1,
                  .seed = 0x2961};
    GaSystem sys(cfg);
    sys.init_module().set_program({{0, 2}, {1, 0}, {2, 256}, {3, 12}, {4, 1}, {5, 0x2961}});
    const RunResult r = sys.run();

    EXPECT_EQ(sys.core().programmed_parameters().pop_size, 128);
    EXPECT_EQ(sys.wires().mon_pop_size.read(), 128) << "monitor tap must see the clamped value";
    ASSERT_FALSE(r.history.empty());
    for (const auto& gen : r.history)
        EXPECT_EQ(gen.population.size(), 128u) << "generation " << gen.gen;

    // Semantics check: the clamped run is exactly the pop=128 run.
    const GaParameters p128{.pop_size = 128, .n_gens = 2, .xover_threshold = 12,
                            .mut_threshold = 1, .seed = 0x2961};
    const RunResult expect = core::run_behavioral_ga(
        p128,
        [](std::uint16_t x) { return fitness::fitness_u16(FitnessId::kMBf6_2, x); },
        prng::RngKind::kCellularAutomaton, /*keep_populations=*/false);
    EXPECT_EQ(r.best_fitness, expect.best_fitness);
    EXPECT_EQ(r.best_candidate, expect.best_candidate);
}

TEST(GaSystem, TooManyInternalFemsRejected) {
    GaSystemConfig cfg;
    cfg.internal_fems.assign(9, FitnessId::kOneMax);
    EXPECT_THROW(GaSystem{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace gaip::system
