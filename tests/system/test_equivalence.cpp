// The paper's core verification flow: the behavioral model and the
// synthesized RT-level netlist must agree. Our two models share the RNG
// consumption order, so agreement is bit-exact: same best individual, same
// best fitness, same per-generation statistics, same final population.
#include <gtest/gtest.h>

#include "core/behavioral.hpp"
#include "fitness/functions.hpp"
#include "system/ga_system.hpp"

namespace gaip {
namespace {

using core::GaParameters;
using core::RunResult;
using fitness::FitnessId;

struct EquivCase {
    FitnessId fn;
    GaParameters params;
    prng::RngKind rng = prng::RngKind::kCellularAutomaton;
};

class EquivalenceTest : public ::testing::TestWithParam<EquivCase> {};

TEST_P(EquivalenceTest, RtlMatchesBehavioralBitExactly) {
    const EquivCase& c = GetParam();

    system::GaSystemConfig cfg;
    cfg.params = c.params;
    cfg.internal_fems = {c.fn};
    cfg.fitfunc_select = 0;
    cfg.rng_kind = c.rng;
    const RunResult hw = system::run_ga_system(cfg);

    const RunResult sw = core::run_behavioral_ga(
        c.params, [&](std::uint16_t x) { return fitness::fitness_u16(c.fn, x); }, c.rng);

    EXPECT_EQ(hw.best_candidate, sw.best_candidate);
    EXPECT_EQ(hw.best_fitness, sw.best_fitness);
    EXPECT_EQ(hw.evaluations, sw.evaluations);

    ASSERT_EQ(hw.history.size(), sw.history.size());
    for (std::size_t g = 0; g < hw.history.size(); ++g) {
        SCOPED_TRACE("generation " + std::to_string(g));
        EXPECT_EQ(hw.history[g].gen, sw.history[g].gen);
        EXPECT_EQ(hw.history[g].best_fit, sw.history[g].best_fit);
        EXPECT_EQ(hw.history[g].best_ind, sw.history[g].best_ind);
        EXPECT_EQ(hw.history[g].fit_sum, sw.history[g].fit_sum);
        ASSERT_EQ(hw.history[g].population.size(), sw.history[g].population.size());
        for (std::size_t i = 0; i < hw.history[g].population.size(); ++i) {
            EXPECT_EQ(hw.history[g].population[i], sw.history[g].population[i])
                << "member " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedAndParameterSweep, EquivalenceTest,
    ::testing::Values(
        EquivCase{FitnessId::kOneMax,
                  {.pop_size = 8, .n_gens = 4, .xover_threshold = 10, .mut_threshold = 2,
                   .seed = 1}},
        EquivCase{FitnessId::kOneMax,
                  {.pop_size = 16, .n_gens = 8, .xover_threshold = 12, .mut_threshold = 1,
                   .seed = 0x2961}},
        EquivCase{FitnessId::kMBf6_2,
                  {.pop_size = 32, .n_gens = 8, .xover_threshold = 10, .mut_threshold = 1,
                   .seed = 0x061F}},
        EquivCase{FitnessId::kF2,
                  {.pop_size = 32, .n_gens = 6, .xover_threshold = 10, .mut_threshold = 1,
                   .seed = 45890}},
        EquivCase{FitnessId::kMShubert2D,
                  {.pop_size = 16, .n_gens = 6, .xover_threshold = 14, .mut_threshold = 3,
                   .seed = 0xAAAA}},
        EquivCase{FitnessId::kRoyalRoad,
                  {.pop_size = 13, .n_gens = 5, .xover_threshold = 8, .mut_threshold = 4,
                   .seed = 1567}},  // odd population exercises the Mu2 skip
        // More odd populations: both models must drop the surplus second
        // offspring without consuming its mutation draw, or the RNG streams
        // shear apart and every later generation diverges.
        EquivCase{FitnessId::kOneMax,
                  {.pop_size = 3, .n_gens = 6, .xover_threshold = 10, .mut_threshold = 2,
                   .seed = 0x3A3A}},
        EquivCase{FitnessId::kMBf6_2,
                  {.pop_size = 5, .n_gens = 6, .xover_threshold = 12, .mut_threshold = 1,
                   .seed = 0x55AA}},
        EquivCase{FitnessId::kBf6,
                  {.pop_size = 127, .n_gens = 2, .xover_threshold = 10, .mut_threshold = 1,
                   .seed = 0x7F01}},
        EquivCase{FitnessId::kBf6,
                  {.pop_size = 64, .n_gens = 4, .xover_threshold = 12, .mut_threshold = 2,
                   .seed = 10593}},
        EquivCase{FitnessId::kMBf6_2,
                  {.pop_size = 16, .n_gens = 6, .xover_threshold = 10, .mut_threshold = 1,
                   .seed = 0xB342},
                  prng::RngKind::kLfsr},
        EquivCase{FitnessId::kF3,
                  {.pop_size = 16, .n_gens = 6, .xover_threshold = 10, .mut_threshold = 2,
                   .seed = 0xA0A0},
                  prng::RngKind::kXorShift}));

}  // namespace
}  // namespace gaip
