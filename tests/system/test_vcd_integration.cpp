// VCD waveform integration: a full GA run dumped to VCD must produce a
// structurally sound file that records the interesting transitions.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "fitness/functions.hpp"
#include "system/ga_system.hpp"

namespace gaip::system {
namespace {

TEST(VcdIntegration, FullRunProducesParsableWaveform) {
    const std::string path = ::testing::TempDir() + "/gaip_system.vcd";
    {
        GaSystemConfig cfg;
        cfg.params = {.pop_size = 8, .n_gens = 3, .xover_threshold = 10, .mut_threshold = 1,
                      .seed = 0x2961};
        cfg.internal_fems = {fitness::FitnessId::kOneMax};
        cfg.keep_populations = false;
        cfg.vcd_path = path;
        GaSystem sys(cfg);
        const core::RunResult r = sys.run();
        EXPECT_GT(r.best_fitness, 0u);
    }

    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::string line;
    std::size_t var_count = 0;
    std::size_t time_marks = 0;
    bool has_core_scope = false;
    bool has_rng_scope = false;
    bool has_state_var = false;
    while (std::getline(f, line)) {
        if (line.rfind("$var", 0) == 0) {
            ++var_count;
            if (line.find(" state ") != std::string::npos) has_state_var = true;
        }
        if (line.find("$scope module ga_core") != std::string::npos) has_core_scope = true;
        if (line.find("$scope module rng_module") != std::string::npos) has_rng_scope = true;
        if (!line.empty() && line[0] == '#') ++time_marks;
    }
    EXPECT_TRUE(has_core_scope);
    EXPECT_TRUE(has_rng_scope);
    EXPECT_TRUE(has_state_var);
    EXPECT_GT(var_count, 30u) << "all core+rng+memory registers must be declared";
    EXPECT_GT(time_marks, 300u) << "a run of thousands of cycles must leave many samples";
    std::filesystem::remove(path);
}

TEST(VcdIntegration, NoPathMeansNoFile) {
    GaSystemConfig cfg;
    cfg.params = {.pop_size = 8, .n_gens = 2, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = 1};
    cfg.internal_fems = {fitness::FitnessId::kF2};
    cfg.keep_populations = false;
    GaSystem sys(cfg);
    EXPECT_NO_THROW(sys.run());
}

}  // namespace
}  // namespace gaip::system
