// Dedicated unit tests of the peripheral modules: initialization module,
// application module, and generation monitor.
#include <gtest/gtest.h>

#include "core/behavioral.hpp"
#include "rtl/kernel.hpp"
#include "system/app_module.hpp"
#include "system/init_module.hpp"
#include "system/monitor.hpp"

namespace gaip::system {
namespace {

// ------------------------------------------------------------- init ------

struct InitBench {
    rtl::Kernel kernel;
    rtl::Clock& clk = kernel.add_clock("clk", 200'000'000);
    rtl::Wire<bool> ga_load;
    rtl::Wire<std::uint8_t> index;
    rtl::Wire<std::uint16_t> value;
    rtl::Wire<bool> data_valid;
    rtl::Wire<bool> data_ack;
    rtl::Wire<bool> init_done;
    InitModule init{InitModulePorts{ga_load, index, value, data_valid, data_ack, init_done}};

    InitBench() { kernel.bind(init, clk); }
    void cycle(unsigned n = 1) { kernel.run_cycles(clk, n); }
};

TEST(InitModule, EmptyProgramFinishesImmediately) {
    InitBench b;
    b.kernel.reset();
    b.cycle(2);
    EXPECT_TRUE(b.init_done.read());
    EXPECT_FALSE(b.ga_load.read());
}

TEST(InitModule, WalksEveryProgramItemWithHandshake) {
    InitBench b;
    b.init.set_program({{0, 100}, {2, 48}, {5, 0xBEEF}});
    b.kernel.reset();

    std::vector<std::pair<std::uint8_t, std::uint16_t>> seen;
    for (int i = 0; i < 200 && !b.init_done.read(); ++i) {
        if (b.data_valid.read() && !b.data_ack.read()) {
            // Act as the responding core for one handshake.
            seen.emplace_back(b.index.read(), b.value.read());
            b.data_ack.drive(true);
        } else if (!b.data_valid.read() && b.data_ack.read()) {
            b.data_ack.drive(false);
        }
        b.cycle();
    }
    EXPECT_TRUE(b.init_done.read());
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], (std::pair<std::uint8_t, std::uint16_t>{0, 100}));
    EXPECT_EQ(seen[1], (std::pair<std::uint8_t, std::uint16_t>{2, 48}));
    EXPECT_EQ(seen[2], (std::pair<std::uint8_t, std::uint16_t>{5, 0xBEEF}));
    EXPECT_FALSE(b.ga_load.read()) << "init mode must end after the last item";
}

TEST(InitModule, ProgramParametersEmitsTableIIIWrites) {
    InitBench b;
    b.init.program_parameters(core::GaParameters{.pop_size = 64, .n_gens = 0x00020001,
                                                 .xover_threshold = 11, .mut_threshold = 3,
                                                 .seed = 0xA0A0});
    b.kernel.reset();
    std::vector<std::pair<std::uint8_t, std::uint16_t>> seen;
    for (int i = 0; i < 400 && !b.init_done.read(); ++i) {
        if (b.data_valid.read() && !b.data_ack.read()) {
            seen.emplace_back(b.index.read(), b.value.read());
            b.data_ack.drive(true);
        } else if (!b.data_valid.read() && b.data_ack.read()) {
            b.data_ack.drive(false);
        }
        b.cycle();
    }
    ASSERT_EQ(seen.size(), 6u);
    EXPECT_EQ(seen[0], (std::pair<std::uint8_t, std::uint16_t>{0, 0x0001}));  // gens lo
    EXPECT_EQ(seen[1], (std::pair<std::uint8_t, std::uint16_t>{1, 0x0002}));  // gens hi
    EXPECT_EQ(seen[2], (std::pair<std::uint8_t, std::uint16_t>{2, 64}));
    EXPECT_EQ(seen[3], (std::pair<std::uint8_t, std::uint16_t>{3, 11}));
    EXPECT_EQ(seen[4], (std::pair<std::uint8_t, std::uint16_t>{4, 3}));
    EXPECT_EQ(seen[5], (std::pair<std::uint8_t, std::uint16_t>{5, 0xA0A0}));
}

TEST(InitModule, HoldsGaLoadAcrossItems) {
    InitBench b;
    b.init.set_program({{0, 1}, {1, 2}});
    b.kernel.reset();
    bool saw_load_during_items = true;
    for (int i = 0; i < 100 && !b.init_done.read(); ++i) {
        if (b.data_valid.read() && !b.data_ack.read()) b.data_ack.drive(true);
        if (!b.data_valid.read() && b.data_ack.read()) b.data_ack.drive(false);
        if (!b.init_done.read() && i > 1 && !b.ga_load.read() &&
            b.init.done() == false) {
            // ga_load may only drop once done
            saw_load_during_items = b.init.done();
        }
        b.cycle();
    }
    EXPECT_TRUE(saw_load_during_items);
}

// -------------------------------------------------------------- app ------

struct AppBench {
    rtl::Kernel kernel;
    rtl::Clock& clk = kernel.add_clock("clk", 200'000'000);
    rtl::Wire<bool> init_done;
    rtl::Wire<bool> start_ga;
    rtl::Wire<bool> ga_done;
    rtl::Wire<std::uint16_t> candidate;
    rtl::Wire<bool> app_done;
    AppModule app{AppModulePorts{init_done, start_ga, ga_done, candidate, app_done}};

    AppBench() {
        kernel.bind(app, clk);
        kernel.reset();
    }
    void cycle(unsigned n = 1) { kernel.run_cycles(clk, n); }
};

TEST(AppModule, WaitsForInitThenStretchesStartPulse) {
    AppBench b;
    b.cycle(5);
    EXPECT_FALSE(b.start_ga.read()) << "must not start before init_done";
    b.init_done.drive(true);
    b.cycle(2);
    EXPECT_TRUE(b.start_ga.read());
    // The pulse must span at least 8 fast cycles (two slow periods).
    unsigned held = 0;
    while (b.start_ga.read() && held < 100) {
        b.cycle();
        ++held;
    }
    EXPECT_GE(held, 8u);
    EXPECT_FALSE(b.app_done.read());
}

TEST(AppModule, LatchesCandidateOnGaDone) {
    AppBench b;
    b.init_done.drive(true);
    b.cycle(20);  // start pulse over, waiting for done
    b.candidate.drive(0xCAFE);
    b.ga_done.drive(true);
    b.cycle(2);
    EXPECT_TRUE(b.app_done.read());
    EXPECT_EQ(b.app.result(), 0xCAFE);
    b.candidate.drive(0x0000);  // later bus changes must not alter the latch
    b.cycle(2);
    EXPECT_EQ(b.app.result(), 0xCAFE);
}

TEST(AppModule, RestartIssuesAnotherPulse) {
    AppBench b;
    b.init_done.drive(true);
    b.cycle(20);
    b.ga_done.drive(true);
    b.candidate.drive(7);
    b.cycle(2);
    ASSERT_TRUE(b.app.done());
    b.ga_done.drive(false);
    b.app.request_restart();
    b.cycle(2);
    EXPECT_TRUE(b.start_ga.read()) << "restart must re-issue start_GA";
    EXPECT_FALSE(b.app_done.read());
}

// ---------------------------------------------------------- monitor ------

TEST(GenerationMonitor, SamplesOncePerPulseWithoutMemory) {
    rtl::Kernel k;
    rtl::Clock& clk = k.add_clock("clk", 50'000'000);
    rtl::Wire<bool> pulse;
    rtl::Wire<std::uint32_t> gen_id;
    rtl::Wire<std::uint16_t> best_fit, best_ind;
    rtl::Wire<std::uint32_t> fit_sum;
    rtl::Wire<bool> bank;
    rtl::Wire<std::uint8_t> pop;
    GenerationMonitor mon(MonitorPorts{pulse, gen_id, best_fit, best_ind, fit_sum, bank, pop},
                          nullptr, true);
    k.bind(mon, clk);
    k.reset();

    for (std::uint32_t g = 0; g < 3; ++g) {
        gen_id.drive(g);
        best_fit.drive(static_cast<std::uint16_t>(100 + g));
        fit_sum.drive(1000 + g);
        pulse.drive(true);
        k.run_cycles(clk, 1);
        pulse.drive(false);
        k.run_cycles(clk, 4);  // idle cycles: no extra samples
    }
    ASSERT_EQ(mon.history().size(), 3u);
    for (std::uint32_t g = 0; g < 3; ++g) {
        EXPECT_EQ(mon.history()[g].gen, g);
        EXPECT_EQ(mon.history()[g].best_fit, 100 + g);
        EXPECT_EQ(mon.history()[g].fit_sum, 1000 + g);
        EXPECT_TRUE(mon.history()[g].population.empty()) << "no memory attached";
    }
}

}  // namespace
}  // namespace gaip::system
