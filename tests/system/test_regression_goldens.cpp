// Regression goldens: exact end-to-end results for fixed seeds across the
// paper's functions. Any change to the RNG, the operators, the FSM, or the
// protocol timing that alters GA semantics trips these immediately (timing-
// only changes that preserve semantics do not — the goldens pin results,
// the cycle goldens below pin timing separately).
#include <gtest/gtest.h>

#include "fitness/functions.hpp"
#include "system/ga_system.hpp"

namespace gaip::system {
namespace {

using fitness::FitnessId;

struct Golden {
    FitnessId fn;
    std::uint16_t seed;
    std::uint16_t expect_candidate;
    std::uint16_t expect_fitness;
};

class GoldenRun : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenRun, ExactResultForPinnedSeed) {
    const Golden& g = GetParam();
    GaSystemConfig cfg;
    cfg.params = {.pop_size = 32, .n_gens = 16, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = g.seed};
    cfg.internal_fems = {g.fn};
    cfg.keep_populations = false;
    const core::RunResult r = run_ga_system(cfg);
    EXPECT_EQ(r.best_candidate, g.expect_candidate)
        << fitness::fitness_name(g.fn) << " seed " << g.seed;
    EXPECT_EQ(r.best_fitness, g.expect_fitness);
}

// Golden values recorded from the verified three-level-equivalent build
// (behavioral == RTL == gates). Regenerate deliberately with:
//   ./build/tools/gacli --fitness <fn> --pop 32 --gens 16 --xover 10 --mut 1 --seed <s>
INSTANTIATE_TEST_SUITE_P(PinnedSeeds, GoldenRun,
                         ::testing::Values(Golden{FitnessId::kMBf6_2, 0x2961, 0xEF0C, 7659},
                                           Golden{FitnessId::kMBf7_2, 0x061F, 0xECF6, 62198},
                                           Golden{FitnessId::kMShubert2D, 0xB342, 0xA2FA, 65421},
                                           Golden{FitnessId::kBf6, 0xAAAA, 0xF4B0, 4181},
                                           Golden{FitnessId::kOneMax, 0xA0A0, 0xF7FF, 61425}));

TEST(GoldenRun, CycleCountPinnedForReferenceConfig) {
    // Timing golden: the modeled hardware time of the Sec. IV-C reference
    // configuration. Deliberate FSM changes must update this with the
    // EXPERIMENTS.md speedup discussion.
    GaSystemConfig cfg;
    cfg.params = {.pop_size = 32, .n_gens = 32, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = 0x2961};
    cfg.internal_fems = {FitnessId::kMBf6_2};
    cfg.keep_populations = false;
    GaSystem sys(cfg);
    sys.run();
    EXPECT_NEAR(static_cast<double>(sys.ga_cycles()), 42700.0, 2000.0);
}

}  // namespace
}  // namespace gaip::system
