// Dual-core 32-bit GA (Fig. 6): lockstep integrity, elite coherence, and
// the probability-composition equations.
#include <gtest/gtest.h>

#include "core/dual_behavioral.hpp"
#include "core/dual_core.hpp"
#include "fitness/functions.hpp"

namespace gaip {
namespace {

using core::DualGaConfig;
using core::DualGaSystem;
using core::DualRunResult;

TEST(DualCoreProbability, ComposeMatchesPaperEquation) {
    // xovProb32 = p(MSB) + p(LSB) - p(MSB)*p(LSB)
    EXPECT_DOUBLE_EQ(core::compose_probability(0.5, 0.5), 0.75);
    EXPECT_DOUBLE_EQ(core::compose_probability(0.0, 0.3), 0.3);
    EXPECT_DOUBLE_EQ(core::compose_probability(1.0, 0.3), 1.0);
    EXPECT_DOUBLE_EQ(core::compose_probability(0.25, 0.125), 0.25 + 0.125 - 0.25 * 0.125);
}

TEST(DualCoreProbability, SplitThresholdStaysAtOrBelowTarget) {
    for (int t = 1; t <= 16; ++t) {
        const double target = t / 16.0;
        const std::uint8_t thr = core::split_threshold_for_rate32(target);
        const double per_half = thr / 16.0;
        EXPECT_LE(core::compose_probability(per_half, per_half), target + 1e-12)
            << "target " << target;
    }
    EXPECT_EQ(core::split_threshold_for_rate32(0.0), 0);
    EXPECT_EQ(core::split_threshold_for_rate32(1.0), 15);
}

TEST(DualCoreSystem, SolvesOneMax32) {
    DualGaConfig cfg;
    cfg.pop_size = 32;
    cfg.n_gens = 64;
    cfg.fitness = [](std::uint32_t x) { return fitness::onemax32(x); };
    DualGaSystem sys(cfg);
    const DualRunResult r = sys.run();

    // 32 ones is the optimum; the GA should get close within 64 generations.
    EXPECT_GE(std::popcount(r.best_candidate), 27) << std::hex << r.best_candidate;
    EXPECT_EQ(r.best_fitness, fitness::onemax32(r.best_candidate));
    EXPECT_GT(r.ga_cycles, 0u);
}

TEST(DualCoreSystem, CoresStayInLockstep) {
    DualGaConfig cfg;
    cfg.pop_size = 16;
    cfg.n_gens = 8;
    cfg.fitness = [](std::uint32_t x) { return fitness::sphere32(x, 0xDEADBEEF); };
    DualGaSystem sys(cfg);
    sys.run();

    // After a completed run both cores must have identical control state:
    // same FSM state, generation count, bank, and best fitness.
    EXPECT_EQ(sys.core_msb().state(), sys.core_lsb().state());
    EXPECT_EQ(sys.core_msb().generation(), sys.core_lsb().generation());
    EXPECT_EQ(sys.core_msb().current_bank(), sys.core_lsb().current_bank());
    EXPECT_EQ(sys.core_msb().best_fitness(), sys.core_lsb().best_fitness());
}

TEST(DualCoreSystem, EliteSlotHoldsCoherent32BitIndividual) {
    DualGaConfig cfg;
    cfg.pop_size = 16;
    cfg.n_gens = 12;
    cfg.fitness = [](std::uint32_t x) { return fitness::onemax32(x); };
    DualGaSystem sys(cfg);
    const DualRunResult r = sys.run();

    // Slot 0 of the final bank is the elite: its stored fitness must be the
    // true fitness of its stored (concatenated) candidate, and must equal
    // the reported best.
    const bool bank = sys.core_msb().current_bank();
    const std::uint32_t elite = sys.memory().candidate32_at(bank, 0);
    const std::uint16_t elite_fit = sys.memory().fitness_at(bank, 0);
    EXPECT_EQ(elite_fit, fitness::onemax32(elite));
    EXPECT_EQ(elite, r.best_candidate);
    EXPECT_EQ(elite_fit, r.best_fitness);
}

TEST(DualCoreSystem, StoredFitnessesMatchStoredCandidates) {
    // Every member of the final population must satisfy fitness(candidate)
    // == stored fitness — i.e. the MSB and LSB halves written by the two
    // cores belong to the same evaluated individual (no chimera writes).
    DualGaConfig cfg;
    cfg.pop_size = 24;
    cfg.n_gens = 10;
    cfg.seed_msb = 0x061F;
    cfg.seed_lsb = 0xAAAA;
    cfg.fitness = [](std::uint32_t x) { return fitness::sphere32(x, 0x12345678); };
    DualGaSystem sys(cfg);
    sys.run();

    const bool bank = sys.core_msb().current_bank();
    for (std::uint8_t i = 0; i < cfg.pop_size; ++i) {
        const std::uint32_t cand = sys.memory().candidate32_at(bank, i);
        const std::uint16_t fit = sys.memory().fitness_at(bank, i);
        EXPECT_EQ(fit, fitness::sphere32(cand, 0x12345678)) << "member " << int(i);
    }
}


class DualEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DualEquivalence, RtlPairMatchesDualBehavioralModelBitExactly) {
    // The executable specification of the Fig. 6 composition: the lockstep
    // RTL pair must agree with the dual behavioral model on the best
    // individual, evaluation count, and the entire final population.
    DualGaConfig cfg;
    cfg.pop_size = GetParam() == 0 ? 16 : 13;  // odd size exercises the Mu2 skip
    cfg.n_gens = 6;
    cfg.xover_threshold_msb = 9;
    cfg.xover_threshold_lsb = 7;
    cfg.mut_threshold_msb = 2;
    cfg.mut_threshold_lsb = 3;
    cfg.seed_msb = 0x2961;
    cfg.seed_lsb = 0xAAAA;
    cfg.fitness = GetParam() == 0
                      ? core::FitnessFn32([](std::uint32_t x) { return fitness::onemax32(x); })
                      : core::FitnessFn32([](std::uint32_t x) {
                            return fitness::sphere32(x, 0x13579BDF);
                        });

    DualGaSystem sys(cfg);
    const DualRunResult hw = sys.run();
    const core::DualBehavioralResult sw = core::run_dual_behavioral(cfg);

    EXPECT_EQ(hw.best_candidate, sw.best_candidate);
    EXPECT_EQ(hw.best_fitness, sw.best_fitness);
    EXPECT_EQ(hw.evaluations, sw.evaluations);

    const bool bank = sys.core_msb().current_bank();
    ASSERT_EQ(sw.final_population.size(), cfg.pop_size);
    for (std::uint8_t i = 0; i < cfg.pop_size; ++i) {
        EXPECT_EQ(sys.memory().candidate32_at(bank, i), sw.final_population[i].first)
            << "member " << int(i);
        EXPECT_EQ(sys.memory().fitness_at(bank, i), sw.final_population[i].second)
            << "member " << int(i);
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, DualEquivalence, ::testing::Values(0, 1));

}  // namespace
}  // namespace gaip
