// Golden-trace test of the GA memory bus: every write the core issues
// during a run must match, in order, the sequence derivable from the
// behavioral model — initial population into bank 0, then per generation
// the elite into slot 0 of the alternating bank followed by the offspring
// in slot order.
#include <gtest/gtest.h>

#include "core/behavioral.hpp"
#include "fitness/functions.hpp"
#include "mem/ga_memory.hpp"
#include "system/ga_system.hpp"

namespace gaip::system {
namespace {

using fitness::FitnessId;

/// Passive bus monitor: records every (address, data) the core writes.
class BusSpy final : public rtl::Module {
public:
    struct Write {
        std::uint8_t address;
        std::uint32_t data;
        bool operator==(const Write&) const = default;
    };

    BusSpy(rtl::Wire<std::uint8_t>& addr, rtl::Wire<std::uint32_t>& data, rtl::Wire<bool>& wr)
        : Module("bus_spy"), addr_(addr), data_(data), wr_(wr) {}

    void tick() override {
        if (wr_.read()) writes_.push_back({addr_.read(), data_.read()});
    }
    void reset_state() override { writes_.clear(); }

    const std::vector<Write>& writes() const noexcept { return writes_; }

private:
    rtl::Wire<std::uint8_t>& addr_;
    rtl::Wire<std::uint32_t>& data_;
    rtl::Wire<bool>& wr_;
    std::vector<Write> writes_;
};

TEST(MemoryTrace, WriteSequenceMatchesBehavioralModel) {
    const core::GaParameters params{.pop_size = 12, .n_gens = 5, .xover_threshold = 10,
                                    .mut_threshold = 2, .seed = 0x061F};
    const FitnessId fn = FitnessId::kMBf6_2;

    GaSystemConfig cfg;
    cfg.params = params;
    cfg.internal_fems = {fn};
    GaSystem sys(cfg);
    BusSpy spy(sys.wires().mem_address, sys.wires().mem_data_out, sys.wires().mem_wr);
    sys.kernel().bind(spy, sys.ga_clock());
    sys.run();

    // Expected trace from the behavioral model.
    const core::RunResult sw = core::run_behavioral_ga(
        params, [&](std::uint16_t x) { return fitness::fitness_u16(fn, x); });
    std::vector<BusSpy::Write> expect;
    // Initial population: bank 0, slots 0..P-1 in order.
    for (std::uint8_t i = 0; i < params.pop_size; ++i) {
        const auto& m = sw.history[0].population[i];
        expect.push_back({mem::bank_address(false, i),
                          mem::pack_member(m.candidate, m.fitness)});
    }
    // Each generation: the new bank's slots 0..P-1 in order (slot 0 is the
    // elite write, then the offspring stores).
    for (std::uint32_t g = 1; g < sw.history.size(); ++g) {
        const bool bank = (g % 2) == 1;
        for (std::uint8_t i = 0; i < params.pop_size; ++i) {
            const auto& m = sw.history[g].population[i];
            expect.push_back({mem::bank_address(bank, i),
                              mem::pack_member(m.candidate, m.fitness)});
        }
    }

    ASSERT_EQ(spy.writes().size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(spy.writes()[i], expect[i])
            << "write " << i << ": addr 0x" << std::hex << int(spy.writes()[i].address)
            << " data 0x" << spy.writes()[i].data << " vs expected addr 0x"
            << int(expect[i].address) << " data 0x" << expect[i].data;
    }
}

TEST(MemoryTrace, NoWritesOutsideTheActiveBanks) {
    const core::GaParameters params{.pop_size = 10, .n_gens = 4, .xover_threshold = 12,
                                    .mut_threshold = 1, .seed = 0xAAAA};
    GaSystemConfig cfg;
    cfg.params = params;
    cfg.internal_fems = {FitnessId::kF2};
    GaSystem sys(cfg);
    BusSpy spy(sys.wires().mem_address, sys.wires().mem_data_out, sys.wires().mem_wr);
    sys.kernel().bind(spy, sys.ga_clock());
    sys.run();

    for (const auto& w : spy.writes()) {
        EXPECT_LT(w.address & 0x7F, params.pop_size)
            << "no write beyond the population bound";
    }
}

}  // namespace
}  // namespace gaip::system
