// Differential test of the two kernel schedulers: the event-driven schedule
// and the evaluate-everything sweep (GAIP_KERNEL_FULL_SETTLE) must produce
// identical VCD-visible state trajectories and identical run results on the
// Table V style workloads. Any divergence means a module's sensitivity list
// is missing a wire its eval() reads.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "fitness/functions.hpp"
#include "system/ga_system.hpp"

namespace gaip::system {
namespace {

using fitness::FitnessId;

std::string slurp(const std::string& path) {
    std::ifstream f(path);
    EXPECT_TRUE(f.good()) << path;
    return std::string((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
}

struct Workload {
    const char* name;
    FitnessId fn;
    core::GaParameters params;
};

class SchedulerDifferentialTest : public ::testing::TestWithParam<Workload> {};

TEST_P(SchedulerDifferentialTest, IdenticalVcdTrajectoryAndResults) {
    const Workload& wl = GetParam();

    auto run_mode = [&](bool full_settle, const std::string& vcd_path) {
        GaSystemConfig cfg;
        cfg.params = wl.params;
        cfg.internal_fems = {wl.fn};
        cfg.keep_populations = true;
        cfg.vcd_path = vcd_path;
        GaSystem sys(cfg);
        sys.kernel().set_full_settle(full_settle);
        return sys.run();
    };

    const std::string event_vcd =
        ::testing::TempDir() + "/sched_event_" + wl.name + ".vcd";
    const std::string sweep_vcd =
        ::testing::TempDir() + "/sched_sweep_" + wl.name + ".vcd";
    const core::RunResult event_r = run_mode(false, event_vcd);
    const core::RunResult sweep_r = run_mode(true, sweep_vcd);

    EXPECT_EQ(event_r.best_candidate, sweep_r.best_candidate);
    EXPECT_EQ(event_r.best_fitness, sweep_r.best_fitness);
    EXPECT_EQ(event_r.evaluations, sweep_r.evaluations);
    ASSERT_EQ(event_r.history.size(), sweep_r.history.size());
    for (std::size_t g = 0; g < event_r.history.size(); ++g) {
        SCOPED_TRACE("generation " + std::to_string(g));
        EXPECT_EQ(event_r.history[g].best_fit, sweep_r.history[g].best_fit);
        EXPECT_EQ(event_r.history[g].best_ind, sweep_r.history[g].best_ind);
        EXPECT_EQ(event_r.history[g].fit_sum, sweep_r.history[g].fit_sum);
        EXPECT_EQ(event_r.history[g].population, sweep_r.history[g].population);
    }

    // The VCD dump samples every traced register at every time point, so
    // byte equality is cycle-by-cycle equality of the visible state.
    const std::string event_dump = slurp(event_vcd);
    const std::string sweep_dump = slurp(sweep_vcd);
    EXPECT_FALSE(event_dump.empty());
    EXPECT_EQ(event_dump, sweep_dump)
        << "schedulers diverged somewhere in the cycle-by-cycle trajectory";

    std::filesystem::remove(event_vcd);
    std::filesystem::remove(sweep_vcd);
}

INSTANTIATE_TEST_SUITE_P(
    Table5Workloads, SchedulerDifferentialTest,
    ::testing::Values(
        Workload{"onemax", FitnessId::kOneMax,
                 {.pop_size = 16, .n_gens = 8, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = 0x2961}},
        Workload{"mbf6_2", FitnessId::kMBf6_2,
                 {.pop_size = 32, .n_gens = 4, .xover_threshold = 12, .mut_threshold = 2,
                  .seed = 0x061F}},
        Workload{"shubert_odd_pop", FitnessId::kMShubert2D,
                 {.pop_size = 13, .n_gens = 5, .xover_threshold = 8, .mut_threshold = 4,
                  .seed = 1567}}),
    [](const ::testing::TestParamInfo<Workload>& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace gaip::system
