// Tests of the related-work GA templates (Table I selection schemes,
// steady-state survival GA) and the compact GA.
#include <gtest/gtest.h>

#include <bit>

#include "baselines/compact_ga.hpp"
#include "baselines/pipelined.hpp"
#include "baselines/templates.hpp"
#include "fitness/functions.hpp"

namespace gaip::baselines {
namespace {

using core::GaParameters;
using fitness::FitnessId;

core::FitnessFn fn_of(FitnessId id) {
    return [id](std::uint16_t x) { return fitness::fitness_u16(id, x); };
}

const GaParameters kBase{.pop_size = 32, .n_gens = 32, .xover_threshold = 10,
                         .mut_threshold = 2, .seed = 0x2961};

class TemplateSweep : public ::testing::TestWithParam<SelectionScheme> {};

TEST_P(TemplateSweep, GenerationalTemplateSolvesOneMaxReasonably) {
    TemplateConfig cfg;
    cfg.params = kBase;
    cfg.params.n_gens = 64;
    cfg.selection = GetParam();
    const core::RunResult r = run_template_ga(cfg, fn_of(FitnessId::kOneMax));
    EXPECT_GE(r.best_fitness, 14u * 4095u) << selection_name(GetParam());
    EXPECT_EQ(r.evaluations, 32u + 64u * 31u) << "budget must match the core's";
}

TEST_P(TemplateSweep, SteadyStateVariantRespectsBudgetAndImproves) {
    TemplateConfig cfg;
    cfg.params = kBase;
    cfg.selection = GetParam();
    cfg.steady_state = true;
    const core::RunResult r = run_template_ga(cfg, fn_of(FitnessId::kMBf6_2));
    EXPECT_EQ(r.evaluations, 32u + 32u * 31u);
    ASSERT_GE(r.history.size(), 2u);
    EXPECT_GT(r.best_fitness, r.history.front().best_fit == 0
                                  ? 1u
                                  : r.history.front().best_fit - 1);  // never regresses
    // Survival replacement: population fitness sum can only grow.
    for (std::size_t i = 1; i < r.history.size(); ++i)
        EXPECT_GE(r.history[i].fit_sum, r.history[i - 1].fit_sum) << "epoch " << i;
}

INSTANTIATE_TEST_SUITE_P(Schemes, TemplateSweep,
                         ::testing::Values(SelectionScheme::kProportionate,
                                           SelectionScheme::kRoundRobin,
                                           SelectionScheme::kTournament2));

TEST(Templates, ProportionateDelegatesToBehavioralModel) {
    TemplateConfig cfg;
    cfg.params = kBase;
    cfg.selection = SelectionScheme::kProportionate;
    const core::RunResult a = run_template_ga(cfg, fn_of(FitnessId::kMShubert2D));
    const core::RunResult b = core::run_behavioral_ga(kBase, fn_of(FitnessId::kMShubert2D),
                                                      prng::RngKind::kCellularAutomaton, false);
    EXPECT_EQ(a.best_candidate, b.best_candidate);
    EXPECT_EQ(a.best_fitness, b.best_fitness);
}

TEST(Templates, RoundRobinIgnoresFitnessInSelection) {
    // Round-robin picks parents cyclically; with crossover and mutation off,
    // every initial member therefore survives into the next generation
    // (modulo the elite slot) — selection pressure comes only from elitism.
    TemplateConfig cfg;
    cfg.params = {.pop_size = 8, .n_gens = 1, .xover_threshold = 0, .mut_threshold = 0,
                  .seed = 5};
    cfg.selection = SelectionScheme::kRoundRobin;
    cfg.keep_populations = true;
    const core::RunResult r = run_template_ga(cfg, fn_of(FitnessId::kOneMax));
    const auto& initial = r.history.front().population;
    const auto& next = r.history.back().population;
    // Members 0.. of the initial population appear in order after the elite.
    for (std::size_t i = 1; i < next.size(); ++i) {
        EXPECT_EQ(next[i].candidate, initial[(i - 1) % initial.size()].candidate) << i;
    }
}

TEST(Templates, SelectionNames) {
    EXPECT_STREQ(selection_name(SelectionScheme::kProportionate), "proportionate");
    EXPECT_STREQ(selection_name(SelectionScheme::kRoundRobin), "round-robin");
    EXPECT_STREQ(selection_name(SelectionScheme::kTournament2), "tournament-2");
}

TEST(Templates, NullFitnessRejected) {
    EXPECT_THROW(run_template_ga(TemplateConfig{}, nullptr), std::invalid_argument);
}

// ---------------------------------------------------------------- compact --

TEST(CompactGa, SolvesOneMaxTheOrderOneProblem) {
    CompactGaConfig cfg;
    cfg.evaluation_budget = 20000;
    cfg.seed = 0x061F;
    const CompactGaResult r = run_compact_ga(cfg, fn_of(FitnessId::kOneMax));
    EXPECT_GE(r.best_fitness, 15u * 4095u);
    // The probability vector must have drifted decisively toward ones.
    unsigned high = 0;
    for (const std::uint16_t c : r.probability)
        if (c > cfg.virtual_population / 2) ++high;
    EXPECT_GE(high, 14u);
}

/// Concatenated 4-bit deceptive trap: per nibble, all-ones scores 4 but
/// every other count scores 3 - ones (the gradient points AWAY from the
/// optimum). The canonical problem where per-bit probability models fail —
/// the substance behind the paper's Sec. II-B critique of compact GAs.
std::uint16_t trap4(std::uint16_t c) {
    unsigned total = 0;
    for (unsigned b = 0; b < 4; ++b) {
        const unsigned ones = static_cast<unsigned>(std::popcount((c >> (4 * b)) & 0xFu));
        total += (ones == 4) ? 4 : (3 - ones);
    }
    return static_cast<std::uint16_t>(4095u * total);
}

TEST(CompactGa, StruggleOnDeceptiveTrapMatchesPaperCritique) {
    // Sec. II-B: compact GA convergence is guaranteed only for tightly
    // coded non-overlapping building blocks; the trap's order-4 deception
    // drives its per-bit model toward the all-zeros attractor. Compare at
    // equal evaluation budget, same seeds.
    const std::uint64_t budget = 8000;
    double cga_sum = 0;
    double sga_sum = 0;
    for (const std::uint16_t seed : {0x2961, 0x061F, 0xB342, 0xAAAA, 0xA0A0, 0xFFFF}) {
        CompactGaConfig cga;
        cga.evaluation_budget = budget;
        cga.seed = seed;
        cga_sum += run_compact_ga(cga, trap4).best_fitness;

        TemplateConfig sga;
        sga.params = {.pop_size = 32, .n_gens = static_cast<std::uint32_t>(budget / 31),
                      .xover_threshold = 10, .mut_threshold = 2, .seed = seed};
        sga_sum += run_template_ga(sga, trap4).best_fitness;
    }
    EXPECT_GT(sga_sum, cga_sum)
        << "the simple GA must beat the compact GA on the deceptive trap";
}

TEST(CompactGa, EvaluationBudgetRespected) {
    CompactGaConfig cfg;
    cfg.evaluation_budget = 501;
    const CompactGaResult r = run_compact_ga(cfg, fn_of(FitnessId::kF3));
    EXPECT_LE(r.evaluations, 500u);  // pairs of evaluations
    EXPECT_EQ(r.evaluations % 2, 0u);
}

TEST(CompactGa, ConvergedFlagStopsEarly) {
    CompactGaConfig cfg;
    cfg.virtual_population = 8;  // tiny steps saturate quickly
    cfg.evaluation_budget = 1u << 20;
    const CompactGaResult r = run_compact_ga(cfg, fn_of(FitnessId::kOneMax));
    EXPECT_TRUE(r.converged);
    EXPECT_LT(r.evaluations, cfg.evaluation_budget);
}

TEST(CompactGa, InvalidConfigRejected) {
    CompactGaConfig cfg;
    cfg.virtual_population = 1;
    EXPECT_THROW(run_compact_ga(cfg, fn_of(FitnessId::kOneMax)), std::invalid_argument);
    EXPECT_THROW(run_compact_ga(CompactGaConfig{}, nullptr), std::invalid_argument);
}


// --------------------------------------------------------------- pipeline --

TEST(PipelineTiming, StallFreeFormula) {
    PipelineTiming t;  // depth 6, II 1
    EXPECT_EQ(t.depth(), 6u);
    EXPECT_EQ(t.cycles(0), 0u);
    EXPECT_EQ(t.cycles(1), 6u);
    EXPECT_EQ(t.cycles(100), 6u + 99u);
    PipelineTiming slow{.front_stages = 3, .fitness_stages = 4, .back_stages = 1,
                        .initiation_interval = 2};
    EXPECT_EQ(slow.cycles(10), 8u + 9u * 2u);
}

TEST(PipelinedGa, FunctionalResultMatchesSteadyStateTournament) {
    const GaParameters p{.pop_size = 24, .n_gens = 16, .xover_threshold = 10,
                         .mut_threshold = 2, .seed = 0x2961};
    const auto fn = fn_of(FitnessId::kMBf6_2);
    const PipelinedRunResult pipe = run_pipelined_ga(p, fn);

    TemplateConfig ref;
    ref.params = p;
    ref.selection = SelectionScheme::kTournament2;
    ref.steady_state = true;
    const core::RunResult expect = run_template_ga(ref, fn);
    EXPECT_EQ(pipe.result.best_candidate, expect.best_candidate);
    EXPECT_EQ(pipe.result.best_fitness, expect.best_fitness);
    EXPECT_EQ(pipe.cycles, PipelineTiming{}.cycles(expect.evaluations));
    EXPECT_DOUBLE_EQ(pipe.seconds_at_50mhz, pipe.cycles / 50e6);
}

}  // namespace
}  // namespace gaip::baselines
