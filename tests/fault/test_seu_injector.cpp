// SeuInjector unit tests: fault-site addressing across the whole 405-bit
// scan chain, the classification taxonomy, backend equivalence (scan-chain
// read-modify-write through the pins vs the register-poke backdoor), and
// the PRESET fallback recovery path.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

#include "core/ga_core.hpp"
#include "fault/seu_injector.hpp"
#include "gates/compiled.hpp"
#include "gates/rng_gates.hpp"
#include "system/ga_system.hpp"

namespace gaip::fault {
namespace {

using core::GaCore;

InjectorConfig small_config() {
    InjectorConfig cfg;
    cfg.params = {.pop_size = 8, .n_gens = 4, .xover_threshold = 12, .mut_threshold = 1,
                  .seed = 0x2961};
    return cfg;
}

TEST(FaultModel, ClassifyTaxonomy) {
    GoldenRun golden{.best_fitness = 100, .best_candidate = 7, .generations = 4, .ga_cycles = 50};
    const auto idle = static_cast<std::uint8_t>(GaCore::State::kIdle);
    const auto sel = static_cast<std::uint8_t>(GaCore::State::kSelCheck);
    const auto done = static_cast<std::uint8_t>(GaCore::State::kDone);

    EXPECT_EQ(classify(true, 100, 7, done, golden), FaultOutcome::kMasked);
    EXPECT_EQ(classify(true, 99, 7, done, golden), FaultOutcome::kWrongAnswer);
    EXPECT_EQ(classify(true, 100, 8, done, golden), FaultOutcome::kWrongAnswer);
    EXPECT_EQ(classify(false, 0, 0, sel, golden), FaultOutcome::kHang);
    EXPECT_EQ(classify(false, 0, 0, idle, golden), FaultOutcome::kRecovered);
}

TEST(FaultModel, WatchdogBudgetFormulaAndOverflowGuard) {
    EXPECT_EQ(watchdog_budget(0, 4), 64u);
    EXPECT_EQ(watchdog_budget(1000, 4), 4064u);
    // Largest products that still fit, with and without the +64 slack.
    constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
    EXPECT_EQ(watchdog_budget(kMax - 64, 1), kMax);
    EXPECT_THROW(watchdog_budget(kMax - 63, 1), std::overflow_error);
    // A wrapped product would arm an absurdly SHORT watchdog — must throw.
    EXPECT_THROW(watchdog_budget(kMax / 2, 4), std::overflow_error);
    EXPECT_THROW(watchdog_budget(kMax, kMax), std::overflow_error);
    // The message names the offending values (descriptive, not just a type).
    try {
        watchdog_budget(kMax, 4);
        FAIL() << "expected std::overflow_error";
    } catch (const std::overflow_error& ex) {
        EXPECT_NE(std::string(ex.what()).find("watchdog"), std::string::npos);
    }
}

TEST(FaultModel, ScanSafeStatesAreTheRngWaits) {
    unsigned safe = 0;
    for (unsigned s = 0; s < 64; ++s)
        if (scan_safe_state(static_cast<std::uint8_t>(s))) ++safe;
    EXPECT_EQ(safe, 5u);
    EXPECT_TRUE(scan_safe_state(GaCore::State::kIpRn));
    EXPECT_TRUE(scan_safe_state(GaCore::State::kSelRn));
    EXPECT_TRUE(scan_safe_state(GaCore::State::kXoRn));
    EXPECT_TRUE(scan_safe_state(GaCore::State::kMu1Rn));
    EXPECT_TRUE(scan_safe_state(GaCore::State::kMu2Rn));
    EXPECT_FALSE(scan_safe_state(GaCore::State::kEvalReq));
    EXPECT_FALSE(scan_safe_state(GaCore::State::kIdle));
}

TEST(FaultModel, AggregateByRegisterCountsPerOutcome) {
    std::vector<FaultRecord> recs;
    FaultRecord r;
    r.site = {"a", 0, 0};
    r.outcome = FaultOutcome::kMasked;
    recs.push_back(r);
    r.site = {"a", 3, 0};
    r.outcome = FaultOutcome::kWrongAnswer;
    recs.push_back(r);
    r.site = {"b", 1, 5};
    r.outcome = FaultOutcome::kHang;
    recs.push_back(r);

    const auto vuln = aggregate_by_register(recs);
    ASSERT_EQ(vuln.size(), 2u);
    EXPECT_EQ(vuln[0].reg, "a");
    EXPECT_EQ(vuln[0].width, 4u);
    EXPECT_EQ(vuln[0].injections, 2u);
    EXPECT_EQ(vuln[0].masked, 1u);
    EXPECT_EQ(vuln[0].wrong, 1u);
    EXPECT_DOUBLE_EQ(vuln[0].vulnerability(), 0.5);
    EXPECT_EQ(vuln[1].reg, "b");
    EXPECT_EQ(vuln[1].hang, 1u);
    EXPECT_DOUBLE_EQ(vuln[1].vulnerability(), 1.0);
}

TEST(SeuInjector, LayoutCoversTheFullScanChain) {
    SeuInjector inj(small_config());
    unsigned total = 0;
    for (const auto& [reg, width] : inj.layout()) {
        EXPECT_GT(width, 0u) << reg;
        total += width;
    }
    EXPECT_EQ(total, inj.chain_length());
    EXPECT_EQ(inj.chain_length(), 405u);
    EXPECT_EQ(inj.layout().size(), 33u);
    EXPECT_EQ(inj.layout().front().first, "state");
}

TEST(SeuInjector, GoldenRunIsDeterministic) {
    SeuInjector a(small_config());
    SeuInjector b(small_config());
    EXPECT_EQ(a.golden().best_fitness, b.golden().best_fitness);
    EXPECT_EQ(a.golden().best_candidate, b.golden().best_candidate);
    EXPECT_EQ(a.golden().ga_cycles, b.golden().ga_cycles);
    EXPECT_GT(a.golden().ga_cycles, 0u);
}

TEST(SeuInjector, ScanAndPokeBackendsAreCycleExactEquivalent) {
    SeuInjector inj(small_config());
    // A spread of registers/bits/cycles across the fault space; the scan
    // rotation (405 frozen test-mode cycles) must not perturb anything the
    // poke backend doesn't do.
    const FaultSite sites[] = {
        {"best_fit", 15, 0},
        {"pop_idx", 0, 10},
        {"eff_ngens", 1, 100},
        {"parent1", 7, inj.golden().ga_cycles / 2},
        {"state", 1, 0},
        {"gen_id", 0, 25},
    };
    for (const FaultSite& s : sites) {
        const FaultRecord scan = inj.run_rtl(s, InjectBackend::kScan);
        const FaultRecord poke = inj.run_rtl(s, InjectBackend::kPoke);
        EXPECT_EQ(scan.outcome, poke.outcome) << s.reg << "[" << s.bit << "]@" << s.cycle;
        EXPECT_EQ(scan.inject_cycle, poke.inject_cycle) << s.reg;
        EXPECT_EQ(scan.finished, poke.finished) << s.reg;
        EXPECT_EQ(scan.best_fitness, poke.best_fitness) << s.reg;
        EXPECT_EQ(scan.best_candidate, poke.best_candidate) << s.reg;
        EXPECT_EQ(scan.ga_cycles, poke.ga_cycles) << s.reg;
        EXPECT_EQ(scan.final_state, poke.final_state) << s.reg;
    }
}

TEST(SeuInjector, StateBitFlipToIdleIsRecoveredViaPresetFallback) {
    // Known deterministic recovered site: the first scan-safe cycle is the
    // initial kIpRn (state 4 = 0b000100); flipping state bit 2 lands in
    // kIdle (0), where only a fresh start_GA edge restarts the core — the
    // watchdog trips with the FSM parked in kIdle => kRecovered.
    SeuInjector inj(small_config());
    const FaultSite site{"state", 2, 0};
    const FaultRecord rec = inj.run_rtl(site, InjectBackend::kPoke);
    EXPECT_EQ(rec.outcome, FaultOutcome::kRecovered);
    EXPECT_FALSE(rec.finished);
    EXPECT_EQ(rec.final_state, static_cast<std::uint8_t>(GaCore::State::kIdle));

    // The supervisor recipe must actually work: PRESET pins + re-pulsed
    // start_GA (no reset) lands on the preset mode's exact result.
    FaultRecord observed;
    EXPECT_TRUE(inj.validate_preset_fallback(site, &observed));
    EXPECT_TRUE(observed.finished);
    EXPECT_EQ(observed.best_fitness, inj.preset_baseline().best_fitness);
    EXPECT_EQ(observed.best_candidate, inj.preset_baseline().best_candidate);
}

TEST(SeuInjector, LaneMaskBackendIsRejectedForRtlRuns) {
    SeuInjector inj(small_config());
    EXPECT_THROW(inj.run_rtl({"state", 0, 0}, InjectBackend::kLaneMask), std::invalid_argument);
}

TEST(SeuInjector, RejectsBadConfig) {
    InjectorConfig cfg = small_config();
    cfg.watchdog_factor = 1;
    EXPECT_THROW(SeuInjector{cfg}, std::invalid_argument);
    cfg = small_config();
    cfg.fallback_preset = 0;
    EXPECT_THROW(SeuInjector{cfg}, std::invalid_argument);
}

TEST(CompiledNetlist, XorRegisterLanesFlipsOnlyMaskedLanes) {
    // The SEU injection hook: XOR a per-lane mask into one register bit's
    // state word, leaving every other lane of the word untouched.
    auto src = gates::build_rng_netlist();
    gates::CompiledNetlist nl(src->nl);
    const auto qs = src->nl.register_q_nets();
    ASSERT_FALSE(qs.empty());
    const gates::Net q = qs.front();

    const std::uint64_t before = nl.lanes(q);
    nl.xor_register_lanes(q, 0b1010);
    EXPECT_EQ(nl.lanes(q), before ^ 0b1010u);
    nl.xor_register_lanes(q, 0b1010);
    EXPECT_EQ(nl.lanes(q), before);

    // Non-register nets (inputs, gate outputs) are not valid SEU targets.
    EXPECT_THROW(nl.xor_register_lanes(src->reset, 1), std::invalid_argument);
}

}  // namespace
}  // namespace gaip::fault
