// FaultCampaign tests: fault-space enumeration, the batched 64-lane gate
// backend (with its built-in golden-lane determinism check), and agreement
// between the gate lane-mask backend and both RT-level backends on a
// strided sample of the real fault space.
#include <gtest/gtest.h>

#include <set>

#include "core/ga_core.hpp"
#include "fault/campaign.hpp"

namespace gaip::fault {
namespace {

CampaignConfig small_config() {
    CampaignConfig cfg;
    cfg.params = {.pop_size = 8, .n_gens = 4, .xover_threshold = 12, .mut_threshold = 1,
                  .seed = 0x2961};
    cfg.cycle_points = 5;
    return cfg;
}

TEST(FaultCampaign, EnumerationCoversChainTimesGrid) {
    CampaignConfig cfg = small_config();
    FaultCampaign campaign(cfg);
    const std::vector<FaultSite> sites = campaign.enumerate_sites();
    EXPECT_EQ(sites.size(), 405u * cfg.cycle_points);

    std::set<std::pair<std::string, unsigned>> seen;
    for (const FaultSite& s : sites) {
        seen.insert({s.reg, s.bit});
        EXPECT_LT(s.cycle, campaign.golden().ga_cycles);
    }
    EXPECT_EQ(seen.size(), 405u) << "every flip-flop must appear";
}

TEST(FaultCampaign, StrideAndCapSubsample) {
    CampaignConfig cfg = small_config();
    cfg.stride = 7;
    FaultCampaign strided(cfg);
    const auto sites = strided.enumerate_sites();
    EXPECT_EQ(sites.size(), (405u * cfg.cycle_points + 6) / 7);

    cfg.max_sites = 11;
    FaultCampaign capped(cfg);
    EXPECT_EQ(capped.enumerate_sites().size(), 11u);
}

TEST(FaultCampaign, RejectsBadConfig) {
    CampaignConfig cfg = small_config();
    cfg.cycle_points = 0;
    EXPECT_THROW(FaultCampaign{cfg}, std::invalid_argument);
    cfg = small_config();
    cfg.cycle_span = 1.0;
    EXPECT_THROW(FaultCampaign{cfg}, std::invalid_argument);
    cfg = small_config();
    cfg.stride = 0;
    EXPECT_THROW(FaultCampaign{cfg}, std::invalid_argument);
}

TEST(FaultCampaign, GateBackendAgreesWithBothRtlBackends) {
    // A strided slice of the real fault space through the gate backend,
    // then every record replayed on the RT-level scan and poke backends.
    // The batch's internal golden-lane check already guarantees lane 0
    // reproduced the RT-level golden run bit- and cycle-exactly.
    CampaignConfig cfg = small_config();
    cfg.stride = 97;  // ~21 sites across all registers / grid points
    FaultCampaign campaign(cfg);
    const std::vector<FaultSite> sites = campaign.enumerate_sites();
    ASSERT_GE(sites.size(), 15u);

    const CampaignResult res = campaign.run_gate(sites);
    ASSERT_EQ(res.records.size(), sites.size());
    EXPECT_EQ(res.masked + res.wrong + res.hang + res.recovered, res.records.size());
    EXPECT_GT(res.batches, 0u);
    EXPECT_GT(res.gate_cycles, 0u);

    for (const FaultRecord& gate : res.records) {
        const FaultRecord scan = campaign.run_rtl(gate.site, InjectBackend::kScan);
        const FaultRecord poke = campaign.run_rtl(gate.site, InjectBackend::kPoke);
        const std::string where =
            gate.site.reg + "[" + std::to_string(gate.site.bit) + "]@" +
            std::to_string(gate.site.cycle);
        EXPECT_EQ(gate.outcome, scan.outcome) << where;
        EXPECT_EQ(gate.outcome, poke.outcome) << where;
        EXPECT_EQ(gate.inject_cycle, poke.inject_cycle) << where;
        EXPECT_EQ(gate.best_fitness, poke.best_fitness) << where;
        EXPECT_EQ(gate.best_candidate, poke.best_candidate) << where;
        EXPECT_EQ(gate.ga_cycles, poke.ga_cycles) << where;
    }
}

TEST(FaultCampaign, MaskedFaultsExistAndMatchGolden) {
    // Low-order bits of dead registers late in the run are reliably masked:
    // the record must then carry the golden result exactly.
    CampaignConfig cfg = small_config();
    FaultCampaign campaign(cfg);
    const FaultSite site{"scan_reads", 8, 0};
    const CampaignResult res = campaign.run_gate({site});
    ASSERT_EQ(res.records.size(), 1u);
    const FaultRecord& rec = res.records[0];
    if (rec.outcome == FaultOutcome::kMasked) {
        EXPECT_EQ(rec.best_fitness, campaign.golden().best_fitness);
        EXPECT_EQ(rec.best_candidate, campaign.golden().best_candidate);
    }
}

TEST(FaultCampaign, ProgressCallbackReportsMonotonically) {
    CampaignConfig cfg = small_config();
    cfg.max_sites = 70;  // forces two batches (63 + 7)
    FaultCampaign campaign(cfg);
    const auto sites = campaign.enumerate_sites();
    ASSERT_EQ(sites.size(), 70u);

    std::vector<std::size_t> done;
    campaign.run_gate(sites, [&](std::size_t d, std::size_t total) {
        EXPECT_EQ(total, 70u);
        done.push_back(d);
    });
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], 63u);
    EXPECT_EQ(done[1], 70u);
}

}  // namespace
}  // namespace gaip::fault
