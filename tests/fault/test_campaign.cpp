// FaultCampaign tests: fault-space enumeration, the batched 64-lane gate
// backend (with its built-in golden-lane determinism check), and agreement
// between the gate lane-mask backend and both RT-level backends on a
// strided sample of the real fault space.
#include <gtest/gtest.h>

#include <set>

#include "core/ga_core.hpp"
#include "fault/campaign.hpp"
#include "gates/jit.hpp"

namespace gaip::fault {
namespace {

CampaignConfig small_config() {
    CampaignConfig cfg;
    cfg.params = {.pop_size = 8, .n_gens = 4, .xover_threshold = 12, .mut_threshold = 1,
                  .seed = 0x2961};
    cfg.cycle_points = 5;
    return cfg;
}

TEST(FaultCampaign, EnumerationCoversChainTimesGrid) {
    CampaignConfig cfg = small_config();
    FaultCampaign campaign(cfg);
    const std::vector<FaultSite> sites = campaign.enumerate_sites();
    EXPECT_EQ(sites.size(), 405u * cfg.cycle_points);

    std::set<std::pair<std::string, unsigned>> seen;
    for (const FaultSite& s : sites) {
        seen.insert({s.reg, s.bit});
        EXPECT_LT(s.cycle, campaign.golden().ga_cycles);
    }
    EXPECT_EQ(seen.size(), 405u) << "every flip-flop must appear";
}

TEST(FaultCampaign, StrideAndCapSubsample) {
    CampaignConfig cfg = small_config();
    cfg.stride = 7;
    FaultCampaign strided(cfg);
    const auto sites = strided.enumerate_sites();
    EXPECT_EQ(sites.size(), (405u * cfg.cycle_points + 6) / 7);

    cfg.max_sites = 11;
    FaultCampaign capped(cfg);
    EXPECT_EQ(capped.enumerate_sites().size(), 11u);
}

TEST(FaultCampaign, RejectsBadConfig) {
    CampaignConfig cfg = small_config();
    cfg.cycle_points = 0;
    EXPECT_THROW(FaultCampaign{cfg}, std::invalid_argument);
    cfg = small_config();
    cfg.cycle_span = 1.0;
    EXPECT_THROW(FaultCampaign{cfg}, std::invalid_argument);
    cfg = small_config();
    cfg.stride = 0;
    EXPECT_THROW(FaultCampaign{cfg}, std::invalid_argument);
    cfg = small_config();
    cfg.lane_words = 3;  // only power-of-two block widths exist
    EXPECT_THROW(FaultCampaign{cfg}, std::invalid_argument);
    cfg.lane_words = 16;
    EXPECT_THROW(FaultCampaign{cfg}, std::invalid_argument);
}

TEST(FaultCampaign, GateBackendAgreesWithBothRtlBackends) {
    // A strided slice of the real fault space through the gate backend,
    // then every record replayed on the RT-level scan and poke backends.
    // The batch's internal golden-lane check already guarantees lane 0
    // reproduced the RT-level golden run bit- and cycle-exactly.
    CampaignConfig cfg = small_config();
    cfg.stride = 97;  // ~21 sites across all registers / grid points
    FaultCampaign campaign(cfg);
    const std::vector<FaultSite> sites = campaign.enumerate_sites();
    ASSERT_GE(sites.size(), 15u);

    const CampaignResult res = campaign.run_gate(sites);
    ASSERT_EQ(res.records.size(), sites.size());
    EXPECT_EQ(res.masked + res.wrong + res.hang + res.recovered, res.records.size());
    EXPECT_GT(res.batches, 0u);
    EXPECT_GT(res.gate_cycles, 0u);

    for (const FaultRecord& gate : res.records) {
        const FaultRecord scan = campaign.run_rtl(gate.site, InjectBackend::kScan);
        const FaultRecord poke = campaign.run_rtl(gate.site, InjectBackend::kPoke);
        const std::string where =
            gate.site.reg + "[" + std::to_string(gate.site.bit) + "]@" +
            std::to_string(gate.site.cycle);
        EXPECT_EQ(gate.outcome, scan.outcome) << where;
        EXPECT_EQ(gate.outcome, poke.outcome) << where;
        EXPECT_EQ(gate.inject_cycle, poke.inject_cycle) << where;
        EXPECT_EQ(gate.best_fitness, poke.best_fitness) << where;
        EXPECT_EQ(gate.best_candidate, poke.best_candidate) << where;
        EXPECT_EQ(gate.ga_cycles, poke.ga_cycles) << where;
    }
}

TEST(FaultCampaign, MaskedFaultsExistAndMatchGolden) {
    // Low-order bits of dead registers late in the run are reliably masked:
    // the record must then carry the golden result exactly.
    CampaignConfig cfg = small_config();
    FaultCampaign campaign(cfg);
    const FaultSite site{"scan_reads", 8, 0};
    const CampaignResult res = campaign.run_gate({site});
    ASSERT_EQ(res.records.size(), 1u);
    const FaultRecord& rec = res.records[0];
    if (rec.outcome == FaultOutcome::kMasked) {
        EXPECT_EQ(rec.best_fitness, campaign.golden().best_fitness);
        EXPECT_EQ(rec.best_candidate, campaign.golden().best_candidate);
    }
}

TEST(FaultCampaign, ProgressCallbackReportsMonotonically) {
    CampaignConfig cfg = small_config();
    cfg.max_sites = 70;  // forces two batches (63 + 7)
    FaultCampaign campaign(cfg);
    const auto sites = campaign.enumerate_sites();
    ASSERT_EQ(sites.size(), 70u);

    std::vector<std::size_t> done;
    campaign.run_gate(sites, [&](std::size_t d, std::size_t total) {
        EXPECT_EQ(total, 70u);
        done.push_back(d);
    });
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], 63u);
    EXPECT_EQ(done[1], 70u);
}

TEST(FaultCampaign, WideBlocksAndThreadsReproduceDefaultRecords) {
    // The campaign's record stream (site order, inject cycles, outcomes,
    // per-record results) and aggregate counters must be bit-identical at
    // every lane-block width and thread count: batches are independent
    // simulations and lane position within a batch is semantically inert.
    CampaignConfig cfg = small_config();
    cfg.max_sites = 150;  // > 2 single-word batches, spans word boundaries
    FaultCampaign baseline(cfg);
    const auto sites = baseline.enumerate_sites();
    ASSERT_EQ(sites.size(), 150u);
    const CampaignResult ref = baseline.run_gate(sites);
    ASSERT_EQ(ref.records.size(), sites.size());

    struct Variant {
        unsigned words;
        unsigned threads;
    };
    for (const Variant v : {Variant{8, 1}, Variant{2, 2}, Variant{1, 0}}) {
        SCOPED_TRACE("lane_words=" + std::to_string(v.words) +
                     " threads=" + std::to_string(v.threads));
        CampaignConfig wide = cfg;
        wide.lane_words = v.words;
        wide.threads = v.threads;
        FaultCampaign campaign(wide);
        std::size_t last_done = 0;
        const CampaignResult res =
            campaign.run_gate(sites, [&](std::size_t d, std::size_t total) {
                EXPECT_EQ(total, sites.size());
                EXPECT_GT(d, last_done) << "progress must be monotone";
                last_done = d;
            });
        EXPECT_EQ(last_done, sites.size());
        EXPECT_EQ(res.masked, ref.masked);
        EXPECT_EQ(res.wrong, ref.wrong);
        EXPECT_EQ(res.hang, ref.hang);
        EXPECT_EQ(res.recovered, ref.recovered);
        EXPECT_EQ(res.gate_cycles > 0, true);
        ASSERT_EQ(res.records.size(), ref.records.size());
        for (std::size_t i = 0; i < ref.records.size(); ++i) {
            const FaultRecord& a = ref.records[i];
            const FaultRecord& b = res.records[i];
            ASSERT_EQ(a.site.reg, b.site.reg);
            ASSERT_EQ(a.site.bit, b.site.bit);
            ASSERT_EQ(a.site.cycle, b.site.cycle);
            EXPECT_EQ(a.inject_cycle, b.inject_cycle);
            EXPECT_EQ(a.outcome, b.outcome);
            EXPECT_EQ(a.finished, b.finished);
            EXPECT_EQ(a.best_fitness, b.best_fitness);
            EXPECT_EQ(a.best_candidate, b.best_candidate);
            EXPECT_EQ(a.ga_cycles, b.ga_cycles);
            EXPECT_EQ(a.final_state, b.final_state);
        }
    }
}

TEST(FaultCampaign, JitBackendReproducesInterpRecords) {
    // The native-codegen backend must be a pure engine swap: the record
    // stream (inject cycles, outcomes, per-record results) and the
    // aggregate taxonomy are bit-identical to the interpreter at every
    // width/thread combination, including threaded runs where concurrent
    // workers block on one shared artifact compile (jit.cpp registry).
    if (!gates::jit::available())
        GTEST_SKIP() << "no host compiler for the JIT backend";
    CampaignConfig cfg = small_config();
    cfg.max_sites = 150;
    cfg.backend = gates::Backend::kInterp;
    FaultCampaign baseline(cfg);
    const auto sites = baseline.enumerate_sites();
    const CampaignResult ref = baseline.run_gate(sites);
    ASSERT_EQ(ref.records.size(), sites.size());

    struct Variant {
        unsigned words;
        unsigned threads;
    };
    for (const Variant v : {Variant{1, 1}, Variant{4, 2}, Variant{8, 0}}) {
        SCOPED_TRACE("jit lane_words=" + std::to_string(v.words) +
                     " threads=" + std::to_string(v.threads));
        CampaignConfig jcfg = cfg;
        jcfg.lane_words = v.words;
        jcfg.threads = v.threads;
        jcfg.backend = gates::Backend::kJitForce;  // fallback would hide a break
        FaultCampaign campaign(jcfg);
        const CampaignResult res = campaign.run_gate(sites);
        EXPECT_EQ(res.masked, ref.masked);
        EXPECT_EQ(res.wrong, ref.wrong);
        EXPECT_EQ(res.hang, ref.hang);
        EXPECT_EQ(res.recovered, ref.recovered);
        ASSERT_EQ(res.records.size(), ref.records.size());
        for (std::size_t i = 0; i < ref.records.size(); ++i) {
            const FaultRecord& a = ref.records[i];
            const FaultRecord& b = res.records[i];
            ASSERT_EQ(a.site.reg, b.site.reg);
            ASSERT_EQ(a.site.bit, b.site.bit);
            ASSERT_EQ(a.site.cycle, b.site.cycle);
            EXPECT_EQ(a.inject_cycle, b.inject_cycle);
            EXPECT_EQ(a.outcome, b.outcome);
            EXPECT_EQ(a.finished, b.finished);
            EXPECT_EQ(a.best_fitness, b.best_fitness);
            EXPECT_EQ(a.best_candidate, b.best_candidate);
            EXPECT_EQ(a.ga_cycles, b.ga_cycles);
            EXPECT_EQ(a.final_state, b.final_state);
        }
    }
}

}  // namespace
}  // namespace gaip::fault
