// RTL unit tests of the GA core itself: initialization handshake, preset
// modes, scan-chain testability, restart, and the Table II port contract.
#include <gtest/gtest.h>

#include "core/ga_core.hpp"
#include "fitness/functions.hpp"
#include "rtl/kernel.hpp"
#include "system/ga_system.hpp"
#include "system/wires.hpp"

namespace gaip::core {
namespace {

/// Bare-core bench: core only, inputs driven by the test (no init module,
/// no FEM — the test plays those roles on the wires).
struct CoreBench {
    rtl::Kernel kernel;
    rtl::Clock& clk = kernel.add_clock("clk", 50'000'000);
    system::CoreWireBundle w;
    GaCore core{"ga_core", w.core_ports()};

    CoreBench() {
        kernel.bind(core, clk);
        kernel.reset();
    }
    void cycle(unsigned n = 1) { kernel.run_cycles(clk, n); }

    void write_param(std::uint8_t idx, std::uint16_t val) {
        w.ga_load.drive(true);
        w.index.drive(idx);
        w.value.drive(val);
        w.data_valid.drive(true);
        for (int i = 0; i < 10 && !w.data_ack.read(); ++i) cycle();
        EXPECT_TRUE(w.data_ack.read()) << "no data_ack for index " << int(idx);
        w.data_valid.drive(false);
        for (int i = 0; i < 10 && w.data_ack.read(); ++i) cycle();
        EXPECT_FALSE(w.data_ack.read());
    }
};

TEST(GaCoreInit, HandshakeWritesEachParameterRegister) {
    CoreBench b;
    b.write_param(0, 0x5678);  // n_gens low
    b.write_param(1, 0x0001);  // n_gens high
    b.write_param(2, 100);     // pop size
    b.write_param(3, 9);       // crossover threshold
    b.write_param(4, 3);       // mutation threshold
    b.w.ga_load.drive(false);
    b.cycle(2);

    const GaParameters p = b.core.programmed_parameters();
    EXPECT_EQ(p.n_gens, 0x00015678u);
    EXPECT_EQ(p.pop_size, 100);
    EXPECT_EQ(p.xover_threshold, 9);
    EXPECT_EQ(p.mut_threshold, 3);
    EXPECT_EQ(b.core.state(), GaCore::State::kIdle);
}

TEST(GaCoreInit, ThresholdWritesMaskToFourBits) {
    CoreBench b;
    b.write_param(3, 0xFFFF);
    b.w.ga_load.drive(false);
    b.cycle(2);
    EXPECT_EQ(b.core.programmed_parameters().xover_threshold, 0xF);
}

TEST(GaCoreInit, ReinitializationOverwrites) {
    CoreBench b;
    b.write_param(2, 32);
    b.write_param(2, 64);
    b.w.ga_load.drive(false);
    b.cycle(2);
    EXPECT_EQ(b.core.programmed_parameters().pop_size, 64);
}

TEST(GaCoreInit, DataAckFollowsFourPhaseProtocol) {
    CoreBench b;
    b.w.ga_load.drive(true);
    b.cycle(2);
    EXPECT_FALSE(b.w.data_ack.read()) << "no ack without data_valid";
    b.w.index.drive(2);
    b.w.value.drive(48);
    b.w.data_valid.drive(true);
    b.cycle(2);
    EXPECT_TRUE(b.w.data_ack.read());
    b.cycle(3);
    EXPECT_TRUE(b.w.data_ack.read()) << "ack held while data_valid held";
    b.w.data_valid.drive(false);
    b.cycle(2);
    EXPECT_FALSE(b.w.data_ack.read());
    b.w.ga_load.drive(false);
    b.cycle(2);
    EXPECT_EQ(b.core.state(), GaCore::State::kIdle);
}

TEST(GaCoreStart, PresetModeRunsWithoutAnyInitialization) {
    // Fault-tolerance scenario (Sec. III-C.1a): parameter initialization
    // failed entirely; preset mode 01 must still run the GA.
    system::GaSystemConfig cfg;
    cfg.skip_initialization = true;
    cfg.preset = 1;  // pop 32, 512 generations, thresholds 12/1, seed 0x2961
    cfg.params.n_gens = 0;  // deliberately absurd user values
    cfg.params.pop_size = 0;
    cfg.internal_fems = {fitness::FitnessId::kOneMax};
    cfg.keep_populations = false;
    system::GaSystem sys(cfg);
    const RunResult r = sys.run();
    EXPECT_EQ(r.history.size(), 513u);  // preset generation count honored
    EXPECT_EQ(r.best_candidate, 0xFFFF) << "512 preset generations should solve OneMax";
}

TEST(GaCoreStart, EffectiveParametersResolvePresetPins) {
    system::GaSystemConfig cfg;
    cfg.preset = 2;
    cfg.internal_fems = {fitness::FitnessId::kF2};
    cfg.params = {.pop_size = 8, .n_gens = 2, .xover_threshold = 1, .mut_threshold = 1,
                  .seed = 42};
    cfg.keep_populations = false;
    system::GaSystem sys(cfg);
    sys.run();
    const GaParameters eff = sys.core().effective_parameters();
    EXPECT_EQ(eff.pop_size, 64);
    EXPECT_EQ(eff.n_gens, 1024u);
    EXPECT_EQ(eff.xover_threshold, 13);
    EXPECT_EQ(eff.mut_threshold, 2);
}

TEST(GaCoreDone, CandidateBusCarriesBestIndividual) {
    system::GaSystemConfig cfg;
    cfg.params = {.pop_size = 16, .n_gens = 8, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = 0x2961};
    cfg.internal_fems = {fitness::FitnessId::kF3};
    system::GaSystem sys(cfg);
    const RunResult r = sys.run();
    EXPECT_TRUE(sys.wires().ga_done.read());
    EXPECT_EQ(sys.wires().candidate.read(), r.best_candidate);
    EXPECT_EQ(sys.app_module().result(), r.best_candidate);
}

TEST(GaCoreRestart, SecondStartReRunsFromDone) {
    system::GaSystemConfig cfg;
    cfg.params = {.pop_size = 8, .n_gens = 3, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = 0xB342};
    cfg.internal_fems = {fitness::FitnessId::kOneMax};
    system::GaSystem sys(cfg);
    const RunResult first = sys.run();

    // Ask the application module to pulse start_GA again; the core must
    // leave kDone, rerun, and — the seed register reloads on start — land
    // on the identical result.
    sys.app_module().request_restart();
    EXPECT_TRUE(sys.kernel().run_until(
        sys.app_clock(), [&] { return !sys.wires().ga_done.read(); }, 100'000))
        << "GA_done must drop when the rerun begins";
    EXPECT_TRUE(sys.kernel().run_until(
        sys.app_clock(), [&] { return sys.wires().ga_done.read(); }, 10'000'000))
        << "rerun must complete";
    EXPECT_EQ(sys.core().best_candidate(), first.best_candidate);
    EXPECT_EQ(sys.core().best_fitness(), first.best_fitness);
}

TEST(GaCoreScan, ChainCoversEveryRegisterBit) {
    CoreBench b;
    unsigned bits = 0;
    for (const rtl::RegBase* r : b.core.registers()) bits += r->width();
    EXPECT_EQ(b.core.scan_chain().length(), bits);
    EXPECT_GT(bits, 300u) << "the datapath registers alone exceed 300 bits";
}

TEST(GaCoreScan, TestModeShiftsStateThroughScanout) {
    CoreBench b;
    // Give some registers known values via the init handshake.
    b.write_param(0, 0xA5A5);
    b.w.ga_load.drive(false);
    b.cycle(2);

    // Capture the chain via scanout while shifting zeros in.
    const std::vector<bool> before = b.core.scan_chain().snapshot();
    b.w.test.drive(true);
    b.w.scanin.drive(false);
    std::vector<bool> drained;
    const unsigned len = b.core.scan_chain().length();
    for (unsigned i = 0; i < len; ++i) {
        drained.push_back(b.w.scanout.read());
        b.cycle();
    }
    b.w.test.drive(false);

    // scanout presents the tail; shifting drains the chain tail-bit first,
    // i.e. the reverse of the head-first snapshot.
    std::vector<bool> expected(before.rbegin(), before.rend());
    EXPECT_EQ(drained, expected);
}

TEST(GaCoreScan, PatternLoadedThroughScaninReappears) {
    CoreBench b;
    const unsigned len = b.core.scan_chain().length();
    b.w.test.drive(true);
    // Shift in an alternating pattern...
    for (unsigned i = 0; i < len; ++i) {
        b.w.scanin.drive(i % 2 == 0);
        b.cycle();
    }
    // ...then drain it back out and compare (classic scan loopback test).
    std::vector<bool> out;
    for (unsigned i = 0; i < len; ++i) {
        out.push_back(b.w.scanout.read());
        b.w.scanin.drive(false);
        b.cycle();
    }
    b.w.test.drive(false);
    for (unsigned i = 0; i < len; ++i) {
        // First bit shifted in is the first to arrive at the tail.
        EXPECT_EQ(out[i], i % 2 == 0) << "position " << i;
    }
}

TEST(GaCoreScan, NormalOperationFrozenDuringTest) {
    CoreBench b;
    b.w.test.drive(true);
    b.w.start_ga.drive(true);
    b.cycle(5);
    EXPECT_EQ(b.core.state(), GaCore::State::kIdle)
        << "the controller must not launch while in scan mode";
    b.w.test.drive(false);
    b.w.start_ga.drive(false);
}

}  // namespace
}  // namespace gaip::core
