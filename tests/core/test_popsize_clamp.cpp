// Regression for the kPopSize init-handshake truncation bug: the 16-bit
// value bus must be clamped to Table IV's [2, 128] range BEFORE narrowing
// into the 8-bit population register. Programming 256 used to wrap to 0 and
// come out as the minimum of 2 instead of the maximum of 128.
#include <gtest/gtest.h>

#include "core/ga_core.hpp"
#include "core/params.hpp"
#include "rtl/kernel.hpp"
#include "system/wires.hpp"

namespace gaip::core {
namespace {

struct HandshakeRig {
    rtl::Kernel kernel;
    rtl::Clock& clk = kernel.add_clock("clk", 50'000'000);
    system::CoreWireBundle w;
    GaCore core{"ga_core", w.core_ports()};

    HandshakeRig() {
        kernel.bind(core, clk);
        kernel.reset();
    }

    void cycle(unsigned n = 1) { kernel.run_cycles(clk, n); }

    /// One full two-way data_valid/data_ack handshake write.
    void write(ParamIndex index, std::uint16_t value) {
        w.ga_load.drive(true);
        w.index.drive(static_cast<std::uint8_t>(index));
        w.value.drive(value);
        w.data_valid.drive(true);
        for (int i = 0; i < 10 && !w.data_ack.read(); ++i) cycle();
        ASSERT_TRUE(w.data_ack.read()) << "handshake did not ack";
        w.data_valid.drive(false);
        cycle(2);
        w.ga_load.drive(false);
        cycle(1);
        ASSERT_EQ(core.state(), GaCore::State::kIdle);
    }
};

TEST(PopSizeClamp, HandshakeClampsFull16BitValueBeforeNarrowing) {
    const struct {
        std::uint16_t programmed;
        std::uint8_t effective;
    } cases[] = {
        {0, 2},      // below minimum
        {1, 2},      // below minimum
        {2, 2},      // minimum passes through
        {128, 128},  // maximum passes through
        {129, 128},  // above maximum
        {255, 128},  // above maximum, still in 8 bits
        {256, 128},  // the regression: must clamp, not wrap to 0 -> 2
    };
    for (const auto& c : cases) {
        SCOPED_TRACE("pop_size " + std::to_string(c.programmed));
        HandshakeRig rig;
        rig.write(ParamIndex::kPopSize, c.programmed);
        EXPECT_EQ(rig.core.programmed_parameters().pop_size, c.effective)
            << "clamp must happen at the handshake latch";

        // Start the optimizer and confirm the latched effective parameters.
        rig.w.start_ga.drive(true);
        rig.cycle(1);
        rig.w.start_ga.drive(false);
        rig.cycle(2);  // kIdle -> kStart -> effective registers latched
        EXPECT_EQ(rig.core.effective_parameters().pop_size, c.effective);
    }
}

TEST(PopSizeClamp, ClampHelperCoversTheFullBus) {
    EXPECT_EQ(clamp_pop_size(0), kMinPopSize);
    EXPECT_EQ(clamp_pop_size(1), kMinPopSize);
    EXPECT_EQ(clamp_pop_size(2), 2);
    EXPECT_EQ(clamp_pop_size(127), 127);
    EXPECT_EQ(clamp_pop_size(128), kMaxPopSize);
    EXPECT_EQ(clamp_pop_size(129), kMaxPopSize);
    EXPECT_EQ(clamp_pop_size(0xFFFF), kMaxPopSize);
}

}  // namespace
}  // namespace gaip::core
