// Protocol robustness: hostile/degenerate stimulus on the core's
// interfaces. The core must never hang or corrupt state in the face of
// glitchy handshakes, spurious starts, or odd initialization orders.
#include <gtest/gtest.h>

#include "core/ga_core.hpp"
#include "fitness/functions.hpp"
#include "rtl/kernel.hpp"
#include "system/ga_system.hpp"
#include "system/wires.hpp"

namespace gaip::core {
namespace {

using fitness::FitnessId;

struct BareCore {
    rtl::Kernel kernel;
    rtl::Clock& clk = kernel.add_clock("clk", 50'000'000);
    system::CoreWireBundle w;
    GaCore core{"ga_core", w.core_ports()};

    BareCore() {
        kernel.bind(core, clk);
        kernel.reset();
    }
    void cycle(unsigned n = 1) { kernel.run_cycles(clk, n); }
};

TEST(ProtocolRobustness, DataValidWithoutGaLoadIsIgnored) {
    BareCore b;
    b.w.index.drive(2);
    b.w.value.drive(99);
    b.w.data_valid.drive(true);
    b.cycle(5);
    EXPECT_EQ(b.core.state(), GaCore::State::kIdle);
    EXPECT_FALSE(b.w.data_ack.read());
    EXPECT_EQ(b.core.programmed_parameters().pop_size, 32) << "reset default untouched";
    b.w.data_valid.drive(false);
}

TEST(ProtocolRobustness, GaLoadDroppedMidHandshakeRecovers) {
    BareCore b;
    b.w.ga_load.drive(true);
    b.w.index.drive(2);
    b.w.value.drive(77);
    b.w.data_valid.drive(true);
    b.cycle(2);  // core latched and acked
    EXPECT_TRUE(b.w.data_ack.read());
    // User yanks ga_load while data_valid still high.
    b.w.ga_load.drive(false);
    b.cycle(1);
    b.w.data_valid.drive(false);
    b.cycle(3);
    EXPECT_EQ(b.core.state(), GaCore::State::kIdle);
    EXPECT_EQ(b.core.programmed_parameters().pop_size, 77) << "the latched write persists";
}

TEST(ProtocolRobustness, OutOfRangeIndexWritesNothing) {
    BareCore b;
    const GaParameters before = b.core.programmed_parameters();
    for (const std::uint8_t idx : {6, 7}) {  // unassigned Table III indices
        b.w.ga_load.drive(true);
        b.w.index.drive(idx);
        b.w.value.drive(0xDEAD);
        b.w.data_valid.drive(true);
        for (int i = 0; i < 10 && !b.w.data_ack.read(); ++i) b.cycle();
        EXPECT_TRUE(b.w.data_ack.read()) << "handshake still completes for index " << int(idx);
        b.w.data_valid.drive(false);
        b.cycle(2);
        b.w.ga_load.drive(false);
        b.cycle(1);
    }
    EXPECT_EQ(b.core.programmed_parameters(), before);
}

TEST(ProtocolRobustness, SpuriousStartPulsesMidRunAreIgnored) {
    // start_GA re-pulsed while the core is mid-optimization must not
    // restart or corrupt the run (edge detection only arms in Idle/Done).
    system::GaSystemConfig cfg;
    cfg.params = {.pop_size = 16, .n_gens = 6, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = 0x2961};
    cfg.internal_fems = {FitnessId::kOneMax};
    system::GaSystem ref(cfg);
    const RunResult expect = ref.run();

    system::GaSystem sys(cfg);
    auto& k = sys.kernel();
    k.reset();
    ASSERT_TRUE(k.run_until(
        sys.app_clock(), [&] { return sys.core().generation() >= 2; }, 10'000'000));
    // Manually glitch start_GA (the app module has already released it).
    sys.wires().start_ga.drive(true);
    k.run_cycles(sys.ga_clock(), 3);
    sys.wires().start_ga.drive(false);
    ASSERT_TRUE(k.run_until(
        sys.app_clock(), [&] { return sys.wires().ga_done.read(); }, 100'000'000));
    EXPECT_EQ(sys.core().best_candidate(), expect.best_candidate)
        << "a spurious start pulse mid-run must be inert";
    EXPECT_EQ(sys.core().best_fitness(), expect.best_fitness);
}

TEST(ProtocolRobustness, GlitchedDataValidDoubleWriteIsIdempotent) {
    BareCore b;
    // data_valid bounces: high, low before ack seen by the user, high again
    // with the same payload. The core may latch twice; the result is the
    // same register value.
    b.w.ga_load.drive(true);
    b.w.index.drive(3);
    b.w.value.drive(9);
    b.w.data_valid.drive(true);
    b.cycle(1);
    b.w.data_valid.drive(false);
    b.cycle(1);
    b.w.data_valid.drive(true);
    for (int i = 0; i < 10 && !b.w.data_ack.read(); ++i) b.cycle();
    b.w.data_valid.drive(false);
    b.cycle(2);
    b.w.ga_load.drive(false);
    b.cycle(1);
    EXPECT_EQ(b.core.programmed_parameters().xover_threshold, 9);
    EXPECT_EQ(b.core.state(), GaCore::State::kIdle);
}

TEST(ProtocolRobustness, FitValidStuckHighStallsCleanlyThenRecovers) {
    // A broken FEM holding fit_valid high while the core is between
    // requests: the core waits in kEvalDrop until valid drops, then
    // continues — no state corruption.
    BareCore b;
    b.w.start_ga.drive(true);
    b.cycle(2);
    b.w.start_ga.drive(false);
    // Reach the evaluation request for the first individual.
    for (int i = 0; i < 50 && b.core.state() != GaCore::State::kEvalReq; ++i) b.cycle();
    ASSERT_EQ(b.core.state(), GaCore::State::kEvalReq);
    // Respond, but leave fit_valid stuck high.
    b.w.fit_value.drive(1234);
    b.w.fit_valid.drive(true);
    b.cycle(2);
    EXPECT_EQ(b.core.state(), GaCore::State::kEvalDrop);
    b.cycle(20);
    EXPECT_EQ(b.core.state(), GaCore::State::kEvalDrop) << "must wait, not bypass";
    b.w.fit_valid.drive(false);
    b.cycle(2);
    EXPECT_NE(b.core.state(), GaCore::State::kEvalDrop) << "must proceed once released";
}

TEST(ProtocolRobustness, FitfuncSelectChangeBetweenRunsHonored) {
    // fitfunc_select may legally change between runs; the rerun must use
    // the newly selected FEM.
    system::GaSystemConfig cfg;
    cfg.params = {.pop_size = 8, .n_gens = 3, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = 0xB342};
    cfg.internal_fems = {FitnessId::kF3, FitnessId::kOneMax};
    cfg.fitfunc_select = 0;
    system::GaSystem sys(cfg);
    const RunResult first = sys.run();
    EXPECT_EQ(first.best_fitness, fitness::fitness_u16(FitnessId::kF3, first.best_candidate));

    sys.wires().fitfunc_select.drive(1);
    sys.app_module().request_restart();
    ASSERT_TRUE(sys.kernel().run_until(
        sys.app_clock(), [&] { return !sys.wires().ga_done.read(); }, 1'000'000));
    ASSERT_TRUE(sys.kernel().run_until(
        sys.app_clock(), [&] { return sys.wires().ga_done.read(); }, 100'000'000));
    EXPECT_EQ(sys.core().best_fitness(),
              fitness::fitness_u16(FitnessId::kOneMax, sys.core().best_candidate()));
}

}  // namespace
}  // namespace gaip::core
