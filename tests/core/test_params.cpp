#include <gtest/gtest.h>

#include "core/params.hpp"

namespace gaip::core {
namespace {

TEST(PresetParameters, MatchTableIV) {
    const GaParameters m1 = preset_parameters(1);
    EXPECT_EQ(m1.pop_size, 32);
    EXPECT_EQ(m1.n_gens, 512u);
    EXPECT_EQ(m1.xover_threshold, 12);
    EXPECT_EQ(m1.mut_threshold, 1);

    const GaParameters m2 = preset_parameters(2);
    EXPECT_EQ(m2.pop_size, 64);
    EXPECT_EQ(m2.n_gens, 1024u);
    EXPECT_EQ(m2.xover_threshold, 13);
    EXPECT_EQ(m2.mut_threshold, 2);

    const GaParameters m3 = preset_parameters(3);
    EXPECT_EQ(m3.pop_size, 128);
    EXPECT_EQ(m3.n_gens, 4096u);
    EXPECT_EQ(m3.xover_threshold, 14);
    EXPECT_EQ(m3.mut_threshold, 3);
}

TEST(ResolveParameters, Mode00UsesUserValues) {
    const GaParameters user{.pop_size = 50, .n_gens = 77, .xover_threshold = 9,
                            .mut_threshold = 4, .seed = 123};
    EXPECT_EQ(resolve_parameters(0, user), user);
}

TEST(ResolveParameters, PresetModesIgnoreUserValues) {
    const GaParameters user{.pop_size = 50, .n_gens = 77, .xover_threshold = 9,
                            .mut_threshold = 4, .seed = 123};
    for (std::uint8_t mode = 1; mode <= 3; ++mode) {
        EXPECT_EQ(resolve_parameters(mode, user), preset_parameters(mode)) << int(mode);
    }
}

TEST(ResolveParameters, ClampsPopulationToBankCapacity) {
    GaParameters user;
    user.pop_size = 200;  // Table IV says < 256, but double-banking caps at 128
    EXPECT_EQ(resolve_parameters(0, user).pop_size, kMaxPopSize);
    user.pop_size = 1;
    EXPECT_EQ(resolve_parameters(0, user).pop_size, kMinPopSize);
    user.pop_size = 0;
    EXPECT_EQ(resolve_parameters(0, user).pop_size, kMinPopSize);
}

TEST(ResolveParameters, MasksThresholdsToFourBits) {
    GaParameters user;
    user.xover_threshold = 0xFF;
    user.mut_threshold = 0x1F;
    const GaParameters r = resolve_parameters(0, user);
    EXPECT_EQ(r.xover_threshold, 0xF);
    EXPECT_EQ(r.mut_threshold, 0xF);
}

TEST(ResolveParameters, SeedZeroRemapped) {
    GaParameters user;
    user.seed = 0;
    EXPECT_EQ(resolve_parameters(0, user).seed, 1u);
}

TEST(ResolveParameters, PresetBitsAboveTwoIgnored) {
    GaParameters user;
    EXPECT_EQ(resolve_parameters(0x4, user).pop_size, resolve_parameters(0, user).pop_size);
    EXPECT_EQ(resolve_parameters(0x5, user), preset_parameters(1));
}

}  // namespace
}  // namespace gaip::core
