// Fuzz/property test of the two-way initialization handshake (Sec. III-B.6,
// Table III): randomized malformed init sequences — dropped data_valid
// before the ack, repeated words, out-of-range parameter indices, ga_load
// yanked mid-transfer — must always leave the core in a recoverable state:
//
//   (1) bounded drain: once the testbench releases the pins the FSM must be
//       back in kIdle within a fixed number of cycles (clean error, never a
//       hang — this is the cycle-watchdog property);
//   (2) full recovery: a subsequent CLEAN program + start must run to
//       GA_done with a self-consistent result, regardless of the garbage
//       the fuzz wrote into the parameter registers;
//   (3) PRESET fallback: alternatively the supervisor can ignore the
//       programmed state entirely — preset pins + start must reproduce the
//       preset mode's exact behavioral-model result.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/behavioral.hpp"
#include "core/ga_core.hpp"
#include "fitness/fem.hpp"
#include "fitness/fem_mux.hpp"
#include "fitness/functions.hpp"
#include "fitness/rom_builder.hpp"
#include "mem/ga_memory.hpp"
#include "prng/rng_module.hpp"
#include "rtl/kernel.hpp"
#include "system/wires.hpp"

namespace gaip::core {
namespace {

using fitness::FitnessId;

/// Deterministic fuzz source (never libc rand: results must reproduce).
struct Lcg {
    std::uint32_t s;
    explicit Lcg(std::uint32_t seed) : s(seed) {}
    std::uint32_t next() { return s = s * 1664525u + 1013904223u; }
    std::uint32_t below(std::uint32_t n) { return (next() >> 8) % n; }
    bool chance(unsigned pct) { return below(100) < pct; }
};

/// Core + RNG + memory + one FEM on a single clock, with the init/start/
/// preset pins driven directly by the test (no Init/App modules, so
/// external pokes are authoritative).
struct FuzzRig {
    rtl::Kernel kernel;
    rtl::Clock& clk = kernel.add_clock("clk", 50'000'000);
    system::CoreWireBundle w;
    GaCore core{"ga_core", w.core_ports()};
    prng::RngModule rng{w.rng_ports()};
    mem::GaMemory memory{w.memory_ports()};
    fitness::FemMux mux{w.mux_ports()};
    fitness::RomFitnessModule fem;

    FuzzRig()
        : fem("fem_onemax", w.slot_fem_ports(0), fitness::fitness_rom(FitnessId::kOneMax)) {
        mux.set_slot(0, fitness::FemMuxSlot{&w.slots[0].request, &w.slots[0].value,
                                            &w.slots[0].valid});
        kernel.bind(core, clk);
        kernel.bind(rng, clk);
        kernel.bind(memory, clk);
        kernel.bind(fem, clk);
        kernel.add_combinational(mux);
        kernel.reset();
        w.preset.drive(0);
        w.fitfunc_select.drive(0);
    }

    void cycle(unsigned n = 1) { kernel.run_cycles(clk, n); }

    /// One clean Table III write through the full two-way handshake.
    void write_param(std::uint8_t idx, std::uint16_t val) {
        w.ga_load.drive(true);
        w.index.drive(idx);
        w.value.drive(val);
        w.data_valid.drive(true);
        for (int i = 0; i < 20 && !w.data_ack.read(); ++i) cycle();
        ASSERT_TRUE(w.data_ack.read()) << "ack never rose for index " << int(idx);
        w.data_valid.drive(false);
        for (int i = 0; i < 20 && w.data_ack.read(); ++i) cycle();
        ASSERT_FALSE(w.data_ack.read()) << "ack never dropped for index " << int(idx);
    }

    void program_clean(const GaParameters& p) {
        write_param(0, static_cast<std::uint16_t>(p.n_gens & 0xFFFF));
        write_param(1, static_cast<std::uint16_t>(p.n_gens >> 16));
        write_param(2, p.pop_size);
        write_param(3, p.xover_threshold);
        write_param(4, p.mut_threshold);
        write_param(5, p.seed);
        w.ga_load.drive(false);
        cycle(2);
    }

    /// Pulse start_GA and run to GA_done under a watchdog; returns success.
    bool run_to_done(std::uint64_t watchdog_cycles) {
        w.start_ga.drive(true);
        cycle(2);
        w.start_ga.drive(false);
        return kernel.run_until(
            clk, [&] { return core.state() == GaCore::State::kDone; }, watchdog_cycles);
    }
};

/// Throw randomized malformed traffic at the init pins. Never touches
/// start_ga: spurious-start robustness is covered separately and a random
/// start would make the (legal) run length unbounded via random n_gens.
void fuzz_init_traffic(FuzzRig& rig, Lcg& rnd) {
    const unsigned steps = 2 + rnd.below(40);
    for (unsigned i = 0; i < steps; ++i) {
        switch (rnd.below(6)) {
            case 0:  // (possibly repeated) parameter word, any index 0..7
                rig.w.ga_load.drive(true);
                rig.w.index.drive(static_cast<std::uint8_t>(rnd.below(8)));
                rig.w.value.drive(static_cast<std::uint16_t>(rnd.next()));
                rig.w.data_valid.drive(true);
                break;
            case 1:  // drop data_valid early (maybe before the ack)
                rig.w.data_valid.drive(false);
                break;
            case 2:  // yank ga_load mid-transfer
                rig.w.ga_load.drive(false);
                break;
            case 3:  // repeat the same word back-to-back
                rig.w.data_valid.drive(true);
                break;
            case 4:  // change the payload while data_valid is high
                rig.w.value.drive(static_cast<std::uint16_t>(rnd.next()));
                rig.w.index.drive(static_cast<std::uint8_t>(rnd.below(8)));
                break;
            case 5:  // idle a moment with whatever is on the pins
                break;
        }
        rig.cycle(1 + rnd.below(4));
    }
    // Release the interface.
    rig.w.data_valid.drive(false);
    rig.w.ga_load.drive(false);
}

TEST(InitHandshakeFuzz, MalformedSequencesDrainToIdleWithinWatchdog) {
    for (std::uint32_t trial = 0; trial < 64; ++trial) {
        FuzzRig rig;
        Lcg rnd(0xC0FFEE ^ (trial * 2654435761u));
        fuzz_init_traffic(rig, rnd);
        // Bounded drain: kInitAck waits only on data_valid (now low) and
        // kInitWait only on ga_load (now low) — a handful of cycles.
        bool idle = false;
        for (int i = 0; i < 16 && !idle; ++i) {
            idle = rig.core.state() == GaCore::State::kIdle;
            rig.cycle();
        }
        EXPECT_TRUE(idle) << "trial " << trial << " hung in state "
                          << int(static_cast<std::uint8_t>(rig.core.state()));
        EXPECT_FALSE(rig.w.data_ack.read()) << "trial " << trial << ": ack stuck high";
    }
}

TEST(InitHandshakeFuzz, CleanReprogramAfterFuzzRunsToDone) {
    const GaParameters clean{.pop_size = 8, .n_gens = 2, .xover_threshold = 12,
                             .mut_threshold = 1, .seed = 0x2961};
    for (std::uint32_t trial = 0; trial < 12; ++trial) {
        FuzzRig rig;
        Lcg rnd(0xFEED ^ (trial * 2654435761u));
        fuzz_init_traffic(rig, rnd);
        rig.cycle(8);
        ASSERT_EQ(rig.core.state(), GaCore::State::kIdle) << "trial " << trial;

        // Whatever garbage the fuzz left in the parameter registers, a
        // clean program must fully overwrite it and run to completion.
        rig.program_clean(clean);
        const GaParameters readback = rig.core.programmed_parameters();
        EXPECT_EQ(readback.pop_size, clean.pop_size) << "trial " << trial;
        EXPECT_EQ(readback.n_gens, clean.n_gens);
        // Index 5 is captured by the RNG module, not the core.
        EXPECT_EQ(rig.rng.seed_register(), clean.seed);

        ASSERT_TRUE(rig.run_to_done(200'000)) << "trial " << trial << ": watchdog tripped";
        // Self-consistent result: the reported best fitness is the FEM's
        // value for the reported best candidate.
        EXPECT_EQ(rig.core.best_fitness(),
                  fitness::fitness_u16(FitnessId::kOneMax, rig.core.best_candidate()))
            << "trial " << trial;
    }
}

TEST(InitHandshakeFuzz, PresetFallbackAfterFuzzMatchesBehavioralModel) {
    // The supervisor's last-resort recovery: ignore the (possibly garbage)
    // programmed parameters entirely — preset pins + start. Preset modes
    // resolve every parameter AND the seed from constants, so the result
    // is the behavioral model's, bit for bit. Mode 1 is the lightest
    // (pop 32 x 512 generations); modes 2/3 run minutes in -O0 builds.
    const std::uint8_t mode = 1;
    GaParameters pp = preset_parameters(mode);
    pp.seed = prng::RngModule::effective_seed(mode, 0);
    const RunResult expect = run_behavioral_ga(
        pp, [](std::uint16_t x) { return fitness::fitness_u16(FitnessId::kOneMax, x); },
        prng::RngKind::kCellularAutomaton, /*keep_populations=*/false);

    FuzzRig rig;
    Lcg rnd(0xDEADBEEF);
    fuzz_init_traffic(rig, rnd);
    rig.cycle(8);
    ASSERT_EQ(rig.core.state(), GaCore::State::kIdle);

    rig.w.preset.drive(mode);
    const std::uint64_t evals =
        static_cast<std::uint64_t>(pp.pop_size) * (static_cast<std::uint64_t>(pp.n_gens) + 1);
    ASSERT_TRUE(rig.run_to_done(evals * (64 + 8ull * pp.pop_size) + 100'000))
        << "preset fallback watchdog tripped";
    EXPECT_EQ(rig.core.best_fitness(), expect.best_fitness);
    EXPECT_EQ(rig.core.best_candidate(), expect.best_candidate);
}

}  // namespace
}  // namespace gaip::core
