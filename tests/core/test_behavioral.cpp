// Property tests of the GA operators and the behavioral optimization cycle.
#include <gtest/gtest.h>

#include <map>

#include "core/behavioral.hpp"
#include "fitness/functions.hpp"

namespace gaip::core {
namespace {

// ------------------------------------------------------------ selection --

TEST(ProportionateSelect, PicksTheMemberCrossingTheThreshold) {
    const std::vector<Member> pop = {{0xA, 10}, {0xB, 20}, {0xC, 30}, {0xD, 40}};
    const std::uint32_t sum = 100;
    // r = 0 -> threshold 0 -> first member with nonzero fitness wins.
    EXPECT_EQ(proportionate_select(pop, sum, 0), 0u);
    // threshold = (100 * r) >> 16; choose r so threshold = 25: member 1
    // makes cum 30 > 25.
    const std::uint16_t r25 = static_cast<std::uint16_t>((25u << 16) / 100u + 1);
    EXPECT_EQ(proportionate_select(pop, sum, r25), 1u);
    // threshold just below the full sum lands on the last member.
    EXPECT_EQ(proportionate_select(pop, sum, 0xFFFF), 3u);
}

TEST(ProportionateSelect, ZeroFitnessMembersAreSkipped) {
    const std::vector<Member> pop = {{0xA, 0}, {0xB, 0}, {0xC, 5}};
    EXPECT_EQ(proportionate_select(pop, 5, 0), 2u);
}

TEST(ProportionateSelect, AllZeroFallsBackAfterTwoPasses) {
    const std::vector<Member> pop = {{1, 0}, {2, 0}, {3, 0}};
    // Fitness sum 0: the scan can never terminate naturally; the 2P-read
    // fallback must select deterministically instead of hanging.
    const std::size_t idx = proportionate_select(pop, 0, 0x1234);
    EXPECT_LT(idx, pop.size());
}

TEST(ProportionateSelect, SelectionFrequencyTracksFitness) {
    // Statistical property: over the full threshold range, each member is
    // chosen with probability ~ fitness / fitness_sum.
    const std::vector<Member> pop = {{0, 10}, {1, 40}, {2, 30}, {3, 20}};
    const std::uint32_t sum = 100;
    std::map<std::size_t, int> counts;
    for (std::uint32_t r = 0; r <= 0xFFFF; r += 7) counts[proportionate_select(pop, sum, r)]++;
    const double total = 65536.0 / 7.0;
    EXPECT_NEAR(counts[0] / total, 0.10, 0.02);
    EXPECT_NEAR(counts[1] / total, 0.40, 0.02);
    EXPECT_NEAR(counts[2] / total, 0.30, 0.02);
    EXPECT_NEAR(counts[3] / total, 0.20, 0.02);
}

// ------------------------------------------------------------ crossover --

class CrossoverCutSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(CrossoverCutSweep, OffspringMixHalvesExactlyAtCut) {
    const unsigned cut = GetParam();
    const std::uint16_t p1 = 0xAAAA, p2 = 0x5555;
    const auto [o1, o2] = crossover_pair(p1, p2, cut);
    for (unsigned b = 0; b < 16; ++b) {
        const bool from_p1 = b < cut;
        EXPECT_EQ((o1 >> b) & 1, ((from_p1 ? p1 : p2) >> b) & 1) << "cut " << cut << " bit " << b;
        EXPECT_EQ((o2 >> b) & 1, ((from_p1 ? p2 : p1) >> b) & 1) << "cut " << cut << " bit " << b;
    }
}

TEST_P(CrossoverCutSweep, PreservesMultisetOfBits) {
    // At every bit position, {o1, o2} holds the same pair of values as
    // {p1, p2} — crossover only exchanges material, never invents it.
    const unsigned cut = GetParam();
    const std::uint16_t p1 = 0xBEEF, p2 = 0x1234;
    const auto [o1, o2] = crossover_pair(p1, p2, cut);
    EXPECT_EQ(o1 ^ o2, p1 ^ p2);
    EXPECT_EQ(o1 & o2, p1 & p2);
}

INSTANTIATE_TEST_SUITE_P(AllCuts, CrossoverCutSweep, ::testing::Range(0u, 16u));

TEST(Crossover, CutZeroSwapsParents) {
    const auto [o1, o2] = crossover_pair(0xBEEF, 0x1234, 0);
    EXPECT_EQ(o1, 0x1234);
    EXPECT_EQ(o2, 0xBEEF);
}

// ------------------------------------------------------ optimization cycle --

fitness::FitnessId const kFns[] = {fitness::FitnessId::kOneMax, fitness::FitnessId::kMBf6_2,
                                   fitness::FitnessId::kMShubert2D};

TEST(BehavioralGa, DeterministicForSameSeed) {
    const GaParameters p{.pop_size = 32, .n_gens = 16, .xover_threshold = 10,
                         .mut_threshold = 2, .seed = 0xB342};
    auto fn = [](std::uint16_t x) { return fitness::fitness_u16(fitness::FitnessId::kMBf6_2, x); };
    const RunResult a = run_behavioral_ga(p, fn);
    const RunResult b = run_behavioral_ga(p, fn);
    EXPECT_EQ(a.best_candidate, b.best_candidate);
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t g = 0; g < a.history.size(); ++g)
        EXPECT_EQ(a.history[g].population, b.history[g].population);
}

TEST(BehavioralGa, DifferentSeedsExploreDifferently) {
    const GaParameters base{.pop_size = 32, .n_gens = 8, .xover_threshold = 10,
                            .mut_threshold = 1, .seed = 0x2961};
    GaParameters other = base;
    other.seed = 0x061F;
    auto fn = [](std::uint16_t x) { return fitness::fitness_u16(fitness::FitnessId::kBf6, x); };
    const RunResult a = run_behavioral_ga(base, fn);
    const RunResult b = run_behavioral_ga(other, fn);
    EXPECT_NE(a.history[0].population, b.history[0].population);
}

TEST(BehavioralGa, ElitismMakesBestFitnessMonotone) {
    for (const auto id : kFns) {
        const GaParameters p{.pop_size = 24, .n_gens = 24, .xover_threshold = 12,
                             .mut_threshold = 4, .seed = 0xAAAA};
        const RunResult r =
            run_behavioral_ga(p, [&](std::uint16_t x) { return fitness::fitness_u16(id, x); });
        for (std::size_t g = 1; g < r.history.size(); ++g) {
            EXPECT_GE(r.history[g].best_fit, r.history[g - 1].best_fit)
                << fitness::fitness_name(id) << " gen " << g;
        }
    }
}

TEST(BehavioralGa, EliteMemberPresentInEveryGeneration) {
    const GaParameters p{.pop_size = 16, .n_gens = 12, .xover_threshold = 12,
                         .mut_threshold = 8, .seed = 7};
    const RunResult r = run_behavioral_ga(
        p, [](std::uint16_t x) { return fitness::fitness_u16(fitness::FitnessId::kOneMax, x); });
    for (std::size_t g = 1; g < r.history.size(); ++g) {
        const auto& pop = r.history[g].population;
        ASSERT_FALSE(pop.empty());
        // The elite is copied at the START of generation g, so slot 0 holds
        // the best-ever member as of the end of generation g-1.
        EXPECT_EQ(pop[0].fitness, r.history[g - 1].best_fit)
            << "slot 0 must hold the elite at generation " << g;
    }
}

TEST(BehavioralGa, FitSumMatchesPopulation) {
    const GaParameters p{.pop_size = 20, .n_gens = 10, .xover_threshold = 10,
                         .mut_threshold = 2, .seed = 99};
    const RunResult r = run_behavioral_ga(
        p, [](std::uint16_t x) { return fitness::fitness_u16(fitness::FitnessId::kF3, x); });
    for (const GenerationStats& s : r.history) {
        std::uint32_t sum = 0;
        for (const Member& m : s.population) sum += m.fitness;
        EXPECT_EQ(sum, s.fit_sum) << "gen " << s.gen;
    }
}

TEST(BehavioralGa, EvaluationCountIsPopTimesGensPlusInitial) {
    const GaParameters p{.pop_size = 32, .n_gens = 10, .xover_threshold = 10,
                         .mut_threshold = 1, .seed = 5};
    const RunResult r = run_behavioral_ga(
        p, [](std::uint16_t x) { return fitness::fitness_u16(fitness::FitnessId::kOneMax, x); });
    // Initial pop evaluates pop_size; each generation evaluates pop_size - 1
    // offspring (the elite is copied, not re-evaluated).
    EXPECT_EQ(r.evaluations, 32u + 10u * 31u);
}

TEST(BehavioralGa, SolvesOneMax) {
    const GaParameters p{.pop_size = 64, .n_gens = 64, .xover_threshold = 12,
                         .mut_threshold = 2, .seed = 0x2961};
    const RunResult r = run_behavioral_ga(
        p, [](std::uint16_t x) { return fitness::fitness_u16(fitness::FitnessId::kOneMax, x); });
    EXPECT_EQ(r.best_candidate, 0xFFFF);
}

TEST(BehavioralGa, MutationRateZeroNeverFlipsBits) {
    // With crossover off and mutation off, the population can only contain
    // copies of initial individuals.
    const GaParameters p{.pop_size = 16, .n_gens = 8, .xover_threshold = 0,
                         .mut_threshold = 0, .seed = 0x1111};
    const RunResult r = run_behavioral_ga(
        p, [](std::uint16_t x) { return fitness::fitness_u16(fitness::FitnessId::kOneMax, x); });
    const auto& initial = r.history[0].population;
    for (const Member& m : r.history.back().population) {
        const bool found = std::any_of(initial.begin(), initial.end(), [&](const Member& i) {
            return i.candidate == m.candidate;
        });
        EXPECT_TRUE(found) << "0x" << std::hex << m.candidate << " not in the initial population";
    }
}

TEST(BehavioralGa, HistoryCoversEveryGeneration) {
    const GaParameters p{.pop_size = 8, .n_gens = 5, .xover_threshold = 10,
                         .mut_threshold = 1, .seed = 3};
    const RunResult r = run_behavioral_ga(
        p, [](std::uint16_t x) { return fitness::fitness_u16(fitness::FitnessId::kF2, x); });
    ASSERT_EQ(r.history.size(), 6u);  // gen 0 (initial) .. gen 5
    for (std::size_t g = 0; g < r.history.size(); ++g) EXPECT_EQ(r.history[g].gen, g);
}

TEST(BehavioralGa, KeepPopulationsFalseDropsSnapshots) {
    const GaParameters p{.pop_size = 8, .n_gens = 3, .xover_threshold = 10,
                         .mut_threshold = 1, .seed = 3};
    const RunResult r = run_behavioral_ga(
        p, [](std::uint16_t x) { return fitness::fitness_u16(fitness::FitnessId::kF2, x); },
        prng::RngKind::kCellularAutomaton, /*keep_populations=*/false);
    for (const GenerationStats& s : r.history) EXPECT_TRUE(s.population.empty());
    EXPECT_GT(r.best_fitness, 0u);
}


TEST(BehavioralGaSoak, PresetThreeSizedRunStaysSane) {
    // The largest Table IV preset (pop 128 x 4096 generations = 524k
    // evaluations) on the behavioral model: completes, stays monotone, and
    // solves OneMax exactly. This is the scale the hardware presets are
    // specified for; the RTL equivalent is covered at smaller sizes by the
    // lockstep equivalence tests.
    GaParameters p = preset_parameters(3);
    p.seed = 0x2961;
    const RunResult r = run_behavioral_ga(
        p, [](std::uint16_t x) { return fitness::fitness_u16(fitness::FitnessId::kOneMax, x); },
        prng::RngKind::kCellularAutomaton, /*keep_populations=*/false);
    EXPECT_EQ(r.evaluations, 128u + 4096u * 127u);
    EXPECT_EQ(r.best_candidate, 0xFFFF);
    for (std::size_t g = 1; g < r.history.size(); ++g)
        ASSERT_GE(r.history[g].best_fit, r.history[g - 1].best_fit) << g;
}

}  // namespace
}  // namespace gaip::core
