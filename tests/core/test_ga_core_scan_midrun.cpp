// Scan-chain usage scenarios beyond simple shift tests: mid-run state dump
// with transparent restore (the debug/test workflow scan chains exist for)
// and scan-based fault injection.
#include <gtest/gtest.h>

#include "fitness/functions.hpp"
#include "system/ga_system.hpp"

namespace gaip::core {
namespace {

using fitness::FitnessId;

system::GaSystemConfig small_config() {
    system::GaSystemConfig cfg;
    cfg.params = {.pop_size = 16, .n_gens = 8, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = 0x2961};
    cfg.internal_fems = {FitnessId::kMBf6_2};
    cfg.keep_populations = false;
    return cfg;
}

TEST(GaCoreScanMidRun, FullRotationIsTransparentToTheRun) {
    // Reference: uninterrupted run.
    system::GaSystem ref(small_config());
    const RunResult expect = ref.run();

    // Interrupted run: halt mid-optimization, scan the complete state out
    // while feeding it back in (a full rotation restores every register),
    // then resume. The result must be identical — the scan chain is a
    // transparent observation mechanism.
    system::GaSystem sys(small_config());
    auto& k = sys.kernel();
    k.reset();
    // Run into the middle of the optimization; halt in a selection state
    // (no pending memory read or generation pulse depends on the halt).
    ASSERT_TRUE(k.run_until(
        sys.app_clock(),
        [&] {
            return sys.core().generation() >= 3 &&
                   sys.core().state() == GaCore::State::kSelRn;
        },
        10'000'000));

    const unsigned len = sys.core().scan_chain().length();
    const std::vector<bool> before = sys.core().scan_chain().snapshot();

    sys.wires().test.drive(true);
    std::vector<bool> dumped;
    for (unsigned i = 0; i < len; ++i) {
        dumped.push_back(sys.wires().scanout.read());
        sys.wires().scanin.drive(sys.wires().scanout.read());  // loopback
        k.run_cycles(sys.ga_clock(), 1);
    }
    sys.wires().test.drive(false);

    // The dump observed the full pre-halt state (tail-first)...
    const std::vector<bool> expect_dump(before.rbegin(), before.rend());
    EXPECT_EQ(dumped, expect_dump);
    // ...and the rotation restored it exactly.
    EXPECT_EQ(sys.core().scan_chain().snapshot(), before);

    // Resume to completion: identical outcome.
    ASSERT_TRUE(k.run_until(
        sys.app_clock(), [&] { return sys.app_module().done(); }, 100'000'000));
    EXPECT_EQ(sys.core().best_candidate(), expect.best_candidate);
    EXPECT_EQ(sys.core().best_fitness(), expect.best_fitness);
}

TEST(GaCoreScanMidRun, FaultInjectionCorruptsExactlyTheTargetedState) {
    // Scan-based fault injection: flip a single chain bit mid-run. The GA
    // must keep operating (no hang) even with corrupted state — the FSM has
    // no unrecoverable decodes — though results may legitimately differ.
    system::GaSystem sys(small_config());
    auto& k = sys.kernel();
    k.reset();
    ASSERT_TRUE(k.run_until(
        sys.app_clock(),
        [&] {
            return sys.core().generation() >= 2 &&
                   sys.core().state() == GaCore::State::kSelRn;
        },
        10'000'000));

    const unsigned len = sys.core().scan_chain().length();
    sys.wires().test.drive(true);
    for (unsigned i = 0; i < len; ++i) {
        // Loop the state back but invert one bit in the middle of the dump
        // (a single-event-upset model).
        const bool bit = sys.wires().scanout.read();
        sys.wires().scanin.drive(i == len / 2 ? !bit : bit);
        k.run_cycles(sys.ga_clock(), 1);
    }
    sys.wires().test.drive(false);

    EXPECT_TRUE(k.run_until(
        sys.app_clock(), [&] { return sys.app_module().done(); }, 100'000'000))
        << "a single flipped state bit must not deadlock the engine";
    EXPECT_EQ(sys.core().state(), GaCore::State::kDone);
}

TEST(GaCoreScanMidRun, PresetEquivalenceWithBehavioralModel) {
    // Preset modes must be bit-exact with the behavioral model running the
    // Table IV parameters and the matching preset seed.
    for (std::uint8_t mode = 1; mode <= 2; ++mode) {  // mode 3 = 4096 gens, too slow here
        system::GaSystemConfig cfg;
        cfg.preset = mode;
        cfg.skip_initialization = true;
        cfg.internal_fems = {FitnessId::kF2};
        cfg.keep_populations = false;
        // Trim the preset generation count via the behavioral side instead:
        // run the full preset on both sides for mode 1 only.
        if (mode == 2) continue;  // mode 1 (512 gens) is plenty for this check
        const RunResult hw = system::run_ga_system(cfg);

        GaParameters p = preset_parameters(mode);
        p.seed = prng::kPresetSeeds[mode - 1];
        const RunResult sw = core::run_behavioral_ga(
            p, [](std::uint16_t x) { return fitness::fitness_u16(FitnessId::kF2, x); },
            prng::RngKind::kCellularAutomaton, false);
        EXPECT_EQ(hw.best_candidate, sw.best_candidate) << "mode " << int(mode);
        EXPECT_EQ(hw.best_fitness, sw.best_fitness) << "mode " << int(mode);
        EXPECT_EQ(hw.evaluations, sw.evaluations) << "mode " << int(mode);
    }
}

TEST(GaCoreMidRun, CandidateBusAlwaysCarriesBestSoFar) {
    // "The best candidate of every generation is always output to the
    // application to use in case of an emergency" (Sec. III-C.3c): outside
    // of fitness-evaluation handshakes, the candidate bus equals the
    // best-ever individual at every observed instant.
    system::GaSystem sys(small_config());
    auto& k = sys.kernel();
    k.reset();
    std::uint32_t checks = 0;
    for (int i = 0; i < 30000 && !sys.app_module().done(); ++i) {
        k.step();
        const auto s = sys.core().state();
        if (s != GaCore::State::kEvalReq && s != GaCore::State::kEvalDrop &&
            sys.core().generation() > 0) {
            EXPECT_EQ(sys.wires().candidate.read(), sys.core().best_candidate());
            ++checks;
        }
    }
    EXPECT_GT(checks, 1000u);
}

}  // namespace
}  // namespace gaip::core
