// Tests of the resynthesized wide-chromosome GA (Sec. III-D option a).
#include <gtest/gtest.h>

#include <bit>

#include "core/wide_ga.hpp"
#include "fitness/functions.hpp"

namespace gaip::core {
namespace {

TEST(CrossoverWide, CutSemanticsAcrossWidths) {
    for (const unsigned bits : {8u, 16u, 32u, 48u, 64u}) {
        const std::uint64_t p1 = 0xAAAAAAAAAAAAAAAAull & util::low_mask(bits);
        const std::uint64_t p2 = 0x5555555555555555ull & util::low_mask(bits);
        for (unsigned cut = 0; cut < bits; cut += 5) {
            const auto [o1, o2] = crossover_pair_wide(p1, p2, cut, bits);
            for (unsigned b = 0; b < bits; ++b) {
                const bool from_p1 = b < cut;
                EXPECT_EQ((o1 >> b) & 1, ((from_p1 ? p1 : p2) >> b) & 1)
                    << bits << " bits, cut " << cut << ", bit " << b;
            }
            EXPECT_EQ(o1 ^ o2, p1 ^ p2);
        }
    }
}

TEST(CrossoverWide, SixteenBitAgreesWithCoreOperator) {
    for (unsigned cut = 0; cut < 16; ++cut) {
        const auto [w1, w2] = crossover_pair_wide(0xBEEF, 0x1234, cut, 16);
        const auto [c1, c2] = crossover_pair(0xBEEF, 0x1234, cut);
        EXPECT_EQ(w1, c1) << cut;
        EXPECT_EQ(w2, c2) << cut;
    }
}

TEST(WideGa, SolvesOneMax32) {
    WideGaParameters p;
    p.chrom_bits = 32;
    p.pop_size = 64;
    p.n_gens = 96;
    p.xover_threshold = 12;
    p.mut_threshold = 2;
    p.seed = 0x2961;
    const WideRunResult r =
        run_wide_ga(p, [](std::uint64_t x) { return fitness::onemax32(static_cast<std::uint32_t>(x)); });
    EXPECT_GE(std::popcount(static_cast<std::uint32_t>(r.best_candidate)), 29);
    EXPECT_EQ(r.evaluations, 64u + 96u * 63u);
}

TEST(WideGa, RespectsChromosomeWidth) {
    WideGaParameters p;
    p.chrom_bits = 24;
    p.pop_size = 16;
    p.n_gens = 16;
    p.seed = 7;
    const WideRunResult r = run_wide_ga(
        p, [](std::uint64_t x) { return static_cast<std::uint16_t>(x & 0xFFFF); });
    EXPECT_EQ(r.best_candidate & ~util::low_mask(24), 0u)
        << "no bit above the configured width may ever be set";
}

TEST(WideGa, ElitismMonotoneAt48Bits) {
    WideGaParameters p;
    p.chrom_bits = 48;
    p.pop_size = 24;
    p.n_gens = 24;
    p.seed = 0xAAAA;
    const WideRunResult r = run_wide_ga(p, [](std::uint64_t x) {
        return static_cast<std::uint16_t>(2047u * std::popcount(x & util::low_mask(48)) / 3u);
    });
    for (std::size_t g = 1; g < r.best_per_generation.size(); ++g)
        EXPECT_GE(r.best_per_generation[g], r.best_per_generation[g - 1]) << g;
}

TEST(WideGa, DeterministicPerSeed) {
    WideGaParameters p;
    p.chrom_bits = 40;
    p.pop_size = 16;
    p.n_gens = 8;
    p.seed = 0x061F;
    auto fn = [](std::uint64_t x) { return static_cast<std::uint16_t>((x * 0x9E3779B9u) >> 48); };
    const WideRunResult a = run_wide_ga(p, fn);
    const WideRunResult b = run_wide_ga(p, fn);
    EXPECT_EQ(a.best_candidate, b.best_candidate);
    EXPECT_EQ(a.best_per_generation, b.best_per_generation);
}

TEST(WideGa, InvalidConfigRejected) {
    WideGaParameters p;
    p.chrom_bits = 0;
    EXPECT_THROW(run_wide_ga(p, [](std::uint64_t) { return std::uint16_t{0}; }),
                 std::invalid_argument);
    p.chrom_bits = 65;
    EXPECT_THROW(run_wide_ga(p, [](std::uint64_t) { return std::uint16_t{0}; }),
                 std::invalid_argument);
    p.chrom_bits = 32;
    EXPECT_THROW(run_wide_ga(p, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace gaip::core
