// Differential island test harness — the tentpole property of the N-core
// island system: the SAME island job run on the behavioral engines, the
// RT-level GaSystem array, and the gate-level SIMD lane block must be
// byte-identical — per-island best-fitness trajectories, final bests,
// evaluation counts, AND every individual migration payload (gen, source,
// destination, slots, member, victim). The matrix spans
//
//   islands      N in {1, 2, 4, 8}
//   topology     ring, star
//   interval     off (0), 8, 32
//   gate widths  W in {1, 2, 4, 8} 64-lane words
//   gate engine  interpreter vs native-codegen JIT (skipped w/o compiler)
//   threads      1, 2, 4 (RT-level and behavioral segment workers)
//
// plus both replacement policies. Any divergence in RNG consumption order,
// barrier placement, bank observation point, or poke semantics trips the
// comparison at the first differing generation.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "gates/compiled.hpp"
#include "gates/jit.hpp"
#include "island/island.hpp"
#include "supervisor/supervisor.hpp"
#include "trace/event.hpp"

namespace gaip::island {
namespace {

using supervisor::BackendKind;

IslandConfig base_cfg(unsigned islands, Topology topo, std::uint16_t interval) {
    IslandConfig cfg;
    cfg.base.pop_size = 16;
    cfg.base.n_gens = 24;
    cfg.base.seed = 0x2961;
    cfg.islands = islands;
    cfg.topology = topo;
    cfg.migration.interval = interval;
    cfg.migration.count = 2;
    return cfg;
}

std::string label(const IslandConfig& cfg) {
    return std::string("N=") + std::to_string(cfg.islands) + " " +
           topology_name(cfg.topology) + " interval=" + std::to_string(cfg.migration.interval) +
           " policy=" + policy_name(cfg.migration.policy);
}

/// Full byte-for-byte comparison of two substrates' results. Cycle-level
/// accounting (run/stall/makespan) is substrate-specific and deliberately
/// excluded here — the GA-visible outcome is what must match.
void expect_identical(const IslandResult& a, const IslandResult& b, const std::string& what) {
    EXPECT_EQ(a.best_fitness, b.best_fitness) << what;
    EXPECT_EQ(a.best_candidate, b.best_candidate) << what;
    EXPECT_EQ(a.best_island, b.best_island) << what;
    EXPECT_EQ(a.effective, b.effective) << what;
    EXPECT_EQ(a.boundaries, b.boundaries) << what;
    ASSERT_EQ(a.migrations.size(), b.migrations.size()) << what;
    for (std::size_t m = 0; m < a.migrations.size(); ++m)
        EXPECT_EQ(a.migrations[m], b.migrations[m]) << what << " migration #" << m;
    ASSERT_EQ(a.islands.size(), b.islands.size()) << what;
    for (std::size_t i = 0; i < a.islands.size(); ++i) {
        const IslandStats& x = a.islands[i];
        const IslandStats& y = b.islands[i];
        EXPECT_EQ(x.seed, y.seed) << what << " island " << i;
        EXPECT_EQ(x.best_fitness, y.best_fitness) << what << " island " << i;
        EXPECT_EQ(x.best_candidate, y.best_candidate) << what << " island " << i;
        EXPECT_EQ(x.generations, y.generations) << what << " island " << i;
        EXPECT_EQ(x.evaluations, y.evaluations) << what << " island " << i;
        ASSERT_EQ(x.best_trajectory.size(), y.best_trajectory.size()) << what << " island " << i;
        for (std::size_t g = 0; g < x.best_trajectory.size(); ++g)
            EXPECT_EQ(x.best_trajectory[g], y.best_trajectory[g])
                << what << " island " << i << " gen " << g;
    }
}

IslandResult run_on(IslandConfig cfg, BackendKind backend) {
    cfg.backend = backend;
    return IslandSystem(cfg).run();
}

// The core matrix: N x topology x interval, behavioral vs RTL vs gate-lane
// (interpreter engine pinned so this test is compiler-independent).
TEST(IslandDifferential, ThreeSubstratesBitIdenticalAcrossMatrix) {
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        for (Topology topo : {Topology::kRing, Topology::kStar}) {
            for (std::uint16_t interval : {std::uint16_t{0}, std::uint16_t{8}, std::uint16_t{32}}) {
                if (interval == 0 && topo == Topology::kStar) continue;  // off == off
                IslandConfig cfg = base_cfg(n, topo, interval);
                cfg.gate_backend = gates::Backend::kInterp;
                const IslandResult beh = run_on(cfg, BackendKind::kBehavioral);
                const IslandResult rtl = run_on(cfg, BackendKind::kRtl);
                const IslandResult gate = run_on(cfg, BackendKind::kGateLane);
                expect_identical(beh, rtl, label(cfg) + " [behavioral vs RTL]");
                expect_identical(beh, gate, label(cfg) + " [behavioral vs gate]");
                // Migration actually happened where it should: interval 8
                // over 24 generations has boundaries {8, 16}; each carries
                // count emigrants per destination island.
                if (interval == 8 && n >= 2) {
                    ASSERT_EQ(beh.boundaries.size(), 2u) << label(cfg);
                    EXPECT_EQ(beh.migrations.size(), 2u * n * beh.effective.count) << label(cfg);
                } else if (interval == 0 || n < 2) {
                    EXPECT_TRUE(beh.migrations.empty()) << label(cfg);
                }
            }
        }
    }
}

// Random-replacement draws come from the interconnect's own CA RNG stream,
// which every substrate must consume in the same order.
TEST(IslandDifferential, RandomReplacementPolicyBitIdentical) {
    for (Topology topo : {Topology::kRing, Topology::kStar}) {
        IslandConfig cfg = base_cfg(4, topo, 8);
        cfg.migration.policy = ReplacePolicy::kRandom;
        cfg.gate_backend = gates::Backend::kInterp;
        const IslandResult beh = run_on(cfg, BackendKind::kBehavioral);
        const IslandResult rtl = run_on(cfg, BackendKind::kRtl);
        const IslandResult gate = run_on(cfg, BackendKind::kGateLane);
        expect_identical(beh, rtl, label(cfg) + " [behavioral vs RTL]");
        expect_identical(beh, gate, label(cfg) + " [behavioral vs gate]");
        EXPECT_FALSE(beh.migrations.empty()) << label(cfg);
    }
}

// Lane-block width is a packing choice, never a semantic one: W in
// {1,2,4,8} words must deliver the identical result (8 islands fit in one
// 64-lane word, so wider blocks exercise pure padding lanes too).
TEST(IslandDifferential, GateLaneWidthsBitIdentical) {
    IslandConfig cfg = base_cfg(8, Topology::kRing, 8);
    cfg.gate_backend = gates::Backend::kInterp;
    const IslandResult ref = run_on(cfg, BackendKind::kBehavioral);
    for (unsigned words : {1u, 2u, 4u, 8u}) {
        IslandConfig wcfg = cfg;
        wcfg.words = words;
        const IslandResult gate = run_on(wcfg, BackendKind::kGateLane);
        expect_identical(ref, gate, label(cfg) + " [W=" + std::to_string(words) + "]");
    }
}

// Interpreter vs native-codegen JIT engine on the same lane block.
TEST(IslandDifferential, GateLaneJitMatchesInterpreter) {
    if (!gates::jit::available()) GTEST_SKIP() << "no host compiler for the JIT backend";
    for (Topology topo : {Topology::kRing, Topology::kStar}) {
        IslandConfig cfg = base_cfg(4, topo, 8);
        cfg.gate_backend = gates::Backend::kInterp;
        const IslandResult interp = run_on(cfg, BackendKind::kGateLane);
        cfg.gate_backend = gates::Backend::kJitForce;
        const IslandResult jit = run_on(cfg, BackendKind::kGateLane);
        expect_identical(interp, jit, label(cfg) + " [interp vs JIT]");
        // The JIT runs the same netlist clock-for-clock, so even the
        // cycle accounting must agree between the two engines.
        EXPECT_EQ(interp.makespan_cycles, jit.makespan_cycles) << label(cfg);
        for (std::size_t i = 0; i < interp.islands.size(); ++i) {
            EXPECT_EQ(interp.islands[i].run_cycles, jit.islands[i].run_cycles) << "island " << i;
            EXPECT_EQ(interp.islands[i].stall_cycles, jit.islands[i].stall_cycles)
                << "island " << i;
        }
    }
}

// Barrier-to-barrier segments are data-independent across islands, so the
// worker count must never change a bit — including the cycle accounting.
TEST(IslandDifferential, ThreadCountInvariant) {
    for (BackendKind backend : {BackendKind::kBehavioral, BackendKind::kRtl}) {
        IslandConfig cfg = base_cfg(4, Topology::kRing, 8);
        cfg.threads = 1;
        const IslandResult ref = run_on(cfg, backend);
        for (unsigned threads : {2u, 4u}) {
            IslandConfig tcfg = cfg;
            tcfg.threads = threads;
            const IslandResult r = run_on(tcfg, backend);
            expect_identical(ref, r, label(cfg) + " threads=" + std::to_string(threads));
            EXPECT_EQ(ref.makespan_cycles, r.makespan_cycles);
            for (std::size_t i = 0; i < ref.islands.size(); ++i) {
                EXPECT_EQ(ref.islands[i].run_cycles, r.islands[i].run_cycles);
                EXPECT_EQ(ref.islands[i].stall_cycles, r.islands[i].stall_cycles);
            }
        }
    }
}

// The trace stream is part of the interconnect's contract: one
// island_barrier per boundary, one island_migrate per record (payload
// fields matching the result's canonical migration list), one island_done
// per island — identical event payloads on every substrate.
TEST(IslandDifferential, TraceEventsMirrorMigrationRecords) {
    for (BackendKind backend :
         {BackendKind::kBehavioral, BackendKind::kRtl, BackendKind::kGateLane}) {
        trace::MemorySink sink;
        IslandConfig cfg = base_cfg(4, Topology::kRing, 8);
        cfg.gate_backend = gates::Backend::kInterp;
        cfg.backend = backend;
        cfg.sink = &sink;
        const IslandResult r = IslandSystem(cfg).run();
        std::vector<const trace::TraceEvent*> barriers, migrates, dones;
        for (const trace::TraceEvent& e : sink.events()) {
            if (e.kind == trace::kind::kIslandBarrier) barriers.push_back(&e);
            if (e.kind == trace::kind::kIslandMigrate) migrates.push_back(&e);
            if (e.kind == trace::kind::kIslandDone) dones.push_back(&e);
        }
        ASSERT_EQ(barriers.size(), r.boundaries.size());
        for (std::size_t b = 0; b < barriers.size(); ++b)
            EXPECT_EQ(barriers[b]->u64("gen"), r.boundaries[b]);
        ASSERT_EQ(migrates.size(), r.migrations.size());
        for (std::size_t m = 0; m < migrates.size(); ++m) {
            const MigrationRecord& rec = r.migrations[m];
            EXPECT_EQ(migrates[m]->u64("gen"), rec.gen);
            EXPECT_EQ(migrates[m]->u64("from"), rec.from);
            EXPECT_EQ(migrates[m]->u64("to"), rec.to);
            EXPECT_EQ(migrates[m]->u64("src_slot"), rec.src_slot);
            EXPECT_EQ(migrates[m]->u64("dst_slot"), rec.dst_slot);
            EXPECT_EQ(migrates[m]->u64("candidate"), rec.member.candidate);
            EXPECT_EQ(migrates[m]->u64("fitness"), rec.member.fitness);
        }
        EXPECT_EQ(dones.size(), cfg.islands);
    }
}

// Both timed substrates model real N-core timing: islands stall at
// barriers (faster cores wait for the slowest) and the makespan covers the
// whole run including stalls. The absolute cycle counts are a property of
// each substrate's clock model (the gate lane block and the RT-level
// simulator pace the FEM handshake differently), so the invariants — not
// cross-substrate equality — are what this test pins.
TEST(IslandDifferential, CycleAccountingIsInternallyConsistent) {
    for (BackendKind backend : {BackendKind::kRtl, BackendKind::kGateLane}) {
        IslandConfig cfg = base_cfg(4, Topology::kRing, 8);
        cfg.gate_backend = gates::Backend::kInterp;
        const IslandResult r = run_on(cfg, backend);
        std::uint64_t max_total = 0;
        bool any_stall = false;
        for (const IslandStats& s : r.islands) {
            EXPECT_GT(s.run_cycles, 0u);
            any_stall |= s.stall_cycles > 0;
            if (s.run_cycles + s.stall_cycles > max_total)
                max_total = s.run_cycles + s.stall_cycles;
        }
        EXPECT_EQ(r.makespan_cycles, max_total);
        // Islands run different workloads, so at a synchronous barrier at
        // least one of them must have waited.
        EXPECT_TRUE(any_stall);
        // The behavioral substrate is untimed by contract.
        const IslandResult beh = run_on(cfg, BackendKind::kBehavioral);
        EXPECT_EQ(beh.makespan_cycles, 0u);
    }
}

}  // namespace
}  // namespace gaip::island
