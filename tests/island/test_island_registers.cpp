// Migration-register contract tests: the interconnect's programmable
// values (init-handshake indices 6 and 7) follow the repo's register
// semantics — values arriving over the REGISTER path clamp silently like
// the pop-size register, structural errors in the C++ API throw
// std::invalid_argument, and no register value, however hostile, can hang
// an island run. Plus the spec-level properties of the pure
// plan_migration() function: emigrant/victim selection order, tie
// breaking, star pooling, and the zero-emigrant degeneration to N fully
// independent islands.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/behavioral.hpp"
#include "fitness/functions.hpp"
#include "island/island.hpp"
#include "prng/rng_module.hpp"
#include "supervisor/supervisor.hpp"

namespace gaip::island {
namespace {

using core::Member;
using supervisor::BackendKind;

/// splitmix64 — deterministic fuzz stimulus.
struct Rand {
    std::uint64_t s;
    std::uint64_t next() {
        s += 0x9E3779B97F4A7C15ull;
        std::uint64_t z = s;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }
};

// ---------------------------------------------------------------- encoding

TEST(MigrationRegisters, PackDecodeRoundTrip) {
    Rand rnd{0x15A4D5u};
    for (int i = 0; i < 200; ++i) {
        MigrationConfig cfg;
        cfg.interval = static_cast<std::uint16_t>(rnd.next());
        cfg.count = static_cast<std::uint16_t>(rnd.next() & 0xFF);  // encodable range
        cfg.policy = (rnd.next() & 1) != 0 ? ReplacePolicy::kRandom : ReplacePolicy::kWorst;
        const MigrationConfig back = decode_registers(cfg.interval, pack_count_policy(cfg));
        EXPECT_EQ(back.interval, cfg.interval);
        EXPECT_EQ(back.count, cfg.count);
        EXPECT_EQ(back.policy, cfg.policy);
    }
}

TEST(MigrationRegisters, CountFieldIsEightBits) {
    MigrationConfig cfg;
    cfg.count = 0x1FF;  // 511 requested: only bits [7:0] exist in the register
    cfg.policy = ReplacePolicy::kWorst;
    const std::uint16_t reg = pack_count_policy(cfg);
    EXPECT_EQ(reg & 0x100, 0) << "count bit 8 must not bleed into the policy bit";
    EXPECT_EQ(decode_registers(0, reg).count, 0xFF);
    cfg.policy = ReplacePolicy::kRandom;
    EXPECT_EQ(decode_registers(0, pack_count_policy(cfg)).policy, ReplacePolicy::kRandom);
}

TEST(MigrationRegisters, ClampSaturatesAtHalfPopAndHardwareCeiling) {
    MigrationConfig raw;
    raw.count = 200;
    EXPECT_EQ(clamp_migration(raw, 16).count, 8u);              // pop/2 dominates
    EXPECT_EQ(clamp_migration(raw, 64).count, kMaxEmigrants);   // ceiling dominates
    raw.count = 3;
    EXPECT_EQ(clamp_migration(raw, 16).count, 3u);              // in range: untouched
    raw.count = 0;
    EXPECT_EQ(clamp_migration(raw, 16).count, 0u);              // off stays off
}

// Every substrate derives its effective config through the SAME register
// decode + clamp, so an out-of-range request behaves identically
// everywhere — including the 8-bit truncation of the count field.
TEST(MigrationRegisters, EffectiveConfigIsTheRegisterView) {
    IslandConfig cfg;
    cfg.base.pop_size = 16;
    cfg.base.n_gens = 8;
    cfg.base.seed = 0x2961;
    cfg.islands = 2;
    cfg.migration.interval = 4;
    cfg.migration.count = 0x103;  // truncates to 3 in the 8-bit field
    IslandSystem sys(cfg);
    EXPECT_EQ(sys.effective_migration().count, 3u);
    EXPECT_EQ(sys.effective_migration().interval, 4u);
    cfg.migration.count = 200;  // survives the 8-bit field, then clamps
    EXPECT_EQ(IslandSystem(cfg).effective_migration().count, 8u);
}

// ------------------------------------------------------------- structural

TEST(MigrationRegisters, StructuralErrorsThrow) {
    IslandConfig cfg;
    cfg.base.pop_size = 16;
    cfg.base.n_gens = 4;
    cfg.islands = 0;
    EXPECT_THROW(IslandSystem{cfg}, std::invalid_argument);
    cfg.islands = 2;
    cfg.seeds = {1, 2, 3};  // size != islands
    EXPECT_THROW(IslandSystem{cfg}, std::invalid_argument);
    cfg.seeds.clear();
    cfg.backend = BackendKind::kGateLane;
    cfg.rng_kind = prng::RngKind::kXorShift;  // gate netlist is CA-only
    EXPECT_THROW(IslandSystem{cfg}, std::invalid_argument);
}

TEST(MigrationRegisters, RegisterValuesNeverThrow) {
    // Hostile register values are NOT structural: the hardware path clamps.
    IslandConfig cfg;
    cfg.base.pop_size = 8;
    cfg.base.n_gens = 4;
    cfg.base.seed = 0x061F;
    cfg.islands = 2;
    cfg.migration.interval = 0xFFFF;
    cfg.migration.count = 0xFFFF;
    EXPECT_NO_THROW({
        const IslandResult r = IslandSystem(cfg).run();
        EXPECT_TRUE(r.migrations.empty());  // interval past n_gens: no boundary
    });
}

// -------------------------------------------------------------- fuzz runs

// Fuzzed register values on real runs: whatever the registers hold, every
// island completes its full generation count within the cycle bound (the
// "migration interconnect can never hang the cores" hardware claim) and
// the effective count respects the clamp. Behavioral and RT-level
// substrates stay bit-identical under fuzz, too.
TEST(MigrationRegisters, FuzzedRegistersNeverHangAndStayBitIdentical) {
    Rand rnd{0xF00DF00Du};
    for (int iter = 0; iter < 12; ++iter) {
        IslandConfig cfg;
        cfg.base.pop_size = static_cast<std::uint8_t>((rnd.next() & 1) != 0 ? 16 : 8);
        cfg.base.n_gens = 10;
        cfg.base.seed = static_cast<std::uint16_t>(rnd.next());
        cfg.islands = 1 + static_cast<unsigned>(rnd.next() % 4);
        cfg.topology = (rnd.next() & 1) != 0 ? Topology::kStar : Topology::kRing;
        cfg.migration.interval = static_cast<std::uint16_t>(rnd.next() % 40);  // incl. > n_gens
        cfg.migration.count = static_cast<std::uint16_t>(rnd.next() % 300);
        cfg.migration.policy =
            (rnd.next() & 1) != 0 ? ReplacePolicy::kRandom : ReplacePolicy::kWorst;

        cfg.backend = BackendKind::kBehavioral;
        IslandSystem beh(cfg);
        const unsigned cap =
            std::min(kMaxEmigrants, static_cast<unsigned>(cfg.base.pop_size / 2));
        EXPECT_LE(beh.effective_migration().count, cap) << "iter " << iter;
        const IslandResult b = beh.run();

        cfg.backend = BackendKind::kRtl;
        const IslandResult r = IslandSystem(cfg).run();  // throws on a missed bound

        ASSERT_EQ(b.islands.size(), r.islands.size()) << "iter " << iter;
        EXPECT_EQ(b.migrations, r.migrations) << "iter " << iter;
        for (std::size_t i = 0; i < b.islands.size(); ++i) {
            EXPECT_EQ(b.islands[i].generations, cfg.base.n_gens) << "iter " << iter;
            EXPECT_EQ(b.islands[i].best_trajectory, r.islands[i].best_trajectory)
                << "iter " << iter << " island " << i;
        }
        EXPECT_EQ(b.best_fitness, r.best_fitness) << "iter " << iter;
    }
}

// ---------------------------------------------------------- zero emigrants

// interval == 0 and count == 0 both mean "interconnect off": N islands
// evolve exactly as N fully independent single-island runs with the same
// seeds, on every substrate.
TEST(MigrationRegisters, ZeroEmigrantEnsembleEqualsIndependentRuns) {
    for (bool via_count : {false, true}) {
        IslandConfig cfg;
        cfg.base.pop_size = 16;
        cfg.base.n_gens = 16;
        cfg.base.seed = 0xB342;
        cfg.islands = 4;
        cfg.migration.interval = via_count ? 4 : 0;
        cfg.migration.count = via_count ? 0 : 2;
        cfg.backend = BackendKind::kRtl;
        IslandSystem sys(cfg);
        EXPECT_TRUE(sys.boundaries().empty());
        const IslandResult ens = sys.run();
        EXPECT_TRUE(ens.migrations.empty());
        for (unsigned i = 0; i < cfg.islands; ++i) {
            IslandConfig solo = cfg;
            solo.islands = 1;
            solo.seeds = {sys.seeds()[i]};
            const IslandResult one = IslandSystem(solo).run();
            EXPECT_EQ(ens.islands[i].best_fitness, one.islands[0].best_fitness) << "island " << i;
            EXPECT_EQ(ens.islands[i].best_candidate, one.islands[0].best_candidate)
                << "island " << i;
            EXPECT_EQ(ens.islands[i].best_trajectory, one.islands[0].best_trajectory)
                << "island " << i;
        }
    }
}

// ------------------------------------------------------------ bus readback

// The RT-level MigrationRegisterBus must latch the RAW handshake values —
// the clamp lives at the point of use, not in the register file.
TEST(MigrationRegisters, BusLatchesRawHandshakeValues) {
    IslandConfig cfg;
    cfg.base.pop_size = 16;
    cfg.base.n_gens = 8;
    cfg.base.seed = 0x2961;
    cfg.islands = 2;
    cfg.migration.interval = 4;
    cfg.migration.count = 9;  // raw 9, clamps to 8 (= pop/2) at use
    cfg.migration.policy = ReplacePolicy::kRandom;
    cfg.backend = BackendKind::kRtl;
    IslandSystem sys(cfg);
    const IslandResult r = sys.run();
    EXPECT_EQ(r.bus_interval_reg, 4u);
    EXPECT_EQ(r.bus_count_reg, pack_count_policy(cfg.migration));
    EXPECT_EQ(r.bus_count_reg & 0xFF, 9u);
    EXPECT_NE(r.bus_count_reg & 0x100, 0);
    EXPECT_EQ(r.effective.count, 8u);
    EXPECT_EQ(r.effective.policy, ReplacePolicy::kRandom);
}

// --------------------------------------------------- plan_migration() spec

std::vector<std::vector<Member>> two_pops() {
    // Island 0: fitness 40,10,30,20  island 1: fitness 5,50,15,25
    return {{{100, 40}, {101, 10}, {102, 30}, {103, 20}},
            {{200, 5}, {201, 50}, {202, 15}, {203, 25}}};
}

TEST(MigrationPlanSpec, RingSelectsTopEmigrantsAndWorstVictims) {
    auto pops = two_pops();
    MigrationConfig eff;
    eff.interval = 1;
    eff.count = 2;
    core::RngState rng(eff.mig_seed);
    const MigrationPlan plan = plan_migration(pops, Topology::kRing, eff, rng, 7);
    // Canonical order: destination ascending, rank ascending. Island 0
    // imports island 1's best two (201/50, 203/25); its own worst two are
    // slots 1 (fit 10) and 3 (fit 20).
    ASSERT_EQ(plan.records.size(), 4u);
    EXPECT_EQ(plan.records[0].gen, 7u);
    EXPECT_EQ(plan.records[0].from, 1);
    EXPECT_EQ(plan.records[0].to, 0);
    EXPECT_EQ(plan.records[0].src_slot, 1);
    EXPECT_EQ(plan.records[0].member, (Member{201, 50}));
    EXPECT_EQ(plan.records[0].dst_slot, 1);
    EXPECT_EQ(plan.records[0].victim, (Member{101, 10}));
    EXPECT_EQ(plan.records[1].member, (Member{203, 25}));
    EXPECT_EQ(plan.records[1].dst_slot, 3);
    // Island 1 imports island 0's best two (100/40, 102/30) over its worst
    // two (slot 0 fit 5, slot 2 fit 15).
    EXPECT_EQ(plan.records[2].to, 1);
    EXPECT_EQ(plan.records[2].member, (Member{100, 40}));
    EXPECT_EQ(plan.records[2].dst_slot, 0);
    EXPECT_EQ(plan.records[3].member, (Member{102, 30}));
    EXPECT_EQ(plan.records[3].dst_slot, 2);
}

TEST(MigrationPlanSpec, ExchangeNeverCascades) {
    // Simultaneous exchange: island 1's import of island 0's best must use
    // island 0's PRE-migration members even though island 0 imports first
    // in canonical order.
    auto pops = two_pops();
    MigrationConfig eff;
    eff.count = 2;
    core::RngState rng(eff.mig_seed);
    const MigrationPlan plan = plan_migration(pops, Topology::kRing, eff, rng, 1);
    apply_plan(plan, pops);
    EXPECT_EQ(pops[0][1], (Member{201, 50}));
    EXPECT_EQ(pops[0][3], (Member{203, 25}));
    EXPECT_EQ(pops[1][0], (Member{100, 40}));  // not 201 — no cascade
    EXPECT_EQ(pops[1][2], (Member{102, 30}));
}

TEST(MigrationPlanSpec, WorstVictimTiesSpareSlotZeroLongest) {
    // All fitness equal: worst-replaced breaks ties slot-DESCENDING so the
    // elite copy in slot 0 is overwritten last.
    std::vector<std::vector<Member>> pops = {{{1, 9}, {2, 9}, {3, 9}, {4, 9}},
                                             {{5, 9}, {6, 9}, {7, 9}, {8, 9}}};
    MigrationConfig eff;
    eff.count = 2;
    core::RngState rng(eff.mig_seed);
    const MigrationPlan plan = plan_migration(pops, Topology::kRing, eff, rng, 1);
    ASSERT_EQ(plan.records.size(), 4u);
    EXPECT_EQ(plan.records[0].dst_slot, 3);  // highest slots first
    EXPECT_EQ(plan.records[1].dst_slot, 2);
    // Emigrant ties break slot-ASCENDING.
    EXPECT_EQ(plan.records[0].src_slot, 0);
    EXPECT_EQ(plan.records[1].src_slot, 1);
}

TEST(MigrationPlanSpec, StarHubPoolsAndBroadcasts) {
    // Hub = island 0. Spokes 1 and 2 send their top-1; the hub imports the
    // best of the pooled candidates, and every spoke receives the hub's
    // PRE-import best.
    std::vector<std::vector<Member>> pops = {{{10, 60}, {11, 8}},   // hub: best 10/60
                                             {{20, 30}, {21, 4}},   // spoke 1: best 20/30
                                             {{30, 30}, {31, 90}}};  // spoke 2: best 31/90
    MigrationConfig eff;
    eff.count = 1;
    core::RngState rng(eff.mig_seed);
    const MigrationPlan plan = plan_migration(pops, Topology::kStar, eff, rng, 3);
    ASSERT_EQ(plan.records.size(), 3u);
    // Hub import: best of {20/30 from 1, 31/90 from 2} is 31/90.
    EXPECT_EQ(plan.records[0].to, 0);
    EXPECT_EQ(plan.records[0].from, 2);
    EXPECT_EQ(plan.records[0].member, (Member{31, 90}));
    // Broadcast: every spoke gets the hub's pre-import best (10/60).
    EXPECT_EQ(plan.records[1].to, 1);
    EXPECT_EQ(plan.records[1].from, 0);
    EXPECT_EQ(plan.records[1].member, (Member{10, 60}));
    EXPECT_EQ(plan.records[2].to, 2);
    EXPECT_EQ(plan.records[2].member, (Member{10, 60}));
}

TEST(MigrationPlanSpec, StarPoolTiesBreakSourceThenSlot) {
    // Pooled candidates with equal fitness: source island ascending, then
    // slot ascending.
    std::vector<std::vector<Member>> pops = {{{10, 1}, {11, 1}},
                                             {{20, 70}, {21, 2}},
                                             {{30, 70}, {31, 2}}};
    MigrationConfig eff;
    eff.count = 1;
    core::RngState rng(eff.mig_seed);
    const MigrationPlan plan = plan_migration(pops, Topology::kStar, eff, rng, 1);
    EXPECT_EQ(plan.records[0].from, 1);  // island 1 beats island 2 on the tie
    EXPECT_EQ(plan.records[0].member, (Member{20, 70}));
}

TEST(MigrationPlanSpec, RandomPolicyDrawsDistinctVictims) {
    auto pops = two_pops();
    MigrationConfig eff;
    eff.count = 2;
    eff.policy = ReplacePolicy::kRandom;
    core::RngState rng(eff.mig_seed);
    const MigrationPlan plan = plan_migration(pops, Topology::kRing, eff, rng, 1);
    ASSERT_EQ(plan.records.size(), 4u);
    EXPECT_NE(plan.records[0].dst_slot, plan.records[1].dst_slot);
    EXPECT_NE(plan.records[2].dst_slot, plan.records[3].dst_slot);
    // The draws advanced the interconnect RNG stream.
    EXPECT_NE(rng.state(), core::RngState(eff.mig_seed).state());
}

TEST(MigrationPlanSpec, DegenerateInputs) {
    MigrationConfig eff;
    eff.count = 1;
    core::RngState rng(eff.mig_seed);
    std::vector<std::vector<Member>> one = {{{1, 2}, {3, 4}}};
    EXPECT_TRUE(plan_migration(one, Topology::kRing, eff, rng, 1).records.empty());
    eff.count = 0;
    auto pops = two_pops();
    EXPECT_TRUE(plan_migration(pops, Topology::kRing, eff, rng, 1).records.empty());
    eff.count = 1;
    std::vector<std::vector<Member>> ragged = {{{1, 2}, {3, 4}}, {{5, 6}}};
    EXPECT_THROW(plan_migration(ragged, Topology::kRing, eff, rng, 1), std::invalid_argument);
    std::vector<std::vector<Member>> empty_pop = {{}, {}};
    EXPECT_THROW(plan_migration(empty_pop, Topology::kRing, eff, rng, 1), std::invalid_argument);
}

TEST(MigrationPlanSpec, BoundariesAreInteriorMultiples) {
    MigrationConfig eff;
    eff.interval = 8;
    eff.count = 2;
    EXPECT_EQ(migration_boundaries(eff, 4, 24), (std::vector<std::uint32_t>{8, 16}));
    EXPECT_EQ(migration_boundaries(eff, 4, 25), (std::vector<std::uint32_t>{8, 16, 24}));
    EXPECT_TRUE(migration_boundaries(eff, 1, 24).empty());  // one island: off
    eff.interval = 0;
    EXPECT_TRUE(migration_boundaries(eff, 4, 24).empty());
    eff.interval = 8;
    eff.count = 0;
    EXPECT_TRUE(migration_boundaries(eff, 4, 24).empty());
}

}  // namespace
}  // namespace gaip::island
