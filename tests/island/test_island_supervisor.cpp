// Supervisor-interplay tests for the island ensemble: the mission
// supervisor's checkpoint/rollback machinery applied per island. An SEU
// wedging ONE island mid-segment (between two migration barriers) must
// trip that island's segment watchdog, roll back ONLY that island to its
// last barrier checkpoint, and re-run the segment — while the ring keeps
// delivering: the final migrations, per-island trajectories, and best
// result are bit-identical to the fault-free golden run. Plus the NMR
// ensemble vote and the structured-abort path when the rollback budget is
// exhausted.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "fault/fault_model.hpp"
#include "island/supervised.hpp"
#include "rtl/scan.hpp"
#include "supervisor/supervisor.hpp"
#include "system/ga_system.hpp"
#include "trace/event.hpp"

namespace gaip::island {
namespace {

using supervisor::AttemptInfo;
using supervisor::BackendKind;
using supervisor::Rung;
using supervisor::Status;

IslandConfig base_islands() {
    IslandConfig cfg;
    cfg.base.pop_size = 16;
    cfg.base.n_gens = 24;
    cfg.base.seed = 0x2961;
    cfg.islands = 4;
    cfg.migration.interval = 8;  // boundaries at gens 8 and 16
    cfg.migration.count = 2;
    cfg.backend = BackendKind::kRtl;
    return cfg;
}

/// Wedge island `island` once, in its primary (non-resumed) pass of the
/// segment containing `cycle`, by flipping scan bit "state"[5] — an
/// invalid FSM encoding the watchdog is guaranteed to catch.
supervisor::CycleHook wedge_island_hook(unsigned island, std::uint64_t at_cycle, bool& fired) {
    return [island, at_cycle, &fired](system::GaSystem& sys, const AttemptInfo& info,
                                      std::uint64_t cycle) {
        if (fired || info.attempt != island || info.rung != Rung::kPrimary || info.resumed)
            return;
        if (cycle >= at_cycle && fault::scan_safe_state(sys.core().state())) {
            rtl::ScanChain& chain = sys.core().scan_chain();
            chain.flip(chain.position_of("state", 5));
            sys.core().input_changed();
            fired = true;
        }
    };
}

// The headline property: one upset core costs one island one segment
// re-run, never the ensemble — and reconverges bit-exactly.
TEST(SupervisedIslands, SeuMidRunRollsBackOnlyThatIsland) {
    const IslandConfig icfg = base_islands();
    const IslandResult golden = run_island_system(icfg);

    trace::MemorySink sink;
    SupervisedIslandConfig cfg;
    cfg.islands = icfg;
    cfg.sink = &sink;
    bool fired = false;
    // Cycle 9000 lands mid second segment (gens 8..16) for pop 16.
    cfg.hook = wedge_island_hook(1, 9000, fired);
    SupervisedIslandSystem sup(cfg);
    const SupervisedIslandReport rep = sup.run();

    EXPECT_TRUE(fired);
    ASSERT_EQ(rep.status, Status::kOk);
    EXPECT_EQ(rep.watchdog_trips, 1u);
    EXPECT_EQ(rep.rollbacks, 1u);
    // Checkpoints: one per island at gen 0 plus one per island per
    // migration barrier (gens 8, 16) = 4 x 3.
    EXPECT_EQ(rep.checkpoints, 12u);

    // Bit-identical reconvergence with the fault-free golden.
    EXPECT_EQ(rep.best_fitness, golden.best_fitness);
    EXPECT_EQ(rep.best_candidate, golden.best_candidate);
    EXPECT_EQ(rep.result.migrations, golden.migrations);
    ASSERT_EQ(rep.result.islands.size(), golden.islands.size());
    for (std::size_t i = 0; i < golden.islands.size(); ++i) {
        EXPECT_EQ(rep.result.islands[i].best_fitness, golden.islands[i].best_fitness)
            << "island " << i;
        EXPECT_EQ(rep.result.islands[i].best_trajectory, golden.islands[i].best_trajectory)
            << "island " << i;
    }

    // The telemetry stream names the rolled-back island — and only it.
    unsigned rollback_events = 0;
    for (const trace::TraceEvent& e : sink.events()) {
        if (e.kind == trace::kind::kIslandRollback) {
            ++rollback_events;
            EXPECT_EQ(e.u64("island"), 1u);
        }
    }
    EXPECT_EQ(rollback_events, 1u);
    // The ring kept delivering: both barriers appear with full payloads.
    unsigned barriers = 0;
    for (const trace::TraceEvent& e : sink.events())
        if (e.kind == trace::kind::kIslandBarrier) ++barriers;
    EXPECT_EQ(barriers, 2u);
}

// A fault-free supervised run is just the island system with bookkeeping:
// same result, zero trips, checkpoints at every barrier.
TEST(SupervisedIslands, FaultFreeRunMatchesPlainSystem) {
    const IslandConfig icfg = base_islands();
    const IslandResult golden = run_island_system(icfg);
    SupervisedIslandConfig cfg;
    cfg.islands = icfg;
    const SupervisedIslandReport rep = SupervisedIslandSystem(cfg).run();
    ASSERT_EQ(rep.status, Status::kOk);
    EXPECT_EQ(rep.watchdog_trips, 0u);
    EXPECT_EQ(rep.rollbacks, 0u);
    EXPECT_EQ(rep.checkpoints, 12u);
    EXPECT_EQ(rep.best_fitness, golden.best_fitness);
    EXPECT_EQ(rep.best_candidate, golden.best_candidate);
    EXPECT_EQ(rep.result.migrations, golden.migrations);
    EXPECT_FALSE(rep.voted);
}

// NMR: the island job is bit-exact per replica, so an undisturbed
// 3-replica vote is unanimous and delivers the plain result.
TEST(SupervisedIslands, NmrVoteUnanimousWhenUndisturbed) {
    const IslandConfig icfg = base_islands();
    const IslandResult golden = run_island_system(icfg);
    trace::MemorySink sink;
    SupervisedIslandConfig cfg;
    cfg.islands = icfg;
    cfg.nmr = 3;
    cfg.sink = &sink;
    const SupervisedIslandReport rep = SupervisedIslandSystem(cfg).run();
    ASSERT_EQ(rep.status, Status::kOk);
    EXPECT_TRUE(rep.voted);
    EXPECT_EQ(rep.vote_agree, 3u);
    EXPECT_EQ(rep.best_fitness, golden.best_fitness);
    EXPECT_EQ(rep.best_candidate, golden.best_candidate);
    bool saw_vote = false;
    for (const trace::TraceEvent& e : sink.events())
        if (e.kind == trace::kind::kSupVote) saw_vote = true;
    EXPECT_TRUE(saw_vote);
}

// A persistent wedge with the rollback budget at zero must end in a
// structured abort (status, reason, sup_abort event) — never a hang or an
// exception escaping run().
TEST(SupervisedIslands, ExhaustedRollbackBudgetAborts) {
    trace::MemorySink sink;
    SupervisedIslandConfig cfg;
    cfg.islands = base_islands();
    cfg.max_retries = 0;
    cfg.sink = &sink;
    bool fired = false;
    cfg.hook = wedge_island_hook(2, 9000, fired);
    const SupervisedIslandReport rep = SupervisedIslandSystem(cfg).run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(rep.status, Status::kAborted);
    EXPECT_FALSE(rep.ok());
    EXPECT_GE(rep.watchdog_trips, 1u);
    EXPECT_EQ(rep.rollbacks, 0u);
    EXPECT_FALSE(rep.abort_reason.empty());
    bool saw_abort = false;
    for (const trace::TraceEvent& e : sink.events())
        if (e.kind == trace::kind::kSupAbort) saw_abort = true;
    EXPECT_TRUE(saw_abort);
}

// The checkpoint/rollback machinery is the RT-level scan-chain path; the
// wrapper rejects the other substrates up front.
TEST(SupervisedIslands, NonRtlBackendThrows) {
    SupervisedIslandConfig cfg;
    cfg.islands = base_islands();
    cfg.islands.backend = BackendKind::kBehavioral;
    EXPECT_THROW(SupervisedIslandSystem{cfg}, std::invalid_argument);
    cfg.islands.backend = BackendKind::kGateLane;
    EXPECT_THROW(SupervisedIslandSystem{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace gaip::island
