// Golden-value regression suite for the N-core island system: pins the
// speedup-vs-cores makespan table (fixed 64-member total population split
// over N gate-lane islands) and the quality-vs-topology best-fitness table
// (isolated / ring / star over the paper seed schedule) of the verified
// build. The island stack is bit-exact across substrates, so these numbers
// are deterministic; any change to the migration spec, barrier placement,
// RNG consumption, or lane stall accounting trips a row immediately.
//
// Regenerate deliberately (after an intentional semantic change) with:
//   ./build/bench/bench_island_scaling   (bench_out/BENCH_islands.json)
#include <gtest/gtest.h>

#include <cstdint>

#include "bench/common.hpp"
#include "gates/compiled.hpp"
#include "island/island.hpp"
#include "supervisor/supervisor.hpp"

namespace gaip::island {
namespace {

// ---------------------------------------------------------------- speedup

struct ScalingGolden {
    unsigned islands;
    std::uint64_t makespan;  ///< wall GA cycles, barrier stalls included
    std::uint16_t best_fitness;
    std::uint16_t best_candidate;
};

// Fixed total population 64 split over N islands (pop 64/N each), 12
// generations, seed 0x2961, ring, interval 4, count 2, gate-lane
// interpreter substrate. Cycle counts are exact: the lane block models
// the per-generation handshake cost and the barrier stalls of a real
// N-core fabric.
const ScalingGolden kScaling[] = {
    {1, 57678, 8143, 65162},
    {2, 16906, 7668, 61200},
    {4, 5558, 8009, 64449},
    {8, 1980, 7845, 63008},
};

IslandResult run_scaling(unsigned n) {
    IslandConfig cfg;
    cfg.base.pop_size = static_cast<std::uint8_t>(64 / n);
    cfg.base.n_gens = 12;
    cfg.base.seed = 0x2961;
    cfg.islands = n;
    cfg.migration.interval = 4;
    cfg.migration.count = 2;
    cfg.backend = supervisor::BackendKind::kGateLane;
    cfg.gate_backend = gates::Backend::kInterp;
    return run_island_system(cfg);
}

class IslandScalingGolds : public ::testing::TestWithParam<ScalingGolden> {};

TEST_P(IslandScalingGolds, MakespanAndBestPinned) {
    const ScalingGolden& g = GetParam();
    const IslandResult r = run_scaling(g.islands);
    EXPECT_EQ(r.makespan_cycles, g.makespan);
    EXPECT_EQ(r.best_fitness, g.best_fitness);
    EXPECT_EQ(r.best_candidate, g.best_candidate);
}

INSTANTIATE_TEST_SUITE_P(Table, IslandScalingGolds, ::testing::ValuesIn(kScaling),
                         [](const ::testing::TestParamInfo<ScalingGolden>& info) {
                             return "N" + std::to_string(info.param.islands);
                         });

// The headline scaling property behind the pinned numbers: for a fixed
// total population, the N-core makespan shrinks strictly with every
// doubling of the island count (the per-generation handshake cost is
// superlinear in subpopulation size, so splitting wins even after paying
// the barrier stalls).
TEST(IslandScaling, SpeedupIsMonotoneInCores) {
    for (std::size_t i = 1; i < std::size(kScaling); ++i)
        EXPECT_LT(kScaling[i].makespan, kScaling[i - 1].makespan)
            << "N=" << kScaling[i].islands << " vs N=" << kScaling[i - 1].islands;
}

// ---------------------------------------------------- quality vs topology

struct TopologyGolden {
    std::uint16_t seed;
    std::uint16_t isolated_fit, isolated_ind;
    std::uint16_t ring_fit, ring_ind;
    std::uint16_t star_fit, star_ind;
};

// 4 islands, pop 16 each, 24 generations, interval 8, count 2, behavioral
// substrate (bit-identical to RTL and gate-lane by the differential
// harness), over the first three paper seeds.
const TopologyGolden kTopology[] = {
    {0x2961, 8019, 64448, 8019, 64448, 8190, 65520},
    {0x061F, 8174, 65515, 8190, 65520, 8190, 65520},
    {0xB342, 8085, 64795, 8098, 64798, 7902, 64782},
};

IslandResult run_topology(std::uint16_t seed, std::uint16_t interval, Topology topo) {
    IslandConfig cfg;
    cfg.base.pop_size = 16;
    cfg.base.n_gens = 24;
    cfg.base.seed = seed;
    cfg.islands = 4;
    cfg.migration.interval = interval;
    cfg.migration.count = 2;
    cfg.topology = topo;
    cfg.backend = supervisor::BackendKind::kBehavioral;
    return run_island_system(cfg);
}

class IslandTopologyGolds : public ::testing::TestWithParam<TopologyGolden> {};

TEST_P(IslandTopologyGolds, BestPerTopologyPinned) {
    const TopologyGolden& g = GetParam();
    const IslandResult iso = run_topology(g.seed, 0, Topology::kRing);
    EXPECT_EQ(iso.best_fitness, g.isolated_fit);
    EXPECT_EQ(iso.best_candidate, g.isolated_ind);
    const IslandResult ring = run_topology(g.seed, 8, Topology::kRing);
    EXPECT_EQ(ring.best_fitness, g.ring_fit);
    EXPECT_EQ(ring.best_candidate, g.ring_ind);
    const IslandResult star = run_topology(g.seed, 8, Topology::kStar);
    EXPECT_EQ(star.best_fitness, g.star_fit);
    EXPECT_EQ(star.best_candidate, g.star_ind);
}

INSTANTIATE_TEST_SUITE_P(Table, IslandTopologyGolds, ::testing::ValuesIn(kTopology),
                         [](const ::testing::TestParamInfo<TopologyGolden>& info) {
                             char buf[16];
                             std::snprintf(buf, sizeof buf, "Seed0x%04X", info.param.seed);
                             return std::string(buf);
                         });

// Aggregate property behind the table: over the seed schedule, migration
// never hurts on average — each connected topology's summed best fitness
// is at least the isolated ensemble's (individual seeds may go either
// way; the stochastic benefit shows in the aggregate).
TEST(IslandTopology, MigrationHelpsOnAverage) {
    unsigned iso = 0, ring = 0, star = 0;
    for (const TopologyGolden& g : kTopology) {
        iso += g.isolated_fit;
        ring += g.ring_fit;
        star += g.star_fit;
    }
    EXPECT_GE(ring, iso);
    EXPECT_GE(star, iso);
}

}  // namespace
}  // namespace gaip::island
