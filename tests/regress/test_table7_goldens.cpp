// Golden-value regression suite for the Table VII reproduction: the 24
// hardware parameter settings of the mBF6_2 sweep (6 paper seeds x pop
// {32,64} x XR {10,12}, 64 generations) run as ONE 24-lane batched
// simulation of the complete gate-level core + RNG, and every lane must
// keep producing the exact best fitness recorded from the verified build
// (where all 24 lanes were bit-exact against the RT-level GaSystem).
//
// Regenerate deliberately (after an intentional semantic change) with:
//   ./build/bench/bench_table7_gates   (bench_out/table7_gates.csv)
#include <gtest/gtest.h>

#include "bench/bench_tables7_9_common.hpp"
#include "bench/gate_batch_runner.hpp"

namespace gaip {
namespace {

// kPaperSeeds-major, kSweepCells-minor: lane = seed_idx * 4 + cell_idx with
// cells ordered {P32/XR10, P32/XR12, P64/XR10, P64/XR12}.
constexpr std::uint16_t kExpectBest[24] = {
    7667, 8190, 8101, 8145,  // seed 0x2961
    7584, 7584, 7925, 7968,  // seed 0x061F
    7922, 7838, 8190, 7924,  // seed 0xB342
    7838, 8101, 8056, 8094,  // seed 0xAAAA
    7924, 8055, 7924, 7924,  // seed 0xA0A0
    7667, 7541, 7752, 7778,  // seed 0xFFFF
};

TEST(Table7Golds, BatchedGateSweepReproducesPinnedBestFitness) {
    std::vector<core::GaParameters> lanes;
    for (const std::uint16_t seed : bench::kPaperSeeds)
        for (const bench::SweepCell& c : bench::kSweepCells)
            lanes.push_back({.pop_size = c.pop, .n_gens = 64, .xover_threshold = c.xr,
                             .mut_threshold = 1, .seed = seed});
    ASSERT_EQ(lanes.size(), 24u);

    bench::BatchGateRunner runner(fitness::FitnessId::kMBf6_2, lanes);
    const std::vector<bench::BatchLaneResult> batch = runner.run();
    ASSERT_EQ(batch.size(), 24u);

    std::uint16_t best_overall = 0;
    for (std::size_t k = 0; k < batch.size(); ++k) {
        EXPECT_TRUE(batch[k].finished) << "lane " << k << " did not reach GA_done";
        EXPECT_EQ(batch[k].best_fitness, kExpectBest[k])
            << "lane " << k << " (seed 0x" << std::hex << lanes[k].seed << std::dec << ", pop "
            << unsigned(lanes[k].pop_size) << ", xr " << unsigned(lanes[k].xover_threshold)
            << ")";
        best_overall = std::max(best_overall, batch[k].best_fitness);
    }
    // Headline claim of the sweep: the grid reaches the mBF6_2 optimum.
    EXPECT_EQ(best_overall, fitness::grid_optimum(fitness::FitnessId::kMBf6_2).best_value);
}

}  // namespace
}  // namespace gaip
