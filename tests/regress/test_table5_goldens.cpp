// Golden-value regression suite for the Table V reproduction: the ten
// RT-level parameter settings (BF6 / F2 / F3, paper seeds, 32 generations)
// must keep producing the exact headline numbers — best fitness found and
// the settling ("convergence") generation — recorded from the verified
// build. Any change to the RNG, operators, FSM sequencing, or the monitor
// statistics that shifts GA semantics trips a row immediately.
//
// Regenerate deliberately (after an intentional semantic change) with:
//   ./build/bench/bench_table5_rtl_simulations   (bench_out/table5.csv)
#include <gtest/gtest.h>

#include <span>

#include "bench/common.hpp"
#include "fitness/functions.hpp"
#include "util/stats.hpp"

namespace gaip {
namespace {

using fitness::FitnessId;

struct Table5Golden {
    int run;
    FitnessId fn;
    std::uint16_t seed;
    std::uint8_t pop;
    std::uint8_t xr;
    std::uint16_t expect_best;
    std::size_t expect_conv;
};

// Values from bench_out/table5.csv of the verified build (RTL == gates ==
// behavioral). The paper's own numbers differ row-by-row (different CA
// taps); these pin OUR reproduction so regressions are detectable.
const Table5Golden kGoldens[] = {
    {1, FitnessId::kBf6, 45890, 32, 10, 4216, 29},
    {2, FitnessId::kBf6, 45890, 64, 10, 4238, 29},
    {3, FitnessId::kBf6, 10593, 32, 10, 4114, 30},
    {4, FitnessId::kBf6, 1567, 32, 10, 4273, 27},
    {5, FitnessId::kBf6, 1567, 32, 12, 4273, 32},
    {6, FitnessId::kF2, 45890, 32, 10, 3044, 22},
    {7, FitnessId::kF2, 45890, 64, 10, 3060, 16},
    {8, FitnessId::kF2, 10593, 64, 10, 3060, 22},
    {9, FitnessId::kF2, 10593, 32, 12, 3044, 19},
    {10, FitnessId::kF3, 1567, 32, 10, 2920, 12},
};

class Table5Golds : public ::testing::TestWithParam<Table5Golden> {};

TEST_P(Table5Golds, BestFitnessAndConvergenceGeneration) {
    const Table5Golden& g = GetParam();
    const core::GaParameters p{.pop_size = g.pop, .n_gens = 32, .xover_threshold = g.xr,
                               .mut_threshold = 1, .seed = g.seed};
    const core::RunResult r = bench::run_hw(g.fn, p);

    EXPECT_EQ(r.best_fitness, g.expect_best)
        << "run " << g.run << " (" << fitness::fitness_name(g.fn) << ", seed " << g.seed << ")";

    std::vector<double> mean;
    for (const auto& s : r.history) mean.push_back(s.mean_fitness());
    const std::size_t conv =
        util::settling_generation(std::span<const double>(mean.data(), mean.size()));
    EXPECT_EQ(conv, g.expect_conv) << "run " << g.run << " settling generation moved";
}

INSTANTIATE_TEST_SUITE_P(PaperRows, Table5Golds, ::testing::ValuesIn(kGoldens));

}  // namespace
}  // namespace gaip
