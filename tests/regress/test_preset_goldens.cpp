// Golden-value regression suite for the Table IV PRESET modes: each of the
// three built-in parameter/seed presets must keep producing the exact
// result recorded from the verified build, bit-exact on every simulation
// substrate (behavioral, RT-level, compiled gates). The presets are the
// paper's fault-tolerance fallback — the mission supervisor delivers them
// verbatim when the programmed job is unrecoverable — so a drifting preset
// result silently corrupts every degraded recovery.
//
// The long combinations (RT-level preset 3 is ~72M cycles, gate-level
// presets 2/3 even more) only run when GAIP_HEAVY_TESTS is set; the cheap
// rows cover every substrate x preset-1 plus behavioral everywhere.
#include <gtest/gtest.h>

#include <cstdlib>

#include "bench/gate_batch_runner.hpp"
#include "core/behavioral.hpp"
#include "core/params.hpp"
#include "fitness/functions.hpp"
#include "prng/rng_module.hpp"
#include "system/ga_system.hpp"

namespace gaip {
namespace {

using fitness::FitnessId;

constexpr FitnessId kFn = FitnessId::kMBf6_2;

struct PresetGolden {
    std::uint8_t preset;
    std::uint16_t expect_best;
    std::uint16_t expect_candidate;
};

// Recorded from the verified build (all three substrates agree).
const PresetGolden kGoldens[] = {
    {1, 8190, 0xFFF0},
    {2, 8190, 0xFFF1},
    {3, 8190, 0xFFF0},
};

bool heavy_enabled() { return std::getenv("GAIP_HEAVY_TESTS") != nullptr; }

class PresetGolds : public ::testing::TestWithParam<PresetGolden> {};

TEST_P(PresetGolds, BehavioralMatchesGolden) {
    const PresetGolden& g = GetParam();
    core::GaParameters p = core::preset_parameters(g.preset);
    p.seed = prng::RngModule::effective_seed(g.preset, 0);
    const core::RunResult r = core::run_behavioral_ga(
        p, [](std::uint16_t x) { return fitness::fitness_u16(kFn, x); });
    EXPECT_EQ(r.best_fitness, g.expect_best) << "preset " << int{g.preset};
    EXPECT_EQ(r.best_candidate, g.expect_candidate) << "preset " << int{g.preset};
}

TEST_P(PresetGolds, RtLevelMatchesGolden) {
    const PresetGolden& g = GetParam();
    if (g.preset == 3 && !heavy_enabled())
        GTEST_SKIP() << "preset 3 RT-level (~72M cycles): set GAIP_HEAVY_TESTS";
    // The fault-tolerance scenario of Table IV: init handshake skipped, the
    // preset pins alone carry the run.
    system::GaSystemConfig scfg;
    scfg.preset = g.preset;
    scfg.skip_initialization = true;
    scfg.internal_fems = {kFn};
    scfg.keep_populations = false;
    system::GaSystem sys(scfg);
    const core::RunResult r = sys.run();
    EXPECT_EQ(r.best_fitness, g.expect_best) << "preset " << int{g.preset};
    EXPECT_EQ(r.best_candidate, g.expect_candidate) << "preset " << int{g.preset};
}

TEST_P(PresetGolds, CompiledGatesMatchGolden) {
    const PresetGolden& g = GetParam();
    if (g.preset != 1 && !heavy_enabled())
        GTEST_SKIP() << "gate-level presets 2/3 are heavy: set GAIP_HEAVY_TESTS";
    bench::BatchGateRunner runner(kFn, {core::preset_parameters(g.preset)});
    runner.set_lane_preset(0, g.preset);
    const std::vector<bench::BatchLaneResult> res = runner.run();
    ASSERT_TRUE(res.front().finished);
    EXPECT_EQ(res.front().best_fitness, g.expect_best) << "preset " << int{g.preset};
    EXPECT_EQ(res.front().best_candidate, g.expect_candidate) << "preset " << int{g.preset};
}

INSTANTIATE_TEST_SUITE_P(TableIV, PresetGolds, ::testing::ValuesIn(kGoldens),
                         [](const ::testing::TestParamInfo<PresetGolden>& info) {
                             return "preset" + std::to_string(info.param.preset);
                         });

}  // namespace
}  // namespace gaip
