// Documentation-drift checks: the docs/ tree must stay in sync with the
// code. Fails when a relative markdown link is broken, a src/ subsystem is
// missing from docs/ARCHITECTURE.md, a bench_out/ artifact is not covered
// by docs/BENCH_DATA.md, or a docs/ page is missing from the docs index.
// GAIP_SOURCE_DIR is injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "service/journal.hpp"
#include "service/protocol.hpp"

namespace fs = std::filesystem;

namespace {

const fs::path kRepo = GAIP_SOURCE_DIR;

std::string slurp(const fs::path& p) {
    std::ifstream f(p);
    EXPECT_TRUE(f.good()) << p;
    return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

/// The markdown files whose links and content the drift checks cover.
std::vector<fs::path> doc_files() {
    std::vector<fs::path> files = {kRepo / "README.md", kRepo / "DESIGN.md"};
    for (const auto& e : fs::directory_iterator(kRepo / "docs"))
        if (e.is_regular_file() && e.path().extension() == ".md") files.push_back(e.path());
    return files;
}

/// Extract every inline markdown link target `](target)` in `text`.
std::vector<std::string> link_targets(const std::string& text) {
    std::vector<std::string> out;
    for (std::size_t at = text.find("]("); at != std::string::npos;
         at = text.find("](", at + 2)) {
        const std::size_t close = text.find(')', at + 2);
        if (close == std::string::npos) break;
        out.push_back(text.substr(at + 2, close - at - 2));
    }
    return out;
}

/// Backticked tokens in `text` (the artifact names/patterns of BENCH_DATA.md).
std::vector<std::string> backticked(const std::string& text) {
    std::vector<std::string> out;
    for (std::size_t open = text.find('`'); open != std::string::npos;
         open = text.find('`', open + 1)) {
        const std::size_t close = text.find('`', open + 1);
        if (close == std::string::npos) break;
        out.push_back(text.substr(open + 1, close - open - 1));
        open = close;
    }
    return out;
}

/// `pattern` matches `name` exactly, or around a single `*` wildcard.
bool covers(const std::string& pattern, const std::string& name) {
    const std::size_t star = pattern.find('*');
    if (star == std::string::npos) return pattern == name;
    const std::string prefix = pattern.substr(0, star);
    const std::string suffix = pattern.substr(star + 1);
    return name.size() >= prefix.size() + suffix.size() &&
           name.compare(0, prefix.size(), prefix) == 0 &&
           name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

TEST(Docs, RelativeMarkdownLinksResolve) {
    for (const fs::path& file : doc_files()) {
        const std::string text = slurp(file);
        for (std::string target : link_targets(text)) {
            if (target.find("://") != std::string::npos) continue;  // external URL
            if (target.rfind("mailto:", 0) == 0) continue;
            const std::size_t hash = target.find('#');
            if (hash != std::string::npos) target.resize(hash);  // strip anchor
            if (target.empty()) continue;                        // pure in-page anchor
            const fs::path resolved = file.parent_path() / target;
            EXPECT_TRUE(fs::exists(resolved))
                << file.filename() << " links to missing " << target;
        }
    }
}

TEST(Docs, ArchitectureNamesEverySrcSubsystem) {
    const std::string arch = slurp(kRepo / "docs" / "ARCHITECTURE.md");
    for (const auto& e : fs::directory_iterator(kRepo / "src")) {
        if (!e.is_directory()) continue;
        const std::string mention = "src/" + e.path().filename().string() + "/";
        EXPECT_NE(arch.find(mention), std::string::npos)
            << "docs/ARCHITECTURE.md does not document `" << mention << "`";
    }
}

TEST(Docs, BenchDataCoversEveryArtifact) {
    const fs::path bench_out = kRepo / "bench_out";
    if (!fs::exists(bench_out)) GTEST_SKIP() << "no bench_out/ (benches not run)";
    const std::vector<std::string> patterns = backticked(slurp(kRepo / "docs" / "BENCH_DATA.md"));
    for (const auto& e : fs::directory_iterator(bench_out)) {
        if (!e.is_regular_file()) continue;
        const std::string name = e.path().filename().string();
        bool documented = false;
        for (const std::string& p : patterns)
            if (covers(p, name)) {
                documented = true;
                break;
            }
        EXPECT_TRUE(documented)
            << "bench_out/" << name << " has no matching entry in docs/BENCH_DATA.md";
    }
}

TEST(Docs, GaipdDocumentsEveryVerb) {
    // Every control verb of the service protocol (src/service/protocol.hpp
    // kVerbs) must be documented in docs/GAIPD.md — in backticks, so a
    // passing mention in prose doesn't count as documentation.
    const std::string doc = slurp(kRepo / "docs" / "GAIPD.md");
    const auto backtick = [](const char* word) {
        return std::string("`").append(word).append("`");
    };
    for (const char* verb : gaip::service::kVerbs)
        EXPECT_NE(doc.find(backtick(verb)), std::string::npos)
            << "docs/GAIPD.md does not document the `" << verb << "` verb";
    // The structured error codes are part of the same contract.
    for (const char* code :
         {gaip::service::err::kBadFrame, gaip::service::err::kOversized,
          gaip::service::err::kUnknownVerb, gaip::service::err::kUnknownField,
          gaip::service::err::kBadField, gaip::service::err::kQueueFull,
          gaip::service::err::kNotFound, gaip::service::err::kShuttingDown,
          gaip::service::err::kOverloaded, gaip::service::err::kTooManyConns})
        EXPECT_NE(doc.find(backtick(code)), std::string::npos)
            << "docs/GAIPD.md does not document the `" << code << "` error code";
    // The journal record grammar is a recovery contract: every record kind
    // must be documented (the durability section's format table).
    for (const char* kind : gaip::service::kJournalKinds)
        EXPECT_NE(doc.find(backtick(kind)), std::string::npos)
            << "docs/GAIPD.md does not document the `" << kind << "` journal record";
}

TEST(Docs, IndexLinksEveryDocsPage) {
    const std::string index = slurp(kRepo / "docs" / "README.md");
    for (const auto& e : fs::directory_iterator(kRepo / "docs")) {
        if (!e.is_regular_file() || e.path().extension() != ".md") continue;
        const std::string name = e.path().filename().string();
        if (name == "README.md") continue;
        EXPECT_NE(index.find("(" + name + ")"), std::string::npos)
            << "docs/README.md index does not link " << name;
    }
}

}  // namespace
