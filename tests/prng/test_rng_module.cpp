// RTL tests of the RNG module: seed capture from the init bus, preset-seed
// selection, and the rn_next advance protocol.
#include <gtest/gtest.h>

#include "prng/ca_prng.hpp"
#include "prng/rng_module.hpp"
#include "rtl/kernel.hpp"

namespace gaip::prng {
namespace {

struct RngBench {
    rtl::Kernel kernel;
    rtl::Clock& clk = kernel.add_clock("clk", 50'000'000);
    rtl::Wire<bool> ga_load;
    rtl::Wire<std::uint8_t> index;
    rtl::Wire<std::uint16_t> value;
    rtl::Wire<bool> data_valid;
    rtl::Wire<std::uint8_t> preset;
    rtl::Wire<bool> start;
    rtl::Wire<bool> rn_next;
    rtl::Wire<std::uint16_t> rn;
    RngModule rng{RngModulePorts{ga_load, index, value, data_valid, preset, start, rn_next, rn},
                  RngKind::kCellularAutomaton};

    RngBench() {
        kernel.bind(rng, clk);
        kernel.reset();
    }

    void cycle(unsigned n = 1) { kernel.run_cycles(clk, n); }

    void load_seed(std::uint16_t seed) {
        ga_load.drive(true);
        index.drive(5);
        value.drive(seed);
        data_valid.drive(true);
        cycle();
        ga_load.drive(false);
        data_valid.drive(false);
        cycle();
    }

    void pulse_start() {
        start.drive(true);
        cycle();
        start.drive(false);
        cycle();
    }
};

TEST(RngModule, CapturesSeedFromInitBusIndexFive) {
    RngBench b;
    b.load_seed(0xBEEF);
    EXPECT_EQ(b.rng.seed_register(), 0xBEEF);
}

TEST(RngModule, IgnoresOtherIndices) {
    RngBench b;
    b.ga_load.drive(true);
    b.index.drive(3);
    b.value.drive(0x1234);
    b.data_valid.drive(true);
    b.cycle(2);
    EXPECT_EQ(b.rng.seed_register(), 1u) << "reset seed must be untouched";
}

TEST(RngModule, SeedZeroRemapped) {
    RngBench b;
    b.load_seed(0);
    EXPECT_EQ(b.rng.seed_register(), 1u);
}

TEST(RngModule, StartLoadsUserSeedInMode00) {
    RngBench b;
    b.load_seed(0x2961);
    b.preset.drive(0);
    b.pulse_start();
    EXPECT_EQ(b.rng.current_state(), 0x2961);
    EXPECT_EQ(b.rn.read(), 0x2961);
}

TEST(RngModule, PresetModesSelectBuiltInSeeds) {
    for (std::uint8_t mode = 1; mode <= 3; ++mode) {
        RngBench b;
        b.load_seed(0x1111);  // must be ignored in preset modes
        b.preset.drive(mode);
        b.pulse_start();
        EXPECT_EQ(b.rng.current_state(), kPresetSeeds[mode - 1]) << "mode " << int(mode);
    }
}

TEST(RngModule, RnNextAdvancesExactlyOneStep) {
    RngBench b;
    b.load_seed(0x061F);
    b.pulse_start();

    CaPrng ref(0x061F);
    for (int i = 0; i < 20; ++i) {
        b.rn_next.drive(true);
        b.cycle();
        b.rn_next.drive(false);
        EXPECT_EQ(b.rn.read(), ref.next16()) << "step " << i;
        b.cycle(2);  // idle cycles must not advance the state
        EXPECT_EQ(b.rng.current_state(), ref.state());
    }
}

TEST(RngModule, HeldStartDoesNotReseedMidRun) {
    RngBench b;
    b.load_seed(0xB342);
    // Hold start high across several cycles, then begin consuming.
    b.start.drive(true);
    b.cycle(3);
    b.rn_next.drive(true);
    b.cycle(1);
    // Even with start still high, the edge detector must let rn_next win.
    EXPECT_EQ(b.rng.current_state(), ca_step(0xB342, kRule150Mask));
    b.start.drive(false);
    b.rn_next.drive(false);
}

TEST(RngModule, EffectiveSeedResolution) {
    EXPECT_EQ(RngModule::effective_seed(0, 0x1234), 0x1234);
    EXPECT_EQ(RngModule::effective_seed(0, 0), kPresetSeeds[0]);
    EXPECT_EQ(RngModule::effective_seed(1, 0x1234), kPresetSeeds[0]);
    EXPECT_EQ(RngModule::effective_seed(2, 0x1234), kPresetSeeds[1]);
    EXPECT_EQ(RngModule::effective_seed(3, 0x1234), kPresetSeeds[2]);
}

// The canonical output streams: first word on the rn bus after start is the
// resolved seed itself, each rn_next pulse then appends one CA step. These
// are the documented sequences for the three built-in preset modes — any
// change to the CA rule mask, the hybrid 90/150 layout, or the seed
// resolution rewrites them and must be deliberate.
TEST(RngModule, PresetSeedsProduceDocumentedSequences) {
    struct Doc {
        std::uint8_t mode;
        std::uint16_t words[8];
    };
    const Doc docs[] = {
        {1, {0x2961, 0x4652, 0xAF9D, 0x08E8, 0x158C, 0x21D2, 0x535D, 0x8F08}},
        {2, {0x061F, 0x0F2D, 0x19E0, 0x3F10, 0x61B8, 0xF394, 0x9EF6, 0x72A3}},
        {3, {0xB342, 0x3F25, 0x61FC, 0xF33A, 0x9FD1, 0x705A, 0xD881, 0xDD42}},
    };
    for (const Doc& d : docs) {
        RngBench b;
        b.load_seed(0x5555);  // preset modes must override the user seed
        b.preset.drive(d.mode);
        b.pulse_start();
        EXPECT_EQ(b.rn.read(), d.words[0]) << "mode " << int(d.mode) << " word 0";
        for (int i = 1; i < 8; ++i) {
            b.rn_next.drive(true);
            b.cycle();
            b.rn_next.drive(false);
            EXPECT_EQ(b.rn.read(), d.words[i]) << "mode " << int(d.mode) << " word " << i;
            b.cycle();
        }
    }
}

TEST(RngModule, ProgrammableSeedPathProducesDocumentedSequence) {
    const std::uint16_t doc[8] = {0x1234, 0x2D46, 0x4C2B, 0xBE6B,
                                  0x23CB, 0x567B, 0x87F3, 0x4C2F};
    RngBench b;
    b.load_seed(0x1234);
    b.preset.drive(0);
    b.pulse_start();
    EXPECT_EQ(b.rn.read(), doc[0]);
    for (int i = 1; i < 8; ++i) {
        b.rn_next.drive(true);
        b.cycle();
        b.rn_next.drive(false);
        EXPECT_EQ(b.rn.read(), doc[i]) << "word " << i;
        b.cycle();
    }
}

TEST(RngModule, StateRegistersAreScannable) {
    RngBench b;
    unsigned bits = 0;
    for (const rtl::RegBase* r : b.rng.registers()) bits += r->width();
    EXPECT_EQ(bits, 33u);  // 16 seed + 16 state + 1 start edge detector
}

}  // namespace
}  // namespace gaip::prng
