#include <gtest/gtest.h>

#include <set>

#include "prng/ca_prng.hpp"
#include "prng/lfsr.hpp"
#include "prng/quality.hpp"

namespace gaip::prng {
namespace {

TEST(CaStep, Rule90IsLeftXorRight) {
    // Pure rule-90 automaton (mask 0): a single set cell spawns both
    // neighbors (Pascal's-triangle-mod-2 behavior).
    EXPECT_EQ(ca_step(0b0000'0100, 0), 0b0000'1010);
    EXPECT_EQ(ca_step(0b0000'1010, 0), 0b0001'0001);
}

TEST(CaStep, Rule150AddsSelfTerm) {
    // Pure rule-150 (mask all ones): left ^ self ^ right.
    EXPECT_EQ(ca_step(0b0000'0100, 0xFFFF), 0b0000'1110);
}

TEST(CaStep, NullBoundary) {
    // The edge cells see zero outside the array.
    EXPECT_EQ(ca_step(0x8000, 0), 0x4000);  // MSB cell: only right neighbor
    EXPECT_EQ(ca_step(0x0001, 0), 0x0002);  // LSB cell: only left neighbor
}

TEST(CaStep, ZeroIsFixedPoint) {
    EXPECT_EQ(ca_step(0, kRule150Mask), 0);
}

TEST(CaStep, LinearOverGf2) {
    // The hybrid CA is linear: step(a ^ b) == step(a) ^ step(b).
    const std::uint16_t a = 0x1234, b = 0xBEEF;
    EXPECT_EQ(ca_step(a ^ b, kRule150Mask),
              ca_step(a, kRule150Mask) ^ ca_step(b, kRule150Mask));
}

TEST(CaPrng, MaximalPeriod) {
    // The chosen rule vector must cycle through all 2^16 - 1 nonzero states.
    CaPrng g(1);
    const std::uint64_t period =
        measure_period([&] { return g.next16(); }, g.next16(), 1u << 17);
    EXPECT_EQ(period, 65535u);
}

TEST(CaPrng, SeedZeroRemapsToOne) {
    CaPrng g(0);
    EXPECT_EQ(g.state(), 1u);
    g.seed(0);
    EXPECT_EQ(g.state(), 1u);
    EXPECT_NE(g.next16(), 0u) << "the automaton must never enter the zero fixed point";
}

TEST(CaPrng, SameSeedSameSequence) {
    CaPrng a(0x2961), b(0x2961);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next16(), b.next16());
}

TEST(CaPrng, DifferentSeedsDivergeButShareTheOrbit) {
    // A maximal-period linear generator has a single orbit: two seeds give
    // shifted copies of the same sequence. Check divergence of prefixes.
    CaPrng a(0x2961), b(0x061F);
    int differing = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next16() != b.next16()) ++differing;
    EXPECT_GT(differing, 56);
}

TEST(CaPrng, Next4IsLowNibble) {
    CaPrng a(42), b(42);
    for (int i = 0; i < 32; ++i) {
        const std::uint16_t full = a.next16();
        EXPECT_EQ(b.next4(), full & 0xF);
    }
}

TEST(CaPrng, CoversAllNonZeroStates) {
    CaPrng g(0xB342);
    std::set<std::uint16_t> seen;
    for (int i = 0; i < 65535; ++i) seen.insert(g.next16());
    EXPECT_EQ(seen.size(), 65535u);
    EXPECT_EQ(seen.count(0), 0u);
}

TEST(Lfsr16, MaximalPeriod) {
    Lfsr16 g(1);
    const std::uint64_t period =
        measure_period([&] { return g.next16(); }, g.next16(), 1u << 17);
    EXPECT_EQ(period, 65535u);
}

TEST(WeakLcg16, FullPeriodButPoorLowBits) {
    WeakLcg16 g(1);
    // LCG with c odd, a % 4 == 1 has full 2^16 period...
    const std::uint64_t period =
        measure_period([&] { return g.next16(); }, g.next16(), 1u << 17);
    EXPECT_EQ(period, 65536u);
    // ...but its lowest bit strictly alternates — the classic LCG defect
    // that matters here because the core uses low nibbles for decisions.
    WeakLcg16 h(7);
    const bool first = (h.next16() & 1) != 0;
    for (int i = 0; i < 16; ++i) EXPECT_EQ((h.next16() & 1) != 0, (i % 2 == 0) ? !first : first);
}

TEST(XorShift16, LongPeriod) {
    XorShift16 g(1);
    const std::uint64_t period =
        measure_period([&] { return g.next16(); }, g.next16(), 1u << 17);
    EXPECT_EQ(period, 65535u);
}

}  // namespace
}  // namespace gaip::prng
