// Tests of the RNG statistical-quality instruments and multi-kernel
// isolation of the simulation substrate.
#include <gtest/gtest.h>

#include "prng/ca_prng.hpp"
#include "prng/lfsr.hpp"
#include "prng/quality.hpp"
#include "rtl/kernel.hpp"

namespace gaip::prng {
namespace {

TEST(Quality, MeasurePeriodFindsShortCycles) {
    // A 3-cycle: 1 -> 2 -> 3 -> 1.
    std::uint16_t s = 1;
    auto step = [&] { return s = static_cast<std::uint16_t>(s % 3 + 1); };
    const std::uint16_t first = step();
    EXPECT_EQ(measure_period([&] { return step(); }, first), 3u);
}

TEST(Quality, MeasurePeriodHonorsLimit) {
    std::uint16_t s = 0;
    auto step = [&] { return ++s; };  // period 65536 > limit
    const std::uint16_t first = step();
    EXPECT_EQ(measure_period([&] { return step(); }, first, 1000), 1000u);
}

TEST(Quality, CaPrngReportIsHealthy) {
    CaPrng g(0x2961);
    const QualityReport r = measure_quality([&] { return g.next16(); }, 65535);
    EXPECT_EQ(r.period, 65535u);
    // chi-square on nibbles has 15 dof: healthy values are far below 100.
    EXPECT_LT(r.chi_square_nibbles, 50.0);
    EXPECT_LT(r.chi_square_bytes, 400.0);  // 255 dof
    EXPECT_NEAR(r.bit_balance, 0.5, 0.01);
    // Known CA-PRNG caveat (Wolfram's time-spacing advice): consecutive
    // raw CA states are locally related, so the lag-1 correlation is
    // genuinely nonzero (~0.37 here) — unlike the LFSR below, which shifts
    // 16 times per emitted word. Pinned so the property stays visible.
    EXPECT_NEAR(r.serial_correlation, 0.37, 0.1);
}

TEST(Quality, LfsrFullRefreshDecorrelatesConsecutiveWords) {
    Lfsr16 g(0x2961);
    const QualityReport r = measure_quality([&] { return g.next16(); }, 65535);
    EXPECT_EQ(r.period, 65535u);
    EXPECT_NEAR(r.serial_correlation, 0.0, 0.05)
        << "16 shifts per word must decorrelate consecutive outputs";
}

TEST(Quality, WeakLcgLowBitsAreVisiblyWorse) {
    WeakLcg16 weak(0x2961);
    const QualityReport bad = measure_quality([&] { return weak.next16(); }, 65535);
    CaPrng good_gen(0x2961);
    const QualityReport good = measure_quality([&] { return good_gen.next16(); }, 65535);
    // The LCG's alternating low bit produces an extreme lag-1 structure in
    // the low nibbles; measure on the low nibble stream directly.
    WeakLcg16 w2(7);
    int alternations = 0;
    bool prev = (w2.next16() & 1) != 0;
    for (int i = 0; i < 1000; ++i) {
        const bool cur = (w2.next16() & 1) != 0;
        if (cur != prev) ++alternations;
        prev = cur;
    }
    EXPECT_EQ(alternations, 1000) << "LCG low bit must strictly alternate";
    EXPECT_LE(good.chi_square_nibbles, bad.chi_square_nibbles + 50.0)
        << "the CA must not be meaningfully worse than the LCG on uniformity";
}

TEST(Quality, AllMaximalGeneratorsBalanceBits) {
    for (int kind = 0; kind < 2; ++kind) {
        double balance;
        if (kind == 0) {
            CaPrng g(0xAAAA);
            balance = measure_quality([&] { return g.next16(); }, 30000).bit_balance;
        } else {
            Lfsr16 g(0xAAAA);
            balance = measure_quality([&] { return g.next16(); }, 30000).bit_balance;
        }
        EXPECT_NEAR(balance, 0.5, 0.02) << "kind " << kind;
    }
}

/// Two kernels with their own modules must not interfere (the wire change
/// counter is global but only consumed as a delta within one settle loop).
TEST(MultiKernel, IndependentKernelsDoNotInterfere) {
    struct Count final : rtl::Module {
        rtl::Reg<std::uint32_t> c{"c", 0};
        Count() : Module("count") { attach(c); }
        void tick() override { c.load(c.read() + 1); }
    };

    rtl::Kernel k1, k2;
    rtl::Clock& c1 = k1.add_clock("a", 1'000'000);
    rtl::Clock& c2 = k2.add_clock("b", 3'000'000);
    Count m1, m2;
    k1.bind(m1, c1);
    k2.bind(m2, c2);
    k1.reset();
    k2.reset();
    k1.run_cycles(c1, 5);
    k2.run_cycles(c2, 11);
    k1.run_cycles(c1, 2);
    EXPECT_EQ(m1.c.read(), 7u);
    EXPECT_EQ(m2.c.read(), 11u);
}

}  // namespace
}  // namespace gaip::prng
