// MissionSupervisor tests: the recovery ladder end to end (watchdog trips,
// backoff retries, checkpointed rollback, in-place restart, PRESET
// fallback, structured abort), N-modular redundancy with replica
// replacement, and the acceptance sweep converting a stratified SEU sample
// into correct recovered results or structured aborts.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/ga_core.hpp"
#include "fault/seu_injector.hpp"
#include "rtl/scan.hpp"
#include "supervisor/supervisor.hpp"
#include "system/ga_system.hpp"
#include "trace/event.hpp"

namespace gaip::supervisor {
namespace {

using core::GaCore;
using fault::FaultSite;

core::GaParameters small_params() {
    return {.pop_size = 8, .n_gens = 8, .xover_threshold = 12, .mut_threshold = 1,
            .seed = 0x2961};
}

/// One shared injector: golden RT-level reference for small_params() plus
/// the classification machinery the acceptance sweep reuses.
const fault::SeuInjector& shared_injector() {
    static const fault::SeuInjector inj{[] {
        fault::InjectorConfig c;
        c.fn = fitness::FitnessId::kMBf6_2;
        c.params = small_params();
        return c;
    }()};
    return inj;
}

SupervisorConfig base_config() {
    SupervisorConfig cfg;
    cfg.fn = fitness::FitnessId::kMBf6_2;
    cfg.params = small_params();
    // Tight budget (4 x the known-good cycle count) keeps tripped attempts
    // cheap; the formula default would arm a ~400k-cycle watchdog.
    cfg.expected_cycles = shared_injector().golden().ga_cycles;
    return cfg;
}

/// Hook that plants one SEU (poke backend: ScanChain::flip between two
/// edges) into one attempt of one replica, at the first scan-safe cycle >=
/// site.cycle — the SEU injector's convention.
CycleHook flip_hook(FaultSite site, bool& fired, unsigned replica = 0,
                    unsigned attempt = 0) {
    return [site, &fired, replica, attempt](system::GaSystem& sys, const AttemptInfo& info,
                                            std::uint64_t cycle) {
        if (fired || info.in_init || info.replica != replica || info.attempt != attempt)
            return;
        if (cycle >= site.cycle && fault::scan_safe_state(sys.core().state())) {
            rtl::ScanChain& chain = sys.core().scan_chain();
            chain.flip(chain.position_of(site.reg, site.bit));
            sys.core().input_changed();
            fired = true;
        }
    };
}

TEST(MissionSupervisor, ConfigValidation) {
    SupervisorConfig cfg = base_config();
    cfg.watchdog_factor = 1;
    EXPECT_THROW(MissionSupervisor{cfg}, std::invalid_argument);
    cfg = base_config();
    cfg.ladder.fallback_preset = 4;
    EXPECT_THROW(MissionSupervisor{cfg}, std::invalid_argument);
    cfg = base_config();
    cfg.ladder.backoff_factor = 0.5;
    EXPECT_THROW(MissionSupervisor{cfg}, std::invalid_argument);
    cfg = base_config();
    cfg.nmr = 0;
    EXPECT_THROW(MissionSupervisor{cfg}, std::invalid_argument);
    cfg = base_config();
    cfg.nmr = 3;
    cfg.replica_seeds = {1, 2};  // wrong size
    EXPECT_THROW(MissionSupervisor{cfg}, std::invalid_argument);
    cfg = base_config();
    cfg.nmr = 2;
    cfg.replica_backends = {BackendKind::kRtl};  // wrong size
    EXPECT_THROW(MissionSupervisor{cfg}, std::invalid_argument);
}

TEST(MissionSupervisor, PrimaryBudgetMatchesWatchdogConvention) {
    const SupervisorConfig cfg = base_config();
    MissionSupervisor sup(cfg);
    EXPECT_EQ(sup.primary_budget(),
              fault::watchdog_budget(cfg.expected_cycles, cfg.watchdog_factor));
}

TEST(MissionSupervisor, CleanRunAllBackendsBitExact) {
    const fault::GoldenRun& golden = shared_injector().golden();
    for (const BackendKind b :
         {BackendKind::kRtl, BackendKind::kBehavioral, BackendKind::kGateLane}) {
        SupervisorConfig cfg = base_config();
        cfg.backend = b;
        const SupervisorReport rep = MissionSupervisor(cfg).run();
        ASSERT_EQ(rep.status, Status::kOk) << backend_kind_name(b);
        EXPECT_EQ(rep.final_rung, Rung::kPrimary) << backend_kind_name(b);
        EXPECT_EQ(rep.best_fitness, golden.best_fitness) << backend_kind_name(b);
        EXPECT_EQ(rep.best_candidate, golden.best_candidate) << backend_kind_name(b);
        EXPECT_EQ(rep.generations, golden.generations) << backend_kind_name(b);
        EXPECT_EQ(rep.watchdog_trips, 0u);
        EXPECT_TRUE(rep.abort_reason.empty());
        ASSERT_EQ(rep.attempts.size(), 1u);
        EXPECT_EQ(rep.attempts[0].outcome, AttemptOutcome::kFinished);
    }
}

// A state-bit-2 upset during kIpRn parks the FSM in kIdle: the watchdog
// trips and the first from-scratch retry reproduces the golden run.
TEST(MissionSupervisor, IdleTripRetriesToGolden) {
    const fault::GoldenRun& golden = shared_injector().golden();
    SupervisorConfig cfg = base_config();
    bool fired = false;
    cfg.hook = flip_hook({"state", 2, 10}, fired);
    const SupervisorReport rep = MissionSupervisor(cfg).run();
    EXPECT_TRUE(fired);
    ASSERT_EQ(rep.status, Status::kOk);
    EXPECT_EQ(rep.final_rung, Rung::kRetry);
    EXPECT_EQ(rep.watchdog_trips, 1u);
    EXPECT_EQ(rep.retries, 1u);
    EXPECT_EQ(rep.best_fitness, golden.best_fitness);
    EXPECT_EQ(rep.best_candidate, golden.best_candidate);
    ASSERT_EQ(rep.attempts.size(), 2u);
    EXPECT_EQ(rep.attempts[0].outcome, AttemptOutcome::kWatchdogIdle);
    EXPECT_EQ(rep.attempts[0].final_state, static_cast<std::uint8_t>(GaCore::State::kIdle));
    EXPECT_EQ(rep.attempts[1].outcome, AttemptOutcome::kFinished);
    EXPECT_FALSE(rep.attempts[1].resumed);
    // Backoff: the retry ran with a grown budget.
    EXPECT_GT(rep.attempts[1].budget, rep.attempts[0].budget);
}

// With retries disabled, the same kIdle trip is recovered IN PLACE by
// AppModule::request_restart() — start_GA re-pulsed, no reset — after the
// supervisor verified the programmed parameters survived.
TEST(MissionSupervisor, RestartRungRecoversInPlace) {
    const fault::GoldenRun& golden = shared_injector().golden();
    SupervisorConfig cfg = base_config();
    cfg.ladder.max_retries = 0;
    bool fired = false;
    cfg.hook = flip_hook({"state", 2, 10}, fired);
    const SupervisorReport rep = MissionSupervisor(cfg).run();
    EXPECT_TRUE(fired);
    ASSERT_EQ(rep.status, Status::kOk);
    EXPECT_EQ(rep.final_rung, Rung::kRestart);
    EXPECT_EQ(rep.retries, 0u);
    EXPECT_EQ(rep.restarts, 1u);
    EXPECT_EQ(rep.best_fitness, golden.best_fitness);
    EXPECT_EQ(rep.best_candidate, golden.best_candidate);
    ASSERT_EQ(rep.attempts.size(), 2u);
    EXPECT_EQ(rep.attempts[1].rung, Rung::kRestart);
    EXPECT_EQ(rep.attempts[1].outcome, AttemptOutcome::kFinished);
}

// A state-bit-5 upset lands in an undefined FSM encoding (valid states stop
// at kDone = 25): the controller wedges, the watchdog trips, and the retry
// resumes from the last generation checkpoint instead of from scratch —
// and still reproduces the unfaulted golden result bit-exactly.
TEST(MissionSupervisor, CheckpointedRetryReproducesGolden) {
    const fault::GoldenRun& golden = shared_injector().golden();
    SupervisorConfig cfg = base_config();
    cfg.ladder.checkpoint_every = 2;
    cfg.ladder.max_retries = 3;
    bool fired = false;
    const std::uint64_t late = golden.ga_cycles * 6 / 10;
    cfg.hook = flip_hook({"state", 5, late}, fired);
    const SupervisorReport rep = MissionSupervisor(cfg).run();
    EXPECT_TRUE(fired);
    ASSERT_EQ(rep.status, Status::kOk);
    EXPECT_EQ(rep.final_rung, Rung::kRetry);
    EXPECT_EQ(rep.watchdog_trips, 1u);
    EXPECT_GE(rep.checkpoints, 2u);
    EXPECT_EQ(rep.rollbacks, 1u);
    EXPECT_EQ(rep.best_fitness, golden.best_fitness);
    EXPECT_EQ(rep.best_candidate, golden.best_candidate);
    EXPECT_EQ(rep.generations, golden.generations);
    ASSERT_EQ(rep.attempts.size(), 2u);
    EXPECT_EQ(rep.attempts[0].outcome, AttemptOutcome::kWatchdogWedged);
    EXPECT_TRUE(rep.attempts[1].resumed);
    EXPECT_GT(rep.attempts[1].resumed_gen, 0u);
    // The resumed run is shorter than a from-scratch run: rollback paid off.
    EXPECT_LT(rep.attempts[1].cycles, golden.ga_cycles);
}

// An eff_pop bit-4 upset (8 -> 24) lands before the first generation
// boundary, so every snapshot the run could take would capture the
// corrupted job. The capture guard must refuse them all: the retry then
// restarts from scratch and reproduces the golden result. Without the
// guard, the retry resumes the poisoned pop-24 job, finishes it, and
// delivers its (wrong) answer as kOk — the silent-corruption escape this
// test pins shut.
TEST(MissionSupervisor, PoisonedCheckpointNeverDeliversWrongJob) {
    const fault::GoldenRun& golden = shared_injector().golden();
    SupervisorConfig cfg = base_config();
    cfg.ladder.max_retries = 1;
    cfg.ladder.checkpoint_every = 2;
    bool fired = false;
    cfg.hook = flip_hook({"eff_pop", 4, 10}, fired);
    const SupervisorReport rep = MissionSupervisor(cfg).run();
    EXPECT_TRUE(fired);
    ASSERT_EQ(rep.status, Status::kOk);
    EXPECT_EQ(rep.best_fitness, golden.best_fitness);
    EXPECT_EQ(rep.best_candidate, golden.best_candidate);
    // No boundary of the corrupted primary was checkpoint-worthy, so the
    // successful retry ran from scratch, not from a snapshot. (The report's
    // checkpoint counter still moves — the clean retry snapshots its own
    // boundaries as it goes.)
    EXPECT_EQ(rep.rollbacks, 0u);
    ASSERT_EQ(rep.attempts.size(), 2u);
    EXPECT_FALSE(rep.attempts[1].resumed);
    EXPECT_EQ(rep.attempts[1].outcome, AttemptOutcome::kFinished);
}

// A hook that freezes the core via the scan-test pin during the init
// handshake produces kInitTimeout; the retry (fresh system, pin released)
// completes the job.
TEST(MissionSupervisor, InitTimeoutRetries) {
    const fault::GoldenRun& golden = shared_injector().golden();
    SupervisorConfig cfg = base_config();
    cfg.hook = [](system::GaSystem& sys, const AttemptInfo& info, std::uint64_t) {
        if (info.in_init && info.attempt == 0) sys.wires().test.drive(true);
    };
    const SupervisorReport rep = MissionSupervisor(cfg).run();
    ASSERT_EQ(rep.status, Status::kOk);
    EXPECT_EQ(rep.final_rung, Rung::kRetry);
    ASSERT_EQ(rep.attempts.size(), 2u);
    EXPECT_EQ(rep.attempts[0].outcome, AttemptOutcome::kInitTimeout);
    EXPECT_EQ(rep.attempts[1].outcome, AttemptOutcome::kFinished);
    EXPECT_EQ(rep.best_fitness, golden.best_fitness);
    EXPECT_EQ(rep.best_candidate, golden.best_candidate);
}

// Ladder exhausted with no idle system (the trip wedged the FSM) and no
// retries: the PRESET fallback delivers the Table IV job, verified
// bit-exactly against the behavioral preset baseline.
TEST(MissionSupervisor, WedgedTripFallsBackToPresetBaseline) {
    SupervisorConfig cfg = base_config();
    cfg.ladder.max_retries = 0;
    cfg.ladder.fallback_preset = 1;
    bool fired = false;
    cfg.hook = flip_hook({"state", 5, 400}, fired);
    MissionSupervisor sup(cfg);
    const fault::GoldenRun& baseline = sup.preset_baseline();
    const SupervisorReport rep = sup.run();
    EXPECT_TRUE(fired);
    ASSERT_EQ(rep.status, Status::kOkDegraded);
    EXPECT_EQ(rep.final_rung, Rung::kPresetFallback);
    EXPECT_EQ(rep.fallbacks, 1u);
    EXPECT_EQ(rep.best_fitness, baseline.best_fitness);
    EXPECT_EQ(rep.best_candidate, baseline.best_candidate);
    EXPECT_EQ(rep.generations, baseline.generations);
    // Independently cross-check against the SEU injector's preset baseline.
    EXPECT_EQ(baseline.best_fitness, shared_injector().preset_baseline().best_fitness);
    EXPECT_EQ(baseline.best_candidate, shared_injector().preset_baseline().best_candidate);
}

TEST(MissionSupervisor, NoFallbackMeansStructuredAbort) {
    SupervisorConfig cfg = base_config();
    cfg.ladder.max_retries = 0;
    cfg.ladder.fallback_preset = 0;
    bool fired = false;
    cfg.hook = flip_hook({"state", 5, 400}, fired);
    const SupervisorReport rep = MissionSupervisor(cfg).run();
    EXPECT_TRUE(fired);
    ASSERT_EQ(rep.status, Status::kAborted);
    EXPECT_FALSE(rep.ok());
    EXPECT_EQ(rep.final_rung, Rung::kAbort);
    EXPECT_NE(rep.abort_reason.find("ladder exhausted"), std::string::npos);
}

// NMR of 3: one replica delivers a silently wrong answer (a best_fit upset
// that finishes within budget — invisible to the watchdog); the majority
// vote masks it bit-exactly and the dissenting replica is replaced.
TEST(MissionSupervisor, NmrOfThreeMasksSingleFaultedReplica) {
    const fault::GoldenRun& golden = shared_injector().golden();
    SupervisorConfig cfg = base_config();
    cfg.nmr = 3;
    bool fired = false;
    cfg.hook = flip_hook({"best_fit", 14, 200}, fired, /*replica=*/0);
    const SupervisorReport rep = MissionSupervisor(cfg).run();
    EXPECT_TRUE(fired);
    ASSERT_EQ(rep.status, Status::kOk);
    EXPECT_TRUE(rep.voted);
    EXPECT_EQ(rep.replicas_replaced, 1u);
    EXPECT_EQ(rep.vote_agree, 3u);  // the replacement rejoined the majority
    EXPECT_EQ(rep.best_fitness, golden.best_fitness);
    EXPECT_EQ(rep.best_candidate, golden.best_candidate);
    ASSERT_EQ(rep.verdicts.size(), 3u);
    EXPECT_TRUE(rep.verdicts[0].replaced);
    EXPECT_TRUE(rep.verdicts[0].in_majority);
    EXPECT_FALSE(rep.verdicts[1].replaced);
    EXPECT_FALSE(rep.verdicts[2].replaced);
    // The faulted primary really finished wrong (not tripped): that is the
    // failure mode only NMR catches.
    EXPECT_EQ(rep.attempts[0].outcome, AttemptOutcome::kFinished);
    EXPECT_NE(rep.attempts[0].best_fitness, golden.best_fitness);
}

// Mixed substrates: one replica each on RTL, behavioral, and the compiled
// gate lane. Bit-exact cross-substrate equivalence makes the vote
// unanimous.
TEST(MissionSupervisor, NmrMixedBackendsVoteUnanimously) {
    const fault::GoldenRun& golden = shared_injector().golden();
    SupervisorConfig cfg = base_config();
    cfg.nmr = 3;
    cfg.replica_backends = {BackendKind::kRtl, BackendKind::kBehavioral,
                            BackendKind::kGateLane};
    const SupervisorReport rep = MissionSupervisor(cfg).run();
    ASSERT_EQ(rep.status, Status::kOk);
    EXPECT_TRUE(rep.voted);
    EXPECT_EQ(rep.vote_agree, 3u);
    EXPECT_EQ(rep.replicas_replaced, 0u);
    EXPECT_EQ(rep.best_fitness, golden.best_fitness);
    EXPECT_EQ(rep.best_candidate, golden.best_candidate);
}

// Three replicas each corrupted differently: three distinct answers, no
// majority — the supervisor aborts with a structured reason instead of
// picking one.
TEST(MissionSupervisor, NmrWithoutMajorityAborts) {
    SupervisorConfig cfg = base_config();
    cfg.nmr = 3;
    std::array<bool, 3> fired{};
    cfg.hook = [&fired](system::GaSystem& sys, const AttemptInfo& info, std::uint64_t cycle) {
        if (info.in_init || info.attempt != 0 || fired[info.replica]) return;
        if (cycle >= 200 && fault::scan_safe_state(sys.core().state())) {
            rtl::ScanChain& chain = sys.core().scan_chain();
            chain.flip(chain.position_of("best_fit", 13 + info.replica));
            sys.core().input_changed();
            fired[info.replica] = true;
        }
    };
    const SupervisorReport rep = MissionSupervisor(cfg).run();
    EXPECT_TRUE(fired[0] && fired[1] && fired[2]);
    ASSERT_EQ(rep.status, Status::kAborted);
    EXPECT_NE(rep.abort_reason.find("no NMR majority"), std::string::npos);
    for (const ReplicaVerdict& v : rep.verdicts) EXPECT_FALSE(v.in_majority);
}

// Every supervisor decision leaves a structured trace event.
TEST(MissionSupervisor, DecisionsEmitTraceEvents) {
    SupervisorConfig cfg = base_config();
    cfg.ladder.checkpoint_every = 2;
    cfg.ladder.max_retries = 3;
    trace::MemorySink sink;
    cfg.sink = &sink;
    bool fired = false;
    cfg.hook = flip_hook({"state", 5, shared_injector().golden().ga_cycles * 6 / 10}, fired);
    const SupervisorReport rep = MissionSupervisor(cfg).run();
    ASSERT_EQ(rep.status, Status::kOk);
    auto count = [&sink](const char* kind) {
        std::size_t n = 0;
        for (const trace::TraceEvent& e : sink.events())
            if (e.kind == kind) ++n;
        return n;
    };
    EXPECT_EQ(count(trace::kind::kWatchdogTrip), rep.watchdog_trips);
    EXPECT_EQ(count(trace::kind::kSupRetry), rep.retries);
    EXPECT_EQ(count(trace::kind::kSupRollback), rep.rollbacks);
    EXPECT_EQ(count(trace::kind::kSupCheckpoint), rep.checkpoints);
    ASSERT_EQ(count(trace::kind::kSupResult), 1u);
    const trace::TraceEvent& result = sink.events().back();
    EXPECT_EQ(result.kind, trace::kind::kSupResult);
    EXPECT_EQ(result.u64("best_fit"), rep.best_fitness);
    EXPECT_EQ(result.u64("retries"), rep.retries);
}

// Acceptance sweep: a stratified sample of SEU sites (low/high bit of every
// scan-chain register, one early and one late cycle). Every site the
// injector classifies as kRecovered or kHang must be CONVERTED by the
// supervised run: a retried/restarted result equal to the golden run, a
// degraded result equal to the preset baseline, or a structured abort —
// never a silent wrong answer, never an unclassified crash.
TEST(MissionSupervisor, StratifiedSeuSampleIsConverted) {
    const fault::SeuInjector& inj = shared_injector();
    const fault::GoldenRun& golden = inj.golden();

    std::vector<FaultSite> sample;
    for (const auto& [reg, width] : inj.layout()) {
        for (const unsigned bit : {0u, width - 1}) {
            sample.push_back({reg, bit, 10});
            sample.push_back({reg, bit, golden.ga_cycles * 6 / 10});
            if (bit == width - 1) break;  // 1-bit registers: one site each
        }
    }

    unsigned disruptive = 0, converted_ok = 0, converted_degraded = 0, aborted = 0;
    for (const FaultSite& site : sample) {
        const fault::FaultRecord probe = inj.run_rtl(site, fault::InjectBackend::kPoke);
        if (probe.outcome != fault::FaultOutcome::kRecovered &&
            probe.outcome != fault::FaultOutcome::kHang)
            continue;
        ++disruptive;

        SupervisorConfig cfg = base_config();
        cfg.ladder.max_retries = 1;
        cfg.ladder.fallback_preset = 1;
        bool fired = false;
        cfg.hook = flip_hook(site, fired);
        const SupervisorReport rep = MissionSupervisor(cfg).run();
        ASSERT_TRUE(fired) << site.reg << ":" << site.bit << "@" << site.cycle;

        switch (rep.status) {
            case Status::kOk:
                EXPECT_EQ(rep.best_fitness, golden.best_fitness)
                    << site.reg << ":" << site.bit << "@" << site.cycle;
                EXPECT_EQ(rep.best_candidate, golden.best_candidate)
                    << site.reg << ":" << site.bit << "@" << site.cycle;
                ++converted_ok;
                break;
            case Status::kOkDegraded:
                EXPECT_EQ(rep.best_fitness, inj.preset_baseline().best_fitness);
                EXPECT_EQ(rep.best_candidate, inj.preset_baseline().best_candidate);
                ++converted_degraded;
                break;
            case Status::kAborted:
                EXPECT_FALSE(rep.abort_reason.empty());
                ++aborted;
                break;
        }
    }
    // The sample must actually exercise the ladder (state upsets alone
    // guarantee several kRecovered/kHang sites), and the retry rung must
    // have delivered the requested job for at least some of them.
    EXPECT_GE(disruptive, 3u);
    EXPECT_GE(converted_ok, 1u);
    SUCCEED() << disruptive << " disruptive sites: " << converted_ok << " ok, "
              << converted_degraded << " degraded, " << aborted << " aborted";
}

}  // namespace
}  // namespace gaip::supervisor
