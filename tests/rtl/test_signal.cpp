#include <gtest/gtest.h>

#include "rtl/signal.hpp"

namespace gaip::rtl {
namespace {

TEST(Wire, DriveChangesValueAndCountsDeltas) {
    Wire<std::uint16_t> w;
    EXPECT_EQ(w.read(), 0u);
    const std::uint64_t before = wire_change_count();
    w.drive(42);
    EXPECT_EQ(w.read(), 42u);
    EXPECT_EQ(wire_change_count(), before + 1);
    w.drive(42);  // no change, no delta
    EXPECT_EQ(wire_change_count(), before + 1);
}

TEST(Reg, TwoPhaseCommit) {
    Reg<std::uint16_t> r("r", 5);
    EXPECT_EQ(r.read(), 5u);
    r.load(9);
    EXPECT_EQ(r.read(), 5u) << "load must not be visible before commit";
    r.commit();
    EXPECT_EQ(r.read(), 9u);
    r.commit();  // idempotent without a pending load
    EXPECT_EQ(r.read(), 9u);
}

TEST(Reg, HardResetRestoresResetValue) {
    Reg<std::uint8_t> r("r", 0xAB);
    r.load(1);
    r.commit();
    r.hard_reset();
    EXPECT_EQ(r.read(), 0xABu);
}

TEST(Reg, WidthMasksCommittedValue) {
    Reg<std::uint8_t> r("thresh", 0, 4);
    r.load(0xFF);
    r.commit();
    EXPECT_EQ(r.read(), 0xFu);
}

TEST(Reg, BitsRoundTripForIntegral) {
    Reg<std::uint16_t> r("r", 0);
    r.set_bits(0xBEEF);
    EXPECT_EQ(r.read(), 0xBEEFu);
    EXPECT_EQ(r.bits(), 0xBEEFu);
}

TEST(Reg, BitsRoundTripForBool) {
    Reg<bool> r("b", false, 1);
    r.set_bits(1);
    EXPECT_TRUE(r.read());
    EXPECT_EQ(r.bits(), 1u);
    r.set_bits(0);
    EXPECT_FALSE(r.read());
}

enum class Color : std::uint8_t { kRed = 0, kGreen = 1, kBlue = 2 };

TEST(Reg, BitsRoundTripForEnum) {
    Reg<Color> r("c", Color::kRed, 2);
    r.load(Color::kBlue);
    r.commit();
    EXPECT_EQ(r.bits(), 2u);
    r.set_bits(1);
    EXPECT_EQ(r.read(), Color::kGreen);
}

TEST(Reg, SetBitsClearsPendingLoad) {
    Reg<std::uint16_t> r("r", 0);
    r.load(77);
    r.set_bits(12);
    r.commit();
    EXPECT_EQ(r.read(), 12u) << "set_bits must cancel an uncommitted load";
}

TEST(Reg, RejectsWidthOver64) {
    EXPECT_THROW((Reg<std::uint64_t>("w", 0, 65)), std::invalid_argument);
}

}  // namespace
}  // namespace gaip::rtl
