// Event-driven scheduler tests: sensitivity declarations, dirty tracking,
// the stats counters, and equivalence with the evaluate-everything sweep
// (GAIP_KERNEL_FULL_SETTLE / Kernel::set_full_settle).
#include <gtest/gtest.h>

#include "rtl/kernel.hpp"

namespace gaip::rtl {
namespace {

/// Free-running counter, event-driven (eval reads its register only).
class ECounter final : public Module {
public:
    ECounter(std::string name, Wire<std::uint32_t>& out) : Module(std::move(name)), out_(out) {
        attach(count_);
        sense();
    }
    void eval() override { out_.drive(count_.read()); }
    void tick() override { count_.load(count_.read() + 1); }

private:
    Wire<std::uint32_t>& out_;
    Reg<std::uint32_t> count_{"count", 0};
};

/// Event-driven combinational doubler with a declared sensitivity list.
class EDoubler final : public Module {
public:
    EDoubler(std::string name, Wire<std::uint32_t>& in, Wire<std::uint32_t>& out)
        : Module(std::move(name)), in_(in), out_(out) {
        sense(in_);
    }
    void eval() override {
        ++calls;
        out_.drive(in_.read() * 2);
    }
    std::uint64_t calls = 0;

private:
    Wire<std::uint32_t>& in_;
    Wire<std::uint32_t>& out_;
};

/// Register driven by an external wire: a Moore stage whose output only
/// moves when the sampled input changed the register value.
class ELatch final : public Module {
public:
    ELatch(std::string name, Wire<std::uint32_t>& in, Wire<std::uint32_t>& out)
        : Module(std::move(name)), in_(in), out_(out) {
        attach(q_);
        sense();
    }
    void eval() override {
        ++calls;
        out_.drive(q_.read());
    }
    void tick() override { q_.load(in_.read()); }
    std::uint64_t calls = 0;

private:
    Wire<std::uint32_t>& in_;
    Wire<std::uint32_t>& out_;
    Reg<std::uint32_t> q_{"q", 0};
};

TEST(KernelEvents, CombinationalChainSettlesEventDriven) {
    Kernel k;
    Clock& clk = k.add_clock("clk", 100'000'000);
    Wire<std::uint32_t> a, b, c;
    ECounter cnt("c", a);
    EDoubler d1("d1", a, b), d2("d2", b, c);
    k.bind(cnt, clk);
    k.add_combinational(d1);
    k.add_combinational(d2);
    k.reset();
    k.run_cycles(clk, 3);
    EXPECT_EQ(a.read(), 3u);
    EXPECT_EQ(c.read(), 12u) << "two combinational stages must settle";
}

TEST(KernelEvents, QuiescentModulesAreSkipped) {
    Kernel k;
    Clock& clk = k.add_clock("clk", 100'000'000);
    Wire<std::uint32_t> a, b, quiet, quiet2;
    ECounter cnt("c", a);
    EDoubler active("active", a, b);    // input changes every cycle
    EDoubler idle("idle", quiet, quiet2);  // input never changes after reset
    k.bind(cnt, clk);
    k.add_combinational(active);
    k.add_combinational(idle);
    k.reset();
    const std::uint64_t idle_after_reset = idle.calls;
    EXPECT_GE(idle_after_reset, 1u) << "reset evaluates everything once";
    k.run_cycles(clk, 50);
    EXPECT_EQ(idle.calls, idle_after_reset) << "no input changed, no re-evaluation";
    EXPECT_GE(active.calls, 50u);
    EXPECT_GT(k.stats().modules_skipped, 0u);
}

TEST(KernelEvents, UnchangedRegisterCommitDoesNotReschedule) {
    Kernel k;
    Clock& clk = k.add_clock("clk", 100'000'000);
    Wire<std::uint32_t> in, out;
    ELatch latch("latch", in, out);
    k.bind(latch, clk);
    k.reset();
    in.drive(7);
    k.run_cycles(clk, 2);  // edge 1 latches 7; edge 2 commits 7 again (no change)
    EXPECT_EQ(out.read(), 7u);
    const std::uint64_t calls_settled = latch.calls;
    k.run_cycles(clk, 50);  // q stays 7: the latch must not re-evaluate
    EXPECT_EQ(latch.calls, calls_settled);
}

TEST(KernelEvents, StatsCountTimePointsAndEvals) {
    Kernel k;
    Clock& clk = k.add_clock("clk", 100'000'000);
    Wire<std::uint32_t> a, b;
    ECounter cnt("c", a);
    EDoubler d("d", a, b);
    k.bind(cnt, clk);
    k.add_combinational(d);
    k.reset();
    EXPECT_EQ(k.stats().time_points, 0u);
    k.run_cycles(clk, 10);
    const KernelStats s = k.stats();
    EXPECT_EQ(s.time_points, 10u);
    EXPECT_GE(s.settle_calls, 20u) << "two settles per step";
    EXPECT_GT(s.module_evals, 0u);
    EXPECT_GT(s.evals_per_time_point(), 0.0);
    k.reset();
    EXPECT_EQ(k.stats().time_points, 0u) << "reset clears the counters";
}

TEST(KernelEvents, EventModeNeverEvaluatesMoreThanFullSettle) {
    auto build_and_run = [](bool full) {
        Kernel k;
        Clock& clk = k.add_clock("clk", 100'000'000);
        k.set_full_settle(full);
        Wire<std::uint32_t> a, b, c, quiet, quiet2;
        ECounter cnt("c", a);
        EDoubler d1("d1", a, b), d2("d2", b, c), idle("idle", quiet, quiet2);
        k.bind(cnt, clk);
        k.add_combinational(d1);
        k.add_combinational(d2);
        k.add_combinational(idle);
        k.reset();
        k.run_cycles(clk, 100);
        return std::pair<std::uint64_t, std::uint32_t>{k.stats().module_evals, c.read()};
    };
    const auto [evals_event, out_event] = build_and_run(false);
    const auto [evals_full, out_full] = build_and_run(true);
    EXPECT_EQ(out_event, out_full) << "schedulers must agree on the settled state";
    EXPECT_LT(evals_event, evals_full)
        << "the event-driven schedule must save evaluations on this workload";
}

TEST(KernelEvents, ExternalPokeOfModuleDrivenWireIsOverwrittenBySettle) {
    // Testbench pokes of a module-driven net: under the sweep, the driving
    // module re-asserts its value at the next settle. The event-driven
    // scheduler must reproduce that (it re-schedules the recorded driver).
    Kernel k;
    Clock& clk = k.add_clock("clk", 100'000'000);
    Wire<std::uint32_t> in, out;
    ELatch latch("latch", in, out);
    k.bind(latch, clk);
    k.reset();
    in.drive(5);
    k.run_cycles(clk, 2);
    ASSERT_EQ(out.read(), 5u);
    out.drive(99);  // glitch the module's output from outside
    EXPECT_EQ(out.read(), 99u) << "visible until the next settle, like the sweep";
    k.run_cycles(clk, 1);
    EXPECT_EQ(out.read(), 5u) << "the driving module must re-assert its value";
}

/// out = !in with in tied to out: unstable, must be flagged in event mode too.
class EInverter final : public Module {
public:
    EInverter(std::string name, Wire<bool>& in, Wire<bool>& out)
        : Module(std::move(name)), in_(in), out_(out) {
        sense(in_);
    }
    void eval() override { out_.drive(!in_.read()); }

private:
    Wire<bool>& in_;
    Wire<bool>& out_;
};

TEST(KernelEvents, DetectsCombinationalLoopEventDriven) {
    Kernel k;
    k.add_clock("clk", 100'000'000);
    Wire<bool> a;
    EInverter osc("osc", a, a);
    k.add_combinational(osc);
    EXPECT_THROW(k.reset(), std::runtime_error);
}

TEST(KernelEvents, TwoInverterRingIsAStableLatchEventDriven) {
    Kernel k;
    k.add_clock("clk", 100'000'000);
    Wire<bool> a, b;
    EInverter i1("i1", a, b), i2("i2", b, a);
    k.add_combinational(i1);
    k.add_combinational(i2);
    EXPECT_NO_THROW(k.reset());
    EXPECT_NE(a.read(), b.read());
}

TEST(KernelEvents, WiresDrivenBeforeBindStillScheduleTheListener) {
    // System constructors drive configuration pins before the modules are
    // bound to a kernel; the pre-bind dirty mark must survive into the
    // kernel's worklist (regression: the module was dirty but never queued).
    Kernel k;
    Clock& clk = k.add_clock("clk", 100'000'000);
    Wire<std::uint32_t> sel, out;
    EDoubler d("d", sel, out);
    sel.drive(21);  // before add_combinational
    k.add_combinational(d);
    k.reset();
    EXPECT_EQ(out.read(), 42u);
    k.run_cycles(clk, 1);
    EXPECT_EQ(out.read(), 42u);
}

TEST(KernelEvents, MixedLegacyAndEventModulesAgreeWithFullSettle) {
    // Legacy module (no sense()) feeding an event-driven one: the mixed
    // scheduler must reach the same fixed point as the sweep.
    class LegacyAdder final : public Module {
    public:
        LegacyAdder(Wire<std::uint32_t>& in, Wire<std::uint32_t>& out)
            : Module("legacy_adder"), in_(in), out_(out) {}
        void eval() override { out_.drive(in_.read() + 100); }

    private:
        Wire<std::uint32_t>& in_;
        Wire<std::uint32_t>& out_;
    };

    auto run = [](bool full) {
        Kernel k;
        Clock& clk = k.add_clock("clk", 100'000'000);
        k.set_full_settle(full);
        Wire<std::uint32_t> a, b, c;
        ECounter cnt("c", a);
        LegacyAdder add(a, b);
        EDoubler dbl("dbl", b, c);
        k.bind(cnt, clk);
        k.add_combinational(add);
        k.add_combinational(dbl);
        k.reset();
        k.run_cycles(clk, 25);
        return c.read();
    };
    EXPECT_EQ(run(false), run(true));
    EXPECT_EQ(run(false), (25u + 100u) * 2u);
}

}  // namespace
}  // namespace gaip::rtl
