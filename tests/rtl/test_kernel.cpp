#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "rtl/kernel.hpp"
#include "trace/vcd.hpp"

namespace gaip::rtl {
namespace {

/// Free-running counter register, Moore output on a wire.
class Counter final : public Module {
public:
    Counter(std::string name, Wire<std::uint32_t>& out) : Module(std::move(name)), out_(out) {
        attach(count_);
    }
    void eval() override { out_.drive(count_.read()); }
    void tick() override { count_.load(count_.read() + 1); }

private:
    Wire<std::uint32_t>& out_;
    Reg<std::uint32_t> count_{"count", 0};
};

/// Combinational doubler: out = 2 * in.
class Doubler final : public Module {
public:
    Doubler(Wire<std::uint32_t>& in, Wire<std::uint32_t>& out)
        : Module("doubler"), in_(in), out_(out) {}
    void eval() override { out_.drive(in_.read() * 2); }

private:
    Wire<std::uint32_t>& in_;
    Wire<std::uint32_t>& out_;
};

TEST(Kernel, CountsEdgesAtClockRate) {
    Kernel k;
    Clock& clk = k.add_clock("clk", 100'000'000);  // 10 ns period
    Wire<std::uint32_t> out;
    Counter c("c", out);
    k.bind(c, clk);
    k.reset();
    k.run_cycles(clk, 5);
    EXPECT_EQ(out.read(), 5u);
    EXPECT_EQ(clk.edges(), 5u);
    EXPECT_EQ(k.now(), 40'000u);  // 5th edge at t = 4 periods (first at t=0)
}

TEST(Kernel, CombinationalChainsSettleWithinEdge) {
    Kernel k;
    Clock& clk = k.add_clock("clk", 100'000'000);
    Wire<std::uint32_t> a, b, c;
    Counter cnt("c", a);
    Doubler d1(a, b), d2(b, c);
    k.bind(cnt, clk);
    k.add_combinational(d1);
    k.add_combinational(d2);
    k.reset();
    k.run_cycles(clk, 3);
    EXPECT_EQ(a.read(), 3u);
    EXPECT_EQ(c.read(), 12u) << "two combinational stages must settle";
}

TEST(Kernel, TwoDomainsInterleaveFourToOne) {
    Kernel k;
    Clock& slow = k.add_clock("slow", 50'000'000);
    Clock& fast = k.add_clock("fast", 200'000'000);
    Wire<std::uint32_t> s, f;
    Counter cs("cs", s), cf("cf", f);
    k.bind(cs, slow);
    k.bind(cf, fast);
    k.reset();
    k.run_cycles(slow, 10);
    EXPECT_EQ(s.read(), 10u);
    // Fast edges land at every 5 ns, slow at every 20 ns starting together:
    // after the 10th slow edge, fast has ticked at the shared instants too.
    EXPECT_EQ(f.read(), 37u);  // edges at 0,5,..,180 ns: 37 processed
}

TEST(Kernel, ResetRestartsTimeAndState) {
    Kernel k;
    Clock& clk = k.add_clock("clk", 100'000'000);
    Wire<std::uint32_t> out;
    Counter c("c", out);
    k.bind(c, clk);
    k.reset();
    k.run_cycles(clk, 7);
    k.reset();
    EXPECT_EQ(k.now(), 0u);
    EXPECT_EQ(clk.edges(), 0u);
    k.run_cycles(clk, 2);
    EXPECT_EQ(out.read(), 2u);
}

TEST(Kernel, RunUntilPredicateStopsEarly) {
    Kernel k;
    Clock& clk = k.add_clock("clk", 100'000'000);
    Wire<std::uint32_t> out;
    Counter c("c", out);
    k.bind(c, clk);
    k.reset();
    const bool hit = k.run_until(clk, [&] { return out.read() >= 4; }, 1000);
    EXPECT_TRUE(hit);
    EXPECT_EQ(out.read(), 4u);
}

TEST(Kernel, RunUntilReportsTimeout) {
    Kernel k;
    Clock& clk = k.add_clock("clk", 100'000'000);
    Wire<std::uint32_t> out;
    Counter c("c", out);
    k.bind(c, clk);
    k.reset();
    EXPECT_FALSE(k.run_until(clk, [] { return false; }, 50));
    EXPECT_EQ(clk.edges(), 50u);
}

/// Combinational logic with no stable point (out = !out): a ring oscillator
/// the settling loop must flag instead of spinning forever. (A two-inverter
/// ring would be a latch — it has stable states and settles fine.)
class Inverter final : public Module {
public:
    Inverter(std::string name, Wire<bool>& in, Wire<bool>& out)
        : Module(std::move(name)), in_(in), out_(out) {}
    void eval() override { out_.drive(!in_.read()); }

private:
    Wire<bool>& in_;
    Wire<bool>& out_;
};

TEST(Kernel, DetectsCombinationalLoop) {
    Kernel k;
    k.add_clock("clk", 100'000'000);
    Wire<bool> a;
    Inverter osc("osc", a, a);  // out = !out, oscillates every eval pass
    k.add_combinational(osc);
    EXPECT_THROW(k.reset(), std::runtime_error);
}

TEST(Kernel, TwoInverterRingIsAStableLatch) {
    Kernel k;
    k.add_clock("clk", 100'000'000);
    Wire<bool> a, b;
    Inverter i1("i1", a, b), i2("i2", b, a);
    k.add_combinational(i1);
    k.add_combinational(i2);
    EXPECT_NO_THROW(k.reset());
    EXPECT_NE(a.read(), b.read());
}

TEST(Kernel, BindToForeignClockThrows) {
    Kernel k1, k2;
    Clock& foreign = k2.add_clock("clk", 1'000'000);
    Wire<std::uint32_t> out;
    Counter c("c", out);
    EXPECT_THROW(k1.bind(c, foreign), std::invalid_argument);
}

TEST(Kernel, StepWithoutClocksThrows) {
    Kernel k;
    EXPECT_THROW(k.step(), std::logic_error);
}

TEST(VcdWriter, ProducesParsableDump) {
    const std::string path = ::testing::TempDir() + "/gaip_kernel_test.vcd";
    {
        Kernel k;
        Clock& clk = k.add_clock("clk", 100'000'000);
        Wire<std::uint32_t> out;
        Counter c("counter", out);
        k.bind(c, clk);
        trace::VcdWriter vcd(path);
        vcd.add_module(c);
        k.add_observer(&vcd);
        k.reset();
        k.run_cycles(clk, 4);
        k.remove_observer(&vcd);
    }
    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::string text((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("$timescale 1ps $end"), std::string::npos);
    EXPECT_NE(text.find("$scope module counter $end"), std::string::npos);
    EXPECT_NE(text.find("$var reg 32"), std::string::npos);
    EXPECT_NE(text.find("#0"), std::string::npos);
    std::filesystem::remove(path);
}

}  // namespace
}  // namespace gaip::rtl
