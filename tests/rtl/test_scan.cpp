#include <gtest/gtest.h>

#include "rtl/scan.hpp"
#include "rtl/signal.hpp"

namespace gaip::rtl {
namespace {

TEST(ScanChain, LengthIsSumOfWidths) {
    Reg<std::uint16_t> a("a", 0);
    Reg<std::uint8_t> b("b", 0, 4);
    Reg<bool> c("c", false, 1);
    ScanChain chain;
    chain.add(a);
    chain.add(b);
    chain.add(c);
    EXPECT_EQ(chain.length(), 21u);
}

TEST(ScanChain, ShiftMovesBitsTowardTail) {
    Reg<std::uint8_t> a("a", 0b1010'0001);
    Reg<std::uint8_t> b("b", 0b0000'0000);
    ScanChain chain;
    chain.add(a);
    chain.add(b);

    // a's LSB (1) moves into b's MSB; scanin (0) enters a's MSB.
    const bool out = chain.shift(false);
    EXPECT_FALSE(out) << "b's LSB was 0";
    EXPECT_EQ(a.read(), 0b0101'0000u);
    EXPECT_EQ(b.read(), 0b1000'0000u);
}

TEST(ScanChain, FullRotationRestoresState) {
    Reg<std::uint16_t> a("a", 0xBEEF);
    Reg<std::uint8_t> b("b", 0x5, 4);
    ScanChain chain;
    chain.add(a);
    chain.add(b);

    // Feeding the tail back to the head for `length` shifts is a rotation.
    for (unsigned i = 0; i < chain.length(); ++i) chain.shift(chain.tail());
    EXPECT_EQ(a.read(), 0xBEEFu);
    EXPECT_EQ(b.read(), 0x5u);
}

TEST(ScanChain, LoadArbitraryPatternThroughScanin) {
    Reg<std::uint8_t> a("a", 0);
    ScanChain chain;
    chain.add(a);
    // Shift in 0xC3 MSB-first: after 8 shifts the register holds it.
    for (int i = 7; i >= 0; --i) chain.shift(((0xC3 >> i) & 1) != 0);
    EXPECT_EQ(a.read(), 0xC3u);
}

TEST(ScanChain, DrainObservesFullState) {
    Reg<std::uint8_t> a("a", 0xA5);
    ScanChain chain;
    chain.add(a);
    std::uint8_t captured = 0;
    for (int i = 0; i < 8; ++i) {
        captured = static_cast<std::uint8_t>((captured >> 1) | (chain.shift(false) ? 0x80 : 0));
    }
    EXPECT_EQ(captured, 0xA5u);
    EXPECT_EQ(a.read(), 0u) << "zeros were shifted in behind the drained state";
}

TEST(ScanChain, SnapshotIsHeadFirstBitVector) {
    Reg<std::uint8_t> a("a", 0b1100'0000);
    Reg<bool> b("b", true, 1);
    ScanChain chain;
    chain.add(a);
    chain.add(b);
    const std::vector<bool> bits = chain.snapshot();
    ASSERT_EQ(bits.size(), 9u);
    EXPECT_TRUE(bits[0]);
    EXPECT_TRUE(bits[1]);
    EXPECT_FALSE(bits[2]);
    EXPECT_TRUE(bits[8]);
}

TEST(ScanChain, EmptyChainIsBenign) {
    ScanChain chain;
    EXPECT_EQ(chain.length(), 0u);
    EXPECT_FALSE(chain.tail());
    EXPECT_TRUE(chain.shift(true));  // scanin falls straight through
}

TEST(ScanChain, LoadIsInverseOfSnapshot) {
    Reg<std::uint16_t> a("a", 0x1234);
    Reg<std::uint8_t> b("b", 0x0B, 4);
    Reg<bool> c("c", true, 1);
    ScanChain chain;
    chain.add(a);
    chain.add(b);
    chain.add(c);

    const std::vector<bool> saved = chain.snapshot();
    a.set_bits(0xFFFF);
    b.set_bits(0x0);
    c.set_bits(0);
    chain.load(saved);
    EXPECT_EQ(a.read(), 0x1234u);
    EXPECT_EQ(b.read(), 0x0Bu);
    EXPECT_TRUE(c.read());
    EXPECT_EQ(chain.snapshot(), saved);

    EXPECT_THROW(chain.load(std::vector<bool>(chain.length() + 1)), std::invalid_argument);
}

TEST(ScanChain, ShiftRoundTripsArbitrarySnapshot) {
    // Load an arbitrary N-bit pattern through scanin (N shifts), then shift
    // N more times observing the tail: the drained bits must equal the
    // loaded pattern and the chain must pass snapshot() through unchanged.
    Reg<std::uint16_t> a("a", 0);
    Reg<std::uint8_t> b("b", 0, 5);
    Reg<std::uint8_t> c("c", 0, 3);
    ScanChain chain;
    chain.add(a);
    chain.add(b);
    chain.add(c);
    const unsigned n = chain.length();
    ASSERT_EQ(n, 24u);

    std::vector<bool> pattern(n);
    std::uint32_t lcg = 0xC0FFEE;
    for (unsigned i = 0; i < n; ++i) {
        lcg = lcg * 1664525u + 1013904223u;
        pattern[i] = (lcg >> 16) & 1u;
    }

    // snapshot() is head-first; the bit entering scanin first ends up at
    // the tail, so feed the pattern back-to-front.
    for (unsigned i = 0; i < n; ++i) chain.shift(pattern[n - 1 - i]);
    EXPECT_EQ(chain.snapshot(), pattern);

    std::vector<bool> drained(n);
    for (unsigned i = 0; i < n; ++i) drained[n - 1 - i] = chain.shift(false);
    EXPECT_EQ(drained, pattern);
}

TEST(ScanChain, LocateAndPositionOfAreInverse) {
    Reg<std::uint16_t> a("a", 0);
    Reg<std::uint8_t> b("b", 0, 4);
    Reg<bool> c("c", false, 1);
    ScanChain chain;
    chain.add(a);
    chain.add(b);
    chain.add(c);

    for (unsigned pos = 0; pos < chain.length(); ++pos) {
        const ScanChain::BitRef ref = chain.locate(pos);
        ASSERT_NE(ref.reg, nullptr);
        EXPECT_LT(ref.bit, ref.reg->width());
        EXPECT_EQ(chain.position_of(ref.reg->name(), ref.bit), pos);
    }
    // Spot-check the convention: position 0 is the head register's MSB.
    EXPECT_EQ(chain.locate(0).reg, &a);
    EXPECT_EQ(chain.locate(0).bit, 15u);
    EXPECT_EQ(chain.position_of("c", 0), 20u);

    EXPECT_THROW(chain.locate(chain.length()), std::out_of_range);
    EXPECT_THROW(chain.position_of("a", 16), std::out_of_range);
    EXPECT_THROW(chain.position_of("nope", 0), std::out_of_range);
}

TEST(ScanChain, FlipInvertsExactlyOneBit) {
    Reg<std::uint16_t> a("a", 0xBEEF);
    Reg<std::uint8_t> b("b", 0x5, 4);
    ScanChain chain;
    chain.add(a);
    chain.add(b);

    const unsigned pos = chain.position_of("a", 3);
    std::vector<bool> expect = chain.snapshot();
    expect[pos] = !expect[pos];
    chain.flip(pos);
    EXPECT_EQ(chain.snapshot(), expect);
    EXPECT_EQ(a.read(), 0xBEEFu ^ (1u << 3));
    EXPECT_EQ(b.read(), 0x5u);

    chain.flip(pos);
    EXPECT_EQ(a.read(), 0xBEEFu);
}

}  // namespace
}  // namespace gaip::rtl
