#include <gtest/gtest.h>

#include "rtl/scan.hpp"
#include "rtl/signal.hpp"

namespace gaip::rtl {
namespace {

TEST(ScanChain, LengthIsSumOfWidths) {
    Reg<std::uint16_t> a("a", 0);
    Reg<std::uint8_t> b("b", 0, 4);
    Reg<bool> c("c", false, 1);
    ScanChain chain;
    chain.add(a);
    chain.add(b);
    chain.add(c);
    EXPECT_EQ(chain.length(), 21u);
}

TEST(ScanChain, ShiftMovesBitsTowardTail) {
    Reg<std::uint8_t> a("a", 0b1010'0001);
    Reg<std::uint8_t> b("b", 0b0000'0000);
    ScanChain chain;
    chain.add(a);
    chain.add(b);

    // a's LSB (1) moves into b's MSB; scanin (0) enters a's MSB.
    const bool out = chain.shift(false);
    EXPECT_FALSE(out) << "b's LSB was 0";
    EXPECT_EQ(a.read(), 0b0101'0000u);
    EXPECT_EQ(b.read(), 0b1000'0000u);
}

TEST(ScanChain, FullRotationRestoresState) {
    Reg<std::uint16_t> a("a", 0xBEEF);
    Reg<std::uint8_t> b("b", 0x5, 4);
    ScanChain chain;
    chain.add(a);
    chain.add(b);

    // Feeding the tail back to the head for `length` shifts is a rotation.
    for (unsigned i = 0; i < chain.length(); ++i) chain.shift(chain.tail());
    EXPECT_EQ(a.read(), 0xBEEFu);
    EXPECT_EQ(b.read(), 0x5u);
}

TEST(ScanChain, LoadArbitraryPatternThroughScanin) {
    Reg<std::uint8_t> a("a", 0);
    ScanChain chain;
    chain.add(a);
    // Shift in 0xC3 MSB-first: after 8 shifts the register holds it.
    for (int i = 7; i >= 0; --i) chain.shift(((0xC3 >> i) & 1) != 0);
    EXPECT_EQ(a.read(), 0xC3u);
}

TEST(ScanChain, DrainObservesFullState) {
    Reg<std::uint8_t> a("a", 0xA5);
    ScanChain chain;
    chain.add(a);
    std::uint8_t captured = 0;
    for (int i = 0; i < 8; ++i) {
        captured = static_cast<std::uint8_t>((captured >> 1) | (chain.shift(false) ? 0x80 : 0));
    }
    EXPECT_EQ(captured, 0xA5u);
    EXPECT_EQ(a.read(), 0u) << "zeros were shifted in behind the drained state";
}

TEST(ScanChain, SnapshotIsHeadFirstBitVector) {
    Reg<std::uint8_t> a("a", 0b1100'0000);
    Reg<bool> b("b", true, 1);
    ScanChain chain;
    chain.add(a);
    chain.add(b);
    const std::vector<bool> bits = chain.snapshot();
    ASSERT_EQ(bits.size(), 9u);
    EXPECT_TRUE(bits[0]);
    EXPECT_TRUE(bits[1]);
    EXPECT_FALSE(bits[2]);
    EXPECT_TRUE(bits[8]);
}

TEST(ScanChain, EmptyChainIsBenign) {
    ScanChain chain;
    EXPECT_EQ(chain.length(), 0u);
    EXPECT_FALSE(chain.tail());
    EXPECT_TRUE(chain.shift(true));  // scanin falls straight through
}

}  // namespace
}  // namespace gaip::rtl
