// Validation of the test functions against every optimum the paper reports.
#include <gtest/gtest.h>

#include <cmath>

#include "fitness/functions.hpp"
#include "fitness/rom_builder.hpp"

namespace gaip::fitness {
namespace {

TEST(F2, ClosedFormAndEncoding) {
    EXPECT_DOUBLE_EQ(f2(0, 0), 1020.0);
    EXPECT_DOUBLE_EQ(f2(255, 0), 3060.0);
    EXPECT_DOUBLE_EQ(f2(0, 255), 0.0);  // designed to bottom out at zero
    // x = high byte, y = low byte.
    EXPECT_EQ(fitness_u16(FitnessId::kF2, 0xFF00), 3060u);
    EXPECT_EQ(fitness_u16(FitnessId::kF2, 0x00FF), 0u);
}

TEST(F3, ClosedFormAndEncoding) {
    EXPECT_DOUBLE_EQ(f3(255, 255), 3060.0);
    EXPECT_EQ(fitness_u16(FitnessId::kF3, 0xFFFF), 3060u);
    EXPECT_EQ(fitness_u16(FitnessId::kF3, 0x0000), 0u);
}

TEST(F2F3, GridOptimaMatchPaper) {
    const GridOptimum f2opt = grid_optimum(FitnessId::kF2);
    EXPECT_EQ(f2opt.best_value, 3060u);
    EXPECT_EQ(f2opt.first_argmax, 0xFF00u);
    EXPECT_EQ(f2opt.argmax_count, 1u);

    const GridOptimum f3opt = grid_optimum(FitnessId::kF3);
    EXPECT_EQ(f3opt.best_value, 3060u);
    EXPECT_EQ(f3opt.first_argmax, 0xFFFFu);
}

TEST(Bf6, DegreesConventionRecoversPaperOptimum) {
    // Paper: global maximum 4271 at x = 65522 (we land within quantization
    // distance: 4273 in a 360-degree-period ripple).
    const GridOptimum g = grid_optimum(FitnessId::kBf6);
    EXPECT_NEAR(g.best_value, 4271, 3);
    EXPECT_NEAR(static_cast<double>(g.first_argmax), 65522.0, 8.0);
    EXPECT_GE(fitness_u16(FitnessId::kBf6, 65522), 4270u);
    // The ripple period is 360 (degrees), visible as equal values one
    // period apart near the top.
    EXPECT_EQ(std::llround(bf6(65522.0 - 360.0) - bf6(65522.0)), -12);
}

TEST(Bf6, BaselineFarFromOptimum) {
    // Around x=90 deg cos is ~0, so fitness sits near the 3200 offset.
    EXPECT_NEAR(bf6(90), 3200.0, 0.01);
}

TEST(MBf6_2, OptimumWithinQuantizationOfPaperValue) {
    const GridOptimum g = grid_optimum(FitnessId::kMBf6_2);
    // Paper: 8183 at x = 65521; our double-precision table gives 8190 at
    // x = 65520 — 0.09% away (the authors' fixed-point cosine differs).
    EXPECT_NEAR(g.best_value, 8183, 8);
    EXPECT_NEAR(static_cast<double>(g.first_argmax), 65521.0, 2.0);
}

TEST(MBf7_2, RadiansConventionRecoversExactPaperArgmax) {
    const GridOptimum g = grid_optimum(FitnessId::kMBf7_2);
    // Paper: optimum at x = 247, y = 249 with value 63904.
    EXPECT_EQ(g.first_argmax, (247u << 8) | 249u);
    EXPECT_NEAR(g.best_value, 63904, 100);
}

TEST(MShubert2D, GlobalOptimumIsSaturated65535) {
    const GridOptimum g = grid_optimum(FitnessId::kMShubert2D);
    EXPECT_EQ(g.best_value, 65535u);
    // Paper: 48 global optima; our calibrated plateau yields 49 (the pair
    // symmetry of the landscape cannot produce exactly 48).
    EXPECT_NEAR(static_cast<double>(g.argmax_count), 48.0, 1.0);
}

TEST(MShubert2D, LandscapeIsRugged) {
    // Numerous local maxima: count sign changes of the discrete gradient
    // along a 1-D slice; a rugged landscape has many.
    int direction_changes = 0;
    int prev_sign = 0;
    for (int x = 1; x < 256; ++x) {
        const int d = int(fitness_u16(FitnessId::kMShubert2D, (x << 8) | 128)) -
                      int(fitness_u16(FitnessId::kMShubert2D, ((x - 1) << 8) | 128));
        const int sign = d > 0 ? 1 : (d < 0 ? -1 : 0);
        if (sign != 0 && prev_sign != 0 && sign != prev_sign) ++direction_changes;
        if (sign != 0) prev_sign = sign;
    }
    EXPECT_GT(direction_changes, 40);
}

TEST(ShubertSum, MatchesDefinition) {
    double s = 0;
    for (int i = 1; i <= 5; ++i) s += i * std::cos((i + 1) * 2.5 + i);
    EXPECT_DOUBLE_EQ(shubert_sum(2.5), s);
}

TEST(OneMax, CountsBits) {
    EXPECT_EQ(fitness_u16(FitnessId::kOneMax, 0x0000), 0u);
    EXPECT_EQ(fitness_u16(FitnessId::kOneMax, 0xFFFF), 16u * 4095u);
    EXPECT_EQ(fitness_u16(FitnessId::kOneMax, 0x0F0F), 8u * 4095u);
}

TEST(RoyalRoad, RewardsCompleteBlocks) {
    EXPECT_EQ(fitness_u16(FitnessId::kRoyalRoad, 0x000F), 15000u + 4u * 50u);
    EXPECT_EQ(fitness_u16(FitnessId::kRoyalRoad, 0x00FF), 30000u + 8u * 50u);
    EXPECT_EQ(fitness_u16(FitnessId::kRoyalRoad, 0xFFFF), 60000u + 16u * 50u);
    // A nearly-complete block earns only the bit bonus.
    EXPECT_EQ(fitness_u16(FitnessId::kRoyalRoad, 0x000E), 3u * 50u);
}

TEST(Sphere32, MonotoneInDistance) {
    const std::uint32_t target = 0x12345678;
    EXPECT_EQ(sphere32(target, target), 65535u);
    std::uint16_t prev = 65535;
    for (std::uint32_t d : {1u, 10u, 1000u, 70000u, 1u << 20, 1u << 28}) {
        const std::uint16_t f = sphere32(target + d, target);
        EXPECT_LT(f, prev) << "d=" << d;
        prev = f;
    }
    EXPECT_EQ(sphere32(target + 5, target), sphere32(target - 5, target));
}

TEST(OneMax32, ScalesWithPopcount) {
    EXPECT_EQ(onemax32(0), 0u);
    EXPECT_EQ(onemax32(0xFFFFFFFF), 32u * 2047u);
    EXPECT_EQ(onemax32(0x80000001), 2u * 2047u);
}

TEST(RomBuilder, TableMatchesFunctionEverywhere) {
    const auto rom = build_fitness_rom(FitnessId::kF3);
    ASSERT_EQ(rom->depth(), 65536u);
    for (std::uint32_t c = 0; c <= 0xFFFFu; c += 257) {
        EXPECT_EQ(rom->read(c), fitness_u16(FitnessId::kF3, static_cast<std::uint16_t>(c)));
    }
}

TEST(RomBuilder, CacheReturnsSameInstance) {
    EXPECT_EQ(fitness_rom(FitnessId::kBf6).get(), fitness_rom(FitnessId::kBf6).get());
    EXPECT_NE(fitness_rom(FitnessId::kBf6).get(), fitness_rom(FitnessId::kF2).get());
}

TEST(Names, AllIdsNamed) {
    EXPECT_EQ(fitness_name(FitnessId::kBf6), "BF6");
    EXPECT_EQ(fitness_name(FitnessId::kMShubert2D), "mShubert2D");
    EXPECT_EQ(fitness_name(FitnessId::kRoyalRoad), "RoyalRoad");
}

class AllFunctionsFitU16 : public ::testing::TestWithParam<FitnessId> {};

TEST_P(AllFunctionsFitU16, EveryChromosomeProducesAValue) {
    // The quantized fitness must be defined (and saturate, not wrap) over
    // the whole 16-bit domain.
    const FitnessId id = GetParam();
    std::uint32_t min = 0xFFFFFFFF, max = 0;
    for (std::uint32_t c = 0; c <= 0xFFFFu; ++c) {
        const std::uint16_t f = fitness_u16(id, static_cast<std::uint16_t>(c));
        min = std::min<std::uint32_t>(min, f);
        max = std::max<std::uint32_t>(max, f);
    }
    EXPECT_LE(min, max);
    EXPECT_GT(max, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllFunctionsFitU16,
                         ::testing::Values(FitnessId::kBf6, FitnessId::kF2, FitnessId::kF3,
                                           FitnessId::kMBf6_2, FitnessId::kMBf7_2,
                                           FitnessId::kMShubert2D, FitnessId::kOneMax,
                                           FitnessId::kRoyalRoad));

}  // namespace
}  // namespace gaip::fitness
