// Handshake-protocol tests of the fitness evaluation module and the 8-way
// fitness multiplexer.
#include <gtest/gtest.h>

#include "fitness/fem.hpp"
#include "fitness/fem_mux.hpp"
#include "fitness/rom_builder.hpp"
#include "rtl/kernel.hpp"

namespace gaip::fitness {
namespace {

struct FemBench {
    rtl::Kernel kernel;
    rtl::Clock& clk = kernel.add_clock("clk", 200'000'000);
    rtl::Wire<bool> fit_request;
    rtl::Wire<std::uint16_t> candidate;
    rtl::Wire<std::uint16_t> fit_value;
    rtl::Wire<bool> fit_valid;
    RomFitnessModule fem;

    explicit FemBench(FemConfig cfg = {})
        : fem("fem", FemPorts{fit_request, candidate, fit_value, fit_valid},
              fitness_rom(FitnessId::kF3), cfg) {
        kernel.bind(fem, clk);
        kernel.reset();
    }
    void cycle(unsigned n = 1) { kernel.run_cycles(clk, n); }

    /// Full four-phase handshake; returns the value and cycles-to-valid.
    std::pair<std::uint16_t, unsigned> evaluate(std::uint16_t cand, unsigned timeout = 100) {
        candidate.drive(cand);
        fit_request.drive(true);
        unsigned waited = 0;
        while (!fit_valid.read() && waited < timeout) {
            cycle();
            ++waited;
        }
        EXPECT_TRUE(fit_valid.read()) << "FEM never answered";
        const std::uint16_t v = fit_value.read();
        fit_request.drive(false);
        unsigned drop = 0;
        while (fit_valid.read() && drop < timeout) {
            cycle();
            ++drop;
        }
        EXPECT_FALSE(fit_valid.read()) << "FEM never dropped valid";
        return {v, waited};
    }
};

TEST(RomFitnessModule, AnswersWithRomValue) {
    FemBench b;
    const auto [v, cycles] = b.evaluate(0xFFFF);
    EXPECT_EQ(v, 3060u);  // F3 optimum
    EXPECT_EQ(b.fem.evaluations(), 1u);
    (void)cycles;
}

TEST(RomFitnessModule, BaseLatencyIsTwoCycles) {
    FemBench b;
    const auto [v, cycles] = b.evaluate(0x1234);
    (void)v;
    // IDLE->LOOKUP (request sampled), LOOKUP->PRESENT (ROM read); valid is
    // a Moore output of PRESENT, visible right after the second edge.
    EXPECT_EQ(cycles, 2u);
}

TEST(RomFitnessModule, ExtraLatencyDelaysValid) {
    FemBench base;
    FemBench slow(FemConfig{.extra_latency_cycles = 20});
    const auto [v0, c0] = base.evaluate(42);
    const auto [v1, c1] = slow.evaluate(42);
    EXPECT_EQ(v0, v1) << "latency must not change the value";
    EXPECT_EQ(c1, c0 + 20);
}

TEST(RomFitnessModule, BackToBackRequestsAreIndependent) {
    FemBench b;
    for (std::uint16_t cand : {0x0000, 0x00FF, 0xFF00, 0xABCD}) {
        const auto [v, c] = b.evaluate(cand);
        (void)c;
        EXPECT_EQ(v, b.fem.rom().read(cand));
    }
    EXPECT_EQ(b.fem.evaluations(), 4u);
}

TEST(RomFitnessModule, CandidateLatchedAtRequest) {
    FemBench b;
    b.candidate.drive(0xFFFF);
    b.fit_request.drive(true);
    b.cycle();              // request accepted, candidate latched
    b.candidate.drive(0x0000);  // late change must be ignored
    while (!b.fit_valid.read()) b.cycle();
    EXPECT_EQ(b.fit_value.read(), 3060u);
    b.fit_request.drive(false);
    b.cycle(3);
}

TEST(RomFitnessModule, ValidHeldUntilRequestDrops) {
    FemBench b;
    b.candidate.drive(7);
    b.fit_request.drive(true);
    while (!b.fit_valid.read()) b.cycle();
    b.cycle(5);
    EXPECT_TRUE(b.fit_valid.read()) << "valid must persist while request is held";
    b.fit_request.drive(false);
    b.cycle(2);
    EXPECT_FALSE(b.fit_valid.read());
}

// ------------------------------------------------------------------ mux --

struct MuxBench {
    rtl::Kernel kernel;
    rtl::Clock& clk = kernel.add_clock("clk", 200'000'000);
    rtl::Wire<bool> fit_request;
    rtl::Wire<std::uint8_t> sel;
    rtl::Wire<std::uint16_t> fit_value;
    rtl::Wire<bool> fit_valid;
    rtl::Wire<std::uint16_t> candidate;

    struct Slot {
        rtl::Wire<bool> req;
        rtl::Wire<std::uint16_t> val;
        rtl::Wire<bool> valid;
    };
    Slot s0, s1;
    FemMux mux{FemMuxPorts{fit_request, sel, fit_value, fit_valid}};
    RomFitnessModule fem0{"fem0", FemPorts{s0.req, candidate, s0.val, s0.valid},
                          fitness_rom(FitnessId::kF3)};
    RomFitnessModule fem1{"fem1", FemPorts{s1.req, candidate, s1.val, s1.valid},
                          fitness_rom(FitnessId::kOneMax)};

    MuxBench() {
        mux.set_slot(0, FemMuxSlot{&s0.req, &s0.val, &s0.valid});
        mux.set_slot(1, FemMuxSlot{&s1.req, &s1.val, &s1.valid});
        kernel.add_combinational(mux);
        kernel.bind(fem0, clk);
        kernel.bind(fem1, clk);
        kernel.reset();
    }

    std::uint16_t evaluate(std::uint8_t slot, std::uint16_t cand) {
        sel.drive(slot);
        candidate.drive(cand);
        fit_request.drive(true);
        for (int i = 0; i < 50 && !fit_valid.read(); ++i) kernel.run_cycles(clk, 1);
        EXPECT_TRUE(fit_valid.read());
        const std::uint16_t v = fit_value.read();
        fit_request.drive(false);
        for (int i = 0; i < 50 && fit_valid.read(); ++i) kernel.run_cycles(clk, 1);
        return v;
    }
};

TEST(FemMux, RoutesRequestToSelectedSlotOnly) {
    MuxBench b;
    EXPECT_EQ(b.evaluate(0, 0xFFFF), 3060u);        // F3
    EXPECT_EQ(b.fem0.evaluations(), 1u);
    EXPECT_EQ(b.fem1.evaluations(), 0u);
    EXPECT_EQ(b.evaluate(1, 0xFFFF), 16u * 4095u);  // OneMax
    EXPECT_EQ(b.fem1.evaluations(), 1u);
    EXPECT_EQ(b.fem0.evaluations(), 1u) << "slot 0 must not see slot 1 traffic";
}

TEST(FemMux, SwitchingFunctionsNeedsNoResynthesis) {
    // The headline feature: alternate between fitness functions run to run,
    // purely by changing fitfunc_select.
    MuxBench b;
    for (int round = 0; round < 3; ++round) {
        EXPECT_EQ(b.evaluate(0, 0x00FF), b.fem0.rom().read(0x00FF));
        EXPECT_EQ(b.evaluate(1, 0x00FF), b.fem1.rom().read(0x00FF));
    }
}

TEST(FemMux, UnpopulatedSlotNeverAnswers) {
    MuxBench b;
    b.sel.drive(5);
    b.candidate.drive(1);
    b.fit_request.drive(true);
    b.kernel.run_cycles(b.clk, 20);
    EXPECT_FALSE(b.fit_valid.read());
    EXPECT_EQ(b.fit_value.read(), 0u);
    b.fit_request.drive(false);
}

}  // namespace
}  // namespace gaip::fitness
