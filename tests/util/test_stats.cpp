#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "util/stats.hpp"

namespace gaip::util {
namespace {

TEST(Summarize, BasicMoments) {
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    const Summary s = summarize(xs);
    EXPECT_EQ(s.n, 4u);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Summarize, EmptyAndSingle) {
    EXPECT_EQ(summarize(std::vector<double>{}).n, 0u);
    const Summary s = summarize(std::vector<int>{7});
    EXPECT_DOUBLE_EQ(s.mean, 7.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(ChiSquareUniform, PerfectlyUniformIsZero) {
    const std::array<std::size_t, 4> buckets = {25, 25, 25, 25};
    EXPECT_DOUBLE_EQ(chi_square_uniform({buckets.data(), buckets.size()}, 100), 0.0);
}

TEST(ChiSquareUniform, SkewGrowsStatistic) {
    const std::array<std::size_t, 4> a = {26, 24, 25, 25};
    const std::array<std::size_t, 4> b = {80, 10, 5, 5};
    EXPECT_LT(chi_square_uniform({a.data(), a.size()}, 100),
              chi_square_uniform({b.data(), b.size()}, 100));
}

TEST(SerialCorrelation, AlternatingIsNegative) {
    std::vector<double> xs;
    for (int i = 0; i < 100; ++i) xs.push_back(i % 2 ? 1.0 : -1.0);
    EXPECT_LT(serial_correlation(std::span<const double>(xs)), -0.9);
}

TEST(SerialCorrelation, MonotoneIsPositive) {
    std::vector<double> xs;
    for (int i = 0; i < 100; ++i) xs.push_back(i);
    EXPECT_GT(serial_correlation(std::span<const double>(xs)), 0.9);
}

TEST(ConvergenceGeneration, FindsFivePercentSettling) {
    // Mean fitness: fast growth then a plateau; the paper's "convergence"
    // column is the generation where growth first drops below 5%.
    const std::vector<double> mean = {100, 200, 400, 800, 820, 825, 826};
    EXPECT_EQ(convergence_generation(mean), 3u);
}

TEST(ConvergenceGeneration, NeverSettlesReturnsLast) {
    const std::vector<double> mean = {100, 200, 400, 800};
    EXPECT_EQ(convergence_generation(mean), 3u);
}

TEST(SettlingGeneration, FindsNinetyFivePercentOfRise) {
    const std::vector<double> mean = {100, 500, 900, 1080, 1095, 1100};
    // rise = 1000, target = 100 + 950 = 1050 -> first reached at index 3.
    EXPECT_EQ(settling_generation(mean), 3u);
}

TEST(SettlingGeneration, OffsetInsensitive) {
    // The same trajectory riding a +100000 offset must settle identically —
    // the property the paper's literal definition lacks.
    std::vector<double> a = {0, 50, 90, 99, 100};
    std::vector<double> b = a;
    for (double& v : b) v += 100000;
    EXPECT_EQ(settling_generation(a), settling_generation(b));
}

TEST(SettlingGeneration, FlatSeriesSettlesImmediately) {
    const std::vector<double> mean = {42, 42, 42};
    EXPECT_EQ(settling_generation(mean), 0u);
}

}  // namespace
}  // namespace gaip::util
