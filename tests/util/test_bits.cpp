#include <gtest/gtest.h>

#include "util/bits.hpp"

namespace gaip::util {
namespace {

TEST(LowMask, Boundaries) {
    EXPECT_EQ(low_mask(0), 0u);
    EXPECT_EQ(low_mask(1), 1u);
    EXPECT_EQ(low_mask(16), 0xFFFFu);
    EXPECT_EQ(low_mask(63), 0x7FFFFFFFFFFFFFFFull);
    EXPECT_EQ(low_mask(64), ~std::uint64_t{0});
    EXPECT_EQ(low_mask(99), ~std::uint64_t{0});
}

TEST(BitSlice, VerilogStyleInclusiveBounds) {
    EXPECT_EQ(bit_slice(0xABCD, 15, 12), 0xAu);
    EXPECT_EQ(bit_slice(0xABCD, 11, 8), 0xBu);
    EXPECT_EQ(bit_slice(0xABCD, 7, 0), 0xCDu);
    EXPECT_EQ(bit_slice(0xABCD, 0, 0), 1u);
}

TEST(BitOps, TestAssignRoundTrip) {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 64; i += 7) {
        v = bit_assign(v, i, true);
        EXPECT_TRUE(bit_test(v, i));
        v = bit_assign(v, i, false);
        EXPECT_FALSE(bit_test(v, i));
    }
}

TEST(BitConcat, MatchesShiftOr) {
    EXPECT_EQ(bit_concat(0xAB, 0xCD, 8), 0xABCDu);
    EXPECT_EQ(bit_concat(0x1234, 0x5678, 16), 0x12345678u);
    // low field is masked to its width
    EXPECT_EQ(bit_concat(0x1, 0xFFFF, 8), 0x1FFu);
}

class CrossoverMaskTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CrossoverMaskTest, OnesBelowCutZerosAbove) {
    const unsigned cut = GetParam();
    const std::uint16_t m = crossover_mask(cut);
    for (unsigned b = 0; b < 16; ++b) {
        EXPECT_EQ(bit_test(m, b), b < cut) << "cut=" << cut << " bit=" << b;
    }
}

INSTANTIATE_TEST_SUITE_P(AllCutPoints, CrossoverMaskTest, ::testing::Range(0u, 17u));

TEST(SatU16, Clamps) {
    EXPECT_EQ(sat_u16(-5), 0u);
    EXPECT_EQ(sat_u16(0), 0u);
    EXPECT_EQ(sat_u16(65535), 65535u);
    EXPECT_EQ(sat_u16(65536), 65535u);
    EXPECT_EQ(sat_u16(1'000'000'000), 65535u);
}

TEST(SatU64, AddAndMulClampAtMax) {
    constexpr std::uint64_t kMax = ~std::uint64_t{0};
    EXPECT_EQ(sat_add_u64(2, 3), 5u);
    EXPECT_EQ(sat_add_u64(kMax - 1, 1), kMax);
    EXPECT_EQ(sat_add_u64(kMax, 1), kMax);
    EXPECT_EQ(sat_add_u64(kMax, kMax), kMax);
    EXPECT_EQ(sat_mul_u64(6, 7), 42u);
    EXPECT_EQ(sat_mul_u64(kMax, 0), 0u);
    EXPECT_EQ(sat_mul_u64(kMax, 1), kMax);
    EXPECT_EQ(sat_mul_u64(std::uint64_t{1} << 32, std::uint64_t{1} << 32), kMax);
    // A saturated intermediate stays saturated through further math — the
    // cycle-bound formula relies on this.
    EXPECT_EQ(sat_add_u64(sat_mul_u64(kMax, 2), 100'000), kMax);
}

TEST(Transpose64, TrueTransposeEveryBit) {
    // b[r] bit c must equal a[c] bit r — a TRUE transpose under LSB-first
    // bit numbering, not the MSB-first anti-transpose of the textbook
    // formulation. The lane engines depend on this orientation to convert
    // between per-signal-bit words and per-lane words.
    std::uint64_t a[64], b[64];
    std::uint64_t x = 0x9E3779B97F4A7C15ull;
    for (int r = 0; r < 64; ++r) {
        x ^= x << 13; x ^= x >> 7; x ^= x << 17;  // xorshift64
        a[r] = b[r] = x;
    }
    transpose64(b);
    for (int r = 0; r < 64; ++r)
        for (int c = 0; c < 64; ++c)
            ASSERT_EQ((b[r] >> c) & 1u, (a[c] >> r) & 1u) << "r=" << r << " c=" << c;
    // Involution: transposing again restores the original matrix.
    transpose64(b);
    for (int r = 0; r < 64; ++r) EXPECT_EQ(b[r], a[r]);
}

TEST(BitWidthOf, MinimalWidths) {
    EXPECT_EQ(bit_width_of(0), 1u);
    EXPECT_EQ(bit_width_of(1), 1u);
    EXPECT_EQ(bit_width_of(2), 2u);
    EXPECT_EQ(bit_width_of(255), 8u);
    EXPECT_EQ(bit_width_of(256), 9u);
}

}  // namespace
}  // namespace gaip::util
