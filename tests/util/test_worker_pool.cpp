#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/worker_pool.hpp"

namespace gaip::util {
namespace {

TEST(ResolveThreads, CapsToJobsAndFloorsAtOne) {
    EXPECT_EQ(resolve_threads(4, 100), 4u);
    EXPECT_EQ(resolve_threads(8, 3), 3u);
    EXPECT_EQ(resolve_threads(1, 0), 1u);
    EXPECT_GE(resolve_threads(0, 1000), 1u);  // 0 = hardware concurrency
    EXPECT_LE(resolve_threads(0, 2), 2u);     // still capped to the job count
}

TEST(ParallelForN, VisitsEveryIndexExactlyOnce) {
    for (const unsigned threads : {1u, 2u, 5u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        constexpr std::size_t kJobs = 137;
        std::vector<std::atomic<int>> hits(kJobs);
        parallel_for_n(threads, kJobs, [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
    }
}

TEST(ParallelForN, SequentialDegradationPreservesOrder) {
    std::vector<std::size_t> order;
    parallel_for_n(1, 10, [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 10u);
    for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForWorkers, WorkerIdsAddressPerWorkerContexts) {
    constexpr unsigned kThreads = 3;
    constexpr std::size_t kJobs = 50;
    // One slot per worker: jobs may only touch their worker's slot, which
    // is exactly how FaultCampaign reuses one gate engine per worker.
    std::vector<std::vector<std::size_t>> per_worker(kThreads);
    std::vector<std::atomic<int>> hits(kJobs);
    parallel_for_workers(kThreads, kJobs, [&](unsigned worker, std::size_t i) {
        ASSERT_LT(worker, kThreads);
        per_worker[worker].push_back(i);
        ++hits[i];
    });
    std::set<std::size_t> seen;
    for (const auto& jobs : per_worker) seen.insert(jobs.begin(), jobs.end());
    EXPECT_EQ(seen.size(), kJobs);
    for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForWorkers, SequentialFormUsesWorkerZero) {
    parallel_for_workers(1, 5, [](unsigned worker, std::size_t) {
        EXPECT_EQ(worker, 0u);
    });
}

TEST(ParallelForN, FirstExceptionPropagatesAfterJoin) {
    for (const unsigned threads : {1u, 4u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        std::atomic<int> ran{0};
        try {
            parallel_for_n(threads, 100, [&](std::size_t i) {
                if (i == 7) throw std::runtime_error("job 7 failed");
                ++ran;
            });
            FAIL() << "expected the job exception to propagate";
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "job 7 failed");
        }
        EXPECT_LT(ran.load(), 100);
    }
}

}  // namespace
}  // namespace gaip::util
