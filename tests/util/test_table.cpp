#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/table.hpp"

namespace gaip::util {
namespace {

TEST(TextTable, AlignsColumnsAndPrintsRules) {
    TextTable t({"Name", "Value"});
    t.add("alpha", 1);
    t.add("bb", 22.5);
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| Name "), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22.500"), std::string::npos);
    // Three rules + header + 2 rows = 6 lines.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
}

TEST(TextTable, HeterogeneousCellFormatting) {
    EXPECT_EQ(TextTable::to_cell(std::string("s")), "s");
    EXPECT_EQ(TextTable::to_cell("lit"), "lit");
    EXPECT_EQ(TextTable::to_cell(42), "42");
    EXPECT_EQ(TextTable::to_cell(42u), "42");
    EXPECT_EQ(TextTable::to_cell(1.5), "1.500");
}

TEST(TextTable, ShortRowsPadWithEmptyCells) {
    TextTable t({"A", "B", "C"});
    t.add_row({"only-one"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(TextTable, CsvRoundTrip) {
    const std::string path = ::testing::TempDir() + "/gaip_table_test.csv";
    TextTable t({"x", "y"});
    t.add(1, 2);
    t.add(3, 4);
    ASSERT_TRUE(t.write_csv(path));

    std::ifstream f(path);
    std::string line;
    std::getline(f, line);
    EXPECT_EQ(line, "x,y");
    std::getline(f, line);
    EXPECT_EQ(line, "1,2");
    std::getline(f, line);
    EXPECT_EQ(line, "3,4");
    std::filesystem::remove(path);
}

TEST(TextTable, CsvToUnwritablePathFails) {
    TextTable t({"x"});
    EXPECT_FALSE(t.write_csv("/nonexistent_dir_zzz/out.csv"));
}

TEST(Hex16, FormatsUppercaseFourDigits) {
    EXPECT_EQ(hex16(0x2961), "2961");
    EXPECT_EQ(hex16(0x061F), "061F");
    EXPECT_EQ(hex16(0xFFFF), "FFFF");
    EXPECT_EQ(hex16(0), "0000");
    EXPECT_EQ(hex16(0x12961), "2961") << "only the low 16 bits";
}

}  // namespace
}  // namespace gaip::util
