// Chaos-test harness: spawn, kill -9, and reap REAL gaipd processes — the
// out-of-process half of the durability story that the in-process Daemon
// cannot exercise (SIGKILL mid-append, journal recovery across an execve).
// The daemon binary path is injected at compile time via GAIPD_BIN.
#pragma once

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <string>
#include <vector>

#include "service/client.hpp"

namespace chaos {

/// One spawned daemon process. Not RAII on purpose: tests kill/reap
/// explicitly, and a leaked child is reaped by the fixture's terminate().
struct Gaipd {
    pid_t pid = -1;
    std::string socket;
};

/// fork + exec `gaipd --socket SOCKET --quiet EXTRA...`.
inline Gaipd spawn_gaipd(const std::string& socket, const std::vector<std::string>& extra) {
    std::vector<std::string> args = {GAIPD_BIN, "--socket", socket, "--quiet"};
    args.insert(args.end(), extra.begin(), extra.end());
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    Gaipd g;
    g.socket = socket;
    g.pid = ::fork();
    if (g.pid == 0) {
        ::execv(argv[0], argv.data());
        _exit(127);  // exec failed: the parent's wait_ready() will time out
    }
    return g;
}

/// Readiness probe: poll `ping` with backoff until the daemon answers.
inline bool wait_ready(const Gaipd& g, double seconds = 30.0) {
    gaip::service::RetryPolicy p;
    p.base_ms = 20;
    p.max_ms = 200;
    p.op_deadline_ms = 2000;
    return gaip::service::ping_wait(g.socket, seconds, p);
}

/// The chaos primitive: SIGKILL — no atexit, no flush, no goodbye.
inline void kill9(Gaipd& g) {
    if (g.pid <= 0) return;
    ::kill(g.pid, SIGKILL);
    int st = 0;
    ::waitpid(g.pid, &st, 0);
    g.pid = -1;
}

/// Graceful stop: SIGTERM + reap. Returns the raw wait status.
inline int terminate(Gaipd& g) {
    if (g.pid <= 0) return -1;
    ::kill(g.pid, SIGTERM);
    int st = 0;
    ::waitpid(g.pid, &st, 0);
    g.pid = -1;
    return st;
}

/// Reap a daemon expected to exit by itself (drain shutdown). Blocks;
/// the suite's ctest TIMEOUT is the liveness oracle.
inline int reap(Gaipd& g) {
    if (g.pid <= 0) return -1;
    int st = 0;
    ::waitpid(g.pid, &st, 0);
    g.pid = -1;
    return st;
}

/// Dial with a short bounded policy — chaos tests reconnect constantly.
inline gaip::service::Client dial(const std::string& socket) {
    gaip::service::RetryPolicy p;
    p.attempts = 8;
    p.base_ms = 25;
    p.max_ms = 400;
    return gaip::service::Client::dial(socket, p);
}

}  // namespace chaos
