// Frame grammar + submit-spec validation of the gaipd control protocol:
// round-trips, reserved trace keys, oversized lines, the clamp-vs-reject
// split (register-analog values clamp like the init handshake; structural
// values reject with bad_field), and strict unknown-field rejection.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "service/job.hpp"
#include "service/protocol.hpp"

namespace {

using namespace gaip;
using service::Frame;
using service::ProtocolError;

std::string code_of(const std::function<void()>& f) {
    try {
        f();
    } catch (const ProtocolError& ex) {
        return ex.code();
    }
    return "";
}

TEST(Protocol, FrameRoundTrip) {
    Frame f("submit");
    f.add("pop", std::uint64_t{16});
    f.add("fitness", "OneMax");
    f.add("ratio", 0.5);
    const std::string line = service::to_line(f);
    // The verb is always the leading key so responses are eyeballable.
    EXPECT_EQ(line.rfind("{\"verb\":\"submit\"", 0), 0u) << line;
    const Frame g = service::parse_frame(line);
    EXPECT_EQ(g, f);
    EXPECT_EQ(g.u64("pop"), 16u);
    EXPECT_EQ(g.str("fitness"), "OneMax");
    EXPECT_FALSE(g.has("gens"));
    EXPECT_EQ(g.u64("gens", 42), 42u);  // default for absent keys
}

TEST(Protocol, OkFlag) {
    EXPECT_TRUE(service::ok_frame("ping").ok());
    EXPECT_FALSE(service::error_frame("ping", service::err::kBadFrame, "x").ok());
    EXPECT_FALSE(Frame("ping").ok());  // no ok field at all
    const Frame e = service::error_frame("submit", service::err::kQueueFull, "full");
    EXPECT_EQ(e.str("code"), service::err::kQueueFull);
    EXPECT_EQ(e.str("error"), "full");
}

TEST(Protocol, TypeMismatchThrowsBadField) {
    Frame f("x");
    f.add("pop", "sixteen");
    f.add("name", std::uint64_t{7});
    EXPECT_EQ(code_of([&] { (void)f.u64("pop"); }), service::err::kBadField);
    EXPECT_EQ(code_of([&] { (void)f.str("name"); }), service::err::kBadField);
}

TEST(Protocol, ParseRejectsGarbage) {
    EXPECT_EQ(code_of([] { service::parse_frame("not json at all"); }),
              service::err::kBadFrame);
    EXPECT_EQ(code_of([] { service::parse_frame("{\"pop\":16}"); }), service::err::kBadFrame)
        << "missing verb";
    EXPECT_EQ(code_of([] { service::parse_frame("{\"verb\":7}"); }), service::err::kBadFrame)
        << "non-string verb";
}

TEST(Protocol, ReservedTraceKeysRejected) {
    // "kind"/"t"/"cycle" belong to streamed trace events; a request using
    // them could not be told apart from an event on the same connection.
    EXPECT_EQ(code_of([] { service::parse_frame("{\"verb\":\"ping\",\"kind\":\"done\"}"); }),
              service::err::kBadFrame);
    EXPECT_EQ(code_of([] { service::parse_frame("{\"verb\":\"ping\",\"t\":5}"); }),
              service::err::kBadFrame);
    EXPECT_EQ(code_of([] { service::parse_frame("{\"verb\":\"ping\",\"cycle\":5}"); }),
              service::err::kBadFrame);
}

TEST(Protocol, OversizedLineRejected) {
    std::string line = "{\"verb\":\"ping\",\"pad\":\"";
    line.append(service::kMaxFrameBytes, 'x');
    line += "\"}";
    EXPECT_EQ(code_of([&] { service::parse_frame(line); }), service::err::kOversized);
}

TEST(Protocol, EventLineDetection) {
    EXPECT_TRUE(service::is_event_line("{\"kind\":\"generation\",\"t\":1,\"cycle\":2}"));
    EXPECT_TRUE(service::is_event_line("  {\"kind\":\"done\"}"));
    EXPECT_FALSE(service::is_event_line("{\"verb\":\"ping\"}"));
    EXPECT_FALSE(service::is_event_line("garbage"));
}

TEST(Protocol, VerbTableMatchesNames) {
    // kVerbs is what the docs drift test walks; it must carry every verb
    // exactly once.
    ASSERT_EQ(std::size(service::kVerbs), 8u);
    for (const char* v : service::kVerbs) EXPECT_FALSE(std::string(v).empty());
}

// ---- submit-spec validation ------------------------------------------------

Frame submit_base() {
    Frame f(service::verb::kSubmit);
    f.add("fitness", "OneMax");
    f.add("pop", std::uint64_t{16});
    f.add("gens", std::uint64_t{8});
    return f;
}

TEST(JobSpec, DefaultsAndEcho) {
    const service::JobSpec spec = service::parse_job_spec(submit_base());
    EXPECT_EQ(spec.fn, fitness::FitnessId::kOneMax);
    EXPECT_EQ(spec.params.pop_size, 16);
    EXPECT_EQ(spec.params.n_gens, 8u);
    EXPECT_EQ(spec.backend, service::JobBackend::kGates);  // service default
    EXPECT_EQ(spec.islands, 0u);
    Frame echo("x");
    service::add_spec_fields(echo, spec);
    EXPECT_EQ(echo.u64("pop"), 16u);
    EXPECT_EQ(echo.str("fitness"), "OneMax");
    EXPECT_EQ(echo.str("backend"), "gates");
}

TEST(JobSpec, RegisterAnalogValuesClampSilently) {
    Frame f = submit_base();
    f.add("xover", std::uint64_t{0x7A});  // 4-bit threshold: & 0xF = 10
    f.add("mut", std::uint64_t{0x31});    // -> 1
    f.add("seed", std::uint64_t{0});      // seed 0 remaps to 1
    const service::JobSpec spec = service::parse_job_spec(f);
    EXPECT_EQ(spec.params.xover_threshold, 10);
    EXPECT_EQ(spec.params.mut_threshold, 1);
    EXPECT_EQ(spec.params.seed, 1);

    Frame big = submit_base();
    big.fields.clear();
    big.add("fitness", "OneMax");
    big.add("pop", std::uint64_t{500});  // clamp_pop_size ceiling
    EXPECT_EQ(service::parse_job_spec(big).params.pop_size, 128);
}

TEST(JobSpec, StructuralValuesReject) {
    const auto reject_code = [](const char* key, const char* val) {
        Frame f = submit_base();
        f.add(key, val);
        return code_of([&] { service::parse_job_spec(f); });
    };
    EXPECT_EQ(reject_code("backend", "quantum"), service::err::kBadField);
    EXPECT_EQ(reject_code("topology", "mesh"), service::err::kBadField);
    EXPECT_EQ(reject_code("policy", "best"), service::err::kBadField);

    Frame bad_fn = submit_base();
    bad_fn.fields.clear();
    bad_fn.add("fitness", "NoSuchFunction");
    EXPECT_EQ(code_of([&] { service::parse_job_spec(bad_fn); }), service::err::kBadField);

    Frame bad_words = submit_base();
    bad_words.add("words", std::uint64_t{3});  // lane blocks are 0/1/2/4/8
    EXPECT_EQ(code_of([&] { service::parse_job_spec(bad_words); }),
              service::err::kBadField);

    Frame too_many = submit_base();
    too_many.add("islands", std::uint64_t{65});
    EXPECT_EQ(code_of([&] { service::parse_job_spec(too_many); }), service::err::kBadField);
}

TEST(JobSpec, UnknownFieldRejected) {
    Frame f = submit_base();
    f.add("frobnicate", std::uint64_t{1});
    EXPECT_EQ(code_of([&] { service::parse_job_spec(f); }), service::err::kUnknownField);
}

TEST(JobSpec, SupervisedIslandsRequireRtl) {
    Frame f = submit_base();
    f.add("islands", std::uint64_t{4});
    f.add("supervise", std::uint64_t{1});
    f.add("backend", "behavioral");
    EXPECT_EQ(code_of([&] { service::parse_job_spec(f); }), service::err::kBadField);
}

TEST(JobSpec, FitnessByNameAndNumber) {
    EXPECT_EQ(service::fitness_by_name("OneMax"), fitness::FitnessId::kOneMax);
    EXPECT_EQ(service::fitness_by_name("mBF6_2"), fitness::FitnessId::kMBf6_2);
    EXPECT_EQ(service::fitness_by_name("6"), fitness::FitnessId::kOneMax);
    EXPECT_EQ(code_of([] { service::fitness_by_name("nope"); }), service::err::kBadField);
    EXPECT_EQ(code_of([] { service::fitness_by_name("99"); }), service::err::kBadField);
}

TEST(JobSpec, MigrationCountEchoesEffectiveClamp) {
    // count saturates at min(16, pop/2) on the register path; the echo must
    // carry the effective value like the init handshake does.
    Frame f = submit_base();
    f.add("islands", std::uint64_t{4});
    f.add("interval", std::uint64_t{4});
    f.add("count", std::uint64_t{1000});
    const service::JobSpec spec = service::parse_job_spec(f);
    Frame echo("x");
    service::add_spec_fields(echo, spec);
    EXPECT_EQ(echo.u64("count"), 8u);  // pop 16 -> min(16, 8)
}

}  // namespace
