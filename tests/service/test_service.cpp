// End-to-end daemon behavior through the REAL socket stack: an in-process
// Daemon (poll loop + worker pool) driven by the Client that gaipctl and
// the --daemon tool paths use. Covers the full verb set, job lifecycle on
// every backend, cooperative cancellation (queued and mid-generation),
// deadline expiry, admission control, and streaming semantics.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/params.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "trace/event.hpp"

namespace {

using namespace gaip;
using service::Client;
using service::Frame;
using service::JobSpec;

service::ServerConfig daemon_config(const std::string& socket, unsigned workers = 2,
                                    std::size_t max_queue = 64) {
    service::ServerConfig cfg;
    cfg.socket_path = socket;
    cfg.scheduler.workers = workers;
    cfg.scheduler.max_queue = max_queue;
    return cfg;
}

JobSpec small_job(service::JobBackend backend, std::uint16_t seed = 0x2961) {
    JobSpec spec;
    spec.fn = fitness::FitnessId::kOneMax;
    spec.params = core::resolve_parameters(
        0, {.pop_size = 16, .n_gens = 8, .xover_threshold = 12, .mut_threshold = 1,
            .seed = seed});
    spec.backend = backend;
    return spec;
}

/// A behavioral job long enough to still be running whenever we get around
/// to cancelling it (cancel checks happen at generation boundaries, so it
/// stops promptly regardless).
JobSpec long_job() {
    JobSpec spec = small_job(service::JobBackend::kBehavioral);
    spec.params.n_gens = 50'000'000;
    spec.params.pop_size = 128;
    return spec;
}

Frame wait_terminal(Client& c, std::uint64_t id) {
    for (int i = 0; i < 6000; ++i) {
        const Frame f = c.status(id);
        const std::string st = f.str("state");
        if (st != "queued" && st != "running") return f;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ADD_FAILURE() << "job " << id << " never reached a terminal state";
    return c.status(id);
}

TEST(Service, PingStatsAndUnknowns) {
    service::Daemon d(daemon_config("t_svc_ping.sock"));
    Client c(d.socket_path());
    c.ping();  // throws on failure

    const Frame st = c.stats();
    EXPECT_TRUE(st.ok());
    EXPECT_EQ(st.u64("submitted"), 0u);
    EXPECT_TRUE(st.has("uptime_s"));

    // Unknown verb -> structured rejection, connection stays usable.
    try {
        c.rpc(Frame("frobnicate"));
        FAIL() << "unknown verb accepted";
    } catch (const service::RemoteError& e) {
        EXPECT_EQ(e.code(), service::err::kUnknownVerb);
    }
    c.ping();

    // Unknown ids.
    try {
        c.status(9999);
        FAIL() << "status of unknown id accepted";
    } catch (const service::RemoteError& e) {
        EXPECT_EQ(e.code(), service::err::kNotFound);
    }
    EXPECT_EQ(c.cancel(9999), service::CancelOutcome::kNotFound);
}

TEST(Service, EveryBackendRunsToDone) {
    service::Daemon d(daemon_config("t_svc_backends.sock"));
    Client c(d.socket_path());

    for (const auto backend :
         {service::JobBackend::kBehavioral, service::JobBackend::kGates,
          service::JobBackend::kRtl}) {
        const Frame end = c.run_job(small_job(backend));
        EXPECT_EQ(end.str("state"), "done") << service::to_line(end);
        EXPECT_EQ(end.str("backend"), service::job_backend_name(backend));
        EXPECT_TRUE(end.has("best_fitness"));
        EXPECT_EQ(end.u64("generations"), 8u);
    }

    // Island ensemble and a supervised single-engine job ride the same path.
    JobSpec island = small_job(service::JobBackend::kRtl);
    island.islands = 4;
    island.migration.interval = 4;
    island.migration.count = 2;
    EXPECT_EQ(c.run_job(island).str("state"), "done");

    JobSpec sup = small_job(service::JobBackend::kRtl);
    sup.supervise = true;
    const Frame sup_end = c.run_job(sup);
    EXPECT_EQ(sup_end.str("state"), "done");
    EXPECT_EQ(sup_end.str("status"), "ok");

    const Frame st = c.stats();
    EXPECT_EQ(st.u64("submitted"), 5u);
    EXPECT_EQ(st.u64("done"), 5u);
    EXPECT_EQ(st.u64("failed"), 0u);
    EXPECT_EQ(st.u64("done_rtl"), 3u);
    EXPECT_EQ(st.u64("done_behavioral"), 1u);
    EXPECT_EQ(st.u64("done_gates"), 1u);
    EXPECT_EQ(st.u64("done_islands"), 1u);
    EXPECT_EQ(st.u64("done_supervised"), 1u);
}

TEST(Service, SubmitAckEchoesEffectiveValues) {
    service::Daemon d(daemon_config("t_svc_echo.sock"));
    Client c(d.socket_path());
    Frame req(service::verb::kSubmit);
    req.add("fitness", "OneMax");
    req.add("pop", std::uint64_t{500});  // clamps to 128
    req.add("gens", std::uint64_t{2});
    req.add("seed", std::uint64_t{0});   // remaps to 1
    const Frame ack = c.rpc(req);
    EXPECT_TRUE(ack.ok());
    EXPECT_GE(ack.u64("id"), 1u);
    EXPECT_EQ(ack.u64("pop"), 128u);
    EXPECT_EQ(ack.u64("seed"), 1u);
    wait_terminal(c, ack.u64("id"));
}

TEST(Service, CancelMidGeneration) {
    service::Daemon d(daemon_config("t_svc_cancel.sock"));
    Client c(d.socket_path());
    const std::uint64_t id = c.submit(long_job());

    // Wait until a worker actually picked it up, then cancel mid-run.
    for (int i = 0; i < 2000 && c.status(id).str("state") == "queued"; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(c.status(id).str("state"), "running");
    EXPECT_EQ(c.cancel(id), service::CancelOutcome::kCancelled);

    const Frame f = wait_terminal(c, id);
    EXPECT_EQ(f.str("state"), "cancelled");
    EXPECT_EQ(c.cancel(id), service::CancelOutcome::kTooLate);  // already terminal
    EXPECT_EQ(c.stats().u64("cancelled"), 1u);
}

TEST(Service, CancelQueuedJob) {
    service::Daemon d(daemon_config("t_svc_cancelq.sock", /*workers=*/1));
    Client c(d.socket_path());
    const std::uint64_t blocker = c.submit(long_job());
    const std::uint64_t victim = c.submit(small_job(service::JobBackend::kBehavioral));

    EXPECT_EQ(c.cancel(victim), service::CancelOutcome::kCancelled);
    EXPECT_EQ(c.status(victim).str("state"), "cancelled");  // immediate, never ran

    EXPECT_EQ(c.cancel(blocker), service::CancelOutcome::kCancelled);
    wait_terminal(c, blocker);
}

TEST(Service, DeadlineExpiry) {
    service::Daemon d(daemon_config("t_svc_deadline.sock"));
    Client c(d.socket_path());
    JobSpec spec = long_job();
    spec.deadline_ms = 80;
    const std::uint64_t id = c.submit(spec);

    const Frame f = wait_terminal(c, id);
    EXPECT_EQ(f.str("state"), "expired");
    EXPECT_GE(c.stats().u64("deadline_misses"), 1u);
    EXPECT_EQ(c.stats().u64("expired"), 1u);
}

TEST(Service, QueueFullRejection) {
    // One worker blocked + a one-slot queue: the third submit must be
    // rejected by admission control, not buffered.
    service::Daemon d(daemon_config("t_svc_full.sock", /*workers=*/1, /*max_queue=*/1));
    Client c(d.socket_path());
    const std::uint64_t blocker = c.submit(long_job());
    for (int i = 0; i < 2000 && c.status(blocker).str("state") == "queued"; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::uint64_t queued = c.submit(small_job(service::JobBackend::kBehavioral));

    try {
        c.submit(small_job(service::JobBackend::kBehavioral));
        FAIL() << "submit beyond max_queue accepted";
    } catch (const service::RemoteError& e) {
        EXPECT_EQ(e.code(), service::err::kQueueFull);
    }
    EXPECT_EQ(c.stats().u64("rejected"), 1u);

    c.cancel(queued);
    c.cancel(blocker);
    wait_terminal(c, blocker);
}

TEST(Service, StreamLiveJobCarriesEvents) {
    // One worker pinned on a blocker guarantees the victim is still queued
    // when the stream attaches — the stream must then carry the victim's
    // full per-generation telemetry once the blocker is cancelled.
    service::Daemon d(daemon_config("t_svc_stream.sock", /*workers=*/1));
    Client c(d.socket_path());
    const std::uint64_t blocker = c.submit(long_job());
    for (int i = 0; i < 2000 && c.status(blocker).str("state") == "queued"; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    JobSpec spec = small_job(service::JobBackend::kBehavioral);
    spec.params.n_gens = 32;
    const std::uint64_t victim = c.submit(spec);

    std::thread unblock([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        Client c2(d.socket_path());
        c2.cancel(blocker);
    });
    std::vector<trace::TraceEvent> events;
    const Frame end =
        c.stream(victim, [&](const trace::TraceEvent& e) { events.push_back(e); });
    unblock.join();
    EXPECT_EQ(end.verb, "stream_end");
    EXPECT_EQ(end.str("state"), "done");
    EXPECT_FALSE(events.empty());
}

TEST(Service, StreamOnTerminalJobEndsImmediately) {
    service::Daemon d(daemon_config("t_svc_stream2.sock"));
    Client c(d.socket_path());
    const Frame done = c.run_job(small_job(service::JobBackend::kGates));
    const std::uint64_t id = done.u64("id");

    // The job is long finished; stream must answer ack + stream_end without
    // blocking (no sink ever attaches).
    std::vector<trace::TraceEvent> events;
    const Frame end = c.stream(id, [&](const trace::TraceEvent& e) { events.push_back(e); });
    EXPECT_EQ(end.str("state"), "done");
    EXPECT_TRUE(events.empty());
}

TEST(Service, ListShowsEveryJob) {
    service::Daemon d(daemon_config("t_svc_list.sock"));
    Client c(d.socket_path());
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 3; ++i) ids.push_back(c.submit(small_job(service::JobBackend::kGates)));
    for (const auto id : ids) wait_terminal(c, id);

    c.send(Frame(service::verb::kList));
    std::size_t rows = 0;
    for (;;) {
        const Frame f = c.read_frame();
        if (f.verb == service::verb::kList) {
            EXPECT_TRUE(f.ok());
            EXPECT_EQ(f.u64("count"), 3u);
            break;
        }
        EXPECT_EQ(f.verb, "job");
        ++rows;
    }
    EXPECT_EQ(rows, 3u);
}

TEST(Service, SlowStreamConsumerIsEvictedNeverBlocksScheduler) {
    // A subscriber that stops reading must be EVICTED once its outbox
    // bound fills — the workers and every other client keep moving.
    service::ServerConfig cfg = daemon_config("t_svc_slow.sock");
    cfg.max_outbox_bytes = 4096;  // tiny: a stalled reader overflows fast
    service::Daemon d(cfg);

    Client slow(d.socket_path());
    const std::uint64_t id = slow.submit(long_job());
    Frame sub(service::verb::kStream);
    sub.add("id", id);
    slow.send(sub);
    // ... and now the slow consumer goes to lunch: it never reads again.

    Client c(d.socket_path());
    bool evicted = false;
    for (int i = 0; i < 6000 && !evicted; ++i) {
        evicted = c.stats().u64("slow_evicted") >= 1;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(evicted) << service::to_line(c.stats());
    EXPECT_GE(c.stats().u64("streams_shed"), 1u);

    // Scheduler is unobstructed: a fresh job runs to done while the
    // flooded job is still spinning.
    EXPECT_EQ(c.run_job(small_job(service::JobBackend::kGates)).str("state"), "done");

    // The evicted consumer's connection is really gone: draining the
    // kernel-buffered backlog ends in EOF, not another control frame.
    try {
        for (;;) slow.read_frame();
    } catch (const service::MalformedResponse&) {
    } catch (const service::ConnectError&) {
    }

    c.cancel(id);
    wait_terminal(c, id);
}

TEST(Service, PerClientConnectionCapRejects) {
    service::ServerConfig cfg = daemon_config("t_svc_caps.sock");
    cfg.max_conns_per_client = 2;
    service::Daemon d(cfg);

    Client a(d.socket_path());
    Client b(d.socket_path());
    a.ping();
    b.ping();

    // The third connection from this pid is turned away with a structured
    // rejection carrying a retry hint, then closed.
    Client over(d.socket_path());
    try {
        over.ping();
        FAIL() << "connection beyond the per-client cap accepted";
    } catch (const service::RemoteError& e) {
        EXPECT_EQ(e.code(), service::err::kTooManyConns);
    } catch (const service::ConnectError&) {
        // close won the race with our ping write — equally fine
    } catch (const service::MalformedResponse&) {
    }
    EXPECT_GE(a.stats().u64("conns_rejected"), 1u);
    a.ping();  // existing connections are untouched
    b.ping();
}

TEST(Service, QueueFullShedsStreamsAndHintsRetry) {
    service::Daemon d(daemon_config("t_svc_shed.sock", /*workers=*/1, /*max_queue=*/4));
    Client c(d.socket_path());
    const std::uint64_t blocker = c.submit(long_job());
    for (int i = 0; i < 2000 && c.status(blocker).str("state") == "queued"; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::uint64_t queued = c.submit(small_job(service::JobBackend::kBehavioral));

    // A subscriber watching the queued job while the queue is still below
    // the 75% stream-admission threshold (tier 1), to be shed on tier 2.
    Client watcher(d.socket_path());
    Frame end;
    std::thread watch([&] { end = watcher.stream(queued); });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));

    // Fill the queue to the brim (depth 4 of 4)...
    std::vector<std::uint64_t> filler;
    for (int i = 0; i < 3; ++i)
        filler.push_back(c.submit(small_job(service::JobBackend::kBehavioral)));

    // ... tier 1: new stream subscriptions are now refused ...
    Client late(d.socket_path());
    Frame sub(service::verb::kStream);
    sub.add("id", queued);
    late.send(sub);
    const Frame refused = late.read_frame();
    EXPECT_FALSE(refused.ok());
    EXPECT_EQ(refused.str("code"), service::err::kOverloaded);

    // ... tier 2: the over-capacity submit is rejected with a bounded
    // retry_after_ms hint and existing subscribers are shed.
    c.send(service::submit_frame(small_job(service::JobBackend::kBehavioral)));
    const Frame rej = c.read_frame();
    EXPECT_FALSE(rej.ok());
    EXPECT_EQ(rej.str("code"), service::err::kQueueFull);
    EXPECT_GE(rej.u64("retry_after_ms"), 100u);
    EXPECT_LE(rej.u64("retry_after_ms"), 5100u);

    watch.join();
    EXPECT_EQ(end.verb, "stream_end");
    EXPECT_EQ(end.str("state"), "shed");
    EXPECT_GE(c.stats().u64("streams_shed"), 1u);

    for (const auto id : filler) c.cancel(id);
    c.cancel(queued);
    c.cancel(blocker);
    wait_terminal(c, blocker);
}

TEST(Service, ShutdownVerbStopsTheDaemon) {
    service::ServerConfig cfg = daemon_config("t_svc_down.sock");
    auto server = std::make_unique<service::Server>(cfg);
    std::thread t([&] { server->run(); });
    {
        Client c(cfg.socket_path);
        c.shutdown();
    }
    t.join();  // run() must return because of the verb, not stop()
    server.reset();
    EXPECT_THROW(Client bad(cfg.socket_path), service::ConnectError);
}

}  // namespace
