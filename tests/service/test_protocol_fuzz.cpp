// Protocol robustness: a live daemon fed deterministic garbage over raw
// sockets — random bytes, invalid UTF-8, truncated JSON, unknown verbs,
// oversized unterminated lines — must answer every line with a structured
// error frame (or close the connection for the oversized case) and keep
// serving well-formed clients. It must never crash or hang; the gtest
// process exiting under the ctest timeout is the liveness oracle.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "service/client.hpp"
#include "service/server.hpp"

namespace {

using namespace gaip;
using service::Frame;

/// Raw blocking connection — deliberately NOT the Client class, so we can
/// send byte sequences the client would never produce.
class RawConn {
public:
    explicit RawConn(const std::string& path) {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0) throw std::runtime_error("socket");
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
        if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
            ::close(fd_);
            throw std::runtime_error("connect");
        }
    }
    ~RawConn() {
        if (fd_ >= 0) ::close(fd_);
    }

    bool send_all(const std::string& bytes) {
        std::size_t off = 0;
        while (off < bytes.size()) {
            const ssize_t n =
                ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
            if (n <= 0) return false;
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

    /// Read one newline-terminated line ("" on EOF).
    std::string read_line() {
        std::string line;
        char ch = 0;
        for (;;) {
            const ssize_t n = ::recv(fd_, &ch, 1, 0);
            if (n <= 0) return "";
            if (ch == '\n') return line;
            line.push_back(ch);
        }
    }

    /// True once the peer has closed (EOF on read).
    bool at_eof() { return read_line().empty(); }

private:
    int fd_ = -1;
};

service::ServerConfig daemon_config(const std::string& socket) {
    service::ServerConfig cfg;
    cfg.socket_path = socket;
    cfg.scheduler.workers = 1;
    return cfg;
}

/// xorshift64 — deterministic garbage generator, no global RNG state.
struct Lcg {
    std::uint64_t s;
    std::uint64_t next() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }
};

std::string garbage_line(Lcg& rng, std::size_t len) {
    std::string out;
    out.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
        char c = static_cast<char>(rng.next() & 0xFF);
        if (c == '\n') c = ' ';  // one logical line per send
        out.push_back(c);
    }
    return out;
}

bool is_error_frame(const std::string& line) {
    try {
        const Frame f = service::parse_frame(line);
        return !f.ok() && f.has("code");
    } catch (...) {
        return false;
    }
}

TEST(Fuzz, GarbageLinesAnswerStructuredErrors) {
    service::Daemon d(daemon_config("t_fuzz_garbage.sock"));
    Lcg rng{0xB342'2961'061F'AAAAull};
    RawConn conn(d.socket_path());
    for (int i = 0; i < 64; ++i) {
        ASSERT_TRUE(conn.send_all(garbage_line(rng, 1 + (rng.next() % 200)) + "\n"));
        const std::string resp = conn.read_line();
        ASSERT_FALSE(resp.empty()) << "daemon hung up on plain garbage (iteration " << i << ")";
        EXPECT_TRUE(is_error_frame(resp)) << resp;
    }
    // The same daemon still serves a well-formed client.
    service::Client ok(d.socket_path());
    ok.ping();
}

TEST(Fuzz, InvalidUtf8AndTruncatedJson) {
    service::Daemon d(daemon_config("t_fuzz_utf8.sock"));
    const std::vector<std::string> lines = {
        "\xFF\xFE{\"verb\":\"ping\"}",              // invalid UTF-8 prefix
        "{\"verb\":\"pi\xC0\xC1ng\"}",              // invalid UTF-8 inside a string
        "{\"verb\":\"submit\",\"pop\":",             // truncated mid-value
        "{\"verb\":\"submit\"",                      // truncated before close
        "{\"verb\" \"submit\"}",                     // missing colon
        "[{\"verb\":\"ping\"}]",                     // array, not an object
        "{}",                                         // no verb
        "{\"verb\":\"ping\",\"x\":12abc}",            // malformed number
        "null",
        "\"just a string\"",
    };
    RawConn conn(d.socket_path());
    for (const std::string& line : lines) {
        ASSERT_TRUE(conn.send_all(line + "\n"));
        const std::string resp = conn.read_line();
        ASSERT_FALSE(resp.empty()) << "hung up on: " << line;
        EXPECT_TRUE(is_error_frame(resp)) << "line: " << line << " -> " << resp;
    }
    service::Client ok(d.socket_path());
    ok.ping();
}

TEST(Fuzz, EmptyLinesAreIgnored) {
    service::Daemon d(daemon_config("t_fuzz_empty.sock"));
    RawConn conn(d.socket_path());
    ASSERT_TRUE(conn.send_all("\n\n\n{\"verb\":\"ping\"}\n"));
    const std::string resp = conn.read_line();
    const Frame f = service::parse_frame(resp);
    EXPECT_TRUE(f.ok());
    EXPECT_EQ(f.verb, "ping");
}

TEST(Fuzz, OversizedUnterminatedLineClosesConnection) {
    service::Daemon d(daemon_config("t_fuzz_big.sock"));
    RawConn conn(d.socket_path());
    // > kMaxFrameBytes without a newline: the daemon must answer one
    // oversized_frame error and close — never buffer unboundedly.
    const std::string blob(service::kMaxFrameBytes + 512, 'x');
    ASSERT_TRUE(conn.send_all(blob));
    const std::string resp = conn.read_line();
    ASSERT_FALSE(resp.empty());
    const Frame f = service::parse_frame(resp);
    EXPECT_FALSE(f.ok());
    EXPECT_EQ(f.str("code"), service::err::kOversized);
    EXPECT_TRUE(conn.at_eof());

    service::Client ok(d.socket_path());
    ok.ping();
}

TEST(Fuzz, MalformedSubmitsGetStructuredCodes) {
    service::Daemon d(daemon_config("t_fuzz_submit.sock"));
    service::Client c(d.socket_path());
    const auto expect_code = [&](Frame req, const char* code) {
        try {
            c.rpc(req);
            ADD_FAILURE() << "accepted: " << service::to_line(req);
        } catch (const service::RemoteError& e) {
            EXPECT_EQ(e.code(), code) << service::to_line(req);
        }
    };
    Frame unknown_field(service::verb::kSubmit);
    unknown_field.add("fitness", "OneMax");
    unknown_field.add("bogus", std::uint64_t{1});
    expect_code(unknown_field, service::err::kUnknownField);

    Frame bad_backend(service::verb::kSubmit);
    bad_backend.add("backend", "quantum");
    expect_code(bad_backend, service::err::kBadField);

    Frame bad_type(service::verb::kSubmit);
    bad_type.add("pop", "lots");
    expect_code(bad_type, service::err::kBadField);

    expect_code(Frame("no_such_verb"), service::err::kUnknownVerb);
    c.ping();  // all rejections left the connection usable
}

TEST(Fuzz, RandomFieldSoupNeverCrashesTheValidator) {
    // Structured fuzz: syntactically valid frames with random keys/values
    // hammer the submit validator; every outcome must be an ack or a
    // structured rejection on a still-usable connection.
    service::Daemon d(daemon_config("t_fuzz_soup.sock"));
    service::Client c(d.socket_path());
    Lcg rng{0x061F'FFFF'A0A0'2961ull};
    const char* keys[] = {"fitness", "pop",   "gens",    "backend", "words",
                          "islands", "seed",  "xover",   "mut",     "interval",
                          "count",   "policy", "bogus_a", "bogus_b"};
    const char* strs[] = {"OneMax", "rtl", "behavioral", "gates", "ring", "garbage", ""};
    int accepted = 0;
    for (int i = 0; i < 48; ++i) {
        Frame req(service::verb::kSubmit);
        const unsigned nfields = 1 + rng.next() % 6;
        for (unsigned k = 0; k < nfields; ++k) {
            const char* key = keys[rng.next() % std::size(keys)];
            if (rng.next() & 1)
                req.add(key, rng.next() % 4096);
            else
                req.add(key, strs[rng.next() % std::size(strs)]);
        }
        try {
            const Frame ack = c.rpc(req);
            ++accepted;
            c.cancel(ack.u64("id"));  // don't leave random long jobs running
        } catch (const service::RemoteError&) {
            // structured rejection — fine
        }
    }
    c.ping();
    d.scheduler().wait_idle();
    // Sanity: the soup produced both outcomes, so both paths were fuzzed.
    EXPECT_GT(accepted, 0);
    EXPECT_LT(accepted, 48);
}

}  // namespace
