// Write-ahead journal unit coverage: CRC golden values, the record grammar
// round-trip for every lifecycle kind, torn-tail and corrupt-line replay
// tolerance, atomic rotation/compaction, ENOSPC degradation, and the
// in-process Daemon recovery paths (terminal restore + drain re-admission).
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/params.hpp"
#include "service/client.hpp"
#include "service/journal.hpp"
#include "service/server.hpp"

namespace {

using namespace gaip;
using service::Frame;
using service::JobRecord;
using service::JobSpec;
using service::JobState;
using service::Journal;

namespace fs = std::filesystem;

/// Fresh journal directory per test (relative, like the test sockets).
std::string fresh_dir(const std::string& name) {
    fs::remove_all(name);
    return name;
}

JobSpec sample_spec(std::uint16_t seed = 0x2961) {
    JobSpec spec;
    spec.fn = fitness::FitnessId::kOneMax;
    spec.params = core::resolve_parameters(
        0, {.pop_size = 16, .n_gens = 8, .xover_threshold = 12, .mut_threshold = 1,
            .seed = seed});
    spec.backend = service::JobBackend::kBehavioral;
    return spec;
}

JobRecord sample_record(std::uint64_t id, JobState state) {
    JobRecord rec;
    rec.id = id;
    rec.spec = sample_spec(static_cast<std::uint16_t>(0x1000 + id));
    rec.state = state;
    if (state == JobState::kDone) {
        rec.outcome.best_fitness = 16;
        rec.outcome.best_candidate = 0xBEEF;
        rec.outcome.generations = 8;
        rec.outcome.evaluations = 128;
        rec.outcome.status = "ok";
    }
    if (state == JobState::kFailed) rec.error = "engine exploded";
    return rec;
}

std::vector<std::string> journal_lines(const std::string& dir) {
    std::ifstream in(dir + "/journal.jsonl");
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
}

TEST(Journal, Crc32GoldenValues) {
    // The IEEE 802.3 check value: crc32("123456789") == 0xCBF43926.
    EXPECT_EQ(service::crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(service::crc32("", 0), 0u);
    // Any flipped byte must change the CRC.
    EXPECT_NE(service::crc32("123456788", 9), 0xCBF43926u);
}

TEST(Journal, SpecFieldsRoundTripThroughParse) {
    JobSpec spec = sample_spec();
    spec.backend = service::JobBackend::kRtl;
    spec.words = 4;
    spec.islands = 4;
    spec.topology = island::Topology::kStar;
    spec.migration.interval = 4;
    spec.migration.count = 2;
    spec.migration.policy = island::ReplacePolicy::kRandom;
    spec.migration.mig_seed = 7;
    spec.supervise = true;
    spec.deadline_ms = 1234;

    Frame f;
    service::add_journal_spec_fields(f, spec);
    EXPECT_EQ(service::parse_job_spec(f), spec);

    // Defaults round-trip too (the journal writes every field, always).
    Frame g;
    service::add_journal_spec_fields(g, sample_spec());
    EXPECT_EQ(service::parse_job_spec(g), sample_spec());
}

TEST(Journal, ReplayCoversEveryLifecycleKind) {
    const std::string dir = fresh_dir("t_journal_kinds");
    {
        Journal j(dir);
        // id 1: done; id 2: cancelled; id 3: expired; id 4: failed;
        // id 5: queued (never started); id 6: started, interrupted.
        for (std::uint64_t id = 1; id <= 6; ++id)
            j.record_submit(sample_record(id, JobState::kQueued));
        for (std::uint64_t id : {1, 2, 3, 4, 6}) j.record_start(id);
        j.record_terminal(sample_record(1, JobState::kDone));
        j.record_terminal(sample_record(2, JobState::kCancelled));
        j.record_terminal(sample_record(3, JobState::kExpired));
        j.record_terminal(sample_record(4, JobState::kFailed));
        // Non-terminal record_terminal is a no-op, not a bogus append.
        j.record_terminal(sample_record(5, JobState::kQueued));
        EXPECT_EQ(j.stats().records_written, 15u);
        EXPECT_EQ(j.stats().write_errors, 0u);
        EXPECT_FALSE(j.stats().degraded);
    }

    const service::JournalReplay r = service::replay_journal(dir);
    EXPECT_EQ(r.lines_total, 15u);
    EXPECT_EQ(r.lines_skipped, 0u);
    EXPECT_EQ(r.max_id, 6u);
    ASSERT_EQ(r.terminal.size(), 4u);
    ASSERT_EQ(r.pending.size(), 2u);

    for (const JobRecord& rec : r.terminal) {
        const JobRecord want = sample_record(rec.id, rec.state);
        EXPECT_EQ(rec.spec, want.spec) << "id " << rec.id;
    }
    EXPECT_EQ(r.terminal[0].state, JobState::kDone);
    EXPECT_EQ(r.terminal[0].outcome.best_fitness, 16u);
    EXPECT_EQ(r.terminal[0].outcome.best_candidate, 0xBEEFu);
    EXPECT_EQ(r.terminal[0].outcome.generations, 8u);
    EXPECT_EQ(r.terminal[0].outcome.evaluations, 128u);
    EXPECT_EQ(r.terminal[0].outcome.status, "ok");
    EXPECT_EQ(r.terminal[1].state, JobState::kCancelled);
    EXPECT_EQ(r.terminal[2].state, JobState::kExpired);
    EXPECT_EQ(r.terminal[3].state, JobState::kFailed);
    EXPECT_EQ(r.terminal[3].error, "engine exploded");

    // Both the never-started and the interrupted job come back pending,
    // re-queued for a deterministic re-run.
    for (const JobRecord& rec : r.pending) {
        EXPECT_TRUE(rec.id == 5 || rec.id == 6) << rec.id;
        EXPECT_EQ(rec.state, JobState::kQueued);
        EXPECT_EQ(rec.spec, sample_record(rec.id, JobState::kQueued).spec);
    }
}

TEST(Journal, TornTailIsSkippedNotFatal) {
    const std::string dir = fresh_dir("t_journal_torn");
    {
        Journal j(dir);
        j.record_submit(sample_record(1, JobState::kQueued));
        j.record_start(1);
    }
    // Simulate a crash mid-append: a tail with no newline.
    {
        std::ofstream out(dir + "/journal.jsonl", std::ios::app);
        out << R"({"kind":"j_done","id":1,"best_fi)";
    }
    const service::JournalReplay r = service::replay_journal(dir);
    EXPECT_EQ(r.lines_total, 3u);
    EXPECT_EQ(r.lines_skipped, 1u);
    ASSERT_EQ(r.pending.size(), 1u);  // torn terminal never landed: re-run
    EXPECT_EQ(r.pending[0].id, 1u);
    EXPECT_TRUE(r.terminal.empty());
}

TEST(Journal, CorruptCrcLineIsSkippedOthersSurvive) {
    const std::string dir = fresh_dir("t_journal_corrupt");
    {
        Journal j(dir);
        j.record_submit(sample_record(1, JobState::kQueued));
        j.record_submit(sample_record(2, JobState::kQueued));
        j.record_terminal(sample_record(1, JobState::kDone));
    }
    // Flip one byte inside line 2 (the submit of id 2) — CRC must catch it.
    std::vector<std::string> lines = journal_lines(dir);
    ASSERT_EQ(lines.size(), 3u);
    const std::size_t mid = lines[1].size() / 2;
    lines[1][mid] = lines[1][mid] == 'x' ? 'y' : 'x';
    {
        std::ofstream out(dir + "/journal.jsonl", std::ios::trunc);
        for (const std::string& l : lines) out << l << "\n";
    }
    const service::JournalReplay r = service::replay_journal(dir);
    EXPECT_EQ(r.lines_total, 3u);
    EXPECT_EQ(r.lines_skipped, 1u);
    ASSERT_EQ(r.terminal.size(), 1u);  // id 1 fully recovered
    EXPECT_EQ(r.terminal[0].id, 1u);
    EXPECT_TRUE(r.pending.empty());  // id 2's submit was the corrupt line
}

TEST(Journal, GarbageAndUnknownKindsAreCounted) {
    const std::string dir = fresh_dir("t_journal_garbage");
    {
        Journal j(dir);
        j.record_submit(sample_record(1, JobState::kQueued));
    }
    {
        std::ofstream out(dir + "/journal.jsonl", std::ios::app);
        out << "not json at all\n";
        out << R"({"kind":"j_wormhole","id":9,"crc":"00000000"})" << "\n";
        out << "\n";  // blank lines are ignored, not counted
    }
    const service::JournalReplay r = service::replay_journal(dir);
    EXPECT_EQ(r.lines_total, 3u);
    EXPECT_EQ(r.lines_skipped, 2u);
    EXPECT_EQ(r.pending.size(), 1u);
}

TEST(Journal, MissingJournalReplaysEmpty) {
    const service::JournalReplay r = service::replay_journal("t_journal_never_created");
    EXPECT_EQ(r.lines_total, 0u);
    EXPECT_TRUE(r.terminal.empty());
    EXPECT_TRUE(r.pending.empty());
}

TEST(Journal, RotationCompactsAndPreservesRecords) {
    const std::string dir = fresh_dir("t_journal_rotate");
    Journal j(dir);
    // Lots of churn: many submits + terminals for the same live set.
    for (std::uint64_t id = 1; id <= 8; ++id) {
        j.record_submit(sample_record(id, JobState::kQueued));
        j.record_start(id);
        j.record_terminal(sample_record(id, JobState::kDone));
    }
    const std::size_t before = journal_lines(dir).size();

    // Compact down to two live jobs (one terminal, one still queued).
    std::vector<JobRecord> live{sample_record(3, JobState::kDone),
                                sample_record(9, JobState::kQueued)};
    j.rotate(live, 10);
    EXPECT_EQ(j.stats().rotations, 1u);

    const std::size_t after = journal_lines(dir).size();
    EXPECT_LT(after, before);

    const service::JournalReplay r = service::replay_journal(dir);
    EXPECT_EQ(r.lines_skipped, 0u);
    EXPECT_EQ(r.max_id, 9u);  // from the j_rotate next_id header
    ASSERT_EQ(r.terminal.size(), 1u);
    EXPECT_EQ(r.terminal[0].id, 3u);
    ASSERT_EQ(r.pending.size(), 1u);
    EXPECT_EQ(r.pending[0].id, 9u);

    // Appends keep working on the reopened fd after the rename.
    j.record_submit(sample_record(10, JobState::kQueued));
    const service::JournalReplay r2 = service::replay_journal(dir);
    EXPECT_EQ(r2.pending.size(), 2u);
}

TEST(Journal, EnospcDegradesInsteadOfCrashing) {
    if (::access("/dev/full", W_OK) != 0) GTEST_SKIP() << "no /dev/full";
    const std::string dir = fresh_dir("t_journal_enospc");
    fs::create_directories(dir);
    fs::create_symlink("/dev/full", dir + "/journal.jsonl");

    Journal j(dir);  // open of /dev/full succeeds; appends will not
    j.record_submit(sample_record(1, JobState::kQueued));
    EXPECT_GE(j.stats().write_errors, 1u);
    EXPECT_TRUE(j.stats().degraded);
    EXPECT_EQ(j.stats().records_written, 0u);

    // Replay must treat the device node as "no journal", not hang on it.
    const service::JournalReplay r = service::replay_journal(dir);
    EXPECT_EQ(r.lines_total, 0u);
}

// ---------------------------------------------------------------------------
// In-process Daemon recovery: the boot-replay path end to end.

service::ServerConfig journal_config(const std::string& socket, const std::string& dir,
                                     unsigned workers = 2) {
    service::ServerConfig cfg;
    cfg.socket_path = socket;
    cfg.scheduler.workers = workers;
    cfg.scheduler.max_queue = 64;
    cfg.journal_dir = dir;
    return cfg;
}

TEST(JournalRecovery, RestartRestoresTerminalRecords) {
    const std::string dir = fresh_dir("t_jrec_restore");
    std::vector<std::uint64_t> ids;
    std::vector<Frame> results;
    {
        service::Daemon d(journal_config("t_jrec_restore.sock", dir));
        service::Client c(d.socket_path());
        for (std::uint16_t seed : {0x11, 0x22, 0x33}) {
            const Frame end = c.run_job(sample_spec(seed));
            EXPECT_EQ(end.str("state"), "done");
            ids.push_back(end.u64("id"));
            results.push_back(end);
        }
    }
    // A fresh daemon on the same journal re-reports every finished job —
    // same id, bit-identical outcome — without re-running anything.
    service::Daemon d2(journal_config("t_jrec_restore2.sock", dir));
    service::Client c2(d2.socket_path());
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const Frame st = c2.status(ids[i]);
        EXPECT_EQ(st.str("state"), "done");
        for (const char* key :
             {"best_fitness", "best_candidate", "generations", "evaluations"})
            EXPECT_EQ(st.u64(key), results[i].u64(key)) << key << " of id " << ids[i];
        EXPECT_EQ(st.str("status"), results[i].str("status"));
    }
    const Frame stats = c2.stats();
    EXPECT_EQ(stats.u64("restored"), 3u);
    EXPECT_EQ(stats.u64("readmitted"), 0u);
    // New ids keep allocating past the recovered ones.
    EXPECT_GT(c2.submit(sample_spec(0x44)), ids.back());
}

TEST(JournalRecovery, DrainShutdownJournalsQueueForNextBoot) {
    const std::string dir = fresh_dir("t_jrec_drain");
    std::vector<std::uint64_t> queued_ids;
    {
        // One worker so most submissions stay queued behind the first job.
        service::Daemon d(journal_config("t_jrec_drain.sock", dir, 1));
        service::Client c(d.socket_path());
        JobSpec slow = sample_spec(0x51);
        slow.params.n_gens = 50'000;  // ~2 s: running when drain lands, prompt exit
        slow.params.pop_size = 128;
        const std::uint64_t running = c.submit(slow);
        for (std::uint16_t seed : {0x61, 0x62, 0x63})
            queued_ids.push_back(c.submit(sample_spec(seed)));

        Frame req(service::verb::kShutdown);
        req.add("drain", std::uint64_t{1});
        const Frame ack = c.rpc(req);
        EXPECT_EQ(ack.u64("drain"), 1u);
        d.stop();  // joins: run() returns once the running job finished
        (void)running;
    }
    // Boot 2: queued jobs were journaled pending; they re-run to done
    // under their ORIGINAL ids.
    service::Daemon d2(journal_config("t_jrec_drain2.sock", dir, 2));
    service::Client c2(d2.socket_path());
    EXPECT_GE(c2.stats().u64("readmitted"), queued_ids.size());
    for (const std::uint64_t id : queued_ids) {
        Frame st = c2.status(id);
        for (int spin = 0; spin < 6000 && (st.str("state") == "queued" ||
                                           st.str("state") == "running"); ++spin) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            st = c2.status(id);
        }
        EXPECT_EQ(st.str("state"), "done") << "id " << id;
    }
}

}  // namespace
