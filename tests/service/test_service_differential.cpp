// THE scheduler guarantee (ISSUE 9 acceptance): results coming back from
// the daemon are bit-identical to running the same spec directly on the
// underlying engine — the service plane multiplexes jobs (packing gates
// jobs as shared-netlist lanes, interleaving workers) but never alters a
// job's parameter/seed path. 64 concurrent jobs with mixed backends,
// fitness functions, populations and seeds go through a live daemon; every
// outcome is compared against a direct single-job engine run.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench/gate_batch_runner.hpp"
#include "core/behavioral.hpp"
#include "core/params.hpp"
#include "fitness/functions.hpp"
#include "prng/rng_module.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "system/ga_system.hpp"

namespace {

using namespace gaip;
using service::Frame;
using service::JobSpec;

struct Expected {
    std::uint16_t best_fitness;
    std::uint16_t best_candidate;
};

/// Direct engine run with EXACTLY the configuration the scheduler uses
/// (see Scheduler::run_behavioral_job / run_rtl_job / run_gate_batch).
Expected direct_run(const JobSpec& spec) {
    switch (spec.backend) {
        case service::JobBackend::kBehavioral: {
            const fitness::FitnessId fn = spec.fn;
            core::BehavioralEngine eng(
                spec.params,
                [fn](std::uint16_t c) { return fitness::fitness_u16(fn, c); },
                prng::RngKind::kCellularAutomaton, /*keep_populations=*/false);
            while (!eng.done()) eng.step_generation();
            return {eng.best_fitness(), eng.best_candidate()};
        }
        case service::JobBackend::kRtl: {
            system::GaSystemConfig cfg;
            cfg.params = spec.params;
            cfg.internal_fems = {spec.fn};
            cfg.fitfunc_select = 0;
            cfg.keep_populations = false;
            const core::RunResult r = system::run_ga_system(cfg);
            return {r.best_fitness, r.best_candidate};
        }
        case service::JobBackend::kGates: {
            // A one-lane runner: lane packing must not change any lane's
            // result, so the single-lane run is the reference.
            bench::BatchGateRunner runner(spec.fn, {spec.params});
            const auto out = runner.run();
            return {out[0].best_fitness, out[0].best_candidate};
        }
    }
    throw std::logic_error("unreachable");
}

TEST(Differential, SixtyFourConcurrentJobsMatchDirectRuns) {
    service::ServerConfig cfg;
    cfg.socket_path = "t_diff.sock";
    cfg.scheduler.workers = 4;
    cfg.scheduler.max_queue = 256;
    service::Daemon d(cfg);
    service::Client c(d.socket_path());

    // 64 jobs cycling through three backends, four fitness functions and
    // the paper's seed set — enough collisions that the scheduler packs
    // same-fn gates jobs into shared lane blocks, and enough variety that
    // a lane/seed mixup cannot cancel out.
    constexpr std::uint16_t kSeeds[] = {0x2961, 0x061F, 0xB342, 0xAAAA, 0xA0A0, 0xFFFF};
    constexpr fitness::FitnessId kFns[] = {
        fitness::FitnessId::kOneMax, fitness::FitnessId::kMBf6_2,
        fitness::FitnessId::kBf6, fitness::FitnessId::kRoyalRoad};
    constexpr service::JobBackend kBackends[] = {
        service::JobBackend::kGates, service::JobBackend::kBehavioral,
        service::JobBackend::kGates, service::JobBackend::kRtl};

    std::vector<JobSpec> specs;
    for (int i = 0; i < 64; ++i) {
        JobSpec s;
        s.fn = kFns[i % std::size(kFns)];
        s.backend = kBackends[i % std::size(kBackends)];
        s.params = core::resolve_parameters(
            0, {.pop_size = static_cast<std::uint8_t>(8 + 8 * (i % 3)),
                .n_gens = static_cast<std::uint32_t>(6 + i % 5),
                .xover_threshold = 12,
                .mut_threshold = static_cast<std::uint8_t>(1 + i % 2),
                .seed = kSeeds[i % std::size(kSeeds)]});
        specs.push_back(s);
    }

    // Whole burst submitted before any result is read: all 64 are in
    // flight together, so the gates jobs actually get packed.
    std::vector<std::uint64_t> ids;
    ids.reserve(specs.size());
    for (const JobSpec& s : specs) ids.push_back(c.submit(s));

    std::size_t packed_lanes = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const Frame end = c.stream(ids[i]);
        ASSERT_EQ(end.str("state"), "done")
            << "job " << ids[i] << ": " << service::to_line(end);
        const Expected want = direct_run(specs[i]);
        EXPECT_EQ(end.u64("best_fitness"), want.best_fitness)
            << "job " << ids[i] << " (" << service::job_backend_name(specs[i].backend)
            << ", seed 0x" << std::hex << specs[i].params.seed << ")";
        EXPECT_EQ(end.u64("best_candidate"), want.best_candidate) << "job " << ids[i];
    }

    const Frame st = c.stats();
    EXPECT_EQ(st.u64("done"), 64u);
    EXPECT_EQ(st.u64("failed"), 0u);
    // Every gates job went through the lane path; whether they packed is
    // timing-dependent here (GatePackingPreservesLaneResults pins it down).
    packed_lanes = st.u64("gate_lanes");
    EXPECT_EQ(packed_lanes, st.u64("done_gates"));
    EXPECT_LE(st.u64("gate_batches"), st.u64("done_gates"));
}

TEST(Differential, GatePackingPreservesLaneResults) {
    // Deterministic packing: one worker pinned on a blocker while 16
    // same-fitness gates jobs pile up behind it. When the blocker dies the
    // worker MUST drain them as lanes of a single batch — and every lane's
    // result must still match its own single-lane direct run.
    service::ServerConfig cfg;
    cfg.socket_path = "t_diff_pack.sock";
    cfg.scheduler.workers = 1;
    service::Daemon d(cfg);
    service::Client c(d.socket_path());

    JobSpec blocker;
    blocker.fn = fitness::FitnessId::kOneMax;
    blocker.backend = service::JobBackend::kBehavioral;
    blocker.params = core::resolve_parameters(
        0, {.pop_size = 128, .n_gens = 50'000'000, .xover_threshold = 12,
            .mut_threshold = 1, .seed = 1});
    const std::uint64_t block_id = c.submit(blocker);
    while (c.status(block_id).str("state") == "queued")
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    std::vector<JobSpec> specs;
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 16; ++i) {
        JobSpec s;
        s.fn = fitness::FitnessId::kOneMax;
        s.backend = service::JobBackend::kGates;
        s.params = core::resolve_parameters(
            0, {.pop_size = 16, .n_gens = 8, .xover_threshold = 12, .mut_threshold = 1,
                .seed = static_cast<std::uint16_t>(0x1000 + i)});
        specs.push_back(s);
        ids.push_back(c.submit(s));
    }
    c.cancel(block_id);

    for (std::size_t i = 0; i < specs.size(); ++i) {
        const Frame end = c.stream(ids[i]);
        ASSERT_EQ(end.str("state"), "done");
        const Expected want = direct_run(specs[i]);
        EXPECT_EQ(end.u64("best_fitness"), want.best_fitness) << "lane " << i;
        EXPECT_EQ(end.u64("best_candidate"), want.best_candidate) << "lane " << i;
    }

    const Frame st = c.stats();
    EXPECT_EQ(st.u64("done_gates"), 16u);
    EXPECT_EQ(st.u64("gate_lanes"), 16u);
    EXPECT_EQ(st.u64("gate_batches"), 1u);  // the whole pile in ONE batch
}

TEST(Differential, IslandJobMatchesDirectEnsemble) {
    // Island jobs don't pack, but the daemon must still reproduce the
    // direct IslandSystem result bit-for-bit.
    service::ServerConfig cfg;
    cfg.socket_path = "t_diff_isl.sock";
    cfg.scheduler.workers = 2;
    service::Daemon d(cfg);
    service::Client c(d.socket_path());

    JobSpec s;
    s.fn = fitness::FitnessId::kOneMax;
    s.backend = service::JobBackend::kRtl;
    s.params = core::resolve_parameters(
        0, {.pop_size = 16, .n_gens = 12, .xover_threshold = 12, .mut_threshold = 1,
            .seed = 0x2961});
    s.islands = 4;
    s.migration.interval = 4;
    s.migration.count = 2;

    const Frame a = c.run_job(s);
    const Frame b = c.run_job(s);  // same spec twice: daemon is deterministic
    ASSERT_EQ(a.str("state"), "done");
    EXPECT_EQ(a.u64("best_fitness"), b.u64("best_fitness"));
    EXPECT_EQ(a.u64("best_candidate"), b.u64("best_candidate"));
}

}  // namespace
