// Service chaos harness (the tentpole acceptance tests): SIGKILL a real
// gaipd mid-generation under mixed-backend load and prove the write-ahead
// journal recovers every job to the SAME results an uninterrupted run
// produces; boot over torn/corrupt journals; keep serving on ENOSPC;
// survive a kill-9/recover loop; stream across a restart; drain-exit.
//
// Every daemon here is a real forked process of the gaipd binary
// (GAIPD_BIN) — in-process recovery coverage lives in test_journal.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/params.hpp"
#include "service/client.hpp"
#include "service/journal.hpp"
#include "tests/service/chaos_util.hpp"

namespace {

using namespace gaip;
using service::Frame;
using service::JobSpec;

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
    fs::remove_all(name);
    return name;
}

JobSpec make_spec(service::JobBackend backend, std::uint16_t seed, std::uint16_t gens,
                  std::uint8_t pop = 32) {
    JobSpec spec;
    spec.fn = fitness::FitnessId::kOneMax;
    spec.params = core::resolve_parameters(
        0, {.pop_size = pop, .n_gens = gens, .xover_threshold = 12, .mut_threshold = 1,
            .seed = seed});
    spec.backend = backend;
    return spec;
}

/// The mixed-backend load of the acceptance criterion: >= 16 jobs across
/// all three substrates with staggered durations, so a kill lands with
/// some jobs done, some running, some still queued.
std::vector<JobSpec> mixed_load() {
    std::vector<JobSpec> specs;
    const service::JobBackend backends[] = {service::JobBackend::kBehavioral,
                                            service::JobBackend::kGates,
                                            service::JobBackend::kRtl};
    for (unsigned i = 0; i < 16; ++i) {
        const auto b = backends[i % 3];
        // RTL is cycle-accurate (slow): keep its runs short. Behavioral
        // carries the long tails that a kill interrupts mid-generation.
        const std::uint16_t gens =
            b == service::JobBackend::kRtl
                ? static_cast<std::uint16_t>(8 + 4 * i)
                : static_cast<std::uint16_t>(b == service::JobBackend::kBehavioral
                                                 ? 500 + 250 * i
                                                 : 60 + 30 * i);
        specs.push_back(make_spec(b, static_cast<std::uint16_t>(0x1000 + 17 * i), gens));
    }
    return specs;
}

/// Status poll that re-dials every attempt (connections die with daemons).
Frame wait_terminal(const std::string& socket, std::uint64_t id, double seconds = 120.0) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
    Frame last;
    while (std::chrono::steady_clock::now() < deadline) {
        try {
            service::Client c = chaos::dial(socket);
            last = c.status(id);
            const std::string st = last.str("state");
            if (st != "queued" && st != "running") return last;
        } catch (const std::exception&) {
            // daemon between lives — keep polling
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ADD_FAILURE() << "job " << id << " never reached a terminal state";
    return last;
}

/// The result fields that must be bit-identical between an uninterrupted
/// run and a crash-recovered one.
struct Result {
    std::string state;
    std::uint64_t best_fitness = 0, best_candidate = 0, generations = 0, evaluations = 0;

    friend bool operator==(const Result&, const Result&) = default;
};

Result result_of(const Frame& f) {
    return {f.str("state"), f.u64("best_fitness"), f.u64("best_candidate"),
            f.u64("generations"), f.u64("evaluations")};
}

// The acceptance test: >= 16 concurrent mixed-backend jobs, SIGKILL
// mid-generation, restart on the same journal, every job reaches a
// terminal state with results bit-identical to an uninterrupted run.
TEST(Chaos, KillMidRunRecoversBitIdenticalResults) {
    // Uninterrupted baseline.
    const std::vector<JobSpec> specs = mixed_load();
    std::vector<Result> baseline;
    {
        const std::string dir = fresh_dir("t_chaos_base.j");
        chaos::Gaipd d =
            chaos::spawn_gaipd("t_chaos_base.sock", {"--journal", dir, "--workers", "4"});
        ASSERT_TRUE(chaos::wait_ready(d));
        std::vector<std::uint64_t> ids;
        {
            service::Client c = chaos::dial(d.socket);
            for (const JobSpec& s : specs) ids.push_back(c.submit(s));
        }
        for (const std::uint64_t id : ids)
            baseline.push_back(result_of(wait_terminal(d.socket, id)));
        chaos::terminate(d);
    }
    for (const Result& r : baseline) ASSERT_EQ(r.state, "done");

    // Chaos run: same specs, same submission order -> same ids 1..16.
    const std::string dir = fresh_dir("t_chaos_kill.j");
    chaos::Gaipd d =
        chaos::spawn_gaipd("t_chaos_kill.sock", {"--journal", dir, "--workers", "4"});
    ASSERT_TRUE(chaos::wait_ready(d));
    std::vector<std::uint64_t> ids;
    {
        service::Client c = chaos::dial(d.socket);
        for (const JobSpec& s : specs) ids.push_back(c.submit(s));
    }
    ASSERT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                                               14, 15, 16}));

    // Let the pool get properly mid-flight, then pull the plug.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    chaos::kill9(d);

    d = chaos::spawn_gaipd("t_chaos_kill.sock", {"--journal", dir, "--workers", "4"});
    ASSERT_TRUE(chaos::wait_ready(d));
    {
        service::Client c = chaos::dial(d.socket);
        const Frame st = c.stats();
        EXPECT_EQ(st.u64("restored") + st.u64("readmitted"), 16u)
            << service::to_line(st);
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const Result got = result_of(wait_terminal(d.socket, ids[i]));
        EXPECT_EQ(got, baseline[i])
            << "job " << ids[i] << " diverged after crash recovery: state=" << got.state
            << " fitness=" << got.best_fitness << "/" << baseline[i].best_fitness
            << " cand=" << got.best_candidate << "/" << baseline[i].best_candidate
            << " gens=" << got.generations << "/" << baseline[i].generations
            << " evals=" << got.evaluations << "/" << baseline[i].evaluations;
    }
    chaos::terminate(d);
}

// A journal with a torn tail AND a corrupt middle line must boot: damaged
// lines are skipped + counted (stats.journal_replay_skipped), intact
// records before the damage all recover.
TEST(Chaos, BootsOverTornAndCorruptJournal) {
    const std::string dir = fresh_dir("t_chaos_torn.j");
    {
        service::Journal j(dir);
        service::JobRecord rec;
        rec.id = 1;
        rec.spec = make_spec(service::JobBackend::kBehavioral, 0x77, 8);
        j.record_submit(rec);
        rec.state = service::JobState::kDone;
        rec.outcome.best_fitness = 16;
        rec.outcome.generations = 8;
        j.record_terminal(rec);
        rec = {};
        rec.id = 2;
        rec.spec = make_spec(service::JobBackend::kGates, 0x78, 8);
        j.record_submit(rec);
    }
    {
        // Corrupt the id-2 submit line, then tear the tail mid-append.
        std::ifstream in(dir + "/journal.jsonl");
        std::vector<std::string> lines;
        std::string line;
        while (std::getline(in, line)) lines.push_back(line);
        in.close();
        ASSERT_EQ(lines.size(), 3u);
        lines[2][lines[2].size() / 2] ^= 1;
        std::ofstream out(dir + "/journal.jsonl", std::ios::trunc);
        for (const std::string& l : lines) out << l << "\n";
        out << R"({"kind":"j_submit","id":3,"fitn)";  // no newline: torn
    }

    chaos::Gaipd d = chaos::spawn_gaipd("t_chaos_torn.sock", {"--journal", dir});
    ASSERT_TRUE(chaos::wait_ready(d));
    service::Client c = chaos::dial(d.socket);
    const Frame st = c.stats();
    EXPECT_EQ(st.u64("journal_replay_skipped"), 2u) << service::to_line(st);
    EXPECT_EQ(st.u64("restored"), 1u);
    const Frame job = c.status(1);
    EXPECT_EQ(job.str("state"), "done");
    EXPECT_EQ(job.u64("best_fitness"), 16u);
    chaos::terminate(d);
}

// ENOSPC on the journal (simulated via /dev/full) degrades durability —
// counted and visible in stats — but the daemon keeps serving jobs.
TEST(Chaos, EnospcJournalDegradesButKeepsServing) {
    if (::access("/dev/full", W_OK) != 0) GTEST_SKIP() << "no /dev/full";
    const std::string dir = fresh_dir("t_chaos_enospc.j");
    fs::create_directories(dir);
    fs::create_symlink("/dev/full", dir + "/journal.jsonl");

    chaos::Gaipd d = chaos::spawn_gaipd("t_chaos_enospc.sock", {"--journal", dir});
    ASSERT_TRUE(chaos::wait_ready(d));
    std::uint64_t id = 0;
    {
        service::Client c = chaos::dial(d.socket);
        id = c.submit(make_spec(service::JobBackend::kGates, 0x99, 16));
    }
    const Frame end = wait_terminal(d.socket, id, 60.0);
    EXPECT_EQ(end.str("state"), "done");
    service::Client c = chaos::dial(d.socket);
    const Frame st = c.stats();
    EXPECT_GE(st.u64("journal_write_errors"), 1u) << service::to_line(st);
    EXPECT_EQ(st.u64("journal_degraded"), 1u);
    chaos::terminate(d);
}

// kill -9 / recover x5, submitting new work every life: no job is ever
// lost, no id is ever reused, and every job from every life terminates.
TEST(Chaos, KillRecoverLoopLosesNothing) {
    const std::string dir = fresh_dir("t_chaos_loop.j");
    const std::string socket = "t_chaos_loop.sock";
    std::vector<std::uint64_t> all_ids;
    chaos::Gaipd d = chaos::spawn_gaipd(socket, {"--journal", dir, "--workers", "2"});
    for (int life = 0; life < 5; ++life) {
        ASSERT_TRUE(chaos::wait_ready(d)) << "life " << life;
        {
            service::Client c = chaos::dial(socket);
            for (int k = 0; k < 3; ++k) {
                const std::uint64_t id = c.submit(make_spec(
                    service::JobBackend::kBehavioral,
                    static_cast<std::uint16_t>(0x2000 + 16 * life + k),
                    static_cast<std::uint16_t>(400 + 100 * k)));
                // Ids stay strictly monotonic across restarts: recovery
                // resumes allocation past everything the journal saw.
                if (!all_ids.empty()) {
                    EXPECT_GT(id, all_ids.back()) << "life " << life;
                }
                all_ids.push_back(id);
            }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        chaos::kill9(d);
        d = chaos::spawn_gaipd(socket, {"--journal", dir, "--workers", "2"});
    }
    ASSERT_TRUE(chaos::wait_ready(d));
    EXPECT_EQ(all_ids.size(), 15u);
    for (const std::uint64_t id : all_ids)
        EXPECT_EQ(wait_terminal(socket, id).str("state"), "done") << "job " << id;
    chaos::terminate(d);
}

// gaipctl-style streaming survives the daemon dying mid-stream: the client
// reconnects with backoff, re-subscribes to the same id, and sees the
// job's real terminal record. Events must arrive both before and after
// the kill (the stream is live in both daemon lives).
TEST(Chaos, StreamSurvivesDaemonRestartMidStream) {
    const std::string dir = fresh_dir("t_chaos_stream.j");
    const std::string socket = "t_chaos_stream.sock";
    chaos::Gaipd d = chaos::spawn_gaipd(socket, {"--journal", dir});
    ASSERT_TRUE(chaos::wait_ready(d));

    // Long enough to outlive the kill/restart in BOTH lives (the re-run
    // starts from scratch); ended by cancel once the resumed stream is
    // confirmed live again.
    JobSpec marathon = make_spec(service::JobBackend::kBehavioral, 0x3131, 50000, 128);
    marathon.params.n_gens = 50'000'000;
    std::uint64_t id = 0;
    {
        service::Client c = chaos::dial(socket);
        id = c.submit(marathon);
    }

    std::atomic<std::uint64_t> events{0};
    service::RetryPolicy policy;
    policy.attempts = 40;
    policy.base_ms = 25;
    policy.max_ms = 400;
    Frame end;
    std::thread streamer([&] {
        end = service::stream_with_resume(socket, id, policy,
                                          [&](const trace::TraceEvent&) { ++events; });
    });

    auto wait_events_past = [&](std::uint64_t mark, const char* when) {
        for (int spin = 0; spin < 2000 && events.load() <= mark; ++spin)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        ASSERT_GT(events.load(), mark) << "no stream events " << when;
    };
    wait_events_past(0, "before the kill");

    chaos::kill9(d);
    d = chaos::spawn_gaipd(socket, {"--journal", dir});
    ASSERT_TRUE(chaos::wait_ready(d));
    const std::uint64_t at_restart = events.load();
    wait_events_past(at_restart, "after recovery (stream did not resume)");

    {
        service::Client c = chaos::dial(socket);
        EXPECT_EQ(c.cancel(id), service::CancelOutcome::kCancelled);
    }
    streamer.join();
    EXPECT_EQ(end.str("state"), "cancelled") << service::to_line(end);
    chaos::terminate(d);
}

// `shutdown --drain` finishes the running job, journals the queue, and
// the process exits 0 BY ITSELF; the next boot re-admits and finishes
// the queued jobs under their original ids.
TEST(Chaos, DrainShutdownHandsQueueToNextBoot) {
    const std::string dir = fresh_dir("t_chaos_drain.j");
    const std::string socket = "t_chaos_drain.sock";
    chaos::Gaipd d = chaos::spawn_gaipd(socket, {"--journal", dir, "--workers", "1"});
    ASSERT_TRUE(chaos::wait_ready(d));

    std::vector<std::uint64_t> queued;
    {
        service::Client c = chaos::dial(socket);
        // Long enough to still be running when the drain lands a few
        // rpcs later, short enough that the drain exit stays prompt.
        JobSpec running = make_spec(service::JobBackend::kBehavioral, 0x41, 1000, 128);
        running.params.n_gens = 50'000;  // ~2 s: outlives the drain rpc by far
        c.submit(running);
        for (std::uint16_t seed : {0x42, 0x43, 0x44})
            queued.push_back(c.submit(make_spec(service::JobBackend::kGates, seed, 16)));
        Frame req(service::verb::kShutdown);
        req.add("drain", std::uint64_t{1});
        const Frame ack = c.rpc(req);
        EXPECT_EQ(ack.u64("drain"), 1u);
    }
    const int st = chaos::reap(d);  // exits by itself once running == 0
    EXPECT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0) << "wait status " << st;

    d = chaos::spawn_gaipd(socket, {"--journal", dir, "--workers", "2"});
    ASSERT_TRUE(chaos::wait_ready(d));
    {
        service::Client c = chaos::dial(socket);
        EXPECT_GE(c.stats().u64("readmitted"), queued.size());
    }
    for (const std::uint64_t id : queued)
        EXPECT_EQ(wait_terminal(socket, id).str("state"), "done") << "job " << id;
    chaos::terminate(d);
}

// The real gaipctl binary: `ping --wait` is the boot/recovery readiness
// probe (it must tolerate the daemon appearing LATE), and the documented
// exit codes are deterministic so the CI chaos loop can script on them.
TEST(Chaos, GaipctlPingWaitAndExitCodes) {
    const std::string socket = "t_chaos_ctl.sock";
    fs::remove(socket);

    // Exit 4, promptly, when nobody ever answers.
    const int down = std::system((std::string(GAIPCTL_BIN) + " -s " + socket +
                                  " ping --wait 0.3 >/dev/null 2>&1")
                                     .c_str());
    ASSERT_TRUE(WIFEXITED(down));
    EXPECT_EQ(WEXITSTATUS(down), 4);

    // Exit 2 on a usage error, before any socket is touched.
    const int usage = std::system(
        (std::string(GAIPCTL_BIN) + " -s " + socket + " frobnicate >/dev/null 2>&1").c_str());
    ASSERT_TRUE(WIFEXITED(usage));
    EXPECT_EQ(WEXITSTATUS(usage), 2);

    // The probe outlives a slow boot: start gaipd 300 ms into the wait.
    chaos::Gaipd d;
    std::thread late([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        d = chaos::spawn_gaipd(socket, {});
    });
    const int up = std::system(
        (std::string(GAIPCTL_BIN) + " -s " + socket + " ping --wait 30 >/dev/null 2>&1").c_str());
    late.join();
    ASSERT_TRUE(WIFEXITED(up));
    EXPECT_EQ(WEXITSTATUS(up), 0);
    chaos::terminate(d);
}

}  // namespace
