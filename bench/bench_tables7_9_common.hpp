// Shared driver for the Tables VII / VIII / IX reproductions: the paper's
// FPGA experiments sweep six RNG seeds x population {32, 64} x crossover
// threshold {10, 12} with mutation 1/16 and 64 generations, and report the
// best fitness each setting reaches.
#pragma once

#include <array>
#include <map>

#include "bench/common.hpp"
#include "fitness/functions.hpp"

namespace gaip::bench {

struct SweepCell {
    std::uint8_t pop;
    std::uint8_t xr;
};

inline constexpr std::array<SweepCell, 4> kSweepCells = {
    SweepCell{32, 10}, SweepCell{32, 12}, SweepCell{64, 10}, SweepCell{64, 12}};

/// Paper values for one table: paper[seed][cell index in kSweepCells order].
using PaperGrid = std::map<std::uint16_t, std::array<unsigned, 4>>;

/// Run the 24-setting sweep and print it in the paper's layout.
inline void run_table(const std::string& title, const std::string& csv_name,
                      fitness::FitnessId fn, const PaperGrid& paper,
                      unsigned global_optimum) {
    banner(title, "6 seeds x pop {32,64} x XR {10,12}; mutation 1/16, 64 generations");

    util::TextTable table({"Seed(hex)", "P32/XR10", "P32/XR12", "P64/XR10", "P64/XR12",
                           "paper(P32/10)", "paper(P32/12)", "paper(P64/10)", "paper(P64/12)"});

    unsigned best_overall = 0;
    unsigned optima_found = 0;
    for (const std::uint16_t seed : kPaperSeeds) {
        std::array<unsigned, 4> ours{};
        for (std::size_t i = 0; i < kSweepCells.size(); ++i) {
            const core::GaParameters p{.pop_size = kSweepCells[i].pop, .n_gens = 64,
                                       .xover_threshold = kSweepCells[i].xr,
                                       .mut_threshold = 1, .seed = seed};
            const core::RunResult r = run_hw(fn, p, /*keep_populations=*/false);
            ours[i] = r.best_fitness;
            best_overall = std::max(best_overall, ours[i]);
            if (ours[i] == global_optimum) ++optima_found;
        }
        const auto it = paper.find(seed);
        std::array<unsigned, 4> pv{};
        if (it != paper.end()) pv = it->second;
        table.add(util::hex16(seed), ours[0], ours[1], ours[2], ours[3], pv[0], pv[1], pv[2],
                  pv[3]);
    }

    table.print();
    table.write_csv(out_path(csv_name));
    const auto opt = fitness::grid_optimum(fn);
    std::printf("\nbest over all 24 settings: %u   table optimum: %u (%s)   settings hitting"
                " the optimum: %u/24\n",
                best_overall, opt.best_value, vs_paper(best_overall, opt.best_value).c_str(),
                optima_found);
    std::printf("CSV: %s\n", out_path(csv_name).c_str());
}

}  // namespace gaip::bench
