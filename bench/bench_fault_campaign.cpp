// SEU fault-injection campaign over the gate-level GA core (scan-chain
// fault model). Enumerates every scan-chain flip-flop x a coarse injection
// cycle grid (405 bits x 25 points = 10125 faults for the default config),
// runs them (64 x words - 1)-per-batch on the compiled lane-block gate
// simulator (8-word / 512-lane blocks by default here, batches fanned out
// across all cores), and classifies each as masked / wrong-answer / hang /
// recovered.
//
// Cross-validation baked into the run:
//   * lane 0 of every batch must reproduce the RT-level golden run bit- and
//     cycle-exactly (checked inside FaultCampaign);
//   * a stratified sample of records is replayed on the RT-level model via
//     both the scan-chain read-modify-write backend and the register-poke
//     backend — all three backends must agree on the classification;
//   * sampled "recovered" faults are driven through the actual PRESET
//     fallback (preset pins + start_GA pulse, no reset) and must land on
//     the preset mode's exact behavioral result.
//
// Usage:
//   bench_fault_campaign                 full campaign (~10k injections)
//   bench_fault_campaign --quick        strided subsample (~400 injections)
//   bench_fault_campaign --stride N      keep every N-th site
//   bench_fault_campaign --max-sites N   cap the site count
//   bench_fault_campaign --words N       lane-block width (1/2/4/8 u64 words)
//   bench_fault_campaign --threads N     worker threads (0 = all cores)
//   bench_fault_campaign --backend B     gate engine: interp (default) or jit
//   bench_fault_campaign --replay REG BIT CYCLE
//                                        rerun one fault on all 3 backends
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "fault/campaign.hpp"
#include "gates/compiled_kernels.hpp"
#include "gates/jit.hpp"
#include "util/worker_pool.hpp"

namespace {

using namespace gaip;
using fault::FaultOutcome;
using fault::FaultRecord;
using fault::FaultSite;
using fault::InjectBackend;

double now_s() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void print_record(const char* tag, const FaultRecord& r) {
    std::printf("  %-10s %s[%u] @%llu  inject=%llu  outcome=%-12s", tag, r.site.reg.c_str(),
                r.site.bit, static_cast<unsigned long long>(r.site.cycle),
                static_cast<unsigned long long>(r.inject_cycle), fault::outcome_name(r.outcome));
    if (r.finished)
        std::printf("  fit=%u cand=0x%04X cycles=%llu", r.best_fitness, r.best_candidate,
                    static_cast<unsigned long long>(r.ga_cycles));
    else
        std::printf("  final_state=%u", r.final_state);
    std::printf("\n");
}

int replay_one(fault::FaultCampaign& campaign, const FaultSite& site) {
    std::printf("replaying %s[%u] @ cycle %llu on all three backends\n", site.reg.c_str(),
                site.bit, static_cast<unsigned long long>(site.cycle));
    const FaultRecord scan = campaign.run_rtl(site, InjectBackend::kScan);
    const FaultRecord poke = campaign.run_rtl(site, InjectBackend::kPoke);
    const auto gate_res = campaign.run_gate({site});
    if (gate_res.records.size() != 1) {
        std::printf("FAIL: gate backend returned %zu records\n", gate_res.records.size());
        return 1;
    }
    const FaultRecord& gate = gate_res.records[0];
    print_record("scan", scan);
    print_record("poke", poke);
    print_record("lane-mask", gate);
    const bool agree = scan.outcome == poke.outcome && poke.outcome == gate.outcome &&
                       scan.inject_cycle == poke.inject_cycle &&
                       poke.inject_cycle == gate.inject_cycle &&
                       scan.best_fitness == poke.best_fitness &&
                       poke.best_fitness == gate.best_fitness;
    std::printf("backends %s\n", agree ? "AGREE" : "DISAGREE");
    return agree ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace gaip;
    bench::banner("SEU fault-injection campaign (scan-chain fault model)",
                  "Section V scan-chain testability + Table II scan pins, as a "
                  "fault-injection harness");

    fault::CampaignConfig cfg;
    // Bench defaults differ from the library defaults (1 word, 1 thread):
    // the campaign is the throughput showcase, so take the widest block and
    // every core unless told otherwise. Results are bit-identical across
    // widths/threads (tests/fault/test_campaign.cpp pins this).
    cfg.lane_words = 8;
    cfg.threads = 0;
    FaultSite replay_site;
    bool replay = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            cfg.stride = 23;  // coprime with the 25-point cycle grid
        } else if (std::strcmp(argv[i], "--stride") == 0 && i + 1 < argc) {
            cfg.stride = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--max-sites") == 0 && i + 1 < argc) {
            cfg.max_sites = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--words") == 0 && i + 1 < argc) {
            cfg.lane_words = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            cfg.threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
            const char* b = argv[++i];
            if (std::strcmp(b, "interp") == 0) {
                cfg.backend = gates::Backend::kInterp;
            } else if (std::strcmp(b, "jit") == 0) {
                cfg.backend = gates::Backend::kJit;
            } else {
                std::printf("unknown --backend: %s (expected interp or jit)\n", b);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--replay") == 0 && i + 3 < argc) {
            replay_site.reg = argv[++i];
            replay_site.bit = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
            replay_site.cycle = std::strtoull(argv[++i], nullptr, 0);
            replay = true;
        } else {
            std::printf("unknown argument: %s\n", argv[i]);
            return 2;
        }
    }

    fault::FaultCampaign campaign(cfg);
    const fault::GoldenRun& golden = campaign.golden();
    std::printf("golden run: mBF6_2 pop=%u gens=%u -> fit=%u cand=0x%04X in %llu cycles\n",
                cfg.params.pop_size, cfg.params.n_gens, golden.best_fitness,
                golden.best_candidate, static_cast<unsigned long long>(golden.ga_cycles));
    std::printf("scan chain: %u flip-flops in %zu registers\n", campaign.injector().chain_length(),
                campaign.injector().layout().size());

    if (replay) return replay_one(campaign, replay_site);

    const std::vector<FaultSite> sites = campaign.enumerate_sites();
    std::printf("fault space: %zu sites (%u cycle points, stride %llu)\n", sites.size(),
                cfg.cycle_points, static_cast<unsigned long long>(cfg.stride));
    const gates::Backend resolved = gates::resolve_backend(cfg.backend);
    const unsigned threads_used =
        gaip::util::resolve_threads(cfg.threads, (sites.size() + cfg.lane_words * 64 - 2) /
                                                     (cfg.lane_words * 64 - 1));
    std::printf("gate backend: %s engine, %u-word lane blocks (%u lanes: 1 golden + %u "
                "injections per batch), %u worker thread(s)\n\n",
                gates::backend_name(resolved), cfg.lane_words, cfg.lane_words * 64,
                cfg.lane_words * 64 - 1, threads_used);
    gates::jit::reset_stats();

    const double t0 = now_s();
    std::size_t last_pct = 0;
    fault::CampaignResult res = campaign.run_gate(sites, [&](std::size_t done, std::size_t total) {
        const std::size_t pct = done * 100 / total;
        if (pct >= last_pct + 10 || done == total) {
            std::printf("  %zu/%zu injections (%zu%%)\n", done, total, pct);
            std::fflush(stdout);
            last_pct = pct;
        }
    });
    const double dt = now_s() - t0;

    std::printf("\ncampaign: %zu injections in %.1fs (%zu batches, %.2fM gate cycles, "
                "%.0f injections/s)\n",
                res.records.size(), dt, res.batches, res.gate_cycles / 1e6,
                res.records.size() / dt);
    std::printf("  masked    %6llu (%.1f%%)\n", static_cast<unsigned long long>(res.masked),
                100.0 * res.masked / res.records.size());
    std::printf("  wrong     %6llu (%.1f%%)\n", static_cast<unsigned long long>(res.wrong),
                100.0 * res.wrong / res.records.size());
    std::printf("  hang      %6llu (%.1f%%)\n", static_cast<unsigned long long>(res.hang),
                100.0 * res.hang / res.records.size());
    std::printf("  recovered %6llu (%.1f%%)\n\n", static_cast<unsigned long long>(res.recovered),
                100.0 * res.recovered / res.records.size());

    // Per-register vulnerability table, most vulnerable first.
    std::vector<fault::RegisterVulnerability> vuln = fault::aggregate_by_register(res.records);
    std::sort(vuln.begin(), vuln.end(),
              [](const auto& a, const auto& b) { return a.vulnerability() > b.vulnerability(); });
    util::TextTable table({"register", "bits", "inj", "masked", "wrong", "hang", "recov", "vuln"});
    for (const auto& v : vuln) {
        char pct[16];
        std::snprintf(pct, sizeof(pct), "%.1f%%", 100.0 * v.vulnerability());
        table.add(v.reg, v.width, v.injections, v.masked, v.wrong, v.hang, v.recovered, pct);
    }
    table.print();

    // Stratified cross-check: replay sampled records from every outcome
    // class on both RT-level backends; classifications must agree.
    std::map<FaultOutcome, std::vector<const FaultRecord*>> by_outcome;
    for (const FaultRecord& r : res.records) {
        auto& bucket = by_outcome[r.outcome];
        if (bucket.size() < 3) bucket.push_back(&r);
    }
    std::printf("\ncross-backend check (gate lane-mask vs RTL scan vs RTL poke):\n");
    std::size_t checked = 0, disagreements = 0;
    for (const auto& [outcome, bucket] : by_outcome) {
        for (const FaultRecord* rec : bucket) {
            const FaultRecord scan = campaign.run_rtl(rec->site, InjectBackend::kScan);
            const FaultRecord poke = campaign.run_rtl(rec->site, InjectBackend::kPoke);
            const bool agree = scan.outcome == rec->outcome && poke.outcome == rec->outcome &&
                               scan.best_fitness == rec->best_fitness &&
                               poke.best_fitness == rec->best_fitness;
            ++checked;
            if (!agree) {
                ++disagreements;
                print_record("gate", *rec);
                print_record("scan", scan);
                print_record("poke", poke);
            }
        }
    }
    std::printf("  %zu records checked, %zu disagreements\n", checked, disagreements);

    // PRESET fallback demonstration on sampled recovered faults: the
    // supervisor recipe (preset pins + start pulse, no reset) must land on
    // the preset mode's exact behavioral result despite the corrupted state.
    std::size_t fb_checked = 0, fb_failed = 0;
    for (const FaultRecord& r : res.records) {
        if (r.outcome != FaultOutcome::kRecovered || fb_checked >= 3) continue;
        ++fb_checked;
        FaultRecord observed;
        if (!campaign.injector().validate_preset_fallback(r.site, &observed)) {
            ++fb_failed;
            print_record("fallback", observed);
        }
    }
    std::printf("  %zu recovered faults re-driven through PRESET fallback, %zu failed\n",
                fb_checked, fb_failed);

    // Machine-readable outputs.
    const std::string csv_path = bench::out_path("faults_records.csv");
    {
        std::ofstream csv(csv_path);
        csv << "reg,bit,cycle,inject_cycle,outcome,finished,best_fitness,best_candidate,"
               "ga_cycles,final_state\n";
        for (const FaultRecord& r : res.records)
            csv << r.site.reg << ',' << r.site.bit << ',' << r.site.cycle << ','
                << r.inject_cycle << ',' << fault::outcome_name(r.outcome) << ','
                << (r.finished ? 1 : 0) << ',' << r.best_fitness << ',' << r.best_candidate
                << ',' << r.ga_cycles << ',' << unsigned(r.final_state) << '\n';
    }
    std::printf("CSV:  %s\n", csv_path.c_str());

    bench::JsonReport report;
    report.set("bench", std::string("fault_campaign"))
        .set("backend", std::string(gates::backend_name(resolved)))
        .set("fitness", std::string("mBF6_2"))
        .set("pop_size", std::uint64_t(cfg.params.pop_size))
        .set("n_gens", std::uint64_t(cfg.params.n_gens))
        .set("chain_bits", std::uint64_t(campaign.injector().chain_length()))
        .set("cycle_points", std::uint64_t(cfg.cycle_points))
        .set("injections", std::uint64_t(res.records.size()))
        .set("masked", res.masked)
        .set("wrong_answer", res.wrong)
        .set("hang", res.hang)
        .set("recovered", res.recovered)
        .set("masked_fraction", double(res.masked) / res.records.size())
        .set("golden_best_fitness", std::uint64_t(golden.best_fitness))
        .set("golden_ga_cycles", golden.ga_cycles)
        .set("gate_cycles", res.gate_cycles)
        .set("lane_words", std::uint64_t(cfg.lane_words))
        .set("lanes_per_batch", std::uint64_t(cfg.lane_words) * 64)
        .set("threads", std::uint64_t(cfg.threads))
        .set("batches", std::uint64_t(res.batches))
        .set("wall_seconds", dt)
        .set("injections_per_second", res.records.size() / dt)
        .set("crosscheck_records", std::uint64_t(checked))
        .set("crosscheck_disagreements", std::uint64_t(disagreements))
        .set("fallback_checked", std::uint64_t(fb_checked))
        .set("fallback_failed", std::uint64_t(fb_failed));
    if (resolved == gates::Backend::kJit || resolved == gates::Backend::kJitForce) {
        const gates::jit::Stats js = gates::jit::stats();
        report.set("jit_compiles", js.compiles)
            .set("jit_compile_ms_total", js.compile_ms_total)
            .set("jit_disk_hits", js.disk_hits)
            .set("jit_memory_hits", js.memory_hits)
            .set("jit_fallbacks", js.fallbacks);
        std::printf("  jit cache: %llu compile(s) (%.0f ms), %llu disk hit(s), %llu"
                    " in-process hit(s), %llu fallback(s)\n",
                    static_cast<unsigned long long>(js.compiles), js.compile_ms_total,
                    static_cast<unsigned long long>(js.disk_hits),
                    static_cast<unsigned long long>(js.memory_hits),
                    static_cast<unsigned long long>(js.fallbacks));
    }
    bench::env_block(report, cfg.lane_words, threads_used,
                     gates::kernels::selected_name(cfg.lane_words),
                     gates::backend_name(resolved));
    report.write(bench::out_path("BENCH_faults.json"));

    if (disagreements != 0 || fb_failed != 0) {
        std::printf("\nFAIL: backend disagreement or fallback failure\n");
        return 1;
    }
    return 0;
}
