// Island-scaling bench: the two headline tables of the N-core island
// system, taken on the gate-level SIMD lane block (the substrate whose
// cycle accounting models a real N-core fabric — per-lane clock gating at
// the barriers, stalls included in the makespan).
//
//   speedup-vs-cores     a fixed 128-member total population split over
//                        N in {1, 2, 4, 8} islands; makespan in GA cycles
//                        shrinks superlinearly with N because the core's
//                        per-generation handshake cost grows with the
//                        subpopulation size — the paper's Sec. V scaling
//                        argument applied to the multi-core extension;
//   quality-vs-topology  isolated vs ring vs star ensembles over the
//                        paper seed schedule: what the migration
//                        interconnect buys in delivered best fitness.
//
// Results land in bench_out/BENCH_islands.json for CI trend tracking.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench/common.hpp"
#include "gates/compiled.hpp"
#include "island/island.hpp"
#include "supervisor/supervisor.hpp"

namespace {

using namespace gaip;

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

island::IslandConfig scaling_cfg(unsigned islands) {
    island::IslandConfig cfg;
    cfg.base.pop_size = static_cast<std::uint8_t>(128 / islands);
    cfg.base.n_gens = 16;
    cfg.base.seed = bench::kPaperSeeds[0];
    cfg.islands = islands;
    cfg.migration.interval = 4;
    cfg.migration.count = 2;
    cfg.backend = supervisor::BackendKind::kGateLane;
    return cfg;
}

}  // namespace

int main() {
    bench::banner("Island-model scaling",
                  "multi-core extension: N GA engines + cycle-level migration interconnect");

    bench::JsonReport report;
    bench::env_block(report);

    // --- speedup vs cores -------------------------------------------------
    std::printf("%-6s %-10s %-12s %-10s %-10s %-10s %s\n", "N", "pop/core", "makespan",
                "speedup", "best", "stall_max", "wall_s");
    std::uint64_t base_makespan = 0;
    bool monotone = true;
    std::uint64_t prev = 0;
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        const auto t0 = std::chrono::steady_clock::now();
        const island::IslandResult r = island::run_island_system(scaling_cfg(n));
        const double wall = seconds_since(t0);
        if (n == 1) base_makespan = r.makespan_cycles;
        if (prev != 0 && r.makespan_cycles >= prev) monotone = false;
        prev = r.makespan_cycles;
        std::uint64_t stall_max = 0;
        for (const island::IslandStats& s : r.islands)
            stall_max = std::max(stall_max, s.stall_cycles);
        const double speedup =
            static_cast<double>(base_makespan) / static_cast<double>(r.makespan_cycles);
        std::printf("%-6u %-10u %-12llu %-10.2f %-10u %-10llu %.2f\n", n, 128 / n,
                    static_cast<unsigned long long>(r.makespan_cycles), speedup,
                    r.best_fitness, static_cast<unsigned long long>(stall_max), wall);
        const std::string p = "scaling_n" + std::to_string(n) + "_";
        report.set(p + "makespan_cycles", r.makespan_cycles)
            .set(p + "speedup", speedup)
            .set(p + "best_fitness", static_cast<std::uint64_t>(r.best_fitness))
            .set(p + "stall_max_cycles", stall_max)
            .set(p + "wall_s", wall);
    }
    report.set("scaling_monotone", static_cast<std::uint64_t>(monotone ? 1 : 0));
    std::printf("monotone speedup: %s\n\n", monotone ? "yes" : "NO");

    // --- quality vs topology ----------------------------------------------
    std::printf("%-8s %-10s %-10s %-10s\n", "seed", "isolated", "ring", "star");
    std::uint64_t sum_iso = 0, sum_ring = 0, sum_star = 0;
    for (const std::uint16_t seed : bench::kPaperSeeds) {
        std::uint16_t best[3] = {0, 0, 0};
        for (int t = 0; t < 3; ++t) {
            island::IslandConfig cfg;
            cfg.base.pop_size = 16;
            cfg.base.n_gens = 24;
            cfg.base.seed = seed;
            cfg.islands = 4;
            cfg.migration.interval = t == 0 ? 0 : 8;
            cfg.migration.count = 2;
            cfg.topology = t == 2 ? island::Topology::kStar : island::Topology::kRing;
            cfg.backend = supervisor::BackendKind::kGateLane;
            best[t] = island::run_island_system(cfg).best_fitness;
        }
        sum_iso += best[0];
        sum_ring += best[1];
        sum_star += best[2];
        std::printf("0x%04X   %-10u %-10u %-10u\n", seed, best[0], best[1], best[2]);
    }
    const double n_seeds = static_cast<double>(bench::kPaperSeeds.size());
    report.set("quality_isolated_mean", static_cast<double>(sum_iso) / n_seeds)
        .set("quality_ring_mean", static_cast<double>(sum_ring) / n_seeds)
        .set("quality_star_mean", static_cast<double>(sum_star) / n_seeds);
    std::printf("mean     %-10.1f %-10.1f %-10.1f\n", sum_iso / n_seeds, sum_ring / n_seeds,
                sum_star / n_seeds);

    report.write(bench::out_path("BENCH_islands.json"));
    return monotone ? 0 : 1;
}
