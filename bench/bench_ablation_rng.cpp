// Ablation: RNG quality and seed sensitivity (the Sec. II-C discussion).
// Sweeps four generators (the paper's CA, an LFSR as in Tommiska & Vuori, a
// good xorshift, and a deliberately weak LCG) across the six paper seeds on
// mBF6_2 and mShubert2D, and reports statistical quality metrics alongside
// GA outcomes — the Meysenburg/Cantu-Paz question in miniature.
#include "bench/common.hpp"
#include "fitness/functions.hpp"
#include "prng/lfsr.hpp"
#include "prng/quality.hpp"
#include "prng/rng_module.hpp"

namespace {

const char* kind_name(gaip::prng::RngKind k) {
    switch (k) {
        case gaip::prng::RngKind::kCellularAutomaton: return "CA 90/150";
        case gaip::prng::RngKind::kLfsr: return "LFSR16";
        case gaip::prng::RngKind::kWeakLcg: return "WeakLCG";
        case gaip::prng::RngKind::kXorShift: return "xorshift16";
    }
    return "?";
}

}  // namespace

int main() {
    using namespace gaip;
    bench::banner("Ablation — RNG quality and seed sensitivity",
                  "Sec. II-C: programmable seeds + RNG quality vs. GA performance");

    const auto kinds = {prng::RngKind::kCellularAutomaton, prng::RngKind::kLfsr,
                        prng::RngKind::kXorShift, prng::RngKind::kWeakLcg};

    // Statistical quality of each generator.
    util::TextTable qual({"Generator", "Period", "chi2(nibbles,15dof)", "chi2(bytes,255dof)",
                          "serial corr", "bit balance"});
    for (const auto kind : kinds) {
        std::uint16_t state = 1;
        const prng::QualityReport q = prng::measure_quality(
            [&] { return state = prng::rng_step(kind, state); }, 65535);
        qual.add(kind_name(kind), static_cast<unsigned long long>(q.period),
                 q.chi_square_nibbles, q.chi_square_bytes, q.serial_correlation, q.bit_balance);
    }
    qual.print();

    // GA outcome sweeps.
    for (const auto fn : {fitness::FitnessId::kMBf6_2, fitness::FitnessId::kMShubert2D}) {
        std::printf("\nGA best fitness on %s (pop 32, 32 gens, XR 10, mut 1):\n",
                    fitness::fitness_name(fn).c_str());
        util::TextTable table({"Generator", "2961", "061F", "B342", "AAAA", "A0A0", "FFFF",
                               "mean", "spread(max-min)"});
        for (const auto kind : kinds) {
            std::vector<std::string> row{kind_name(kind)};
            std::vector<double> bests;
            for (const std::uint16_t seed : bench::kPaperSeeds) {
                const core::GaParameters p{.pop_size = 32, .n_gens = 32, .xover_threshold = 10,
                                           .mut_threshold = 1, .seed = seed};
                const core::RunResult r = bench::run_hw(fn, p, false, kind);
                bests.push_back(r.best_fitness);
                row.push_back(std::to_string(r.best_fitness));
            }
            const util::Summary s = util::summarize(bests);
            row.push_back(util::TextTable::to_cell(s.mean));
            row.push_back(util::TextTable::to_cell(s.max - s.min));
            table.add_row(std::move(row));
        }
        table.print();
        table.write_csv(bench::out_path(std::string("ablation_rng_") +
                                        fitness::fitness_name(fn) + ".csv"));
    }

    std::cout << "\nReadings: (a) the seed alone moves the outcome by hundreds-to-thousands of\n"
                 "fitness points for EVERY generator — the paper's case for a programmable\n"
                 "seed; (b) the weak LCG's alternating low bit skews the 4-bit operator\n"
                 "decisions, generally hurting or destabilizing results vs. the maximal-\n"
                 "period generators (the Cantu-Paz effect).\n";
    return 0;
}
