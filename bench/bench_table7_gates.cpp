// Table VII, entirely at gate level: the 24 hardware parameter settings
// (6 paper seeds x pop {32,64} x XR {10,12}, mutation 1/16, 64 generations)
// of the mBF6_2 sweep run as 24 LANES of ONE bit-parallel simulation of the
// complete gate-level GA core + RNG module (BatchGateRunner), instead of 24
// sequential scalar netlist simulations. Every lane's best fitness is
// cross-checked against the RT-level GaSystem result for the same setting.
#include <chrono>
#include <cstdio>

#include "bench/bench_tables7_9_common.hpp"
#include "bench/gate_batch_runner.hpp"

int main() {
    using namespace gaip;
    bench::banner("Table VII at GATE LEVEL — mBF6_2, batched 24-lane simulation",
                  "Sec. IV experiments re-run on the flattened netlist; one lane per setting");

    const fitness::FitnessId fn = fitness::FitnessId::kMBf6_2;

    // Lane k = seed index * 4 + cell index (kSweepCells order).
    std::vector<core::GaParameters> lanes;
    for (const std::uint16_t seed : bench::kPaperSeeds)
        for (const bench::SweepCell& c : bench::kSweepCells)
            lanes.push_back({.pop_size = c.pop, .n_gens = 64, .xover_threshold = c.xr,
                             .mut_threshold = 1, .seed = seed});

    bench::BatchGateRunner runner(fn, lanes);
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<bench::BatchLaneResult> batch = runner.run();
    const double t_batch =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    // RT-level reference grid for the same settings (the acceptance check).
    unsigned mismatches = 0;
    std::vector<std::uint16_t> rtl_best(lanes.size());
    for (std::size_t k = 0; k < lanes.size(); ++k) {
        const core::RunResult r = bench::run_hw(fn, lanes[k], /*keep_populations=*/false);
        rtl_best[k] = r.best_fitness;
        if (!batch[k].finished || batch[k].best_fitness != r.best_fitness ||
            batch[k].best_candidate != r.best_candidate)
            ++mismatches;
    }

    util::TextTable table({"Seed(hex)", "P32/XR10", "P32/XR12", "P64/XR10", "P64/XR12",
                           "rtl(P32/10)", "rtl(P32/12)", "rtl(P64/10)", "rtl(P64/12)"});
    unsigned best_overall = 0;
    for (std::size_t s = 0; s < bench::kPaperSeeds.size(); ++s) {
        const std::size_t base = s * bench::kSweepCells.size();
        for (std::size_t i = 0; i < 4; ++i)
            best_overall = std::max<unsigned>(best_overall, batch[base + i].best_fitness);
        table.add(util::hex16(bench::kPaperSeeds[s]), batch[base + 0].best_fitness,
                  batch[base + 1].best_fitness, batch[base + 2].best_fitness,
                  batch[base + 3].best_fitness, rtl_best[base + 0], rtl_best[base + 1],
                  rtl_best[base + 2], rtl_best[base + 3]);
    }
    table.print();
    table.write_csv(bench::out_path("table7_gates.csv"));

    const auto opt = fitness::grid_optimum(fn);
    std::printf("\nbest over all 24 gate-level settings: %u   optimum: %u (%s)\n",
                best_overall, opt.best_value,
                bench::vs_paper(best_overall, opt.best_value).c_str());
    std::printf("gate-vs-RTL agreement: %zu/%zu lanes bit-exact (fitness + candidate)\n",
                lanes.size() - mismatches, lanes.size());

    // Throughput: the batched simulation advanced 24 full GA runs per pass.
    const double gate_cycles = static_cast<double>(runner.cycles());
    std::printf("\nbatched gate simulation: %zu lanes, %.0f GA cycles, %.2f s wall "
                "(%.0f cycles/s; %.0f lane-cycles/s run-equivalent)\n",
                lanes.size(), gate_cycles, t_batch, gate_cycles / t_batch,
                gate_cycles * static_cast<double>(lanes.size()) / t_batch);
    std::printf("CSV: %s\n", bench::out_path("table7_gates.csv").c_str());

    if (mismatches > 0) {
        std::printf("ERROR: gate-level lanes diverge from the RT-level reference!\n");
        return 1;
    }
    return 0;
}
