// Table VIII reproduction: best fitness on mBF7_2 across the 24 hardware
// parameter settings. Paper headline: best 61496 at (x=0xEC, y=0xFF),
// ~3.7% below the global optimum 63904.
#include "bench/bench_tables7_9_common.hpp"

int main() {
    using namespace gaip;
    const bench::PaperGrid paper = {
        {0x2961, {56835, 56835, 48135, 56456}},
        {0x061F, {59648, 53432, 59648, 60656}},
        {0xB342, {55000, 59928, 59480, 57184}},
        {0xAAAA, {55560, 52704, 55000, 61496}},
        {0xA0A0, {58136, 53040, 58024, 56624}},
        {0xFFFF, {60880, 61384, 56344, 60768}},
    };
    bench::run_table("Table VIII — best fitness, mBF7_2", "table8_mbf7.csv",
                     fitness::FitnessId::kMBf7_2, paper,
                     fitness::grid_optimum(fitness::FitnessId::kMBf7_2).best_value);
    return 0;
}
