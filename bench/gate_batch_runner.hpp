// BatchGateRunner: batched multi-seed / multi-setting GA runs on the
// COMPLETE gate-level GA module (GaCoreNetlist + RngNetlist), one run per
// lane of a single CompiledNetlist 64-lane simulation.
//
// Each lane gets its own GaParameters (seed, population size, thresholds,
// generations) and runs the full system flow the RT-level GaSystem runs:
//   * the Sec. III-B.6 init handshake (six index/value writes over
//     ga_load/data_valid/data_ack, snooped by the RNG module for the seed),
//   * the start_GA pulse,
//   * the fitness-evaluation handshake against a software FEM model
//     (fitness_u16 lookup — the same values the block-ROM FEM holds),
//   * a per-lane 256x32 write-first synchronous GA memory model,
// and delivers the per-lane best fitness/candidate when GA_done rises.
//
// The per-lane peripherals are software models driven at GA-clock
// granularity; the handshakes are latency-insensitive by design (the core
// consumes random numbers only in the *Rn states, never while waiting), so
// lane results are identical to the RT-level GaSystem results for the same
// seed/settings — asserted by tests/gates/test_gate_batch_runner.cpp.
//
// This is what makes the Table VII-IX grids usable at gate level: the full
// 24-setting grid is ONE batched simulation instead of 24 scalar ones
// (bench_table7_gates.cpp).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/params.hpp"
#include "fitness/functions.hpp"
#include "gates/compiled.hpp"
#include "gates/ga_core_gates.hpp"
#include "gates/rng_gates.hpp"
#include "mem/ga_memory.hpp"
#include "trace/event.hpp"
#include "trace/vcd.hpp"

namespace gaip::bench {

struct BatchLaneResult {
    bool finished = false;
    std::uint16_t best_fitness = 0;
    std::uint16_t best_candidate = 0;
    std::uint32_t generations = 0;
    std::uint64_t evaluations = 0;
    std::uint64_t ga_cycles = 0;  ///< GA-clock cycles from start_GA to GA_done
};

class BatchGateRunner {
public:
    static constexpr unsigned kLanes = gates::CompiledNetlist::kLanes;

    /// One lane per entry of `lane_params` (at most 64). Every lane runs
    /// `fn` as its (internal, slot-0) fitness function.
    BatchGateRunner(fitness::FitnessId fn, std::vector<core::GaParameters> lane_params)
        : fn_(fn),
          params_(std::move(lane_params)),
          core_src_(gates::build_ga_core_netlist()),
          rng_src_(gates::build_rng_netlist()),
          core_(core_src_->nl),
          rng_(rng_src_->nl) {
        if (params_.empty() || params_.size() > kLanes)
            throw std::invalid_argument("BatchGateRunner: need 1..64 lane configs");
        presets_.assign(params_.size(), 0);
        lanes_.resize(params_.size());
        for (std::size_t k = 0; k < params_.size(); ++k) {
            Lane& l = lanes_[k];
            const core::GaParameters& p = params_[k];
            l.program = {
                {0, static_cast<std::uint16_t>(p.n_gens & 0xFFFF)},
                {1, static_cast<std::uint16_t>(p.n_gens >> 16)},
                {2, p.pop_size},
                {3, p.xover_threshold},
                {4, p.mut_threshold},
                {5, p.seed},
            };
        }
    }

    std::size_t lane_count() const noexcept { return lanes_.size(); }
    std::uint64_t cycles() const noexcept { return cycle_; }
    const gates::CompiledNetlist& core_sim() const noexcept { return core_; }

    /// Put one lane in a Table IV preset mode (1..3): its preset pins are
    /// driven, the init handshake is skipped (presets bypass all programmed
    /// state — the paper's init-failure fault-tolerance scenario), and the
    /// start pulse is issued right after reset. Mode 0 restores the normal
    /// user-mode flow. The lane's GaParameters entry is then ignored.
    void set_lane_preset(unsigned lane, std::uint8_t preset) {
        if (lane >= lanes_.size())
            throw std::invalid_argument("BatchGateRunner: lane out of range");
        presets_[lane] = preset & 0x3;
    }

    /// Current controller-FSM state of one lane (the supervisor's watchdog
    /// classification input: kIdle = recoverable, anything else = wedged).
    std::uint8_t lane_state(unsigned lane) const {
        if (lane >= lanes_.size())
            throw std::invalid_argument("BatchGateRunner: lane out of range");
        return static_cast<std::uint8_t>(core_.word_value(core_src_->state, lane));
    }

    /// Attach a telemetry sink to one lane (borrowed; nullptr detaches).
    /// The lane then emits the same protocol/generation event stream the
    /// RT-level SystemTap produces (minus the RT-only op counters), with
    /// `cycle` counted from the runner's reset and `t` = cycle x 20 ns.
    void set_lane_sink(unsigned lane, trace::TraceSink* sink) {
        if (lane >= lanes_.size())
            throw std::invalid_argument("BatchGateRunner: lane out of range");
        lane_sinks_[lane] = sink;
        tracing_ = false;
        for (const trace::TraceSink* s : lane_sinks_) tracing_ |= (s != nullptr);
    }

    /// Register per-lane waveform probes of the compiled core on `vcd`
    /// (borrowed; must outlive run()). One scope per requested lane
    /// ("gates.lane<k>"), sampled once per GA cycle with the 50 MHz period
    /// (20'000 ps) as the tick — a per-lane slice of the 64-lane simulation
    /// in GTKWave. One run() per writer (VCD time is monotonic).
    void add_vcd(trace::VcdWriter* vcd, const std::vector<unsigned>& lanes_to_trace) {
        for (const unsigned lane : lanes_to_trace) {
            if (lane >= lanes_.size())
                throw std::invalid_argument("BatchGateRunner: lane out of range");
            const std::string scope = "gates.lane" + std::to_string(lane);
            auto word = [this, lane](const gates::Word& w) {
                const gates::Word* pw = &w;  // stable: lives in *core_src_
                return [this, lane, pw] { return core_.word_value(*pw, lane); };
            };
            auto bit = [this, lane](gates::Net n) {
                return [this, lane, n] {
                    return (core_.lanes(n) >> lane) & 1u;
                };
            };
            vcd->add_probe(scope, "state", 6, word(core_src_->state));
            vcd->add_probe(scope, "gen_id", 32, word(core_src_->gen_id));
            vcd->add_probe(scope, "best_fit", 16, word(core_src_->best_fit));
            vcd->add_probe(scope, "best_ind", 16, word(core_src_->best_ind));
            vcd->add_probe(scope, "candidate", 16, word(core_src_->candidate));
            vcd->add_probe(scope, "bank", 1, bit(core_src_->bank));
            vcd->add_probe(scope, "data_ack", 1, bit(core_src_->data_ack));
            vcd->add_probe(scope, "fitness_request", 1, bit(core_src_->fit_request));
            vcd->add_probe(scope, "GA_done", 1, bit(core_src_->ga_done));
            vcd->add_probe(scope, "mon_gen_pulse", 1, bit(core_src_->mon_gen_pulse));
        }
        vcd_ = vcd;
    }

    /// Reset everything and run until every lane reaches GA_done (or the
    /// cycle bound trips). Returns one result per configured lane.
    std::vector<BatchLaneResult> run(std::uint64_t max_cycles = 0) {
        const std::vector<BatchLaneResult> out = run_bounded(max_cycles);
        for (const BatchLaneResult& r : out)
            if (!r.finished)
                throw std::runtime_error("BatchGateRunner: lanes did not finish within bound");
        return out;
    }

    /// Watchdog-friendly variant of run(): a lane that misses the cycle
    /// bound is reported with `finished == false` instead of throwing, so a
    /// supervisor can classify the trip (lane_state()) and walk its
    /// recovery ladder. `max_cycles` counts from reset (init handshake
    /// included); 0 selects the formula bound.
    std::vector<BatchLaneResult> run_bounded(std::uint64_t max_cycles = 0) {
        if (max_cycles == 0) max_cycles = default_cycle_bound();
        reset();
        std::size_t unfinished = lanes_.size();
        while (unfinished > 0 && cycle_ < max_cycles) unfinished = step();
        std::vector<BatchLaneResult> out;
        out.reserve(lanes_.size());
        for (const Lane& l : lanes_) out.push_back(l.result);
        return out;
    }

private:
    struct Lane {
        // init-handshake FSM (mirrors system::InitModule at GA granularity)
        std::vector<std::pair<std::uint8_t, std::uint16_t>> program;
        std::size_t init_item = 0;
        bool init_asserting = true;
        bool init_done = false;
        // start pulse
        int start_hold = -1;  ///< -1 = not yet scheduled; >0 = cycles left high
        bool started = false;
        std::uint64_t start_cycle = 0;
        // software FEM (slot 0, zero-latency block-ROM model)
        bool fem_valid = false;
        std::uint16_t fem_value = 0;
        // per-lane GA memory (256 x 32, synchronous read, write-first)
        std::array<std::uint32_t, mem::kGaMemoryDepth> mem{};
        std::uint32_t mem_dout = 0;
        // telemetry edge detectors (touched only when a sink is attached)
        bool prev_ack = false;
        bool prev_pulse = false;
        bool prev_bank = false;
        bool init_done_traced = false;
        bool start_traced = false;
        BatchLaneResult result;
    };

    std::uint64_t default_cycle_bound() const {
        std::uint64_t bound = 0;
        for (std::size_t k = 0; k < params_.size(); ++k) {
            const core::GaParameters eff = core::resolve_parameters(presets_[k], params_[k]);
            const std::uint64_t evals = static_cast<std::uint64_t>(eff.pop_size) *
                                        (static_cast<std::uint64_t>(eff.n_gens) + 1);
            bound = std::max<std::uint64_t>(
                bound, evals * (64ull + 8ull * eff.pop_size) + 100'000ull);
        }
        return bound;
    }

    void reset() {
        cycle_ = 0;
        for (std::size_t k = 0; k < lanes_.size(); ++k) {
            Lane fresh;
            fresh.program = std::move(lanes_[k].program);
            if (presets_[k] != 0) {
                // Preset lane: Table IV pins carry the run — no handshake,
                // start pulse scheduled immediately.
                fresh.init_done = true;
                fresh.init_done_traced = true;
                fresh.start_hold = 2;
            }
            lanes_[k] = std::move(fresh);
        }
        // Static pins: per-lane preset mode (user mode = 0), fitness slot 0.
        std::array<std::uint64_t, 2> preset_w{};
        for (std::size_t k = 0; k < presets_.size(); ++k)
            for (unsigned j = 0; j < 2; ++j)
                if ((presets_[k] >> j) & 1u) preset_w[j] |= std::uint64_t{1} << k;
        core_.set_input_all(core_src_->reset, false);
        for (unsigned j = 0; j < core_src_->preset.size() && j < 2; ++j)
            core_.set_input_lanes(core_src_->preset[j], preset_w[j]);
        for (const gates::Net n : core_src_->fitfunc_select) core_.set_input_all(n, false);
        for (const gates::Net n : core_src_->fit_value_ext) core_.set_input_all(n, false);
        core_.set_input_all(core_src_->fit_valid_ext, false);
        core_.set_input_all(core_src_->sel_force_found, false);
        for (const gates::Net n : core_src_->mem_data_in) core_.set_input_all(n, false);
        for (const gates::Net n : core_src_->fit_value) core_.set_input_all(n, false);
        core_.set_input_all(core_src_->fit_valid, false);
        core_.set_input_all(core_src_->start_ga, false);
        core_.set_input_all(core_src_->ga_load, false);
        core_.set_input_all(core_src_->data_valid, false);
        for (const gates::Net n : core_src_->index) core_.set_input_all(n, false);
        for (const gates::Net n : core_src_->value) core_.set_input_all(n, false);
        rng_.set_input_all(rng_src_->reset, false);
        for (unsigned j = 0; j < rng_src_->preset.size() && j < 2; ++j)
            rng_.set_input_lanes(rng_src_->preset[j], preset_w[j]);
        rng_.set_input_all(rng_src_->start, false);
        rng_.set_input_all(rng_src_->rn_next, false);
        rng_.set_input_all(rng_src_->ga_load, false);
        rng_.set_input_all(rng_src_->data_valid, false);
        for (const gates::Net n : rng_src_->index) rng_.set_input_all(n, false);
        for (const gates::Net n : rng_src_->value) rng_.set_input_all(n, false);

        // Synchronous reset pulse in every lane.
        core_.set_input_all(core_src_->reset, true);
        rng_.set_input_all(rng_src_->reset, true);
        core_.eval();
        rng_.eval();
        core_.clock();
        rng_.clock();
        core_.set_input_all(core_src_->reset, false);
        rng_.set_input_all(rng_src_->reset, false);
    }

    /// One GA-clock cycle across all lanes; returns unfinished lane count.
    std::size_t step() {
        const std::size_t n = lanes_.size();

        // ---- assemble per-lane input words --------------------------------
        std::uint64_t ga_load_w = 0, data_valid_w = 0, start_w = 0, fit_valid_w = 0;
        std::array<std::uint64_t, 3> index_w{};
        std::array<std::uint64_t, 16> value_w{};
        std::array<std::uint64_t, 16> fitv_w{};
        std::array<std::uint64_t, 32> mdi_w{};
        for (std::size_t k = 0; k < n; ++k) {
            const Lane& l = lanes_[k];
            const std::uint64_t bit = std::uint64_t{1} << k;
            if (!l.init_done) {
                ga_load_w |= bit;
                if (l.init_asserting) {
                    data_valid_w |= bit;
                    const auto& [idx, val] = l.program[l.init_item];
                    for (unsigned j = 0; j < 3; ++j)
                        if ((idx >> j) & 1u) index_w[j] |= bit;
                    for (unsigned j = 0; j < 16; ++j)
                        if ((val >> j) & 1u) value_w[j] |= bit;
                }
            }
            if (l.start_hold > 0) start_w |= bit;
            if (l.fem_valid) {
                fit_valid_w |= bit;
                for (unsigned j = 0; j < 16; ++j)
                    if ((l.fem_value >> j) & 1u) fitv_w[j] |= bit;
            }
            for (unsigned j = 0; j < 32; ++j)
                if ((l.mem_dout >> j) & 1u) mdi_w[j] |= bit;
        }

        // ---- drive the core and settle its combinational cone -------------
        core_.set_input_lanes(core_src_->ga_load, ga_load_w);
        core_.set_input_lanes(core_src_->data_valid, data_valid_w);
        core_.set_input_lanes(core_src_->start_ga, start_w);
        core_.set_input_lanes(core_src_->fit_valid, fit_valid_w);
        for (unsigned j = 0; j < 3; ++j)
            core_.set_input_lanes(core_src_->index[j], index_w[j]);
        for (unsigned j = 0; j < 16; ++j) {
            core_.set_input_lanes(core_src_->value[j], value_w[j]);
            core_.set_input_lanes(core_src_->fit_value[j], fitv_w[j]);
            // rn comes straight from the RNG's CA state registers.
            core_.set_input_lanes(core_src_->rn[j], rng_.lanes(rng_src_->rn[j]));
        }
        for (unsigned j = 0; j < 32; ++j)
            core_.set_input_lanes(core_src_->mem_data_in[j], mdi_w[j]);
        core_.eval();

        // ---- sample the core's outputs (pre-edge values) ------------------
        const std::uint64_t data_ack_w = core_.lanes(core_src_->data_ack);
        const std::uint64_t fit_req_w = core_.lanes(core_src_->fit_request);
        const std::uint64_t ga_done_w = core_.lanes(core_src_->ga_done);
        const std::uint64_t mem_wr_w = core_.lanes(core_src_->mem_wr);
        const std::uint64_t rn_next_w = core_.lanes(core_src_->rn_next);
        // Pre-edge monitor samples: the same observation point the RT-level
        // SystemTap uses, so traced event streams line up across substrates.
        const std::uint64_t mon_pulse_w =
            tracing_ ? core_.lanes(core_src_->mon_gen_pulse) : 0;
        const std::uint64_t mon_bank_w = tracing_ ? core_.lanes(core_src_->mon_bank) : 0;

        // ---- drive the RNG module (shares the init bus + start pulse) -----
        rng_.set_input_lanes(rng_src_->ga_load, ga_load_w);
        rng_.set_input_lanes(rng_src_->data_valid, data_valid_w);
        rng_.set_input_lanes(rng_src_->start, start_w);
        rng_.set_input_lanes(rng_src_->rn_next, rn_next_w);
        for (unsigned j = 0; j < 3; ++j)
            rng_.set_input_lanes(rng_src_->index[j], index_w[j]);
        for (unsigned j = 0; j < 16; ++j)
            rng_.set_input_lanes(rng_src_->value[j], value_w[j]);
        rng_.eval();

        // ---- clock edge ---------------------------------------------------
        core_.clock();
        rng_.clock();
        ++cycle_;

        // ---- advance the per-lane peripheral models -----------------------
        std::size_t unfinished = 0;
        for (std::size_t k = 0; k < n; ++k) {
            Lane& l = lanes_[k];
            const std::uint64_t bit = std::uint64_t{1} << k;
            trace::TraceSink* sink = tracing_ ? lane_sinks_[k] : nullptr;
            const unsigned lk = static_cast<unsigned>(k);

            if (sink != nullptr && (data_ack_w & bit) && !l.prev_ack) {
                const auto& [idx, val] = l.program[l.init_item];
                sink->on_event(lane_event(trace::kind::kInitWrite)
                                   .add("index", static_cast<std::uint64_t>(idx))
                                   .add("value", static_cast<std::uint64_t>(val)));
            }
            l.prev_ack = (data_ack_w & bit) != 0;

            // GA memory (write-first synchronous RAM).
            const std::uint8_t addr = static_cast<std::uint8_t>(
                core_.word_value(core_src_->mem_address, static_cast<unsigned>(k)));
            if (mem_wr_w & bit) {
                const std::uint32_t wdata = static_cast<std::uint32_t>(
                    core_.word_value(core_src_->mem_data_out, static_cast<unsigned>(k)));
                l.mem[addr] = wdata;
                l.mem_dout = wdata;
            } else {
                l.mem_dout = l.mem[addr];
            }

            // FEM: one-cycle lookup, valid until the request drops.
            if (l.fem_valid && !(fit_req_w & bit)) {
                l.fem_valid = false;
            } else if ((fit_req_w & bit) && !l.fem_valid) {
                const std::uint16_t cand = static_cast<std::uint16_t>(
                    core_.word_value(core_src_->candidate, static_cast<unsigned>(k)));
                l.fem_value = fitness::fitness_u16(fn_, cand);
                l.fem_valid = true;
                ++l.result.evaluations;
                if (sink != nullptr) {
                    // The software FEM answers in the same cycle, so the
                    // request/value pair collapses here; the stream order
                    // (request then value, one pair per evaluation) matches
                    // the RT-level tap.
                    sink->on_event(lane_event(trace::kind::kFemRequest)
                                       .add("candidate", static_cast<std::uint64_t>(cand)));
                    sink->on_event(lane_event(trace::kind::kFemValue)
                                       .add("candidate", static_cast<std::uint64_t>(cand))
                                       .add("value", static_cast<std::uint64_t>(l.fem_value)));
                }
            }

            // Init handshake FSM.
            if (!l.init_done) {
                if (l.init_asserting) {
                    if (data_ack_w & bit) l.init_asserting = false;
                } else if (!(data_ack_w & bit)) {
                    if (++l.init_item >= l.program.size()) {
                        l.init_done = true;
                        l.start_hold = 2;  // schedule the start_GA pulse
                    } else {
                        l.init_asserting = true;
                    }
                }
            } else if (l.start_hold > 0) {
                if (!l.started) {
                    l.started = true;
                    l.start_cycle = cycle_;
                }
                --l.start_hold;
            }
            if (sink != nullptr) {
                if (l.init_done && !l.init_done_traced) {
                    l.init_done_traced = true;
                    sink->on_event(lane_event(trace::kind::kInitDone));
                }
                if (l.started && !l.start_traced) {
                    l.start_traced = true;
                    sink->on_event(lane_event(trace::kind::kStart));
                }
                if ((mon_pulse_w & bit) && !l.prev_pulse) {
                    sink->on_event(
                        lane_event(trace::kind::kGeneration)
                            .add("gen", core_.word_value(core_src_->mon_gen_id, lk))
                            .add("best_fit", core_.word_value(core_src_->mon_best_fit, lk))
                            .add("best_ind", core_.word_value(core_src_->mon_best_ind, lk))
                            .add("fit_sum", core_.word_value(core_src_->mon_fit_sum, lk))
                            .add("pop", core_.word_value(core_src_->mon_pop_size, lk))
                            .add("bank", (mon_bank_w >> lk) & 1u));
                }
                if (((mon_bank_w >> lk) & 1u) != (l.prev_bank ? 1u : 0u)) {
                    sink->on_event(lane_event(trace::kind::kBankSwap)
                                       .add("bank", (mon_bank_w >> lk) & 1u));
                }
            }
            l.prev_pulse = (mon_pulse_w & bit) != 0;
            l.prev_bank = (mon_bank_w & bit) != 0;

            // Completion: first GA_done after the start pulse.
            if (!l.result.finished) {
                if (l.started && (ga_done_w & bit)) {
                    const unsigned lane = static_cast<unsigned>(k);
                    l.result.finished = true;
                    l.result.best_fitness = static_cast<std::uint16_t>(
                        core_.word_value(core_src_->best_fit, lane));
                    l.result.best_candidate = static_cast<std::uint16_t>(
                        core_.word_value(core_src_->best_ind, lane));
                    l.result.generations = static_cast<std::uint32_t>(
                        core_.word_value(core_src_->gen_id, lane));
                    l.result.ga_cycles = cycle_ - l.start_cycle;
                    if (sink != nullptr) {
                        sink->on_event(
                            lane_event(trace::kind::kDone)
                                .add("best_fit",
                                     static_cast<std::uint64_t>(l.result.best_fitness))
                                .add("best_ind",
                                     static_cast<std::uint64_t>(l.result.best_candidate))
                                .add("gen",
                                     static_cast<std::uint64_t>(l.result.generations)));
                    }
                } else {
                    ++unfinished;
                }
            }
        }
        if (vcd_ != nullptr) vcd_->sample(cycle_ * 20'000);
        return unfinished;
    }

    /// Event envelope for lane telemetry: 50 MHz GA clock -> 20 ns/cycle.
    trace::TraceEvent lane_event(const char* kind) const {
        return trace::TraceEvent(kind, cycle_ * 20'000, cycle_);
    }

    fitness::FitnessId fn_;
    std::vector<core::GaParameters> params_;
    std::vector<std::uint8_t> presets_;  ///< per-lane Table IV preset mode (0 = user)
    std::unique_ptr<gates::GaCoreNetlist> core_src_;
    std::unique_ptr<gates::RngNetlist> rng_src_;
    gates::CompiledNetlist core_;
    gates::CompiledNetlist rng_;
    std::vector<Lane> lanes_;
    std::uint64_t cycle_ = 0;
    std::array<trace::TraceSink*, kLanes> lane_sinks_{};
    bool tracing_ = false;
    trace::VcdWriter* vcd_ = nullptr;
};

}  // namespace gaip::bench
