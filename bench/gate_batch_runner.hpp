// BatchGateRunner: batched multi-seed / multi-setting GA runs on the
// COMPLETE gate-level GA module (GaCoreNetlist + RngNetlist), one run per
// lane of a single CompiledNetlist N-word lane-block simulation (64 lanes
// per word, up to 512 lanes at words == 8).
//
// Each lane gets its own GaParameters (seed, population size, thresholds,
// generations) and runs the full system flow the RT-level GaSystem runs:
//   * the Sec. III-B.6 init handshake (six index/value writes over
//     ga_load/data_valid/data_ack, snooped by the RNG module for the seed),
//   * the start_GA pulse,
//   * the fitness-evaluation handshake against a software FEM model
//     (fitness_u16 lookup — the same values the block-ROM FEM holds),
//   * a per-lane 256x32 write-first synchronous GA memory model,
// and delivers the per-lane best fitness/candidate when GA_done rises.
//
// The per-lane peripherals are software models driven at GA-clock
// granularity; the handshakes are latency-insensitive by design (the core
// consumes random numbers only in the *Rn states, never while waiting), so
// lane results are identical to the RT-level GaSystem results for the same
// seed/settings — asserted by tests/gates/test_gate_batch_runner.cpp.
//
// The compiled cores run with the instruction-stream optimizer's dead-gate
// prune enabled, keeping the observable port surface (everything this
// runner and its VCD/telemetry probes read); the batch width defaults to
// the smallest lane block that fits the requested lane count.
//
// This is what makes the Table VII-IX grids usable at gate level: the full
// 24-setting grid is ONE batched simulation instead of 24 scalar ones
// (bench_table7_gates.cpp).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/params.hpp"
#include "fitness/functions.hpp"
#include "gates/compiled.hpp"
#include "gates/ga_core_gates.hpp"
#include "gates/rng_gates.hpp"
#include "mem/ga_memory.hpp"
#include "trace/event.hpp"
#include "trace/vcd.hpp"
#include "util/bits.hpp"

namespace gaip::bench {

struct BatchLaneResult {
    bool finished = false;
    std::uint16_t best_fitness = 0;
    std::uint16_t best_candidate = 0;
    std::uint32_t generations = 0;
    std::uint64_t evaluations = 0;
    std::uint64_t ga_cycles = 0;  ///< GA-clock cycles from start_GA to GA_done
};

class BatchGateRunner {
public:
    static constexpr unsigned kWordBits = gates::CompiledNetlist::kWordBits;
    /// Hard lane ceiling: the widest supported block (8 words = 512 lanes).
    static constexpr unsigned kMaxLanes =
        gates::CompiledNetlist::kMaxWords * gates::CompiledNetlist::kWordBits;

    /// One lane per entry of `lane_params`. Every lane runs `fn` as its
    /// (internal, slot-0) fitness function. `words` selects the lane-block
    /// width (1/2/4/8 u64 words); 0 picks the smallest block that fits the
    /// requested lane count. `backend` selects the evaluation engine for
    /// both compiled netlists (interpreted kernels vs host-compiled native
    /// code; kAuto defers to GAIP_JIT and defaults to the interpreter).
    BatchGateRunner(fitness::FitnessId fn, std::vector<core::GaParameters> lane_params,
                    unsigned words = 0, gates::Backend backend = gates::Backend::kAuto)
        : fn_(fn),
          params_(std::move(lane_params)),
          core_src_(gates::build_ga_core_netlist()),
          rng_src_(gates::build_rng_netlist()) {
        if (params_.empty() || params_.size() > kMaxLanes)
            throw std::invalid_argument("BatchGateRunner: need 1.." +
                                        std::to_string(kMaxLanes) + " lane configs");
        if (words == 0)
            for (words = 1; words * kWordBits < params_.size(); words *= 2) {
            }
        if (params_.size() > std::size_t{words} * kWordBits)
            throw std::invalid_argument(
                "BatchGateRunner: " + std::to_string(params_.size()) +
                " lane configs exceed the " + std::to_string(words * kWordBits) +
                " lanes of a " + std::to_string(words) + "-word block");
        core_.emplace(core_src_->nl, gates::CompiledNetlist::Options{
                                         .words = words,
                                         .cse = true,
                                         .prune = true,
                                         .keep = core_src_->observable_port_nets(),
                                         .backend = backend});
        rng_.emplace(rng_src_->nl, gates::CompiledNetlist::Options{
                                       .words = words,
                                       .cse = true,
                                       .prune = true,
                                       .keep = rng_src_->observable_port_nets(),
                                       .backend = backend});
        words_ = core_->words();
        presets_.assign(params_.size(), 0);
        lane_sinks_.assign(params_.size(), nullptr);
        lanes_.resize(params_.size());
        for (std::size_t k = 0; k < params_.size(); ++k) {
            Lane& l = lanes_[k];
            const core::GaParameters& p = params_[k];
            l.program = {
                {0, static_cast<std::uint16_t>(p.n_gens & 0xFFFF)},
                {1, static_cast<std::uint16_t>(p.n_gens >> 16)},
                {2, p.pop_size},
                {3, p.xover_threshold},
                {4, p.mut_threshold},
                {5, p.seed},
            };
        }
    }

    /// Rebind the runner to a new job set without recompiling the two
    /// netlists — construction's dominant cost, which is what makes a
    /// cached runner worth reusing across service batches (gaipd workers).
    /// The new lane count must fit the existing lane-block width; fitness
    /// may change freely (the netlists are function-independent — `fn`
    /// only drives the software FEM lookup). Presets, sinks, and all lane
    /// state reset to the post-construction condition.
    void reconfigure(fitness::FitnessId fn, std::vector<core::GaParameters> lane_params) {
        if (lane_params.empty() || lane_params.size() > std::size_t{words_} * kWordBits)
            throw std::invalid_argument(
                "BatchGateRunner: reconfigure wants 1.." + std::to_string(words_ * kWordBits) +
                " lane configs for this " + std::to_string(words_) + "-word block");
        fn_ = fn;
        params_ = std::move(lane_params);
        presets_.assign(params_.size(), 0);
        lane_sinks_.assign(params_.size(), nullptr);
        tracing_ = false;
        lanes_.assign(params_.size(), Lane{});
        for (std::size_t k = 0; k < params_.size(); ++k) {
            const core::GaParameters& p = params_[k];
            lanes_[k].program = {
                {0, static_cast<std::uint16_t>(p.n_gens & 0xFFFF)},
                {1, static_cast<std::uint16_t>(p.n_gens >> 16)},
                {2, p.pop_size},
                {3, p.xover_threshold},
                {4, p.mut_threshold},
                {5, p.seed},
            };
        }
    }

    std::size_t lane_count() const noexcept { return lanes_.size(); }
    /// Lane-block width in u64 words (the simulation carries words()*64
    /// lanes; configured lanes beyond lane_count() idle).
    unsigned words() const noexcept { return words_; }
    std::uint64_t cycles() const noexcept { return cycle_; }
    const gates::CompiledNetlist& core_sim() const noexcept { return *core_; }

    /// Formula cycle bound used when run(max_cycles = 0): saturating u64
    /// arithmetic, so adversarial pop/gens configs clamp to "effectively
    /// unbounded" instead of wrapping to a tiny bound that would flag
    /// healthy runs as hangs. Public for regression tests.
    std::uint64_t default_cycle_bound() const {
        std::uint64_t bound = 0;
        for (std::size_t k = 0; k < params_.size(); ++k) {
            const core::GaParameters eff = core::resolve_parameters(presets_[k], params_[k]);
            const std::uint64_t evals =
                util::sat_mul_u64(eff.pop_size, std::uint64_t{eff.n_gens} + 1);
            const std::uint64_t per_eval =
                util::sat_add_u64(64, util::sat_mul_u64(8, eff.pop_size));
            bound = std::max<std::uint64_t>(
                bound, util::sat_add_u64(util::sat_mul_u64(evals, per_eval), 100'000ull));
        }
        return bound;
    }

    /// Put one lane in a Table IV preset mode (1..3): its preset pins are
    /// driven, the init handshake is skipped (presets bypass all programmed
    /// state — the paper's init-failure fault-tolerance scenario), and the
    /// start pulse is issued right after reset. Mode 0 restores the normal
    /// user-mode flow. The lane's GaParameters entry is then ignored.
    void set_lane_preset(unsigned lane, std::uint8_t preset) {
        if (lane >= lanes_.size())
            throw std::invalid_argument("BatchGateRunner: lane out of range");
        presets_[lane] = preset & 0x3;
    }

    /// Current controller-FSM state of one lane (the supervisor's watchdog
    /// classification input: kIdle = recoverable, anything else = wedged).
    std::uint8_t lane_state(unsigned lane) const {
        if (lane >= lanes_.size())
            throw std::invalid_argument("BatchGateRunner: lane out of range");
        return static_cast<std::uint8_t>(core_->word_value(core_src_->state, lane));
    }

    /// Attach a telemetry sink to one lane (borrowed; nullptr detaches).
    /// The lane then emits the same protocol/generation event stream the
    /// RT-level SystemTap produces (minus the RT-only op counters), with
    /// `cycle` counted from the runner's reset and `t` = cycle x 20 ns.
    void set_lane_sink(unsigned lane, trace::TraceSink* sink) {
        if (lane >= lanes_.size())
            throw std::invalid_argument("BatchGateRunner: lane out of range");
        lane_sinks_[lane] = sink;
        tracing_ = false;
        for (const trace::TraceSink* s : lane_sinks_) tracing_ |= (s != nullptr);
    }

    /// Register per-lane waveform probes of the compiled core on `vcd`
    /// (borrowed; must outlive run()). One scope per requested lane
    /// ("gates.lane<k>"), sampled once per GA cycle with the 50 MHz period
    /// (20'000 ps) as the tick — a per-lane slice of the batched simulation
    /// in GTKWave. One run() per writer (VCD time is monotonic).
    void add_vcd(trace::VcdWriter* vcd, const std::vector<unsigned>& lanes_to_trace) {
        for (const unsigned lane : lanes_to_trace) {
            if (lane >= lanes_.size())
                throw std::invalid_argument("BatchGateRunner: lane out of range");
            const std::string scope = "gates.lane" + std::to_string(lane);
            auto word = [this, lane](const gates::Word& w) {
                const gates::Word* pw = &w;  // stable: lives in *core_src_
                return [this, lane, pw] { return core_->word_value(*pw, lane); };
            };
            auto bit = [this, lane](gates::Net n) {
                return [this, lane, n] {
                    return core_->value(n, lane) ? std::uint64_t{1} : 0;
                };
            };
            vcd->add_probe(scope, "state", 6, word(core_src_->state));
            vcd->add_probe(scope, "gen_id", 32, word(core_src_->gen_id));
            vcd->add_probe(scope, "best_fit", 16, word(core_src_->best_fit));
            vcd->add_probe(scope, "best_ind", 16, word(core_src_->best_ind));
            vcd->add_probe(scope, "candidate", 16, word(core_src_->candidate));
            vcd->add_probe(scope, "bank", 1, bit(core_src_->bank));
            vcd->add_probe(scope, "data_ack", 1, bit(core_src_->data_ack));
            vcd->add_probe(scope, "fitness_request", 1, bit(core_src_->fit_request));
            vcd->add_probe(scope, "GA_done", 1, bit(core_src_->ga_done));
            vcd->add_probe(scope, "mon_gen_pulse", 1, bit(core_src_->mon_gen_pulse));
        }
        vcd_ = vcd;
    }

    /// Reset everything and run until every lane reaches GA_done (or the
    /// cycle bound trips). Returns one result per configured lane.
    std::vector<BatchLaneResult> run(std::uint64_t max_cycles = 0) {
        const std::vector<BatchLaneResult> out = run_bounded(max_cycles);
        for (const BatchLaneResult& r : out)
            if (!r.finished)
                throw std::runtime_error("BatchGateRunner: lanes did not finish within bound");
        return out;
    }

    /// Watchdog-friendly variant of run(): a lane that misses the cycle
    /// bound is reported with `finished == false` instead of throwing, so a
    /// supervisor can classify the trip (lane_state()) and walk its
    /// recovery ladder. `max_cycles` counts from reset (init handshake
    /// included); 0 selects the formula bound.
    std::vector<BatchLaneResult> run_bounded(std::uint64_t max_cycles = 0) {
        if (max_cycles == 0) max_cycles = default_cycle_bound();
        reset();
        std::size_t unfinished = lanes_.size();
        while (unfinished > 0 && cycle_ < max_cycles) unfinished = step();
        std::vector<BatchLaneResult> out;
        out.reserve(lanes_.size());
        for (const Lane& l : lanes_) out.push_back(l.result);
        return out;
    }

    // --- island-mode stepwise interface --------------------------------
    // The island interconnect (src/island/) drives the batch one GA cycle
    // at a time and parks lanes at generation boundaries: a parked lane's
    // registers are clock-gated (CompiledNetlist::clock_gated) and its
    // peripheral models freeze, so the lane holds its exact architectural
    // state while siblings keep evolving — the cycle-level model of N
    // cores meeting at a migration barrier. While a lane is parked its
    // software GA memory can be poked (migration applies at the same
    // point the RTL backdoor pokes GaMemory: right after the monitor's
    // kGenCheck capture edge, before the next selection read).

    /// Append one {index, value} write to a lane's init program — the
    /// migration extension registers (indices 6/7) ride the handshake
    /// after the six Table III parameters. Call before the run starts.
    void append_lane_write(unsigned lane, std::uint8_t index, std::uint16_t value) {
        if (lane >= lanes_.size())
            throw std::invalid_argument("BatchGateRunner: lane out of range");
        lanes_[lane].program.emplace_back(index, value);
    }

    /// Reset every lane and both compiled netlists for a stepwise run
    /// (run()/run_bounded() do this internally).
    void begin_run() { reset(); }

    /// One GA-clock cycle; returns the count of unfinished lanes (parked
    /// lanes count as unfinished).
    std::size_t step_cycle() { return step(); }

    /// Arm the generation-synchronous barrier: an unfinished lane whose
    /// monitor pulse rises with mon_gen_id == `gen` parks right after the
    /// capture edge. Parked lanes stay parked until release_lanes().
    void arm_generation_barrier(std::uint32_t gen) {
        barrier_armed_ = true;
        barrier_gen_ = gen;
    }
    void disarm_generation_barrier() { barrier_armed_ = false; }

    /// Step until every lane is parked at the armed barrier or finished,
    /// or `max_cycles` (counted from reset) elapses. Returns the number of
    /// lanes still running — nonzero means a lane missed the barrier
    /// within the bound (the island watchdog's trip signal).
    std::size_t run_to_barrier(std::uint64_t max_cycles) {
        std::size_t running = pending_lanes();
        while (running > 0 && cycle_ < max_cycles) {
            step();
            running = pending_lanes();
        }
        return running;
    }

    /// Lanes neither finished nor parked at the barrier.
    std::size_t pending_lanes() const noexcept {
        std::size_t n = 0;
        for (const Lane& l : lanes_)
            if (!l.result.finished && !l.parked) ++n;
        return n;
    }

    bool lane_parked(unsigned lane) const {
        if (lane >= lanes_.size())
            throw std::invalid_argument("BatchGateRunner: lane out of range");
        return lanes_[lane].parked;
    }

    /// Resume every parked lane (the barrier is normally released for all
    /// islands at once; re-arm for the next boundary before stepping on).
    void release_lanes() {
        for (Lane& l : lanes_) l.parked = false;
        stall_ = WordVec{};
    }

    /// GA cycles a lane spent clock-gated at barriers so far.
    std::uint64_t lane_stall_cycles(unsigned lane) const {
        if (lane >= lanes_.size())
            throw std::invalid_argument("BatchGateRunner: lane out of range");
        return lanes_[lane].stall_cycles;
    }

    const BatchLaneResult& lane_result(unsigned lane) const {
        if (lane >= lanes_.size())
            throw std::invalid_argument("BatchGateRunner: lane out of range");
        return lanes_[lane].result;
    }

    /// Current-population bank bit of one lane (post-edge register value).
    bool lane_bank(unsigned lane) const {
        if (lane >= lanes_.size())
            throw std::invalid_argument("BatchGateRunner: lane out of range");
        return core_->value(core_src_->bank, lane);
    }

    /// Backdoor access to a lane's software GA memory (256 x 32 words).
    std::uint32_t peek_lane_mem(unsigned lane, std::uint8_t addr) const {
        if (lane >= lanes_.size())
            throw std::invalid_argument("BatchGateRunner: lane out of range");
        return lanes_[lane].mem[addr];
    }
    void poke_lane_mem(unsigned lane, std::uint8_t addr, std::uint32_t word) {
        if (lane >= lanes_.size())
            throw std::invalid_argument("BatchGateRunner: lane out of range");
        lanes_[lane].mem[addr] = word;
    }

private:
    static constexpr unsigned kMaxWords = gates::CompiledNetlist::kMaxWords;
    /// One lane-block's worth of packed bits for a single signal.
    using WordVec = std::array<std::uint64_t, kMaxWords>;

    struct Lane {
        // init-handshake FSM (mirrors system::InitModule at GA granularity)
        std::vector<std::pair<std::uint8_t, std::uint16_t>> program;
        std::size_t init_item = 0;
        bool init_asserting = true;
        bool init_done = false;
        // start pulse
        int start_hold = -1;  ///< -1 = not yet scheduled; >0 = cycles left high
        bool started = false;
        std::uint64_t start_cycle = 0;
        // software FEM (slot 0, zero-latency block-ROM model)
        bool fem_valid = false;
        std::uint16_t fem_value = 0;
        // per-lane GA memory (256 x 32, synchronous read, write-first)
        std::array<std::uint32_t, mem::kGaMemoryDepth> mem{};
        std::uint32_t mem_dout = 0;
        // island barrier: clock-gated hold at a generation boundary
        bool parked = false;
        std::uint64_t stall_cycles = 0;
        // telemetry edge detectors (touched only when a sink is attached)
        bool prev_ack = false;
        bool prev_pulse = false;
        bool prev_bank = false;
        bool init_done_traced = false;
        bool start_traced = false;
        BatchLaneResult result;
    };

    static bool get(const WordVec& v, std::size_t k) noexcept {
        return (v[k / kWordBits] >> (k % kWordBits)) & 1u;
    }
    static void set(WordVec& v, std::size_t k) noexcept {
        v[k / kWordBits] |= std::uint64_t{1} << (k % kWordBits);
    }
    WordVec read_net(gates::Net n) const {
        WordVec v{};
        for (unsigned w = 0; w < words_; ++w) v[w] = core_->lanes_word(n, w);
        return v;
    }
    void drive_core(gates::Net n, const WordVec& v) {
        for (unsigned w = 0; w < words_; ++w) core_->set_input_word(n, w, v[w]);
    }
    void drive_rng(gates::Net n, const WordVec& v) {
        for (unsigned w = 0; w < words_; ++w) rng_->set_input_word(n, w, v[w]);
    }
    /// Transposed read of a port word: per-net lane blocks, indexed
    /// [net_bit][word]. One lanes_word per net per word instead of one
    /// word_value (= width x root lookups) per LANE — the hot-path way to
    /// extract per-lane bytes/words from wide blocks.
    template <std::size_t N>
    std::array<WordVec, N> read_word_t(const gates::Word& nets) const {
        std::array<WordVec, N> out{};
        const std::size_t n = std::min<std::size_t>(N, nets.size());
        for (std::size_t j = 0; j < n; ++j)
            for (unsigned w = 0; w < words_; ++w) out[j][w] = core_->lanes_word(nets[j], w);
        return out;
    }
    template <std::size_t N>
    static std::uint64_t lane_word(const std::array<WordVec, N>& t, std::size_t k) noexcept {
        std::uint64_t v = 0;
        for (std::size_t j = 0; j < N; ++j)
            if (get(t[j], k)) v |= std::uint64_t{1} << j;
        return v;
    }

    void reset() {
        cycle_ = 0;
        stall_ = WordVec{};
        barrier_armed_ = false;
        barrier_gen_ = 0;
        for (std::size_t k = 0; k < lanes_.size(); ++k) {
            Lane fresh;
            fresh.program = std::move(lanes_[k].program);
            if (presets_[k] != 0) {
                // Preset lane: Table IV pins carry the run — no handshake,
                // start pulse scheduled immediately.
                fresh.init_done = true;
                fresh.init_done_traced = true;
                fresh.start_hold = 2;
            }
            lanes_[k] = std::move(fresh);
        }
        // Static pins: per-lane preset mode (user mode = 0), fitness slot 0.
        std::array<WordVec, 2> preset_w{};
        for (std::size_t k = 0; k < presets_.size(); ++k)
            for (unsigned j = 0; j < 2; ++j)
                if ((presets_[k] >> j) & 1u) set(preset_w[j], k);
        core_->set_input_all(core_src_->reset, false);
        for (unsigned j = 0; j < core_src_->preset.size() && j < 2; ++j)
            drive_core(core_src_->preset[j], preset_w[j]);
        for (const gates::Net n : core_src_->fitfunc_select) core_->set_input_all(n, false);
        for (const gates::Net n : core_src_->fit_value_ext) core_->set_input_all(n, false);
        core_->set_input_all(core_src_->fit_valid_ext, false);
        core_->set_input_all(core_src_->sel_force_found, false);
        for (const gates::Net n : core_src_->mem_data_in) core_->set_input_all(n, false);
        for (const gates::Net n : core_src_->fit_value) core_->set_input_all(n, false);
        core_->set_input_all(core_src_->fit_valid, false);
        core_->set_input_all(core_src_->start_ga, false);
        core_->set_input_all(core_src_->ga_load, false);
        core_->set_input_all(core_src_->data_valid, false);
        for (const gates::Net n : core_src_->index) core_->set_input_all(n, false);
        for (const gates::Net n : core_src_->value) core_->set_input_all(n, false);
        rng_->set_input_all(rng_src_->reset, false);
        for (unsigned j = 0; j < rng_src_->preset.size() && j < 2; ++j)
            drive_rng(rng_src_->preset[j], preset_w[j]);
        rng_->set_input_all(rng_src_->start, false);
        rng_->set_input_all(rng_src_->rn_next, false);
        rng_->set_input_all(rng_src_->ga_load, false);
        rng_->set_input_all(rng_src_->data_valid, false);
        for (const gates::Net n : rng_src_->index) rng_->set_input_all(n, false);
        for (const gates::Net n : rng_src_->value) rng_->set_input_all(n, false);

        // Synchronous reset pulse in every lane.
        core_->set_input_all(core_src_->reset, true);
        rng_->set_input_all(rng_src_->reset, true);
        core_->eval();
        rng_->eval();
        core_->clock();
        rng_->clock();
        core_->set_input_all(core_src_->reset, false);
        rng_->set_input_all(rng_src_->reset, false);
    }

    /// One GA-clock cycle across all lanes; returns unfinished lane count.
    std::size_t step() {
        const std::size_t n = lanes_.size();

        // ---- assemble per-lane input words --------------------------------
        WordVec ga_load_w{}, data_valid_w{}, start_w{}, fit_valid_w{};
        std::array<WordVec, 3> index_w{};
        std::array<WordVec, 16> value_w{};
        std::array<WordVec, 16> fitv_w{};
        std::array<WordVec, 32> mdi_w{};
        for (std::size_t k = 0; k < n; ++k) {
            const Lane& l = lanes_[k];
            if (!l.init_done) {
                set(ga_load_w, k);
                if (l.init_asserting) {
                    set(data_valid_w, k);
                    const auto& [idx, val] = l.program[l.init_item];
                    for (unsigned j = 0; j < 3; ++j)
                        if ((idx >> j) & 1u) set(index_w[j], k);
                    for (unsigned j = 0; j < 16; ++j)
                        if ((val >> j) & 1u) set(value_w[j], k);
                }
            }
            if (l.start_hold > 0) set(start_w, k);
            if (l.fem_valid) {
                set(fit_valid_w, k);
                for (unsigned j = 0; j < 16; ++j)
                    if ((l.fem_value >> j) & 1u) set(fitv_w[j], k);
            }
            for (unsigned j = 0; j < 32; ++j)
                if ((l.mem_dout >> j) & 1u) set(mdi_w[j], k);
        }

        // ---- drive the core and settle its combinational cone -------------
        drive_core(core_src_->ga_load, ga_load_w);
        drive_core(core_src_->data_valid, data_valid_w);
        drive_core(core_src_->start_ga, start_w);
        drive_core(core_src_->fit_valid, fit_valid_w);
        for (unsigned j = 0; j < 3; ++j) drive_core(core_src_->index[j], index_w[j]);
        for (unsigned j = 0; j < 16; ++j) {
            drive_core(core_src_->value[j], value_w[j]);
            drive_core(core_src_->fit_value[j], fitv_w[j]);
            // rn comes straight from the RNG's CA state registers.
            for (unsigned w = 0; w < words_; ++w)
                core_->set_input_word(core_src_->rn[j], w,
                                      rng_->lanes_word(rng_src_->rn[j], w));
        }
        for (unsigned j = 0; j < 32; ++j) drive_core(core_src_->mem_data_in[j], mdi_w[j]);
        core_->eval();

        // ---- sample the core's outputs (pre-edge values) ------------------
        const WordVec data_ack_w = read_net(core_src_->data_ack);
        const WordVec fit_req_w = read_net(core_src_->fit_request);
        const WordVec ga_done_w = read_net(core_src_->ga_done);
        const WordVec mem_wr_w = read_net(core_src_->mem_wr);
        const WordVec rn_next_w = read_net(core_src_->rn_next);
        const auto addr_t = read_word_t<8>(core_src_->mem_address);
        const auto mdo_t = read_word_t<32>(core_src_->mem_data_out);
        const auto cand_t = read_word_t<16>(core_src_->candidate);
        // Pre-edge monitor samples: the same observation point the RT-level
        // SystemTap uses, so traced event streams line up across substrates.
        // The island barrier watches the same pulse to spot lanes entering
        // their kGenCheck boundary.
        const WordVec mon_pulse_w =
            (tracing_ || barrier_armed_) ? read_net(core_src_->mon_gen_pulse) : WordVec{};
        const WordVec mon_bank_w = tracing_ ? read_net(core_src_->mon_bank) : WordVec{};

        // ---- drive the RNG module (shares the init bus + start pulse) -----
        drive_rng(rng_src_->ga_load, ga_load_w);
        drive_rng(rng_src_->data_valid, data_valid_w);
        drive_rng(rng_src_->start, start_w);
        drive_rng(rng_src_->rn_next, rn_next_w);
        for (unsigned j = 0; j < 3; ++j) drive_rng(rng_src_->index[j], index_w[j]);
        for (unsigned j = 0; j < 16; ++j) drive_rng(rng_src_->value[j], value_w[j]);
        rng_->eval();

        // ---- clock edge ---------------------------------------------------
        // Parked lanes are clock-gated: their registers (core AND RNG) hold
        // while active lanes latch normally. The WordVec is zero-initialized
        // beyond words_, so the mask math stays in-range.
        bool any_parked = false;
        for (unsigned w = 0; w < words_; ++w) any_parked |= (stall_[w] != 0);
        if (any_parked) {
            WordVec enable{};
            for (unsigned w = 0; w < words_; ++w) enable[w] = ~stall_[w];
            core_->clock_gated(enable.data());
            rng_->clock_gated(enable.data());
        } else {
            core_->clock();
            rng_->clock();
        }
        ++cycle_;

        // ---- advance the per-lane peripheral models -----------------------
        std::size_t unfinished = 0;
        for (std::size_t k = 0; k < n; ++k) {
            Lane& l = lanes_[k];
            if (l.parked) {
                // Frozen at the barrier: peripherals hold, telemetry edge
                // detectors hold, the lane just accrues stall time.
                ++l.stall_cycles;
                if (!l.result.finished) ++unfinished;
                continue;
            }
            trace::TraceSink* sink = tracing_ ? lane_sinks_[k] : nullptr;
            const unsigned lk = static_cast<unsigned>(k);

            if (sink != nullptr && get(data_ack_w, k) && !l.prev_ack) {
                const auto& [idx, val] = l.program[l.init_item];
                sink->on_event(lane_event(trace::kind::kInitWrite)
                                   .add("index", static_cast<std::uint64_t>(idx))
                                   .add("value", static_cast<std::uint64_t>(val)));
            }
            l.prev_ack = get(data_ack_w, k);

            // GA memory (write-first synchronous RAM).
            const std::uint8_t addr = static_cast<std::uint8_t>(lane_word(addr_t, k));
            if (get(mem_wr_w, k)) {
                const std::uint32_t wdata = static_cast<std::uint32_t>(lane_word(mdo_t, k));
                l.mem[addr] = wdata;
                l.mem_dout = wdata;
            } else {
                l.mem_dout = l.mem[addr];
            }

            // FEM: one-cycle lookup, valid until the request drops.
            if (l.fem_valid && !get(fit_req_w, k)) {
                l.fem_valid = false;
            } else if (get(fit_req_w, k) && !l.fem_valid) {
                const std::uint16_t cand = static_cast<std::uint16_t>(lane_word(cand_t, k));
                l.fem_value = fitness::fitness_u16(fn_, cand);
                l.fem_valid = true;
                ++l.result.evaluations;
                if (sink != nullptr) {
                    // The software FEM answers in the same cycle, so the
                    // request/value pair collapses here; the stream order
                    // (request then value, one pair per evaluation) matches
                    // the RT-level tap.
                    sink->on_event(lane_event(trace::kind::kFemRequest)
                                       .add("candidate", static_cast<std::uint64_t>(cand)));
                    sink->on_event(lane_event(trace::kind::kFemValue)
                                       .add("candidate", static_cast<std::uint64_t>(cand))
                                       .add("value", static_cast<std::uint64_t>(l.fem_value)));
                }
            }

            // Init handshake FSM.
            if (!l.init_done) {
                if (l.init_asserting) {
                    if (get(data_ack_w, k)) l.init_asserting = false;
                } else if (!get(data_ack_w, k)) {
                    if (++l.init_item >= l.program.size()) {
                        l.init_done = true;
                        l.start_hold = 2;  // schedule the start_GA pulse
                    } else {
                        l.init_asserting = true;
                    }
                }
            } else if (l.start_hold > 0) {
                if (!l.started) {
                    l.started = true;
                    l.start_cycle = cycle_;
                }
                --l.start_hold;
            }
            if (sink != nullptr) {
                if (l.init_done && !l.init_done_traced) {
                    l.init_done_traced = true;
                    sink->on_event(lane_event(trace::kind::kInitDone));
                }
                if (l.started && !l.start_traced) {
                    l.start_traced = true;
                    sink->on_event(lane_event(trace::kind::kStart));
                }
                if (get(mon_pulse_w, k) && !l.prev_pulse) {
                    sink->on_event(
                        lane_event(trace::kind::kGeneration)
                            .add("gen", core_->word_value(core_src_->mon_gen_id, lk))
                            .add("best_fit", core_->word_value(core_src_->mon_best_fit, lk))
                            .add("best_ind", core_->word_value(core_src_->mon_best_ind, lk))
                            .add("fit_sum", core_->word_value(core_src_->mon_fit_sum, lk))
                            .add("pop", core_->word_value(core_src_->mon_pop_size, lk))
                            .add("bank", get(mon_bank_w, k) ? std::uint64_t{1} : std::uint64_t{0}));
                }
                if (get(mon_bank_w, k) != l.prev_bank) {
                    sink->on_event(lane_event(trace::kind::kBankSwap)
                                       .add("bank", get(mon_bank_w, k) ? std::uint64_t{1} : std::uint64_t{0}));
                }
            }
            // Barrier park: the pulse rise IS the monitor capture edge
            // (E2 of the boundary), so gating the lane from the next cycle
            // on freezes it after the pre-migration snapshot and before the
            // elite write reaches the other bank — the exact window the
            // RTL island driver pokes GaMemory in.
            if (barrier_armed_ && !l.result.finished && get(mon_pulse_w, k) && !l.prev_pulse &&
                core_->word_value(core_src_->mon_gen_id, static_cast<unsigned>(k)) ==
                    barrier_gen_) {
                l.parked = true;
                set(stall_, k);
            }
            l.prev_pulse = get(mon_pulse_w, k);
            l.prev_bank = get(mon_bank_w, k);

            // Completion: first GA_done after the start pulse.
            if (!l.result.finished) {
                if (l.started && get(ga_done_w, k)) {
                    const unsigned lane = static_cast<unsigned>(k);
                    l.result.finished = true;
                    l.result.best_fitness = static_cast<std::uint16_t>(
                        core_->word_value(core_src_->best_fit, lane));
                    l.result.best_candidate = static_cast<std::uint16_t>(
                        core_->word_value(core_src_->best_ind, lane));
                    l.result.generations = static_cast<std::uint32_t>(
                        core_->word_value(core_src_->gen_id, lane));
                    l.result.ga_cycles = cycle_ - l.start_cycle;
                    if (sink != nullptr) {
                        sink->on_event(
                            lane_event(trace::kind::kDone)
                                .add("best_fit",
                                     static_cast<std::uint64_t>(l.result.best_fitness))
                                .add("best_ind",
                                     static_cast<std::uint64_t>(l.result.best_candidate))
                                .add("gen",
                                     static_cast<std::uint64_t>(l.result.generations)));
                    }
                } else {
                    ++unfinished;
                }
            }
        }
        if (vcd_ != nullptr) vcd_->sample(cycle_ * 20'000);
        return unfinished;
    }

    /// Event envelope for lane telemetry: 50 MHz GA clock -> 20 ns/cycle.
    trace::TraceEvent lane_event(const char* kind) const {
        return trace::TraceEvent(kind, cycle_ * 20'000, cycle_);
    }

    fitness::FitnessId fn_;
    std::vector<core::GaParameters> params_;
    std::vector<std::uint8_t> presets_;  ///< per-lane Table IV preset mode (0 = user)
    std::unique_ptr<gates::GaCoreNetlist> core_src_;
    std::unique_ptr<gates::RngNetlist> rng_src_;
    std::optional<gates::CompiledNetlist> core_;
    std::optional<gates::CompiledNetlist> rng_;
    unsigned words_ = 1;
    std::vector<Lane> lanes_;
    std::uint64_t cycle_ = 0;
    // island barrier state: per-lane clock-gate mask + armed boundary
    WordVec stall_{};
    bool barrier_armed_ = false;
    std::uint32_t barrier_gen_ = 0;
    std::vector<trace::TraceSink*> lane_sinks_;
    bool tracing_ = false;
    trace::VcdWriter* vcd_ = nullptr;
};

}  // namespace gaip::bench
