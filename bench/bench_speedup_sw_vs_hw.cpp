// Sec. IV-C reproduction: runtime comparison between the hardware GA core
// and the software GA on the embedded PowerPC.
//
// Paper setup: mBF6_2, population 32, crossover rate 10/16 (the paper
// prints "0.625"), mutation 1/16, 32 generations; software on the PPC405
// with the lookup table in FPGA BRAM; six-run average 37.615 ms software
// vs. a hardware cycle counter at 50 MHz; speedup 5.16x (hardware ~7.29 ms).
//
// Our hardware time is the real cycle count of the RTL model at 50 MHz; our
// software time is the PPC405 cost model fed by the instrumented software
// GA (host wall clock is reported for reference only).
#include "bench/common.hpp"
#include "fitness/rom_builder.hpp"
#include "swga/ppc_cost_model.hpp"
#include "swga/software_ga.hpp"

int main() {
    using namespace gaip;
    bench::banner("Sec. IV-C — software vs. hardware runtime",
                  "mBF6_2, pop 32, XR 10/16, mutation 1/16, 32 generations, 6-run average");

    const core::GaParameters params{.pop_size = 32, .n_gens = 32, .xover_threshold = 10,
                                    .mut_threshold = 1, .seed = 0x2961};

    // Hardware: average the modeled GA execution time over six seeds, as
    // the paper averaged six runs.
    const std::array<std::uint16_t, 6> seeds = {0x2961, 0x061F, 0xB342, 0xAAAA, 0xA0A0, 0xFFFF};
    double hw_seconds_sum = 0.0;
    std::uint64_t hw_cycles_sum = 0;
    for (const std::uint16_t seed : seeds) {
        system::GaSystemConfig cfg;
        cfg.params = params;
        cfg.params.seed = seed;
        cfg.internal_fems = {fitness::FitnessId::kMBf6_2};
        cfg.keep_populations = false;
        system::GaSystem sys(cfg);
        sys.run();
        hw_seconds_sum += sys.ga_seconds();
        hw_cycles_sum += sys.ga_cycles();
    }
    const double hw_ms = hw_seconds_sum / seeds.size() * 1e3;
    const double hw_cycles = static_cast<double>(hw_cycles_sum) / seeds.size();

    // Software: identical algorithm, instrumented; PPC405 cost model.
    double sw_model_ms_sum = 0.0;
    double sw_host_ms_sum = 0.0;
    swga::OpCounts ops{};
    for (const std::uint16_t seed : seeds) {
        core::GaParameters p = params;
        p.seed = seed;
        const swga::SwRunStats sw = swga::run_software_ga(
            p, fitness::fitness_rom(fitness::FitnessId::kMBf6_2),
            prng::RngKind::kCellularAutomaton, 10);
        sw_model_ms_sum += swga::estimate_ppc_runtime(sw.ops).seconds * 1e3;
        sw_host_ms_sum += sw.host_seconds * 1e3;
        ops = sw.ops;
    }
    const double sw_model_ms = sw_model_ms_sum / seeds.size();
    const double sw_host_ms = sw_host_ms_sum / seeds.size();

    util::TextTable table({"Quantity", "Model", "Paper", "Note"});
    table.add("software runtime (ms)", sw_model_ms, 37.615, "PPC405 cost model, 300 MHz");
    table.add("hardware runtime (ms)", hw_ms, 37.615 / 5.16,
              "real cycle count x 20 ns (paper value derived)");
    table.add("hardware cycles", hw_cycles, 0.0, "50 MHz GA clock, start_GA..GA_done");
    table.add("speedup (sw/hw)", sw_model_ms / hw_ms, 5.16, "paper headline: 5.16x");
    table.add("host software (ms)", sw_host_ms, 0.0, "this machine, reference only");
    table.print();
    table.write_csv(bench::out_path("speedup.csv"));

    std::printf(
        "\nShape check: hardware wins by %.2fx (paper: 5.16x). Both sides of our model\n"
        "are leaner than the authors' (our hand FSM vs. AUDI HLS output; our first-\n"
        "principles PPC constants vs. their measured binary), so the absolute times\n"
        "sit below the paper's while the ratio stays in the same small-multiple range.\n",
        sw_model_ms / hw_ms);
    std::printf("Per-run dynamic op counts (pop 32, 32 gens): rng=%llu fitness=%llu "
                "member accesses=%llu\n",
                static_cast<unsigned long long>(ops.rng_calls),
                static_cast<unsigned long long>(ops.fitness_lookups),
                static_cast<unsigned long long>(ops.member_reads + ops.member_writes));
    std::printf("CSV: %s\n", bench::out_path("speedup.csv").c_str());
    return 0;
}
