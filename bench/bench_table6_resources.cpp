// Table VI reproduction: post-place-and-route statistics of the GA module
// on the Virtex-II Pro xc2vp30, via the resource-estimation model
// (see src/report/resources.hpp for exactly what is counted vs. estimated).
#include <vector>

#include "bench/common.hpp"
#include "fitness/rom_builder.hpp"
#include "gates/ga_core_gates.hpp"
#include "report/resources.hpp"

int main() {
    using namespace gaip;
    bench::banner("Table VI — post place-and-route statistics",
                  "Table VI; GA module = core + RNG + GA memory at 50 MHz");

    system::GaSystemConfig cfg;
    cfg.internal_fems = {fitness::FitnessId::kMBf6_2};
    system::GaSystem sys(cfg);

    std::vector<rtl::Module*> logic;
    for (rtl::Module* m : sys.kernel().modules()) {
        const std::string& n = m->name();
        if (n == "ga_core" || n == "rng_module" || n == "ga_memory") logic.push_back(m);
    }

    const report::ResourceReport r = report::estimate_resources(report::ResourceInputs{
        std::span<rtl::Module* const>(logic.data(), logic.size()),
        sys.memory().storage_bits(),
        fitness::fitness_rom(fitness::FitnessId::kMBf6_2)->storage_bits()});

    std::cout << report::format_table6(r) << "\n";

    util::TextTable table({"Attribute", "Model", "Paper", "Deviation"});
    table.add("Slice utilization (%)", r.slice_pct, 13.0, bench::vs_paper(r.slice_pct, 13.0));
    table.add("Clock (MHz)", r.clock_mhz, 50.0, bench::vs_paper(r.clock_mhz, 50.0));
    table.add("GA memory BRAM (%)", r.ga_mem_pct, 1.0, bench::vs_paper(r.ga_mem_pct, 1.0));
    table.add("Fitness ROM BRAM (%)", r.fitness_rom_pct, 48.0,
              bench::vs_paper(r.fitness_rom_pct, 48.0));
    // Second, independent estimate from the ACTUAL gate-level netlist of
    // the full core (exact gate census, one mapping assumption).
    const auto g = gates::build_ga_core_netlist();
    const gates::GateStats gs = g->nl.stats();
    const report::GateCensusEstimate census =
        report::estimate_from_gate_census(gs.logic_gates, gs.registers);
    table.add("Slice utilization, gate census (%)", census.slice_pct, 13.0,
              bench::vs_paper(census.slice_pct, 13.0));
    table.print();
    table.write_csv(bench::out_path("table6.csv"));
    std::printf("\nGate census of the full core: %u two-input gates + %u scan registers"
                " -> ~%u LUTs -> %u slices.\n",
                census.logic_gates, census.registers, census.lut_estimate, census.slices);

    std::cout << "\nExact flip-flop inventory of the GA module:\n";
    for (const rtl::Module* m : logic)
        std::printf("  %-12s %4u FF bits across %3zu registers\n", m->name().c_str(),
                    m->flipflop_bits(), m->registers().size());
    std::cout << "CSV: " << bench::out_path("table6.csv") << "\n";
    return 0;
}
