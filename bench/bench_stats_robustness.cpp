// Robustness statistics beyond the paper's single-run tables: mean, stddev,
// and extremes of the best fitness over 24 seeds per configuration, on the
// behavioral model (bit-exact with the RTL, so the statistics transfer).
// This quantifies how much of Tables V/VII-IX is seed luck — the paper's
// own Sec. II-C point, measured.
#include "bench/common.hpp"
#include "fitness/functions.hpp"
#include "util/stats.hpp"

int main() {
    using namespace gaip;
    bench::banner("Seed-robustness statistics (24 seeds per configuration)",
                  "variance behind the single-run entries of Tables V / VII-IX");

    std::vector<std::uint16_t> seeds;
    core::RngState seeder(0x5EED);
    for (int i = 0; i < 24; ++i) seeds.push_back(seeder.next16());

    struct Config {
        const char* label;
        fitness::FitnessId fn;
        std::uint8_t pop;
        std::uint32_t gens;
        std::uint8_t xr;
    };
    const Config configs[] = {
        {"BF6 pop32 XR10 (Table V)", fitness::FitnessId::kBf6, 32, 32, 10},
        {"mBF6_2 pop32 XR10 (Table VII)", fitness::FitnessId::kMBf6_2, 32, 64, 10},
        {"mBF6_2 pop64 XR12 (Table VII)", fitness::FitnessId::kMBf6_2, 64, 64, 12},
        {"mBF7_2 pop64 XR10 (Table VIII)", fitness::FitnessId::kMBf7_2, 64, 64, 10},
        {"mShubert2D pop64 XR10 (Table IX)", fitness::FitnessId::kMShubert2D, 64, 64, 10},
    };

    util::TextTable table({"Configuration", "mean best", "stddev", "min", "max",
                           "optimum", "mean gap %", "hits optimum"});
    for (const Config& c : configs) {
        std::vector<double> bests;
        unsigned hits = 0;
        const unsigned optimum = fitness::grid_optimum(c.fn).best_value;
        for (const std::uint16_t seed : seeds) {
            const core::GaParameters p{.pop_size = c.pop, .n_gens = c.gens,
                                       .xover_threshold = c.xr, .mut_threshold = 1,
                                       .seed = seed};
            const core::RunResult r = core::run_behavioral_ga(
                p, [&](std::uint16_t x) { return fitness::fitness_u16(c.fn, x); },
                prng::RngKind::kCellularAutomaton, false);
            bests.push_back(r.best_fitness);
            if (r.best_fitness == optimum) ++hits;
        }
        const util::Summary s = util::summarize(bests);
        table.add(c.label, s.mean, s.stddev, s.min, s.max, optimum,
                  100.0 * (optimum - s.mean) / optimum,
                  std::to_string(hits) + "/" + std::to_string(seeds.size()));
    }

    table.print();
    table.write_csv(bench::out_path("stats_robustness.csv"));
    std::cout << "\nReading: the per-seed spread (stddev, min..max) spans several percent of\n"
                 "the optimum on the hard landscapes — the variance that makes the paper's\n"
                 "single-run table entries move when the RNG differs, and the quantitative\n"
                 "case for the programmable-seed port.\n";
    return 0;
}
