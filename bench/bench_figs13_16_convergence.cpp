// Figs. 13-16 reproduction: hardware-measured convergence (best fitness and
// average fitness per generation, collected by the on-chip monitor):
//   Fig. 13 — mBF6_2,     seed 061F, XR 10, pop 64
//   Fig. 14 — mBF6_2,     seed A0A0, XR 10, pop 64
//   Fig. 15 — mBF7_2,     seed AAAA, XR 12, pop 64
//   Fig. 16 — mShubert2D, seed AAAA, XR 10, pop 64
// Paper headline claims checked here: the best solution appears within the
// first ~10-18 generations, i.e. after evaluating ~1% of the 65536-point
// solution space (704 / 1216 / 832 evaluations for the three functions).
#include <fstream>

#include "bench/common.hpp"
#include "fitness/functions.hpp"
#include "trace/event.hpp"

namespace {

using gaip::core::GaParameters;
using gaip::fitness::FitnessId;

struct Fig {
    const char* name;
    FitnessId fn;
    std::uint16_t seed;
    std::uint8_t xr;
    unsigned paper_best_gen;  // generation by which the paper saw the best
};

const Fig kFigs[] = {
    {"fig13_mbf6_061f", FitnessId::kMBf6_2, 0x061F, 10, 10},
    {"fig14_mbf6_a0a0", FitnessId::kMBf6_2, 0xA0A0, 10, 10},
    {"fig15_mbf7_aaaa", FitnessId::kMBf7_2, 0xAAAA, 12, 18},
    {"fig16_shubert_aaaa", FitnessId::kMShubert2D, 0xAAAA, 10, 12},
};

}  // namespace

int main() {
    using namespace gaip;
    bench::banner("Figs. 13-16 — hardware convergence (best & average fitness)",
                  "monitor streams for four FPGA runs; pop 64, mutation 1/16, 64 generations");

    for (const Fig& fig : kFigs) {
        const GaParameters p{.pop_size = 64, .n_gens = 64, .xover_threshold = fig.xr,
                             .mut_threshold = 1, .seed = fig.seed};

        // The series comes from the run-telemetry layer (one `generation`
        // event per monitor pulse), not from a bespoke history tap; the full
        // event stream lands next to the CSV as <fig>.jsonl.
        trace::MemorySink telemetry;
        system::GaSystemConfig cfg;
        cfg.params = p;
        cfg.internal_fems = {fig.fn};
        cfg.trace_sink = &telemetry;
        cfg.trace_path = bench::out_path(std::string(fig.name) + ".jsonl");
        const core::RunResult r = system::run_ga_system(cfg);

        std::vector<double> best, avg;
        for (const trace::TraceEvent& e : telemetry.events()) {
            if (e.kind != trace::kind::kGeneration) continue;
            best.push_back(static_cast<double>(e.u64("best_fit")));
            const std::uint64_t pop = e.u64("pop");
            avg.push_back(pop == 0 ? static_cast<double>(e.u64("fit_sum"))
                                   : static_cast<double>(e.u64("fit_sum")) /
                                         static_cast<double>(pop));
        }

        std::ofstream f(bench::out_path(std::string(fig.name) + ".csv"));
        f << "generation,best_fitness,avg_fitness\n";
        for (std::size_t g = 0; g < best.size(); ++g)
            f << g << ',' << best[g] << ',' << avg[g] << '\n';

        // Generation at which the best-ever fitness was first reached.
        std::size_t best_gen = 0;
        for (std::size_t g = 0; g < r.history.size(); ++g) {
            if (r.history[g].best_fit == r.best_fitness) {
                best_gen = g;
                break;
            }
        }
        const std::uint64_t evals_to_best = static_cast<std::uint64_t>(best_gen + 1) * 64u;

        std::printf("%s: %s seed=%s XR=%u  best=%u  found at gen %zu  (~%llu evaluations,"
                    " %.2f%% of the 65536-point space; paper: by gen ~%u)\n",
                    fig.name, fitness::fitness_name(fig.fn).c_str(),
                    util::hex16(fig.seed).c_str(), fig.xr, r.best_fitness, best_gen,
                    static_cast<unsigned long long>(evals_to_best),
                    100.0 * static_cast<double>(evals_to_best) / 65536.0, fig.paper_best_gen);
        bench::ascii_chart(best, avg, "fitness");
        std::printf("\n");
    }

    std::cout << "Series CSVs in " << bench::out_dir() << "/fig1*.csv\n";
    return 0;
}
