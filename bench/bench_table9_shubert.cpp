// Table IX reproduction: best fitness on mShubert2D across the 24 hardware
// parameter settings. Paper headline: the global optimum 65535 is reached
// under several settings (bold entries), sometimes at multiple distinct
// optima in one run.
#include "bench/bench_tables7_9_common.hpp"

int main() {
    using namespace gaip;
    const bench::PaperGrid paper = {
        {0x2961, {56835, 56835, 48135, 56835}},
        {0x061F, {56835, 55095, 65535, 58227}},
        {0xB342, {56487, 56487, 54051, 63795}},
        {0xAAAA, {63795, 56487, 65535, 65535}},
        {0xA0A0, {56835, 63795, 65535, 53355}},
        {0xFFFF, {53355, 65535, 48135, 56835}},
    };
    bench::run_table("Table IX — best fitness, mShubert2D", "table9_shubert.csv",
                     fitness::FitnessId::kMShubert2D, paper, 65535);
    return 0;
}
