// Fig. 7 reproduction: the (zoomed) shape of the Binary F6 test function —
// plus the landscapes of the other evaluation functions, emitted as CSV
// series so any plotting tool regenerates the paper's figure.
#include <cmath>
#include <fstream>

#include "bench/common.hpp"
#include "fitness/functions.hpp"

int main() {
    using namespace gaip;
    bench::banner("Fig. 7 — test function landscapes",
                  "Fig. 7 (BF6 zoom 0..300) + mBF6_2 / mBF7_2 / mShubert2D shapes");

    // Fig. 7 proper: BF6 on x in [0, 300] — the paper's zoomed plot showing
    // the 360-degree-period ripple around the 3200 offset.
    {
        std::ofstream f(bench::out_path("fig7_bf6_zoom.csv"));
        f << "x,bf6\n";
        for (int x = 0; x <= 300; ++x) f << x << ',' << fitness::bf6(x) << '\n';
    }

    // Full-range landscapes (lookup-table contents).
    {
        std::ofstream f(bench::out_path("fig7_bf6_full.csv"));
        f << "x,bf6_u16\n";
        for (std::uint32_t x = 0; x <= 0xFFFF; x += 16)
            f << x << ','
              << fitness::fitness_u16(fitness::FitnessId::kBf6, static_cast<std::uint16_t>(x))
              << '\n';
    }
    {
        std::ofstream f(bench::out_path("fig7_mbf6_2_full.csv"));
        f << "x,mbf6_2_u16\n";
        for (std::uint32_t x = 0; x <= 0xFFFF; x += 16)
            f << x << ','
              << fitness::fitness_u16(fitness::FitnessId::kMBf6_2, static_cast<std::uint16_t>(x))
              << '\n';
    }
    {
        std::ofstream f(bench::out_path("fig7_mbf7_2_grid.csv"));
        f << "x,y,mbf7_2_u16\n";
        for (int x = 0; x < 256; x += 4)
            for (int y = 0; y < 256; y += 4)
                f << x << ',' << y << ','
                  << fitness::fitness_u16(fitness::FitnessId::kMBf7_2,
                                          static_cast<std::uint16_t>((x << 8) | y))
                  << '\n';
    }
    {
        std::ofstream f(bench::out_path("fig7_mshubert2d_grid.csv"));
        f << "x1,x2,mshubert2d_u16\n";
        for (int x = 0; x < 256; x += 4)
            for (int y = 0; y < 256; y += 4)
                f << x << ',' << y << ','
                  << fitness::fitness_u16(fitness::FitnessId::kMShubert2D,
                                          static_cast<std::uint16_t>((x << 8) | y))
                  << '\n';
    }

    // Terminal rendering of the Fig. 7 zoom.
    std::vector<double> series;
    for (int x = 0; x <= 300; x += 3) series.push_back(fitness::bf6(x));
    bench::ascii_chart(series, {}, "BF6(x), x in [0,300]");

    // Headline landscape facts the paper states, checked live.
    util::TextTable table({"Function", "Grid max", "Argmax", "#global optima", "Paper claim"});
    for (const auto id : {fitness::FitnessId::kBf6, fitness::FitnessId::kMBf6_2,
                          fitness::FitnessId::kMBf7_2, fitness::FitnessId::kMShubert2D}) {
        const auto g = fitness::grid_optimum(id);
        const auto pc = fitness::paper_optimum(id);
        table.add(fitness::fitness_name(id), g.best_value, util::hex16(g.first_argmax),
                  g.argmax_count, std::to_string(pc.paper_best) + " @ " + pc.paper_argmax);
    }
    table.print();
    std::cout << "\nCSV series in " << bench::out_dir() << "/fig7_*.csv\n";
    return 0;
}
