// Ablation: the two scaling routes of Sec. III-D at equal budget —
//   (a) "resynthesize the behavioral description" (run_wide_ga at 32 bits:
//       true single-point crossover over the full chromosome), vs.
//   (b) two 16-bit cores composed per Fig. 6 (effectively 3-point
//       crossover, synchronized selection, zero resynthesis effort).
// The paper calls (a) "the most efficient method" and warns that (b)'s
// composed operator "can be more disruptive"; this bench quantifies both.
#include <bit>

#include "bench/common.hpp"
#include "core/dual_core.hpp"
#include "core/wide_ga.hpp"
#include "fitness/functions.hpp"

int main() {
    using namespace gaip;
    bench::banner("Sec. III-D scaling routes: resynthesized 32-bit vs dual 16-bit cores",
                  "equal budget (pop 64 x 64 gens); mean best over 4 seed pairs");

    struct Workload {
        const char* name;
        core::FitnessFn32 fn;
        unsigned optimum;
    };
    const std::uint32_t target = 0x5A5AC3C3;
    const Workload workloads[] = {
        {"OneMax32", [](std::uint32_t x) { return fitness::onemax32(x); }, 32u * 2047u},
        {"Sphere32", [=](std::uint32_t x) { return fitness::sphere32(x, target); }, 65535u},
    };
    const std::pair<std::uint16_t, std::uint16_t> seed_pairs[] = {
        {0x2961, 0xB342}, {0x061F, 0xAAAA}, {0xA0A0, 0xFFFF}, {0x1234, 0x8765}};

    util::TextTable table({"Workload", "resynth-32 mean best", "dual-core mean best",
                           "optimum", "dual-core wall cycles (mean)"});

    for (const Workload& w : workloads) {
        double resynth_sum = 0;
        double dual_sum = 0;
        double cycles_sum = 0;
        for (const auto& [s1, s2] : seed_pairs) {
            core::WideGaParameters wp;
            wp.chrom_bits = 32;
            wp.pop_size = 64;
            wp.n_gens = 64;
            wp.xover_threshold = 10;
            wp.mut_threshold = 2;
            wp.seed = s1;
            resynth_sum += core::run_wide_ga(
                               wp, [&](std::uint64_t x) {
                                   return w.fn(static_cast<std::uint32_t>(x));
                               })
                               .best_fitness;

            core::DualGaConfig dc;
            dc.pop_size = 64;
            dc.n_gens = 64;
            dc.xover_threshold_msb = core::split_threshold_for_rate32(10.0 / 16.0);
            dc.xover_threshold_lsb = dc.xover_threshold_msb;
            dc.mut_threshold_msb = 2;
            dc.mut_threshold_lsb = 2;
            dc.seed_msb = s1;
            dc.seed_lsb = s2;
            dc.fitness = w.fn;
            core::DualGaSystem sys(dc);
            const core::DualRunResult r = sys.run();
            dual_sum += r.best_fitness;
            cycles_sum += static_cast<double>(r.ga_cycles);
        }
        const double n = static_cast<double>(std::size(seed_pairs));
        table.add(w.name, resynth_sum / n, dual_sum / n, w.optimum, cycles_sum / n);
    }

    table.print();
    table.write_csv(bench::out_path("dualcore_vs_resynth.csv"));
    std::cout << "\nReading (measured): on these SEPARABLE 32-bit workloads the dual-core\n"
                 "composition actually wins — its two independent RNG streams and per-half\n"
                 "operators are a good match for per-half structure, and it needs no new\n"
                 "netlist. The paper's warning that the composed 3-point crossover \"can be\n"
                 "more disruptive\" applies to tightly linked encodings, where the\n"
                 "resynthesized true single-point operator preserves long schemata.\n";
    return 0;
}
