// Service-plane throughput bench: jobs/s and aggregate generations/s the
// gaipd scheduler sustains at 1 / 8 / 64 / 256 concurrent jobs, driven
// through the REAL socket stack (in-process Daemon + a Client per batch, the
// same code path gaipctl exercises). Every job is an identical small gates-
// backend OneMax run, so the headline series isolates the control plane +
// lane-packing overhead: at 64+ concurrent jobs the scheduler packs whole
// batches as SIMD lanes of one shared compiled netlist, so aggregate gens/s
// must GROW from the 1-job baseline (the monotone gate, mirroring
// bench_island_scaling's).
//
// A recovery-time measurement rides along (the durability cost headline):
// submit a burst of journaled jobs to a FORKED daemon, SIGKILL it, restart
// on the same journal, and time how long until every job is terminal
// again (`recovery_*` keys).
//
// Results land in bench_out/BENCH_service.json for CI trend tracking.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace {

using namespace gaip;

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

service::JobSpec job_spec() {
    service::JobSpec spec;
    spec.fn = fitness::FitnessId::kOneMax;
    spec.params = core::resolve_parameters(
        0, {.pop_size = 16, .n_gens = 12, .xover_threshold = 10, .mut_threshold = 1,
            .seed = bench::kPaperSeeds[0]});
    spec.backend = service::JobBackend::kGates;
    return spec;
}

struct Level {
    unsigned jobs;
    double wall_s;
    double jobs_per_s;
    double gens_per_s;
};

/// Submit `n` identical jobs in one burst, then stream each to completion.
/// Submission happens before any stream attaches, so the scheduler sees the
/// whole burst queued and can pack it into lane batches.
Level run_level(const std::string& socket, unsigned n, std::uint32_t gens) {
    service::Client c(socket);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::uint64_t> ids;
    ids.reserve(n);
    const service::JobSpec spec = job_spec();
    for (unsigned i = 0; i < n; ++i) ids.push_back(c.submit(spec));
    for (const std::uint64_t id : ids) c.stream(id);
    const double wall = seconds_since(t0);
    return {n, wall, n / wall, static_cast<double>(n) * gens / wall};
}

struct Recovery {
    unsigned jobs;
    double submit_s;       ///< burst submission wall time (journaled admits)
    double recover_wall_s; ///< restart -> every job terminal again
    std::uint64_t restored;
    std::uint64_t readmitted;
    bool all_terminal;
};

/// Crash-recovery timing: fork a journaled daemon, submit `n` jobs,
/// SIGKILL it mid-flight, restart on the same journal in-process, and
/// time until every job id reports a terminal state.
Recovery run_recovery(unsigned n, unsigned workers) {
    const std::string dir = "bench_gaipd_recovery.j";
    const std::string socket = "bench_gaipd_rec.sock";
    std::filesystem::remove_all(dir);

    const pid_t pid = ::fork();
    if (pid == 0) {
        service::ServerConfig cfg;
        cfg.socket_path = socket;
        cfg.journal_dir = dir;
        cfg.scheduler.workers = workers;
        cfg.scheduler.max_queue = 4096;
        service::Server server(std::move(cfg));
        server.run();
        _exit(0);
    }

    Recovery r{};
    r.jobs = n;
    service::RetryPolicy policy;
    policy.base_ms = 20;
    policy.max_ms = 200;
    if (!service::ping_wait(socket, 30.0, policy)) {
        std::fprintf(stderr, "recovery: forked daemon never came up\n");
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        return r;
    }

    std::vector<std::uint64_t> ids;
    ids.reserve(n);
    {
        service::Client c = service::Client::dial(socket, policy);
        const service::JobSpec spec = job_spec();
        const auto t0 = std::chrono::steady_clock::now();
        for (unsigned i = 0; i < n; ++i) ids.push_back(c.submit(spec));
        r.submit_s = seconds_since(t0);
    }
    ::kill(pid, SIGKILL);  // mid-flight: some done, some running, most queued
    ::waitpid(pid, nullptr, 0);

    const auto t0 = std::chrono::steady_clock::now();
    service::ServerConfig cfg;
    cfg.socket_path = socket;
    cfg.journal_dir = dir;
    cfg.scheduler.workers = workers;
    cfg.scheduler.max_queue = 4096;
    service::Daemon daemon(cfg);
    service::Client c(daemon.socket_path());
    r.all_terminal = true;
    for (const std::uint64_t id : ids) {
        for (;;) {
            const std::string st = c.status(id).str("state");
            if (st != "queued" && st != "running") break;
            if (seconds_since(t0) > 300.0) {
                r.all_terminal = false;
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    }
    r.recover_wall_s = seconds_since(t0);
    const service::ServiceStats stats = daemon.scheduler().stats();
    r.restored = stats.restored;
    r.readmitted = stats.readmitted;
    daemon.stop();
    return r;
}

}  // namespace

int main() {
    bench::banner("Service throughput",
                  "gaipd control plane: concurrent GA jobs over the socket stack");

    const unsigned workers = std::max(2u, std::thread::hardware_concurrency() / 2);

    // Recovery first: fork() must happen while this process is still
    // single-threaded (the in-process Daemon spawns worker threads).
    const Recovery rec = run_recovery(64, workers);
    std::printf("recovery: %u jobs, submit %.3fs, kill -9, all-terminal again in %.3fs "
                "(%llu restored, %llu re-run)\n",
                rec.jobs, rec.submit_s, rec.recover_wall_s,
                static_cast<unsigned long long>(rec.restored),
                static_cast<unsigned long long>(rec.readmitted));
    service::ServerConfig cfg;
    cfg.socket_path = "bench_gaipd.sock";
    cfg.scheduler.workers = workers;
    cfg.scheduler.max_queue = 4096;
    service::Daemon daemon(cfg);

    bench::JsonReport report;
    bench::env_block(report, 0, workers, "", "gates");

    // Warmup: pay the per-worker netlist compilation outside the timed runs.
    run_level(cfg.socket_path, workers * 2, job_spec().params.n_gens);

    std::printf("%-8s %-10s %-12s %-14s\n", "jobs", "wall_s", "jobs/s", "gens/s");
    std::vector<Level> levels;
    for (const unsigned n : {1u, 8u, 64u, 256u}) {
        const Level lv = run_level(cfg.socket_path, n, job_spec().params.n_gens);
        std::printf("%-8u %-10.3f %-12.1f %-14.1f\n", lv.jobs, lv.wall_s, lv.jobs_per_s,
                    lv.gens_per_s);
        const std::string p = "jobs" + std::to_string(n) + "_";
        report.set(p + "wall_s", lv.wall_s)
            .set(p + "jobs_per_s", lv.jobs_per_s)
            .set(p + "gens_per_s", lv.gens_per_s);
        levels.push_back(lv);
    }

    // Monotone gate: lane packing + worker parallelism must make aggregate
    // throughput grow from 1 job to 64 concurrent jobs.
    const bool monotone = levels[0].gens_per_s < levels[1].gens_per_s &&
                          levels[1].gens_per_s < levels[2].gens_per_s;
    report.set("throughput_monotone_1_to_64", static_cast<std::uint64_t>(monotone ? 1 : 0));
    std::printf("monotone gens/s 1 -> 8 -> 64: %s\n", monotone ? "yes" : "NO");

    report.set("recovery_jobs", std::uint64_t{rec.jobs})
        .set("recovery_submit_s", rec.submit_s)
        .set("recovery_wall_s", rec.recover_wall_s)
        .set("recovery_restored", rec.restored)
        .set("recovery_readmitted", rec.readmitted)
        .set("recovery_all_terminal", std::uint64_t{rec.all_terminal ? 1u : 0u});

    const service::ServiceStats stats = daemon.scheduler().stats();
    report.set("total_done", stats.done)
        .set("total_failed", stats.failed)
        .set("gate_batches", stats.gate_batches)
        .set("gate_lanes", stats.gate_lanes)
        .set("lanes_per_batch",
             stats.gate_batches == 0
                 ? 0.0
                 : static_cast<double>(stats.gate_lanes) / stats.gate_batches);

    report.write(bench::out_path("BENCH_service.json"));
    daemon.stop();
    return monotone && stats.failed == 0 && rec.all_terminal ? 0 : 1;
}
