// Service-plane throughput bench: jobs/s and aggregate generations/s the
// gaipd scheduler sustains at 1 / 8 / 64 / 256 concurrent jobs, driven
// through the REAL socket stack (in-process Daemon + a Client per batch, the
// same code path gaipctl exercises). Every job is an identical small gates-
// backend OneMax run, so the headline series isolates the control plane +
// lane-packing overhead: at 64+ concurrent jobs the scheduler packs whole
// batches as SIMD lanes of one shared compiled netlist, so aggregate gens/s
// must GROW from the 1-job baseline (the monotone gate, mirroring
// bench_island_scaling's).
//
// Results land in bench_out/BENCH_service.json for CI trend tracking.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace {

using namespace gaip;

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

service::JobSpec job_spec() {
    service::JobSpec spec;
    spec.fn = fitness::FitnessId::kOneMax;
    spec.params = core::resolve_parameters(
        0, {.pop_size = 16, .n_gens = 12, .xover_threshold = 10, .mut_threshold = 1,
            .seed = bench::kPaperSeeds[0]});
    spec.backend = service::JobBackend::kGates;
    return spec;
}

struct Level {
    unsigned jobs;
    double wall_s;
    double jobs_per_s;
    double gens_per_s;
};

/// Submit `n` identical jobs in one burst, then stream each to completion.
/// Submission happens before any stream attaches, so the scheduler sees the
/// whole burst queued and can pack it into lane batches.
Level run_level(const std::string& socket, unsigned n, std::uint32_t gens) {
    service::Client c(socket);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::uint64_t> ids;
    ids.reserve(n);
    const service::JobSpec spec = job_spec();
    for (unsigned i = 0; i < n; ++i) ids.push_back(c.submit(spec));
    for (const std::uint64_t id : ids) c.stream(id);
    const double wall = seconds_since(t0);
    return {n, wall, n / wall, static_cast<double>(n) * gens / wall};
}

}  // namespace

int main() {
    bench::banner("Service throughput",
                  "gaipd control plane: concurrent GA jobs over the socket stack");

    const unsigned workers = std::max(2u, std::thread::hardware_concurrency() / 2);
    service::ServerConfig cfg;
    cfg.socket_path = "bench_gaipd.sock";
    cfg.scheduler.workers = workers;
    cfg.scheduler.max_queue = 4096;
    service::Daemon daemon(cfg);

    bench::JsonReport report;
    bench::env_block(report, 0, workers, "", "gates");

    // Warmup: pay the per-worker netlist compilation outside the timed runs.
    run_level(cfg.socket_path, workers * 2, job_spec().params.n_gens);

    std::printf("%-8s %-10s %-12s %-14s\n", "jobs", "wall_s", "jobs/s", "gens/s");
    std::vector<Level> levels;
    for (const unsigned n : {1u, 8u, 64u, 256u}) {
        const Level lv = run_level(cfg.socket_path, n, job_spec().params.n_gens);
        std::printf("%-8u %-10.3f %-12.1f %-14.1f\n", lv.jobs, lv.wall_s, lv.jobs_per_s,
                    lv.gens_per_s);
        const std::string p = "jobs" + std::to_string(n) + "_";
        report.set(p + "wall_s", lv.wall_s)
            .set(p + "jobs_per_s", lv.jobs_per_s)
            .set(p + "gens_per_s", lv.gens_per_s);
        levels.push_back(lv);
    }

    // Monotone gate: lane packing + worker parallelism must make aggregate
    // throughput grow from 1 job to 64 concurrent jobs.
    const bool monotone = levels[0].gens_per_s < levels[1].gens_per_s &&
                          levels[1].gens_per_s < levels[2].gens_per_s;
    report.set("throughput_monotone_1_to_64", static_cast<std::uint64_t>(monotone ? 1 : 0));
    std::printf("monotone gens/s 1 -> 8 -> 64: %s\n", monotone ? "yes" : "NO");

    const service::ServiceStats stats = daemon.scheduler().stats();
    report.set("total_done", stats.done)
        .set("total_failed", stats.failed)
        .set("gate_batches", stats.gate_batches)
        .set("gate_lanes", stats.gate_lanes)
        .set("lanes_per_batch",
             stats.gate_batches == 0
                 ? 0.0
                 : static_cast<double>(stats.gate_lanes) / stats.gate_batches);

    report.write(bench::out_path("BENCH_service.json"));
    daemon.stop();
    return monotone && stats.failed == 0 ? 0 : 1;
}
