// Related-work comparison (Table I / Sec. II-B): the GA templates of the
// earlier FPGA implementations, run head-to-head at equal evaluation budget
// on the paper's functions plus a deceptive trap. Reproduces the paper's
// design-space arguments: the selection scheme matters less than
// programmability, and the compact GA's small footprint costs it anything
// with higher-order structure.
#include <bit>

#include "baselines/compact_ga.hpp"
#include "baselines/templates.hpp"
#include "bench/common.hpp"
#include "fitness/functions.hpp"

namespace {

using namespace gaip;

std::uint16_t trap4(std::uint16_t c) {
    unsigned total = 0;
    for (unsigned b = 0; b < 4; ++b) {
        const unsigned ones = static_cast<unsigned>(std::popcount((c >> (4 * b)) & 0xFu));
        total += (ones == 4) ? 4 : (3 - ones);
    }
    return static_cast<std::uint16_t>(4095u * total);
}

struct Problem {
    const char* name;
    core::FitnessFn fn;
    unsigned optimum;
};

double mean_best(const std::function<std::uint16_t(std::uint16_t)>& run_seed) {
    double sum = 0;
    for (const std::uint16_t seed : bench::kPaperSeeds) sum += run_seed(seed);
    return sum / static_cast<double>(bench::kPaperSeeds.size());
}

}  // namespace

int main() {
    using namespace gaip;
    bench::banner("Related-work GA templates (Table I design space)",
                  "roulette/round-robin/tournament, generational vs steady-state, compact GA");

    const Problem problems[] = {
        {"OneMax", [](std::uint16_t x) { return fitness::fitness_u16(fitness::FitnessId::kOneMax, x); },
         16 * 4095},
        {"mBF6_2", [](std::uint16_t x) { return fitness::fitness_u16(fitness::FitnessId::kMBf6_2, x); },
         fitness::grid_optimum(fitness::FitnessId::kMBf6_2).best_value},
        {"mShubert2D",
         [](std::uint16_t x) { return fitness::fitness_u16(fitness::FitnessId::kMShubert2D, x); },
         65535},
        {"Trap4 (deceptive)", trap4, 16 * 4095},
    };

    const core::GaParameters base{.pop_size = 32, .n_gens = 64, .xover_threshold = 10,
                                  .mut_threshold = 2, .seed = 0};
    const std::uint64_t budget = 32 + 64ull * 31;  // evaluations, equal for all rows

    util::TextTable table({"Template (prior work)", "OneMax", "mBF6_2", "mShubert2D",
                           "Trap4 (deceptive)"});

    auto add_template = [&](const std::string& label, baselines::SelectionScheme sel,
                            bool steady) {
        std::vector<std::string> row{label};
        for (const Problem& prob : problems) {
            row.push_back(util::TextTable::to_cell(mean_best([&](std::uint16_t seed) {
                baselines::TemplateConfig cfg;
                cfg.params = base;
                cfg.params.seed = seed;
                cfg.selection = sel;
                cfg.steady_state = steady;
                return baselines::run_template_ga(cfg, prob.fn).best_fitness;
            })));
        }
        table.add_row(std::move(row));
    };

    add_template("roulette, elitist generational (proposed core / Scott [5])",
                 baselines::SelectionScheme::kProportionate, false);
    add_template("round-robin, generational (Tommiska & Vuori [6])",
                 baselines::SelectionScheme::kRoundRobin, false);
    add_template("tournament-2, generational (Yoshida [8])",
                 baselines::SelectionScheme::kTournament2, false);
    add_template("survival steady-state, tournament (Shackleford [7])",
                 baselines::SelectionScheme::kTournament2, true);

    {
        std::vector<std::string> row{"compact GA (Aporntewan [10])"};
        for (const Problem& prob : problems) {
            row.push_back(util::TextTable::to_cell(mean_best([&](std::uint16_t seed) {
                baselines::CompactGaConfig cfg;
                cfg.evaluation_budget = budget;
                cfg.seed = seed;
                return baselines::run_compact_ga(cfg, prob.fn).best_fitness;
            })));
        }
        table.add_row(std::move(row));
    }

    {
        std::vector<std::string> row{"(problem optimum)"};
        for (const Problem& prob : problems) row.push_back(std::to_string(prob.optimum));
        table.add_row(std::move(row));
    }

    table.print();
    table.write_csv(bench::out_path("related_work.csv"));

    std::cout << "\nMean best fitness over the 6 paper seeds at a fixed budget of " << budget
              << " evaluations.\nReadings: the generational templates land close together on "
                 "smooth problems; the\ncompact GA keeps pace on OneMax (order-1 building "
                 "blocks) but collapses on the\ndeceptive trap — the limitation the paper "
                 "cites when rejecting the cGA template.\n";
    return 0;
}
