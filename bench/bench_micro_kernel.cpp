// google-benchmark microbenchmarks: throughput of the simulation kernel and
// the GA building blocks. These quantify the model's own cost (simulated
// cycles per host second), not the paper's hardware.
#include <benchmark/benchmark.h>

#include "core/behavioral.hpp"
#include "core/dual_core.hpp"
#include "gates/ga_core_gates.hpp"
#include "fitness/rom_builder.hpp"
#include "prng/ca_prng.hpp"
#include "prng/lfsr.hpp"
#include "swga/software_ga.hpp"
#include "system/ga_system.hpp"
#include "system/parallel.hpp"

namespace {

using namespace gaip;

void BM_CaPrngStep(benchmark::State& state) {
    prng::CaPrng g(1);
    for (auto _ : state) benchmark::DoNotOptimize(g.next16());
}
BENCHMARK(BM_CaPrngStep);

void BM_Lfsr16Step(benchmark::State& state) {
    prng::Lfsr16 g(1);
    for (auto _ : state) benchmark::DoNotOptimize(g.next16());
}
BENCHMARK(BM_Lfsr16Step);

void BM_FitnessLookup(benchmark::State& state) {
    const auto rom = fitness::fitness_rom(fitness::FitnessId::kMBf6_2);
    std::uint16_t x = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(rom->read(x));
        x = static_cast<std::uint16_t>(x + 257);
    }
}
BENCHMARK(BM_FitnessLookup);

void BM_FitnessClosedForm(benchmark::State& state) {
    std::uint16_t x = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(fitness::fitness_u16(fitness::FitnessId::kMShubert2D, x));
        x = static_cast<std::uint16_t>(x + 257);
    }
}
BENCHMARK(BM_FitnessClosedForm);

void BM_BehavioralGaGeneration(benchmark::State& state) {
    const core::GaParameters p{.pop_size = static_cast<std::uint8_t>(state.range(0)),
                               .n_gens = 16, .xover_threshold = 10, .mut_threshold = 1,
                               .seed = 0x2961};
    const auto rom = fitness::fitness_rom(fitness::FitnessId::kMBf6_2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::run_behavioral_ga(
            p, [&](std::uint16_t x) { return rom->read(x); },
            prng::RngKind::kCellularAutomaton, false));
    }
    state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_BehavioralGaGeneration)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_RtlSystemRun(benchmark::State& state) {
    // Full-system RTL simulation throughput: one complete small run per
    // iteration. Reports simulated 50 MHz cycles per second as a counter.
    system::GaSystemConfig cfg;
    cfg.params = {.pop_size = 16, .n_gens = 8, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = 0x2961};
    cfg.internal_fems = {fitness::FitnessId::kMBf6_2};
    cfg.keep_populations = false;
    system::GaSystem sys(cfg);
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        sys.run();
        cycles += sys.ga_cycles();
    }
    state.counters["sim_cycles_per_s"] =
        benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RtlSystemRun);

void BM_RtlSystemScheduler(benchmark::State& state) {
    // Event-driven (arg 0) vs evaluate-everything sweep (arg 1) on the same
    // full-system run. The kernel's stats counters expose how much work the
    // dirty-tracking scheduler avoids: module eval() calls per simulated
    // time point and modules skipped per settle.
    const bool full_settle = state.range(0) != 0;
    system::GaSystemConfig cfg;
    cfg.params = {.pop_size = 16, .n_gens = 8, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = 0x2961};
    cfg.internal_fems = {fitness::FitnessId::kMBf6_2};
    cfg.keep_populations = false;
    system::GaSystem sys(cfg);
    sys.kernel().set_full_settle(full_settle);
    for (auto _ : state) sys.run();
    const rtl::KernelStats s = sys.kernel().stats();  // last run's counters
    state.counters["evals_per_cycle"] = benchmark::Counter(s.evals_per_time_point());
    state.counters["settle_passes"] = benchmark::Counter(static_cast<double>(s.settle_passes));
    state.counters["module_evals"] = benchmark::Counter(static_cast<double>(s.module_evals));
    state.counters["skipped"] = benchmark::Counter(static_cast<double>(s.modules_skipped));
}
BENCHMARK(BM_RtlSystemScheduler)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("full_settle");

void BM_ParallelGaSystemRun(benchmark::State& state) {
    // 4-engine parallel array; arg = worker threads (1 = sequential). On a
    // multi-core host the pooled run is near-linearly faster; the results
    // are bit-identical either way (asserted in test_parallel).
    system::ParallelGaConfig cfg;
    cfg.params = {.pop_size = 16, .n_gens = 8, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = 0};
    cfg.seeds = {0x2961, 0x061F, 0xB342, 0xAAAA};
    cfg.fitness = fitness::FitnessId::kMBf6_2;
    cfg.threads = static_cast<unsigned>(state.range(0));
    system::ParallelGaSystem sys(cfg);
    for (auto _ : state) benchmark::DoNotOptimize(sys.run());
    state.counters["threads"] =
        benchmark::Counter(static_cast<double>(sys.resolved_threads()));
    state.counters["engines"] = benchmark::Counter(static_cast<double>(sys.engine_count()));
}
BENCHMARK(BM_ParallelGaSystemRun)
    ->Arg(1)
    ->Arg(4)
    ->ArgName("threads")
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_DualCoreRun(benchmark::State& state) {
    core::DualGaConfig cfg;
    cfg.pop_size = 16;
    cfg.n_gens = 8;
    cfg.fitness = [](std::uint32_t x) { return fitness::onemax32(x); };
    core::DualGaSystem sys(cfg);
    for (auto _ : state) benchmark::DoNotOptimize(sys.run());
}
BENCHMARK(BM_DualCoreRun);

void BM_GateNetlistEval(benchmark::State& state) {
    // One combinational sweep of the full gate-level core (~10.7k gates).
    const auto g = gates::build_ga_core_netlist();
    for (auto _ : state) {
        g->nl.eval();
        benchmark::DoNotOptimize(g->nl.value(0));
    }
    state.counters["gates_per_s"] = benchmark::Counter(
        static_cast<double>(g->nl.stats().logic_gates), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GateNetlistEval);

void BM_SoftwareGa(benchmark::State& state) {
    const core::GaParameters p{.pop_size = 32, .n_gens = 32, .xover_threshold = 10,
                               .mut_threshold = 1, .seed = 0x2961};
    const auto rom = fitness::fitness_rom(fitness::FitnessId::kMBf6_2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(swga::run_software_ga(p, rom));
    }
}
BENCHMARK(BM_SoftwareGa);

}  // namespace

BENCHMARK_MAIN();
