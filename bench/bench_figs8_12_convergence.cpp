// Figs. 8-12 reproduction: convergence scatter plots of the RT-level
// simulations. Each paper figure plots every distinct population fitness
// P(i, j) per generation for one Table V run:
//   Fig. 8  — BF6, run #3  (seed 10593, pop 32, XR 10)
//   Fig. 9  — BF6, run #4  (seed 1567,  pop 32, XR 10)
//   Fig. 10 — BF6, run #5  (seed 1567,  pop 32, XR 12)
//   Fig. 11 — F2,  run #6  (seed 45890, pop 32, XR 10)
//   Fig. 12 — F3,  run #10 (seed 1567,  pop 32, XR 10)
#include <fstream>
#include <set>

#include "bench/common.hpp"
#include "fitness/functions.hpp"
#include "trace/event.hpp"

namespace {

using gaip::core::GaParameters;
using gaip::fitness::FitnessId;

struct Fig {
    const char* name;
    FitnessId fn;
    std::uint16_t seed;
    std::uint8_t xr;
};

const Fig kFigs[] = {
    {"fig8_bf6_run3", FitnessId::kBf6, 10593, 10},
    {"fig9_bf6_run4", FitnessId::kBf6, 1567, 10},
    {"fig10_bf6_run5", FitnessId::kBf6, 1567, 12},
    {"fig11_f2_run6", FitnessId::kF2, 45890, 10},
    {"fig12_f3_run10", FitnessId::kF3, 1567, 10},
};

}  // namespace

int main() {
    using namespace gaip;
    bench::banner("Figs. 8-12 — RT-level convergence scatter plots",
                  "population fitness per generation for Table V runs 3/4/5/6/10");

    for (const Fig& fig : kFigs) {
        const GaParameters p{.pop_size = 32, .n_gens = 32, .xover_threshold = fig.xr,
                             .mut_threshold = 1, .seed = fig.seed};

        // Populations (for the scatter) still come from the monitor history;
        // the best/avg chart series comes from the run-telemetry layer.
        trace::MemorySink telemetry;
        system::GaSystemConfig cfg;
        cfg.params = p;
        cfg.internal_fems = {fig.fn};
        cfg.trace_sink = &telemetry;
        const core::RunResult r = system::run_ga_system(cfg);

        // Scatter CSV: one row per distinct (generation, fitness) point —
        // the paper also deduplicates members with equal fitness.
        std::ofstream f(bench::out_path(std::string(fig.name) + ".csv"));
        f << "generation,fitness\n";
        for (const auto& s : r.history) {
            std::set<std::uint16_t> distinct;
            for (const auto& m : s.population) distinct.insert(m.fitness);
            for (const std::uint16_t v : distinct) f << s.gen << ',' << v << '\n';
        }

        std::vector<double> best, avg;
        for (const trace::TraceEvent& e : telemetry.events()) {
            if (e.kind != trace::kind::kGeneration) continue;
            best.push_back(static_cast<double>(e.u64("best_fit")));
            const std::uint64_t pop = e.u64("pop");
            avg.push_back(pop == 0 ? static_cast<double>(e.u64("fit_sum"))
                                   : static_cast<double>(e.u64("fit_sum")) /
                                         static_cast<double>(pop));
        }
        std::printf("%s: %s seed=%u XR=%u  best=%u (optimum %u)\n", fig.name,
                    fitness::fitness_name(fig.fn).c_str(), fig.seed, fig.xr, r.best_fitness,
                    fitness::grid_optimum(fig.fn).best_value);
        bench::ascii_chart(best, avg, "fitness");

        // Paper-claimed qualitative property: the population sheds inferior
        // members over the run (fewer distinct low-fitness points late).
        std::set<std::uint16_t> first_gen, last_gen;
        for (const auto& m : r.history.front().population) first_gen.insert(m.fitness);
        for (const auto& m : r.history.back().population) last_gen.insert(m.fitness);
        std::printf("  distinct fitness values: gen0=%zu  gen32=%zu (convergence squeezes"
                    " the scatter)\n\n",
                    first_gen.size(), last_gen.size());
    }

    std::cout << "Scatter CSVs in " << bench::out_dir() << "/fig*.csv\n";
    return 0;
}
