// Table V reproduction: RT-level simulation results for the three test
// functions (BF6, F2, F3) under the paper's ten parameter settings.
//
// Paper conditions: chromosome length 16, mutation rate 0.0625 (threshold
// 1/16), 32 generations; seed / population size / crossover threshold vary
// per row. The paper reports the best fitness found and the "convergence"
// generation — the generation where the average-fitness improvement to the
// next generation first drops below 5%.
#include <cstdint>

#include "bench/common.hpp"
#include "fitness/functions.hpp"

namespace {

using gaip::core::GaParameters;
using gaip::fitness::FitnessId;

struct Row {
    int run;
    FitnessId fn;
    std::uint16_t seed;
    std::uint8_t pop;
    std::uint8_t xr;
    unsigned paper_best;
    unsigned paper_conv;
};

// Rows 1-10 of Table V (seeds are decimal in the paper).
const Row kRows[] = {
    {1, FitnessId::kBf6, 45890, 32, 10, 4047, 8},
    {2, FitnessId::kBf6, 45890, 64, 10, 4271, 30},
    {3, FitnessId::kBf6, 10593, 32, 10, 4271, 16},
    {4, FitnessId::kBf6, 1567, 32, 10, 4146, 26},
    {5, FitnessId::kBf6, 1567, 32, 12, 4047, 10},
    {6, FitnessId::kF2, 45890, 32, 10, 3060, 18},
    {7, FitnessId::kF2, 45890, 64, 10, 2096, 10},
    {8, FitnessId::kF2, 10593, 64, 10, 3060, 26},
    {9, FitnessId::kF2, 10593, 32, 12, 3060, 12},
    {10, FitnessId::kF3, 1567, 32, 10, 3060, 20},
};

}  // namespace

int main() {
    using namespace gaip;
    bench::banner("Table V — RT-level simulation results (BF6, F2, F3)",
                  "Table V; mutation 1/16, 32 generations, chromosome length 16");

    util::TextTable table({"Run", "Fn", "Seed", "Pop", "XR", "Best", "Conv.gen", "PaperBest",
                           "PaperConv", "Best vs paper"});

    for (const Row& row : kRows) {
        const GaParameters p{.pop_size = row.pop, .n_gens = 32, .xover_threshold = row.xr,
                             .mut_threshold = 1, .seed = row.seed};
        const core::RunResult r = bench::run_hw(row.fn, p);

        std::vector<double> mean;
        for (const auto& s : r.history) mean.push_back(s.mean_fitness());
        // Range-normalized settling metric; the paper's literal
        // 5%-of-current-mean rule degenerates on BF6's +3200 offset (see
        // util::settling_generation).
        const std::size_t conv =
            util::settling_generation(std::span<const double>(mean.data(), mean.size()));

        table.add(row.run, fitness::fitness_name(row.fn), row.seed, row.pop,
                  static_cast<unsigned>(row.xr), r.best_fitness, conv, row.paper_best,
                  row.paper_conv,
                  bench::vs_paper(r.best_fitness, static_cast<double>(row.paper_best)));
    }

    table.print();
    table.write_csv(bench::out_path("table5.csv"));
    std::cout << "\nNotes: seeds drive a different (maximal-period) CA than the authors', so\n"
                 "per-row values differ; the paper's qualitative claims to check are (a) the\n"
                 "optimum (4271-ish BF6 / 3060 F2 / 3060 F3) is reached under some settings\n"
                 "but not all, and (b) the seed alone changes the outcome (rows 1 vs 3).\n"
                 "CSV: "
              << bench::out_path("table5.csv") << "\n";
    return 0;
}
