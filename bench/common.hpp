// Shared helpers for the reproduction benches: output directory handling,
// paper-vs-measured annotation, ASCII convergence charts, and the standard
// run wrapper around GaSystem.
#pragma once

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/behavioral.hpp"
#include "system/ga_system.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace gaip::bench {

/// The six RNG seeds of the paper's FPGA experiments (Tables VII-IX).
inline constexpr std::array<std::uint16_t, 6> kPaperSeeds = {0x2961, 0x061F, 0xB342,
                                                             0xAAAA, 0xA0A0, 0xFFFF};

/// Directory the benches drop their CSV/JSON series into. Defaults to
/// `bench_out/` under the working directory; override with GAIP_BENCH_OUT.
inline std::string out_dir() {
    const char* env = std::getenv("GAIP_BENCH_OUT");
    const std::filesystem::path dir = (env && *env) ? env : "bench_out";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return dir.string();
}

inline std::string out_path(const std::string& file) { return out_dir() + "/" + file; }

inline void banner(const std::string& title, const std::string& paper_ref) {
    std::cout << "\n=== " << title << " ===\n";
    std::cout << "    reproduces: " << paper_ref << "\n\n";
}

/// Minimal machine-readable bench output: an ordered flat JSON object of
/// string / number fields, written atomically enough for CI artifact
/// collection. Keeps the perf trajectory of a bench comparable across PRs
/// (e.g. bench_out/BENCH_gates.json).
class JsonReport {
public:
    JsonReport& set(const std::string& key, double v) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        fields_.emplace_back(key, buf);
        return *this;
    }
    JsonReport& set(const std::string& key, std::uint64_t v) {
        fields_.emplace_back(key, std::to_string(v));
        return *this;
    }
    JsonReport& set(const std::string& key, const std::string& v) {
        std::string quoted = "\"";
        for (const char c : v) {
            if (c == '"' || c == '\\') quoted += '\\';
            quoted += c;
        }
        quoted += '"';
        fields_.emplace_back(key, std::move(quoted));
        return *this;
    }
    std::string str() const {
        std::string s = "{\n";
        for (std::size_t i = 0; i < fields_.size(); ++i) {
            s += "  \"" + fields_[i].first + "\": " + fields_[i].second;
            if (i + 1 < fields_.size()) s += ",";
            s += "\n";
        }
        s += "}\n";
        return s;
    }
    void write(const std::string& path) const {
        std::ofstream(path) << str();
        std::printf("JSON: %s\n", path.c_str());
    }

private:
    std::vector<std::pair<std::string, std::string>> fields_;
};

/// Standard environment block for every BENCH_*.json: the toolchain that
/// built this binary (compiler id via the predefined version macros, flags
/// via the GAIP_BENCH_CXX_FLAGS definition baked in bench/CMakeLists.txt),
/// the host's hardware concurrency, and — when the bench knows them — the
/// lane-block width, worker-thread count, kernel variant and evaluation
/// backend the numbers were actually taken with. env_-prefixed keys keep
/// reports diffable across PRs without colliding with bench series.
inline void env_block(JsonReport& r, unsigned words = 0, unsigned threads = 0,
                      const std::string& kernel = "", const std::string& backend = "") {
#if defined(__clang__)
    r.set("env_compiler", std::string("clang " __clang_version__));
#elif defined(__GNUC__)
    r.set("env_compiler", std::string("gcc " __VERSION__));
#else
    r.set("env_compiler", std::string("unknown"));
#endif
#if defined(GAIP_BENCH_CXX_FLAGS)
    r.set("env_cxx_flags", std::string(GAIP_BENCH_CXX_FLAGS));
#endif
    r.set("env_hw_concurrency",
          static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
    if (words != 0) r.set("env_words", static_cast<std::uint64_t>(words));
    if (threads != 0) r.set("env_threads", static_cast<std::uint64_t>(threads));
    if (!kernel.empty()) r.set("env_kernel", kernel);
    if (!backend.empty()) r.set("env_backend", backend);
}

/// Percentage deviation from a paper value, rendered as e.g. "-0.6%".
inline std::string vs_paper(double measured, double paper) {
    if (paper == 0.0) return "n/a";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.2f%%", 100.0 * (measured - paper) / paper);
    return buf;
}

/// Crude terminal chart of one or two per-generation series (best / avg),
/// standing in for the paper's figures.
inline void ascii_chart(const std::vector<double>& best, const std::vector<double>& avg,
                        const std::string& ylabel, int height = 12) {
    if (best.empty()) return;
    double lo = best[0], hi = best[0];
    for (double v : best) { lo = std::min(lo, v); hi = std::max(hi, v); }
    for (double v : avg) { lo = std::min(lo, v); hi = std::max(hi, v); }
    if (hi == lo) hi = lo + 1;
    const std::size_t width = best.size();
    std::vector<std::string> rows(height, std::string(width, ' '));
    auto plot = [&](const std::vector<double>& series, char mark) {
        for (std::size_t x = 0; x < series.size() && x < width; ++x) {
            const int y = static_cast<int>((series[x] - lo) / (hi - lo) * (height - 1) + 0.5);
            char& cell = rows[height - 1 - y][x];
            cell = (cell == ' ' || cell == mark) ? mark : '#';
        }
    };
    plot(avg, '.');
    plot(best, '*');
    std::printf("  %s  [%.0f .. %.0f]   * best   . avg   # both\n", ylabel.c_str(), lo, hi);
    for (const std::string& r : rows) std::printf("  |%s\n", r.c_str());
    std::printf("  +%s> generation\n", std::string(width, '-').c_str());
}

/// Best/avg series extraction from a run history.
inline void history_series(const std::vector<core::GenerationStats>& hist,
                           std::vector<double>& best, std::vector<double>& avg) {
    best.clear();
    avg.clear();
    for (const auto& s : hist) {
        best.push_back(s.best_fit);
        avg.push_back(s.population.empty()
                          ? static_cast<double>(s.fit_sum)
                          : static_cast<double>(s.fit_sum) / s.population.size());
    }
}

/// Run the full RTL system for one experiment configuration.
inline core::RunResult run_hw(const fitness::FitnessId fn, const core::GaParameters& params,
                              bool keep_populations = true,
                              prng::RngKind kind = prng::RngKind::kCellularAutomaton) {
    system::GaSystemConfig cfg;
    cfg.params = params;
    cfg.internal_fems = {fn};
    cfg.rng_kind = kind;
    cfg.keep_populations = keep_populations;
    return system::run_ga_system(cfg);
}

}  // namespace gaip::bench
