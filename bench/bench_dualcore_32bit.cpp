// Fig. 6 reproduction: the 32-bit GA engine composed from two 16-bit cores,
// exercised on 32-bit workloads, with the probability-composition equations
// of Sec. III-D.1 demonstrated numerically.
#include "bench/common.hpp"
#include "core/dual_core.hpp"
#include "fitness/functions.hpp"

int main() {
    using namespace gaip;
    bench::banner("Fig. 6 — 32-bit GA from two 16-bit cores",
                  "Sec. III-D.1: lockstep dual-core scaling with scalingLogic_parSel");

    // Probability composition (the paper's equations).
    util::TextTable ptab({"per-half threshold", "per-half rate", "composed 32-bit rate"});
    for (const std::uint8_t t : {4, 7, 10, 12}) {
        const double p = t / 16.0;
        ptab.add(static_cast<unsigned>(t), p, core::compose_probability(p, p));
    }
    ptab.print();

    util::TextTable table({"Workload", "Pop", "Gens", "Best (hex)", "Best fitness", "Optimum",
                           "GA cycles"});

    // 32-bit OneMax.
    {
        core::DualGaConfig cfg;
        cfg.pop_size = 64;
        cfg.n_gens = 96;
        cfg.fitness = [](std::uint32_t x) { return fitness::onemax32(x); };
        core::DualGaSystem sys(cfg);
        const core::DualRunResult r = sys.run();
        char hex[16];
        std::snprintf(hex, sizeof(hex), "%08X", r.best_candidate);
        table.add("OneMax32", 64, 96, hex, r.best_fitness, 32u * 2047u,
                  static_cast<unsigned long long>(r.ga_cycles));
    }

    // 32-bit sphere (distance to a hidden target): needs coordinated MSB
    // and LSB evolution, the workload the parent-selection sync exists for.
    {
        const std::uint32_t target = 0x5A5AC3C3;
        core::DualGaConfig cfg;
        cfg.pop_size = 64;
        cfg.n_gens = 96;
        cfg.fitness = [=](std::uint32_t x) { return fitness::sphere32(x, target); };
        core::DualGaSystem sys(cfg);
        const core::DualRunResult r = sys.run();
        char hex[16];
        std::snprintf(hex, sizeof(hex), "%08X", r.best_candidate);
        table.add("Sphere32 (target 5A5AC3C3)", 64, 96, hex, r.best_fitness, 65535u,
                  static_cast<unsigned long long>(r.ga_cycles));
    }

    table.print();
    table.write_csv(bench::out_path("dualcore.csv"));

    std::cout << "\nThe dual-core tests (tests/system/test_dual_core.cpp) additionally verify\n"
                 "lockstep execution, elite coherence, and that every stored 48-bit memory\n"
                 "word holds a consistently evaluated {MSB, LSB, fitness} triple.\n";
    std::cout << "CSV: " << bench::out_path("dualcore.csv") << "\n";
    return 0;
}
