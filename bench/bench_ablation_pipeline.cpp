// Ablation: serial programmable core vs pipelined fixed-function engine
// (the Sec. II-B acceleration literature's trade). Equal evaluation budget;
// the serial side's cycle counts are MEASURED from the RTL model, the
// pipelined side's from the stall-free pipe formula.
#include "baselines/pipelined.hpp"
#include "bench/common.hpp"
#include "fitness/functions.hpp"

int main() {
    using namespace gaip;
    bench::banner("Ablation — serial programmable core vs pipelined engine",
                  "Sec. II-B [7,8,11-13]: throughput vs flexibility/template trade");

    const core::GaParameters params{.pop_size = 32, .n_gens = 32, .xover_threshold = 10,
                                    .mut_threshold = 1, .seed = 0};

    util::TextTable table({"Function", "serial best (mean)", "pipelined best (mean)",
                           "serial cycles", "pipelined cycles", "throughput gap"});

    for (const auto fn : {fitness::FitnessId::kMBf6_2, fitness::FitnessId::kMShubert2D,
                          fitness::FitnessId::kOneMax}) {
        double serial_best = 0;
        double pipe_best = 0;
        std::uint64_t serial_cycles = 0;
        std::uint64_t pipe_cycles = 0;
        for (const std::uint16_t seed : bench::kPaperSeeds) {
            core::GaParameters p = params;
            p.seed = seed;

            system::GaSystemConfig cfg;
            cfg.params = p;
            cfg.internal_fems = {fn};
            cfg.keep_populations = false;
            system::GaSystem sys(cfg);
            const core::RunResult serial = sys.run();
            serial_best += serial.best_fitness;
            serial_cycles += sys.ga_cycles();

            const baselines::PipelinedRunResult pipe = baselines::run_pipelined_ga(
                p, [&](std::uint16_t x) { return fitness::fitness_u16(fn, x); });
            pipe_best += pipe.result.best_fitness;
            pipe_cycles += pipe.cycles;
        }
        const double n = static_cast<double>(bench::kPaperSeeds.size());
        table.add(fitness::fitness_name(fn), serial_best / n, pipe_best / n,
                  static_cast<unsigned long long>(serial_cycles / 6),
                  static_cast<unsigned long long>(pipe_cycles / 6),
                  static_cast<double>(serial_cycles) / static_cast<double>(pipe_cycles));
    }

    table.print();
    table.write_csv(bench::out_path("ablation_pipeline.csv"));
    std::cout << "\nReading: the pipeline sustains ~1 evaluation/cycle (a ~40x throughput\n"
                 "advantage over the serial FSM at the same 50 MHz) but locks in a fixed\n"
                 "fitness pipe, tournament selection, and steady-state replacement. The\n"
                 "paper's core trades that throughput for run-time programmability and\n"
                 "multi-FEM support — the positioning argument of its Sec. II-B, with\n"
                 "numbers attached.\n";
    return 0;
}
