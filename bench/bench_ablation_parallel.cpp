// Ablation: parallel configurations (Sec. II-B's acceleration direction).
// Compares, at EQUAL total evaluation budget:
//   * one big population (the plain core),
//   * K seed-parallel engines, best-of (the RTL ParallelGaSystem — also
//     reports the wall-clock advantage: K engines run concurrently),
//   * K islands with ring migration (behavioral).
#include <chrono>
#include <thread>

#include "bench/common.hpp"
#include "fitness/functions.hpp"
#include "system/parallel.hpp"

namespace {

/// Host wall-clock of a ParallelGaSystem::run with a given worker pool
/// size; the results must be (and are, see test_parallel) bit-identical,
/// so only the timing changes.
double timed_run_ms(gaip::system::ParallelGaConfig cfg, unsigned threads,
                    gaip::system::ParallelRunResult& out) {
    cfg.threads = threads;
    gaip::system::ParallelGaSystem sys(cfg);
    const auto t0 = std::chrono::steady_clock::now();
    out = sys.run();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
    using namespace gaip;
    bench::banner("Ablation — parallel GA configurations",
                  "single population vs seed-parallel engines vs islands with migration");

    const auto fns = {fitness::FitnessId::kMBf6_2, fitness::FitnessId::kMShubert2D,
                      fitness::FitnessId::kBf6};

    for (const auto fn : fns) {
        std::printf("\n%s (total budget ~4096 evaluations):\n",
                    fitness::fitness_name(fn).c_str());
        util::TextTable table({"Configuration", "Best fitness", "Evaluations",
                               "HW cycles (wall)", "Note"});

        // Single population: pop 64 x 64 gens.
        {
            system::GaSystemConfig cfg;
            cfg.params = {.pop_size = 64, .n_gens = 64, .xover_threshold = 10,
                          .mut_threshold = 1, .seed = 0x2961};
            cfg.internal_fems = {fn};
            cfg.keep_populations = false;
            system::GaSystem sys(cfg);
            const core::RunResult r = sys.run();
            table.add("1 engine, pop 64, 64 gens", r.best_fitness,
                      static_cast<unsigned long long>(r.evaluations),
                      static_cast<unsigned long long>(sys.ga_cycles()), "baseline");
        }

        // Four parallel engines: pop 32 x 32 gens each (same total evals),
        // each with its own seed; they run CONCURRENTLY so the wall-clock
        // cycle count is roughly a quarter of the sequential equivalent.
        {
            system::ParallelGaConfig cfg;
            cfg.params = {.pop_size = 32, .n_gens = 32, .xover_threshold = 10,
                          .mut_threshold = 1, .seed = 0};
            cfg.seeds = {0x2961, 0x061F, 0xB342, 0xAAAA};
            cfg.fitness = fn;
            system::ParallelGaSystem par(cfg);
            const system::ParallelRunResult r = par.run();
            std::uint64_t evals = 0;
            for (const auto& e : r.per_engine) evals += e.evaluations;
            table.add("4 engines, pop 32, 32 gens, best-of", r.best_fitness,
                      static_cast<unsigned long long>(evals),
                      static_cast<unsigned long long>(r.ga_cycles),
                      "engine " + std::to_string(r.best_engine) + " won");
        }

        // Four islands with migration (behavioral; a second BRAM port in HW).
        {
            system::IslandGaConfig cfg;
            cfg.params = {.pop_size = 32, .n_gens = 32, .xover_threshold = 10,
                          .mut_threshold = 1, .seed = 0};
            cfg.islands = 4;
            cfg.migration_interval = 8;
            const system::IslandRunResult r = system::run_island_ga(
                cfg, [&](std::uint16_t x) { return fitness::fitness_u16(fn, x); });
            table.add("4 islands, ring migration every 8 gens", r.best_fitness,
                      static_cast<unsigned long long>(r.evaluations), 0ull,
                      "behavioral model");
        }

        table.print();
        table.write_csv(bench::out_path(std::string("ablation_parallel_") +
                                        fitness::fitness_name(fn) + ".csv"));
    }

    // Host-side threading ablation: the same 4-engine array simulated by a
    // 1-thread pool vs a 4-thread pool. Each engine owns its kernel, so
    // this is embarrassingly parallel; on a multi-core host the speedup
    // approaches the engine count.
    {
        std::printf("\nHost simulation threading (4 engines, pop 32 x 32 gens, mBF6_2):\n");
        util::TextTable table({"Worker threads", "Wall ms", "Speedup", "Best fitness",
                               "Identical results"});
        system::ParallelGaConfig cfg;
        cfg.params = {.pop_size = 32, .n_gens = 32, .xover_threshold = 10,
                      .mut_threshold = 1, .seed = 0};
        cfg.seeds = {0x2961, 0x061F, 0xB342, 0xAAAA};
        cfg.fitness = fitness::FitnessId::kMBf6_2;

        system::ParallelRunResult seq, pooled;
        const double ms1 = timed_run_ms(cfg, 1, seq);
        const double ms4 = timed_run_ms(cfg, 4, pooled);
        const bool identical = seq.best_candidate == pooled.best_candidate &&
                               seq.best_fitness == pooled.best_fitness &&
                               seq.best_engine == pooled.best_engine &&
                               seq.ga_cycles == pooled.ga_cycles;
        char speedup[32];
        std::snprintf(speedup, sizeof speedup, "%.2fx", ms1 / ms4);
        table.add("1 (sequential)", static_cast<unsigned long long>(ms1), "1.00x",
                  seq.best_fitness, "-");
        table.add("4 (pool)", static_cast<unsigned long long>(ms4), speedup,
                  pooled.best_fitness, identical ? "yes" : "NO (BUG)");
        table.print();
        table.write_csv(bench::out_path("ablation_parallel_threads.csv"));
        std::printf("(speedup is bounded by the host's core count: "
                    "hardware_concurrency=%u)\n",
                    std::thread::hardware_concurrency());
    }

    std::cout << "\nReadings: at equal budget, seed-parallel engines match or beat the single\n"
                 "large population on multimodal landscapes while finishing in ~1/4 of the\n"
                 "wall-clock cycles (concurrent hardware) — the cheapest use of the core's\n"
                 "programmable seed. Migration narrows inter-island spread further.\n";
    return 0;
}
