// Ablation: the design choices DESIGN.md calls out — elitism, crossover
// rate, mutation rate, and population sizing — quantified on the behavioral
// model (bit-exact with the RTL, so conclusions transfer). This is the
// experimental backing for the paper's programmability argument: no single
// setting dominates across functions.
#include "bench/common.hpp"
#include "fitness/functions.hpp"

namespace {

using gaip::core::GaParameters;
using gaip::fitness::FitnessId;

double mean_best(FitnessId fn, const GaParameters& base, bool elitism) {
    double sum = 0.0;
    for (const std::uint16_t seed : gaip::bench::kPaperSeeds) {
        GaParameters p = base;
        p.seed = seed;
        const auto r = gaip::core::run_behavioral_ga(
            p, [&](std::uint16_t x) { return gaip::fitness::fitness_u16(fn, x); },
            gaip::prng::RngKind::kCellularAutomaton, /*keep_populations=*/false, elitism);
        sum += r.best_fitness;
    }
    return sum / static_cast<double>(gaip::bench::kPaperSeeds.size());
}

}  // namespace

int main() {
    using namespace gaip;
    bench::banner("Ablation — GA parameter design choices",
                  "elitism / crossover threshold / mutation threshold / population size");

    const GaParameters base{.pop_size = 32, .n_gens = 32, .xover_threshold = 10,
                            .mut_threshold = 1, .seed = 0};
    const auto fns = {FitnessId::kMBf6_2, FitnessId::kMShubert2D, FitnessId::kRoyalRoad};

    // 1. Elitism on/off (the core is always elitist; this shows why).
    {
        util::TextTable t({"Function", "mean best WITH elitism", "mean best WITHOUT", "delta"});
        for (const auto fn : fns) {
            const double with = mean_best(fn, base, true);
            const double without = mean_best(fn, base, false);
            t.add(fitness::fitness_name(fn), with, without, with - without);
        }
        t.print();
        t.write_csv(bench::out_path("ablation_elitism.csv"));
    }

    // 2. Crossover threshold sweep.
    {
        std::printf("\nCrossover-threshold sweep (mean best over 6 seeds):\n");
        util::TextTable t({"Function", "XR=0", "XR=4", "XR=8", "XR=10", "XR=12", "XR=15"});
        for (const auto fn : fns) {
            std::vector<std::string> row{fitness::fitness_name(fn)};
            for (const std::uint8_t xr : {0, 4, 8, 10, 12, 15}) {
                GaParameters p = base;
                p.xover_threshold = xr;
                row.push_back(util::TextTable::to_cell(mean_best(fn, p, true)));
            }
            t.add_row(std::move(row));
        }
        t.print();
        t.write_csv(bench::out_path("ablation_xover.csv"));
    }

    // 3. Mutation threshold sweep.
    {
        std::printf("\nMutation-threshold sweep (mean best over 6 seeds):\n");
        util::TextTable t({"Function", "MT=0", "MT=1", "MT=2", "MT=4", "MT=8", "MT=15"});
        for (const auto fn : fns) {
            std::vector<std::string> row{fitness::fitness_name(fn)};
            for (const std::uint8_t mt : {0, 1, 2, 4, 8, 15}) {
                GaParameters p = base;
                p.mut_threshold = mt;
                row.push_back(util::TextTable::to_cell(mean_best(fn, p, true)));
            }
            t.add_row(std::move(row));
        }
        t.print();
        t.write_csv(bench::out_path("ablation_mutation.csv"));
    }

    // 4. Population size at a fixed evaluation budget (pop x gens ~ 2048):
    // the real hardware trade (bigger pop = longer selection scans too).
    {
        std::printf("\nPopulation size at fixed evaluation budget (~2048 evals):\n");
        util::TextTable t({"Function", "P=8/G=256", "P=16/G=128", "P=32/G=64", "P=64/G=32",
                           "P=128/G=16"});
        for (const auto fn : fns) {
            std::vector<std::string> row{fitness::fitness_name(fn)};
            for (const auto& [pop, gens] : {std::pair<int, int>{8, 256}, {16, 128}, {32, 64},
                                           {64, 32}, {128, 16}}) {
                GaParameters p = base;
                p.pop_size = static_cast<std::uint8_t>(pop);
                p.n_gens = static_cast<std::uint32_t>(gens);
                row.push_back(util::TextTable::to_cell(mean_best(fn, p, true)));
            }
            t.add_row(std::move(row));
        }
        t.print();
        t.write_csv(bench::out_path("ablation_population.csv"));
    }

    std::cout << "\nReadings: elitism is uniformly positive (Rudolph's convergence argument);\n"
                 "the best crossover/mutation thresholds differ BY FUNCTION — the empirical\n"
                 "core of the paper's case for run-time-programmable parameters.\n";
    return 0;
}
