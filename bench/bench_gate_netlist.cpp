// Gate-level netlist deliverable: synthesize the GA core's leaf blocks to
// two-input gates + scan registers, print the gate census (the information
// the paper's flattening flow fed into Xilinx ISE), emit the structural
// Verilog file — the "soft core: a gate-level netlist is provided" claim —
// and measure gate-simulation throughput: scalar GateNetlist::eval vs the
// compiled bit-parallel CompiledNetlist at every lane-block width
// (64/128/256/512 lanes per pass).
#include <chrono>
#include <fstream>

#include "bench/common.hpp"
#include "gates/blocks.hpp"
#include "gates/compiled.hpp"
#include "gates/compiled_kernels.hpp"
#include "gates/ga_core_gates.hpp"
#include "gates/asic_flow.hpp"
#include "gates/jit.hpp"
#include "gates/optimize.hpp"
#include "gates/rng_gates.hpp"

namespace {

/// Cheap deterministic stimulus for the throughput loops.
struct Lcg {
    std::uint64_t s = 0x2961;
    std::uint64_t next() { return s = s * 6364136223846793005ull + 1442695040888963407ull; }
};

/// Wall-clock seconds of `cycles` eval+clock iterations of the scalar
/// netlist under random primary inputs.
double time_scalar(gaip::gates::GateNetlist& nl, const std::vector<gaip::gates::Net>& ins,
                   unsigned cycles) {
    Lcg rnd;
    const auto t0 = std::chrono::steady_clock::now();
    for (unsigned c = 0; c < cycles; ++c) {
        std::uint64_t bits = rnd.next();
        for (std::size_t i = 0; i < ins.size(); ++i) {
            if (i % 64 == 0) bits = rnd.next();
            nl.set_input(ins[i], (bits >> (i % 64)) & 1u);
        }
        nl.eval();
        nl.clock();
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Same loop over the compiled engine, driving inputs through the
/// validated-once SlotHandle hot path — the way BatchGateRunner and
/// FaultCampaign drive it — so the measured ratio reflects engine
/// throughput, not per-call input re-validation.
double time_compiled(gaip::gates::CompiledNetlist& cs,
                     const std::vector<gaip::gates::Net>& ins, unsigned cycles) {
    Lcg rnd;
    const unsigned words = cs.words();
    std::vector<gaip::gates::CompiledNetlist::SlotHandle> handles;
    handles.reserve(ins.size());
    for (const gaip::gates::Net in : ins) handles.push_back(cs.input_handle(in));
    std::vector<std::uint64_t> w(words);
    const auto t0 = std::chrono::steady_clock::now();
    for (unsigned c = 0; c < cycles; ++c) {
        for (const auto h : handles) {
            for (unsigned i = 0; i < words; ++i) w[i] = rnd.next();
            cs.write_words(h, w.data());
        }
        cs.eval();
        cs.clock();
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
    using namespace gaip;
    bench::banner("Gate-level netlist (NAND/NOR/AND/OR/XOR + SCAN_REGISTER)",
                  "Sec. III-A design flow: flattened gate-level deliverable of the leaf blocks");

    struct Entry {
        const char* name;
        gates::GateStats stats;
        std::string verilog_path;
    };
    std::vector<Entry> entries;

    {
        gates::GateNetlist nl;
        const auto blk = gates::build_ca_prng(nl);
        for (std::size_t i = 0; i < blk.state.size(); ++i)
            nl.output("rn" + std::to_string(i), blk.state[i]);
        const std::string path = bench::out_path("netlist_ca_prng.v");
        std::ofstream(path) << nl.to_verilog("ca_prng_16");
        entries.push_back({"CA PRNG (rule 90/150, load mux)", nl.stats(), path});
    }
    {
        gates::GateNetlist nl;
        const auto blk = gates::build_crossover_unit(nl);
        for (std::size_t i = 0; i < blk.off1.size(); ++i) {
            nl.output("off1_" + std::to_string(i), blk.off1[i]);
            nl.output("off2_" + std::to_string(i), blk.off2[i]);
        }
        const std::string path = bench::out_path("netlist_crossover.v");
        std::ofstream(path) << nl.to_verilog("crossover_unit");
        entries.push_back({"crossover unit (mask gen + merge)", nl.stats(), path});
    }
    {
        gates::GateNetlist nl;
        const auto blk = gates::build_mutation_unit(nl);
        for (std::size_t i = 0; i < blk.out.size(); ++i)
            nl.output("out" + std::to_string(i), blk.out[i]);
        const std::string path = bench::out_path("netlist_mutation.v");
        std::ofstream(path) << nl.to_verilog("mutation_unit");
        entries.push_back({"mutation unit (decoder + flip)", nl.stats(), path});
    }
    {
        gates::GateNetlist nl;
        const auto dp = gates::build_operator_datapath(nl);
        for (std::size_t i = 0; i < dp.off1.size(); ++i) {
            nl.output("off1_" + std::to_string(i), dp.off1[i]);
            nl.output("off2_" + std::to_string(i), dp.off2[i]);
        }
        const std::string path = bench::out_path("netlist_operator_datapath.v");
        std::ofstream(path) << nl.to_verilog("ga_operator_datapath");
        entries.push_back({"full operator datapath (xover + 2x mutation)", nl.stats(), path});
    }

    {
        const auto g = gates::build_rng_netlist();
        const std::string path = bench::out_path("netlist_rng_module.v");
        std::ofstream(path) << g->nl.to_verilog("rng_module");
        entries.push_back({"RNG module (CA + seed/preset wrapper)", g->nl.stats(), path});
    }
    {
        // The headline deliverable: the COMPLETE GA core flattened to gates
        // (controller + datapath + scan chain), verified bit- and
        // cycle-exact against the RT-level core inside the full system
        // (tests/gates/test_ga_core_gates.cpp).
        const auto g = gates::build_ga_core_netlist();
        const std::string path = bench::out_path("netlist_ga_core_full.v");
        std::ofstream(path) << g->nl.to_verilog("ga_core");
        entries.push_back({"FULL GA CORE (controller + datapath)", g->nl.stats(), path});
    }

    util::TextTable table({"Block", "logic gates", "registers", "AND", "OR", "XOR", "NOT",
                           "Verilog"});
    for (const Entry& e : entries) {
        auto n = [&](gates::GateOp op) {
            return e.stats.per_op[static_cast<std::size_t>(op)];
        };
        table.add(e.name, e.stats.logic_gates, e.stats.registers, n(gates::GateOp::kAnd),
                  n(gates::GateOp::kOr), n(gates::GateOp::kXor), n(gates::GateOp::kNot),
                  e.verilog_path);
    }
    table.print();
    table.write_csv(bench::out_path("gate_netlist.csv"));

    // Logic optimization (the SIS step) + ASIC flow over the full core
    // (Fig. 1's tail / Sec. V's fabricated chip).
    {
        auto g = gates::build_ga_core_netlist();
        gates::OptimizeResult opt = gates::optimize(g->nl);
        std::printf("\nLogic optimization (SIS step): %u -> %u gates (%u folded, %u shared,"
                    " %u dead)\n",
                    opt.gates_before, opt.gates_after, opt.folded_constants,
                    opt.shared_subexpressions, opt.swept_dead);
        const std::string opath = bench::out_path("netlist_ga_core_optimized.v");
        std::ofstream(opath) << opt.netlist.to_verilog("ga_core_opt");
        std::printf("optimized Verilog: %s\n", opath.c_str());
        const gates::AsicReport ar = gates::analyze_asic(opt.netlist);
        std::cout << "\n" << gates::format_asic_report(ar);
        std::cout << "  note: the flat two-input mapping puts the 24x16 selection multiplier\n"
                     "  on the critical path (~32 MHz) — the FPGA build uses a MULT18X18 hard\n"
                     "  block instead, and an ASIC would use a carry-save multiplier or\n"
                     "  pipeline the threshold computation to reach the paper's 50 MHz.\n";
    }

    // Simulation throughput: the reason CompiledNetlist exists. Gate-evals/s
    // = logic gates x simulated cycles / wall time; lane-equivalent figures
    // multiply by the block's lane count (64 x words independent runs
    // advance per pass).
    {
        auto g = gates::build_ga_core_netlist();
        const double gates_n = g->nl.stats().logic_gates;
        std::vector<gates::Net> ins;
        for (gates::Net n = 0; n < g->nl.net_count(); ++n)
            if (g->nl.op_of(n) == gates::GateOp::kInput) ins.push_back(n);

        const unsigned scalar_cycles = 2'000;
        const unsigned compiled_cycles = 20'000;
        const double t_scalar = time_scalar(g->nl, ins, scalar_cycles);
        const double scalar_geps = gates_n * scalar_cycles / t_scalar;

        std::printf("\nGate-simulation throughput (full GA core, %.0f logic gates):\n",
                    gates_n);
        util::TextTable tt({"evaluator", "lanes", "cycles", "sec", "gate-evals/s", "vs scalar"});
        tt.add("scalar GateNetlist::eval", 1, scalar_cycles, t_scalar, scalar_geps, "1.0x");

        bench::JsonReport report;
        report.set("bench", std::string("bench_gate_netlist"))
            .set("logic_gates", static_cast<std::uint64_t>(gates_n))
            .set("scalar_gate_evals_per_sec", scalar_geps);
        // Width varies per series below (64..512 lanes), so env_words stays
        // unset; the kernel variant is width-independent on one host CPU.
        bench::env_block(report, /*words=*/0, /*threads=*/1,
                         gates::kernels::selected_name(1),
                         gates::jit::available() ? "interp+jit" : "interp");

        double compiled_geps = 0;  // W = 1 per-lane figure
        double lanes64_geps = 0;
        double best_geps = 0;
        unsigned best_lanes = 64;
        const bool jit_avail = gates::jit::available();
        gates::jit::reset_stats();
        for (const unsigned w : {1u, 2u, 4u, 8u}) {
            gates::CompiledNetlist cs(
                g->nl, gates::CompiledNetlist::Options{.words = w,
                                                       .backend = gates::Backend::kInterp});
            const double t = time_compiled(cs, ins, compiled_cycles);
            const unsigned lanes = cs.lane_count();
            const double lane_equiv = gates_n * compiled_cycles / t * lanes;
            char label[48], ratio[32];
            std::snprintf(label, sizeof(label), "interp %u-word (%u-lane equiv)", w, lanes);
            std::snprintf(ratio, sizeof(ratio), "%.1fx", lane_equiv / scalar_geps);
            tt.add(label, lanes, compiled_cycles, t, lane_equiv, ratio);
            report.set("compiled_" + std::to_string(lanes) + "lane_gate_evals_per_sec",
                       lane_equiv);
            if (w == 1) {
                compiled_geps = gates_n * compiled_cycles / t;
                lanes64_geps = lane_equiv;
                report.set("instructions", static_cast<std::uint64_t>(cs.instruction_count()))
                    .set("base_instructions",
                         static_cast<std::uint64_t>(cs.base_instruction_count()))
                    .set("cse_shared", static_cast<std::uint64_t>(cs.cse_shared()));
                std::printf("  instruction stream: %zu -> %zu instrs for %zu nets"
                            " (%zu const-folded, %zu aliases chased, %zu cse-shared)\n",
                            cs.base_instruction_count(), cs.instruction_count(), cs.net_count(),
                            cs.folded_constants(), cs.chased_aliases(), cs.cse_shared());
            }
            if (lane_equiv > best_geps) {
                best_geps = lane_equiv;
                best_lanes = lanes;
            }

            // Same width on the native-codegen backend: the identical
            // optimized instruction stream, lowered to specialized C++ and
            // compiled by the host toolchain (src/gates/jit.*). Skipped
            // gracefully when no host compiler is available.
            if (!jit_avail) continue;
            gates::CompiledNetlist cj(
                g->nl, gates::CompiledNetlist::Options{.words = w,
                                                       .backend = gates::Backend::kJit});
            if (!cj.jit_active()) continue;
            const double tj = time_compiled(cj, ins, compiled_cycles);
            const double jit_equiv = gates_n * compiled_cycles / tj * lanes;
            std::snprintf(label, sizeof(label), "jit %u-word (%u-lane equiv)", w, lanes);
            std::snprintf(ratio, sizeof(ratio), "%.1fx", jit_equiv / scalar_geps);
            tt.add(label, lanes, compiled_cycles, tj, jit_equiv, ratio);
            report.set("jit_" + std::to_string(lanes) + "lane_gate_evals_per_sec", jit_equiv)
                .set("speedup_jit_vs_interp_" + std::to_string(lanes) + "lane",
                     jit_equiv / lane_equiv);
            if (jit_equiv > best_geps) {
                best_geps = jit_equiv;
                best_lanes = lanes;
            }
        }
        tt.print();

        if (jit_avail) {
            const gates::jit::Stats js = gates::jit::stats();
            std::printf("  jit cache: %llu compile(s) (%.0f ms), %llu disk hit(s),"
                        " %llu in-process hit(s), %llu fallback(s)  [%s]\n",
                        static_cast<unsigned long long>(js.compiles), js.compile_ms_total,
                        static_cast<unsigned long long>(js.disk_hits),
                        static_cast<unsigned long long>(js.memory_hits),
                        static_cast<unsigned long long>(js.fallbacks),
                        gates::jit::cache_dir().c_str());
            report.set("jit_compiles", js.compiles)
                .set("jit_compile_ms_total", js.compile_ms_total)
                .set("jit_disk_hits", js.disk_hits)
                .set("jit_memory_hits", js.memory_hits)
                .set("jit_fallbacks", js.fallbacks);
        }

        // Port-pruned variant: what BatchGateRunner / FaultCampaign execute
        // (only the cone of the observable port surface survives).
        {
            gates::CompiledNetlist pruned(
                g->nl, gates::CompiledNetlist::Options{.words = 1,
                                                       .cse = true,
                                                       .prune = true,
                                                       .keep = g->observable_port_nets()});
            std::printf("  port-pruned stream (batch runners): %zu instrs"
                        " (%zu dead removed, %zu slots)\n",
                        pruned.instruction_count(), pruned.pruned_dead(), pruned.slot_count());
            report.set("pruned_instructions",
                       static_cast<std::uint64_t>(pruned.instruction_count()))
                .set("pruned_dead", static_cast<std::uint64_t>(pruned.pruned_dead()));
        }

        if (lanes64_geps < 10.0 * scalar_geps)
            std::printf("  WARNING: 64-lane speedup below the 10x acceptance bar!\n");

        report.set("compiled_lane_gate_evals_per_sec", compiled_geps)
            .set("speedup_compiled_vs_scalar", compiled_geps / scalar_geps)
            .set("speedup_64lane_vs_scalar", lanes64_geps / scalar_geps)
            .set("best_lane_equiv_gate_evals_per_sec", best_geps)
            .set("best_lane_equiv_lanes", static_cast<std::uint64_t>(best_lanes))
            .set("speedup_best_vs_scalar", best_geps / scalar_geps);
        report.write(bench::out_path("BENCH_gates.json"));
    }

    std::cout << "\nEvery block is verified bit-exact against the RT-level/behavioral\n"
                 "implementation (tests/gates/test_blocks.cpp): the CA PRNG over 2000 steps\n"
                 "and its full 65535 period, the crossover unit for every cut point, the\n"
                 "mutation unit for every bit position, and the combined datapath on 500\n"
                 "random vectors — the RT-vs-gate equivalence step of the paper's flow.\n";
    return 0;
}
