// Gate-level netlist deliverable: synthesize the GA core's leaf blocks to
// two-input gates + scan registers, print the gate census (the information
// the paper's flattening flow fed into Xilinx ISE), and emit the structural
// Verilog file — the "soft core: a gate-level netlist is provided" claim.
#include <fstream>

#include "bench/common.hpp"
#include "gates/blocks.hpp"
#include "gates/ga_core_gates.hpp"
#include "gates/asic_flow.hpp"
#include "gates/optimize.hpp"
#include "gates/rng_gates.hpp"

int main() {
    using namespace gaip;
    bench::banner("Gate-level netlist (NAND/NOR/AND/OR/XOR + SCAN_REGISTER)",
                  "Sec. III-A design flow: flattened gate-level deliverable of the leaf blocks");

    struct Entry {
        const char* name;
        gates::GateStats stats;
        std::string verilog_path;
    };
    std::vector<Entry> entries;

    {
        gates::GateNetlist nl;
        const auto blk = gates::build_ca_prng(nl);
        for (std::size_t i = 0; i < blk.state.size(); ++i)
            nl.output("rn" + std::to_string(i), blk.state[i]);
        const std::string path = bench::out_path("netlist_ca_prng.v");
        std::ofstream(path) << nl.to_verilog("ca_prng_16");
        entries.push_back({"CA PRNG (rule 90/150, load mux)", nl.stats(), path});
    }
    {
        gates::GateNetlist nl;
        const auto blk = gates::build_crossover_unit(nl);
        for (std::size_t i = 0; i < blk.off1.size(); ++i) {
            nl.output("off1_" + std::to_string(i), blk.off1[i]);
            nl.output("off2_" + std::to_string(i), blk.off2[i]);
        }
        const std::string path = bench::out_path("netlist_crossover.v");
        std::ofstream(path) << nl.to_verilog("crossover_unit");
        entries.push_back({"crossover unit (mask gen + merge)", nl.stats(), path});
    }
    {
        gates::GateNetlist nl;
        const auto blk = gates::build_mutation_unit(nl);
        for (std::size_t i = 0; i < blk.out.size(); ++i)
            nl.output("out" + std::to_string(i), blk.out[i]);
        const std::string path = bench::out_path("netlist_mutation.v");
        std::ofstream(path) << nl.to_verilog("mutation_unit");
        entries.push_back({"mutation unit (decoder + flip)", nl.stats(), path});
    }
    {
        gates::GateNetlist nl;
        const auto dp = gates::build_operator_datapath(nl);
        for (std::size_t i = 0; i < dp.off1.size(); ++i) {
            nl.output("off1_" + std::to_string(i), dp.off1[i]);
            nl.output("off2_" + std::to_string(i), dp.off2[i]);
        }
        const std::string path = bench::out_path("netlist_operator_datapath.v");
        std::ofstream(path) << nl.to_verilog("ga_operator_datapath");
        entries.push_back({"full operator datapath (xover + 2x mutation)", nl.stats(), path});
    }

    {
        const auto g = gates::build_rng_netlist();
        const std::string path = bench::out_path("netlist_rng_module.v");
        std::ofstream(path) << g->nl.to_verilog("rng_module");
        entries.push_back({"RNG module (CA + seed/preset wrapper)", g->nl.stats(), path});
    }
    {
        // The headline deliverable: the COMPLETE GA core flattened to gates
        // (controller + datapath + scan chain), verified bit- and
        // cycle-exact against the RT-level core inside the full system
        // (tests/gates/test_ga_core_gates.cpp).
        const auto g = gates::build_ga_core_netlist();
        const std::string path = bench::out_path("netlist_ga_core_full.v");
        std::ofstream(path) << g->nl.to_verilog("ga_core");
        entries.push_back({"FULL GA CORE (controller + datapath)", g->nl.stats(), path});
    }

    util::TextTable table({"Block", "logic gates", "registers", "AND", "OR", "XOR", "NOT",
                           "Verilog"});
    for (const Entry& e : entries) {
        auto n = [&](gates::GateOp op) {
            return e.stats.per_op[static_cast<std::size_t>(op)];
        };
        table.add(e.name, e.stats.logic_gates, e.stats.registers, n(gates::GateOp::kAnd),
                  n(gates::GateOp::kOr), n(gates::GateOp::kXor), n(gates::GateOp::kNot),
                  e.verilog_path);
    }
    table.print();
    table.write_csv(bench::out_path("gate_netlist.csv"));

    // Logic optimization (the SIS step) + ASIC flow over the full core
    // (Fig. 1's tail / Sec. V's fabricated chip).
    {
        auto g = gates::build_ga_core_netlist();
        gates::OptimizeResult opt = gates::optimize(g->nl);
        std::printf("\nLogic optimization (SIS step): %u -> %u gates (%u folded, %u shared,"
                    " %u dead)\n",
                    opt.gates_before, opt.gates_after, opt.folded_constants,
                    opt.shared_subexpressions, opt.swept_dead);
        const std::string opath = bench::out_path("netlist_ga_core_optimized.v");
        std::ofstream(opath) << opt.netlist.to_verilog("ga_core_opt");
        std::printf("optimized Verilog: %s\n", opath.c_str());
        const gates::AsicReport ar = gates::analyze_asic(opt.netlist);
        std::cout << "\n" << gates::format_asic_report(ar);
        std::cout << "  note: the flat two-input mapping puts the 24x16 selection multiplier\n"
                     "  on the critical path (~32 MHz) — the FPGA build uses a MULT18X18 hard\n"
                     "  block instead, and an ASIC would use a carry-save multiplier or\n"
                     "  pipeline the threshold computation to reach the paper's 50 MHz.\n";
    }

    std::cout << "\nEvery block is verified bit-exact against the RT-level/behavioral\n"
                 "implementation (tests/gates/test_blocks.cpp): the CA PRNG over 2000 steps\n"
                 "and its full 65535 period, the crossover unit for every cut point, the\n"
                 "mutation unit for every bit position, and the combined datapath on 500\n"
                 "random vectors — the RT-vs-gate equivalence step of the paper's flow.\n";
    return 0;
}
