// Mission-supervisor recovery bench: drives a stratified SEU sample (every
// scan-chain register, several bits, several cycle points) through the
// supervised run loop and measures (a) the recovered-run rate — how many
// watchdog-tripping upsets the retry/restart/fallback ladder converts into
// a correct delivered result — and (b) the wall-clock overhead supervision
// adds to clean (fault-free) runs. Results land in
// bench_out/BENCH_supervisor.json for CI trend tracking.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "fault/seu_injector.hpp"
#include "rtl/scan.hpp"
#include "supervisor/supervisor.hpp"
#include "system/ga_system.hpp"

namespace {

using namespace gaip;

core::GaParameters bench_params() {
    return {.pop_size = 8, .n_gens = 8, .xover_threshold = 12, .mut_threshold = 1,
            .seed = 0x2961};
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
    bench::banner("Mission-supervisor recovery",
                  "Sec. III-C fault tolerance: watchdog + retry ladder + Table IV fallback");

    fault::InjectorConfig icfg;
    icfg.fn = fitness::FitnessId::kMBf6_2;
    icfg.params = bench_params();
    const fault::SeuInjector inj(icfg);
    const fault::GoldenRun& golden = inj.golden();
    std::printf("golden: best=%u cand=%u cycles=%llu\n", golden.best_fitness,
                golden.best_candidate, static_cast<unsigned long long>(golden.ga_cycles));

    // --- stratified site sample ------------------------------------------
    std::vector<fault::FaultSite> sample;
    for (const auto& [reg, width] : inj.layout()) {
        std::vector<unsigned> bits = {0u};
        if (width / 2 != 0) bits.push_back(width / 2);
        if (width - 1 != 0 && width - 1 != width / 2) bits.push_back(width - 1);
        for (const unsigned bit : bits)
            for (const std::uint64_t cyc :
                 {std::uint64_t{10}, golden.ga_cycles * 4 / 10, golden.ga_cycles * 7 / 10})
                sample.push_back({reg, bit, cyc});
    }

    std::uint64_t disruptive = 0, converted_ok = 0, converted_degraded = 0, aborted = 0;
    std::uint64_t supervised_cycles = 0, supervised_attempts = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const fault::FaultSite& site : sample) {
        const fault::FaultRecord probe = inj.run_rtl(site, fault::InjectBackend::kPoke);
        if (probe.outcome != fault::FaultOutcome::kRecovered &&
            probe.outcome != fault::FaultOutcome::kHang)
            continue;
        ++disruptive;

        supervisor::SupervisorConfig cfg;
        cfg.fn = icfg.fn;
        cfg.params = bench_params();
        cfg.expected_cycles = golden.ga_cycles;
        cfg.ladder.max_retries = 1;
        cfg.ladder.checkpoint_every = 2;
        cfg.ladder.fallback_preset = 1;
        bool fired = false;
        cfg.hook = [&fired, site](system::GaSystem& sys, const supervisor::AttemptInfo& info,
                                  std::uint64_t cycle) {
            if (fired || info.in_init || info.attempt != 0) return;
            if (cycle >= site.cycle && fault::scan_safe_state(sys.core().state())) {
                rtl::ScanChain& chain = sys.core().scan_chain();
                chain.flip(chain.position_of(site.reg, site.bit));
                sys.core().input_changed();
                fired = true;
            }
        };
        const supervisor::SupervisorReport rep = supervisor::MissionSupervisor(cfg).run();
        supervised_cycles += rep.total_cycles;
        supervised_attempts += rep.attempts.size();
        const bool exact = rep.best_fitness == golden.best_fitness &&
                           rep.best_candidate == golden.best_candidate;
        switch (rep.status) {
            case supervisor::Status::kOk: converted_ok += exact ? 1 : 0; break;
            case supervisor::Status::kOkDegraded: ++converted_degraded; break;
            case supervisor::Status::kAborted: ++aborted; break;
        }
    }
    const double sweep_s = seconds_since(t0);
    const double recovered_rate =
        disruptive == 0 ? 1.0
                        : static_cast<double>(converted_ok + converted_degraded) /
                              static_cast<double>(disruptive);
    std::printf(
        "sample=%zu disruptive=%llu -> ok=%llu degraded=%llu aborted=%llu "
        "(recovered rate %.3f) in %.2fs\n",
        sample.size(), static_cast<unsigned long long>(disruptive),
        static_cast<unsigned long long>(converted_ok),
        static_cast<unsigned long long>(converted_degraded),
        static_cast<unsigned long long>(aborted), recovered_rate, sweep_s);

    // --- clean-run supervision overhead ----------------------------------
    constexpr unsigned kCleanRuns = 20;
    const auto tb = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < kCleanRuns; ++i) {
        system::GaSystemConfig scfg;
        scfg.params = bench_params();
        scfg.internal_fems = {icfg.fn};
        scfg.keep_populations = false;
        system::GaSystem sys(scfg);
        (void)sys.run();
    }
    const double bare_s = seconds_since(tb);
    const auto ts = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < kCleanRuns; ++i) {
        supervisor::SupervisorConfig cfg;
        cfg.fn = icfg.fn;
        cfg.params = bench_params();
        cfg.expected_cycles = golden.ga_cycles;
        (void)supervisor::MissionSupervisor(cfg).run();
    }
    const double sup_s = seconds_since(ts);
    const double overhead = bare_s == 0.0 ? 0.0 : (sup_s - bare_s) / bare_s;
    std::printf("clean runs x%u: bare %.3fs, supervised %.3fs (overhead %+.1f%%)\n",
                kCleanRuns, bare_s, sup_s, overhead * 100.0);

    bench::JsonReport report;
    report.set("bench", std::string("supervisor_recovery"))
        .set("fitness", std::string("mBF6_2"))
        .set("pop_size", std::uint64_t(bench_params().pop_size))
        .set("n_gens", std::uint64_t(bench_params().n_gens))
        .set("golden_ga_cycles", golden.ga_cycles)
        .set("sites_sampled", std::uint64_t(sample.size()))
        .set("disruptive", disruptive)
        .set("converted_ok", converted_ok)
        .set("converted_degraded", converted_degraded)
        .set("aborted", aborted)
        .set("recovered_rate", recovered_rate)
        .set("supervised_cycles", supervised_cycles)
        .set("supervised_attempts", supervised_attempts)
        .set("sweep_wall_seconds", sweep_s)
        .set("clean_runs", std::uint64_t(kCleanRuns))
        .set("bare_wall_seconds", bare_s)
        .set("supervised_wall_seconds", sup_s)
        .set("clean_overhead_fraction", overhead);
    bench::env_block(report);
    report.write(bench::out_path("BENCH_supervisor.json"));

    // Recovery is the contract: every disruptive upset must end recovered
    // or as a structured abort (counted above) — a silent wrong answer
    // escaping the ladder fails the bench.
    if (converted_ok + converted_degraded + aborted != disruptive) {
        std::printf("\nFAIL: %llu disruptive faults left unaccounted\n",
                    static_cast<unsigned long long>(disruptive - converted_ok -
                                                    converted_degraded - aborted));
        return 1;
    }
    return 0;
}
