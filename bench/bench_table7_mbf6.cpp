// Table VII reproduction: best fitness the GA reaches on mBF6_2 across the
// 24 hardware parameter settings. Paper headline: best 8135 (0.59% below
// the global optimum 8183, 0.27% away in the solution space).
#include "bench/bench_tables7_9_common.hpp"

int main() {
    using namespace gaip;
    const bench::PaperGrid paper = {
        // seed          P32/10 P32/12 P64/10 P64/12
        {0x2961, {7999, 7813, 7824, 7819}},
        {0x061F, {6175, 7578, 8134, 8129}},
        {0xB342, {7612, 7497, 7612, 7719}},
        {0xAAAA, {7534, 7534, 7578, 7864}},
        {0xA0A0, {8104, 7406, 8135, 8039}},
        {0xFFFF, {7291, 7623, 7847, 7669}},
    };
    bench::run_table("Table VII — best fitness, mBF6_2", "table7_mbf6.csv",
                     fitness::FitnessId::kMBf6_2, paper,
                     fitness::grid_optimum(fitness::FitnessId::kMBf6_2).best_value);
    return 0;
}
