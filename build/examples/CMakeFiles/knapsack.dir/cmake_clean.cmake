file(REMOVE_RECURSE
  "CMakeFiles/knapsack.dir/knapsack.cpp.o"
  "CMakeFiles/knapsack.dir/knapsack.cpp.o.d"
  "knapsack"
  "knapsack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knapsack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
