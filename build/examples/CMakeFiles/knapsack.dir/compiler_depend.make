# Empty compiler generated dependencies file for knapsack.
# This may be replaced when dependencies are built.
