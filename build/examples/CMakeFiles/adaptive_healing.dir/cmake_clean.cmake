file(REMOVE_RECURSE
  "CMakeFiles/adaptive_healing.dir/adaptive_healing.cpp.o"
  "CMakeFiles/adaptive_healing.dir/adaptive_healing.cpp.o.d"
  "adaptive_healing"
  "adaptive_healing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_healing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
