# Empty dependencies file for adaptive_healing.
# This may be replaced when dependencies are built.
