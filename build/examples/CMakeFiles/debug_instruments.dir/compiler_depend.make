# Empty compiler generated dependencies file for debug_instruments.
# This may be replaced when dependencies are built.
