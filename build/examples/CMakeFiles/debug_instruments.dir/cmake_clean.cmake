file(REMOVE_RECURSE
  "CMakeFiles/debug_instruments.dir/debug_instruments.cpp.o"
  "CMakeFiles/debug_instruments.dir/debug_instruments.cpp.o.d"
  "debug_instruments"
  "debug_instruments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_instruments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
