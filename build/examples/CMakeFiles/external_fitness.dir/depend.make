# Empty dependencies file for external_fitness.
# This may be replaced when dependencies are built.
