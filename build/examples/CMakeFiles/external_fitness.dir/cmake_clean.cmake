file(REMOVE_RECURSE
  "CMakeFiles/external_fitness.dir/external_fitness.cpp.o"
  "CMakeFiles/external_fitness.dir/external_fitness.cpp.o.d"
  "external_fitness"
  "external_fitness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_fitness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
