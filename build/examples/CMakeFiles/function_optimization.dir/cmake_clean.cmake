file(REMOVE_RECURSE
  "CMakeFiles/function_optimization.dir/function_optimization.cpp.o"
  "CMakeFiles/function_optimization.dir/function_optimization.cpp.o.d"
  "function_optimization"
  "function_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/function_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
