file(REMOVE_RECURSE
  "CMakeFiles/parallel_engines.dir/parallel_engines.cpp.o"
  "CMakeFiles/parallel_engines.dir/parallel_engines.cpp.o.d"
  "parallel_engines"
  "parallel_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
