# Empty compiler generated dependencies file for parallel_engines.
# This may be replaced when dependencies are built.
