file(REMOVE_RECURSE
  "CMakeFiles/dual_core_32bit.dir/dual_core_32bit.cpp.o"
  "CMakeFiles/dual_core_32bit.dir/dual_core_32bit.cpp.o.d"
  "dual_core_32bit"
  "dual_core_32bit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_core_32bit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
