# Empty dependencies file for dual_core_32bit.
# This may be replaced when dependencies are built.
