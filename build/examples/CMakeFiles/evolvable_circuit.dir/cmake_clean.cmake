file(REMOVE_RECURSE
  "CMakeFiles/evolvable_circuit.dir/evolvable_circuit.cpp.o"
  "CMakeFiles/evolvable_circuit.dir/evolvable_circuit.cpp.o.d"
  "evolvable_circuit"
  "evolvable_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evolvable_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
