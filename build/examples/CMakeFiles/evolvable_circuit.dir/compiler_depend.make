# Empty compiler generated dependencies file for evolvable_circuit.
# This may be replaced when dependencies are built.
