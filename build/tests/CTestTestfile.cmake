# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_rtl[1]_include.cmake")
include("/root/repo/build/tests/test_prng[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_fitness[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_gates[1]_include.cmake")
include("/root/repo/build/tests/test_swga[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
