file(REMOVE_RECURSE
  "CMakeFiles/test_gates.dir/gates/test_asic_flow.cpp.o"
  "CMakeFiles/test_gates.dir/gates/test_asic_flow.cpp.o.d"
  "CMakeFiles/test_gates.dir/gates/test_blocks.cpp.o"
  "CMakeFiles/test_gates.dir/gates/test_blocks.cpp.o.d"
  "CMakeFiles/test_gates.dir/gates/test_ga_core_gates.cpp.o"
  "CMakeFiles/test_gates.dir/gates/test_ga_core_gates.cpp.o.d"
  "CMakeFiles/test_gates.dir/gates/test_netlist.cpp.o"
  "CMakeFiles/test_gates.dir/gates/test_netlist.cpp.o.d"
  "CMakeFiles/test_gates.dir/gates/test_optimize.cpp.o"
  "CMakeFiles/test_gates.dir/gates/test_optimize.cpp.o.d"
  "CMakeFiles/test_gates.dir/gates/test_rng_gates.cpp.o"
  "CMakeFiles/test_gates.dir/gates/test_rng_gates.cpp.o.d"
  "test_gates"
  "test_gates.pdb"
  "test_gates[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
