file(REMOVE_RECURSE
  "CMakeFiles/test_prng.dir/prng/test_ca_prng.cpp.o"
  "CMakeFiles/test_prng.dir/prng/test_ca_prng.cpp.o.d"
  "CMakeFiles/test_prng.dir/prng/test_quality.cpp.o"
  "CMakeFiles/test_prng.dir/prng/test_quality.cpp.o.d"
  "CMakeFiles/test_prng.dir/prng/test_rng_module.cpp.o"
  "CMakeFiles/test_prng.dir/prng/test_rng_module.cpp.o.d"
  "test_prng"
  "test_prng.pdb"
  "test_prng[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
