file(REMOVE_RECURSE
  "CMakeFiles/test_rtl.dir/rtl/test_kernel.cpp.o"
  "CMakeFiles/test_rtl.dir/rtl/test_kernel.cpp.o.d"
  "CMakeFiles/test_rtl.dir/rtl/test_scan.cpp.o"
  "CMakeFiles/test_rtl.dir/rtl/test_scan.cpp.o.d"
  "CMakeFiles/test_rtl.dir/rtl/test_signal.cpp.o"
  "CMakeFiles/test_rtl.dir/rtl/test_signal.cpp.o.d"
  "test_rtl"
  "test_rtl.pdb"
  "test_rtl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
