
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rtl/test_kernel.cpp" "tests/CMakeFiles/test_rtl.dir/rtl/test_kernel.cpp.o" "gcc" "tests/CMakeFiles/test_rtl.dir/rtl/test_kernel.cpp.o.d"
  "/root/repo/tests/rtl/test_scan.cpp" "tests/CMakeFiles/test_rtl.dir/rtl/test_scan.cpp.o" "gcc" "tests/CMakeFiles/test_rtl.dir/rtl/test_scan.cpp.o.d"
  "/root/repo/tests/rtl/test_signal.cpp" "tests/CMakeFiles/test_rtl.dir/rtl/test_signal.cpp.o" "gcc" "tests/CMakeFiles/test_rtl.dir/rtl/test_signal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/gaip_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/gaip_system.dir/DependInfo.cmake"
  "/root/repo/build/src/gates/CMakeFiles/gaip_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/swga/CMakeFiles/gaip_swga.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gaip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/prng/CMakeFiles/gaip_prng.dir/DependInfo.cmake"
  "/root/repo/build/src/fitness/CMakeFiles/gaip_fitness.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/gaip_report.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/gaip_rtl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
