file(REMOVE_RECURSE
  "CMakeFiles/test_system.dir/system/test_dual_core.cpp.o"
  "CMakeFiles/test_system.dir/system/test_dual_core.cpp.o.d"
  "CMakeFiles/test_system.dir/system/test_equivalence.cpp.o"
  "CMakeFiles/test_system.dir/system/test_equivalence.cpp.o.d"
  "CMakeFiles/test_system.dir/system/test_ga_system.cpp.o"
  "CMakeFiles/test_system.dir/system/test_ga_system.cpp.o.d"
  "CMakeFiles/test_system.dir/system/test_ila.cpp.o"
  "CMakeFiles/test_system.dir/system/test_ila.cpp.o.d"
  "CMakeFiles/test_system.dir/system/test_memory_trace.cpp.o"
  "CMakeFiles/test_system.dir/system/test_memory_trace.cpp.o.d"
  "CMakeFiles/test_system.dir/system/test_parallel.cpp.o"
  "CMakeFiles/test_system.dir/system/test_parallel.cpp.o.d"
  "CMakeFiles/test_system.dir/system/test_peripheral_modules.cpp.o"
  "CMakeFiles/test_system.dir/system/test_peripheral_modules.cpp.o.d"
  "CMakeFiles/test_system.dir/system/test_regression_goldens.cpp.o"
  "CMakeFiles/test_system.dir/system/test_regression_goldens.cpp.o.d"
  "CMakeFiles/test_system.dir/system/test_vcd_integration.cpp.o"
  "CMakeFiles/test_system.dir/system/test_vcd_integration.cpp.o.d"
  "test_system"
  "test_system.pdb"
  "test_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
