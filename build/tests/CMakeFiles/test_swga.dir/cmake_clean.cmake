file(REMOVE_RECURSE
  "CMakeFiles/test_swga.dir/swga/test_software_ga.cpp.o"
  "CMakeFiles/test_swga.dir/swga/test_software_ga.cpp.o.d"
  "test_swga"
  "test_swga.pdb"
  "test_swga[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
