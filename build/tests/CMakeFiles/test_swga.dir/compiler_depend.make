# Empty compiler generated dependencies file for test_swga.
# This may be replaced when dependencies are built.
