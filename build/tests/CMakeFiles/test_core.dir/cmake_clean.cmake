file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_behavioral.cpp.o"
  "CMakeFiles/test_core.dir/core/test_behavioral.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_ga_core_rtl.cpp.o"
  "CMakeFiles/test_core.dir/core/test_ga_core_rtl.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_ga_core_scan_midrun.cpp.o"
  "CMakeFiles/test_core.dir/core/test_ga_core_scan_midrun.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_params.cpp.o"
  "CMakeFiles/test_core.dir/core/test_params.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_protocol_robustness.cpp.o"
  "CMakeFiles/test_core.dir/core/test_protocol_robustness.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_wide_ga.cpp.o"
  "CMakeFiles/test_core.dir/core/test_wide_ga.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
