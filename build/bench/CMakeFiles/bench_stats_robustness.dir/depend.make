# Empty dependencies file for bench_stats_robustness.
# This may be replaced when dependencies are built.
