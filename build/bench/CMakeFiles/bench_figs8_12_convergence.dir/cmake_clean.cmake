file(REMOVE_RECURSE
  "CMakeFiles/bench_figs8_12_convergence.dir/bench_figs8_12_convergence.cpp.o"
  "CMakeFiles/bench_figs8_12_convergence.dir/bench_figs8_12_convergence.cpp.o.d"
  "bench_figs8_12_convergence"
  "bench_figs8_12_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figs8_12_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
