# Empty dependencies file for bench_figs8_12_convergence.
# This may be replaced when dependencies are built.
