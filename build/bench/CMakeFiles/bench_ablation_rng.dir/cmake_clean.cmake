file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rng.dir/bench_ablation_rng.cpp.o"
  "CMakeFiles/bench_ablation_rng.dir/bench_ablation_rng.cpp.o.d"
  "bench_ablation_rng"
  "bench_ablation_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
