# Empty dependencies file for bench_dualcore_32bit.
# This may be replaced when dependencies are built.
