file(REMOVE_RECURSE
  "CMakeFiles/bench_dualcore_32bit.dir/bench_dualcore_32bit.cpp.o"
  "CMakeFiles/bench_dualcore_32bit.dir/bench_dualcore_32bit.cpp.o.d"
  "bench_dualcore_32bit"
  "bench_dualcore_32bit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dualcore_32bit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
