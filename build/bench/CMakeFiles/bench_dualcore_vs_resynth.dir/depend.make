# Empty dependencies file for bench_dualcore_vs_resynth.
# This may be replaced when dependencies are built.
