file(REMOVE_RECURSE
  "CMakeFiles/bench_dualcore_vs_resynth.dir/bench_dualcore_vs_resynth.cpp.o"
  "CMakeFiles/bench_dualcore_vs_resynth.dir/bench_dualcore_vs_resynth.cpp.o.d"
  "bench_dualcore_vs_resynth"
  "bench_dualcore_vs_resynth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dualcore_vs_resynth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
