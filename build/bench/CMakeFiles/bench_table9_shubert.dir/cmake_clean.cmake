file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_shubert.dir/bench_table9_shubert.cpp.o"
  "CMakeFiles/bench_table9_shubert.dir/bench_table9_shubert.cpp.o.d"
  "bench_table9_shubert"
  "bench_table9_shubert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_shubert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
