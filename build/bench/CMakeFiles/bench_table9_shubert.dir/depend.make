# Empty dependencies file for bench_table9_shubert.
# This may be replaced when dependencies are built.
