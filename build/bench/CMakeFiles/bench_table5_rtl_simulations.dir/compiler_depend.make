# Empty compiler generated dependencies file for bench_table5_rtl_simulations.
# This may be replaced when dependencies are built.
