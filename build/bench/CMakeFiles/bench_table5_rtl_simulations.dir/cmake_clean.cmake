file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_rtl_simulations.dir/bench_table5_rtl_simulations.cpp.o"
  "CMakeFiles/bench_table5_rtl_simulations.dir/bench_table5_rtl_simulations.cpp.o.d"
  "bench_table5_rtl_simulations"
  "bench_table5_rtl_simulations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_rtl_simulations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
