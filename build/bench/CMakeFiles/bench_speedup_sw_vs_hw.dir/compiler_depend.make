# Empty compiler generated dependencies file for bench_speedup_sw_vs_hw.
# This may be replaced when dependencies are built.
