file(REMOVE_RECURSE
  "CMakeFiles/bench_speedup_sw_vs_hw.dir/bench_speedup_sw_vs_hw.cpp.o"
  "CMakeFiles/bench_speedup_sw_vs_hw.dir/bench_speedup_sw_vs_hw.cpp.o.d"
  "bench_speedup_sw_vs_hw"
  "bench_speedup_sw_vs_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speedup_sw_vs_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
