file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_mbf6.dir/bench_table7_mbf6.cpp.o"
  "CMakeFiles/bench_table7_mbf6.dir/bench_table7_mbf6.cpp.o.d"
  "bench_table7_mbf6"
  "bench_table7_mbf6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_mbf6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
