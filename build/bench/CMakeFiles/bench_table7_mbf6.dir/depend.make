# Empty dependencies file for bench_table7_mbf6.
# This may be replaced when dependencies are built.
