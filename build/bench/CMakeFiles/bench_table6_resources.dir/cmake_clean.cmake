file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_resources.dir/bench_table6_resources.cpp.o"
  "CMakeFiles/bench_table6_resources.dir/bench_table6_resources.cpp.o.d"
  "bench_table6_resources"
  "bench_table6_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
