file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_mbf7.dir/bench_table8_mbf7.cpp.o"
  "CMakeFiles/bench_table8_mbf7.dir/bench_table8_mbf7.cpp.o.d"
  "bench_table8_mbf7"
  "bench_table8_mbf7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_mbf7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
