# Empty compiler generated dependencies file for bench_table8_mbf7.
# This may be replaced when dependencies are built.
