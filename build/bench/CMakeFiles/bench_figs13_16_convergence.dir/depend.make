# Empty dependencies file for bench_figs13_16_convergence.
# This may be replaced when dependencies are built.
