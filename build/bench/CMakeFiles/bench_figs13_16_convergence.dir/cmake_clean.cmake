file(REMOVE_RECURSE
  "CMakeFiles/bench_figs13_16_convergence.dir/bench_figs13_16_convergence.cpp.o"
  "CMakeFiles/bench_figs13_16_convergence.dir/bench_figs13_16_convergence.cpp.o.d"
  "bench_figs13_16_convergence"
  "bench_figs13_16_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figs13_16_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
