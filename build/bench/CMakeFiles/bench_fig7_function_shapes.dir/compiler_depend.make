# Empty compiler generated dependencies file for bench_fig7_function_shapes.
# This may be replaced when dependencies are built.
