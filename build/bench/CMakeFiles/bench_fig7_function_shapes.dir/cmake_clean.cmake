file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_function_shapes.dir/bench_fig7_function_shapes.cpp.o"
  "CMakeFiles/bench_fig7_function_shapes.dir/bench_fig7_function_shapes.cpp.o.d"
  "bench_fig7_function_shapes"
  "bench_fig7_function_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_function_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
