file(REMOVE_RECURSE
  "CMakeFiles/bench_gate_netlist.dir/bench_gate_netlist.cpp.o"
  "CMakeFiles/bench_gate_netlist.dir/bench_gate_netlist.cpp.o.d"
  "bench_gate_netlist"
  "bench_gate_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gate_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
