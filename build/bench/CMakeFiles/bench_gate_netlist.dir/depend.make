# Empty dependencies file for bench_gate_netlist.
# This may be replaced when dependencies are built.
