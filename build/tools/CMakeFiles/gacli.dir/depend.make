# Empty dependencies file for gacli.
# This may be replaced when dependencies are built.
