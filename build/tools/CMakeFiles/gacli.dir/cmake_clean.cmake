file(REMOVE_RECURSE
  "CMakeFiles/gacli.dir/gacli.cpp.o"
  "CMakeFiles/gacli.dir/gacli.cpp.o.d"
  "gacli"
  "gacli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gacli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
