# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(gacli_smoke_rtl "/root/repo/build/tools/gacli" "--fitness" "OneMax" "--pop" "16" "--gens" "8" "--quiet")
set_tests_properties(gacli_smoke_rtl PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(gacli_smoke_behavioral "/root/repo/build/tools/gacli" "--fitness" "mShubert2D" "--behavioral" "--pop" "32" "--gens" "16" "--quiet")
set_tests_properties(gacli_smoke_behavioral PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(gacli_smoke_preset "/root/repo/build/tools/gacli" "--fitness" "F2" "--preset" "1" "--quiet")
set_tests_properties(gacli_smoke_preset PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(gacli_smoke_gate_level "/root/repo/build/tools/gacli" "--fitness" "OneMax" "--pop" "8" "--gens" "3" "--gate-level" "--quiet")
set_tests_properties(gacli_smoke_gate_level PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(gacli_smoke_runs "/root/repo/build/tools/gacli" "--fitness" "mBF6_2" "--runs" "5" "--gens" "16")
set_tests_properties(gacli_smoke_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(gacli_bad_option "/root/repo/build/tools/gacli" "--frobnicate")
set_tests_properties(gacli_bad_option PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
