# Empty dependencies file for gaip_gates.
# This may be replaced when dependencies are built.
