
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gates/asic_flow.cpp" "src/gates/CMakeFiles/gaip_gates.dir/asic_flow.cpp.o" "gcc" "src/gates/CMakeFiles/gaip_gates.dir/asic_flow.cpp.o.d"
  "/root/repo/src/gates/blocks.cpp" "src/gates/CMakeFiles/gaip_gates.dir/blocks.cpp.o" "gcc" "src/gates/CMakeFiles/gaip_gates.dir/blocks.cpp.o.d"
  "/root/repo/src/gates/builder.cpp" "src/gates/CMakeFiles/gaip_gates.dir/builder.cpp.o" "gcc" "src/gates/CMakeFiles/gaip_gates.dir/builder.cpp.o.d"
  "/root/repo/src/gates/ga_core_gates.cpp" "src/gates/CMakeFiles/gaip_gates.dir/ga_core_gates.cpp.o" "gcc" "src/gates/CMakeFiles/gaip_gates.dir/ga_core_gates.cpp.o.d"
  "/root/repo/src/gates/netlist.cpp" "src/gates/CMakeFiles/gaip_gates.dir/netlist.cpp.o" "gcc" "src/gates/CMakeFiles/gaip_gates.dir/netlist.cpp.o.d"
  "/root/repo/src/gates/optimize.cpp" "src/gates/CMakeFiles/gaip_gates.dir/optimize.cpp.o" "gcc" "src/gates/CMakeFiles/gaip_gates.dir/optimize.cpp.o.d"
  "/root/repo/src/gates/rng_gates.cpp" "src/gates/CMakeFiles/gaip_gates.dir/rng_gates.cpp.o" "gcc" "src/gates/CMakeFiles/gaip_gates.dir/rng_gates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prng/CMakeFiles/gaip_prng.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gaip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fitness/CMakeFiles/gaip_fitness.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/gaip_rtl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
