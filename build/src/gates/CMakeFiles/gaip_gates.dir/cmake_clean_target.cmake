file(REMOVE_RECURSE
  "libgaip_gates.a"
)
