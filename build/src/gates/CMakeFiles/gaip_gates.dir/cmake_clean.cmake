file(REMOVE_RECURSE
  "CMakeFiles/gaip_gates.dir/asic_flow.cpp.o"
  "CMakeFiles/gaip_gates.dir/asic_flow.cpp.o.d"
  "CMakeFiles/gaip_gates.dir/blocks.cpp.o"
  "CMakeFiles/gaip_gates.dir/blocks.cpp.o.d"
  "CMakeFiles/gaip_gates.dir/builder.cpp.o"
  "CMakeFiles/gaip_gates.dir/builder.cpp.o.d"
  "CMakeFiles/gaip_gates.dir/ga_core_gates.cpp.o"
  "CMakeFiles/gaip_gates.dir/ga_core_gates.cpp.o.d"
  "CMakeFiles/gaip_gates.dir/netlist.cpp.o"
  "CMakeFiles/gaip_gates.dir/netlist.cpp.o.d"
  "CMakeFiles/gaip_gates.dir/optimize.cpp.o"
  "CMakeFiles/gaip_gates.dir/optimize.cpp.o.d"
  "CMakeFiles/gaip_gates.dir/rng_gates.cpp.o"
  "CMakeFiles/gaip_gates.dir/rng_gates.cpp.o.d"
  "libgaip_gates.a"
  "libgaip_gates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaip_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
