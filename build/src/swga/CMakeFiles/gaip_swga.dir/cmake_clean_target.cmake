file(REMOVE_RECURSE
  "libgaip_swga.a"
)
