file(REMOVE_RECURSE
  "CMakeFiles/gaip_swga.dir/ppc_cost_model.cpp.o"
  "CMakeFiles/gaip_swga.dir/ppc_cost_model.cpp.o.d"
  "CMakeFiles/gaip_swga.dir/software_ga.cpp.o"
  "CMakeFiles/gaip_swga.dir/software_ga.cpp.o.d"
  "libgaip_swga.a"
  "libgaip_swga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaip_swga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
