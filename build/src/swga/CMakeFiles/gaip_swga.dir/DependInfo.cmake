
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/swga/ppc_cost_model.cpp" "src/swga/CMakeFiles/gaip_swga.dir/ppc_cost_model.cpp.o" "gcc" "src/swga/CMakeFiles/gaip_swga.dir/ppc_cost_model.cpp.o.d"
  "/root/repo/src/swga/software_ga.cpp" "src/swga/CMakeFiles/gaip_swga.dir/software_ga.cpp.o" "gcc" "src/swga/CMakeFiles/gaip_swga.dir/software_ga.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gaip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fitness/CMakeFiles/gaip_fitness.dir/DependInfo.cmake"
  "/root/repo/build/src/prng/CMakeFiles/gaip_prng.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/gaip_rtl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
