# Empty dependencies file for gaip_swga.
# This may be replaced when dependencies are built.
