file(REMOVE_RECURSE
  "CMakeFiles/gaip_prng.dir/quality.cpp.o"
  "CMakeFiles/gaip_prng.dir/quality.cpp.o.d"
  "CMakeFiles/gaip_prng.dir/rng_module.cpp.o"
  "CMakeFiles/gaip_prng.dir/rng_module.cpp.o.d"
  "libgaip_prng.a"
  "libgaip_prng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaip_prng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
