file(REMOVE_RECURSE
  "libgaip_prng.a"
)
