# Empty compiler generated dependencies file for gaip_prng.
# This may be replaced when dependencies are built.
