
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prng/quality.cpp" "src/prng/CMakeFiles/gaip_prng.dir/quality.cpp.o" "gcc" "src/prng/CMakeFiles/gaip_prng.dir/quality.cpp.o.d"
  "/root/repo/src/prng/rng_module.cpp" "src/prng/CMakeFiles/gaip_prng.dir/rng_module.cpp.o" "gcc" "src/prng/CMakeFiles/gaip_prng.dir/rng_module.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/gaip_rtl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
