file(REMOVE_RECURSE
  "CMakeFiles/gaip_fitness.dir/fem.cpp.o"
  "CMakeFiles/gaip_fitness.dir/fem.cpp.o.d"
  "CMakeFiles/gaip_fitness.dir/functions.cpp.o"
  "CMakeFiles/gaip_fitness.dir/functions.cpp.o.d"
  "CMakeFiles/gaip_fitness.dir/rom_builder.cpp.o"
  "CMakeFiles/gaip_fitness.dir/rom_builder.cpp.o.d"
  "libgaip_fitness.a"
  "libgaip_fitness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaip_fitness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
