
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fitness/fem.cpp" "src/fitness/CMakeFiles/gaip_fitness.dir/fem.cpp.o" "gcc" "src/fitness/CMakeFiles/gaip_fitness.dir/fem.cpp.o.d"
  "/root/repo/src/fitness/functions.cpp" "src/fitness/CMakeFiles/gaip_fitness.dir/functions.cpp.o" "gcc" "src/fitness/CMakeFiles/gaip_fitness.dir/functions.cpp.o.d"
  "/root/repo/src/fitness/rom_builder.cpp" "src/fitness/CMakeFiles/gaip_fitness.dir/rom_builder.cpp.o" "gcc" "src/fitness/CMakeFiles/gaip_fitness.dir/rom_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/gaip_rtl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
