file(REMOVE_RECURSE
  "libgaip_fitness.a"
)
