# Empty dependencies file for gaip_fitness.
# This may be replaced when dependencies are built.
