# Empty dependencies file for gaip_report.
# This may be replaced when dependencies are built.
