file(REMOVE_RECURSE
  "libgaip_report.a"
)
