file(REMOVE_RECURSE
  "CMakeFiles/gaip_report.dir/resources.cpp.o"
  "CMakeFiles/gaip_report.dir/resources.cpp.o.d"
  "libgaip_report.a"
  "libgaip_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaip_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
