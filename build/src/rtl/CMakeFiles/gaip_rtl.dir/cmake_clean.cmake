file(REMOVE_RECURSE
  "CMakeFiles/gaip_rtl.dir/kernel.cpp.o"
  "CMakeFiles/gaip_rtl.dir/kernel.cpp.o.d"
  "CMakeFiles/gaip_rtl.dir/vcd.cpp.o"
  "CMakeFiles/gaip_rtl.dir/vcd.cpp.o.d"
  "libgaip_rtl.a"
  "libgaip_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaip_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
