# Empty dependencies file for gaip_rtl.
# This may be replaced when dependencies are built.
