file(REMOVE_RECURSE
  "libgaip_rtl.a"
)
