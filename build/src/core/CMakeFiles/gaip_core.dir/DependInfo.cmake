
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/behavioral.cpp" "src/core/CMakeFiles/gaip_core.dir/behavioral.cpp.o" "gcc" "src/core/CMakeFiles/gaip_core.dir/behavioral.cpp.o.d"
  "/root/repo/src/core/dual_behavioral.cpp" "src/core/CMakeFiles/gaip_core.dir/dual_behavioral.cpp.o" "gcc" "src/core/CMakeFiles/gaip_core.dir/dual_behavioral.cpp.o.d"
  "/root/repo/src/core/dual_core.cpp" "src/core/CMakeFiles/gaip_core.dir/dual_core.cpp.o" "gcc" "src/core/CMakeFiles/gaip_core.dir/dual_core.cpp.o.d"
  "/root/repo/src/core/ga_core.cpp" "src/core/CMakeFiles/gaip_core.dir/ga_core.cpp.o" "gcc" "src/core/CMakeFiles/gaip_core.dir/ga_core.cpp.o.d"
  "/root/repo/src/core/wide_ga.cpp" "src/core/CMakeFiles/gaip_core.dir/wide_ga.cpp.o" "gcc" "src/core/CMakeFiles/gaip_core.dir/wide_ga.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/gaip_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/prng/CMakeFiles/gaip_prng.dir/DependInfo.cmake"
  "/root/repo/build/src/fitness/CMakeFiles/gaip_fitness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
