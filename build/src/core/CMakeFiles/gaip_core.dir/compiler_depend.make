# Empty compiler generated dependencies file for gaip_core.
# This may be replaced when dependencies are built.
