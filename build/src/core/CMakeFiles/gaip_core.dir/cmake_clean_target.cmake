file(REMOVE_RECURSE
  "libgaip_core.a"
)
