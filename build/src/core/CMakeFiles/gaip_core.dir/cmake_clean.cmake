file(REMOVE_RECURSE
  "CMakeFiles/gaip_core.dir/behavioral.cpp.o"
  "CMakeFiles/gaip_core.dir/behavioral.cpp.o.d"
  "CMakeFiles/gaip_core.dir/dual_behavioral.cpp.o"
  "CMakeFiles/gaip_core.dir/dual_behavioral.cpp.o.d"
  "CMakeFiles/gaip_core.dir/dual_core.cpp.o"
  "CMakeFiles/gaip_core.dir/dual_core.cpp.o.d"
  "CMakeFiles/gaip_core.dir/ga_core.cpp.o"
  "CMakeFiles/gaip_core.dir/ga_core.cpp.o.d"
  "CMakeFiles/gaip_core.dir/wide_ga.cpp.o"
  "CMakeFiles/gaip_core.dir/wide_ga.cpp.o.d"
  "libgaip_core.a"
  "libgaip_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaip_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
