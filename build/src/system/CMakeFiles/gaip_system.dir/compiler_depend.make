# Empty compiler generated dependencies file for gaip_system.
# This may be replaced when dependencies are built.
