file(REMOVE_RECURSE
  "CMakeFiles/gaip_system.dir/ga_system.cpp.o"
  "CMakeFiles/gaip_system.dir/ga_system.cpp.o.d"
  "CMakeFiles/gaip_system.dir/ila.cpp.o"
  "CMakeFiles/gaip_system.dir/ila.cpp.o.d"
  "CMakeFiles/gaip_system.dir/parallel.cpp.o"
  "CMakeFiles/gaip_system.dir/parallel.cpp.o.d"
  "libgaip_system.a"
  "libgaip_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaip_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
