file(REMOVE_RECURSE
  "libgaip_system.a"
)
