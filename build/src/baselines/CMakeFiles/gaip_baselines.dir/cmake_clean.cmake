file(REMOVE_RECURSE
  "CMakeFiles/gaip_baselines.dir/compact_ga.cpp.o"
  "CMakeFiles/gaip_baselines.dir/compact_ga.cpp.o.d"
  "CMakeFiles/gaip_baselines.dir/pipelined.cpp.o"
  "CMakeFiles/gaip_baselines.dir/pipelined.cpp.o.d"
  "CMakeFiles/gaip_baselines.dir/templates.cpp.o"
  "CMakeFiles/gaip_baselines.dir/templates.cpp.o.d"
  "libgaip_baselines.a"
  "libgaip_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaip_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
