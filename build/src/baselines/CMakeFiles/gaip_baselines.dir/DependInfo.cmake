
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/compact_ga.cpp" "src/baselines/CMakeFiles/gaip_baselines.dir/compact_ga.cpp.o" "gcc" "src/baselines/CMakeFiles/gaip_baselines.dir/compact_ga.cpp.o.d"
  "/root/repo/src/baselines/pipelined.cpp" "src/baselines/CMakeFiles/gaip_baselines.dir/pipelined.cpp.o" "gcc" "src/baselines/CMakeFiles/gaip_baselines.dir/pipelined.cpp.o.d"
  "/root/repo/src/baselines/templates.cpp" "src/baselines/CMakeFiles/gaip_baselines.dir/templates.cpp.o" "gcc" "src/baselines/CMakeFiles/gaip_baselines.dir/templates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gaip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/prng/CMakeFiles/gaip_prng.dir/DependInfo.cmake"
  "/root/repo/build/src/fitness/CMakeFiles/gaip_fitness.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/gaip_rtl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
