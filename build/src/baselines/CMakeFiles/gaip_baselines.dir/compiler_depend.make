# Empty compiler generated dependencies file for gaip_baselines.
# This may be replaced when dependencies are built.
