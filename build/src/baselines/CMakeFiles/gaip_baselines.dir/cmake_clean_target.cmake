file(REMOVE_RECURSE
  "libgaip_baselines.a"
)
