#include "swga/software_ga.hpp"

#include <chrono>
#include <stdexcept>
#include <vector>

#include "util/bits.hpp"

namespace gaip::swga {

namespace {

struct Instrumented {
    core::RngState rng;
    const mem::BlockRom& rom;
    OpCounts ops;

    std::uint16_t next16() {
        ++ops.rng_calls;
        return rng.next16();
    }

    std::uint16_t lookup(std::uint16_t cand) {
        ++ops.fitness_lookups;
        return rom.read(cand);
    }
};

std::size_t select(Instrumented& ctx, const std::vector<core::Member>& pop,
                   std::uint32_t fit_sum, std::uint16_t r) {
    ++ctx.ops.selections;
    const std::uint32_t thresh =
        static_cast<std::uint32_t>((static_cast<std::uint64_t>(fit_sum) * r) >> 16);
    std::uint32_t cum = 0;
    std::size_t idx = 0;
    for (std::size_t reads = 0;; ++reads) {
        ++ctx.ops.member_reads;
        const std::uint16_t fit = pop[idx].fitness;
        if (cum + fit > thresh || reads + 1 >= 2 * pop.size()) return idx;
        cum += fit;
        idx = (idx + 1) % pop.size();
    }
}

core::RunResult run_once(const core::GaParameters& raw, Instrumented& ctx) {
    const core::GaParameters params = core::resolve_parameters(0, raw);
    core::RunResult result;
    std::uint16_t best_fit = 0;
    std::uint16_t best_ind = 0;
    auto offer = [&](std::uint16_t cand, std::uint16_t fit) {
        if (fit > best_fit) {
            best_fit = fit;
            best_ind = cand;
        }
    };

    std::vector<core::Member> cur(params.pop_size);
    std::uint32_t fit_sum_cur = 0;
    for (core::Member& m : cur) {
        m.candidate = ctx.next16();
        m.fitness = ctx.lookup(m.candidate);
        ++result.evaluations;
        ++ctx.ops.member_writes;
        fit_sum_cur += m.fitness;
        offer(m.candidate, m.fitness);
    }

    std::vector<core::Member> next(params.pop_size);
    for (std::uint32_t gen = 0; gen < params.n_gens; ++gen) {
        ++ctx.ops.generation_loops;
        next[0] = {best_ind, best_fit};
        ++ctx.ops.member_writes;
        std::uint32_t fit_sum_new = best_fit;
        std::size_t idx = 1;

        while (idx < params.pop_size) {
            ++ctx.ops.offspring_loops;
            const std::size_t i1 = select(ctx, cur, fit_sum_cur, ctx.next16());
            const std::size_t i2 = select(ctx, cur, fit_sum_cur, ctx.next16());
            ctx.ops.member_reads += 2;
            std::uint16_t off1 = cur[i1].candidate;
            std::uint16_t off2 = cur[i2].candidate;

            ++ctx.ops.crossovers;
            const std::uint16_t rx = ctx.next16();
            if ((rx & 0xF) < params.xover_threshold) {
                ++ctx.ops.applied_crossovers;
                const std::uint16_t mask = util::crossover_mask((rx >> 4) & 0xF);
                const std::uint16_t o1 = static_cast<std::uint16_t>((off1 & mask) | (off2 & ~mask));
                const std::uint16_t o2 = static_cast<std::uint16_t>((off2 & mask) | (off1 & ~mask));
                off1 = o1;
                off2 = o2;
            }

            for (std::uint16_t* off : {&off1, &off2}) {
                ++ctx.ops.mutations;
                const std::uint16_t rm = ctx.next16();
                if ((rm & 0xF) < params.mut_threshold) {
                    ++ctx.ops.applied_mutations;
                    *off ^= static_cast<std::uint16_t>(1u << ((rm >> 4) & 0xF));
                }
                const std::uint16_t f = ctx.lookup(*off);
                ++result.evaluations;
                next[idx] = {*off, f};
                ++ctx.ops.member_writes;
                fit_sum_new += f;
                offer(*off, f);
                ++idx;
                if (idx >= params.pop_size) break;
            }
        }
        cur.swap(next);
        fit_sum_cur = fit_sum_new;
    }

    result.best_candidate = best_ind;
    result.best_fitness = best_fit;
    return result;
}

}  // namespace

SwRunStats run_software_ga(const core::GaParameters& params,
                           std::shared_ptr<const mem::BlockRom> rom, prng::RngKind rng_kind,
                           unsigned repeats) {
    if (!rom) throw std::invalid_argument("run_software_ga: null rom");
    if (repeats == 0) repeats = 1;

    SwRunStats stats;
    const auto t0 = std::chrono::steady_clock::now();
    for (unsigned r = 0; r < repeats; ++r) {
        Instrumented ctx{core::RngState(params.seed, rng_kind), *rom, {}};
        core::RunResult res = run_once(params, ctx);
        if (r == 0) {
            stats.result = std::move(res);
            stats.ops = ctx.ops;
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    stats.host_seconds =
        std::chrono::duration<double>(t1 - t0).count() / static_cast<double>(repeats);
    return stats;
}

}  // namespace gaip::swga
