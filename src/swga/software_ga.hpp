// Software GA baseline for the runtime comparison of Sec. IV-C.
//
// The paper ran "a software implementation of a GA optimizer, similar to
// the GA optimization algorithm in the IP core" in C on the Virtex-II Pro's
// embedded PowerPC, with the fitness lookup table in FPGA block RAM reached
// over the processor bus. This module provides:
//   * the same algorithm in plain software form (identical operators and
//     RNG, so the comparison is apples-to-apples), instrumented with
//     operation counters;
//   * host wall-clock measurement (reference only; a 2020s x86 core is not
//     the paper's 300 MHz PPC405);
//   * the operation counts feed the PowerPC cost model
//     (ppc_cost_model.hpp), which produces the embedded-runtime estimate
//     actually compared against the modeled hardware time.
#pragma once

#include <cstdint>
#include <memory>

#include "core/behavioral.hpp"
#include "mem/rom.hpp"

namespace gaip::swga {

/// Dynamic operation counts of one software-GA run.
struct OpCounts {
    std::uint64_t rng_calls = 0;
    std::uint64_t fitness_lookups = 0;   ///< bus transactions to the lookup BRAM
    std::uint64_t member_reads = 0;      ///< population-array member reads
    std::uint64_t member_writes = 0;
    std::uint64_t selections = 0;
    std::uint64_t crossovers = 0;        ///< crossover operator invocations (incl. skipped)
    std::uint64_t applied_crossovers = 0;///< invocations where the 4-bit draw passed the threshold
    std::uint64_t mutations = 0;         ///< mutation operator invocations (incl. skipped)
    std::uint64_t applied_mutations = 0; ///< invocations that actually flipped a bit
    std::uint64_t offspring_loops = 0;   ///< inner-loop iterations (per offspring)
    std::uint64_t generation_loops = 0;
};

struct SwRunStats {
    core::RunResult result;
    OpCounts ops;
    double host_seconds = 0.0;
};

/// Run the software GA against a fitness lookup ROM (the identical table the
/// hardware FEM uses). `repeats` > 1 re-runs the optimization to stabilize
/// the host timing (counts/result are from the first run).
SwRunStats run_software_ga(const core::GaParameters& params,
                           std::shared_ptr<const mem::BlockRom> rom,
                           prng::RngKind rng_kind = prng::RngKind::kCellularAutomaton,
                           unsigned repeats = 1);

}  // namespace gaip::swga
