// Embedded-processor cost model for the Sec. IV-C runtime comparison.
//
// The paper's software baseline ran on the PowerPC 405 hard core inside the
// same Virtex-II Pro device, with the fitness lookup table in FPGA block
// RAM reached over the processor bus, and measured 37.615 ms for
// { mBF6_2, pop 32, crossover 10/16, mutation 1/16, 32 generations }
// (six-run average). We cannot run a PPC405, so the model charges each
// dynamic operation class (counted by the instrumented software GA) a
// documented cycle cost at the PPC405's 300 MHz:
//
//   * fitness lookups cross the peripheral bus: a single-beat read to a
//     BRAM-backed slave costs tens of bus cycles plus the pipeline stall;
//   * the software CA-PRNG step is ~15 ALU instructions; with the
//     instruction stream fetched from memory (the typical cache-disabled
//     EDK configuration these measurements imply) the effective cost per
//     instruction is several cycles;
//   * population members live in off-chip memory (no data cache).
//
// The constants below are first-principles estimates (they are NOT fitted
// to the paper's headline speedup; EXPERIMENTS.md reports both the paper's
// measured times and this model's, with the residual discussed). The
// hardware side of the comparison needs no model: the RTL simulation counts
// real 50 MHz cycles.
#pragma once

#include "swga/software_ga.hpp"

namespace gaip::swga {

struct PpcCostModelConfig {
    double clock_hz = 300e6;            ///< PPC405 clock in the V2Pro
    double cycles_rng_call = 110;       ///< software CA step (cache-off fetch)
    double cycles_fitness_lookup = 180; ///< bus transaction + call overhead
    double cycles_member_access = 55;   ///< population member load/store
    double cycles_selection = 150;      ///< per-selection fixed overhead
    double cycles_crossover = 160;      ///< operator call, mask build, merges
    double cycles_mutation = 90;        ///< operator call, compare, flip
    double cycles_offspring_loop = 220; ///< loop control, bookkeeping, best-update
    double cycles_generation_loop = 400;///< swap, sums, loop control
};

struct PpcEstimate {
    double cycles = 0.0;
    double seconds = 0.0;
};

/// Charge the counted operations against the model.
PpcEstimate estimate_ppc_runtime(const OpCounts& ops, const PpcCostModelConfig& cfg = {});

}  // namespace gaip::swga
