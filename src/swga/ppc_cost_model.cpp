#include "swga/ppc_cost_model.hpp"

namespace gaip::swga {

PpcEstimate estimate_ppc_runtime(const OpCounts& ops, const PpcCostModelConfig& cfg) {
    PpcEstimate e;
    e.cycles = static_cast<double>(ops.rng_calls) * cfg.cycles_rng_call +
               static_cast<double>(ops.fitness_lookups) * cfg.cycles_fitness_lookup +
               static_cast<double>(ops.member_reads + ops.member_writes) *
                   cfg.cycles_member_access +
               static_cast<double>(ops.selections) * cfg.cycles_selection +
               static_cast<double>(ops.crossovers) * cfg.cycles_crossover +
               static_cast<double>(ops.mutations) * cfg.cycles_mutation +
               static_cast<double>(ops.offspring_loops) * cfg.cycles_offspring_loop +
               static_cast<double>(ops.generation_loops) * cfg.cycles_generation_loop;
    e.seconds = e.cycles / cfg.clock_hz;
    return e;
}

}  // namespace gaip::swga
