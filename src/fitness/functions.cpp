#include "fitness/functions.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <mutex>
#include <numbers>
#include <stdexcept>

#include "util/bits.hpp"

namespace gaip::fitness {

namespace {

double cos_deg(double x) { return std::cos(x * std::numbers::pi / 180.0); }

std::uint8_t hi_byte(std::uint16_t c) { return static_cast<std::uint8_t>(c >> 8); }
std::uint8_t lo_byte(std::uint16_t c) { return static_cast<std::uint8_t>(c & 0xFF); }

}  // namespace

double bf6(double x) { return (x * x + x) * cos_deg(x) / 4000000.0 + 3200.0; }

double f2(double x, double y) { return 8.0 * x - 4.0 * y + 1020.0; }

double f3(double x, double y) { return 8.0 * x + 4.0 * y; }

double mbf6_2(double x) { return 4096.0 + (x * x + x) * cos_deg(x) / 1048576.0; }

double mbf7_2(double x, double y) {
    return 32768.0 + 56.0 * (x * std::sin(4.0 * x) + 1.25 * y * std::sin(2.0 * y));
}

double shubert_sum(double x) {
    double s = 0.0;
    for (int i = 1; i <= 5; ++i) s += i * std::cos((i + 1) * x + i);
    return s;
}

double mshubert_offset() {
    static const double offset = [] {
        double min_s = shubert_sum(0.0);
        for (int x = 1; x <= 255; ++x) min_s = std::min(min_s, shubert_sum(x));
        return -150.0 - 2.0 * min_s;  // separable: min over pairs = 2 * min_x S(x)
    }();
    return offset;
}

double mshubert2d(double x1, double x2) {
    // kHeadroom widens the saturated plateau at the top of the landscape so
    // the count of distinct global optima on the u8 x u8 grid matches the
    // paper's "48 global optimal solutions" as closely as the pair symmetry
    // allows (49 with this value; 47 is the next count below). See
    // functions.hpp for the calibration rationale.
    constexpr double kHeadroom = 1.49;
    return 65535.0 -
           174.0 * (150.0 + shubert_sum(x1) + shubert_sum(x2) + mshubert_offset() - kHeadroom);
}

std::uint16_t onemax32(std::uint32_t x) {
    return static_cast<std::uint16_t>(2047u * static_cast<unsigned>(std::popcount(x)));
}

std::uint16_t sphere32(std::uint32_t x, std::uint32_t target) {
    // Piecewise-linear distance penalty: full resolution near the target
    // (strictly monotone for every step) and a coarse far-field slope.
    const std::uint64_t dx = x > target ? (std::uint64_t{x} - target) : (std::uint64_t{target} - x);
    if (dx < 0x8000u) return static_cast<std::uint16_t>(65535u - dx);
    const std::uint64_t pen = dx >> 17;
    return pen >= 32768u ? 0 : static_cast<std::uint16_t>(32768u - pen);
}

namespace {

std::uint16_t royal_road(std::uint16_t c) {
    unsigned blocks = 0;
    for (unsigned b = 0; b < 4; ++b) {
        if (((c >> (4 * b)) & 0xFu) == 0xFu) ++blocks;
    }
    return static_cast<std::uint16_t>(15000u * blocks +
                                      50u * static_cast<unsigned>(std::popcount(c)));
}

}  // namespace

std::uint16_t fitness_u16(FitnessId id, std::uint16_t c) {
    switch (id) {
        case FitnessId::kBf6:
            return util::sat_u16(std::llround(bf6(static_cast<double>(c))));
        case FitnessId::kF2:
            return util::sat_u16(std::llround(f2(hi_byte(c), lo_byte(c))));
        case FitnessId::kF3:
            return util::sat_u16(std::llround(f3(hi_byte(c), lo_byte(c))));
        case FitnessId::kMBf6_2:
            return util::sat_u16(std::llround(mbf6_2(static_cast<double>(c))));
        case FitnessId::kMBf7_2:
            return util::sat_u16(std::llround(mbf7_2(hi_byte(c), lo_byte(c))));
        case FitnessId::kMShubert2D:
            return util::sat_u16(std::llround(mshubert2d(hi_byte(c), lo_byte(c))));
        case FitnessId::kOneMax:
            return static_cast<std::uint16_t>(4095u * static_cast<unsigned>(std::popcount(c)));
        case FitnessId::kRoyalRoad:
            return royal_road(c);
    }
    throw std::invalid_argument("fitness_u16: unknown FitnessId");
}

const std::string& fitness_name(FitnessId id) {
    static const std::array<std::string, kNumFitnessIds> names = {
        "BF6", "F2", "F3", "mBF6_2", "mBF7_2", "mShubert2D", "OneMax", "RoyalRoad"};
    return names.at(static_cast<std::size_t>(id));
}

PaperOptimum paper_optimum(FitnessId id) {
    switch (id) {
        case FitnessId::kBf6:        return {4271, "x = 65522"};
        case FitnessId::kF2:         return {3060, "x = 255, y = 0"};
        case FitnessId::kF3:         return {3060, "x = 255, y = 255"};
        case FitnessId::kMBf6_2:     return {8183, "x = 65521"};
        case FitnessId::kMBf7_2:     return {63904, "x = 247, y = 249"};
        case FitnessId::kMShubert2D: return {65535, "48 global optima"};
        default:                     return {0, ""};
    }
}

GridOptimum grid_optimum(FitnessId id) {
    GridOptimum g;
    for (std::uint32_t c = 0; c <= 0xFFFFu; ++c) {
        const std::uint16_t f = fitness_u16(id, static_cast<std::uint16_t>(c));
        if (f > g.best_value) {
            g.best_value = f;
            g.first_argmax = static_cast<std::uint16_t>(c);
            g.argmax_count = 1;
        } else if (f == g.best_value) {
            ++g.argmax_count;
        }
    }
    return g;
}

}  // namespace gaip::fitness
