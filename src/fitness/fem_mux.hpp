// 8-way fitness-function multiplexer (Sec. III "Support for Multiple Fitness
// Functions"). Routes the core's fit_request to the internal FEM selected by
// fitfunc_select and returns that FEM's fit_value / fit_valid to the core.
// Slots designated external are handled inside the GA core itself (it
// switches to its fit_value_ext / fit_valid_ext ports, Fig. 5); this mux
// keeps those slots' internal request lines deasserted.
//
// Purely combinational — it is the multiplexer tree in front of the FEMs.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "rtl/module.hpp"

namespace gaip::fitness {

inline constexpr std::size_t kMaxFitnessSlots = 8;

struct FemMuxSlot {
    rtl::Wire<bool>* request = nullptr;        // to the slot's FEM
    rtl::Wire<std::uint16_t>* value = nullptr; // from the slot's FEM
    rtl::Wire<bool>* valid = nullptr;          // from the slot's FEM
};

struct FemMuxPorts {
    rtl::Wire<bool>& fit_request;              // from the core
    rtl::Wire<std::uint8_t>& fitfunc_select;   // 3-bit selector
    rtl::Wire<std::uint16_t>& fit_value;       // to the core
    rtl::Wire<bool>& fit_valid;                // to the core
};

class FemMux final : public rtl::Module {
public:
    explicit FemMux(FemMuxPorts ports) : Module("fem_mux"), p_(ports) {
        sense(p_.fit_request, p_.fitfunc_select);
    }

    /// Populate internal slot `idx` (0..7). Unpopulated / external slots
    /// simply never answer on the internal pair.
    void set_slot(std::size_t idx, FemMuxSlot slot) {
        slots_.at(idx) = slot;
        // The slot's answer pair joins the mux's eval() sensitivity.
        if (slot.value != nullptr) sense(*slot.value);
        if (slot.valid != nullptr) sense(*slot.valid);
    }

    void eval() override {
        const std::size_t sel = p_.fitfunc_select.read() & 0x7;
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            const FemMuxSlot& s = slots_[i];
            if (s.request != nullptr) s.request->drive(i == sel && p_.fit_request.read());
        }
        const FemMuxSlot& cur = slots_[sel];
        if (cur.valid != nullptr && cur.value != nullptr) {
            p_.fit_valid.drive(cur.valid->read());
            p_.fit_value.drive(cur.value->read());
        } else {
            p_.fit_valid.drive(false);
            p_.fit_value.drive(0);
        }
    }

private:
    FemMuxPorts p_;
    std::array<FemMuxSlot, kMaxFitnessSlots> slots_{};
};

}  // namespace gaip::fitness
