#include "fitness/fem.hpp"

#include <stdexcept>

namespace gaip::fitness {

RomFitnessModule::RomFitnessModule(std::string name, FemPorts ports,
                                   std::shared_ptr<const mem::BlockRom> rom, FemConfig cfg)
    : Module(std::move(name)), p_(ports), rom_(std::move(rom)), cfg_(cfg) {
    if (!rom_) throw std::invalid_argument("RomFitnessModule: null rom");
    attach_all(state_, addr_, value_, delay_);
    sense();  // eval() reads the FSM/value registers only; the handshake is ticked
}

void RomFitnessModule::eval() {
    const State s = state_.read();
    p_.fit_valid.drive(s == State::kPresent || s == State::kWaitDrop);
    p_.fit_value.drive(value_.read());
}

void RomFitnessModule::tick() {
    switch (state_.read()) {
        case State::kIdle:
            if (p_.fit_request.read()) {
                addr_.load(p_.candidate.read());
                delay_.load(static_cast<std::uint16_t>(cfg_.extra_latency_cycles));
                state_.load(State::kLookup);
            }
            break;
        case State::kLookup:
            if (delay_.read() > 0) {
                delay_.load(static_cast<std::uint16_t>(delay_.read() - 1));
            } else {
                // The synchronous ROM read: one cycle from address to data.
                value_.load(rom_->read(addr_.read() % rom_->depth()));
                state_.load(State::kPresent);
            }
            break;
        case State::kPresent:
            ++evaluations_;
            state_.load(State::kWaitDrop);
            break;
        case State::kWaitDrop:
            if (!p_.fit_request.read()) state_.load(State::kIdle);
            break;
    }
}

}  // namespace gaip::fitness
