#include "fitness/rom_builder.hpp"

#include <array>
#include <mutex>
#include <vector>

namespace gaip::fitness {

std::shared_ptr<const mem::BlockRom> build_fitness_rom(FitnessId id) {
    std::vector<std::uint16_t> words(65536);
    for (std::uint32_t c = 0; c <= 0xFFFFu; ++c)
        words[c] = fitness_u16(id, static_cast<std::uint16_t>(c));
    return std::make_shared<const mem::BlockRom>(std::move(words));
}

std::shared_ptr<const mem::BlockRom> fitness_rom(FitnessId id) {
    static std::array<std::shared_ptr<const mem::BlockRom>, kNumFitnessIds> cache;
    static std::mutex mu;
    const auto idx = static_cast<std::size_t>(id);
    std::lock_guard<std::mutex> lock(mu);
    if (!cache.at(idx)) cache.at(idx) = build_fitness_rom(id);
    return cache.at(idx);
}

}  // namespace gaip::fitness
