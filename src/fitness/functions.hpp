// The optimization test functions of the paper's evaluation, in closed form
// (double) and quantized to the 16-bit unsigned fitness the hardware uses.
//
// RT-level simulation functions (Sec. IV-A):
//   BF6(x)        = (x^2 + x) * cos(x) / 4000000 + 3200          x in [0, 65535]
//   F2(x, y)      = 8x - 4y + 1020                               x, y in [0, 255]
//   F3(x, y)      = 8x + 4y                                      x, y in [0, 255]
// FPGA experiment functions (Sec. IV-B):
//   mBF6_2(x)     = 4096 + ((x^2 + x) * cos(x)) / 2^20           x in [0, 65535]
//   mBF7_2(x, y)  = 32768 + 56 * (x sin(4x) + 1.25 y sin(2y))    x, y in [0, 255]
//   mShubert2D    = 65535 - 174 * (150 + S(x1) + S(x2) + K)      x1, x2 in [0, 255]
//                   with S(x) = sum_{i=1..5} i cos((i+1)x + i)
//
// Angle conventions (the paper does not state them; they are recovered from
// its reported optima):
//   * BF6 / mBF6_2 use DEGREES: the claimed optima (4271 @ x=65522, 8183 @
//     x=65521) and the 360-periodic ripple in Fig. 7 only fit cos in degrees
//     (65522 mod 360 = 2).
//   * mBF7_2 / mShubert2D use RADIANS: 63904 @ (247, 249) matches radians
//     (sin(4*247 rad) ~ +1) and is far off in degrees.
//
// mShubert2D calibration: as printed, 65535 - 174*(150 + S + S) cannot reach
// the stated optimum of 65535 (150 + S(x)+S(y) >= ~121 > 0 always). The
// printed formula is evidently missing an offset; we add the constant K =
// -150 - min(S(x1)+S(x2)) computed over the integer grid, which makes the
// global maximum exactly 65535 while leaving the landscape shape untouched.
// A small additional headroom (saturating the fitness at 65535 over a
// slightly wider plateau) is calibrated so that the number of distinct
// global optima on the grid matches the paper's stated 48 as closely as the
// plateau's pair symmetry permits (we get 49). See DESIGN.md.
//
// Two-variable encodings place x (or x1) in the chromosome's high byte and
// y (x2) in the low byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gaip::fitness {

enum class FitnessId : std::uint8_t {
    kBf6 = 0,
    kF2 = 1,
    kF3 = 2,
    kMBf6_2 = 3,
    kMBf7_2 = 4,
    kMShubert2D = 5,
    kOneMax = 6,      // classic GA sanity function (not in the paper)
    kRoyalRoad = 7,   // block function exercising schema preservation
};

inline constexpr std::size_t kNumFitnessIds = 8;

/// Closed-form (double) evaluations on the raw variables.
double bf6(double x);
double f2(double x, double y);
double f3(double x, double y);
double mbf6_2(double x);
double mbf7_2(double x, double y);
double shubert_sum(double x);   // S(x), radians
double mshubert2d(double x1, double x2);

/// Calibration constant K of mShubert2D (computed once over the u8 grid).
double mshubert_offset();

/// Quantized fitness of a 16-bit chromosome under the given function.
/// This is the exact value the fitness ROM holds at address `chromosome`.
std::uint16_t fitness_u16(FitnessId id, std::uint16_t chromosome);

/// Human-readable name ("mBF6_2", ...).
const std::string& fitness_name(FitnessId id);

/// What the paper states about the function's optimum (for EXPERIMENTS.md
/// comparisons); `paper_best == 0` when the paper gives no value.
struct PaperOptimum {
    std::uint32_t paper_best;
    std::string paper_argmax;  // textual, as printed
};
PaperOptimum paper_optimum(FitnessId id);

/// Exhaustive argmax over the full 16-bit domain (the domain is only 65536
/// points, so the true optimum of the quantized function is computable).
struct GridOptimum {
    std::uint16_t best_value = 0;
    std::uint16_t first_argmax = 0;
    std::size_t argmax_count = 0;
};
GridOptimum grid_optimum(FitnessId id);

/// 32-bit helper functions for the dual-core (Fig. 6) demonstrations.
std::uint16_t onemax32(std::uint32_t x);
std::uint16_t sphere32(std::uint32_t x, std::uint32_t target);

}  // namespace gaip::fitness
