// Fitness evaluation module (FEM): the application-side block that answers
// the GA core's fitness requests over the two-way handshake of Sec. III-B.5:
//
//   core: drives `candidate`, asserts fit_request
//   FEM : looks the candidate up, drives fit_value, asserts fit_valid
//   core: latches fit_value, deasserts fit_request
//   FEM : deasserts fit_valid
//
// RomFitnessModule is the lookup-based implementation the paper uses on the
// FPGA (block ROM populated with precomputed fitness values). It runs in the
// application clock domain (200 MHz in the paper's setup) while the core
// runs at 50 MHz; the four-phase handshake makes the crossing safe.
//
// An FEM "housed on a second FPGA device or some other external device"
// (the paper's external fitness functions) is the same module instantiated
// with a nonzero `extra_latency_cycles` modeling the inter-chip round trip,
// wired to the core's fit_value_ext / fit_valid_ext ports.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "mem/rom.hpp"
#include "rtl/module.hpp"

namespace gaip::fitness {

struct FemPorts {
    rtl::Wire<bool>& fit_request;
    rtl::Wire<std::uint16_t>& candidate;
    rtl::Wire<std::uint16_t>& fit_value;
    rtl::Wire<bool>& fit_valid;
};

struct FemConfig {
    /// Cycles spent in the lookup stage beyond the 1-cycle ROM read. Zero
    /// models an on-chip block-ROM FEM; tens of cycles model an external
    /// (second-chip / second-board) FEM.
    unsigned extra_latency_cycles = 0;
};

class RomFitnessModule final : public rtl::Module {
public:
    RomFitnessModule(std::string name, FemPorts ports,
                     std::shared_ptr<const mem::BlockRom> rom, FemConfig cfg = {});

    void eval() override;
    void tick() override;
    void reset_state() override { evaluations_ = 0; }

    /// Number of fitness requests served since reset (bench metric; this is
    /// a testbench counter, not modeled hardware).
    std::uint64_t evaluations() const noexcept { return evaluations_; }

    const mem::BlockRom& rom() const noexcept { return *rom_; }

private:
    enum class State : std::uint8_t { kIdle = 0, kLookup = 1, kPresent = 2, kWaitDrop = 3 };

    FemPorts p_;
    std::shared_ptr<const mem::BlockRom> rom_;
    FemConfig cfg_;
    std::uint64_t evaluations_ = 0;

    rtl::Reg<State> state_{"fem_state", State::kIdle, 2};
    rtl::Reg<std::uint16_t> addr_{"fem_addr", 0};
    rtl::Reg<std::uint16_t> value_{"fem_value", 0};
    rtl::Reg<std::uint16_t> delay_{"fem_delay", 0};
};

}  // namespace gaip::fitness
