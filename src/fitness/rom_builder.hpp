// Builds the fitness lookup ROMs: one 65536 x 16-bit table per function,
// holding fitness_u16(id, chromosome) at address `chromosome`. This is the
// paper's "lookup-based fitness computation method" (block ROMs populated
// with the fitness values corresponding to each solution encoding).
#pragma once

#include <memory>

#include "fitness/functions.hpp"
#include "mem/rom.hpp"

namespace gaip::fitness {

/// Build (and process-wide cache) the ROM for `id`. The cache means every
/// system in a process — hardware FEMs, software GA, benches — reads the
/// identical table.
std::shared_ptr<const mem::BlockRom> fitness_rom(FitnessId id);

/// Build a fresh ROM without caching (used by tests that mutate tables).
std::shared_ptr<const mem::BlockRom> build_fitness_rom(FitnessId id);

}  // namespace gaip::fitness
