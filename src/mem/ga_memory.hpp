// The GA memory module: a 256 x 32-bit single-port RAM holding both
// populations. Each word packs {fitness[31:16], candidate[15:0]}; the
// address MSB selects the bank (current vs. next population), and the banks
// swap roles every generation (the currPop <-> newPop exchange of Fig. 2).
#pragma once

#include <cstdint>

#include "mem/bram.hpp"

namespace gaip::mem {

inline constexpr std::size_t kGaMemoryDepth = 256;
inline constexpr std::size_t kGaBankSize = 128;
inline constexpr unsigned kGaMemoryDataBits = 32;

/// Pack a candidate and its fitness into one GA-memory word.
constexpr std::uint32_t pack_member(std::uint16_t candidate, std::uint16_t fitness) noexcept {
    return (static_cast<std::uint32_t>(fitness) << 16) | candidate;
}

constexpr std::uint16_t member_candidate(std::uint32_t word) noexcept {
    return static_cast<std::uint16_t>(word & 0xFFFFu);
}

constexpr std::uint16_t member_fitness(std::uint32_t word) noexcept {
    return static_cast<std::uint16_t>(word >> 16);
}

/// Address of slot `idx` in bank `bank` (bank bit = address MSB).
constexpr std::uint8_t bank_address(bool bank, std::uint8_t idx) noexcept {
    return static_cast<std::uint8_t>((bank ? 0x80u : 0x00u) | (idx & 0x7Fu));
}

using GaMemoryPorts = SpRamPorts<std::uint32_t, std::uint8_t>;

class GaMemory final : public SpBlockRam<std::uint32_t, std::uint8_t> {
public:
    explicit GaMemory(GaMemoryPorts ports)
        : SpBlockRam("ga_memory", ports, kGaMemoryDepth, kGaMemoryDataBits) {}

    /// Testbench/monitor helpers (backdoor, not modeled hardware).
    std::uint16_t candidate_at(bool bank, std::uint8_t idx) const {
        return member_candidate(peek(bank_address(bank, idx)));
    }
    std::uint16_t fitness_at(bool bank, std::uint8_t idx) const {
        return member_fitness(peek(bank_address(bank, idx)));
    }
};

}  // namespace gaip::mem
