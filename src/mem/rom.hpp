// Block-ROM model: read-only storage with synchronous, one-cycle-latency
// reads. The paper populates block ROMs with precomputed fitness values
// ("lookup-based fitness computation", Sec. IV-B); RomModule is the clocked
// wrapper the fitness evaluation modules instantiate.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "rtl/module.hpp"

namespace gaip::mem {

/// Immutable ROM contents, shareable between modules (e.g. the software GA
/// baseline and the hardware FEM read the very same table).
class BlockRom {
public:
    explicit BlockRom(std::vector<std::uint16_t> words) : words_(std::move(words)) {}

    std::uint16_t read(std::size_t a) const { return words_.at(a); }
    std::size_t depth() const noexcept { return words_.size(); }
    std::uint64_t storage_bits() const noexcept { return words_.size() * 16ull; }

    const std::vector<std::uint16_t>& words() const noexcept { return words_; }

private:
    std::vector<std::uint16_t> words_;
};

struct RomPorts {
    rtl::Wire<std::uint16_t>& addr;
    rtl::Wire<std::uint16_t>& data_out;
};

class RomModule final : public rtl::Module {
public:
    RomModule(std::string name, RomPorts ports, std::shared_ptr<const BlockRom> rom)
        : Module(std::move(name)), p_(ports), rom_(std::move(rom)) {
        if (!rom_) throw std::invalid_argument("RomModule: null rom");
        attach(dout_reg_);
    }

    void eval() override { p_.data_out.drive(dout_reg_.read()); }

    void tick() override {
        const std::size_t a = p_.addr.read() % rom_->depth();
        dout_reg_.load(rom_->read(a));
    }

    const BlockRom& rom() const noexcept { return *rom_; }

private:
    RomPorts p_;
    std::shared_ptr<const BlockRom> rom_;
    rtl::Reg<std::uint16_t> dout_reg_{"rom_dout", 0};
};

}  // namespace gaip::mem
