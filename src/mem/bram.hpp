// Single-port synchronous block-RAM model.
//
// Mirrors the Xilinx Virtex-II Pro BRAM primitive the paper maps the GA
// memory onto: one port, synchronous read with one cycle of latency,
// write-first behaviour (a write also updates the read register). Memory
// contents are plain storage, not flip-flops — exactly as on the FPGA, the
// array is not part of the scan chain and is counted as BRAM bits (not
// slices) by the resource model.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "rtl/module.hpp"

namespace gaip::mem {

template <typename TData, typename TAddr>
struct SpRamPorts {
    rtl::Wire<TAddr>& addr;
    rtl::Wire<TData>& data_in;
    rtl::Wire<bool>& write;
    rtl::Wire<TData>& data_out;
};

template <typename TData, typename TAddr>
class SpBlockRam : public rtl::Module {
public:
    SpBlockRam(std::string name, SpRamPorts<TData, TAddr> ports, std::size_t depth,
               unsigned data_bits = 8 * sizeof(TData))
        : Module(std::move(name)), p_(ports), mem_(depth, TData{}), data_bits_(data_bits) {
        attach(dout_reg_);
        sense();  // eval() presents the read register only; ports are tick inputs
    }

    void eval() override { p_.data_out.drive(dout_reg_.read()); }

    void tick() override {
        const std::size_t a = static_cast<std::size_t>(p_.addr.read());
        if (a >= mem_.size()) throw std::out_of_range(name() + ": address out of range");
        if (p_.write.read()) {
            mem_[a] = p_.data_in.read();
            dout_reg_.load(p_.data_in.read());  // write-first
        } else {
            dout_reg_.load(mem_[a]);
        }
    }

    void reset_state() override { std::fill(mem_.begin(), mem_.end(), TData{}); }

    /// Backdoor access for testbenches and monitors (like simulator memory
    /// peeking; not reachable from the modeled hardware).
    TData peek(std::size_t a) const { return mem_.at(a); }
    void poke(std::size_t a, TData v) { mem_.at(a) = v; }

    std::size_t depth() const noexcept { return mem_.size(); }
    unsigned data_bits() const noexcept { return data_bits_; }
    std::uint64_t storage_bits() const noexcept {
        return static_cast<std::uint64_t>(mem_.size()) * data_bits_;
    }

private:
    SpRamPorts<TData, TAddr> p_;
    std::vector<TData> mem_;
    unsigned data_bits_;
    rtl::Reg<TData> dout_reg_{"bram_dout", TData{}};
};

}  // namespace gaip::mem
