// Job model of the service plane: what one `submit` frame describes, how it
// is validated/clamped (same semantics as the init handshake), and the
// lifecycle record the daemon keeps per job.
//
// Lifecycle:
//
//            submit                    worker picks up
//   (reject) <----- [queued] ----------------------------> [running]
//                      |  cancel / deadline past              |
//                      v                                      v
//                 [cancelled] / [expired]      [done] / [failed] / [cancelled] / [expired]
//
// Clamp contract: every value with a hardware-register analog follows the
// register path exactly — pop via core::clamp_pop_size (2..128), the 4-bit
// crossover/mutation thresholds masked, seed 0 remapped to 1, migration
// interval/count as the index-6/7 extension registers (count saturating at
// min(16, pop/2)). Structural values — fitness/backend/topology/policy
// names, lane-word width, island count — have no register analog and
// reject with ProtocolError(bad_field) instead.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "core/params.hpp"
#include "fitness/functions.hpp"
#include "island/migration.hpp"
#include "service/protocol.hpp"

namespace gaip::service {

/// Simulation substrate names of the job API (the `backend` field).
enum class JobBackend : std::uint8_t { kRtl = 0, kBehavioral, kGates };

inline const char* job_backend_name(JobBackend b) noexcept {
    switch (b) {
        case JobBackend::kRtl: return "rtl";
        case JobBackend::kBehavioral: return "behavioral";
        case JobBackend::kGates: return "gates";
    }
    return "?";
}

enum class JobState : std::uint8_t {
    kQueued = 0,
    kRunning,
    kDone,
    kFailed,     ///< structural failure while running (message in JobRecord::error)
    kCancelled,  ///< cancel verb honored
    kExpired,    ///< deadline passed before completion
};

inline const char* job_state_name(JobState s) noexcept {
    switch (s) {
        case JobState::kQueued: return "queued";
        case JobState::kRunning: return "running";
        case JobState::kDone: return "done";
        case JobState::kFailed: return "failed";
        case JobState::kCancelled: return "cancelled";
        case JobState::kExpired: return "expired";
    }
    return "?";
}

/// One validated GA job. `params` already carries the EFFECTIVE (clamped)
/// values; `migration` carries the raw register values exactly as the
/// island layer wants them (it applies the same decode+clamp everywhere).
struct JobSpec {
    fitness::FitnessId fn = fitness::FitnessId::kMBf6_2;
    core::GaParameters params{};
    JobBackend backend = JobBackend::kGates;
    unsigned words = 0;    ///< gate lane-block width hint (0/1/2/4/8; 0 = auto)
    unsigned islands = 0;  ///< 0 = single-engine job, >= 1 = island ensemble
    island::Topology topology = island::Topology::kRing;
    island::MigrationConfig migration{};
    bool supervise = false;        ///< run under the mission supervisor
    std::uint64_t deadline_ms = 0; ///< wall deadline from submit (0 = none)

    friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

/// Parse + validate a submit frame. Throws ProtocolError(kBadField /
/// kUnknownField); register-analog values clamp silently (see file
/// comment). The accepted fields are exactly the ones echoed by
/// add_spec_fields().
JobSpec parse_job_spec(const Frame& f);

/// Echo a spec's effective values into a response frame (submit ack,
/// status, list rows) — field names match the submit request schema.
void add_spec_fields(Frame& f, const JobSpec& spec);

/// Resolve a fitness name ("OneMax", "mBF6_2", ...; case-sensitive) or a
/// numeric id 0..7. Throws ProtocolError(kBadField) on unknown names.
fitness::FitnessId fitness_by_name(const std::string& name);

/// Final accounting of a finished (or degraded/aborted) job.
struct JobOutcome {
    std::uint16_t best_fitness = 0;
    std::uint16_t best_candidate = 0;
    std::uint32_t generations = 0;   ///< generations actually evolved
    std::uint64_t evaluations = 0;
    unsigned rollbacks = 0;          ///< supervisor checkpoint restores
    unsigned retries = 0;            ///< supervisor retry attempts
    std::string status;              ///< "ok" / "ok-degraded" / "aborted" (supervised)
};

using Clock = std::chrono::steady_clock;

/// What a cancel request achieved (shared by scheduler and client).
enum class CancelOutcome : std::uint8_t { kNotFound, kTooLate, kCancelled };

/// Everything the daemon knows about one job.
struct JobRecord {
    std::uint64_t id = 0;
    JobSpec spec{};
    JobState state = JobState::kQueued;
    std::string error;       ///< set for kFailed
    JobOutcome outcome{};    ///< valid for kDone
    Clock::time_point submitted{};
    Clock::time_point started{};
    Clock::time_point finished{};
};

/// Status/list row: the record rendered as one frame (verb `job`).
Frame job_frame(const JobRecord& rec);

}  // namespace gaip::service
