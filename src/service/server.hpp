// gaipd's socket front end: a single-threaded poll() loop owning a Unix-
// domain listening socket and every client connection, dispatching one
// control frame per line to the Scheduler (BESS bessd model: one control
// plane thread, N data-plane workers). Responses and live stream events
// are written back on the same connection; a per-connection writer mutex
// lets worker threads interleave streamed trace events with the poll
// thread's frame responses safely.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/scheduler.hpp"
#include "trace/jsonl.hpp"

namespace gaip::service {

struct ServerConfig {
    /// Unix-domain socket path (sockaddr_un limit ~107 bytes — keep it
    /// short and relative). A stale socket file is replaced on bind.
    std::string socket_path = "gaipd.sock";
    SchedulerConfig scheduler{};
    /// JSONL metrics stream path ("" = off): one line per job lifecycle
    /// event (job_submit/job_start/job_done/job_cancel/job_expire/
    /// job_fail/job_reject), same grammar as the telemetry streams.
    std::string metrics_path;
    /// Write-ahead journal directory ("" = durability off). On boot the
    /// daemon replays DIR/journal.jsonl: terminal jobs are restored
    /// (re-reportable via status/list), interrupted jobs are re-admitted
    /// through the normal clamp/reject path and re-run, then the journal
    /// is compacted. Torn/corrupt lines are skipped with a counted
    /// warning, never fatal.
    std::string journal_dir;
    /// Connection caps (overload tier 0). 0 = unlimited.
    std::size_t max_conns = 256;
    /// Per-client (SO_PEERCRED pid) connection cap. 0 = unlimited.
    std::size_t max_conns_per_client = 32;
    /// Per-connection outbound buffer bound. A consumer that falls this
    /// far behind is EVICTED (slow-consumer shedding) — workers never
    /// block on a stalled client socket.
    std::size_t max_outbox_bytes = std::size_t{1} << 20;
    /// Announce the listening socket on stderr.
    bool announce = false;
};

class Server {
public:
    /// Binds + listens and starts the worker pool; throws
    /// std::runtime_error on socket errors.
    explicit Server(ServerConfig cfg);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Serve until stop()/shutdown verb. Call from one thread only.
    void run();

    /// Wake the poll loop and make run() return. Safe from any thread and
    /// from signal handlers (one pipe write).
    void stop() noexcept;

    /// Ask the poll thread to compact/reopen the journal (SIGHUP). Safe
    /// from any thread and from signal handlers (flag + pipe write).
    void request_rotate() noexcept;

    Scheduler& scheduler() noexcept { return *sched_; }
    Journal* journal() noexcept { return journal_.get(); }
    const std::string& socket_path() const noexcept { return cfg_.socket_path; }

private:
    struct Conn;

    void handle_readable(Conn& c);
    void handle_line(Conn& c, const std::string& line);
    void close_conn(Conn& c);
    void accept_conns();
    /// Overload tier 2: drop every stream subscriber (stream_end state
    /// "shed") so job capacity is preserved at the subscribers' expense.
    void shed_streams();
    std::uint64_t retry_after_ms() const;

    ServerConfig cfg_;
    std::unique_ptr<trace::JsonlSink> metrics_;
    std::unique_ptr<Journal> journal_;
    std::unique_ptr<Scheduler> sched_;
    int listen_fd_ = -1;
    int wake_r_ = -1, wake_w_ = -1;  ///< self-pipe for stop()/rotate/flush nudges
    std::atomic<bool> stop_{false};
    std::atomic<bool> rotate_requested_{false};
    bool draining_ = false;  ///< poll thread only: shutdown drain in progress
    std::vector<std::unique_ptr<Conn>> conns_;
    // Robustness counters (reported by `stats`, poll thread only).
    std::uint64_t streams_shed_ = 0;    ///< subscriptions dropped by shedding/eviction
    std::uint64_t slow_evicted_ = 0;    ///< connections evicted on outbox overflow
    std::uint64_t conns_rejected_ = 0;  ///< connection-cap rejections
    std::uint64_t replay_skipped_ = 0;  ///< torn/corrupt journal lines skipped on boot
};

/// In-process daemon — scheduler + server + serving thread — so tests and
/// the throughput bench drive the full socket stack inside one process.
class Daemon {
public:
    explicit Daemon(ServerConfig cfg)
        : server_(std::make_unique<Server>(std::move(cfg))),
          thread_([this] { server_->run(); }) {}
    ~Daemon() { stop(); }

    void stop() {
        if (server_) server_->stop();
        if (thread_.joinable()) thread_.join();
    }

    Scheduler& scheduler() noexcept { return server_->scheduler(); }
    const std::string& socket_path() const noexcept { return server_->socket_path(); }

private:
    std::unique_ptr<Server> server_;
    std::thread thread_;
};

}  // namespace gaip::service
