// Control protocol of the GA-as-a-service daemon (gaipd): newline-delimited
// flat JSON frames over a Unix-domain socket, the software analog of the
// IP core's two-way init handshake. A request is one line —
// `{"verb":"submit","fitness":"OneMax","pop":16,...}` — and every response
// is one line echoing the verb plus an `ok` flag:
//
//   {"verb":"submit","ok":1,"id":3,"pop":16,...}        accepted (effective,
//                                                       clamped values echoed)
//   {"verb":"submit","ok":0,"code":"bad_field","error":"..."}   rejected
//
// The frame body reuses the trace-event field model (trace/event.hpp) and
// the jsonl line grammar (trace/jsonl.cpp), so the daemon's wire format,
// its metrics stream, and the recorded telemetry all parse with the same
// reader. Streamed trace events are distinguished from frames by their
// "kind" key — "kind"/"t"/"cycle" are therefore reserved and rejected in
// requests.
//
// Error-code contract (mirrors the init-handshake discipline): values with
// a hardware-register analog (pop, thresholds, seed, migration interval/
// count) clamp silently and the effective values are echoed back;
// structural errors (unknown verb, unknown field, type mismatch, unknown
// fitness/backend name) are rejected with a structured `code`. See
// docs/GAIPD.md for the full verb reference.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace gaip::service {

/// Hard per-line ceiling (requests and responses). A connection that sends
/// more without a newline is answered with `oversized_frame` and closed.
inline constexpr std::size_t kMaxFrameBytes = 16384;

/// Control verbs. Every entry must be documented in docs/GAIPD.md — the
/// docs drift test walks kVerbs and greps for each name.
namespace verb {
inline constexpr const char* kPing = "ping";          ///< liveness probe
inline constexpr const char* kSubmit = "submit";      ///< enqueue one GA job
inline constexpr const char* kStatus = "status";      ///< inspect one job
inline constexpr const char* kList = "list";          ///< enumerate all jobs
inline constexpr const char* kCancel = "cancel";      ///< cancel a queued/running job
inline constexpr const char* kStream = "stream";      ///< live trace events of one job
inline constexpr const char* kStats = "stats";        ///< aggregate daemon metrics
inline constexpr const char* kShutdown = "shutdown";  ///< stop the daemon
}  // namespace verb

inline constexpr const char* kVerbs[] = {
    verb::kPing,   verb::kSubmit, verb::kStatus,   verb::kList,
    verb::kCancel, verb::kStream, verb::kStats,    verb::kShutdown,
};

/// Structured rejection codes carried in the `code` field of an ok:0 frame.
namespace err {
inline constexpr const char* kBadFrame = "bad_frame";            ///< not a flat JSON object / no verb
inline constexpr const char* kOversized = "oversized_frame";     ///< line exceeds kMaxFrameBytes
inline constexpr const char* kUnknownVerb = "unknown_verb";
inline constexpr const char* kUnknownField = "unknown_field";    ///< strict request validation
inline constexpr const char* kBadField = "bad_field";            ///< wrong type / unknown name value
inline constexpr const char* kQueueFull = "queue_full";          ///< admission control rejection
inline constexpr const char* kNotFound = "not_found";            ///< no such job id
inline constexpr const char* kShuttingDown = "shutting_down";    ///< daemon stopping
inline constexpr const char* kOverloaded = "overloaded";         ///< load shed: retry later
inline constexpr const char* kTooManyConns = "too_many_connections";  ///< per-client/total cap
}  // namespace err

/// Thrown by the parsers/validators; the server turns it into an ok:0
/// frame carrying `code`, the client surfaces it as a remote error.
class ProtocolError : public std::runtime_error {
public:
    ProtocolError(std::string code, const std::string& what)
        : std::runtime_error(what), code_(std::move(code)) {}
    const std::string& code() const noexcept { return code_; }

private:
    std::string code_;
};

/// One control frame: a verb plus a flat ordered field list (the same
/// Field/Value model trace events use).
struct Frame {
    std::string verb;
    std::vector<trace::Field> fields;

    Frame() = default;
    explicit Frame(std::string v) : verb(std::move(v)) {}

    Frame& add(std::string key, std::uint64_t v) {
        fields.push_back({std::move(key), trace::Value{v}});
        return *this;
    }
    Frame& add(std::string key, double v) {
        fields.push_back({std::move(key), trace::Value{v}});
        return *this;
    }
    Frame& add(std::string key, std::string v) {
        fields.push_back({std::move(key), trace::Value{std::move(v)}});
        return *this;
    }
    Frame& add(std::string key, const char* v) { return add(std::move(key), std::string(v)); }

    const trace::Value* find(std::string_view key) const noexcept {
        for (const trace::Field& f : fields)
            if (f.key == key) return &f.value;
        return nullptr;
    }
    bool has(std::string_view key) const noexcept { return find(key) != nullptr; }

    /// Unsigned field with a default; throws ProtocolError(bad_field) when
    /// present with a non-integer payload.
    std::uint64_t u64(std::string_view key, std::uint64_t def = 0) const;
    /// String field with a default; throws ProtocolError(bad_field) when
    /// present with a non-string payload.
    std::string str(std::string_view key, const std::string& def = {}) const;

    bool ok() const noexcept {
        const trace::Value* v = find("ok");
        if (v == nullptr) return false;
        const auto* u = std::get_if<std::uint64_t>(v);
        return u != nullptr && *u != 0;
    }

    friend bool operator==(const Frame&, const Frame&) = default;
};

/// Serialize one frame as a single JSON line (no trailing newline); the
/// verb is always the first key.
std::string to_line(const Frame& f);

/// Parse one request/response line. Throws ProtocolError with code
/// kOversized / kBadFrame. Does NOT validate the verb against kVerbs —
/// the dispatcher owns that (kUnknownVerb).
Frame parse_frame(const std::string& line);

/// True when a received line is a streamed trace event rather than a
/// control frame (events lead with the reserved "kind" key).
bool is_event_line(const std::string& line) noexcept;

/// Canned responses.
Frame ok_frame(const std::string& verb);
Frame error_frame(const std::string& verb, const std::string& code, const std::string& what);

}  // namespace gaip::service
