#include "service/scheduler.hpp"

#include <algorithm>
#include <atomic>

#include "bench/gate_batch_runner.hpp"
#include "core/behavioral.hpp"
#include "island/island.hpp"
#include "island/supervised.hpp"
#include "supervisor/supervisor.hpp"
#include "system/ga_system.hpp"
#include "trace/jsonl.hpp"

namespace gaip::service {

namespace {

supervisor::BackendKind to_supervisor_backend(JobBackend b) noexcept {
    switch (b) {
        case JobBackend::kRtl: return supervisor::BackendKind::kRtl;
        case JobBackend::kBehavioral: return supervisor::BackendKind::kBehavioral;
        case JobBackend::kGates: return supervisor::BackendKind::kGateLane;
    }
    return supervisor::BackendKind::kBehavioral;
}

bool is_terminal(JobState s) noexcept {
    return s != JobState::kQueued && s != JobState::kRunning;
}

/// Gate jobs are packable when nothing job-specific escapes the lane:
/// plain single-engine, unsupervised runs.
bool batchable(const JobSpec& s) noexcept {
    return s.backend == JobBackend::kGates && s.islands == 0 && !s.supervise;
}

}  // namespace

/// One tracked job. Doubles as the job's live-stream hub: engines emit
/// trace events into it and it fans out to every attached client sink
/// (zero-cost when nobody subscribed — the emit sites check streaming()).
struct Scheduler::Job final : trace::TraceSink {
    JobRecord rec;
    Clock::time_point deadline{};  ///< zero when the job has none
    std::atomic<bool> cancel{false};

    std::mutex stream_mu;
    std::vector<trace::TraceSink*> sinks;
    std::vector<std::function<void(const JobRecord&)>> end_cbs;
    std::atomic<unsigned> sink_count{0};
    bool ended = false;  ///< end callbacks fired (guarded by stream_mu)

    bool streaming() const noexcept {
        return sink_count.load(std::memory_order_relaxed) != 0;
    }

    void on_event(const trace::TraceEvent& e) override {
        if (!streaming()) return;
        std::lock_guard<std::mutex> lk(stream_mu);
        for (trace::TraceSink* s : sinks) s->on_event(e);
    }
};

Scheduler::Scheduler(SchedulerConfig cfg) : cfg_(cfg), started_(Clock::now()) {
    if (cfg_.workers == 0) cfg_.workers = 1;
    cfg_.max_batch_lanes =
        std::clamp<unsigned>(cfg_.max_batch_lanes, 1, bench::BatchGateRunner::kMaxLanes);
    runner_cache_.resize(cfg_.workers);
    workers_.reserve(cfg_.workers);
    for (unsigned w = 0; w < cfg_.workers; ++w)
        workers_.emplace_back([this, w] { worker_main(w); });
}

Scheduler::~Scheduler() { stop(); }

bool Scheduler::past_deadline(const JobPtr& j) const {
    return j->deadline != Clock::time_point{} && Clock::now() > j->deadline;
}

void Scheduler::emit_metric(trace::TraceEvent e) {
    if (cfg_.metrics == nullptr) return;
    std::lock_guard<std::mutex> lk(metrics_mu_);
    cfg_.metrics->on_event(e);
    cfg_.metrics->flush();
}

std::uint64_t Scheduler::submit(const JobSpec& spec) {
    JobPtr j;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_ || draining_)
            throw ProtocolError(err::kShuttingDown,
                                draining_ ? "daemon is draining" : "daemon is shutting down");
        if (queue_.size() >= cfg_.max_queue) {
            ++counters_.rejected;
            trace::TraceEvent e("job_reject", 0, 0);
            e.add("queued", std::uint64_t{queue_.size()});
            emit_metric(std::move(e));
            throw ProtocolError(err::kQueueFull,
                                "queue full (" + std::to_string(cfg_.max_queue) + " jobs)");
        }
        j = std::make_shared<Job>();
        j->rec.id = next_id_++;
        j->rec.spec = spec;
        j->rec.submitted = Clock::now();
        if (spec.deadline_ms != 0)
            j->deadline = j->rec.submitted + std::chrono::milliseconds(spec.deadline_ms);
        // Write-ahead: the journal record lands before the job can run (or
        // be acknowledged), so a crash never loses an accepted job.
        if (cfg_.journal != nullptr) cfg_.journal->record_submit(j->rec);
        jobs_[j->rec.id] = j;
        queue_.push_back(j);
        ++counters_.submitted;
    }
    cv_.notify_one();
    trace::TraceEvent e("job_submit", 0, 0);
    e.add("id", j->rec.id);
    e.add("fitness", fitness::fitness_name(spec.fn));
    e.add("backend", job_backend_name(spec.backend));
    if (spec.islands != 0) e.add("islands", std::uint64_t{spec.islands});
    if (spec.supervise) e.add("supervise", std::uint64_t{1});
    emit_metric(std::move(e));
    return j->rec.id;
}

CancelOutcome Scheduler::cancel(std::uint64_t id) {
    JobPtr queued_victim;
    {
        std::lock_guard<std::mutex> lk(mu_);
        const auto it = jobs_.find(id);
        if (it == jobs_.end()) return CancelOutcome::kNotFound;
        JobPtr j = it->second;
        if (is_terminal(j->rec.state)) return CancelOutcome::kTooLate;
        j->cancel.store(true, std::memory_order_relaxed);
        if (j->rec.state == JobState::kQueued) {
            queue_.erase(std::remove(queue_.begin(), queue_.end(), j), queue_.end());
            queued_victim = std::move(j);
        }
    }
    if (queued_victim) finish(queued_victim, JobState::kCancelled, {});
    return CancelOutcome::kCancelled;
}

std::optional<JobRecord> Scheduler::status(std::uint64_t id) const {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return std::nullopt;
    return it->second->rec;
}

std::vector<JobRecord> Scheduler::list() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<JobRecord> out;
    out.reserve(jobs_.size());
    for (const auto& [id, j] : jobs_) out.push_back(j->rec);
    std::sort(out.begin(), out.end(),
              [](const JobRecord& a, const JobRecord& b) { return a.id < b.id; });
    return out;
}

void Scheduler::restore_terminal(const JobRecord& rec) {
    std::lock_guard<std::mutex> lk(mu_);
    auto j = std::make_shared<Job>();
    j->rec = rec;
    {
        std::lock_guard<std::mutex> slk(j->stream_mu);
        j->ended = true;
    }
    jobs_[rec.id] = std::move(j);
    next_id_ = std::max(next_id_, rec.id + 1);
    ++counters_.restored;
}

void Scheduler::readmit(const JobRecord& rec) {
    JobPtr j;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_ || draining_) return;
        j = std::make_shared<Job>();
        j->rec.id = rec.id;
        j->rec.spec = rec.spec;
        j->rec.state = JobState::kQueued;
        j->rec.submitted = Clock::now();
        if (rec.spec.deadline_ms != 0)
            j->deadline = j->rec.submitted + std::chrono::milliseconds(rec.spec.deadline_ms);
        jobs_[j->rec.id] = j;
        queue_.push_back(j);
        next_id_ = std::max(next_id_, rec.id + 1);
        ++counters_.submitted;
        ++counters_.readmitted;
    }
    cv_.notify_one();
    trace::TraceEvent e("job_readmit", 0, 0);
    e.add("id", rec.id);
    e.add("backend", job_backend_name(rec.spec.backend));
    emit_metric(std::move(e));
}

void Scheduler::begin_drain() {
    {
        std::lock_guard<std::mutex> lk(mu_);
        draining_ = true;
    }
    cv_.notify_all();
}

bool Scheduler::draining() const {
    std::lock_guard<std::mutex> lk(mu_);
    return draining_;
}

void Scheduler::wait_drained() {
    std::unique_lock<std::mutex> lk(mu_);
    idle_cv_.wait(lk, [&] { return active_ == 0; });
}

std::size_t Scheduler::queue_depth() const {
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.size();
}

std::uint64_t Scheduler::next_id() const {
    std::lock_guard<std::mutex> lk(mu_);
    return next_id_;
}

ServiceStats Scheduler::stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    ServiceStats s = counters_;
    s.queued = queue_.size();
    s.running = active_;
    s.uptime_s = std::chrono::duration<double>(Clock::now() - started_).count();
    return s;
}

bool Scheduler::attach_stream(std::uint64_t id, trace::TraceSink* sink,
                              std::function<void(const JobRecord&)> on_end) {
    JobPtr j;
    {
        std::lock_guard<std::mutex> lk(mu_);
        const auto it = jobs_.find(id);
        if (it == jobs_.end()) throw ProtocolError(err::kNotFound, "no such job");
        j = it->second;
    }
    std::lock_guard<std::mutex> lk(j->stream_mu);
    if (j->ended) return false;
    if (sink != nullptr) {
        j->sinks.push_back(sink);
        j->sink_count.store(static_cast<unsigned>(j->sinks.size()), std::memory_order_relaxed);
    }
    if (on_end) j->end_cbs.push_back(std::move(on_end));
    return true;
}

void Scheduler::detach_stream(std::uint64_t id, trace::TraceSink* sink) {
    JobPtr j;
    {
        std::lock_guard<std::mutex> lk(mu_);
        const auto it = jobs_.find(id);
        if (it == jobs_.end()) return;
        j = it->second;
    }
    std::lock_guard<std::mutex> lk(j->stream_mu);
    j->sinks.erase(std::remove(j->sinks.begin(), j->sinks.end(), sink), j->sinks.end());
    j->sink_count.store(static_cast<unsigned>(j->sinks.size()), std::memory_order_relaxed);
}

std::size_t Scheduler::expire_overdue() {
    std::vector<JobPtr> victims;
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (auto it = queue_.begin(); it != queue_.end();) {
            const JobPtr& j = *it;
            if (j->deadline != Clock::time_point{} && Clock::now() > j->deadline) {
                victims.push_back(j);
                it = queue_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (const JobPtr& j : victims) finish(j, JobState::kExpired, {});
    return victims.size();
}

void Scheduler::wait_idle() {
    std::unique_lock<std::mutex> lk(mu_);
    idle_cv_.wait(lk, [&] { return queue_.empty() && active_ == 0; });
}

void Scheduler::stop() {
    std::vector<JobPtr> orphans;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_ && workers_.empty()) return;
        stopping_ = true;
        if (!draining_) {
            // Drain mode preserves queued jobs: they stay journaled as
            // pending and are recovered (re-admitted) on the next boot.
            orphans.assign(queue_.begin(), queue_.end());
            queue_.clear();
            for (const auto& [id, j] : jobs_)
                if (j->rec.state == JobState::kRunning)
                    j->cancel.store(true, std::memory_order_relaxed);
        }
    }
    cv_.notify_all();
    for (const JobPtr& j : orphans) finish(j, JobState::kCancelled, {});
    for (std::thread& t : workers_) t.join();
    workers_.clear();
    idle_cv_.notify_all();
}

void Scheduler::finish(const JobPtr& j, JobState state, const JobOutcome& outcome,
                       const std::string& error) {
    JobRecord snapshot;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (is_terminal(j->rec.state)) return;
        j->rec.state = state;
        j->rec.outcome = outcome;
        j->rec.error = error;
        j->rec.finished = Clock::now();
        if (j->rec.started == Clock::time_point{}) j->rec.started = j->rec.finished;
        switch (state) {
            case JobState::kDone: {
                ++counters_.done;
                counters_.gens_total += outcome.generations;
                counters_.evals_total += outcome.evaluations;
                counters_.rollbacks_total += outcome.rollbacks;
                switch (j->rec.spec.backend) {
                    case JobBackend::kRtl: ++counters_.done_rtl; break;
                    case JobBackend::kBehavioral: ++counters_.done_behavioral; break;
                    case JobBackend::kGates: ++counters_.done_gates; break;
                }
                if (j->rec.spec.islands != 0) ++counters_.done_islands;
                if (j->rec.spec.supervise) ++counters_.done_supervised;
                break;
            }
            case JobState::kFailed: ++counters_.failed; break;
            case JobState::kCancelled: ++counters_.cancelled; break;
            case JobState::kExpired:
                ++counters_.expired;
                ++counters_.deadline_misses;
                break;
            default: break;
        }
        // Write-ahead: the terminal record is durable before the end
        // callbacks (and thus any client-visible ack) can observe it.
        if (cfg_.journal != nullptr) cfg_.journal->record_terminal(j->rec);
        snapshot = j->rec;
    }
    const char* metric_kind = "job_done";
    if (state == JobState::kFailed) metric_kind = "job_fail";
    if (state == JobState::kCancelled) metric_kind = "job_cancel";
    if (state == JobState::kExpired) metric_kind = "job_expire";
    trace::TraceEvent e(metric_kind, 0, 0);
    e.add("id", snapshot.id);
    e.add("backend", job_backend_name(snapshot.spec.backend));
    if (state == JobState::kDone) {
        e.add("best_fitness", std::uint64_t{outcome.best_fitness});
        e.add("generations", std::uint64_t{outcome.generations});
        if (!outcome.status.empty()) e.add("status", outcome.status);
    }
    if (!error.empty()) e.add("error", error);
    emit_metric(std::move(e));

    std::vector<std::function<void(const JobRecord&)>> cbs;
    {
        std::lock_guard<std::mutex> lk(j->stream_mu);
        j->ended = true;
        cbs.swap(j->end_cbs);
        j->sinks.clear();
        j->sink_count.store(0, std::memory_order_relaxed);
    }
    for (auto& cb : cbs) cb(snapshot);
}

void Scheduler::worker_main(unsigned worker_idx) {
    for (;;) {
        std::vector<JobPtr> batch;
        JobPtr single;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [&] { return stopping_ || draining_ || !queue_.empty(); });
            // Drain: leave queued jobs where they are (journaled pending).
            if (stopping_ || draining_) return;
            if (queue_.empty()) continue;
            JobPtr j = queue_.front();
            queue_.pop_front();
            if (batchable(j->rec.spec)) {
                batch.push_back(j);
                // Pack more queued gates jobs running the same fitness
                // function into this lane block (queue order preserved for
                // the rest).
                for (auto it = queue_.begin();
                     it != queue_.end() && batch.size() < cfg_.max_batch_lanes;) {
                    if (batchable((*it)->rec.spec) && (*it)->rec.spec.fn == j->rec.spec.fn) {
                        batch.push_back(*it);
                        it = queue_.erase(it);
                    } else {
                        ++it;
                    }
                }
            } else {
                single = j;
            }
            const std::size_t taken = batch.size() + (single ? 1 : 0);
            active_ += taken;
            const auto now = Clock::now();
            for (const JobPtr& t : batch) {
                t->rec.state = JobState::kRunning;
                t->rec.started = now;
                if (cfg_.journal != nullptr) cfg_.journal->record_start(t->rec.id);
            }
            if (single) {
                single->rec.state = JobState::kRunning;
                single->rec.started = now;
                if (cfg_.journal != nullptr) cfg_.journal->record_start(single->rec.id);
            }
        }
        const auto start_metric = [&](const JobPtr& t) {
            trace::TraceEvent e("job_start", 0, 0);
            e.add("id", t->rec.id);
            e.add("backend", job_backend_name(t->rec.spec.backend));
            emit_metric(std::move(e));
        };
        for (const JobPtr& t : batch) start_metric(t);
        if (single) start_metric(single);

        if (!batch.empty()) {
            const std::size_t n = batch.size();
            run_gate_batch(std::move(batch), worker_idx);
            std::lock_guard<std::mutex> lk(mu_);
            active_ -= n;
            if (active_ == 0) idle_cv_.notify_all();  // wait_idle / wait_drained
        }
        if (single) {
            run_single(single, worker_idx);
            std::lock_guard<std::mutex> lk(mu_);
            active_ -= 1;
            if (active_ == 0) idle_cv_.notify_all();
        }
    }
}

void Scheduler::run_single(const JobPtr& j, unsigned worker_idx) {
    try {
        if (j->cancel.load(std::memory_order_relaxed)) {
            finish(j, JobState::kCancelled, {});
            return;
        }
        if (past_deadline(j)) {
            finish(j, JobState::kExpired, {});
            return;
        }
        if (j->rec.spec.islands > 0) {
            run_island_job(j);
        } else if (j->rec.spec.supervise) {
            run_supervised_job(j);
        } else if (j->rec.spec.backend == JobBackend::kBehavioral) {
            run_behavioral_job(j);
        } else if (j->rec.spec.backend == JobBackend::kRtl) {
            run_rtl_job(j);
        } else {
            // Defensive: a gates job that bypassed the packing path runs
            // as a one-lane batch on this worker's cached runner.
            std::vector<JobPtr> batch{j};
            run_gate_batch(std::move(batch), worker_idx);
        }
    } catch (const std::exception& ex) {
        finish(j, JobState::kFailed, {}, ex.what());
    }
}

void Scheduler::run_behavioral_job(const JobPtr& j) {
    const JobSpec& spec = j->rec.spec;
    const fitness::FitnessId fn = spec.fn;
    core::BehavioralEngine eng(
        spec.params, [fn](std::uint16_t c) { return fitness::fitness_u16(fn, c); },
        prng::RngKind::kCellularAutomaton, /*keep_populations=*/false);
    while (!eng.done()) {
        if (j->cancel.load(std::memory_order_relaxed)) {
            finish(j, JobState::kCancelled, {});
            return;
        }
        if (past_deadline(j)) {
            finish(j, JobState::kExpired, {});
            return;
        }
        eng.step_generation();
        if (j->streaming()) {
            trace::TraceEvent e(trace::kind::kGeneration, 0, 0);
            e.add("gen", std::uint64_t{eng.generation()});
            e.add("best_fit", std::uint64_t{eng.best_fitness()});
            e.add("best_ind", std::uint64_t{eng.best_candidate()});
            j->on_event(e);
        }
    }
    JobOutcome out;
    out.best_fitness = eng.best_fitness();
    out.best_candidate = eng.best_candidate();
    out.generations = eng.generation();
    out.evaluations = eng.evaluations();
    if (j->streaming()) {
        trace::TraceEvent e(trace::kind::kDone, 0, 0);
        e.add("best_fit", std::uint64_t{out.best_fitness});
        e.add("best_ind", std::uint64_t{out.best_candidate});
        j->on_event(e);
    }
    finish(j, past_deadline(j) ? JobState::kExpired : JobState::kDone, out);
}

void Scheduler::run_rtl_job(const JobPtr& j) {
    const JobSpec& spec = j->rec.spec;
    system::GaSystemConfig cfg;
    cfg.params = spec.params;
    cfg.internal_fems = {spec.fn};
    cfg.fitfunc_select = 0;
    cfg.keep_populations = false;
    cfg.trace_sink = j.get();
    const core::RunResult r = system::run_ga_system(cfg);
    JobOutcome out;
    out.best_fitness = r.best_fitness;
    out.best_candidate = r.best_candidate;
    out.generations = spec.params.n_gens;
    out.evaluations = r.evaluations;
    if (j->cancel.load(std::memory_order_relaxed)) {
        finish(j, JobState::kCancelled, {});  // arrived mid-run; result discarded
    } else {
        finish(j, past_deadline(j) ? JobState::kExpired : JobState::kDone, out);
    }
}

void Scheduler::run_island_job(const JobPtr& j) {
    const JobSpec& spec = j->rec.spec;
    island::IslandConfig ic;
    ic.fn = spec.fn;
    ic.base = spec.params;
    ic.islands = spec.islands;
    ic.topology = spec.topology;
    ic.migration = spec.migration;
    ic.backend = to_supervisor_backend(spec.backend);
    ic.gate_backend = cfg_.gate_backend;
    ic.words = spec.words;
    ic.sink = j.get();
    JobOutcome out;
    if (spec.supervise) {
        island::SupervisedIslandConfig sc;
        sc.islands = ic;
        sc.sink = j.get();
        island::SupervisedIslandSystem sys(sc);
        const island::SupervisedIslandReport rep = sys.run();
        out.best_fitness = rep.best_fitness;
        out.best_candidate = rep.best_candidate;
        out.generations = spec.params.n_gens;
        out.rollbacks = rep.rollbacks;
        out.status = supervisor::status_name(rep.status);
        for (const island::IslandStats& is : rep.result.islands) out.evaluations += is.evaluations;
        if (rep.status == supervisor::Status::kAborted) {
            finish(j, JobState::kFailed, out, "supervisor abort: " + rep.abort_reason);
            return;
        }
    } else {
        const island::IslandResult r = island::run_island_system(ic);
        out.best_fitness = r.best_fitness;
        out.best_candidate = r.best_candidate;
        out.generations = spec.params.n_gens;
        for (const island::IslandStats& is : r.islands) out.evaluations += is.evaluations;
    }
    if (j->cancel.load(std::memory_order_relaxed)) {
        finish(j, JobState::kCancelled, {});
    } else {
        finish(j, past_deadline(j) ? JobState::kExpired : JobState::kDone, out);
    }
}

void Scheduler::run_supervised_job(const JobPtr& j) {
    const JobSpec& spec = j->rec.spec;
    supervisor::SupervisorConfig sc;
    sc.fn = spec.fn;
    sc.params = spec.params;
    sc.backend = to_supervisor_backend(spec.backend);
    sc.sink = j.get();
    supervisor::MissionSupervisor sup(sc);
    const supervisor::SupervisorReport rep = sup.run();
    JobOutcome out;
    out.best_fitness = rep.best_fitness;
    out.best_candidate = rep.best_candidate;
    out.generations = rep.generations;
    out.rollbacks = rep.rollbacks;
    out.retries = rep.retries;
    out.status = supervisor::status_name(rep.status);
    if (rep.status == supervisor::Status::kAborted) {
        finish(j, JobState::kFailed, out, "supervisor abort: " + rep.abort_reason);
        return;
    }
    if (j->cancel.load(std::memory_order_relaxed)) {
        finish(j, JobState::kCancelled, {});
    } else {
        finish(j, past_deadline(j) ? JobState::kExpired : JobState::kDone, out);
    }
}

void Scheduler::run_gate_batch(std::vector<JobPtr> batch, unsigned worker_idx) {
    // Lane-block width: honor the largest per-job hint, then grow to fit
    // the packed lane count.
    unsigned words = 1;
    for (const JobPtr& j : batch) words = std::max(words, j->rec.spec.words);
    while (std::size_t{words} * bench::BatchGateRunner::kWordBits < batch.size()) words *= 2;

    std::vector<core::GaParameters> lane_params;
    lane_params.reserve(batch.size());
    for (const JobPtr& j : batch) lane_params.push_back(j->rec.spec.params);
    const fitness::FitnessId fn = batch.front()->rec.spec.fn;

    try {
        auto& cache = runner_cache_[worker_idx];
        auto it = cache.find(words);
        if (it == cache.end()) {
            it = cache
                     .emplace(words, std::make_unique<bench::BatchGateRunner>(
                                         fn, lane_params, words, cfg_.gate_backend))
                     .first;
        } else {
            it->second->reconfigure(fn, lane_params);
        }
        bench::BatchGateRunner& runner = *it->second;
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++counters_.gate_batches;
            counters_.gate_lanes += batch.size();
        }
        for (std::size_t k = 0; k < batch.size(); ++k)
            runner.set_lane_sink(static_cast<unsigned>(k), batch[k].get());

        const std::uint64_t bound = runner.default_cycle_bound();
        constexpr std::uint64_t kCheckMask = 2047;  // cancel/deadline window
        runner.begin_run();
        std::size_t pending = batch.size();
        while (pending > 0 && runner.cycles() < bound) {
            pending = runner.step_cycle();
            if ((runner.cycles() & kCheckMask) == 0) {
                bool any_live = false;
                for (const JobPtr& j : batch)
                    if (!j->cancel.load(std::memory_order_relaxed) && !past_deadline(j)) {
                        any_live = true;
                        break;
                    }
                if (!any_live) break;
            }
        }
        for (std::size_t k = 0; k < batch.size(); ++k) {
            const JobPtr& j = batch[k];
            if (j->cancel.load(std::memory_order_relaxed)) {
                finish(j, JobState::kCancelled, {});
                continue;
            }
            if (past_deadline(j)) {
                finish(j, JobState::kExpired, {});
                continue;
            }
            const bench::BatchLaneResult& lr = runner.lane_result(static_cast<unsigned>(k));
            if (!lr.finished) {
                finish(j, JobState::kFailed, {}, "lane did not finish within the cycle bound");
                continue;
            }
            JobOutcome out;
            out.best_fitness = lr.best_fitness;
            out.best_candidate = lr.best_candidate;
            out.generations = lr.generations;
            out.evaluations = lr.evaluations;
            finish(j, JobState::kDone, out);
        }
    } catch (const std::exception& ex) {
        for (const JobPtr& j : batch) finish(j, JobState::kFailed, {}, ex.what());
    }
}

}  // namespace gaip::service
