// Write-ahead job journal of the gaipd service plane: the control-plane
// analog of the supervisor's scan-chain checkpoints. Every job lifecycle
// transition is appended to DIR/journal.jsonl as one CRC-tagged JSONL
// record BEFORE the daemon acts on it, so a crash (power cut, OOM kill,
// `kill -9`) never silently loses a job:
//
//   * finished jobs are restored as terminal records (re-reportable via
//     `status`/`list`);
//   * queued or interrupted jobs are re-admitted through the normal
//     JobSpec clamp/reject path and re-run — specs fully determine runs,
//     so the recovered results are bit-identical to an uninterrupted run.
//
// Record grammar: the trace-event JSONL line format (kind + flat fields)
// with a trailing `"crc":"xxxxxxxx"` field carrying the CRC-32 of the
// line up to (and excluding) the CRC field itself. Replay skips — and
// counts — any line that is torn (no newline / truncated mid-object),
// fails its CRC, or does not validate as a job record; it never throws
// for a corrupt tail, so a journal damaged mid-append still recovers
// every record before the damage.
//
// Rotation is atomic: the live job set is compacted into DIR/journal.tmp
// (submit + terminal records only), fsync'd, and rename(2)'d over the
// journal, so a crash during rotation leaves either the old or the new
// file, never a hybrid. Append failures (ENOSPC, EIO) degrade the journal
// — counted, reported in `stats`, daemon keeps serving — rather than
// taking the service down.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "service/job.hpp"

namespace gaip::service {

/// Journal record kinds. Every entry must be documented in docs/GAIPD.md —
/// the docs drift test walks kJournalKinds and greps for each name.
namespace jkind {
inline constexpr const char* kSubmit = "j_submit";  ///< job admitted (full spec)
inline constexpr const char* kStart = "j_start";    ///< worker picked the job up
inline constexpr const char* kDone = "j_done";      ///< finished (full outcome)
inline constexpr const char* kCancel = "j_cancel";  ///< cancel verb honored
inline constexpr const char* kExpire = "j_expire";  ///< deadline passed
inline constexpr const char* kFail = "j_fail";      ///< engine/structural failure
inline constexpr const char* kRotate = "j_rotate";  ///< compaction header (version, next id)
}  // namespace jkind

inline constexpr const char* kJournalKinds[] = {
    jkind::kSubmit, jkind::kStart, jkind::kDone, jkind::kCancel,
    jkind::kExpire, jkind::kFail,  jkind::kRotate,
};

/// Journal format version carried by every j_rotate header.
inline constexpr std::uint64_t kJournalVersion = 1;

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) of `data` — the tag
/// appended to every journal line.
std::uint32_t crc32(const void* data, std::size_t n) noexcept;

struct JournalStats {
    std::uint64_t records_written = 0;
    std::uint64_t write_errors = 0;  ///< failed appends (ENOSPC, EIO, ...)
    std::uint64_t rotations = 0;
    bool degraded = false;  ///< at least one append failed since open/rotate
};

/// Append-only writer. Thread-safe; every append is CRC-tagged, written
/// with an EINTR-safe full-write loop, and fdatasync'd so an acknowledged
/// record survives `kill -9`. Never throws after construction: I/O errors
/// degrade (see JournalStats), they do not crash the daemon.
class Journal {
public:
    /// Creates `dir` if needed and opens dir/journal.jsonl for append.
    /// Throws std::runtime_error when the directory cannot be created or
    /// the journal cannot be opened at all.
    explicit Journal(std::string dir);
    ~Journal();

    Journal(const Journal&) = delete;
    Journal& operator=(const Journal&) = delete;

    void record_submit(const JobRecord& rec);
    void record_start(std::uint64_t id);
    /// Appends the record matching rec.state (j_done / j_cancel /
    /// j_expire / j_fail); no-op for non-terminal states.
    void record_terminal(const JobRecord& rec);

    /// Atomic compaction: rewrite the journal as one j_rotate header plus
    /// submit (+ terminal) records for `live`, then rename over the old
    /// file and reopen. Also the SIGHUP reopen path.
    void rotate(const std::vector<JobRecord>& live, std::uint64_t next_id);

    JournalStats stats() const;
    const std::string& path() const noexcept { return path_; }
    const std::string& dir() const noexcept { return dir_; }

private:
    void append_line(std::string body);  // adds CRC tag + newline, writes, syncs

    std::string dir_;
    std::string path_;
    mutable std::mutex mu_;
    int fd_ = -1;
    JournalStats stats_{};
};

/// Result of replaying a journal directory.
struct JournalReplay {
    std::vector<JobRecord> terminal;  ///< finished jobs, restorable as-is
    std::vector<JobRecord> pending;   ///< submitted/interrupted — re-admit + re-run
    std::uint64_t max_id = 0;         ///< highest job id seen (id allocation resumes past it)
    std::uint64_t lines_total = 0;
    std::uint64_t lines_skipped = 0;  ///< torn tail, CRC mismatch, unparsable, bad spec
};

/// Replay dir/journal.jsonl. Missing file (or a non-regular file — e.g. a
/// device node after disk-full mitigation games) replays as empty. Specs
/// are re-validated through parse_job_spec (the submit clamp/reject path);
/// records that fail it are skipped and counted, never fatal.
JournalReplay replay_journal(const std::string& dir);

/// The journal spec serialization: every submit-schema field, always
/// present (unlike the response echo, which elides defaults), so
/// parse_job_spec(journal record) reconstructs the spec exactly.
void add_journal_spec_fields(Frame& f, const JobSpec& spec);

}  // namespace gaip::service
