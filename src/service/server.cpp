#include "service/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>

namespace gaip::service {

namespace {

/// Thread-safe line writer over one client fd. Shared between the poll
/// thread (frame responses) and worker threads (streamed events + the
/// stream_end frame), and outlives the connection entry so an end callback
/// firing after close is a safe no-op.
///
/// NEVER blocks: what the non-blocking socket cannot take immediately goes
/// into a bounded outbox the poll thread drains on POLLOUT. A consumer
/// that falls more than the bound behind is marked overflowed — the poll
/// loop evicts it (slow-consumer shedding) instead of letting it wedge a
/// worker thread.
class ConnWriter {
public:
    ConnWriter(int fd, std::size_t max_outbox, int wake_fd)
        : fd_(fd), max_outbox_(max_outbox), wake_fd_(wake_fd) {}

    bool write_line(const std::string& line) {
        std::lock_guard<std::mutex> lk(mu_);
        if (fd_ < 0 || dead_) return false;
        std::string out = line;
        out += '\n';
        std::size_t off = 0;
        if (outbox_.size() == ob_off_) {
            // Outbox empty: send opportunistically (the fast path — a
            // healthy client takes the whole line here).
            while (off < out.size()) {
                const ssize_t n = ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
                if (n < 0) {
                    if (errno == EINTR) continue;
                    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
                    dead_ = true;
                    return false;
                }
                off += static_cast<std::size_t>(n);
            }
            if (off == out.size()) return true;
        }
        if (outbox_.size() - ob_off_ + (out.size() - off) > max_outbox_) {
            dead_ = true;  // slow consumer: evict, never block
            overflowed_ = true;
            return false;
        }
        outbox_.append(out, off, std::string::npos);
        nudge();  // wake the poll loop so it subscribes POLLOUT
        return true;
    }

    /// Poll-thread drain (POLLOUT / periodic). False = connection is dead.
    bool flush() {
        std::lock_guard<std::mutex> lk(mu_);
        if (fd_ < 0 || dead_) return false;
        while (ob_off_ < outbox_.size()) {
            const ssize_t n =
                ::send(fd_, outbox_.data() + ob_off_, outbox_.size() - ob_off_, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR) continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
                dead_ = true;
                return false;
            }
            ob_off_ += static_cast<std::size_t>(n);
        }
        outbox_.clear();
        ob_off_ = 0;
        return true;
    }

    bool wants_flush() const {
        std::lock_guard<std::mutex> lk(mu_);
        return fd_ >= 0 && !dead_ && ob_off_ < outbox_.size();
    }

    void close_fd() {
        std::lock_guard<std::mutex> lk(mu_);
        if (fd_ >= 0) ::close(fd_);
        fd_ = -1;
    }

    bool dead() const {
        std::lock_guard<std::mutex> lk(mu_);
        return dead_ || fd_ < 0;
    }

    bool overflowed() const {
        std::lock_guard<std::mutex> lk(mu_);
        return overflowed_;
    }

private:
    void nudge() noexcept {
        if (wake_fd_ >= 0) {
            const char b = 'f';
            [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &b, 1);
        }
    }

    mutable std::mutex mu_;
    int fd_;
    std::size_t max_outbox_;
    int wake_fd_;
    std::string outbox_;
    std::size_t ob_off_ = 0;  ///< bytes of outbox_ already sent
    bool dead_ = false;
    bool overflowed_ = false;
};

/// Forwards one job's trace events to the client as raw event lines
/// (distinguished from frames by their leading "kind" key).
class ConnStreamSink final : public trace::TraceSink {
public:
    ConnStreamSink(std::shared_ptr<ConnWriter> w) : w_(std::move(w)) {}
    void on_event(const trace::TraceEvent& e) override { w_->write_line(trace::to_json_line(e)); }

private:
    std::shared_ptr<ConnWriter> w_;
};

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

struct Server::Conn {
    int fd = -1;
    pid_t client_pid = 0;  ///< SO_PEERCRED (per-client connection cap key)
    std::string inbuf;
    std::shared_ptr<ConnWriter> writer;
    /// Streams opened on this connection: (job id, sink) pairs detached +
    /// freed at close.
    std::vector<std::pair<std::uint64_t, std::unique_ptr<ConnStreamSink>>> streams;
    bool closing = false;
};

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)) {
    if (!cfg_.metrics_path.empty())
        metrics_ = std::make_unique<trace::JsonlSink>(cfg_.metrics_path);

    // Durability: open the journal and replay the previous life BEFORE the
    // socket exists, so a recovering daemon never acks anything it could
    // still lose.
    JournalReplay replay;
    if (!cfg_.journal_dir.empty()) {
        journal_ = std::make_unique<Journal>(cfg_.journal_dir);
        replay = replay_journal(cfg_.journal_dir);
        replay_skipped_ = replay.lines_skipped;
        if (replay.lines_skipped > 0)
            std::fprintf(stderr,
                         "gaipd: journal replay: skipped %llu of %llu lines "
                         "(torn tail / CRC mismatch / bad record)\n",
                         static_cast<unsigned long long>(replay.lines_skipped),
                         static_cast<unsigned long long>(replay.lines_total));
    }

    SchedulerConfig sc = cfg_.scheduler;
    sc.metrics = metrics_.get();
    sc.journal = journal_.get();
    sched_ = std::make_unique<Scheduler>(sc);

    if (journal_ && replay.lines_total > 0) {
        // Compact around the recovered set FIRST: the snapshot is taken
        // from the replay itself, so terminal records appended by re-run
        // jobs can never race the rename and be lost.
        std::vector<JobRecord> live = replay.terminal;
        live.insert(live.end(), replay.pending.begin(), replay.pending.end());
        journal_->rotate(live, replay.max_id + 1);
    }
    for (const JobRecord& rec : replay.terminal) sched_->restore_terminal(rec);
    for (const JobRecord& rec : replay.pending) sched_->readmit(rec);
    if (cfg_.announce && (!replay.terminal.empty() || !replay.pending.empty()))
        std::fprintf(stderr, "gaipd: journal recovery: %zu terminal restored, %zu re-admitted\n",
                     replay.terminal.size(), replay.pending.size());

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.socket_path.empty() || cfg_.socket_path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("gaipd: socket path empty or longer than " +
                                 std::to_string(sizeof(addr.sun_path) - 1) + " bytes: '" +
                                 cfg_.socket_path + "'");
    std::memcpy(addr.sun_path, cfg_.socket_path.c_str(), cfg_.socket_path.size() + 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("gaipd: socket(): " + std::string(strerror(errno)));
    ::unlink(cfg_.socket_path.c_str());  // replace a stale socket file
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
        const std::string what = strerror(errno);
        ::close(listen_fd_);
        throw std::runtime_error("gaipd: bind(" + cfg_.socket_path + "): " + what);
    }
    if (::listen(listen_fd_, 64) < 0) {
        const std::string what = strerror(errno);
        ::close(listen_fd_);
        ::unlink(cfg_.socket_path.c_str());
        throw std::runtime_error("gaipd: listen(): " + what);
    }
    set_nonblocking(listen_fd_);

    int pipefd[2];
    if (::pipe(pipefd) < 0) {
        ::close(listen_fd_);
        ::unlink(cfg_.socket_path.c_str());
        throw std::runtime_error("gaipd: pipe(): " + std::string(strerror(errno)));
    }
    wake_r_ = pipefd[0];
    wake_w_ = pipefd[1];
    set_nonblocking(wake_r_);

    if (cfg_.announce)
        std::fprintf(stderr, "gaipd: listening on %s (%u workers)\n", cfg_.socket_path.c_str(),
                     cfg_.scheduler.workers == 0 ? 1u : cfg_.scheduler.workers);
}

Server::~Server() {
    stop();
    sched_->stop();
    for (auto& c : conns_) close_conn(*c);
    conns_.clear();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_r_ >= 0) ::close(wake_r_);
    if (wake_w_ >= 0) ::close(wake_w_);
    ::unlink(cfg_.socket_path.c_str());
    if (metrics_) metrics_->flush();
}

void Server::stop() noexcept {
    stop_.store(true, std::memory_order_relaxed);
    if (wake_w_ >= 0) {
        const char b = 'x';
        [[maybe_unused]] const ssize_t n = ::write(wake_w_, &b, 1);
    }
}

void Server::request_rotate() noexcept {
    rotate_requested_.store(true, std::memory_order_relaxed);
    if (wake_w_ >= 0) {
        const char b = 'r';
        [[maybe_unused]] const ssize_t n = ::write(wake_w_, &b, 1);
    }
}

void Server::close_conn(Conn& c) {
    if (c.fd < 0) return;
    for (auto& [id, sink] : c.streams) sched_->detach_stream(id, sink.get());
    c.streams.clear();
    c.writer->close_fd();  // also invalidates the fd for pending stream writes
    c.fd = -1;
    c.closing = true;
}

void Server::accept_conns() {
    for (;;) {
        const int cfd = ::accept(listen_fd_, nullptr, nullptr);
        if (cfd < 0) {
            if (errno == EINTR) continue;
            break;
        }
        set_nonblocking(cfd);

        pid_t pid = 0;
        ucred cred{};
        socklen_t len = sizeof(cred);
        if (::getsockopt(cfd, SOL_SOCKET, SO_PEERCRED, &cred, &len) == 0) pid = cred.pid;

        // Overload tier 0: connection caps. A fresh socket's buffer is
        // empty, so the rejection frame goes out before the close.
        std::size_t total = 0, same_client = 0;
        for (const auto& c : conns_)
            if (c->fd >= 0) {
                ++total;
                if (pid != 0 && c->client_pid == pid) ++same_client;
            }
        const bool over_total = cfg_.max_conns != 0 && total >= cfg_.max_conns;
        const bool over_client =
            cfg_.max_conns_per_client != 0 && same_client >= cfg_.max_conns_per_client;
        if (over_total || over_client) {
            ++conns_rejected_;
            Frame f = error_frame("error", err::kTooManyConns,
                                  over_total ? "connection limit reached"
                                             : "per-client connection limit reached");
            f.add("retry_after_ms", retry_after_ms());
            std::string line = to_line(f);
            line += '\n';
            [[maybe_unused]] const ssize_t n = ::send(cfd, line.data(), line.size(), MSG_NOSIGNAL);
            ::close(cfd);
            continue;
        }

        auto c = std::make_unique<Conn>();
        c->fd = cfd;
        c->client_pid = pid;
        c->writer = std::make_shared<ConnWriter>(cfd, cfg_.max_outbox_bytes, wake_w_);
        conns_.push_back(std::move(c));
    }
}

void Server::run() {
    while (!stop_.load(std::memory_order_relaxed)) {
        std::vector<pollfd> fds;
        fds.push_back({listen_fd_, POLLIN, 0});
        fds.push_back({wake_r_, POLLIN, 0});
        for (const auto& c : conns_)
            if (c->fd >= 0)
                fds.push_back({c->fd,
                               static_cast<short>(POLLIN | (c->writer->wants_flush() ? POLLOUT : 0)),
                               0});

        const int rc = ::poll(fds.data(), fds.size(), 100);
        if (rc < 0 && errno != EINTR) break;

        // Periodic housekeeping: queued jobs whose deadline passed.
        sched_->expire_overdue();

        // SIGHUP (or operator request): compact + reopen the journal.
        if (rotate_requested_.exchange(false, std::memory_order_relaxed) && journal_)
            journal_->rotate(sched_->list(), sched_->next_id());

        if (rc > 0) {
            if (fds[1].revents & POLLIN) {
                char buf[64];
                while (::read(wake_r_, buf, sizeof(buf)) > 0) {
                }
            }
            if (fds[0].revents & POLLIN) accept_conns();
            std::size_t fi = 2;
            for (auto& c : conns_) {
                if (c->fd < 0) continue;
                if (fi < fds.size() && fds[fi].fd == c->fd) {
                    if ((fds[fi].revents & POLLOUT) != 0) c->writer->flush();
                    if ((fds[fi].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
                        handle_readable(*c);
                }
                ++fi;
            }
        }
        // Opportunistic drain for conns that buffered between poll rounds.
        for (auto& c : conns_)
            if (c->fd >= 0 && c->writer->wants_flush()) c->writer->flush();

        // Drop closed / dead-writer connections; an outbox overflow is a
        // slow-consumer eviction and counts the streams it held as shed.
        std::erase_if(conns_, [this](const std::unique_ptr<Conn>& c) {
            if (c->fd >= 0 && c->writer->dead()) {
                if (c->writer->overflowed()) {
                    ++slow_evicted_;
                    streams_shed_ += c->streams.size();
                }
                close_conn(*c);
            }
            return c->fd < 0;
        });

        // Drain shutdown: once every worker went idle, the queued jobs are
        // journaled pending (recovered next boot) and the daemon exits.
        if (draining_ && sched_->stats().running == 0) stop();
    }
}

void Server::handle_readable(Conn& c) {
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
        if (n == 0) {
            close_conn(c);
            return;
        }
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            close_conn(c);
            return;
        }
        c.inbuf.append(buf, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (;;) {
            const std::size_t nl = c.inbuf.find('\n', start);
            if (nl == std::string::npos) break;
            const std::string line = c.inbuf.substr(start, nl - start);
            start = nl + 1;
            if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
            handle_line(c, line);
            if (c.fd < 0) return;
        }
        c.inbuf.erase(0, start);
        // A line refusing to end within the frame ceiling is answered and
        // the connection closed — it can never parse.
        if (c.inbuf.size() > kMaxFrameBytes) {
            c.writer->write_line(to_line(error_frame(
                "error", err::kOversized,
                "line exceeds " + std::to_string(kMaxFrameBytes) + " bytes")));
            close_conn(c);
            return;
        }
    }
}

void Server::handle_line(Conn& c, const std::string& line) {
    Frame req;
    try {
        req = parse_frame(line);
    } catch (const ProtocolError& ex) {
        c.writer->write_line(to_line(error_frame("error", ex.code(), ex.what())));
        return;
    }
    try {
        if (req.verb == verb::kPing) {
            c.writer->write_line(to_line(ok_frame(verb::kPing)));
        } else if (req.verb == verb::kSubmit) {
            const JobSpec spec = parse_job_spec(req);
            const std::uint64_t id = sched_->submit(spec);
            Frame ack = ok_frame(verb::kSubmit);
            ack.add("id", id);
            add_spec_fields(ack, spec);
            c.writer->write_line(to_line(ack));
        } else if (req.verb == verb::kStatus) {
            if (!req.has("id")) throw ProtocolError(err::kBadField, "status wants an 'id'");
            const auto rec = sched_->status(req.u64("id"));
            if (!rec) throw ProtocolError(err::kNotFound, "no such job");
            Frame f = job_frame(*rec);
            f.verb = verb::kStatus;
            c.writer->write_line(to_line(f));
        } else if (req.verb == verb::kList) {
            const std::vector<JobRecord> recs = sched_->list();
            for (const JobRecord& r : recs) c.writer->write_line(to_line(job_frame(r)));
            Frame f = ok_frame(verb::kList);
            f.add("count", std::uint64_t{recs.size()});
            c.writer->write_line(to_line(f));
        } else if (req.verb == verb::kCancel) {
            if (!req.has("id")) throw ProtocolError(err::kBadField, "cancel wants an 'id'");
            const std::uint64_t id = req.u64("id");
            const CancelOutcome out = sched_->cancel(id);
            if (out == CancelOutcome::kNotFound)
                throw ProtocolError(err::kNotFound, "no such job");
            Frame f = ok_frame(verb::kCancel);
            f.add("id", id);
            f.add("cancelled", std::uint64_t{out == CancelOutcome::kCancelled ? 1u : 0u});
            if (const auto rec = sched_->status(id)) f.add("state", job_state_name(rec->state));
            c.writer->write_line(to_line(f));
        } else if (req.verb == verb::kStream) {
            if (!req.has("id")) throw ProtocolError(err::kBadField, "stream wants an 'id'");
            // Overload tier 1: past 75% queue occupancy new stream
            // subscriptions are refused (with a retry hint) — observers
            // are shed before jobs are.
            const std::size_t depth = sched_->queue_depth();
            if (depth * 4 >= sched_->max_queue() * 3)
                throw ProtocolError(err::kOverloaded,
                                    "daemon overloaded (" + std::to_string(depth) +
                                        " queued); no new streams — retry later");
            const std::uint64_t id = req.u64("id");
            auto sink = std::make_unique<ConnStreamSink>(c.writer);
            std::shared_ptr<ConnWriter> w = c.writer;
            const auto on_end = [w, id](const JobRecord& rec) {
                Frame f("stream_end");
                f.add("ok", std::uint64_t{1});
                f.add("id", id);
                f.add("state", job_state_name(rec.state));
                if (rec.state == JobState::kDone) {
                    f.add("best_fitness", std::uint64_t{rec.outcome.best_fitness});
                    f.add("best_candidate", std::uint64_t{rec.outcome.best_candidate});
                    f.add("generations", std::uint64_t{rec.outcome.generations});
                }
                if (!rec.error.empty()) f.add("error", rec.error);
                w->write_line(to_line(f));
            };
            const auto pre = sched_->status(id);
            if (!pre) throw ProtocolError(err::kNotFound, "no such job");
            const bool live =
                pre->state == JobState::kQueued || pre->state == JobState::kRunning;
            // Ack BEFORE attaching: the finishing worker writes stream_end
            // the moment the sink attaches, and the client relies on the
            // ack arriving first.
            Frame ack = ok_frame(verb::kStream);
            ack.add("id", id);
            ack.add("live", std::uint64_t{live ? 1u : 0u});
            c.writer->write_line(to_line(ack));
            if (live && sched_->attach_stream(id, sink.get(), on_end)) {
                c.streams.emplace_back(id, std::move(sink));
            } else {
                // Job already terminal: no events will flow; end the
                // stream immediately with the final record.
                const auto rec = sched_->status(id);
                if (rec) on_end(*rec);
            }
        } else if (req.verb == verb::kStats) {
            const ServiceStats s = sched_->stats();
            Frame f = ok_frame(verb::kStats);
            f.add("submitted", s.submitted);
            f.add("rejected", s.rejected);
            f.add("queued", s.queued);
            f.add("running", s.running);
            f.add("done", s.done);
            f.add("failed", s.failed);
            f.add("cancelled", s.cancelled);
            f.add("expired", s.expired);
            f.add("deadline_misses", s.deadline_misses);
            f.add("gens_total", s.gens_total);
            f.add("evals_total", s.evals_total);
            f.add("rollbacks_total", s.rollbacks_total);
            f.add("done_rtl", s.done_rtl);
            f.add("done_behavioral", s.done_behavioral);
            f.add("done_gates", s.done_gates);
            f.add("done_islands", s.done_islands);
            f.add("done_supervised", s.done_supervised);
            f.add("gate_batches", s.gate_batches);
            f.add("gate_lanes", s.gate_lanes);
            f.add("restored", s.restored);
            f.add("readmitted", s.readmitted);
            f.add("streams_shed", streams_shed_);
            f.add("slow_evicted", slow_evicted_);
            f.add("conns_rejected", conns_rejected_);
            if (journal_) {
                const JournalStats js = journal_->stats();
                f.add("journal_records", js.records_written);
                f.add("journal_write_errors", js.write_errors);
                f.add("journal_rotations", js.rotations);
                f.add("journal_degraded", std::uint64_t{js.degraded ? 1u : 0u});
                f.add("journal_replay_skipped", replay_skipped_);
            }
            f.add("uptime_s", s.uptime_s);
            c.writer->write_line(to_line(f));
        } else if (req.verb == verb::kShutdown) {
            const bool drain = req.u64("drain", 0) != 0;
            Frame ack = ok_frame(verb::kShutdown);
            if (drain) ack.add("drain", std::uint64_t{1});
            c.writer->write_line(to_line(ack));
            if (drain) {
                // Graceful drain: stop admitting, let running jobs finish,
                // leave the queue journaled as pending. The poll loop
                // exits once the workers go idle.
                sched_->begin_drain();
                draining_ = true;
            } else {
                stop();
            }
        } else {
            throw ProtocolError(err::kUnknownVerb, "unknown verb '" + req.verb + "'");
        }
    } catch (const ProtocolError& ex) {
        Frame f = error_frame(req.verb, ex.code(), ex.what());
        const bool overload = ex.code() == err::kQueueFull || ex.code() == err::kOverloaded;
        if (overload) f.add("retry_after_ms", retry_after_ms());
        c.writer->write_line(to_line(f));
        // Overload tier 2: the queue is FULL — shed every stream
        // subscriber so the cycles they cost go to finishing jobs.
        if (ex.code() == err::kQueueFull) shed_streams();
    } catch (const std::exception& ex) {
        c.writer->write_line(to_line(error_frame(req.verb, err::kBadFrame, ex.what())));
    }
}

std::uint64_t Server::retry_after_ms() const {
    // Grows with queue depth so a thundering herd spreads out; bounded so
    // clients never park for more than ~5 s.
    const std::size_t depth = sched_->queue_depth();
    return 100 + 10 * static_cast<std::uint64_t>(std::min<std::size_t>(depth, 490));
}

void Server::shed_streams() {
    for (auto& c : conns_) {
        if (c->fd < 0) continue;
        for (auto& [id, sink] : c->streams) {
            sched_->detach_stream(id, sink.get());
            Frame f("stream_end");
            f.add("ok", std::uint64_t{1});
            f.add("id", id);
            f.add("state", "shed");
            c->writer->write_line(to_line(f));
            ++streams_shed_;
        }
        c->streams.clear();
    }
}

}  // namespace gaip::service
