#include "service/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>

namespace gaip::service {

namespace {

/// How long one write may wait for a stalled client to drain its socket
/// buffer before the connection is declared dead. Generous: a slow reader
/// under CPU contention recovers within milliseconds; only a truly wedged
/// client (stopped process, abandoned fd) burns the full budget.
constexpr int kWriteStallMs = 5000;

/// Thread-safe line writer over one client fd. Shared between the poll
/// thread (frame responses) and worker threads (streamed events + the
/// stream_end frame), and outlives the connection entry so an end callback
/// firing after close is a safe no-op.
class ConnWriter {
public:
    explicit ConnWriter(int fd) : fd_(fd) {}

    bool write_line(const std::string& line) {
        std::lock_guard<std::mutex> lk(mu_);
        if (fd_ < 0) return false;
        std::string out = line;
        out += '\n';
        std::size_t off = 0;
        while (off < out.size()) {
            const ssize_t n = ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR) continue;
                // The fd is non-blocking: a full socket buffer (client
                // briefly descheduled while a worker streams events) is
                // backpressure, not death. Block THIS writer until the
                // client drains or the stall budget says it never will.
                if (errno == EAGAIN || errno == EWOULDBLOCK) {
                    pollfd p{fd_, POLLOUT, 0};
                    if (::poll(&p, 1, kWriteStallMs) > 0 &&
                        (p.revents & (POLLERR | POLLHUP | POLLNVAL)) == 0)
                        continue;
                }
                dead_ = true;
                return false;
            }
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

    void close_fd() {
        std::lock_guard<std::mutex> lk(mu_);
        if (fd_ >= 0) ::close(fd_);
        fd_ = -1;
    }

    bool dead() const {
        std::lock_guard<std::mutex> lk(mu_);
        return dead_ || fd_ < 0;
    }

private:
    mutable std::mutex mu_;
    int fd_;
    bool dead_ = false;
};

/// Forwards one job's trace events to the client as raw event lines
/// (distinguished from frames by their leading "kind" key).
class ConnStreamSink final : public trace::TraceSink {
public:
    ConnStreamSink(std::shared_ptr<ConnWriter> w) : w_(std::move(w)) {}
    void on_event(const trace::TraceEvent& e) override { w_->write_line(trace::to_json_line(e)); }

private:
    std::shared_ptr<ConnWriter> w_;
};

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

struct Server::Conn {
    int fd = -1;
    std::string inbuf;
    std::shared_ptr<ConnWriter> writer;
    /// Streams opened on this connection: (job id, sink) pairs detached +
    /// freed at close.
    std::vector<std::pair<std::uint64_t, std::unique_ptr<ConnStreamSink>>> streams;
    bool closing = false;
};

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)) {
    if (!cfg_.metrics_path.empty())
        metrics_ = std::make_unique<trace::JsonlSink>(cfg_.metrics_path);
    SchedulerConfig sc = cfg_.scheduler;
    sc.metrics = metrics_.get();
    sched_ = std::make_unique<Scheduler>(sc);

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.socket_path.empty() || cfg_.socket_path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("gaipd: socket path empty or longer than " +
                                 std::to_string(sizeof(addr.sun_path) - 1) + " bytes: '" +
                                 cfg_.socket_path + "'");
    std::memcpy(addr.sun_path, cfg_.socket_path.c_str(), cfg_.socket_path.size() + 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("gaipd: socket(): " + std::string(strerror(errno)));
    ::unlink(cfg_.socket_path.c_str());  // replace a stale socket file
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
        const std::string what = strerror(errno);
        ::close(listen_fd_);
        throw std::runtime_error("gaipd: bind(" + cfg_.socket_path + "): " + what);
    }
    if (::listen(listen_fd_, 64) < 0) {
        const std::string what = strerror(errno);
        ::close(listen_fd_);
        ::unlink(cfg_.socket_path.c_str());
        throw std::runtime_error("gaipd: listen(): " + what);
    }
    set_nonblocking(listen_fd_);

    int pipefd[2];
    if (::pipe(pipefd) < 0) {
        ::close(listen_fd_);
        ::unlink(cfg_.socket_path.c_str());
        throw std::runtime_error("gaipd: pipe(): " + std::string(strerror(errno)));
    }
    wake_r_ = pipefd[0];
    wake_w_ = pipefd[1];
    set_nonblocking(wake_r_);

    if (cfg_.announce)
        std::fprintf(stderr, "gaipd: listening on %s (%u workers)\n", cfg_.socket_path.c_str(),
                     cfg_.scheduler.workers == 0 ? 1u : cfg_.scheduler.workers);
}

Server::~Server() {
    stop();
    sched_->stop();
    for (auto& c : conns_) close_conn(*c);
    conns_.clear();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_r_ >= 0) ::close(wake_r_);
    if (wake_w_ >= 0) ::close(wake_w_);
    ::unlink(cfg_.socket_path.c_str());
    if (metrics_) metrics_->flush();
}

void Server::stop() noexcept {
    stop_.store(true, std::memory_order_relaxed);
    if (wake_w_ >= 0) {
        const char b = 'x';
        [[maybe_unused]] const ssize_t n = ::write(wake_w_, &b, 1);
    }
}

void Server::close_conn(Conn& c) {
    if (c.fd < 0) return;
    for (auto& [id, sink] : c.streams) sched_->detach_stream(id, sink.get());
    c.streams.clear();
    c.writer->close_fd();  // also invalidates the fd for pending stream writes
    c.fd = -1;
    c.closing = true;
}

void Server::run() {
    while (!stop_.load(std::memory_order_relaxed)) {
        std::vector<pollfd> fds;
        fds.push_back({listen_fd_, POLLIN, 0});
        fds.push_back({wake_r_, POLLIN, 0});
        for (const auto& c : conns_)
            if (c->fd >= 0) fds.push_back({c->fd, POLLIN, 0});

        const int rc = ::poll(fds.data(), fds.size(), 100);
        if (rc < 0 && errno != EINTR) break;

        // Periodic housekeeping: queued jobs whose deadline passed.
        sched_->expire_overdue();

        if (rc > 0) {
            if (fds[1].revents & POLLIN) {
                char buf[64];
                while (::read(wake_r_, buf, sizeof(buf)) > 0) {
                }
            }
            if (fds[0].revents & POLLIN) {
                for (;;) {
                    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
                    if (cfd < 0) break;
                    set_nonblocking(cfd);
                    auto c = std::make_unique<Conn>();
                    c->fd = cfd;
                    c->writer = std::make_shared<ConnWriter>(cfd);
                    conns_.push_back(std::move(c));
                }
            }
            std::size_t fi = 2;
            for (auto& c : conns_) {
                if (c->fd < 0) continue;
                if (fi < fds.size() && fds[fi].fd == c->fd &&
                    (fds[fi].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
                    handle_readable(*c);
                ++fi;
            }
        }
        // Drop closed / dead-writer connections.
        std::erase_if(conns_, [this](const std::unique_ptr<Conn>& c) {
            if (c->fd >= 0 && c->writer->dead()) close_conn(*c);
            return c->fd < 0;
        });
    }
}

void Server::handle_readable(Conn& c) {
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
        if (n == 0) {
            close_conn(c);
            return;
        }
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            close_conn(c);
            return;
        }
        c.inbuf.append(buf, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (;;) {
            const std::size_t nl = c.inbuf.find('\n', start);
            if (nl == std::string::npos) break;
            const std::string line = c.inbuf.substr(start, nl - start);
            start = nl + 1;
            if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
            handle_line(c, line);
            if (c.fd < 0) return;
        }
        c.inbuf.erase(0, start);
        // A line refusing to end within the frame ceiling is answered and
        // the connection closed — it can never parse.
        if (c.inbuf.size() > kMaxFrameBytes) {
            c.writer->write_line(to_line(error_frame(
                "error", err::kOversized,
                "line exceeds " + std::to_string(kMaxFrameBytes) + " bytes")));
            close_conn(c);
            return;
        }
    }
}

void Server::handle_line(Conn& c, const std::string& line) {
    Frame req;
    try {
        req = parse_frame(line);
    } catch (const ProtocolError& ex) {
        c.writer->write_line(to_line(error_frame("error", ex.code(), ex.what())));
        return;
    }
    try {
        if (req.verb == verb::kPing) {
            c.writer->write_line(to_line(ok_frame(verb::kPing)));
        } else if (req.verb == verb::kSubmit) {
            const JobSpec spec = parse_job_spec(req);
            const std::uint64_t id = sched_->submit(spec);
            Frame ack = ok_frame(verb::kSubmit);
            ack.add("id", id);
            add_spec_fields(ack, spec);
            c.writer->write_line(to_line(ack));
        } else if (req.verb == verb::kStatus) {
            if (!req.has("id")) throw ProtocolError(err::kBadField, "status wants an 'id'");
            const auto rec = sched_->status(req.u64("id"));
            if (!rec) throw ProtocolError(err::kNotFound, "no such job");
            Frame f = job_frame(*rec);
            f.verb = verb::kStatus;
            c.writer->write_line(to_line(f));
        } else if (req.verb == verb::kList) {
            const std::vector<JobRecord> recs = sched_->list();
            for (const JobRecord& r : recs) c.writer->write_line(to_line(job_frame(r)));
            Frame f = ok_frame(verb::kList);
            f.add("count", std::uint64_t{recs.size()});
            c.writer->write_line(to_line(f));
        } else if (req.verb == verb::kCancel) {
            if (!req.has("id")) throw ProtocolError(err::kBadField, "cancel wants an 'id'");
            const std::uint64_t id = req.u64("id");
            const CancelOutcome out = sched_->cancel(id);
            if (out == CancelOutcome::kNotFound)
                throw ProtocolError(err::kNotFound, "no such job");
            Frame f = ok_frame(verb::kCancel);
            f.add("id", id);
            f.add("cancelled", std::uint64_t{out == CancelOutcome::kCancelled ? 1u : 0u});
            if (const auto rec = sched_->status(id)) f.add("state", job_state_name(rec->state));
            c.writer->write_line(to_line(f));
        } else if (req.verb == verb::kStream) {
            if (!req.has("id")) throw ProtocolError(err::kBadField, "stream wants an 'id'");
            const std::uint64_t id = req.u64("id");
            auto sink = std::make_unique<ConnStreamSink>(c.writer);
            std::shared_ptr<ConnWriter> w = c.writer;
            const auto on_end = [w, id](const JobRecord& rec) {
                Frame f("stream_end");
                f.add("ok", std::uint64_t{1});
                f.add("id", id);
                f.add("state", job_state_name(rec.state));
                if (rec.state == JobState::kDone) {
                    f.add("best_fitness", std::uint64_t{rec.outcome.best_fitness});
                    f.add("best_candidate", std::uint64_t{rec.outcome.best_candidate});
                    f.add("generations", std::uint64_t{rec.outcome.generations});
                }
                if (!rec.error.empty()) f.add("error", rec.error);
                w->write_line(to_line(f));
            };
            const auto pre = sched_->status(id);
            if (!pre) throw ProtocolError(err::kNotFound, "no such job");
            const bool live =
                pre->state == JobState::kQueued || pre->state == JobState::kRunning;
            // Ack BEFORE attaching: the finishing worker writes stream_end
            // the moment the sink attaches, and the client relies on the
            // ack arriving first.
            Frame ack = ok_frame(verb::kStream);
            ack.add("id", id);
            ack.add("live", std::uint64_t{live ? 1u : 0u});
            c.writer->write_line(to_line(ack));
            if (live && sched_->attach_stream(id, sink.get(), on_end)) {
                c.streams.emplace_back(id, std::move(sink));
            } else {
                // Job already terminal: no events will flow; end the
                // stream immediately with the final record.
                const auto rec = sched_->status(id);
                if (rec) on_end(*rec);
            }
        } else if (req.verb == verb::kStats) {
            const ServiceStats s = sched_->stats();
            Frame f = ok_frame(verb::kStats);
            f.add("submitted", s.submitted);
            f.add("rejected", s.rejected);
            f.add("queued", s.queued);
            f.add("running", s.running);
            f.add("done", s.done);
            f.add("failed", s.failed);
            f.add("cancelled", s.cancelled);
            f.add("expired", s.expired);
            f.add("deadline_misses", s.deadline_misses);
            f.add("gens_total", s.gens_total);
            f.add("evals_total", s.evals_total);
            f.add("rollbacks_total", s.rollbacks_total);
            f.add("done_rtl", s.done_rtl);
            f.add("done_behavioral", s.done_behavioral);
            f.add("done_gates", s.done_gates);
            f.add("done_islands", s.done_islands);
            f.add("done_supervised", s.done_supervised);
            f.add("gate_batches", s.gate_batches);
            f.add("gate_lanes", s.gate_lanes);
            f.add("uptime_s", s.uptime_s);
            c.writer->write_line(to_line(f));
        } else if (req.verb == verb::kShutdown) {
            c.writer->write_line(to_line(ok_frame(verb::kShutdown)));
            stop();
        } else {
            throw ProtocolError(err::kUnknownVerb, "unknown verb '" + req.verb + "'");
        }
    } catch (const ProtocolError& ex) {
        c.writer->write_line(to_line(error_frame(req.verb, ex.code(), ex.what())));
    } catch (const std::exception& ex) {
        c.writer->write_line(to_line(error_frame(req.verb, err::kBadFrame, ex.what())));
    }
}

}  // namespace gaip::service
