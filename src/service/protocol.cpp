#include "service/protocol.hpp"

#include <cstdio>

#include "trace/jsonl.hpp"

namespace gaip::service {

namespace {

void append_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void append_value(std::string& out, const trace::Value& v) {
    if (const auto* u = std::get_if<std::uint64_t>(&v)) {
        out += std::to_string(*u);
    } else if (const auto* d = std::get_if<double>(&v)) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", *d);
        out += buf;
    } else {
        append_escaped(out, std::get<std::string>(v));
    }
}

}  // namespace

std::uint64_t Frame::u64(std::string_view key, std::uint64_t def) const {
    const trace::Value* v = find(key);
    if (v == nullptr) return def;
    if (const auto* u = std::get_if<std::uint64_t>(v)) return *u;
    throw ProtocolError(err::kBadField, "field '" + std::string(key) + "' wants an unsigned integer");
}

std::string Frame::str(std::string_view key, const std::string& def) const {
    const trace::Value* v = find(key);
    if (v == nullptr) return def;
    if (const auto* s = std::get_if<std::string>(v)) return *s;
    throw ProtocolError(err::kBadField, "field '" + std::string(key) + "' wants a string");
}

std::string to_line(const Frame& f) {
    std::string out = "{\"verb\":";
    append_escaped(out, f.verb);
    for (const trace::Field& fd : f.fields) {
        out += ',';
        append_escaped(out, fd.key);
        out += ':';
        append_value(out, fd.value);
    }
    out += '}';
    return out;
}

Frame parse_frame(const std::string& line) {
    if (line.size() > kMaxFrameBytes)
        throw ProtocolError(err::kOversized, "frame exceeds " + std::to_string(kMaxFrameBytes) +
                                                 " bytes");
    trace::TraceEvent e;
    try {
        e = trace::from_json_line(line);
    } catch (const std::exception& ex) {
        throw ProtocolError(err::kBadFrame, ex.what());
    }
    // "kind"/"t"/"cycle" belong to streamed trace events, never to frames.
    if (!e.kind.empty() || e.t != 0 || e.cycle != 0)
        throw ProtocolError(err::kBadFrame, "reserved trace-event key in control frame");
    Frame f;
    f.fields = std::move(e.fields);
    for (std::size_t i = 0; i < f.fields.size(); ++i) {
        if (f.fields[i].key != "verb") continue;
        const auto* s = std::get_if<std::string>(&f.fields[i].value);
        if (s == nullptr) throw ProtocolError(err::kBadFrame, "'verb' wants a string");
        f.verb = *s;
        f.fields.erase(f.fields.begin() + static_cast<std::ptrdiff_t>(i));
        if (f.find("verb") != nullptr)
            throw ProtocolError(err::kBadFrame, "duplicate 'verb' key");
        return f;
    }
    throw ProtocolError(err::kBadFrame, "missing 'verb' key");
}

bool is_event_line(const std::string& line) noexcept {
    const std::size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos || line[i] != '{') return false;
    const std::size_t j = line.find_first_not_of(" \t", i + 1);
    return j != std::string::npos && line.compare(j, 7, "\"kind\":") == 0;
}

Frame ok_frame(const std::string& verb) {
    Frame f(verb);
    f.add("ok", std::uint64_t{1});
    return f;
}

Frame error_frame(const std::string& verb, const std::string& code, const std::string& what) {
    Frame f(verb);
    f.add("ok", std::uint64_t{0});
    f.add("code", code);
    f.add("error", what);
    return f;
}

}  // namespace gaip::service
