// Thin client of the gaipd control protocol, shared by gaipctl and the
// --daemon paths of gacli / gaip-trace / gaip-supervise. Error taxonomy is
// part of the CLI contract (distinct exit codes so scripts can tell
// "daemon down" from "protocol bug"):
//
//   ConnectError        cannot reach the socket           -> exit 4
//   MalformedResponse   daemon answered garbage / EOF     -> exit 5
//   RemoteError         daemon answered ok:0 + code       -> exit 1 (job error)
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "service/job.hpp"
#include "service/protocol.hpp"
#include "trace/event.hpp"

namespace gaip::service {

/// Connection-refused / socket-gone / send failure.
class ConnectError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// The daemon's reply did not parse as a frame (or the stream ended
/// mid-conversation) — a protocol bug, not an unavailable daemon.
class MalformedResponse : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Structured ok:0 rejection from the daemon.
class RemoteError : public std::runtime_error {
public:
    RemoteError(std::string code, const std::string& what)
        : std::runtime_error(what), code_(std::move(code)) {}
    const std::string& code() const noexcept { return code_; }

private:
    std::string code_;
};

class Client {
public:
    /// Connects immediately; throws ConnectError.
    explicit Client(const std::string& socket_path);
    ~Client();

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /// Send one frame (throws ConnectError on a broken pipe).
    void send(const Frame& f);

    /// Read the next line (control frame or streamed event). Throws
    /// MalformedResponse on EOF.
    std::string read_line();

    /// Read lines until the next control frame, handing streamed trace
    /// events to `on_event` (may be null to discard them). Throws
    /// MalformedResponse on unparseable frames.
    Frame read_frame(const std::function<void(const trace::TraceEvent&)>& on_event = nullptr);

    /// send + read_frame + ok check: throws RemoteError on ok:0.
    Frame rpc(const Frame& req);

    // -- conveniences over the verb set --
    void ping() { rpc(Frame(verb::kPing)); }
    /// Submit a spec; returns the assigned job id.
    std::uint64_t submit(const JobSpec& spec);
    Frame status(std::uint64_t id);
    CancelOutcome cancel(std::uint64_t id);
    Frame stats() { return rpc(Frame(verb::kStats)); }
    void shutdown() { rpc(Frame(verb::kShutdown)); }

    /// Open a stream on `id` and block until stream_end, forwarding every
    /// event line to `on_event` (null = discard). Returns the stream_end
    /// frame (carries final state + result fields).
    Frame stream(std::uint64_t id,
                 const std::function<void(const trace::TraceEvent&)>& on_event = nullptr);

    /// submit + stream: run one job to completion through the daemon and
    /// return its final status frame. Throws RemoteError when the job did
    /// not end in state "done".
    Frame run_job(const JobSpec& spec,
                  const std::function<void(const trace::TraceEvent&)>& on_event = nullptr);

private:
    int fd_ = -1;
    std::string inbuf_;
};

/// Build a submit frame from a spec (field names of docs/GAIPD.md).
Frame submit_frame(const JobSpec& spec);

}  // namespace gaip::service
