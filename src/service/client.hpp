// Thin client of the gaipd control protocol, shared by gaipctl and the
// --daemon paths of gacli / gaip-trace / gaip-supervise. Error taxonomy is
// part of the CLI contract (distinct exit codes so scripts can tell
// "daemon down" from "protocol bug"):
//
//   ConnectError        cannot reach the socket           -> exit 4
//   TimeoutError        per-op deadline elapsed           -> exit 6
//   MalformedResponse   daemon answered garbage / EOF     -> exit 5
//   RemoteError         daemon answered ok:0 + code       -> exit 1 (job error)
//
// Resilience (the supervisor ladder's backoff discipline applied to the
// control plane): Client::dial retries the connect with exponential
// backoff + jitter, every send/recv loop is EINTR-safe, per-op deadlines
// bound how long a wedged daemon can hold a client, and
// stream_with_resume survives a daemon restart mid-stream by
// reconnecting and re-subscribing to the same job id (ids are stable
// across journal recovery).
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "service/job.hpp"
#include "service/protocol.hpp"
#include "trace/event.hpp"

namespace gaip::service {

/// Connection-refused / socket-gone / send failure.
class ConnectError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// A per-op deadline elapsed before the daemon answered. Subclass of
/// ConnectError so policies that treat "daemon unreachable" generically
/// keep working; scripts get a distinct exit code (6).
class TimeoutError : public ConnectError {
public:
    using ConnectError::ConnectError;
};

/// Bounded retry/backoff knobs shared by dial / ping_wait /
/// stream_with_resume. Delay for attempt k (1-based failures) is
/// min(base_ms << (k-1), max_ms), +/- jitter_pct percent of itself.
struct RetryPolicy {
    unsigned attempts = 5;     ///< max consecutive failures before giving up
    unsigned base_ms = 50;     ///< first backoff delay
    unsigned max_ms = 2000;    ///< backoff ceiling
    unsigned jitter_pct = 20;  ///< randomized +/- percentage of the delay
    /// Per-operation deadline (one send, or the wait for the next line).
    /// 0 = wait forever (the pre-resilience behavior).
    std::uint64_t op_deadline_ms = 0;
};

/// The daemon's reply did not parse as a frame (or the stream ended
/// mid-conversation) — a protocol bug, not an unavailable daemon.
class MalformedResponse : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Structured ok:0 rejection from the daemon.
class RemoteError : public std::runtime_error {
public:
    RemoteError(std::string code, const std::string& what)
        : std::runtime_error(what), code_(std::move(code)) {}
    const std::string& code() const noexcept { return code_; }

private:
    std::string code_;
};

class Client {
public:
    /// Connects immediately (one attempt); throws ConnectError. Use dial()
    /// for retry/backoff.
    explicit Client(const std::string& socket_path);
    ~Client();

    /// Connect with bounded exponential backoff + jitter; the returned
    /// client carries the policy's op deadline. Throws the last
    /// ConnectError once policy.attempts consecutive connects failed.
    static Client dial(const std::string& socket_path, const RetryPolicy& policy);

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;
    Client(Client&& other) noexcept;
    Client& operator=(Client&& other) noexcept;

    /// Per-op deadline for subsequent send/read calls (0 = none).
    void set_op_deadline(std::uint64_t ms) noexcept { op_deadline_ms_ = ms; }

    /// Send one frame (throws ConnectError on a broken pipe).
    void send(const Frame& f);

    /// Read the next line (control frame or streamed event). Throws
    /// MalformedResponse on EOF.
    std::string read_line();

    /// Read lines until the next control frame, handing streamed trace
    /// events to `on_event` (may be null to discard them). Throws
    /// MalformedResponse on unparseable frames.
    Frame read_frame(const std::function<void(const trace::TraceEvent&)>& on_event = nullptr);

    /// send + read_frame + ok check: throws RemoteError on ok:0.
    Frame rpc(const Frame& req);

    // -- conveniences over the verb set --
    void ping() { rpc(Frame(verb::kPing)); }
    /// Submit a spec; returns the assigned job id.
    std::uint64_t submit(const JobSpec& spec);
    Frame status(std::uint64_t id);
    CancelOutcome cancel(std::uint64_t id);
    Frame stats() { return rpc(Frame(verb::kStats)); }
    void shutdown() { rpc(Frame(verb::kShutdown)); }

    /// Open a stream on `id` and block until stream_end, forwarding every
    /// event line to `on_event` (null = discard). Returns the stream_end
    /// frame (carries final state + result fields).
    Frame stream(std::uint64_t id,
                 const std::function<void(const trace::TraceEvent&)>& on_event = nullptr);

    /// submit + stream: run one job to completion through the daemon and
    /// return its final status frame. Throws RemoteError when the job did
    /// not end in state "done".
    Frame run_job(const JobSpec& spec,
                  const std::function<void(const trace::TraceEvent&)>& on_event = nullptr);

private:
    /// Wait for the fd to become readable/writable within the op
    /// deadline; throws TimeoutError / ConnectError.
    void wait_io(short events, Clock::time_point deadline);

    int fd_ = -1;
    std::string inbuf_;
    std::uint64_t op_deadline_ms_ = 0;
};

/// Build a submit frame from a spec (field names of docs/GAIPD.md).
Frame submit_frame(const JobSpec& spec);

/// Readiness probe: dial + ping with backoff until the daemon answers or
/// `wait_s` seconds elapse. Returns true on a successful ping. Never
/// throws — an unreachable daemon is the false case, not an error.
bool ping_wait(const std::string& socket_path, double wait_s,
               const RetryPolicy& policy = {}) noexcept;

/// Stream job `id` to completion, surviving daemon restarts and overload
/// sheds: on a lost connection (or a stream_end with state "shed") the
/// stream reconnects with backoff and re-subscribes to the SAME id —
/// journal recovery keeps ids stable, so the resumed stream finishes with
/// the job's real terminal record. Any received event resets the retry
/// budget (progress-based bounding); policy.attempts CONSECUTIVE failures
/// rethrow the last error. RemoteErrors (not_found, ...) are not retried.
Frame stream_with_resume(const std::string& socket_path, std::uint64_t id,
                         const RetryPolicy& policy,
                         const std::function<void(const trace::TraceEvent&)>& on_event = nullptr);

}  // namespace gaip::service
