#include "service/job.hpp"

#include <set>

namespace gaip::service {

fitness::FitnessId fitness_by_name(const std::string& name) {
    for (std::size_t i = 0; i < fitness::kNumFitnessIds; ++i) {
        const auto id = static_cast<fitness::FitnessId>(i);
        if (fitness::fitness_name(id) == name) return id;
    }
    // Numeric ids are accepted too (the 3-bit fitfunc_select view).
    if (!name.empty() && name.find_first_not_of("0123456789") == std::string::npos) {
        const unsigned long v = std::stoul(name);
        if (v < fitness::kNumFitnessIds) return static_cast<fitness::FitnessId>(v);
    }
    throw ProtocolError(err::kBadField, "unknown fitness function '" + name + "'");
}

namespace {

JobBackend backend_by_name(const std::string& name) {
    if (name == "rtl") return JobBackend::kRtl;
    if (name == "behavioral") return JobBackend::kBehavioral;
    if (name == "gates") return JobBackend::kGates;
    throw ProtocolError(err::kBadField,
                        "unknown backend '" + name + "' (rtl|behavioral|gates)");
}

island::Topology topology_by_name(const std::string& name) {
    if (name == "ring") return island::Topology::kRing;
    if (name == "star") return island::Topology::kStar;
    throw ProtocolError(err::kBadField, "unknown topology '" + name + "' (ring|star)");
}

island::ReplacePolicy policy_by_name(const std::string& name) {
    if (name == "worst") return island::ReplacePolicy::kWorst;
    if (name == "random") return island::ReplacePolicy::kRandom;
    throw ProtocolError(err::kBadField, "unknown policy '" + name + "' (worst|random)");
}

/// The submit request schema. Strict: anything else is kUnknownField, so a
/// typo can never silently run a default job.
const std::set<std::string>& known_fields() {
    static const std::set<std::string> k = {
        "fitness", "pop",      "gens",     "xover",  "mut",      "seed",
        "backend", "words",    "islands",  "topology", "interval", "count",
        "policy",  "mig_seed", "supervise", "deadline_ms",
    };
    return k;
}

}  // namespace

JobSpec parse_job_spec(const Frame& f) {
    for (const trace::Field& fd : f.fields)
        if (known_fields().count(fd.key) == 0)
            throw ProtocolError(err::kUnknownField, "unknown field '" + fd.key + "'");

    JobSpec s;
    s.fn = fitness_by_name(f.str("fitness", fitness::fitness_name(s.fn)));
    s.backend = backend_by_name(f.str("backend", "gates"));

    // Register-path values: identical clamps to the init handshake
    // (core::resolve_parameters, preset 0).
    core::GaParameters user;
    user.pop_size = core::clamp_pop_size(
        static_cast<std::uint32_t>(f.u64("pop", core::GaParameters{}.pop_size)));
    const std::uint64_t gens = f.u64("gens", core::GaParameters{}.n_gens);
    user.n_gens = static_cast<std::uint32_t>(gens & 0xFFFFFFFFull);  // 2 x 16-bit registers
    user.xover_threshold =
        static_cast<std::uint8_t>(f.u64("xover", core::GaParameters{}.xover_threshold));
    user.mut_threshold =
        static_cast<std::uint8_t>(f.u64("mut", core::GaParameters{}.mut_threshold));
    user.seed = static_cast<std::uint16_t>(f.u64("seed", core::GaParameters{}.seed) & 0xFFFF);
    s.params = core::resolve_parameters(0, user);

    // Structural values: no register analog, reject instead of clamping.
    const std::uint64_t words = f.u64("words", 0);
    if (words != 0 && words != 1 && words != 2 && words != 4 && words != 8)
        throw ProtocolError(err::kBadField, "words wants 0 (auto), 1, 2, 4 or 8");
    s.words = static_cast<unsigned>(words);
    const std::uint64_t islands = f.u64("islands", 0);
    if (islands > 64)
        throw ProtocolError(err::kBadField, "islands wants 0 (single engine) .. 64");
    s.islands = static_cast<unsigned>(islands);
    s.topology = topology_by_name(f.str("topology", "ring"));

    // Migration extension registers 6/7: raw values carried verbatim; the
    // island layer applies the uniform decode + clamp on every substrate.
    s.migration.interval = static_cast<std::uint16_t>(f.u64("interval", 0) & 0xFFFF);
    s.migration.count = static_cast<std::uint16_t>(f.u64("count", 1) & 0xFFFF);
    s.migration.policy = policy_by_name(f.str("policy", "worst"));
    s.migration.mig_seed =
        static_cast<std::uint16_t>(f.u64("mig_seed", island::MigrationConfig{}.mig_seed) & 0xFFFF);

    const std::uint64_t supervise = f.u64("supervise", 0);
    if (supervise > 1) throw ProtocolError(err::kBadField, "supervise wants 0 or 1");
    s.supervise = supervise != 0;
    s.deadline_ms = f.u64("deadline_ms", 0);

    // The supervised ensemble's checkpoint/rollback machinery is the
    // RT-level scan-chain path (island/supervised.hpp).
    if (s.supervise && s.islands > 0 && s.backend != JobBackend::kRtl)
        throw ProtocolError(err::kBadField,
                            "supervised island jobs require backend 'rtl'");
    return s;
}

void add_spec_fields(Frame& f, const JobSpec& spec) {
    f.add("fitness", fitness::fitness_name(spec.fn));
    f.add("backend", job_backend_name(spec.backend));
    f.add("pop", std::uint64_t{spec.params.pop_size});
    f.add("gens", std::uint64_t{spec.params.n_gens});
    f.add("xover", std::uint64_t{spec.params.xover_threshold});
    f.add("mut", std::uint64_t{spec.params.mut_threshold});
    f.add("seed", std::uint64_t{spec.params.seed});
    if (spec.words != 0) f.add("words", std::uint64_t{spec.words});
    if (spec.islands != 0) {
        f.add("islands", std::uint64_t{spec.islands});
        f.add("topology", island::topology_name(spec.topology));
        // Echo the EFFECTIVE migration config (register decode + clamp
        // against the island subpopulation size).
        const island::MigrationConfig eff = island::clamp_migration(
            island::decode_registers(spec.migration.interval,
                                     island::pack_count_policy(spec.migration)),
            spec.params.pop_size);
        f.add("interval", std::uint64_t{eff.interval});
        f.add("count", std::uint64_t{eff.count});
        f.add("policy", island::policy_name(eff.policy));
    }
    if (spec.supervise) f.add("supervise", std::uint64_t{1});
    if (spec.deadline_ms != 0) f.add("deadline_ms", spec.deadline_ms);
}

Frame job_frame(const JobRecord& rec) {
    Frame f("job");
    f.add("ok", std::uint64_t{1});
    f.add("id", rec.id);
    f.add("state", job_state_name(rec.state));
    add_spec_fields(f, rec.spec);
    if (rec.state == JobState::kDone) {
        f.add("best_fitness", std::uint64_t{rec.outcome.best_fitness});
        f.add("best_candidate", std::uint64_t{rec.outcome.best_candidate});
        f.add("generations", std::uint64_t{rec.outcome.generations});
        f.add("evaluations", rec.outcome.evaluations);
        if (!rec.outcome.status.empty()) f.add("status", rec.outcome.status);
        if (rec.outcome.rollbacks != 0) f.add("rollbacks", std::uint64_t{rec.outcome.rollbacks});
        if (rec.outcome.retries != 0) f.add("retries", std::uint64_t{rec.outcome.retries});
    }
    if (!rec.error.empty()) f.add("error", rec.error);
    if (rec.state != JobState::kQueued) {
        const auto ms = [](Clock::duration d) {
            return static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::milliseconds>(d).count());
        };
        if (rec.finished != Clock::time_point{})
            f.add("run_ms", ms(rec.finished - rec.started));
    }
    return f;
}

}  // namespace gaip::service
