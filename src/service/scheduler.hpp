// Job scheduler of the gaipd service plane: a bounded admission queue in
// front of a pool of pinned worker threads, multiplexing many GA jobs onto
// the engines the repo already has. Scheduling policy (ROADMAP item 1):
//
//   * independent gate-backend jobs are PACKED — a worker drains up to
//     `max_batch_lanes` queued gates jobs sharing one fitness function and
//     runs them as lanes of a single BatchGateRunner lane block, reusing a
//     per-worker cached runner (BatchGateRunner::reconfigure) so the two
//     compiled netlists are paid for once per worker, not once per job;
//   * behavioral jobs run the resumable BehavioralEngine one generation at
//     a time — the cancel/deadline check points;
//   * rtl jobs run a complete system::GaSystem;
//   * island jobs map to island::IslandSystem ensembles (supervised island
//     jobs to SupervisedIslandSystem), supervised jobs to the
//     MissionSupervisor ladder.
//
// Every job's results are bit-identical to running the same spec directly
// through those engines — the scheduler only multiplexes, it never alters
// a job's parameter/seed path (asserted by tests/service/
// test_service_differential.cpp).
//
// Cancellation is cooperative: behavioral jobs stop at the next generation
// boundary, gate batches at the next check window (~2k cycles); monolithic
// rtl/island/supervised runs are cancelled between runs, or their finished
// result is discarded when the flag arrives mid-run. Deadlines follow the
// same checkpoints; a job finishing past its deadline is `expired` and
// counts as a deadline miss.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "gates/compiled.hpp"
#include "service/job.hpp"
#include "service/journal.hpp"
#include "trace/event.hpp"

namespace gaip::bench {
class BatchGateRunner;
}

namespace gaip::service {

struct SchedulerConfig {
    /// Worker threads (0 = one, the single-core container default; the
    /// bench and CI raise it explicitly).
    unsigned workers = 1;
    /// Admission control: submits beyond this many queued jobs are
    /// rejected with `queue_full` instead of growing latency unboundedly.
    std::size_t max_queue = 1024;
    /// Gate-job packing ceiling per batch (<= BatchGateRunner::kMaxLanes).
    unsigned max_batch_lanes = 256;
    /// Evaluation engine for the gate lanes (interpreter / native JIT).
    gates::Backend gate_backend = gates::Backend::kAuto;
    /// Lifecycle metrics stream (job_submit/job_start/job_done/...);
    /// borrowed, may be null. The scheduler serializes its calls.
    trace::TraceSink* metrics = nullptr;
    /// Write-ahead job journal; borrowed, may be null. Every lifecycle
    /// transition is journaled BEFORE it takes effect (submit before the
    /// job enters the queue, terminal before the end callbacks fire).
    Journal* journal = nullptr;
};

/// Aggregate daemon counters (the `stats` verb + the metrics stream).
struct ServiceStats {
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0;   ///< admission-control rejections
    std::uint64_t queued = 0;     ///< currently waiting
    std::uint64_t running = 0;    ///< currently on a worker
    std::uint64_t done = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t expired = 0;
    std::uint64_t deadline_misses = 0;  ///< expiries + late finishes
    std::uint64_t gens_total = 0;       ///< generations evolved by done jobs
    std::uint64_t evals_total = 0;
    std::uint64_t rollbacks_total = 0;  ///< supervisor checkpoint restores
    std::uint64_t done_rtl = 0;
    std::uint64_t done_behavioral = 0;
    std::uint64_t done_gates = 0;
    std::uint64_t done_islands = 0;     ///< subset of the above with islands > 0
    std::uint64_t done_supervised = 0;  ///< subset with supervise = 1
    std::uint64_t gate_batches = 0;     ///< BatchGateRunner launches
    std::uint64_t gate_lanes = 0;       ///< lanes across those launches
    std::uint64_t restored = 0;         ///< terminal jobs recovered from the journal
    std::uint64_t readmitted = 0;       ///< interrupted jobs re-run after recovery
    double uptime_s = 0;
};

class Scheduler {
public:
    explicit Scheduler(SchedulerConfig cfg);
    ~Scheduler();

    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /// Enqueue one validated job; returns its id. Throws
    /// ProtocolError(queue_full | shutting_down).
    std::uint64_t submit(const JobSpec& spec);

    /// Journal recovery, restore side: register a terminal record from a
    /// previous daemon life so `status`/`list` can re-report it. Does not
    /// re-count it in the done/failed/... totals (it was counted when it
    /// ran); tracked as `restored`. Id allocation resumes past it.
    void restore_terminal(const JobRecord& rec);

    /// Journal recovery, re-run side: re-admit an interrupted job with its
    /// ORIGINAL id and re-run it (specs fully determine runs, so the
    /// result is bit-identical to the uninterrupted one). The deadline
    /// clock restarts at re-admission. No journal append — the caller
    /// compacts the journal around recovery.
    void readmit(const JobRecord& rec);

    /// Drain mode (`shutdown` with drain): stop picking up queued jobs and
    /// reject new submits (shutting_down), but let running jobs finish.
    /// Queued jobs stay journaled as pending and are recovered on the next
    /// boot. Follow with wait_drained() + stop().
    void begin_drain();
    bool draining() const;
    /// Block until every worker is idle (queued jobs may remain in drain).
    void wait_drained();

    /// Current queue depth / admission bound (overload-tier decisions).
    std::size_t queue_depth() const;
    std::size_t max_queue() const noexcept { return cfg_.max_queue; }
    /// Next id to be allocated (journal rotation headers).
    std::uint64_t next_id() const;

    /// Cooperative cancel (see file comment).
    CancelOutcome cancel(std::uint64_t id);

    std::optional<JobRecord> status(std::uint64_t id) const;
    std::vector<JobRecord> list() const;
    ServiceStats stats() const;

    /// Attach a live trace sink to a job. Events produced by the job's
    /// engine (generation, island_*, sup_*, ...) are forwarded as they
    /// happen; `on_end` fires once, from the finishing worker thread, when
    /// the job reaches a terminal state. Returns false when the job is
    /// already terminal (caller should answer with the final record
    /// directly). Throws ProtocolError(not_found) for unknown ids.
    bool attach_stream(std::uint64_t id, trace::TraceSink* sink,
                       std::function<void(const JobRecord&)> on_end);
    /// Detach a sink registered by attach_stream (no-op when unknown).
    void detach_stream(std::uint64_t id, trace::TraceSink* sink);

    /// Expire queued jobs whose deadline has passed (server tick calls
    /// this; workers also check at pickup). Returns expired-job count.
    std::size_t expire_overdue();

    /// Block until the queue is empty and every worker is idle.
    void wait_idle();

    /// Stop: reject further submits, cancel queued jobs, flag running
    /// ones, join the workers. Idempotent; the destructor calls it.
    void stop();

private:
    struct Job;
    using JobPtr = std::shared_ptr<Job>;

    void worker_main(unsigned worker_idx);
    void run_single(const JobPtr& j, unsigned worker_idx);
    void run_gate_batch(std::vector<JobPtr> batch, unsigned worker_idx);
    void run_behavioral_job(const JobPtr& j);
    void run_rtl_job(const JobPtr& j);
    void run_island_job(const JobPtr& j);
    void run_supervised_job(const JobPtr& j);

    /// Mark terminal state, update counters, emit metrics, fire stream-end
    /// callbacks. `outcome` only read for kDone.
    void finish(const JobPtr& j, JobState state, const JobOutcome& outcome,
                const std::string& error = {});
    void emit_metric(trace::TraceEvent e);
    bool past_deadline(const JobPtr& j) const;

    SchedulerConfig cfg_;
    Clock::time_point started_;

    mutable std::mutex mu_;
    std::condition_variable cv_;       ///< queue not empty / stopping
    std::condition_variable idle_cv_;  ///< drained (wait_idle)
    std::deque<JobPtr> queue_;
    std::unordered_map<std::uint64_t, JobPtr> jobs_;
    std::uint64_t next_id_ = 1;
    std::size_t active_ = 0;  ///< jobs currently on workers
    bool stopping_ = false;
    bool draining_ = false;  ///< drain mode: no pickups, queued jobs preserved
    ServiceStats counters_{};  ///< terminal-state counters (queued/running derived)

    std::mutex metrics_mu_;

    /// Per-worker gate-runner cache, keyed by lane-block words.
    std::vector<std::unordered_map<unsigned, std::unique_ptr<bench::BatchGateRunner>>> runner_cache_;

    std::vector<std::thread> workers_;
};

}  // namespace gaip::service
