#include "service/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <stdexcept>

#include "trace/jsonl.hpp"

namespace gaip::service {

namespace {

/// EINTR-safe full write (partial writes resumed).
bool write_all(int fd, const char* data, std::size_t n) noexcept {
    std::size_t off = 0;
    while (off < n) {
        const ssize_t w = ::write(fd, data + off, n - off);
        if (w < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        off += static_cast<std::size_t>(w);
    }
    return true;
}

/// Splice the CRC tag into a serialized JSON object:
/// {...} -> {...,"crc":"xxxxxxxx"}\n  with the CRC taken over the
/// original object text.
std::string tag_line(const std::string& body) {
    char tag[32];
    std::snprintf(tag, sizeof(tag), ",\"crc\":\"%08x\"}\n", crc32(body.data(), body.size()));
    std::string out = body;
    out.pop_back();  // closing '}'
    out += tag;
    return out;
}

/// Reverse of tag_line: verify + strip the CRC field. Returns false on a
/// missing tag or mismatch.
bool untag_line(const std::string& line, std::string& body) {
    const std::size_t at = line.rfind(",\"crc\":\"");
    // ,"crc":"xxxxxxxx"}  is 18 chars after `at` (newline already stripped).
    if (at == std::string::npos || line.size() != at + 18 || line.back() != '}') return false;
    const std::string hex = line.substr(at + 8, 8);
    char* end = nullptr;
    const unsigned long want = std::strtoul(hex.c_str(), &end, 16);
    if (end == nullptr || *end != '\0') return false;
    body = line.substr(0, at) + "}";
    return crc32(body.data(), body.size()) == static_cast<std::uint32_t>(want);
}

std::string submit_body(const JobRecord& rec) {
    trace::TraceEvent e(jkind::kSubmit, 0, 0);
    e.add("id", rec.id);
    Frame spec;
    add_journal_spec_fields(spec, rec.spec);
    for (trace::Field& fd : spec.fields) e.fields.push_back(std::move(fd));
    return trace::to_json_line(e);
}

std::string start_body(std::uint64_t id) {
    trace::TraceEvent e(jkind::kStart, 0, 0);
    e.add("id", id);
    return trace::to_json_line(e);
}

const char* terminal_kind(JobState s) noexcept {
    switch (s) {
        case JobState::kDone: return jkind::kDone;
        case JobState::kCancelled: return jkind::kCancel;
        case JobState::kExpired: return jkind::kExpire;
        case JobState::kFailed: return jkind::kFail;
        default: return nullptr;
    }
}

std::string terminal_body(const JobRecord& rec) {
    trace::TraceEvent e(terminal_kind(rec.state), 0, 0);
    e.add("id", rec.id);
    if (rec.state == JobState::kDone) {
        e.add("best_fitness", std::uint64_t{rec.outcome.best_fitness});
        e.add("best_candidate", std::uint64_t{rec.outcome.best_candidate});
        e.add("generations", std::uint64_t{rec.outcome.generations});
        e.add("evaluations", rec.outcome.evaluations);
        e.add("rollbacks", std::uint64_t{rec.outcome.rollbacks});
        e.add("retries", std::uint64_t{rec.outcome.retries});
        if (!rec.outcome.status.empty()) e.add("status", rec.outcome.status);
    }
    if (!rec.error.empty()) e.add("error", rec.error);
    return trace::to_json_line(e);
}

std::string rotate_body(std::uint64_t next_id) {
    trace::TraceEvent e(jkind::kRotate, 0, 0);
    e.add("version", kJournalVersion);
    e.add("next_id", next_id);
    return trace::to_json_line(e);
}

int open_append(const std::string& path) {
    return ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) noexcept {
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1) ? 0xEDB88320u : 0u);
            t[i] = c;
        }
        return t;
    }();
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i) crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xFF];
    return crc ^ 0xFFFFFFFFu;
}

void add_journal_spec_fields(Frame& f, const JobSpec& spec) {
    f.add("fitness", fitness::fitness_name(spec.fn));
    f.add("backend", job_backend_name(spec.backend));
    f.add("pop", std::uint64_t{spec.params.pop_size});
    f.add("gens", std::uint64_t{spec.params.n_gens});
    f.add("xover", std::uint64_t{spec.params.xover_threshold});
    f.add("mut", std::uint64_t{spec.params.mut_threshold});
    f.add("seed", std::uint64_t{spec.params.seed});
    f.add("words", std::uint64_t{spec.words});
    f.add("islands", std::uint64_t{spec.islands});
    f.add("topology", island::topology_name(spec.topology));
    f.add("interval", std::uint64_t{spec.migration.interval});
    f.add("count", std::uint64_t{spec.migration.count});
    f.add("policy", island::policy_name(spec.migration.policy));
    f.add("mig_seed", std::uint64_t{spec.migration.mig_seed});
    f.add("supervise", spec.supervise ? std::uint64_t{1} : std::uint64_t{0});
    f.add("deadline_ms", spec.deadline_ms);
}

Journal::Journal(std::string dir) : dir_(std::move(dir)), path_(dir_ + "/journal.jsonl") {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) throw std::runtime_error("journal: cannot create " + dir_ + ": " + ec.message());
    fd_ = open_append(path_);
    if (fd_ < 0)
        throw std::runtime_error("journal: cannot open " + path_ + ": " +
                                 std::string(strerror(errno)));
}

Journal::~Journal() {
    if (fd_ >= 0) ::close(fd_);
}

void Journal::append_line(std::string body) {
    const std::string line = tag_line(body);
    std::lock_guard<std::mutex> lk(mu_);
    if (fd_ < 0 || !write_all(fd_, line.data(), line.size())) {
        ++stats_.write_errors;
        stats_.degraded = true;
        return;
    }
    // An acknowledged record must survive kill -9 AND a machine crash.
    if (::fdatasync(fd_) < 0 && errno != EINVAL && errno != EROFS) {
        ++stats_.write_errors;
        stats_.degraded = true;
        return;
    }
    ++stats_.records_written;
}

void Journal::record_submit(const JobRecord& rec) { append_line(submit_body(rec)); }

void Journal::record_start(std::uint64_t id) { append_line(start_body(id)); }

void Journal::record_terminal(const JobRecord& rec) {
    if (terminal_kind(rec.state) == nullptr) return;
    append_line(terminal_body(rec));
}

void Journal::rotate(const std::vector<JobRecord>& live, std::uint64_t next_id) {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string tmp = dir_ + "/journal.tmp";
    const int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    const auto fail = [&] {
        if (tfd >= 0) ::close(tfd);
        ::unlink(tmp.c_str());
        ++stats_.write_errors;
        stats_.degraded = true;
    };
    if (tfd < 0) return fail();
    std::string out = tag_line(rotate_body(next_id));
    for (const JobRecord& rec : live) {
        out += tag_line(submit_body(rec));
        if (terminal_kind(rec.state) != nullptr) out += tag_line(terminal_body(rec));
    }
    if (!write_all(tfd, out.data(), out.size()) || ::fsync(tfd) < 0) return fail();
    ::close(tfd);
    if (::rename(tmp.c_str(), path_.c_str()) < 0) {
        ::unlink(tmp.c_str());
        ++stats_.write_errors;
        stats_.degraded = true;
        return;
    }
    // Persist the rename itself, then swing the append fd to the new file.
    if (const int dfd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC); dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
    if (fd_ >= 0) ::close(fd_);
    fd_ = open_append(path_);
    ++stats_.rotations;
    stats_.degraded = fd_ < 0;
    if (fd_ < 0) ++stats_.write_errors;
}

JournalStats Journal::stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

JournalReplay replay_journal(const std::string& dir) {
    JournalReplay out;
    const std::string path = dir + "/journal.jsonl";
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return out;  // first boot: nothing to replay
    struct stat st{};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        ::close(fd);  // device node / fifo: never a journal we wrote
        return out;
    }
    std::string text;
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (n == 0) break;
        text.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);

    std::map<std::uint64_t, JobRecord> jobs;
    std::size_t start = 0;
    while (start < text.size()) {
        const std::size_t nl = text.find('\n', start);
        // A tail without its newline was torn mid-append: skip, count, done.
        const bool torn = nl == std::string::npos;
        const std::string line = text.substr(start, torn ? std::string::npos : nl - start);
        start = torn ? text.size() : nl + 1;
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        ++out.lines_total;
        std::string body;
        trace::TraceEvent e;
        bool ok = !torn && untag_line(line, body);
        if (ok) {
            try {
                e = trace::from_json_line(body);
            } catch (const std::exception&) {
                ok = false;
            }
        }
        if (ok && e.kind == jkind::kRotate) {
            const std::uint64_t next = e.u64("next_id");
            if (next > 0) out.max_id = std::max(out.max_id, next - 1);
            continue;
        }
        if (ok && e.kind == jkind::kSubmit) {
            const std::uint64_t id = e.u64("id");
            Frame f;
            for (trace::Field& fd2 : e.fields)
                if (fd2.key != "id") f.fields.push_back(std::move(fd2));
            try {
                // The recovery admission path IS the submit path: the spec
                // re-validates through the same clamp/reject rules.
                JobRecord rec;
                rec.id = id;
                rec.spec = parse_job_spec(f);
                if (id == 0) throw ProtocolError(err::kBadField, "journal record without id");
                jobs[id] = std::move(rec);
                out.max_id = std::max(out.max_id, id);
            } catch (const std::exception&) {
                ok = false;
            }
        } else if (ok) {
            const std::uint64_t id = e.u64("id");
            const auto it = jobs.find(id);
            if (it == jobs.end()) {
                ok = false;  // lifecycle record for a job we never saw submitted
            } else if (e.kind == jkind::kStart) {
                it->second.state = JobState::kRunning;
            } else if (e.kind == jkind::kDone) {
                it->second.state = JobState::kDone;
                it->second.outcome.best_fitness =
                    static_cast<std::uint16_t>(e.u64("best_fitness"));
                it->second.outcome.best_candidate =
                    static_cast<std::uint16_t>(e.u64("best_candidate"));
                it->second.outcome.generations =
                    static_cast<std::uint32_t>(e.u64("generations"));
                it->second.outcome.evaluations = e.u64("evaluations");
                it->second.outcome.rollbacks = static_cast<unsigned>(e.u64("rollbacks"));
                it->second.outcome.retries = static_cast<unsigned>(e.u64("retries"));
                if (const auto* s = e.find("status"))
                    if (const auto* str = std::get_if<std::string>(s))
                        it->second.outcome.status = *str;
            } else if (e.kind == jkind::kCancel) {
                it->second.state = JobState::kCancelled;
            } else if (e.kind == jkind::kExpire) {
                it->second.state = JobState::kExpired;
            } else if (e.kind == jkind::kFail) {
                it->second.state = JobState::kFailed;
                if (const auto* s = e.find("error"))
                    if (const auto* str = std::get_if<std::string>(s))
                        it->second.error = *str;
            } else {
                ok = false;  // unknown journal kind
            }
        }
        if (!ok) ++out.lines_skipped;
    }

    for (auto& [id, rec] : jobs) {
        if (rec.state == JobState::kQueued || rec.state == JobState::kRunning) {
            rec.state = JobState::kQueued;  // interrupted mid-run: re-run from the spec
            out.pending.push_back(std::move(rec));
        } else {
            out.terminal.push_back(std::move(rec));
        }
    }
    return out;
}

}  // namespace gaip::service
