#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "trace/jsonl.hpp"

namespace gaip::service {

Client::Client(const std::string& socket_path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path))
        throw ConnectError("socket path empty or too long: '" + socket_path + "'");
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw ConnectError("socket(): " + std::string(strerror(errno)));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
        const std::string what = strerror(errno);
        ::close(fd_);
        fd_ = -1;
        throw ConnectError("cannot connect to " + socket_path + ": " + what);
    }
}

Client::~Client() {
    if (fd_ >= 0) ::close(fd_);
}

void Client::send(const Frame& f) {
    std::string out = to_line(f);
    out += '\n';
    std::size_t off = 0;
    while (off < out.size()) {
        const ssize_t n = ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw ConnectError("send(): " + std::string(strerror(errno)));
        }
        off += static_cast<std::size_t>(n);
    }
}

std::string Client::read_line() {
    for (;;) {
        const std::size_t nl = inbuf_.find('\n');
        if (nl != std::string::npos) {
            std::string line = inbuf_.substr(0, nl);
            inbuf_.erase(0, nl + 1);
            if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
            return line;
        }
        char buf[4096];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n == 0) throw MalformedResponse("connection closed mid-conversation");
        if (n < 0) {
            if (errno == EINTR) continue;
            throw ConnectError("recv(): " + std::string(strerror(errno)));
        }
        inbuf_.append(buf, static_cast<std::size_t>(n));
    }
}

Frame Client::read_frame(const std::function<void(const trace::TraceEvent&)>& on_event) {
    for (;;) {
        const std::string line = read_line();
        if (is_event_line(line)) {
            if (on_event) {
                try {
                    on_event(trace::from_json_line(line));
                } catch (const std::exception& ex) {
                    throw MalformedResponse("bad event line: " + std::string(ex.what()));
                }
            }
            continue;
        }
        try {
            return parse_frame(line);
        } catch (const std::exception& ex) {
            throw MalformedResponse("bad response frame: " + std::string(ex.what()));
        }
    }
}

Frame Client::rpc(const Frame& req) {
    send(req);
    Frame resp = read_frame();
    if (!resp.ok()) throw RemoteError(resp.str("code", "error"), resp.str("error", "rejected"));
    return resp;
}

Frame submit_frame(const JobSpec& spec) {
    Frame f(verb::kSubmit);
    f.add("fitness", fitness::fitness_name(spec.fn));
    f.add("backend", job_backend_name(spec.backend));
    f.add("pop", std::uint64_t{spec.params.pop_size});
    f.add("gens", std::uint64_t{spec.params.n_gens});
    f.add("xover", std::uint64_t{spec.params.xover_threshold});
    f.add("mut", std::uint64_t{spec.params.mut_threshold});
    f.add("seed", std::uint64_t{spec.params.seed});
    if (spec.words != 0) f.add("words", std::uint64_t{spec.words});
    if (spec.islands != 0) {
        f.add("islands", std::uint64_t{spec.islands});
        f.add("topology", island::topology_name(spec.topology));
        f.add("interval", std::uint64_t{spec.migration.interval});
        f.add("count", std::uint64_t{spec.migration.count});
        f.add("policy", island::policy_name(spec.migration.policy));
        f.add("mig_seed", std::uint64_t{spec.migration.mig_seed});
    }
    if (spec.supervise) f.add("supervise", std::uint64_t{1});
    if (spec.deadline_ms != 0) f.add("deadline_ms", spec.deadline_ms);
    return f;
}

std::uint64_t Client::submit(const JobSpec& spec) {
    const Frame ack = rpc(submit_frame(spec));
    if (!ack.has("id")) throw MalformedResponse("submit ack carries no id");
    return ack.u64("id");
}

Frame Client::status(std::uint64_t id) {
    Frame req(verb::kStatus);
    req.add("id", id);
    return rpc(req);
}

CancelOutcome Client::cancel(std::uint64_t id) {
    Frame req(verb::kCancel);
    req.add("id", id);
    try {
        const Frame resp = rpc(req);
        return resp.u64("cancelled") != 0 ? CancelOutcome::kCancelled : CancelOutcome::kTooLate;
    } catch (const RemoteError& ex) {
        if (ex.code() == err::kNotFound) return CancelOutcome::kNotFound;
        throw;
    }
}

Frame Client::stream(std::uint64_t id,
                     const std::function<void(const trace::TraceEvent&)>& on_event) {
    Frame req(verb::kStream);
    req.add("id", id);
    send(req);
    // Ack first (events may already interleave), then events until
    // stream_end.
    Frame ack = read_frame(on_event);
    if (!ack.ok()) throw RemoteError(ack.str("code", "error"), ack.str("error", "rejected"));
    for (;;) {
        Frame f = read_frame(on_event);
        if (f.verb == "stream_end") return f;
        // Any other interleaved control frame on this connection is a
        // protocol violation from our point of view.
        throw MalformedResponse("unexpected '" + f.verb + "' frame inside a stream");
    }
}

Frame Client::run_job(const JobSpec& spec,
                      const std::function<void(const trace::TraceEvent&)>& on_event) {
    const std::uint64_t id = submit(spec);
    const Frame end = stream(id, on_event);
    const Frame final_status = status(id);
    if (final_status.str("state") != "done")
        throw RemoteError("job_" + final_status.str("state", "unknown"),
                          "job " + std::to_string(id) + " ended " +
                              final_status.str("state", "unknown") +
                              (final_status.has("error") ? ": " + final_status.str("error") : ""));
    return final_status;
}

}  // namespace gaip::service
