#include "service/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <thread>

#include "trace/jsonl.hpp"

namespace gaip::service {

namespace {

/// Backoff delay for the k-th consecutive failure (k >= 1): exponential
/// from base_ms, capped at max_ms, +/- jitter_pct percent so a herd of
/// retrying clients spreads out instead of reconnecting in lockstep.
std::uint64_t backoff_delay_ms(const RetryPolicy& p, unsigned failures) {
    std::uint64_t d = p.base_ms == 0 ? 1 : p.base_ms;
    for (unsigned i = 1; i < failures && d < p.max_ms; ++i) d *= 2;
    d = std::min<std::uint64_t>(d, std::max(1u, p.max_ms));
    if (p.jitter_pct > 0) {
        static thread_local std::minstd_rand rng(static_cast<unsigned>(
            std::chrono::steady_clock::now().time_since_epoch().count() ^ ::getpid()));
        const std::uint64_t span = d * p.jitter_pct / 100;
        if (span > 0) d = d - span + rng() % (2 * span + 1);
    }
    return d;
}

void sleep_ms(std::uint64_t ms) { std::this_thread::sleep_for(std::chrono::milliseconds(ms)); }

}  // namespace

Client::Client(const std::string& socket_path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path))
        throw ConnectError("socket path empty or too long: '" + socket_path + "'");
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw ConnectError("socket(): " + std::string(strerror(errno)));
    for (;;) {
        if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) break;
        // A signal can interrupt connect() with the handshake still in
        // flight; retrying then reports EISCONN, which is success.
        if (errno == EINTR) continue;
        if (errno == EISCONN) break;
        const std::string what = strerror(errno);
        ::close(fd_);
        fd_ = -1;
        throw ConnectError("cannot connect to " + socket_path + ": " + what);
    }
}

Client::~Client() {
    if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), inbuf_(std::move(other.inbuf_)), op_deadline_ms_(other.op_deadline_ms_) {
    other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) ::close(fd_);
        fd_ = other.fd_;
        other.fd_ = -1;
        inbuf_ = std::move(other.inbuf_);
        op_deadline_ms_ = other.op_deadline_ms_;
    }
    return *this;
}

Client Client::dial(const std::string& socket_path, const RetryPolicy& policy) {
    const unsigned attempts = std::max(1u, policy.attempts);
    for (unsigned k = 1;; ++k) {
        try {
            Client c(socket_path);
            c.set_op_deadline(policy.op_deadline_ms);
            return c;
        } catch (const ConnectError&) {
            if (k >= attempts) throw;
        }
        sleep_ms(backoff_delay_ms(policy, k));
    }
}

void Client::wait_io(short events, Clock::time_point deadline) {
    for (;;) {
        int timeout = -1;
        if (op_deadline_ms_ != 0) {
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now())
                    .count();
            if (left <= 0)
                throw TimeoutError("operation deadline (" + std::to_string(op_deadline_ms_) +
                                   " ms) elapsed");
            timeout = static_cast<int>(left);
        }
        pollfd p{fd_, events, 0};
        const int rc = ::poll(&p, 1, timeout);
        if (rc < 0) {
            if (errno == EINTR) continue;
            throw ConnectError("poll(): " + std::string(strerror(errno)));
        }
        if (rc == 0) continue;  // re-checks the deadline
        if ((p.revents & (POLLERR | POLLNVAL)) != 0) throw ConnectError("socket error");
        return;  // ready (POLLHUP included: let recv observe the EOF)
    }
}

void Client::send(const Frame& f) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(op_deadline_ms_);
    std::string out = to_line(f);
    out += '\n';
    std::size_t off = 0;
    while (off < out.size()) {
        if (op_deadline_ms_ != 0) wait_io(POLLOUT, deadline);
        const ssize_t n = ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                wait_io(POLLOUT, deadline);
                continue;
            }
            throw ConnectError("send(): " + std::string(strerror(errno)));
        }
        off += static_cast<std::size_t>(n);
    }
}

std::string Client::read_line() {
    const auto deadline = Clock::now() + std::chrono::milliseconds(op_deadline_ms_);
    for (;;) {
        const std::size_t nl = inbuf_.find('\n');
        if (nl != std::string::npos) {
            std::string line = inbuf_.substr(0, nl);
            inbuf_.erase(0, nl + 1);
            if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
            return line;
        }
        if (op_deadline_ms_ != 0) wait_io(POLLIN, deadline);
        char buf[4096];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n == 0) throw MalformedResponse("connection closed mid-conversation");
        if (n < 0) {
            if (errno == EINTR) continue;
            throw ConnectError("recv(): " + std::string(strerror(errno)));
        }
        inbuf_.append(buf, static_cast<std::size_t>(n));
    }
}

Frame Client::read_frame(const std::function<void(const trace::TraceEvent&)>& on_event) {
    for (;;) {
        const std::string line = read_line();
        if (is_event_line(line)) {
            if (on_event) {
                try {
                    on_event(trace::from_json_line(line));
                } catch (const std::exception& ex) {
                    throw MalformedResponse("bad event line: " + std::string(ex.what()));
                }
            }
            continue;
        }
        try {
            return parse_frame(line);
        } catch (const std::exception& ex) {
            throw MalformedResponse("bad response frame: " + std::string(ex.what()));
        }
    }
}

Frame Client::rpc(const Frame& req) {
    send(req);
    Frame resp = read_frame();
    if (!resp.ok()) throw RemoteError(resp.str("code", "error"), resp.str("error", "rejected"));
    return resp;
}

Frame submit_frame(const JobSpec& spec) {
    Frame f(verb::kSubmit);
    f.add("fitness", fitness::fitness_name(spec.fn));
    f.add("backend", job_backend_name(spec.backend));
    f.add("pop", std::uint64_t{spec.params.pop_size});
    f.add("gens", std::uint64_t{spec.params.n_gens});
    f.add("xover", std::uint64_t{spec.params.xover_threshold});
    f.add("mut", std::uint64_t{spec.params.mut_threshold});
    f.add("seed", std::uint64_t{spec.params.seed});
    if (spec.words != 0) f.add("words", std::uint64_t{spec.words});
    if (spec.islands != 0) {
        f.add("islands", std::uint64_t{spec.islands});
        f.add("topology", island::topology_name(spec.topology));
        f.add("interval", std::uint64_t{spec.migration.interval});
        f.add("count", std::uint64_t{spec.migration.count});
        f.add("policy", island::policy_name(spec.migration.policy));
        f.add("mig_seed", std::uint64_t{spec.migration.mig_seed});
    }
    if (spec.supervise) f.add("supervise", std::uint64_t{1});
    if (spec.deadline_ms != 0) f.add("deadline_ms", spec.deadline_ms);
    return f;
}

std::uint64_t Client::submit(const JobSpec& spec) {
    const Frame ack = rpc(submit_frame(spec));
    if (!ack.has("id")) throw MalformedResponse("submit ack carries no id");
    return ack.u64("id");
}

Frame Client::status(std::uint64_t id) {
    Frame req(verb::kStatus);
    req.add("id", id);
    return rpc(req);
}

CancelOutcome Client::cancel(std::uint64_t id) {
    Frame req(verb::kCancel);
    req.add("id", id);
    try {
        const Frame resp = rpc(req);
        return resp.u64("cancelled") != 0 ? CancelOutcome::kCancelled : CancelOutcome::kTooLate;
    } catch (const RemoteError& ex) {
        if (ex.code() == err::kNotFound) return CancelOutcome::kNotFound;
        throw;
    }
}

Frame Client::stream(std::uint64_t id,
                     const std::function<void(const trace::TraceEvent&)>& on_event) {
    Frame req(verb::kStream);
    req.add("id", id);
    send(req);
    // Ack first (events may already interleave), then events until
    // stream_end.
    Frame ack = read_frame(on_event);
    if (!ack.ok()) throw RemoteError(ack.str("code", "error"), ack.str("error", "rejected"));
    for (;;) {
        Frame f = read_frame(on_event);
        if (f.verb == "stream_end") return f;
        // Any other interleaved control frame on this connection is a
        // protocol violation from our point of view.
        throw MalformedResponse("unexpected '" + f.verb + "' frame inside a stream");
    }
}

Frame Client::run_job(const JobSpec& spec,
                      const std::function<void(const trace::TraceEvent&)>& on_event) {
    const std::uint64_t id = submit(spec);
    const Frame end = stream(id, on_event);
    const Frame final_status = status(id);
    if (final_status.str("state") != "done")
        throw RemoteError("job_" + final_status.str("state", "unknown"),
                          "job " + std::to_string(id) + " ended " +
                              final_status.str("state", "unknown") +
                              (final_status.has("error") ? ": " + final_status.str("error") : ""));
    return final_status;
}

bool ping_wait(const std::string& socket_path, double wait_s, const RetryPolicy& policy) noexcept {
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(wait_s < 0 ? 0.0 : wait_s));
    for (unsigned k = 1;; ++k) {
        try {
            Client c(socket_path);
            c.set_op_deadline(policy.op_deadline_ms != 0 ? policy.op_deadline_ms : 2000);
            c.ping();
            return true;
        } catch (const std::exception&) {
        }
        if (Clock::now() >= deadline) return false;
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now()).count();
        sleep_ms(std::min<std::uint64_t>(backoff_delay_ms(policy, k),
                                         static_cast<std::uint64_t>(left < 1 ? 1 : left)));
    }
}

Frame stream_with_resume(const std::string& socket_path, std::uint64_t id,
                         const RetryPolicy& policy,
                         const std::function<void(const trace::TraceEvent&)>& on_event) {
    const unsigned attempts = std::max(1u, policy.attempts);
    unsigned fails = 0;
    for (;;) {
        bool progressed = false;
        try {
            Client c = Client::dial(socket_path, policy);
            Frame end = c.stream(id, [&](const trace::TraceEvent& e) {
                progressed = true;  // forward motion resets the retry budget
                if (on_event) on_event(e);
            });
            if (end.str("state") == "shed") {
                // Subscription shed under overload; the job itself lives
                // on — back off and re-subscribe.
                if (++fails >= attempts)
                    throw ConnectError("stream for job " + std::to_string(id) + " shed " +
                                       std::to_string(fails) + " times; giving up");
                sleep_ms(backoff_delay_ms(policy, fails));
                continue;
            }
            return end;
        } catch (const RemoteError&) {
            throw;  // not_found etc.: retrying cannot help
        } catch (const ConnectError& ex) {
            // Daemon restarting (TimeoutError included). Ids survive
            // journal recovery, so re-subscribing to the same id resumes
            // the stream against the re-run (or restored) job.
            if (progressed) fails = 0;
            if (++fails >= attempts) throw;
            sleep_ms(backoff_delay_ms(policy, fails));
        } catch (const MalformedResponse& ex) {
            // EOF mid-stream IS the kill -9 signature.
            if (progressed) fails = 0;
            if (++fails >= attempts) throw;
            sleep_ms(backoff_delay_ms(policy, fails));
        }
    }
}

}  // namespace gaip::service
