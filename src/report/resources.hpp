// Resource estimation model: the substitute for the Xilinx ISE place-and-
// route statistics of Table VI.
//
// What is exact and what is estimated:
//   * flip-flop bits — EXACT: every register of the modeled design is
//     enumerated through the module registry;
//   * block-RAM utilization — EXACT: storage bits of the GA memory and the
//     fitness lookup ROM divided by the device's per-block data capacity;
//   * LUT count / slice count — ESTIMATE: a per-flip-flop LUT factor for
//     AUDI-style FSM+datapath netlists (next-state logic, operand muxes)
//     plus the datapath's wide operators. The factor is calibrated so the
//     reference configuration reproduces the paper's reported 13% slice
//     utilization; EXPERIMENTS.md reports both the raw flip-flop count and
//     the calibrated estimate.
//   * clock — the model runs the GA domain at a fixed 50 MHz by
//     construction (the paper's achieved clock).
#pragma once

#include <span>
#include <string>

#include "rtl/module.hpp"

namespace gaip::report {

struct ResourceInputs {
    /// Logic modules of the GA module proper (core + RNG; memory arrays are
    /// counted as BRAM, their output registers as logic).
    std::span<rtl::Module* const> logic_modules;
    std::uint64_t ga_memory_bits = 0;
    std::uint64_t fitness_rom_bits = 0;
};

struct ResourceReport {
    unsigned ff_bits = 0;          ///< exact
    unsigned lut_estimate = 0;     ///< heuristic
    unsigned mult18_blocks = 0;    ///< 24x16 threshold multiplier -> 1 block
    unsigned slices = 0;
    double slice_pct = 0.0;
    unsigned ga_mem_brams = 0;
    double ga_mem_pct = 0.0;
    unsigned fitness_rom_brams = 0;
    double fitness_rom_pct = 0.0;
    double clock_mhz = 50.0;
};

/// LUTs charged per flip-flop bit of AUDI-style control/datapath logic.
/// Calibrated against the paper's 13% slice figure (see header comment).
inline constexpr double kLutsPerFlipFlop = 6.9;

/// Two-input gates per 4-input LUT after technology mapping (SIS-style
/// networks typically map 2.5-4 gates into one LUT; 3.0 is the midpoint).
inline constexpr double kGatesPerLut = 3.0;

ResourceReport estimate_resources(const ResourceInputs& in);

/// Alternative slice estimate grounded in the ACTUAL gate-level netlist of
/// the full core (src/gates/ga_core_gates): exact two-input-gate and
/// register counts, one mapping assumption (kGatesPerLut). Returns slices
/// and utilization percent of the xc2vp30.
struct GateCensusEstimate {
    std::uint32_t logic_gates = 0;
    std::uint32_t registers = 0;
    unsigned lut_estimate = 0;
    unsigned slices = 0;
    double slice_pct = 0.0;
};
GateCensusEstimate estimate_from_gate_census(std::uint32_t logic_gates,
                                             std::uint32_t registers);

/// Render in the layout of Table VI.
std::string format_table6(const ResourceReport& r);

}  // namespace gaip::report
