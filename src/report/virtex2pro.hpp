// Device data of the paper's target: Xilinx Virtex-II Pro xc2vp30-7ff896.
#pragma once

#include <cstdint>

namespace gaip::report {

struct Virtex2ProXc2vp30 {
    /// Logic slices (each: 2 x 4-input LUT + 2 flip-flops).
    static constexpr unsigned kSlices = 13696;
    /// 18 Kb block RAMs (16 Kb data + 2 Kb parity usable as data only for
    /// some aspect ratios; we count the conservative 16 Kb data capacity,
    /// which reproduces the paper's 48% figure for the 1 Mb fitness ROM).
    static constexpr unsigned kBramBlocks = 136;
    static constexpr std::uint64_t kBramDataBits = 16384;
    /// Dedicated 18x18 multipliers.
    static constexpr unsigned kMult18 = 136;
};

}  // namespace gaip::report
