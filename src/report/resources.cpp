#include "report/resources.hpp"

#include <cmath>
#include <sstream>

#include "report/virtex2pro.hpp"

namespace gaip::report {

ResourceReport estimate_resources(const ResourceInputs& in) {
    using Dev = Virtex2ProXc2vp30;
    ResourceReport r;

    for (const rtl::Module* m : in.logic_modules) r.ff_bits += m->flipflop_bits();

    r.lut_estimate = static_cast<unsigned>(std::lround(r.ff_bits * kLutsPerFlipFlop));
    r.mult18_blocks = 1;  // the 24x16 selection-threshold multiplier

    // A slice packs 2 LUTs + 2 FFs; real packing is imperfect, add 10%.
    const double slices_raw = std::max(r.ff_bits / 2.0, r.lut_estimate / 2.0) * 1.10;
    r.slices = static_cast<unsigned>(std::lround(slices_raw));
    r.slice_pct = 100.0 * r.slices / Dev::kSlices;

    auto brams = [](std::uint64_t bits) {
        return static_cast<unsigned>((bits + Dev::kBramDataBits - 1) / Dev::kBramDataBits);
    };
    r.ga_mem_brams = brams(in.ga_memory_bits);
    r.ga_mem_pct = 100.0 * r.ga_mem_brams / Dev::kBramBlocks;
    r.fitness_rom_brams = brams(in.fitness_rom_bits);
    r.fitness_rom_pct = 100.0 * r.fitness_rom_brams / Dev::kBramBlocks;
    return r;
}

GateCensusEstimate estimate_from_gate_census(std::uint32_t logic_gates,
                                             std::uint32_t registers) {
    using Dev = Virtex2ProXc2vp30;
    GateCensusEstimate e;
    e.logic_gates = logic_gates;
    e.registers = registers;
    e.lut_estimate = static_cast<unsigned>(std::lround(logic_gates / kGatesPerLut));
    e.slices = static_cast<unsigned>(
        std::lround(std::max(registers / 2.0, e.lut_estimate / 2.0) * 1.10));
    e.slice_pct = 100.0 * e.slices / Dev::kSlices;
    return e;
}

std::string format_table6(const ResourceReport& r) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(1);
    os << "Table VI analog: post-'place-and-route' statistics (model estimate)\n";
    os << "  Design attribute                                | Value\n";
    os << "  ------------------------------------------------+-----------------\n";
    os << "  Logic utilization (% slices used)               | " << r.slice_pct << "%  ("
       << r.slices << " slices; " << r.ff_bits << " FF exact, ~" << r.lut_estimate
       << " LUT est.)\n";
    os << "  Clock                                           | " << r.clock_mhz << " MHz\n";
    os << "  Block memory utilization (GA memory)            | " << r.ga_mem_pct << "%  ("
       << r.ga_mem_brams << " BRAM)\n";
    os << "  Block memory utilization (fitness lookup module)| " << r.fitness_rom_pct << "%  ("
       << r.fitness_rom_brams << " BRAM)\n";
    os << "  Dedicated multipliers                           | " << r.mult18_blocks
       << " MULT18X18\n";
    return os.str();
}

}  // namespace gaip::report
