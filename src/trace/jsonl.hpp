// JSONL serialization of the telemetry stream: one flat JSON object per
// line — `{"kind":"generation","t":123,"cycle":45,"gen":7,...}` — the
// interchange format gaip-trace records, filters, and diffs. The parser
// accepts exactly what the writer produces (flat objects, unsigned /
// double / string values), which is all the tooling needs.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace gaip::trace {

/// Serialize one event as a single JSON line (no trailing newline).
std::string to_json_line(const TraceEvent& e);

/// Parse one JSON line back into an event. Throws std::runtime_error on
/// malformed input. Unknown keys become fields; "kind"/"t"/"cycle" map to
/// the envelope members.
TraceEvent from_json_line(const std::string& line);

/// Load a whole .jsonl file (blank lines skipped). Throws on I/O errors or
/// malformed lines (with the 1-based line number in the message).
std::vector<TraceEvent> load_jsonl(const std::string& path);

/// Streaming file sink.
class JsonlSink final : public TraceSink {
public:
    /// Opens `path` for writing; throws std::runtime_error on failure.
    explicit JsonlSink(const std::string& path);

    void on_event(const TraceEvent& e) override;
    void flush() override { out_.flush(); }

    std::uint64_t events_written() const noexcept { return count_; }

private:
    std::ofstream out_;
    std::uint64_t count_ = 0;
};

}  // namespace gaip::trace
