#include "trace/diff.hpp"

#include <algorithm>

namespace gaip::trace {

namespace {

bool contains(std::span<const std::string> xs, const std::string& x) {
    return std::find(xs.begin(), xs.end(), x) != xs.end();
}

}  // namespace

std::vector<TraceEvent> filter_events(std::span<const TraceEvent> events,
                                      std::span<const std::string> kinds) {
    std::vector<TraceEvent> out;
    for (const TraceEvent& e : events)
        if (kinds.empty() || contains(kinds, e.kind)) out.push_back(e);
    return out;
}

bool events_equal(const TraceEvent& a, const TraceEvent& b, const DiffOptions& opt) {
    if (a.kind != b.kind) return false;
    if (opt.compare_time && a.t != b.t) return false;
    if (opt.compare_cycle && a.cycle != b.cycle) return false;
    auto keep = [&](const Field& f) { return !contains(opt.ignore_keys, f.key); };
    // Field order is part of the contract (producers emit deterministically),
    // so compare the ignored-key-stripped sequences positionally.
    std::vector<const Field*> fa, fb;
    for (const Field& f : a.fields)
        if (keep(f)) fa.push_back(&f);
    for (const Field& f : b.fields)
        if (keep(f)) fb.push_back(&f);
    if (fa.size() != fb.size()) return false;
    for (std::size_t i = 0; i < fa.size(); ++i)
        if (!(*fa[i] == *fb[i])) return false;
    return true;
}

std::optional<Divergence> first_divergence(std::span<const TraceEvent> a,
                                           std::span<const TraceEvent> b,
                                           const DiffOptions& opt) {
    const std::vector<TraceEvent> fa = filter_events(a, opt.kinds);
    const std::vector<TraceEvent> fb = filter_events(b, opt.kinds);
    const std::size_t n = std::min(fa.size(), fb.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (!events_equal(fa[i], fb[i], opt)) {
            Divergence d;
            d.index = i;
            d.a = fa[i];
            d.b = fb[i];
            return d;
        }
    }
    if (fa.size() != fb.size()) {
        Divergence d;
        d.index = n;
        d.missing_a = fa.size() < fb.size();
        d.missing_b = fb.size() < fa.size();
        if (!d.missing_a) d.a = fa[n];
        if (!d.missing_b) d.b = fb[n];
        return d;
    }
    return std::nullopt;
}

}  // namespace gaip::trace
