#include "trace/vcd.hpp"

#include <stdexcept>

namespace gaip::trace {

namespace {

/// Split a '.'-separated scope path into segments ("a.b" -> {"a","b"}).
std::vector<std::string> split_path(const std::string& path) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= path.size()) {
        const std::size_t dot = path.find('.', start);
        if (dot == std::string::npos) {
            out.push_back(path.substr(start));
            break;
        }
        out.push_back(path.substr(start, dot - start));
        start = dot + 1;
    }
    return out;
}

}  // namespace

VcdWriter::VcdWriter(const std::string& path, std::string timescale)
    : out_(path), timescale_(std::move(timescale)) {
    if (!out_) throw std::runtime_error("VcdWriter: cannot open " + path);
}

std::string VcdWriter::make_id(std::size_t n) {
    // Printable identifier alphabet per the VCD spec (chars '!'..'~').
    std::string id;
    do {
        id.push_back(static_cast<char>('!' + n % 94));
        n /= 94;
    } while (n != 0);
    return id;
}

void VcdWriter::add_module(const rtl::Module& m) { add_module(m, m.name()); }

void VcdWriter::add_module(const rtl::Module& m, const std::string& scope_path) {
    for (const rtl::RegBase* r : m.registers())
        add_probe(scope_path, r->name(), r->width(), [r] { return r->bits(); });
}

void VcdWriter::add_probe(const std::string& scope_path, const std::string& name, unsigned width,
                          std::function<std::uint64_t()> read) {
    if (header_written_) throw std::logic_error("VcdWriter: add_probe after header");
    if (width == 0 || width > 64) throw std::invalid_argument("VcdWriter: width must be 1..64");
    Entry e;
    e.read = std::move(read);
    e.id = make_id(entries_.size());
    e.scope = scope_path;
    e.name = name;
    e.width = width;
    entries_.push_back(std::move(e));
}

void VcdWriter::write_header() {
    out_ << "$timescale " << timescale_ << " $end\n";
    // Entries are grouped by scope in first-appearance order; nested scopes
    // are opened/closed by diffing each path against the open scope stack.
    std::vector<std::string> open;  // currently open scope segments
    auto switch_scope = [&](const std::vector<std::string>& target) {
        std::size_t common = 0;
        while (common < open.size() && common < target.size() && open[common] == target[common])
            ++common;
        for (std::size_t i = open.size(); i > common; --i) out_ << "$upscope $end\n";
        for (std::size_t i = common; i < target.size(); ++i)
            out_ << "$scope module " << target[i] << " $end\n";
        open = target;
    };

    std::vector<std::string> scopes_in_order;
    for (const Entry& e : entries_) {
        bool seen = false;
        for (const std::string& s : scopes_in_order) seen |= (s == e.scope);
        if (!seen) scopes_in_order.push_back(e.scope);
    }
    for (const std::string& scope : scopes_in_order) {
        switch_scope(split_path(scope));
        for (const Entry& e : entries_) {
            if (e.scope != scope) continue;
            out_ << "$var reg " << e.width << ' ' << e.id << ' ' << e.name << " $end\n";
        }
    }
    switch_scope({});
    out_ << "$enddefinitions $end\n";
    header_written_ = true;
}

void VcdWriter::emit(const Entry& e, std::uint64_t value) {
    if (e.width == 1) {
        out_ << (value & 1u) << e.id << '\n';
        return;
    }
    out_ << 'b';
    for (int i = static_cast<int>(e.width) - 1; i >= 0; --i) out_ << ((value >> i) & 1u);
    out_ << ' ' << e.id << '\n';
}

void VcdWriter::sample(rtl::SimTime t) {
    if (!header_written_) write_header();
    bool time_emitted = false;
    for (Entry& e : entries_) {
        const std::uint64_t v = e.read() & (e.width >= 64 ? ~std::uint64_t{0}
                                                          : ((std::uint64_t{1} << e.width) - 1));
        if (e.first || v != e.last) {
            if (!time_emitted && t != last_time_) {
                out_ << '#' << t << '\n';
                last_time_ = t;
                time_emitted = true;
            }
            emit(e, v);
            e.last = v;
            e.first = false;
        }
    }
}

}  // namespace gaip::trace
