// Run-telemetry event model — the structured counterpart of the VCD
// waveform dump. A TraceEvent is one observation of the running system
// (a generation boundary, an init-handshake write, a FEM handshake, a
// fault injection, ...) with a flat ordered field list; sinks consume the
// stream (JSONL file, in-memory buffer, fan-out).
//
// Zero-overhead-when-off contract: nothing in the simulation path touches
// this layer unless a sink is configured — emit sites are guarded by a
// null check on the sink pointer, and the SystemTap module is only
// instantiated when tracing is requested.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace gaip::trace {

/// Field payloads. Unsigned integers cover everything the hardware model
/// produces; doubles and strings exist for derived metrics and labels.
using Value = std::variant<std::uint64_t, double, std::string>;

struct Field {
    std::string key;
    Value value;

    friend bool operator==(const Field&, const Field&) = default;
};

/// Well-known event kinds emitted by the system tap and the fault layer.
/// Kinds are open-ended strings; these constants just keep the producers
/// and the CLI/tests in sync.
namespace kind {
inline constexpr const char* kInitWrite = "init_write";      ///< one handshake parameter write
inline constexpr const char* kInitDone = "init_done";        ///< handshake complete
inline constexpr const char* kStart = "start";               ///< start_GA pulse observed
inline constexpr const char* kFemRequest = "fem_request";    ///< fitness_request rose
inline constexpr const char* kFemValue = "fem_value";        ///< fitness_valid rose
inline constexpr const char* kGeneration = "generation";     ///< monitor pulse (one per generation)
inline constexpr const char* kBankSwap = "bank_swap";        ///< population bank toggled
inline constexpr const char* kPreset = "preset";             ///< PRESET pins changed (fallback)
inline constexpr const char* kDone = "done";                 ///< GA_done rose
inline constexpr const char* kFaultInject = "fault_inject";  ///< SEU planted (fault layer)
inline constexpr const char* kDivergence = "divergence";     ///< first cycle differing from golden
// Mission-supervisor decisions (src/supervisor/): every rung of the
// recovery ladder leaves a structured mark in the stream so gaip-trace can
// record/diff supervised runs.
inline constexpr const char* kWatchdogTrip = "watchdog_trip";   ///< cycle budget missed
inline constexpr const char* kSupRetry = "sup_retry";           ///< backoff retry launched
inline constexpr const char* kSupRestart = "sup_restart";       ///< request_restart() recovery
inline constexpr const char* kSupFallback = "sup_fallback";     ///< PRESET fallback engaged
inline constexpr const char* kSupCheckpoint = "sup_checkpoint"; ///< generation checkpoint taken
inline constexpr const char* kSupRollback = "sup_rollback";     ///< retry resumed from checkpoint
inline constexpr const char* kSupVote = "sup_vote";             ///< NMR majority vote tallied
inline constexpr const char* kSupAbort = "sup_abort";           ///< ladder exhausted, structured abort
inline constexpr const char* kSupResult = "sup_result";         ///< final supervised verdict
// Native-codegen JIT backend (src/gates/jit.*): artifact-cache traffic and
// host-compiler invocations, so a campaign's compile overhead is visible
// in the same stream as its simulation events.
inline constexpr const char* kJitCompile = "jit_compile";       ///< artifact built by host compiler
inline constexpr const char* kJitCacheHit = "jit_cache_hit";    ///< artifact reused (memory/disk)
inline constexpr const char* kJitFallback = "jit_fallback";     ///< JIT requested, interpreter used
// Island-model interconnect (src/island/): generation-synchronous barriers
// and the individual migrations the interconnect carries between the
// N cooperating GA engines, plus the per-island recovery decisions the
// supervised ensemble takes on top of the sup_* ladder events.
inline constexpr const char* kIslandBarrier = "island_barrier";    ///< all islands parked at a boundary
inline constexpr const char* kIslandMigrate = "island_migrate";    ///< one emigrant delivered
inline constexpr const char* kIslandStall = "island_stall";        ///< per-island barrier stall tally
inline constexpr const char* kIslandRollback = "island_rollback";  ///< one island rolled back + re-run
inline constexpr const char* kIslandDone = "island_done";          ///< one island finished its run
}  // namespace kind

struct TraceEvent {
    std::string kind;
    std::uint64_t t = 0;      ///< simulation time, ps (0 when the producer is untimed)
    std::uint64_t cycle = 0;  ///< GA-clock cycle count at emission

    std::vector<Field> fields;

    TraceEvent() = default;
    TraceEvent(std::string k, std::uint64_t t_ps, std::uint64_t cyc)
        : kind(std::move(k)), t(t_ps), cycle(cyc) {}

    TraceEvent& add(std::string key, std::uint64_t v) {
        fields.push_back({std::move(key), Value{v}});
        return *this;
    }
    TraceEvent& add(std::string key, double v) {
        fields.push_back({std::move(key), Value{v}});
        return *this;
    }
    TraceEvent& add(std::string key, std::string v) {
        fields.push_back({std::move(key), Value{std::move(v)}});
        return *this;
    }

    const Value* find(std::string_view key) const noexcept {
        for (const Field& f : fields)
            if (f.key == key) return &f.value;
        return nullptr;
    }

    /// Unsigned field lookup with a default (missing or non-integer -> def).
    std::uint64_t u64(std::string_view key, std::uint64_t def = 0) const noexcept {
        const Value* v = find(key);
        if (v == nullptr) return def;
        if (const auto* u = std::get_if<std::uint64_t>(v)) return *u;
        return def;
    }

    friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Consumer of a telemetry stream. Implementations must tolerate events of
/// unknown kinds (the stream is open-ended by design).
class TraceSink {
public:
    virtual ~TraceSink() = default;
    virtual void on_event(const TraceEvent& e) = 0;
    virtual void flush() {}
};

/// Buffering sink for tests and the diff tooling.
class MemorySink final : public TraceSink {
public:
    void on_event(const TraceEvent& e) override { events_.push_back(e); }

    const std::vector<TraceEvent>& events() const noexcept { return events_; }
    std::vector<TraceEvent> take() { return std::move(events_); }
    void clear() { events_.clear(); }

private:
    std::vector<TraceEvent> events_;
};

/// Fan-out to several sinks (e.g. a JSONL file plus an in-memory buffer).
/// Does not own its children.
class TeeSink final : public TraceSink {
public:
    void add(TraceSink* s) {
        if (s != nullptr) sinks_.push_back(s);
    }
    void on_event(const TraceEvent& e) override {
        for (TraceSink* s : sinks_) s->on_event(e);
    }
    void flush() override {
        for (TraceSink* s : sinks_) s->flush();
    }

private:
    std::vector<TraceSink*> sinks_;
};

}  // namespace gaip::trace
