// SystemTap: a passive Module that turns the wires of a running GA system
// into the structured telemetry stream (trace/event.hpp). The model's
// equivalent of the ChipScope ILA + software monitors the authors attached:
// it samples on its clock edges (bind it to the fast peripheral clock so no
// protocol edge is missed), performs edge detection in plain simulator
// state, and emits one TraceEvent per protocol step:
//
//   init_write   one parameter write of the Sec. III-B.6 handshake
//   init_done    initialization module finished
//   start        start_GA pulse
//   preset       PRESET pins changed (the fault-recovery fallback path)
//   fem_request  fitness request rose (candidate on the bus)
//   fem_value    fitness valid rose (value on the bus)
//   generation   monitor pulse: per-generation stats incl. op counters
//   bank_swap    population bank toggled
//   done         GA_done rose
//
// The tap is only instantiated when a sink is configured (GaSystemConfig
// ::trace_sink / ::trace_path), so tracing costs nothing when off.
#pragma once

#include <cstdint>

#include "core/ga_core.hpp"
#include "rtl/clock.hpp"
#include "rtl/kernel.hpp"
#include "rtl/module.hpp"
#include "trace/event.hpp"

namespace gaip::trace {

/// The nets the tap observes (a subset of system::CoreWireBundle, taken as
/// individual references so the trace layer does not depend on src/system).
struct SystemTapPorts {
    // init handshake bus
    rtl::Wire<bool>& ga_load;
    rtl::Wire<std::uint8_t>& index;
    rtl::Wire<std::uint16_t>& value;
    rtl::Wire<bool>& data_valid;
    rtl::Wire<bool>& data_ack;
    rtl::Wire<bool>& init_done;

    // control
    rtl::Wire<bool>& start_ga;
    rtl::Wire<bool>& ga_done;
    rtl::Wire<std::uint8_t>& preset;

    // fitness handshake (core side, post-mux)
    rtl::Wire<bool>& fit_request;
    rtl::Wire<bool>& fit_valid;
    rtl::Wire<std::uint16_t>& fit_value;
    rtl::Wire<std::uint16_t>& candidate;

    // monitor taps
    rtl::Wire<bool>& mon_gen_pulse;
    rtl::Wire<std::uint32_t>& mon_gen_id;
    rtl::Wire<std::uint16_t>& mon_best_fit;
    rtl::Wire<std::uint32_t>& mon_fit_sum;
    rtl::Wire<std::uint16_t>& mon_best_ind;
    rtl::Wire<bool>& mon_bank;
    rtl::Wire<std::uint8_t>& mon_pop_size;
};

class SystemTap final : public rtl::Module {
public:
    /// `core` (optional) supplies the crossover/mutation/RNG-draw counters
    /// for generation events; pass nullptr for gate-level cores, which do
    /// not expose them. `kernel`/`ga_clk` stamp events with time and the
    /// GA-cycle count.
    SystemTap(SystemTapPorts ports, TraceSink* sink, const rtl::Kernel* kernel,
              const rtl::Clock* ga_clk, const core::GaCore* core = nullptr);

    void tick() override;
    void reset_state() override;

    std::uint64_t events_emitted() const noexcept { return emitted_; }

private:
    TraceEvent make(const char* kind) const;
    void emit(TraceEvent e);

    SystemTapPorts p_;
    TraceSink* sink_;
    const rtl::Kernel* kernel_;
    const rtl::Clock* ga_clk_;
    const core::GaCore* core_;

    // Edge detectors / previous samples (plain simulator state, not Regs:
    // the tap must not alter the design's flip-flop or scan-chain census).
    bool prev_ack_ = false;
    bool prev_init_done_ = false;
    bool prev_start_ = false;
    bool prev_req_ = false;
    bool prev_valid_ = false;
    bool prev_pulse_ = false;
    bool prev_bank_ = false;
    bool prev_done_ = false;
    bool preset_seen_ = false;
    std::uint8_t prev_preset_ = 0;

    // Counter snapshots for per-generation deltas.
    std::uint64_t last_rng_draws_ = 0;
    std::uint64_t last_crossovers_ = 0;
    std::uint64_t last_mutations_ = 0;

    std::uint64_t emitted_ = 0;
};

}  // namespace gaip::trace
