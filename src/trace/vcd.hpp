// VCD (value change dump) writer — the model's waveform visibility, in
// place of the NC-Verilog / ModelSim / ChipScope views the authors had.
// Dumps load in GTKWave.
//
// Probes come in two flavors:
//   * add_module()     — every attached register of an rtl::Module, under a
//     hierarchical scope ('.'-separated path, e.g. "ga_system.ga_core");
//   * add_probe()/add_wire() — any value a callback can produce, which is
//     how top-level wires (handshakes, monitor taps) and non-Module sources
//     (per-lane nets of the compiled gate simulator) get traced.
//
// The writer implements rtl::KernelObserver, so attaching it to a Kernel
// samples every processed time point automatically; producers outside the
// kernel (BatchGateRunner) call sample() themselves.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "rtl/kernel.hpp"
#include "rtl/module.hpp"

namespace gaip::trace {

class VcdWriter final : public rtl::KernelObserver {
public:
    /// Opens `path` for writing; throws std::runtime_error on failure.
    /// `timescale` is the VCD unit of sample() timestamps.
    explicit VcdWriter(const std::string& path, std::string timescale = "1ps");

    /// Trace all registers of `m` under a scope named after the module.
    void add_module(const rtl::Module& m);
    /// Same, under an explicit hierarchical scope path ("top.sub.leaf").
    void add_module(const rtl::Module& m, const std::string& scope_path);

    /// Trace an arbitrary `width`-bit value produced by `read` (only the low
    /// `width` bits are dumped).
    void add_probe(const std::string& scope_path, const std::string& name, unsigned width,
                   std::function<std::uint64_t()> read);

    /// Trace a combinational wire under `scope_path`.
    template <typename T>
    void add_wire(const std::string& scope_path, const std::string& name, const rtl::Wire<T>& w,
                  unsigned width = 8 * sizeof(T)) {
        add_probe(scope_path, name, width,
                  [&w]() -> std::uint64_t { return rtl::detail::to_bits(w.read()); });
    }

    /// Emit the header; called once, after all probes are added and before
    /// the first sample (sample() triggers it on demand).
    void write_header();

    /// Sample all probes at time `t`; emits only changed values.
    void sample(rtl::SimTime t);

    bool header_written() const noexcept { return header_written_; }
    std::size_t probe_count() const noexcept { return entries_.size(); }

    // rtl::KernelObserver: one sample per processed kernel time point.
    void on_time_point(rtl::SimTime t) override { sample(t); }

private:
    struct Entry {
        std::function<std::uint64_t()> read;
        std::string id;     ///< VCD short identifier
        std::string scope;  ///< '.'-separated hierarchy path
        std::string name;
        unsigned width = 1;
        std::uint64_t last = ~std::uint64_t{0};
        bool first = true;
    };

    static std::string make_id(std::size_t n);
    void emit(const Entry& e, std::uint64_t value);

    std::ofstream out_;
    std::string timescale_;
    std::vector<Entry> entries_;
    bool header_written_ = false;
    rtl::SimTime last_time_ = ~rtl::SimTime{0};
};

}  // namespace gaip::trace
