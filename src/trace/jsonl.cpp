#include "trace/jsonl.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace gaip::trace {

namespace {

void append_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void append_value(std::string& out, const Value& v) {
    if (const auto* u = std::get_if<std::uint64_t>(&v)) {
        out += std::to_string(*u);
    } else if (const auto* d = std::get_if<double>(&v)) {
        // %.17g round-trips every finite double through strtod.
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", *d);
        out += buf;
    } else {
        append_escaped(out, std::get<std::string>(v));
    }
}

/// Minimal recursive-descent reader for the flat objects the writer emits.
class LineParser {
public:
    explicit LineParser(const std::string& s) : s_(s) {}

    TraceEvent parse() {
        TraceEvent e;
        skip_ws();
        expect('{');
        skip_ws();
        if (peek() == '}') {
            ++i_;
            return e;
        }
        for (;;) {
            skip_ws();
            const std::string key = parse_string();
            skip_ws();
            expect(':');
            skip_ws();
            if (key == "kind") {
                e.kind = parse_string();
            } else if (key == "t") {
                e.t = parse_u64();
            } else if (key == "cycle") {
                e.cycle = parse_u64();
            } else {
                e.fields.push_back({key, parse_value()});
            }
            skip_ws();
            if (peek() == ',') {
                ++i_;
                continue;
            }
            expect('}');
            return e;
        }
    }

private:
    [[noreturn]] void fail(const char* what) const {
        throw std::runtime_error(std::string("jsonl: ") + what + " at column " +
                                 std::to_string(i_ + 1));
    }

    char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
    void expect(char c) {
        if (peek() != c) fail("unexpected character");
        ++i_;
    }
    void skip_ws() {
        while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_]))) ++i_;
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (i_ < s_.size() && s_[i_] != '"') {
            char c = s_[i_++];
            if (c == '\\') {
                if (i_ >= s_.size()) fail("truncated escape");
                const char esc = s_[i_++];
                switch (esc) {
                    case '"': c = '"'; break;
                    case '\\': c = '\\'; break;
                    case '/': c = '/'; break;
                    case 'n': c = '\n'; break;
                    case 'r': c = '\r'; break;
                    case 't': c = '\t'; break;
                    case 'u': {
                        if (i_ + 4 > s_.size()) fail("truncated \\u escape");
                        const std::string hex = s_.substr(i_, 4);
                        i_ += 4;
                        c = static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
                        break;
                    }
                    default: fail("unknown escape");
                }
            }
            out += c;
        }
        expect('"');
        return out;
    }

    std::uint64_t parse_u64() {
        const Value v = parse_value();
        if (const auto* u = std::get_if<std::uint64_t>(&v)) return *u;
        fail("expected unsigned integer");
    }

    Value parse_value() {
        if (peek() == '"') return Value{parse_string()};
        const std::size_t start = i_;
        bool is_double = false;
        while (i_ < s_.size()) {
            const char c = s_[i_];
            if (c == '.' || c == 'e' || c == 'E') is_double = true;
            if (c == '-' || c == '+' || c == '.' || std::isalnum(static_cast<unsigned char>(c))) {
                ++i_;
            } else {
                break;
            }
        }
        if (i_ == start) fail("expected value");
        const std::string tok = s_.substr(start, i_ - start);
        if (tok[0] == '-') is_double = true;  // negative values only arrive as doubles
        char* end = nullptr;
        if (is_double) {
            const double d = std::strtod(tok.c_str(), &end);
            if (end != tok.c_str() + tok.size()) fail("bad number");
            return Value{d};
        }
        const std::uint64_t u = std::strtoull(tok.c_str(), &end, 10);
        if (end != tok.c_str() + tok.size()) fail("bad number");
        return Value{u};
    }

    const std::string& s_;
    std::size_t i_ = 0;
};

}  // namespace

std::string to_json_line(const TraceEvent& e) {
    std::string out = "{\"kind\":";
    append_escaped(out, e.kind);
    out += ",\"t\":" + std::to_string(e.t);
    out += ",\"cycle\":" + std::to_string(e.cycle);
    for (const Field& f : e.fields) {
        out += ',';
        append_escaped(out, f.key);
        out += ':';
        append_value(out, f.value);
    }
    out += '}';
    return out;
}

TraceEvent from_json_line(const std::string& line) { return LineParser(line).parse(); }

std::vector<TraceEvent> load_jsonl(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("load_jsonl: cannot open " + path);
    std::vector<TraceEvent> out;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty()) continue;
        try {
            out.push_back(from_json_line(line));
        } catch (const std::exception& ex) {
            throw std::runtime_error(path + ":" + std::to_string(lineno) + ": " + ex.what());
        }
    }
    return out;
}

JsonlSink::JsonlSink(const std::string& path) : out_(path) {
    if (!out_) throw std::runtime_error("JsonlSink: cannot open " + path);
}

void JsonlSink::on_event(const TraceEvent& e) {
    out_ << to_json_line(e) << '\n';
    ++count_;
}

}  // namespace gaip::trace
