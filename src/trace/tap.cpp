#include "trace/tap.hpp"

namespace gaip::trace {

SystemTap::SystemTap(SystemTapPorts ports, TraceSink* sink, const rtl::Kernel* kernel,
                     const rtl::Clock* ga_clk, const core::GaCore* core)
    : Module("system_tap"), p_(ports), sink_(sink), kernel_(kernel), ga_clk_(ga_clk),
      core_(core) {
    sense();  // no eval(): purely a sampling tap on its clock edges
}

void SystemTap::reset_state() {
    prev_ack_ = prev_init_done_ = prev_start_ = prev_req_ = prev_valid_ = false;
    prev_pulse_ = prev_bank_ = prev_done_ = false;
    preset_seen_ = false;
    prev_preset_ = 0;
    last_rng_draws_ = last_crossovers_ = last_mutations_ = 0;
}

TraceEvent SystemTap::make(const char* kind) const {
    return TraceEvent(kind, kernel_ != nullptr ? kernel_->now() : 0,
                      ga_clk_ != nullptr ? ga_clk_->edges() : 0);
}

void SystemTap::emit(TraceEvent e) {
    sink_->on_event(e);
    ++emitted_;
}

void SystemTap::tick() {
    if (sink_ == nullptr) return;

    // Fixed check order = deterministic intra-cycle event order: handshake
    // first, then control, then fitness, then generation bookkeeping.
    const bool ack = p_.data_ack.read();
    if (ack && !prev_ack_) {
        emit(make(kind::kInitWrite)
                 .add("index", static_cast<std::uint64_t>(p_.index.read()))
                 .add("value", static_cast<std::uint64_t>(p_.value.read())));
    }
    prev_ack_ = ack;

    const bool idone = p_.init_done.read();
    if (idone && !prev_init_done_) emit(make(kind::kInitDone));
    prev_init_done_ = idone;

    const bool start = p_.start_ga.read();
    if (start && !prev_start_) emit(make(kind::kStart));
    prev_start_ = start;

    const std::uint8_t preset = p_.preset.read();
    if (preset_seen_ && preset != prev_preset_) {
        emit(make(kind::kPreset)
                 .add("preset", static_cast<std::uint64_t>(preset))
                 .add("was", static_cast<std::uint64_t>(prev_preset_)));
    }
    prev_preset_ = preset;
    preset_seen_ = true;

    const bool req = p_.fit_request.read();
    if (req && !prev_req_) {
        emit(make(kind::kFemRequest)
                 .add("candidate", static_cast<std::uint64_t>(p_.candidate.read())));
    }
    prev_req_ = req;

    const bool valid = p_.fit_valid.read();
    if (valid && !prev_valid_) {
        emit(make(kind::kFemValue)
                 .add("candidate", static_cast<std::uint64_t>(p_.candidate.read()))
                 .add("value", static_cast<std::uint64_t>(p_.fit_value.read())));
    }
    prev_valid_ = valid;

    const bool pulse = p_.mon_gen_pulse.read();
    if (pulse && !prev_pulse_) {
        TraceEvent e = make(kind::kGeneration);
        e.add("gen", static_cast<std::uint64_t>(p_.mon_gen_id.read()))
            .add("best_fit", static_cast<std::uint64_t>(p_.mon_best_fit.read()))
            .add("best_ind", static_cast<std::uint64_t>(p_.mon_best_ind.read()))
            .add("fit_sum", static_cast<std::uint64_t>(p_.mon_fit_sum.read()))
            .add("pop", static_cast<std::uint64_t>(p_.mon_pop_size.read()))
            .add("bank", static_cast<std::uint64_t>(p_.mon_bank.read() ? 1 : 0));
        if (core_ != nullptr) {
            // Per-generation operation counts (deltas of the core's
            // simulator-side totals).
            e.add("rng_draws", core_->rng_draws() - last_rng_draws_)
                .add("crossovers", core_->crossovers() - last_crossovers_)
                .add("mutations", core_->mutations() - last_mutations_);
            last_rng_draws_ = core_->rng_draws();
            last_crossovers_ = core_->crossovers();
            last_mutations_ = core_->mutations();
        }
        emit(std::move(e));
    }
    prev_pulse_ = pulse;

    const bool bank = p_.mon_bank.read();
    if (bank != prev_bank_) {
        emit(make(kind::kBankSwap).add("bank", static_cast<std::uint64_t>(bank ? 1 : 0)));
    }
    prev_bank_ = bank;

    const bool done = p_.ga_done.read();
    if (done && !prev_done_) {
        emit(make(kind::kDone)
                 .add("best_fit", static_cast<std::uint64_t>(p_.mon_best_fit.read()))
                 .add("best_ind", static_cast<std::uint64_t>(p_.mon_best_ind.read()))
                 .add("gen", static_cast<std::uint64_t>(p_.mon_gen_id.read())));
    }
    prev_done_ = done;
}

}  // namespace gaip::trace
