// Trace comparison: find the first point where two telemetry streams
// diverge. The workhorse behind `gaip-trace diff` — e.g. locating the
// first generation where an SEU run departs from the golden run, or the
// exact protocol step where an RT-level and a gate-lane run disagree.
//
// Comparison is structural: events match when their kind and fields agree.
// Timestamps and cycle counts are ignored by default (different producers
// legitimately number cycles differently); `ignore_keys` drops fields that
// only one producer emits (e.g. the RT-level op counters).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace gaip::trace {

struct DiffOptions {
    bool compare_time = false;   ///< include the `t` timestamp in equality
    bool compare_cycle = false;  ///< include the GA-cycle count in equality
    std::vector<std::string> kinds;        ///< restrict to these kinds (empty = all)
    std::vector<std::string> ignore_keys;  ///< field keys excluded from equality
};

struct Divergence {
    std::size_t index = 0;  ///< position in the (filtered) sequences
    /// The mismatched pair; `missing_a`/`missing_b` flag a length mismatch
    /// (one stream ended first), in which case the present side is filled.
    TraceEvent a, b;
    bool missing_a = false;
    bool missing_b = false;
};

/// Keep only events whose kind is in `kinds` (empty keeps everything).
std::vector<TraceEvent> filter_events(std::span<const TraceEvent> events,
                                      std::span<const std::string> kinds);

/// True when the two events match under `opt`.
bool events_equal(const TraceEvent& a, const TraceEvent& b, const DiffOptions& opt);

/// First index where the two (filtered) streams disagree; nullopt when they
/// match completely.
std::optional<Divergence> first_divergence(std::span<const TraceEvent> a,
                                           std::span<const TraceEvent> b,
                                           const DiffOptions& opt = {});

}  // namespace gaip::trace
